// Focused behavioural tests of engine mechanics: early-release accounting,
// instability marking, cores-follow-tasks scheduling, and metric collection.
#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "workload/sources.h"

namespace prompt {
namespace {

std::unique_ptr<TupleSource> MakeSource(double rate, double z = 1.0,
                                        uint64_t cardinality = 2000,
                                        uint64_t seed = 3) {
  ZipfKeyedSource::Params params;
  params.cardinality = cardinality;
  params.zipf = z;
  params.seed = seed;
  params.rate = std::make_shared<ConstantRate>(rate);
  return std::make_unique<SynDSource>(std::move(params));
}

TEST(EngineBehaviorTest, PartitionOverflowChargedBeyondSlack) {
  auto opts = EngineOptions{};
  opts.batch_interval = Millis(200);
  opts.early_release_frac = 0.05;  // 10ms slack
  // Inflate the measured decision cost so it dwarfs the slack.
  opts.cost.partition_cost_scale = 1e5;
  auto source = MakeSource(20000);
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  auto summary = engine.Run(3);
  for (const auto& b : summary.batches) {
    EXPECT_GT(b.partition_overflow, 0);
    EXPECT_GE(b.processing_time, b.partition_overflow);
  }

  // Same run with a huge slack: no overflow reaches processing.
  auto opts2 = opts;
  opts2.early_release_frac = 0.9;
  opts2.cost.partition_cost_scale = 1.0;
  auto source2 = MakeSource(20000);
  MicroBatchEngine engine2(opts2, JobSpec::WordCount(4),
                           CreatePartitioner(PartitionerType::kPrompt),
                           source2.get());
  for (const auto& b : engine2.Run(3).batches) {
    EXPECT_EQ(b.partition_overflow, 0);
  }
}

TEST(EngineBehaviorTest, UnstableAtBatchIsFirstOffender) {
  EngineOptions opts;
  opts.batch_interval = Millis(100);
  opts.map_tasks = 2;
  opts.reduce_tasks = 2;
  opts.cores = 2;
  opts.cost.map_per_tuple_us = 500;  // massive overload
  opts.unstable_queue_intervals = 1.0;
  auto source = MakeSource(20000);
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kShuffle),
                          source.get());
  auto summary = engine.Run(8);
  ASSERT_FALSE(summary.stable);
  ASSERT_LT(summary.unstable_at_batch, 8u);
  // Every batch before the marked one respected the queue bound.
  for (const auto& b : summary.batches) {
    if (b.batch_id < summary.unstable_at_batch) {
      EXPECT_LE(static_cast<double>(b.queue_delay),
                1.0 * static_cast<double>(opts.batch_interval));
    }
  }
}

TEST(EngineBehaviorTest, CoresTrackTasksSpeedsUpWithMoreTasks) {
  auto run_with_tasks = [](uint32_t tasks) {
    EngineOptions opts;
    opts.batch_interval = Millis(500);
    opts.map_tasks = tasks;
    opts.reduce_tasks = tasks;
    opts.cores = 64;
    opts.cores_track_tasks = true;
    opts.cost.map_per_tuple_us = 50;
    opts.unstable_queue_intervals = 1e9;
    auto source = MakeSource(10000);
    MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    return engine.Run(4).batches.back().processing_time;
  };
  TimeMicros with_4 = run_with_tasks(4);
  TimeMicros with_16 = run_with_tasks(16);
  // 4x the tasks with cores tracking tasks: processing close to 4x faster
  // (fixed per-task overheads damp it slightly).
  EXPECT_LT(with_16, with_4 / 2);
}

TEST(EngineBehaviorTest, MetricsRankPromptAboveHashUnderSkew) {
  auto measure = [](PartitionerType type) {
    EngineOptions opts;
    opts.batch_interval = Millis(250);
    opts.obs.collect_partition_metrics = true;
    auto source = MakeSource(30000, 1.5, 5000, 8);
    MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                            CreatePartitioner(type), source.get());
    auto summary = engine.Run(4);
    double mpi = 0;
    for (const auto& b : summary.batches) mpi += b.partition_metrics.mpi;
    return mpi / 4;
  };
  EXPECT_LT(measure(PartitionerType::kPrompt),
            measure(PartitionerType::kHash));
}

TEST(EngineBehaviorTest, WindowTopKThroughEngine) {
  EngineOptions opts;
  opts.batch_interval = Millis(250);
  auto source = MakeSource(20000, 1.6, 1000, 4);
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  engine.Run(5);
  auto top = engine.window().TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_GE(top[0].value, top[1].value);
  EXPECT_GE(top[1].value, top[2].value);
  // The hottest key at z=1.6 dominates clearly.
  EXPECT_GT(top[0].value, 2 * top[1].value);
}

TEST(EngineBehaviorTest, WindowCheckpointSurvivesEngineRestart) {
  auto opts = EngineOptions{};
  opts.batch_interval = Millis(250);
  auto source = MakeSource(10000, 1.0, 500, 21);
  std::string checkpoint;
  std::map<KeyId, double> before;
  {
    MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    engine.Run(6);
    checkpoint = engine.window().Checkpoint();
    before.insert(engine.window().Result().begin(),
                  engine.window().Result().end());
  }
  // "Restart": a fresh engine restores the window without replaying.
  auto source2 = MakeSource(10000, 1.0, 500, 22);
  MicroBatchEngine engine2(opts, JobSpec::WordCount(4),
                           CreatePartitioner(PartitionerType::kPrompt),
                           source2.get());
  ASSERT_TRUE(engine2.RestoreWindow(checkpoint).ok());
  std::map<KeyId, double> after(engine2.window().Result().begin(),
                                engine2.window().Result().end());
  EXPECT_EQ(after, before);
  EXPECT_EQ(engine2.window().depth(), 4u);
}

TEST(EngineBehaviorTest, EmptyStreamIntervalsProduceEmptyBatches) {
  // A source whose tuples only start after 3 intervals.
  ZipfKeyedSource::Params params;
  params.cardinality = 10;
  params.zipf = 0.5;
  params.rate = std::make_shared<ConstantRate>(1000);
  params.start_time = Millis(750);
  SynDSource source(std::move(params));
  EngineOptions opts;
  opts.batch_interval = Millis(250);
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          &source);
  auto summary = engine.Run(5);
  EXPECT_EQ(summary.batches[0].num_tuples, 0u);
  EXPECT_EQ(summary.batches[1].num_tuples, 0u);
  EXPECT_GT(summary.batches[4].num_tuples, 0u);
}

}  // namespace
}  // namespace prompt
