// The deprecated flat ingest fields on EngineOptions must keep working for
// one release: MergeDeprecatedIngestAliases folds them into the grouped
// EngineOptions::ingest, with explicitly-set grouped fields taking priority.
#include <gtest/gtest.h>

#include "engine/engine.h"

namespace prompt {
namespace {

TEST(IngestOptionsAliasTest, DefaultsAreUntouched) {
  EngineOptions opts;
  MergeDeprecatedIngestAliases(&opts);
  EXPECT_EQ(opts.ingest.shards, 1u);
  EXPECT_EQ(opts.ingest.ring_capacity, 16u * 1024u);
  EXPECT_EQ(opts.ingest.accumulator, AccumulatorKind::kFlat);
}

TEST(IngestOptionsAliasTest, DeprecatedShardsFlowIntoGroupedField) {
  EngineOptions opts;
  opts.ingest_shards = 4;  // old-style caller
  MergeDeprecatedIngestAliases(&opts);
  EXPECT_EQ(opts.ingest.shards, 4u);
}

TEST(IngestOptionsAliasTest, DeprecatedRingCapacityFlowsIntoGroupedField) {
  EngineOptions opts;
  opts.ingest_ring_capacity = 512;
  MergeDeprecatedIngestAliases(&opts);
  EXPECT_EQ(opts.ingest.ring_capacity, 512u);
}

TEST(IngestOptionsAliasTest, ExplicitGroupedFieldWinsOverAlias) {
  EngineOptions opts;
  opts.ingest.shards = 2;   // new-style caller
  opts.ingest_shards = 8;   // stale alias set elsewhere
  MergeDeprecatedIngestAliases(&opts);
  EXPECT_EQ(opts.ingest.shards, 2u);

  EngineOptions opts2;
  opts2.ingest.ring_capacity = 1024;
  opts2.ingest_ring_capacity = 64;
  MergeDeprecatedIngestAliases(&opts2);
  EXPECT_EQ(opts2.ingest.ring_capacity, 1024u);
}

TEST(IngestOptionsAliasTest, MergeIsIdempotent) {
  EngineOptions opts;
  opts.ingest_shards = 3;
  MergeDeprecatedIngestAliases(&opts);
  MergeDeprecatedIngestAliases(&opts);
  EXPECT_EQ(opts.ingest.shards, 3u);
}

}  // namespace
}  // namespace prompt
