#include "engine/serde.h"

#include <gtest/gtest.h>

#include "core/prompt_partitioner.h"
#include "testing/test_helpers.h"

namespace prompt {
namespace {

using testing::RunBatch;
using testing::ZipfTuples;

PartitionedBatch MakeBatch(uint64_t tuples = 5000, uint32_t blocks = 4) {
  PromptPartitioner partitioner;
  auto data = ZipfTuples(tuples, 200, 1.1, 0, Seconds(1));
  return RunBatch(partitioner, data, blocks, 0, Seconds(1), /*batch_id=*/42);
}

TEST(SerdeTest, BatchRoundTrip) {
  auto batch = MakeBatch();
  std::string bytes = EncodeBatch(batch);
  auto decoded = DecodeBatch(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  EXPECT_EQ(decoded->batch_id, batch.batch_id);
  EXPECT_EQ(decoded->seal_time, batch.seal_time);
  EXPECT_EQ(decoded->num_tuples, batch.num_tuples);
  EXPECT_EQ(decoded->num_keys, batch.num_keys);
  ASSERT_EQ(decoded->blocks.size(), batch.blocks.size());
  for (size_t b = 0; b < batch.blocks.size(); ++b) {
    const DataBlock& in = batch.blocks[b];
    const DataBlock& out = decoded->blocks[b];
    EXPECT_EQ(out.block_id(), in.block_id());
    ASSERT_EQ(out.size(), in.size());
    ASSERT_EQ(out.cardinality(), in.cardinality());
    for (size_t i = 0; i < in.tuples().size(); ++i) {
      EXPECT_EQ(out.tuples()[i].ts, in.tuples()[i].ts);
      EXPECT_EQ(out.tuples()[i].key, in.tuples()[i].key);
      EXPECT_DOUBLE_EQ(out.tuples()[i].value, in.tuples()[i].value);
    }
    for (size_t i = 0; i < in.fragments().size(); ++i) {
      EXPECT_EQ(out.fragments()[i].key, in.fragments()[i].key);
      EXPECT_EQ(out.fragments()[i].count, in.fragments()[i].count);
      EXPECT_EQ(out.fragments()[i].split, in.fragments()[i].split);
    }
  }
}

TEST(SerdeTest, EmptyBatchRoundTrip) {
  PartitionedBatch batch;
  batch.batch_id = 7;
  auto decoded = DecodeBatch(EncodeBatch(batch));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->batch_id, 7u);
  EXPECT_TRUE(decoded->blocks.empty());
}

TEST(SerdeTest, RejectsBadMagic) {
  std::string bytes = EncodeBatch(MakeBatch(100, 2));
  bytes[0] ^= 0xff;
  EXPECT_TRUE(DecodeBatch(bytes).status().IsInvalid());
}

TEST(SerdeTest, DetectsPayloadCorruption) {
  std::string bytes = EncodeBatch(MakeBatch(100, 2));
  bytes[bytes.size() / 2] ^= 0x01;
  auto r = DecodeBatch(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);
}

TEST(SerdeTest, DetectsTruncation) {
  std::string bytes = EncodeBatch(MakeBatch(100, 2));
  for (size_t cut : {size_t{3}, size_t{10}, bytes.size() / 2,
                     bytes.size() - 1}) {
    EXPECT_TRUE(DecodeBatch(bytes.substr(0, cut)).status().IsInvalid())
        << "cut=" << cut;
  }
}

TEST(SerdeTest, DetectsTrailingGarbage) {
  std::string bytes = EncodeBatch(MakeBatch(100, 2));
  bytes += "extra";
  EXPECT_TRUE(DecodeBatch(bytes).status().IsInvalid());
}

TEST(SerdeTest, EncodingIsDeterministic) {
  auto batch = MakeBatch(1000, 3);
  EXPECT_EQ(EncodeBatch(batch), EncodeBatch(batch));
}

}  // namespace
}  // namespace prompt
