#include "engine/backpressure.h"

#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "workload/sources.h"

namespace prompt {
namespace {

RunSummary RunEngineAtRate(double rate, double per_tuple_us) {
  EngineOptions opts;
  opts.batch_interval = Millis(200);
  opts.map_tasks = 4;
  opts.reduce_tasks = 4;
  opts.cores = 4;
  opts.cost.map_per_tuple_us = per_tuple_us;
  opts.unstable_queue_intervals = 4.0;

  ZipfKeyedSource::Params params;
  params.cardinality = 500;
  params.zipf = 1.0;
  params.rate = std::make_shared<ConstantRate>(rate);
  SynDSource source(std::move(params));
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          &source);
  return engine.Run(15);
}

TEST(BackpressureTest, StableRunRecognized) {
  auto summary = RunEngineAtRate(2000, 1.0);
  EXPECT_TRUE(IsStableRun(summary, Millis(200)));
}

TEST(BackpressureTest, OverloadedRunRecognized) {
  // 200k/s * 0.2s / 4 blocks * 40µs = 400ms map task > 200ms interval.
  auto summary = RunEngineAtRate(200000, 40.0);
  EXPECT_FALSE(IsStableRun(summary, Millis(200)));
}

TEST(BackpressureTest, WarmupExclusionApplies) {
  StabilityCriteria strict;
  strict.warmup_batches = 100;  // more than the run length
  auto summary = RunEngineAtRate(2000, 1.0);
  EXPECT_FALSE(IsStableRun(summary, Millis(200), strict));
}

TEST(BackpressureTest, BinarySearchBracketsTheKnee) {
  // With 4 cores and pure per-tuple cost c (µs), capacity ≈ 4e6/c tuples/s;
  // overheads push the knee below that. The search must land between the
  // clearly-stable and clearly-unstable rates.
  const double per_tuple_us = 10.0;
  auto run = [&](double rate) { return RunEngineAtRate(rate, per_tuple_us); };
  double max_rate =
      FindMaxSustainableRate(run, Millis(200), 1000, 2000000, 10);
  EXPECT_GT(max_rate, 50000);
  EXPECT_LT(max_rate, 600000);
  // Verify the reported rate is indeed stable and 1.5x it is not.
  EXPECT_TRUE(IsStableRun(run(max_rate), Millis(200)));
  EXPECT_FALSE(IsStableRun(run(max_rate * 1.5), Millis(200)));
}

TEST(BackpressureTest, ReturnsHiWhenEverythingIsStable) {
  auto run = [&](double rate) { return RunEngineAtRate(rate, 0.01); };
  double max_rate = FindMaxSustainableRate(run, Millis(200), 1000, 5000, 4);
  EXPECT_DOUBLE_EQ(max_rate, 5000);
}

TEST(BackpressureTest, ReturnsZeroWhenNothingIsStable) {
  auto run = [&](double rate) { return RunEngineAtRate(rate, 1e5); };
  double max_rate = FindMaxSustainableRate(run, Millis(200), 1000, 5000, 4);
  EXPECT_DOUBLE_EQ(max_rate, 0);
}

}  // namespace
}  // namespace prompt
