#include "engine/execution.h"

#include <gtest/gtest.h>

#include <map>

#include "baselines/online_partitioners.h"
#include "common/thread_pool.h"
#include "core/prompt_partitioner.h"
#include "testing/test_helpers.h"

namespace prompt {
namespace {

using testing::KeyHistogram;
using testing::RunBatch;
using testing::ZipfTuples;

constexpr TimeMicros kStart = 0;
constexpr TimeMicros kEnd = Seconds(1);

std::map<KeyId, double> OutputToMap(const std::vector<KV>& output) {
  std::map<KeyId, double> m;
  for (const KV& kv : output) {
    EXPECT_EQ(m.count(kv.key), 0u) << "duplicate key in batch output";
    m[kv.key] = kv.value;
  }
  return m;
}

TEST(ExecutionTest, WordCountMatchesReference) {
  PromptPartitioner partitioner;
  auto tuples = ZipfTuples(20000, 400, 1.2, kStart, kEnd);
  auto batch = RunBatch(partitioner, tuples, 6, kStart, kEnd);

  PromptReduceAllocator allocator;
  BatchExecutor executor(JobSpec::WordCount(), CostModel(), &allocator,
                         ExecutionMode::kSimulated);
  auto exec = executor.Execute(batch, 4, 8);

  auto got = OutputToMap(exec.output);
  auto expected = KeyHistogram(tuples);
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [k, count] : expected) {
    EXPECT_DOUBLE_EQ(got[k], static_cast<double>(count)) << "key " << k;
  }
}

TEST(ExecutionTest, KeyedSumMatchesReference) {
  HashPartitioner partitioner;
  partitioner.Begin(4, kStart, kEnd);
  std::map<KeyId, double> expected;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    Tuple t{kStart + i, rng.NextBounded(100), rng.NextDouble()};
    expected[t.key] += t.value;
    partitioner.OnTuple(t);
  }
  auto batch = partitioner.Seal(0);

  HashReduceAllocator allocator;
  BatchExecutor executor(JobSpec::KeyedSum(), CostModel(), &allocator,
                         ExecutionMode::kSimulated);
  auto exec = executor.Execute(batch, 4, 8);
  auto got = OutputToMap(exec.output);
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [k, sum] : expected) {
    EXPECT_NEAR(got[k], sum, 1e-9) << "key " << k;
  }
}

TEST(ExecutionTest, SplitKeysAggregateToOneBucketOnly) {
  // A shuffle-partitioned batch splits every hot key across all blocks; the
  // final output must still contain each key exactly once.
  ShufflePartitioner partitioner;
  auto tuples = ZipfTuples(30000, 60, 1.0, kStart, kEnd);
  auto batch = RunBatch(partitioner, tuples, 8, kStart, kEnd);

  PromptReduceAllocator allocator;
  BatchExecutor executor(JobSpec::WordCount(), CostModel(), &allocator,
                         ExecutionMode::kSimulated);
  auto exec = executor.Execute(batch, 5, 8);
  auto got = OutputToMap(exec.output);  // asserts uniqueness
  auto expected = KeyHistogram(tuples);
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [k, count] : expected) {
    EXPECT_DOUBLE_EQ(got[k], static_cast<double>(count));
  }
}

TEST(ExecutionTest, BucketStatsAccountAllTuples) {
  PromptPartitioner partitioner;
  auto tuples = ZipfTuples(12000, 300, 1.1, kStart, kEnd);
  auto batch = RunBatch(partitioner, tuples, 4, kStart, kEnd);
  PromptReduceAllocator allocator;
  BatchExecutor executor(JobSpec::WordCount(), CostModel(), &allocator,
                         ExecutionMode::kSimulated);
  auto exec = executor.Execute(batch, 3, 8);
  uint64_t total = 0;
  for (uint64_t b : exec.bucket_tuples) total += b;
  EXPECT_EQ(total, 12000u);
}

TEST(ExecutionTest, CostsFollowTheCostModel) {
  HashPartitioner partitioner;
  auto tuples = ZipfTuples(10000, 100, 0.5, kStart, kEnd);
  auto batch = RunBatch(partitioner, tuples, 4, kStart, kEnd);
  CostModelParams params;
  params.map_task_fixed_us = 100;
  params.map_per_tuple_us = 1.0;
  params.map_per_key_us = 0.0;
  HashReduceAllocator allocator;
  BatchExecutor executor(JobSpec::WordCount(), CostModel(params), &allocator,
                         ExecutionMode::kSimulated);
  auto exec = executor.Execute(batch, 4, 8);
  for (size_t i = 0; i < batch.blocks.size(); ++i) {
    EXPECT_EQ(exec.map_task_costs[i],
              100 + static_cast<TimeMicros>(batch.blocks[i].size()));
  }
}

TEST(ExecutionTest, FilterMapDropsTuples) {
  HashPartitioner partitioner;
  partitioner.Begin(2, kStart, kEnd);
  for (int i = 0; i < 100; ++i) {
    partitioner.OnTuple(Tuple{kStart + i, static_cast<KeyId>(i % 10),
                              static_cast<double>(i)});
  }
  auto batch = partitioner.Seal(0);
  JobSpec job;
  job.map = std::make_shared<FilterMap>(
      [](const Tuple& t) { return t.value >= 50; });
  job.reduce = std::make_shared<SumReduce>();
  HashReduceAllocator allocator;
  BatchExecutor executor(job, CostModel(), &allocator,
                         ExecutionMode::kSimulated);
  auto exec = executor.Execute(batch, 2, 4);
  double total = 0;
  for (const KV& kv : exec.output) total += kv.value;
  // Sum of 50..99.
  EXPECT_DOUBLE_EQ(total, (50 + 99) * 50 / 2.0);
}

TEST(ExecutionTest, RealModeMatchesSimulatedOutputs) {
  PromptPartitioner partitioner;
  auto tuples = ZipfTuples(15000, 250, 1.0, kStart, kEnd);
  auto batch = RunBatch(partitioner, tuples, 4, kStart, kEnd);
  PromptReduceAllocator allocator;

  BatchExecutor sim(JobSpec::WordCount(), CostModel(), &allocator,
                    ExecutionMode::kSimulated);
  auto sim_exec = sim.Execute(batch, 4, 4);

  ThreadPool pool(4);
  BatchExecutor real(JobSpec::WordCount(), CostModel(), &allocator,
                     ExecutionMode::kReal);
  auto real_exec = real.Execute(batch, 4, 4, &pool);

  EXPECT_EQ(OutputToMap(sim_exec.output), OutputToMap(real_exec.output));
  EXPECT_GT(real_exec.map_makespan, 0);
}

TEST(ExecutionTest, ReduceCompletionsReported) {
  PromptPartitioner partitioner;
  auto tuples = ZipfTuples(8000, 200, 1.0, kStart, kEnd);
  auto batch = RunBatch(partitioner, tuples, 4, kStart, kEnd);
  PromptReduceAllocator allocator;
  BatchExecutor executor(JobSpec::WordCount(), CostModel(), &allocator,
                         ExecutionMode::kSimulated);
  auto exec = executor.Execute(batch, 6, 8);
  ASSERT_EQ(exec.reduce_completions.size(), 6u);
  for (TimeMicros c : exec.reduce_completions) {
    EXPECT_GT(c, 0);
    EXPECT_LE(c, exec.reduce_makespan);
  }
}

}  // namespace
}  // namespace prompt
