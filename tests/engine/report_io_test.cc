#include "engine/report_io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "workload/sources.h"

namespace prompt {
namespace {

std::vector<BatchReport> SampleReports() {
  ZipfKeyedSource::Params params;
  params.cardinality = 200;
  params.zipf = 1.0;
  params.rate = std::make_shared<ConstantRate>(8000);
  SynDSource source(std::move(params));
  EngineOptions opts;
  opts.batch_interval = Millis(250);
  opts.obs.collect_partition_metrics = true;
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          &source);
  return engine.Run(5).batches;
}

TEST(ReportIoTest, RoundTrip) {
  auto reports = SampleReports();
  std::stringstream buffer;
  WriteReportsCsv(reports, &buffer);
  auto parsed = ReadReportsCsv(&buffer);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), reports.size());
  for (size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ((*parsed)[i].batch_id, reports[i].batch_id);
    EXPECT_EQ((*parsed)[i].num_tuples, reports[i].num_tuples);
    EXPECT_EQ((*parsed)[i].processing_time, reports[i].processing_time);
    EXPECT_EQ((*parsed)[i].latency, reports[i].latency);
    EXPECT_DOUBLE_EQ((*parsed)[i].partition_metrics.ksr,
                     reports[i].partition_metrics.ksr);
  }
}

TEST(ReportIoTest, HeaderIsValidated) {
  std::stringstream buffer("not,a,header\n1,2,3\n");
  EXPECT_TRUE(ReadReportsCsv(&buffer).status().IsInvalid());
}

TEST(ReportIoTest, FieldCountIsValidated) {
  auto reports = SampleReports();
  std::stringstream buffer;
  WriteReportsCsv(reports, &buffer);
  std::string text = buffer.str();
  text += "1,2,3\n";  // short row
  std::stringstream bad(text);
  EXPECT_TRUE(ReadReportsCsv(&bad).status().IsInvalid());
}

TEST(ReportIoTest, NumbersAreValidated) {
  auto reports = SampleReports();
  std::stringstream buffer;
  WriteReportsCsv(reports, &buffer);
  std::string text = buffer.str();
  // Corrupt the first data cell.
  size_t pos = text.find('\n') + 1;
  text[pos] = 'x';
  std::stringstream bad(text);
  EXPECT_TRUE(ReadReportsCsv(&bad).status().IsInvalid());
}

TEST(ReportIoTest, FileWriteFailsOnBadPath) {
  EXPECT_TRUE(
      WriteReportsCsvFile({}, "/nonexistent-dir/reports.csv").IsIOError());
}

TEST(ReportIoTest, FileRoundTrip) {
  auto reports = SampleReports();
  const std::string path = ::testing::TempDir() + "/prompt_reports.csv";
  ASSERT_TRUE(WriteReportsCsvFile(reports, path).ok());
  std::ifstream in(path);
  auto parsed = ReadReportsCsv(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), reports.size());
}

}  // namespace
}  // namespace prompt
