#include "engine/cluster.h"

#include <gtest/gtest.h>

#include <set>

#include "core/prompt_partitioner.h"
#include "testing/test_helpers.h"

namespace prompt {
namespace {

ClusterOptions SmallCluster() {
  ClusterOptions opts;
  opts.nodes = 4;
  opts.cores_per_node = 2;
  opts.replication_factor = 2;
  return opts;
}

TEST(ClusterTest, AliveAccounting) {
  SimulatedCluster cluster(SmallCluster());
  EXPECT_EQ(cluster.alive_nodes(), 4u);
  EXPECT_EQ(cluster.total_alive_cores(), 8u);
  ASSERT_TRUE(cluster.KillNode(1).ok());
  EXPECT_EQ(cluster.alive_nodes(), 3u);
  EXPECT_FALSE(cluster.alive(1));
  EXPECT_TRUE(cluster.KillNode(1).IsInvalid());  // already dead
  ASSERT_TRUE(cluster.ReviveNode(1).ok());
  EXPECT_TRUE(cluster.alive(1));
  EXPECT_TRUE(cluster.KillNode(99).IsOutOfRange());
}

TEST(ClusterTest, PlacementUsesDistinctNodes) {
  SimulatedCluster cluster(SmallCluster());
  auto placements = cluster.PlaceBlocks(8);
  ASSERT_TRUE(placements.ok());
  ASSERT_EQ(placements->size(), 8u);
  for (const auto& p : *placements) {
    ASSERT_EQ(p.replicas.size(), 2u);
    EXPECT_NE(p.replicas[0], p.replicas[1]);
  }
  // Primaries round-robin over all nodes.
  std::set<uint32_t> primaries;
  for (const auto& p : *placements) primaries.insert(p.replicas[0]);
  EXPECT_EQ(primaries.size(), 4u);
}

TEST(ClusterTest, PlacementSkipsDeadNodes) {
  SimulatedCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.KillNode(0).ok());
  auto placements = cluster.PlaceBlocks(6);
  ASSERT_TRUE(placements.ok());
  for (const auto& p : *placements) {
    for (uint32_t n : p.replicas) EXPECT_NE(n, 0u);
  }
}

TEST(ClusterTest, PreferredNodeFallsBackToSurvivingReplica) {
  SimulatedCluster cluster(SmallCluster());
  BlockPlacement p{{0, 2}};
  EXPECT_EQ(*cluster.PreferredNode(p), 0u);
  ASSERT_TRUE(cluster.KillNode(0).ok());
  EXPECT_EQ(*cluster.PreferredNode(p), 2u);
  ASSERT_TRUE(cluster.KillNode(2).ok());
  EXPECT_TRUE(cluster.PreferredNode(p).status().IsKeyError());
}

TEST(ClusterTest, ReplicationCappedByAliveNodes) {
  ClusterOptions opts = SmallCluster();
  opts.replication_factor = 10;  // more than nodes
  SimulatedCluster cluster(opts);
  auto placements = cluster.PlaceBlocks(2);
  ASSERT_TRUE(placements.ok());
  EXPECT_EQ((*placements)[0].replicas.size(), 4u);
}

TEST(LocalitySchedulingTest, AllLocalWhenCoresSuffice) {
  SimulatedCluster cluster(SmallCluster());
  auto placements = *cluster.PlaceBlocks(8);  // 8 tasks on 8 cores
  std::vector<TimeMicros> durations(8, 100);
  auto r = ScheduleMapStageWithLocality(durations, placements, cluster);
  EXPECT_EQ(r.remote_tasks, 0u);
  EXPECT_EQ(r.makespan, 100);
}

TEST(LocalitySchedulingTest, RemoteExecutionPaysPenalty) {
  // All blocks on node 0 (rf=1), so its 2 cores saturate and other tasks
  // run remotely at 1.25x.
  ClusterOptions opts = SmallCluster();
  opts.replication_factor = 1;
  SimulatedCluster cluster(opts);
  std::vector<BlockPlacement> placements(8, BlockPlacement{{0}});
  std::vector<TimeMicros> durations(8, 100);
  auto r = ScheduleMapStageWithLocality(durations, placements, cluster);
  EXPECT_GT(r.remote_tasks, 0u);
  // Remote option: 6 cores on other nodes, 125 each; local: 2 cores, queued.
  EXPECT_LE(r.makespan, 250);
}

TEST(LocalitySchedulingTest, DeadNodeCoresAreNotUsed) {
  SimulatedCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.KillNode(3).ok());
  auto placements = *cluster.PlaceBlocks(6);
  std::vector<TimeMicros> durations(6, 100);
  auto r = ScheduleMapStageWithLocality(durations, placements, cluster);
  EXPECT_EQ(r.makespan, 100);  // 6 tasks on 6 alive cores
}

TEST(LocalitySchedulingTest, PrefersWaitingOverExpensiveRemote) {
  // One node holds everything, remote penalty enormous: waiting locally
  // beats going remote.
  ClusterOptions opts = SmallCluster();
  opts.replication_factor = 1;
  opts.remote_read_penalty = 50.0;
  SimulatedCluster cluster(opts);
  std::vector<BlockPlacement> placements(4, BlockPlacement{{0}});
  std::vector<TimeMicros> durations(4, 100);
  auto r = ScheduleMapStageWithLocality(durations, placements, cluster);
  EXPECT_EQ(r.remote_tasks, 0u);
  EXPECT_EQ(r.makespan, 200);  // 4 tasks, 2 local cores
}

TEST(BatchStoreTest, WriteReadRoundTrip) {
  SimulatedCluster cluster(SmallCluster());
  BatchStore store(&cluster);
  PromptPartitioner partitioner;
  auto data = testing::ZipfTuples(2000, 100, 1.0, 0, Seconds(1));
  auto batch = testing::RunBatch(partitioner, data, 4, 0, Seconds(1), 5);
  ASSERT_TRUE(store.Write(batch).ok());
  auto read = store.Read(5);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->num_tuples, 2000u);
  EXPECT_EQ(read->blocks.size(), 4u);
}

TEST(BatchStoreTest, SurvivesSingleNodeFailure) {
  SimulatedCluster cluster(SmallCluster());
  BatchStore store(&cluster);
  PromptPartitioner partitioner;
  auto data = testing::ZipfTuples(500, 50, 1.0, 0, Seconds(1));
  auto batch = testing::RunBatch(partitioner, data, 2, 0, Seconds(1), 9);
  ASSERT_TRUE(store.Write(batch).ok());
  // Kill nodes one at a time; with rf=2 the batch survives any single loss.
  for (uint32_t n = 0; n < 4; ++n) {
    ASSERT_TRUE(cluster.KillNode(n).ok());
    EXPECT_TRUE(store.Read(9).ok()) << "after killing node " << n;
    ASSERT_TRUE(cluster.ReviveNode(n).ok());
  }
}

TEST(BatchStoreTest, LosingAllReplicasIsDetected) {
  SimulatedCluster cluster(SmallCluster());
  BatchStore store(&cluster);
  PromptPartitioner partitioner;
  auto data = testing::ZipfTuples(500, 50, 1.0, 0, Seconds(1));
  auto batch = testing::RunBatch(partitioner, data, 2, 0, Seconds(1), 3);
  ASSERT_TRUE(store.Write(batch).ok());
  // Find and kill exactly the replica holders.
  uint32_t killed = 0;
  for (uint32_t n = 0; n < 4 && killed < 2; ++n) {
    if (store.BytesOnNode(n) > 0) {
      ASSERT_TRUE(cluster.KillNode(n).ok());
      ++killed;
    }
  }
  ASSERT_EQ(killed, 2u);
  auto r = store.Read(3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnknownError);
}

TEST(BatchStoreTest, WriteReportsFullReplicationWhenClusterIsHealthy) {
  SimulatedCluster cluster(SmallCluster());
  BatchStore store(&cluster);
  PromptPartitioner partitioner;
  auto data = testing::ZipfTuples(500, 50, 1.0, 0, Seconds(1));
  auto batch = testing::RunBatch(partitioner, data, 2, 0, Seconds(1), 4);
  auto copies = store.Write(batch);
  ASSERT_TRUE(copies.ok());
  EXPECT_EQ(*copies, 2u);
  EXPECT_EQ(store.AliveReplicaCount(4), 2u);
  EXPECT_EQ(store.UnderReplicatedCount(2), 0u);
}

TEST(BatchStoreTest, WriteDegradesGracefullyWhenNodesAreShort) {
  // 2 nodes, rf=2, one dead: the write succeeds with a single copy and the
  // batch is visibly under-replicated rather than failed.
  ClusterOptions opts = SmallCluster();
  opts.nodes = 2;
  SimulatedCluster cluster(opts);
  ASSERT_TRUE(cluster.KillNode(1).ok());
  BatchStore store(&cluster);
  PromptPartitioner partitioner;
  auto data = testing::ZipfTuples(500, 50, 1.0, 0, Seconds(1));
  auto batch = testing::RunBatch(partitioner, data, 2, 0, Seconds(1), 4);
  auto copies = store.Write(batch);
  ASSERT_TRUE(copies.ok());
  EXPECT_EQ(*copies, 1u);
  EXPECT_EQ(store.UnderReplicatedCount(2), 1u);
  EXPECT_TRUE(store.Read(4).ok());

  // Only when zero nodes are alive does the write actually fail.
  ASSERT_TRUE(cluster.KillNode(0).ok());
  EXPECT_TRUE(store.Write(batch).status().IsResourceExhausted());
}

TEST(BatchStoreTest, ReviveRestoresCapacityButNotDroppedCopies) {
  SimulatedCluster cluster(SmallCluster());
  BatchStore store(&cluster);
  PromptPartitioner partitioner;
  auto data = testing::ZipfTuples(500, 50, 1.0, 0, Seconds(1));
  auto batch = testing::RunBatch(partitioner, data, 2, 0, Seconds(1), 0);
  ASSERT_TRUE(store.Write(batch).ok());  // batch 0 -> copies on nodes 0, 1

  ASSERT_TRUE(cluster.KillNode(0).ok());
  store.DropNode(0);  // memory died with the process
  EXPECT_EQ(store.AliveReplicaCount(0), 1u);

  // Reviving brings the cores back but never the dropped copies.
  ASSERT_TRUE(cluster.ReviveNode(0).ok());
  EXPECT_EQ(cluster.total_alive_cores(), 8u);
  EXPECT_EQ(store.BytesOnNode(0), 0u);
  EXPECT_EQ(store.AliveReplicaCount(0), 1u);
  EXPECT_EQ(store.UnderReplicatedCount(2), 1u);
}

TEST(BatchStoreTest, TopUpRestoresTheReplicationFactor) {
  SimulatedCluster cluster(SmallCluster());
  BatchStore store(&cluster);
  PromptPartitioner partitioner;
  auto data = testing::ZipfTuples(500, 50, 1.0, 0, Seconds(1));
  for (uint64_t id = 0; id < 4; ++id) {
    auto batch = testing::RunBatch(partitioner, data, 2, 0, Seconds(1), id);
    ASSERT_TRUE(store.Write(batch).ok());
  }
  ASSERT_TRUE(cluster.KillNode(1).ok());
  store.DropNode(1);
  const uint32_t short_batches = store.UnderReplicatedCount(2);
  EXPECT_GT(short_batches, 0u);

  TopUpResult result = store.TopUpReplication(2);
  EXPECT_EQ(result.copies_added, short_batches);
  EXPECT_GT(result.bytes_copied, 0u);
  EXPECT_EQ(result.under_replicated, 0u);
  EXPECT_EQ(store.UnderReplicatedCount(2), 0u);
  for (uint64_t id = 0; id < 4; ++id) {
    EXPECT_EQ(store.AliveReplicaCount(id), 2u) << "batch " << id;
  }
  // New copies never land on the dead node.
  EXPECT_EQ(store.BytesOnNode(1), 0u);
}

TEST(BatchStoreTest, TopUpReportsPermanentlyLostBatches) {
  ClusterOptions opts = SmallCluster();
  opts.replication_factor = 1;
  SimulatedCluster cluster(opts);
  BatchStore store(&cluster);
  PromptPartitioner partitioner;
  auto data = testing::ZipfTuples(500, 50, 1.0, 0, Seconds(1));
  auto batch = testing::RunBatch(partitioner, data, 2, 0, Seconds(1), 0);
  ASSERT_TRUE(store.Write(batch).ok());  // single copy, on node 0

  ASSERT_TRUE(cluster.KillNode(0).ok());
  store.DropNode(0);
  TopUpResult result = store.TopUpReplication(1);
  EXPECT_EQ(result.copies_added, 0u);
  EXPECT_EQ(result.under_replicated, 1u);  // nothing left to copy from
}

TEST(ClusterTest, DoubleKillAndDoubleReviveAreCleanlyRejected) {
  SimulatedCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.KillNode(2).ok());
  EXPECT_TRUE(cluster.KillNode(2).IsInvalid());
  EXPECT_EQ(cluster.alive_nodes(), 3u);  // rejection left no side effects
  ASSERT_TRUE(cluster.ReviveNode(2).ok());
  EXPECT_TRUE(cluster.ReviveNode(2).IsInvalid());
  EXPECT_EQ(cluster.alive_nodes(), 4u);
  EXPECT_TRUE(cluster.ReviveNode(99).IsOutOfRange());
}

TEST(BatchStoreTest, EvictFreesMemoryAndForgets) {
  SimulatedCluster cluster(SmallCluster());
  BatchStore store(&cluster);
  PromptPartitioner partitioner;
  auto data = testing::ZipfTuples(500, 50, 1.0, 0, Seconds(1));
  auto batch = testing::RunBatch(partitioner, data, 2, 0, Seconds(1), 11);
  ASSERT_TRUE(store.Write(batch).ok());
  size_t total = 0;
  for (uint32_t n = 0; n < 4; ++n) total += store.BytesOnNode(n);
  EXPECT_GT(total, 0u);
  store.Evict(11);
  total = 0;
  for (uint32_t n = 0; n < 4; ++n) total += store.BytesOnNode(n);
  EXPECT_EQ(total, 0u);
  EXPECT_TRUE(store.Read(11).status().IsKeyError());
}

}  // namespace
}  // namespace prompt
