#include "engine/receiver.h"

#include <gtest/gtest.h>

#include "baselines/online_partitioners.h"
#include "core/prompt_partitioner.h"
#include "workload/sources.h"

namespace prompt {
namespace {

std::unique_ptr<TupleSource> MakeSource(double rate = 10000,
                                        uint64_t seed = 1) {
  ZipfKeyedSource::Params params;
  params.cardinality = 300;
  params.zipf = 1.0;
  params.seed = seed;
  params.rate = std::make_shared<ConstantRate>(rate);
  return std::make_unique<SynDSource>(std::move(params));
}

TEST(ReceiverTest, RequiresStart) {
  auto source = MakeSource();
  PromptPartitioner partitioner;
  StreamReceiver receiver(source.get(), &partitioner, ReceiverOptions{});
  auto r = receiver.NextBatch(4);
  EXPECT_TRUE(r.status().IsInvalid());
}

TEST(ReceiverTest, StartTwiceFails) {
  auto source = MakeSource();
  PromptPartitioner partitioner;
  StreamReceiver receiver(source.get(), &partitioner, ReceiverOptions{});
  ASSERT_TRUE(receiver.Start().ok());
  EXPECT_TRUE(receiver.Start().IsInvalid());
  receiver.Stop();
}

TEST(ReceiverTest, BatchesHaveExpectedSize) {
  auto source = MakeSource(10000);
  PromptPartitioner partitioner;
  ReceiverOptions opts;
  opts.batch_interval = Millis(200);
  StreamReceiver receiver(source.get(), &partitioner, opts);
  ASSERT_TRUE(receiver.Start().ok());
  for (int i = 0; i < 5; ++i) {
    auto batch = receiver.NextBatch(4);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    // 10k/s * 0.2s = 2000, minus the 5% slack deferral on the first batch.
    EXPECT_NEAR(static_cast<double>(batch->batch.num_tuples), 2000, 150);
    EXPECT_EQ(batch->batch.batch_id, static_cast<uint64_t>(i));
    EXPECT_EQ(batch->batch.blocks.size(), 4u);
  }
  receiver.Stop();
}

TEST(ReceiverTest, NoTupleLostOrDuplicatedAcrossBatches) {
  auto source = MakeSource(20000, 9);
  ShufflePartitioner partitioner;
  ReceiverOptions opts;
  opts.batch_interval = Millis(100);
  StreamReceiver receiver(source.get(), &partitioner, opts);
  ASSERT_TRUE(receiver.Start().ok());

  uint64_t received = 0;
  TimeMicros max_ts = 0;
  for (int i = 0; i < 10; ++i) {
    auto batch = receiver.NextBatch(2);
    ASSERT_TRUE(batch.ok());
    received += batch->batch.num_tuples;
    for (const auto& block : batch->batch.blocks) {
      for (const Tuple& t : block.tuples()) {
        EXPECT_GE(t.ts, 0);
        max_ts = std::max(max_ts, t.ts);
      }
    }
  }
  receiver.Stop();
  // Everything the reference source generates below max_ts must have been
  // received exactly once (the receiver never skips or repeats).
  auto ref = MakeSource(20000, 9);
  uint64_t expected = 0;
  Tuple t;
  while (ref->Next(&t) && t.ts <= max_ts) ++expected;
  EXPECT_EQ(received, expected);
}

TEST(ReceiverTest, EarlyReleaseDefersSlackTuples) {
  auto source = MakeSource(50000);
  ShufflePartitioner partitioner;
  ReceiverOptions opts;
  opts.batch_interval = Millis(200);
  opts.early_release_frac = 0.10;
  StreamReceiver receiver(source.get(), &partitioner, opts);
  ASSERT_TRUE(receiver.Start().ok());
  auto first = receiver.NextBatch(4);
  ASSERT_TRUE(first.ok());
  // First batch misses its slack window's tuples (~10% of 10000).
  EXPECT_LT(first->batch.num_tuples, 9500u);
  EXPECT_GE(first->deferred_tuples, 1u);
  // Second batch picks them up (slack carry-in + its own accumulation).
  auto second = receiver.NextBatch(4);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->batch.num_tuples, first->batch.num_tuples);
  receiver.Stop();
}

TEST(ReceiverTest, StopUnblocksAndCancels) {
  auto source = MakeSource();
  PromptPartitioner partitioner;
  StreamReceiver receiver(source.get(), &partitioner, ReceiverOptions{});
  ASSERT_TRUE(receiver.Start().ok());
  receiver.Stop();
  auto r = receiver.NextBatch(4);
  EXPECT_TRUE(r.status().IsCancelled());
}

TEST(ReceiverTest, BoundedQueueAppliesBackpressure) {
  // Tiny queue with a consumer that never drains: the producer must block
  // rather than grow memory, and Stop() must still join it cleanly.
  auto source = MakeSource(100000);
  PromptPartitioner partitioner;
  ReceiverOptions opts;
  opts.queue_capacity = 128;
  StreamReceiver receiver(source.get(), &partitioner, opts);
  ASSERT_TRUE(receiver.Start().ok());
  // Give the producer time to fill the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(receiver.queued(), 128u);
  receiver.Stop();
  SUCCEED();
}

}  // namespace
}  // namespace prompt
