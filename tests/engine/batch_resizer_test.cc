#include "engine/batch_resizer.h"

#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "workload/sources.h"

namespace prompt {
namespace {

TEST(BatchIntervalControllerTest, StableLoadKeepsIntervalSteady) {
  BatchIntervalController controller;
  TimeMicros interval = Seconds(1);
  // Processing at exactly the target ratio: the interval should converge,
  // not drift.
  for (int i = 0; i < 20; ++i) {
    interval = controller.OnBatchCompleted(
        interval, static_cast<TimeMicros>(0.85 * interval));
  }
  EXPECT_NEAR(static_cast<double>(interval), 1e6, 2e5);
}

TEST(BatchIntervalControllerTest, OverloadGrowsInterval) {
  BatchIntervalController controller;
  TimeMicros interval = Seconds(1);
  // Processing dominated by fixed overhead: longer intervals amortize it.
  // proc(T) = 0.4*T + 800ms.
  for (int i = 0; i < 30; ++i) {
    TimeMicros proc = static_cast<TimeMicros>(0.4 * interval) + Millis(800);
    interval = controller.OnBatchCompleted(interval, proc);
  }
  // Fixed point: T = b/(target-a) = 0.8/(0.85-0.4) ≈ 1.78s.
  EXPECT_GT(interval, Seconds(1.4));
  EXPECT_LT(interval, Seconds(2.4));
}

TEST(BatchIntervalControllerTest, LightLoadShrinksInterval) {
  BatchIntervalController controller;
  TimeMicros interval = Seconds(5);
  // proc(T) = 0.2*T + 100ms: fixed point ≈ 154ms.
  for (int i = 0; i < 40; ++i) {
    TimeMicros proc = static_cast<TimeMicros>(0.2 * interval) + Millis(100);
    interval = controller.OnBatchCompleted(interval, proc);
  }
  EXPECT_LT(interval, Millis(400));
}

TEST(BatchIntervalControllerTest, RespectsBounds) {
  BatchResizerOptions opts;
  opts.min_interval = Millis(500);
  opts.max_interval = Seconds(2);
  BatchIntervalController controller(opts);
  TimeMicros interval = Seconds(1);
  for (int i = 0; i < 20; ++i) {
    interval = controller.OnBatchCompleted(interval, interval * 10);
  }
  EXPECT_EQ(interval, Seconds(2));
  for (int i = 0; i < 40; ++i) {
    interval = controller.OnBatchCompleted(interval, Millis(1));
  }
  EXPECT_EQ(interval, Millis(500));
}

// Regression: a zero interval used to reach `ratio = p / t` with t == 0 and
// push NaN through std::clamp (which propagates NaN) into the returned
// interval, poisoning every later step. The input-domain guarantee is that
// any inputs produce a finite interval inside [min, max].
TEST(BatchIntervalControllerTest, ZeroIntervalDoesNotProduceNaN) {
  BatchIntervalController controller;
  TimeMicros interval = 0;
  for (int i = 0; i < 10; ++i) {
    interval = controller.OnBatchCompleted(interval, Millis(50));
    ASSERT_GE(interval, controller.options().min_interval);
    ASSERT_LE(interval, controller.options().max_interval);
  }
}

TEST(BatchIntervalControllerTest, ZeroProcessingShrinksTowardMin) {
  BatchIntervalController controller;
  TimeMicros interval = Seconds(5);
  for (int i = 0; i < 40; ++i) {
    interval = controller.OnBatchCompleted(interval, 0);
    ASSERT_GE(interval, controller.options().min_interval);
  }
  // Free batches: the ratio step drives the interval to its floor, never
  // below and never to a non-finite value.
  EXPECT_EQ(interval, controller.options().min_interval);
}

// A constant-interval window has zero interval variance, so the
// least-squares denominator n*Σt² - (Σt)² vanishes; the fit must be skipped
// in favor of the ratio fallback instead of dividing by ~0.
TEST(BatchIntervalControllerTest, ConstantIntervalWindowUsesRatioFallback) {
  BatchIntervalController controller;
  const TimeMicros fixed = Seconds(1);
  TimeMicros next = 0;
  for (int i = 0; i < 10; ++i) {
    // Feed the same interval every batch (as a fixed-interval engine would)
    // with processing above target: the controller should ask for growth.
    next = controller.OnBatchCompleted(fixed, Seconds(2));
  }
  EXPECT_GT(next, fixed);
  EXPECT_LE(next, controller.options().max_interval);
}

TEST(BatchIntervalControllerTest, AllInputCornersReturnFiniteClampedInterval) {
  BatchResizerOptions opts;
  opts.min_interval = Millis(100);
  opts.max_interval = Seconds(30);
  const TimeMicros intervals[] = {0, opts.min_interval, opts.max_interval};
  const TimeMicros procs[] = {0, Seconds(100000)};
  for (TimeMicros t0 : intervals) {
    for (TimeMicros p0 : procs) {
      BatchIntervalController controller(opts);
      TimeMicros interval = t0;
      // Hold each corner for several batches so degenerate windows (all-zero,
      // all-max, zero-variance) build up, then verify every output stays in
      // bounds — TimeMicros is integral, so in-bounds implies finite.
      for (int i = 0; i < 8; ++i) {
        interval = controller.OnBatchCompleted(interval, p0);
        ASSERT_GE(interval, opts.min_interval) << "t0=" << t0 << " p0=" << p0;
        ASSERT_LE(interval, opts.max_interval) << "t0=" << t0 << " p0=" << p0;
      }
    }
  }
}

TEST(BatchResizingEngineTest, IntervalAdaptsAndStabilizes) {
  // An overloaded fixed interval becomes stable once resizing kicks in,
  // at the cost of a longer interval (= higher latency floor), which is the
  // paper's §1 critique of the approach.
  ZipfKeyedSource::Params params;
  params.cardinality = 500;
  params.zipf = 1.0;
  params.rate = std::make_shared<ConstantRate>(10000);
  SynDSource source(std::move(params));

  EngineOptions opts;
  opts.batch_interval = Millis(200);
  opts.map_tasks = 4;
  opts.reduce_tasks = 4;
  opts.cores = 4;
  // Heavy fixed overhead per stage: short intervals can't amortize it.
  opts.cost.map_task_fixed_us = 120000;
  opts.cost.reduce_task_fixed_us = 120000;
  opts.cost.map_per_tuple_us = 20;
  opts.batch_resizing_enabled = true;
  opts.unstable_queue_intervals = 1e9;

  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          &source);
  auto summary = engine.Run(40);
  // Initially overloaded (W > 1 at 200ms), converges to W <= ~1.
  EXPECT_GT(summary.batches.front().w, 1.0);
  double late_w = 0;
  TimeMicros late_interval = 0;
  for (size_t i = summary.batches.size() - 5; i < summary.batches.size(); ++i) {
    late_w = std::max(late_w, summary.batches[i].w);
    late_interval = summary.batches[i].batch_interval;
  }
  EXPECT_LT(late_w, 1.05);
  EXPECT_GT(late_interval, Millis(200));  // paid with a longer interval
}

TEST(BatchResizingEngineTest, ReportsPerBatchInterval) {
  ZipfKeyedSource::Params params;
  params.cardinality = 100;
  params.zipf = 0.5;
  params.rate = std::make_shared<ConstantRate>(5000);
  SynDSource source(std::move(params));
  EngineOptions opts;
  opts.batch_interval = Millis(300);
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kShuffle),
                          &source);
  auto summary = engine.Run(3);
  for (const auto& b : summary.batches) {
    EXPECT_EQ(b.batch_interval, Millis(300));  // fixed when resizing off
  }
}

}  // namespace
}  // namespace prompt
