#include "engine/scheduler.h"

#include <gtest/gtest.h>

#include <numeric>

namespace prompt {
namespace {

TEST(SchedulerTest, EmptyStage) {
  auto s = ScheduleStage({}, 4);
  EXPECT_EQ(s.makespan, 0);
  EXPECT_TRUE(s.completion.empty());
}

TEST(SchedulerTest, FewerTasksThanCoresGivesMaxTask) {
  // Eqn. 1 regime: stage time = max task time.
  auto s = ScheduleStage({100, 300, 200}, 8);
  EXPECT_EQ(s.makespan, 300);
  EXPECT_EQ(s.completion[0], 100);
  EXPECT_EQ(s.completion[1], 300);
  EXPECT_EQ(s.completion[2], 200);
}

TEST(SchedulerTest, SingleCoreSerializes) {
  auto s = ScheduleStage({100, 300, 200}, 1);
  EXPECT_EQ(s.makespan, 600);
}

TEST(SchedulerTest, LptBalancesTwoCores) {
  // Tasks 5,4,3,3,3 on 2 cores. LPT assigns 5|4, 3 to the 4-core (7),
  // 3 to the 5-core (8), 3 to the 7-core (10): makespan 10 (optimal is 9;
  // LPT is a 4/3-approximation, which this instance exercises).
  auto s = ScheduleStage({5, 4, 3, 3, 3}, 2);
  EXPECT_EQ(s.makespan, 10);
}

TEST(SchedulerTest, MakespanAtLeastLowerBounds) {
  std::vector<TimeMicros> durations = {7, 13, 2, 9, 4, 4, 11, 6};
  for (uint32_t cores : {1u, 2u, 3u, 4u, 8u}) {
    auto s = ScheduleStage(durations, cores);
    TimeMicros total = std::accumulate(durations.begin(), durations.end(),
                                       TimeMicros{0});
    TimeMicros max_task =
        *std::max_element(durations.begin(), durations.end());
    EXPECT_GE(s.makespan, max_task);
    EXPECT_GE(s.makespan, (total + cores - 1) / cores);
    // LPT guarantee: within 4/3 + 1/(3m) of optimal >= lower bound * 4/3 + 1.
    EXPECT_LE(s.makespan,
              (total / cores + max_task) * 4 / 3 + 2);
  }
}

TEST(SchedulerTest, CompletionTimesMatchInputOrder) {
  auto s = ScheduleStage({10, 20}, 2);
  EXPECT_EQ(s.completion.size(), 2u);
  EXPECT_EQ(s.completion[0], 10);
  EXPECT_EQ(s.completion[1], 20);
}

TEST(SchedulerTest, EqualTasksPerfectlyParallel) {
  std::vector<TimeMicros> durations(16, 100);
  auto s = ScheduleStage(durations, 4);
  EXPECT_EQ(s.makespan, 400);
}

}  // namespace
}  // namespace prompt
