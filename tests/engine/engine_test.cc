#include "engine/engine.h"

#include <gtest/gtest.h>

#include <map>

#include "baselines/factory.h"
#include "workload/sources.h"

namespace prompt {
namespace {

std::shared_ptr<const RateProfile> Constant(double rate) {
  return std::make_shared<ConstantRate>(rate);
}

std::unique_ptr<TupleSource> MakeSource(double rate, double z = 1.0,
                                        uint64_t cardinality = 1000,
                                        uint64_t seed = 42) {
  ZipfKeyedSource::Params params;
  params.cardinality = cardinality;
  params.zipf = z;
  params.seed = seed;
  params.rate = Constant(rate);
  return std::make_unique<SynDSource>(std::move(params));
}

EngineOptions FastOptions() {
  EngineOptions opts;
  opts.batch_interval = Millis(200);
  opts.map_tasks = 4;
  opts.reduce_tasks = 4;
  opts.cores = 4;
  return opts;
}

TEST(EngineTest, RunsRequestedBatches) {
  auto source = MakeSource(20000);
  MicroBatchEngine engine(FastOptions(), JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  auto summary = engine.Run(10);
  EXPECT_EQ(summary.batches.size(), 10u);
  for (const auto& b : summary.batches) {
    EXPECT_NEAR(b.num_tuples, 4000, 600);  // 20k/s * 0.2s
    EXPECT_GT(b.processing_time, 0);
    EXPECT_GE(b.latency, FastOptions().batch_interval);
  }
}

TEST(EngineTest, BatchIdsAreSequentialAcrossRuns) {
  auto source = MakeSource(5000);
  MicroBatchEngine engine(FastOptions(), JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kShuffle),
                          source.get());
  auto s1 = engine.Run(3);
  auto s2 = engine.Run(2);
  EXPECT_EQ(s1.batches.back().batch_id, 2u);
  EXPECT_EQ(s2.batches.front().batch_id, 3u);
}

TEST(EngineTest, WindowAnswerMatchesNaiveReference) {
  // Drive the engine and an independent naive computation from two
  // identically-seeded sources; window answers must agree exactly.
  auto source = MakeSource(10000, 1.0, 300, 7);
  auto opts = FastOptions();
  const uint32_t kWindow = 3;
  MicroBatchEngine engine(opts, JobSpec::WordCount(kWindow),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  const uint32_t kBatches = 8;
  auto summary = engine.Run(kBatches);
  ASSERT_EQ(summary.batches.size(), kBatches);

  auto ref_source = MakeSource(10000, 1.0, 300, 7);
  std::vector<std::map<KeyId, double>> per_batch(kBatches);
  Tuple t;
  while (ref_source->Next(&t)) {
    uint64_t idx = static_cast<uint64_t>(t.ts) / opts.batch_interval;
    if (idx >= kBatches) break;
    per_batch[idx][t.key] += 1.0;
  }
  std::map<KeyId, double> expected;
  for (uint32_t b = kBatches - kWindow; b < kBatches; ++b) {
    for (const auto& [k, v] : per_batch[b]) expected[k] += v;
  }

  const auto& got = engine.window().Result();
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [k, v] : expected) {
    ASSERT_NEAR(got.at(k), v, 1e-9) << "key " << k;
  }
}

TEST(EngineTest, OverloadQueuesBatchesAndRaisesLatency) {
  auto opts = FastOptions();
  // 20k/s * 0.2s = 4000 tuples over 4 blocks = 1000/block; at 300 µs/tuple a
  // Map task alone takes 300 ms > the 200 ms interval.
  opts.cost.map_per_tuple_us = 300.0;
  opts.unstable_queue_intervals = 2.0;
  auto source = MakeSource(20000);
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  auto summary = engine.Run(10);
  EXPECT_FALSE(summary.stable);
  EXPECT_LT(summary.unstable_at_batch, 10u);
  // Queue delay must be increasing.
  EXPECT_GT(summary.batches.back().queue_delay,
            summary.batches[2].queue_delay);
  EXPECT_GT(summary.MeanW(2), 1.0);
}

TEST(EngineTest, LightLoadStaysStable) {
  auto source = MakeSource(5000);
  MicroBatchEngine engine(FastOptions(), JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  auto summary = engine.Run(10);
  EXPECT_TRUE(summary.stable);
  for (const auto& b : summary.batches) EXPECT_EQ(b.queue_delay, 0);
  EXPECT_LT(summary.MeanW(2), 1.0);
}

TEST(EngineTest, CollectsPartitionMetricsWhenAsked) {
  auto opts = FastOptions();
  opts.obs.collect_partition_metrics = true;
  auto source = MakeSource(20000, 1.4);
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kHash),
                          source.get());
  auto summary = engine.Run(3);
  EXPECT_GT(summary.batches[1].partition_metrics.distinct_keys, 0u);
  EXPECT_GT(summary.batches[1].partition_metrics.bsi, 0.0);
}

TEST(EngineTest, ElasticityScalesOutUnderRisingLoad) {
  auto opts = FastOptions();
  opts.elasticity_enabled = true;
  opts.cores_track_tasks = true;
  opts.map_tasks = 2;
  opts.reduce_tasks = 2;
  opts.elasticity.d = 2;
  // 60k/s peak * 0.2s / 2 blocks * 40µs = 240ms > 200ms interval at the
  // initial parallelism; scaling out restores stability.
  opts.cost.map_per_tuple_us = 40.0;

  ZipfKeyedSource::Params params;
  params.cardinality = 2000;
  params.zipf = 1.0;
  params.rate = std::make_shared<PiecewiseRate>(
      std::vector<PiecewiseRate::Knot>{{0, 5000}, {Seconds(4), 60000}});
  SynDSource source(std::move(params));

  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          &source);
  auto summary = engine.Run(25);
  EXPECT_GT(engine.map_tasks(), 2u) << "should have scaled out";
  // After scaling, W should have recovered for the later batches.
  double late_w = 0;
  for (size_t i = summary.batches.size() - 3; i < summary.batches.size(); ++i) {
    late_w = std::max(late_w, summary.batches[i].w);
  }
  EXPECT_LT(late_w, 2.0);
}

TEST(EngineTest, RecoveryVerificationRequiresReplication) {
  auto source = MakeSource(5000);
  MicroBatchEngine engine(FastOptions(), JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  engine.Run(2);
  EXPECT_TRUE(engine.VerifyRecoveryOfLastBatch().IsInvalid());
}

TEST(EngineTest, RecomputedBatchMatchesOriginal) {
  auto opts = FastOptions();
  opts.replicate_input = true;
  auto source = MakeSource(10000);
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  engine.Run(3);
  EXPECT_TRUE(engine.VerifyRecoveryOfLastBatch().ok());
}

TEST(EngineTest, RealModeRunsEndToEnd) {
  auto opts = FastOptions();
  opts.mode = ExecutionMode::kReal;
  opts.batch_interval = Millis(100);
  auto source = MakeSource(10000);
  MicroBatchEngine engine(opts, JobSpec::WordCount(2),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  auto summary = engine.Run(3);
  EXPECT_EQ(summary.batches.size(), 3u);
  for (const auto& b : summary.batches) {
    EXPECT_GT(b.map_makespan, 0);
  }
  EXPECT_FALSE(engine.window().Result().empty());
}

TEST(EngineTest, ThroughputSummary) {
  auto source = MakeSource(10000);
  MicroBatchEngine engine(FastOptions(), JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  auto summary = engine.Run(10);
  EXPECT_NEAR(summary.MeanThroughputTuplesPerSec(Millis(200), 2), 10000, 1500);
}

}  // namespace
}  // namespace prompt
