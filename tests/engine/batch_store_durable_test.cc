// BatchStore byte accounting and its layering over the durable tier: O(1)
// BytesOnNode stays balanced through every mutation path, over-budget nodes
// spill to disk instead of growing without bound, and batches whose memory
// replicas all died are rescued from the log by TopUpReplication.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/prompt_partitioner.h"
#include "engine/cluster.h"
#include "store/block_store.h"
#include "testing/test_helpers.h"

namespace prompt {
namespace {

ClusterOptions SmallCluster() {
  ClusterOptions opts;
  opts.nodes = 4;
  opts.cores_per_node = 2;
  opts.replication_factor = 2;
  return opts;
}

PartitionedBatch MakeBatch(uint64_t batch_id, uint64_t tuples = 500) {
  PromptPartitioner partitioner;
  auto data = testing::ZipfTuples(tuples, 50, 1.0, 0, Seconds(1),
                                  /*seed=*/batch_id + 1);
  return testing::RunBatch(partitioner, data, 2, 0, Seconds(1), batch_id);
}

size_t TotalBytes(const BatchStore& store, uint32_t nodes = 4) {
  size_t total = 0;
  for (uint32_t n = 0; n < nodes; ++n) total += store.BytesOnNode(n);
  return total;
}

std::unique_ptr<DurableBlockStore> OpenStore(const std::string& name,
                                             size_t budget_bytes = 0) {
  StoreOptions options;
  options.dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(options.dir);
  options.fsync = FsyncPolicy::kNever;  // these tests never crash
  options.memory_budget_bytes = budget_bytes;
  auto store = DurableBlockStore::Open(options);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).ValueUnsafe();
}

TEST(BatchStoreAccountingTest, BytesReturnToZeroAfterFullEviction) {
  SimulatedCluster cluster(SmallCluster());
  BatchStore store(&cluster);
  for (uint64_t id = 0; id < 6; ++id) {
    ASSERT_TRUE(store.Write(MakeBatch(id)).ok());
  }
  ASSERT_GT(TotalBytes(store), 0u);
  for (uint64_t id = 0; id < 6; ++id) store.Evict(id);
  EXPECT_EQ(TotalBytes(store), 0u);
  for (uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(store.BytesOnNode(n), 0u) << "node " << n;
  }
}

TEST(BatchStoreAccountingTest, BytesSurviveOverwriteAndDropNode) {
  SimulatedCluster cluster(SmallCluster());
  BatchStore store(&cluster);
  ASSERT_TRUE(store.Write(MakeBatch(1, 400)).ok());
  // Re-writing the same id (a replay) must swap the copies, not leak the
  // old bytes into the counters.
  ASSERT_TRUE(store.Write(MakeBatch(1, 800)).ok());
  const size_t after_rewrite = TotalBytes(store);
  EXPECT_EQ(after_rewrite, 2 * store.last_write_bytes());

  for (uint32_t n = 0; n < 4; ++n) store.DropNode(n);
  EXPECT_EQ(TotalBytes(store), 0u);
  store.Evict(1);  // evicting after the drop must not underflow
  EXPECT_EQ(TotalBytes(store), 0u);
}

TEST(BatchStoreAccountingTest, TopUpKeepsCountersBalanced) {
  SimulatedCluster cluster(SmallCluster());
  BatchStore store(&cluster);
  ASSERT_TRUE(store.Write(MakeBatch(3)).ok());
  uint32_t holder = 4;
  for (uint32_t n = 0; n < 4; ++n) {
    if (store.BytesOnNode(n) > 0) { holder = n; break; }
  }
  ASSERT_LT(holder, 4u);
  ASSERT_TRUE(cluster.KillNode(holder).ok());
  store.DropNode(holder);
  store.TopUpReplication(2);
  EXPECT_EQ(store.AliveReplicaCount(3), 2u);
  EXPECT_EQ(TotalBytes(store), 2 * store.last_write_bytes());
  store.Evict(3);
  EXPECT_EQ(TotalBytes(store), 0u);
}

// Serialized size of the canonical test batch, so the spill test's budget
// is "one batch per node" whatever the encoder's framing overhead is.
size_t EncodeBatchSizeProbe() {
  SimulatedCluster cluster(SmallCluster());
  BatchStore probe(&cluster);
  EXPECT_TRUE(probe.Write(MakeBatch(0)).ok());
  return probe.last_write_bytes();
}

TEST(BatchStoreDurableTest, SpillsOldestCopiesPastMemoryBudget) {
  SimulatedCluster cluster(SmallCluster());
  BatchStore store(&cluster);
  // Budget two batches' worth per node; write six. Old copies must spill.
  const size_t one_batch = EncodeBatchSizeProbe();
  auto durable = OpenStore("spill", /*budget_bytes=*/one_batch);
  store.AttachDurable(durable.get(), 0);
  uint32_t spills = 0;
  for (uint64_t id = 0; id < 6; ++id) {
    ASSERT_TRUE(store.Write(MakeBatch(id)).ok());
    spills += store.last_spill_count();
  }
  EXPECT_GT(spills, 0u);
  for (uint32_t n = 0; n < 4; ++n) {
    // Bounded by the budget plus at most the freshly-written copy (the one
    // copy the spill policy refuses to drop); batch sizes wobble slightly
    // with the per-id seed, hence the factor-of-two slack.
    EXPECT_LE(store.BytesOnNode(n), 2 * one_batch) << "node " << n;
  }
  // Spilled batches are NOT lost: Read falls back to the durable log.
  for (uint64_t id = 0; id < 6; ++id) {
    auto read = store.Read(id);
    ASSERT_TRUE(read.ok()) << "batch " << id << ": "
                           << read.status().ToString();
    EXPECT_EQ(read->batch_id, id);
  }

  for (uint64_t id = 0; id < 6; ++id) store.Evict(id);
  EXPECT_EQ(TotalBytes(store), 0u);
  EXPECT_EQ(durable->live_batches(), 0u);
}

TEST(BatchStoreDurableTest, TopUpRescuesFromDurableWhenMemoryIsGone) {
  SimulatedCluster cluster(SmallCluster());
  BatchStore store(&cluster);
  auto durable = OpenStore("rescue");
  store.AttachDurable(durable.get(), 0);
  ASSERT_TRUE(store.Write(MakeBatch(7)).ok());
  // Kill BOTH replica holders and drop their memory: without the log this
  // batch would be permanently lost (the TopUpReportsPermanentlyLost case).
  for (uint32_t n = 0; n < 4; ++n) {
    if (store.BytesOnNode(n) > 0) {
      ASSERT_TRUE(cluster.KillNode(n).ok());
      store.DropNode(n);
    }
  }
  EXPECT_EQ(store.AliveReplicaCount(7), 0u);
  TopUpResult result = store.TopUpReplication(2);
  EXPECT_GT(result.copies_added, 0u);
  EXPECT_GT(store.durable_rescues(), 0u);
  auto read = store.Read(7);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->batch_id, 7u);
  // The counter is per-call: a follow-up with nothing left to rescue
  // reads zero, not the running total.
  store.TopUpReplication(2);
  EXPECT_EQ(store.durable_rescues(), 0u);
}

TEST(BatchStoreDurableTest, RestoreDoesNotGrowTheLog) {
  SimulatedCluster cluster(SmallCluster());
  auto durable = OpenStore("restore");
  BatchStore store(&cluster);
  store.AttachDurable(durable.get(), 0);
  ASSERT_TRUE(store.Write(MakeBatch(2)).ok());
  const uint64_t disk_after_write = durable->disk_bytes();
  // Recovery re-places memory copies from an already-durable batch; the
  // log must not gain a duplicate record.
  ASSERT_TRUE(store.Restore(MakeBatch(2)).ok());
  EXPECT_EQ(durable->disk_bytes(), disk_after_write);
  EXPECT_EQ(TotalBytes(store), 2 * store.last_write_bytes());
}

}  // namespace
}  // namespace prompt
