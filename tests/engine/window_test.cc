#include "engine/window.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"

namespace prompt {
namespace {

TEST(WindowTest, AccumulatesWithinWindow) {
  WindowState window(std::make_shared<SumReduce>(), 3);
  window.AddBatch({{1, 10.0}, {2, 5.0}});
  window.AddBatch({{1, 7.0}});
  EXPECT_EQ(window.depth(), 2u);
  EXPECT_DOUBLE_EQ(window.Result().at(1), 17.0);
  EXPECT_DOUBLE_EQ(window.Result().at(2), 5.0);
}

TEST(WindowTest, ExpiresOldBatchesWithInverse) {
  WindowState window(std::make_shared<SumReduce>(), 2);
  window.AddBatch({{1, 10.0}});
  window.AddBatch({{1, 20.0}});
  window.AddBatch({{1, 30.0}});  // first batch expires
  EXPECT_EQ(window.depth(), 2u);
  EXPECT_DOUBLE_EQ(window.Result().at(1), 50.0);
}

TEST(WindowTest, KeyDisappearsWhenAggregateReturnsToIdentity) {
  WindowState window(std::make_shared<SumReduce>(), 1);
  window.AddBatch({{42, 3.0}});
  EXPECT_EQ(window.Result().count(42), 1u);
  window.AddBatch({{7, 1.0}});  // batch with 42 expires, aggregate -> 0
  EXPECT_EQ(window.Result().count(42), 0u);
  EXPECT_EQ(window.Result().count(7), 1u);
}

TEST(WindowTest, SlidingMatchesRecomputedReference) {
  WindowState window(std::make_shared<SumReduce>(), 4);
  std::vector<std::vector<KV>> batches;
  Rng rng;
  for (int b = 0; b < 20; ++b) {
    std::vector<KV> batch;
    for (uint64_t k = 0; k < 10; ++k) {
      batch.push_back(KV{k, static_cast<double>((b * 7 + k * 3) % 13)});
    }
    batches.push_back(batch);
    window.AddBatch(batch);

    // Reference: recompute over the last 4 batches from scratch.
    std::map<KeyId, double> ref;
    size_t lo = batches.size() > 4 ? batches.size() - 4 : 0;
    for (size_t i = lo; i < batches.size(); ++i) {
      for (const KV& kv : batches[i]) ref[kv.key] += kv.value;
    }
    for (const auto& [k, v] : ref) {
      ASSERT_NEAR(window.Result().at(k), v, 1e-9)
          << "batch " << b << " key " << k;
    }
  }
}

TEST(WindowTest, TopKOrdersByAggregate) {
  WindowState window(std::make_shared<SumReduce>(), 5);
  window.AddBatch({{1, 5.0}, {2, 50.0}, {3, 20.0}, {4, 20.0}});
  auto top = window.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 2u);
  EXPECT_DOUBLE_EQ(top[0].value, 50.0);
  EXPECT_EQ(top[1].key, 3u);  // ties broken by key
  EXPECT_EQ(top[2].key, 4u);
}

TEST(WindowTest, TopKClampsToAvailableKeys) {
  WindowState window(std::make_shared<SumReduce>(), 2);
  window.AddBatch({{1, 1.0}});
  EXPECT_EQ(window.TopK(10).size(), 1u);
}

TEST(WindowTest, MaxWindowRecomputesOnExpiry) {
  // MAX is not invertible: when the batch holding the maximum expires, the
  // answer must fall back to the next-largest in-window value.
  WindowState window(std::make_shared<MaxReduce>(), 2);
  window.AddBatch({{1, 100.0}});
  window.AddBatch({{1, 30.0}});
  EXPECT_DOUBLE_EQ(window.Result().at(1), 100.0);
  window.AddBatch({{1, 40.0}});  // the 100 expires
  EXPECT_DOUBLE_EQ(window.Result().at(1), 40.0);
  window.AddBatch({{1, 10.0}});  // the 30... already expired; 40 remains
  EXPECT_DOUBLE_EQ(window.Result().at(1), 40.0);
}

TEST(WindowTest, MinWindowMatchesRecomputedReference) {
  WindowState window(std::make_shared<MinReduce>(), 3);
  Rng rng(4);
  std::vector<std::vector<KV>> batches;
  for (int b = 0; b < 15; ++b) {
    std::vector<KV> batch;
    for (uint64_t k = 0; k < 5; ++k) {
      batch.push_back(KV{k, static_cast<double>(rng.NextBounded(1000))});
    }
    batches.push_back(batch);
    window.AddBatch(batch);

    std::map<KeyId, double> ref;
    size_t lo = batches.size() > 3 ? batches.size() - 3 : 0;
    for (size_t i = lo; i < batches.size(); ++i) {
      for (const KV& kv : batches[i]) {
        auto [it, ins] = ref.try_emplace(kv.key, kv.value);
        it->second = std::min(it->second, kv.value);
      }
    }
    for (const auto& [k, v] : ref) {
      ASSERT_DOUBLE_EQ(window.Result().at(k), v) << "batch " << b;
    }
  }
}

TEST(WindowTest, MaxKeyVanishesWhenItsOnlyBatchExpires) {
  WindowState window(std::make_shared<MaxReduce>(), 1);
  window.AddBatch({{5, 2.0}});
  EXPECT_EQ(window.Result().count(5), 1u);
  window.AddBatch({{6, 1.0}});
  EXPECT_EQ(window.Result().count(5), 0u);
}

TEST(WindowCheckpointTest, RoundTripPreservesStateAndBehaviour) {
  WindowState window(std::make_shared<SumReduce>(), 3);
  window.AddBatch({{1, 5.0}, {2, 2.0}});
  window.AddBatch({{1, 3.0}});
  std::string checkpoint = window.Checkpoint();

  WindowState restored(std::make_shared<SumReduce>(), 3);
  ASSERT_TRUE(restored.Restore(checkpoint).ok());
  EXPECT_EQ(restored.depth(), 2u);
  EXPECT_EQ(restored.Result(), window.Result());

  // Future behaviour matches too: the next expiry retracts the same batch.
  window.AddBatch({{2, 1.0}});
  restored.AddBatch({{2, 1.0}});
  window.AddBatch({{3, 9.0}});  // first batch expires in both
  restored.AddBatch({{3, 9.0}});
  EXPECT_EQ(restored.Result(), window.Result());
}

TEST(WindowCheckpointTest, EmptyWindowRoundTrip) {
  WindowState window(std::make_shared<SumReduce>(), 4);
  WindowState restored(std::make_shared<SumReduce>(), 4);
  ASSERT_TRUE(restored.Restore(window.Checkpoint()).ok());
  EXPECT_EQ(restored.depth(), 0u);
  EXPECT_TRUE(restored.Result().empty());
}

TEST(WindowCheckpointTest, GeometryMismatchRejected) {
  WindowState window(std::make_shared<SumReduce>(), 3);
  window.AddBatch({{1, 1.0}});
  WindowState other(std::make_shared<SumReduce>(), 5);
  EXPECT_TRUE(other.Restore(window.Checkpoint()).IsInvalid());
}

TEST(WindowCheckpointTest, CorruptionDetected) {
  WindowState window(std::make_shared<SumReduce>(), 2);
  window.AddBatch({{1, 1.0}, {2, 2.0}});
  std::string bytes = window.Checkpoint();
  bytes[bytes.size() / 2] ^= 0x10;
  WindowState restored(std::make_shared<SumReduce>(), 2);
  EXPECT_TRUE(restored.Restore(bytes).IsInvalid());
  EXPECT_TRUE(restored.Restore("junk").IsInvalid());
  EXPECT_TRUE(restored.Restore(bytes.substr(0, 10)).IsInvalid());
}

TEST(WindowCheckpointTest, WorksForNonInvertibleAggregates) {
  WindowState window(std::make_shared<MaxReduce>(), 2);
  window.AddBatch({{1, 7.0}});
  window.AddBatch({{1, 3.0}});
  WindowState restored(std::make_shared<MaxReduce>(), 2);
  ASSERT_TRUE(restored.Restore(window.Checkpoint()).ok());
  EXPECT_DOUBLE_EQ(restored.Result().at(1), 7.0);
  restored.AddBatch({{1, 4.0}});  // the 7 expires
  EXPECT_DOUBLE_EQ(restored.Result().at(1), 4.0);
}

TEST(WindowTest, EmptyWindow) {
  WindowState window(std::make_shared<SumReduce>(), 2);
  EXPECT_TRUE(window.Result().empty());
  EXPECT_TRUE(window.TopK(5).empty());
  EXPECT_EQ(window.depth(), 0u);
}

}  // namespace
}  // namespace prompt
