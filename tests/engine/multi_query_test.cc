// Multi-query execution over shared batching: one batching/partitioning
// phase feeds several streaming queries (count, sum, max) with independent
// windows.
#include <gtest/gtest.h>

#include <map>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "workload/sources.h"

namespace prompt {
namespace {

std::unique_ptr<TupleSource> MakeSource(uint64_t seed = 61) {
  ZipfKeyedSource::Params params;
  params.cardinality = 300;
  params.zipf = 0.8;
  params.seed = seed;
  params.rate = std::make_shared<ConstantRate>(8000);
  return std::make_unique<SynDSource>(std::move(params));
}

TEST(MultiQueryTest, ExtraQueriesComputeIndependently) {
  auto source = MakeSource();
  EngineOptions opts;
  opts.batch_interval = Millis(250);
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  auto sum_id = engine.AddQuery(JobSpec::KeyedSum(4));
  ASSERT_TRUE(sum_id.ok());
  JobSpec max_job;
  max_job.map = std::make_shared<ValueMap>();
  max_job.reduce = std::make_shared<MaxReduce>();
  max_job.window_batches = 2;
  auto max_id = engine.AddQuery(max_job);
  ASSERT_TRUE(max_id.ok());

  engine.Run(5);

  // SynD values are all 1.0: per-key SUM == COUNT, per-key MAX == 1.
  const auto& count_window = engine.window().Result();
  auto sum_window = engine.QueryWindow(*sum_id);
  ASSERT_TRUE(sum_window.ok());
  auto max_window = engine.QueryWindow(*max_id);
  ASSERT_TRUE(max_window.ok());

  ASSERT_EQ((*sum_window)->Result().size(), count_window.size());
  for (const auto& [k, v] : count_window) {
    EXPECT_DOUBLE_EQ((*sum_window)->Result().at(k), v) << k;
  }
  EXPECT_EQ((*max_window)->window_batches(), 2u);
  for (const auto& [k, v] : (*max_window)->Result()) {
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

TEST(MultiQueryTest, ExtraQueriesExtendProcessingTime) {
  auto run_with_queries = [](int extra) {
    auto source = MakeSource(9);
    EngineOptions opts;
    opts.batch_interval = Millis(500);
    opts.cost.map_per_tuple_us = 50;
    opts.unstable_queue_intervals = 1e9;
    MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    for (int i = 0; i < extra; ++i) {
      EXPECT_TRUE(engine.AddQuery(JobSpec::KeyedSum(4)).ok());
    }
    return engine.Run(3).batches.back().processing_time;
  };
  TimeMicros one = run_with_queries(0);
  TimeMicros three = run_with_queries(2);
  EXPECT_GT(three, 2 * one);  // three sequential jobs per batch
}

TEST(MultiQueryTest, AddQueryAfterRunIsRejected) {
  auto source = MakeSource();
  EngineOptions opts;
  opts.batch_interval = Millis(250);
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  engine.Run(1);
  EXPECT_TRUE(engine.AddQuery(JobSpec::KeyedSum(4)).status().IsInvalid());
}

TEST(MultiQueryTest, QueryWindowBoundsChecked) {
  auto source = MakeSource();
  EngineOptions opts;
  opts.batch_interval = Millis(250);
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  EXPECT_TRUE(engine.QueryWindow(0).status().IsOutOfRange());
}

TEST(MultiQueryStressTest, LargeBatchManyQueries) {
  // 0.5M tuples across 2 batches with 3 concurrent queries: a smoke-level
  // stress of the shared-batching path.
  ZipfKeyedSource::Params params;
  params.cardinality = 50000;
  params.zipf = 1.1;
  params.rate = std::make_shared<ConstantRate>(250000);
  SynDSource source(std::move(params));
  EngineOptions opts;
  opts.batch_interval = Seconds(1);
  opts.map_tasks = 16;
  opts.reduce_tasks = 16;
  opts.cores = 16;
  opts.unstable_queue_intervals = 1e9;
  MicroBatchEngine engine(opts, JobSpec::WordCount(2),
                          CreatePartitioner(PartitionerType::kPrompt),
                          &source);
  ASSERT_TRUE(engine.AddQuery(JobSpec::KeyedSum(2)).ok());
  ASSERT_TRUE(engine.AddQuery(JobSpec::WordCount(1)).ok());
  auto summary = engine.Run(2);
  for (const auto& b : summary.batches) {
    EXPECT_NEAR(static_cast<double>(b.num_tuples), 250000, 2000);
  }
  EXPECT_GT(engine.window().Result().size(), 20000u);
}

}  // namespace
}  // namespace prompt
