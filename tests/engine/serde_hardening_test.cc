// Adversarial serde corpus: the durable store feeds DecodeBatch bytes that
// crossed a crash, so the decoder must survive truncation at every length,
// any single bit flip, and forged counts engineered to overflow size
// arithmetic — always a clean Status, never a crash or giant allocation.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/hash.h"
#include "common/random.h"
#include "core/prompt_partitioner.h"
#include "engine/serde.h"
#include "testing/test_helpers.h"

namespace prompt {
namespace {

using testing::RunBatch;
using testing::ZipfTuples;

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}
void PutU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

std::string SmallBatchBytes() {
  PromptPartitioner partitioner;
  auto data = ZipfTuples(40, 50, 1.1, 0, Seconds(1));
  return EncodeBatch(RunBatch(partitioner, data, 2, 0, Seconds(1), 9));
}

TEST(SerdeHardeningTest, TruncationAtEveryLengthFailsCleanly) {
  const std::string bytes = SmallBatchBytes();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto r = DecodeBatch(bytes.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
    EXPECT_TRUE(r.status().IsInvalid()) << "cut=" << cut;
  }
}

TEST(SerdeHardeningTest, EveryBitFlipIsDetected) {
  const std::string bytes = SmallBatchBytes();
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit : {0, 3, 7}) {
      std::string flipped = bytes;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      EXPECT_FALSE(DecodeBatch(flipped).ok()) << "byte=" << i << " bit=" << bit;
    }
  }
}

TEST(SerdeHardeningTest, ForgedTupleCountRejectedWithoutAllocation) {
  // A count near 2^64 wraps count*24 back into small numbers: the decoder
  // must bound by division, reject, and above all never reserve() by it.
  for (uint64_t forged :
       {~0ull, ~0ull / 24 + 1, 0x0AAAAAAAAAAAAAAAull, 1ull << 62}) {
    std::string block;
    PutU32(0, &block);        // block_id
    PutU64(forged, &block);   // tuple count
    PutU64(0, &block);        // fragment count
    block.append(48, '\0');   // a couple of real tuples' worth of bytes
    size_t off = 0;
    auto r = DecodeBlock(block, &off);
    ASSERT_FALSE(r.ok()) << "forged=" << forged;
    EXPECT_TRUE(r.status().IsInvalid());
  }
}

TEST(SerdeHardeningTest, ForgedFragmentCountRejectedWithoutAllocation) {
  for (uint64_t forged : {~0ull, ~0ull / 17 + 1, 1ull << 61}) {
    std::string block;
    PutU32(1, &block);
    PutU64(0, &block);        // no tuples
    PutU64(forged, &block);   // fragment count
    block.append(34, '\0');
    size_t off = 0;
    auto r = DecodeBlock(block, &off);
    ASSERT_FALSE(r.ok()) << "forged=" << forged;
    EXPECT_TRUE(r.status().IsInvalid());
  }
}

TEST(SerdeHardeningTest, ForgedBlockCountRejected) {
  // Hand-build a batch whose checksum is *valid* so the forged block count
  // reaches the header bound — corruption checks must not be the only
  // thing standing between a forged count and blocks.reserve().
  std::string payload;
  PutU64(1, &payload);               // batch_id
  PutU64(0, &payload);               // seal_time
  PutU64(0, &payload);               // num_tuples
  PutU64(0, &payload);               // num_keys
  PutU64(0, &payload);               // partition_cost
  PutU32(0xFFFFFFFFu, &payload);     // num_blocks: forged
  // Re-encode through the real framing by splicing into a valid envelope:
  // take an empty batch, replace its payload, recompute nothing — instead
  // verify the decoder rejects before checksum use would matter.
  std::string out;
  PutU32(0x50524d42u, &out);  // kBatchMagic
  // FNV-1a + Mix64, mirrored from serde.cc, so the checksum verifies.
  uint64_t h = 1469598103934665603ULL;
  for (char c : payload) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  PutU64(Mix64(h), &out);
  out += payload;
  auto r = DecodeBatch(out);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("inconsistent"), std::string::npos);
}

TEST(SerdeHardeningTest, RandomGarbageCorpusNeverCrashes) {
  Rng rng(2024);
  for (int round = 0; round < 500; ++round) {
    std::string garbage(rng.NextBounded(300), '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.NextBounded(256));
    }
    EXPECT_FALSE(DecodeBatch(garbage).ok());
    size_t off = 0;
    (void)DecodeBlock(garbage, &off);  // must return, cleanly, either way
  }
}

TEST(SerdeHardeningTest, TruncatedBlockPayloadInsideValidLengths) {
  // A block whose header is plausible (small counts) but whose payload was
  // cut mid-tuple: the per-field reads must catch it.
  std::string block;
  PutU32(2, &block);
  PutU64(3, &block);   // claims 3 tuples
  PutU64(0, &block);
  block.append(3 * 24, 'x');
  for (size_t cut = 20; cut < block.size(); cut += 7) {
    std::string partial = block.substr(0, cut);
    size_t off = 0;
    auto r = DecodeBlock(partial, &off);
    if (cut < block.size()) {
      EXPECT_FALSE(r.ok()) << "cut=" << cut;
    }
  }
}

}  // namespace
}  // namespace prompt
