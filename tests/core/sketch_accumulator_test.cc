#include "core/sketch_accumulator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "core/accumulator_api.h"
#include "core/prompt_partitioner.h"

namespace prompt {
namespace {

AccumulatorOptions SketchOpts(uint32_t capacity, uint64_t n_est,
                              uint64_t k_avg, uint32_t tail_buckets = 16) {
  AccumulatorOptions o;
  o.estimated_tuples = n_est;
  o.avg_keys = k_avg;
  o.sketch.capacity = capacity;
  o.sketch.tail_buckets = tail_buckets;
  return o;
}

// Replays a Zipf stream into the accumulator, returning the truth counts.
std::map<KeyId, uint64_t> FeedZipf(Accumulator& acc, uint64_t seed, size_t n,
                                   uint64_t cardinality, double z) {
  Rng rng(seed);
  ZipfSampler zipf(cardinality, z);
  std::map<KeyId, uint64_t> truth;
  acc.Begin(0, 1000000);
  for (size_t i = 0; i < n; ++i) {
    KeyId k = zipf.Sample(rng);
    ++truth[k];
    acc.OnTuple(Tuple{static_cast<TimeMicros>(i * 10), k, 1.0});
  }
  return truth;
}

TEST(SketchAccumulatorTest, FactoryAndParse) {
  AccumulatorKind kind;
  ASSERT_TRUE(ParseAccumulatorKind("sketch", &kind));
  EXPECT_EQ(kind, AccumulatorKind::kSketch);
  auto acc = MakeAccumulator(AccumulatorKind::kSketch);
  EXPECT_STREQ(acc->name(), "sketch");
  EXPECT_STREQ(AccumulatorKindName(AccumulatorKind::kSketch), "sketch");
}

TEST(SketchAccumulatorTest, EveryTupleReachableExactlyOnce) {
  SketchAccumulator acc(SketchOpts(64, 20000, 500));
  FeedZipf(acc, 42, 20000, 2000, 1.1);
  AccumulatedBatch batch = acc.Seal();
  EXPECT_EQ(batch.num_tuples(), 20000u);

  uint64_t seen = 0;
  for (const SortedKeyRun& run : batch.keys()) {
    uint64_t chain_len = 0;
    batch.ForEachTuple(run, 0, run.count + 10, [&](const Tuple& t) {
      EXPECT_EQ(t.key, run.key);
      ++chain_len;
    });
    // run.count must be chain-exact: Alg. 2 uses counts as take-amounts.
    EXPECT_EQ(chain_len, run.count) << "key " << run.key;
    seen += chain_len;
  }
  const SketchBatchStats& stats = batch.stats();
  EXPECT_TRUE(stats.sketch_mode);
  EXPECT_EQ(seen, stats.head_tuples);
  for (const TailBucket& bucket : batch.tail()) {
    uint64_t chain_len = 0;
    batch.ForEachTailTuple(bucket, [&](const Tuple&) { ++chain_len; });
    EXPECT_EQ(chain_len, bucket.tuples);
    seen += chain_len;
  }
  EXPECT_EQ(seen, 20000u);
  EXPECT_EQ(stats.head_tuples + stats.tail_tuples, 20000u);
}

TEST(SketchAccumulatorTest, HeavyKeysGetPromotedUnderSkew) {
  AccumulatorOptions opts = SketchOpts(128, 50000, 1000);
  opts.sketch.promote_threshold = 50;
  SketchAccumulator acc(opts);
  auto truth = FeedZipf(acc, 7, 50000, 50000, 1.2);
  AccumulatedBatch batch = acc.Seal();

  // The top few true heavy hitters must all hold exact runs.
  std::vector<std::pair<uint64_t, KeyId>> ranked;
  for (const auto& [k, c] : truth) ranked.push_back({c, k});
  std::sort(ranked.rbegin(), ranked.rend());
  std::set<KeyId> head_keys;
  for (const SortedKeyRun& run : batch.keys()) head_keys.insert(run.key);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(head_keys.count(ranked[i].second))
        << "rank-" << i << " key " << ranked[i].second << " (count "
        << ranked[i].first << ") not promoted";
  }
  // Skewed stream: the exact head must cover a majority of tuples.
  EXPECT_GT(batch.stats().head_coverage(), 0.5);
  EXPECT_LE(batch.stats().promoted_keys, 128u);
}

TEST(SketchAccumulatorTest, TailKeysStayInOneBucket) {
  SketchAccumulator acc(SketchOpts(32, 10000, 1000, 8));
  FeedZipf(acc, 11, 10000, 5000, 0.9);
  AccumulatedBatch batch = acc.Seal();
  std::map<KeyId, size_t> key_bucket;
  for (size_t b = 0; b < batch.tail().size(); ++b) {
    batch.ForEachTailTuple(batch.tail()[b], [&](const Tuple& t) {
      auto [it, inserted] = key_bucket.insert({t.key, b});
      EXPECT_EQ(it->second, b) << "tail key " << t.key << " in two buckets";
    });
  }
}

TEST(SketchAccumulatorTest, KeyStateMemoryIndependentOfCardinality) {
  // The entire point of the mode: key-proportional state must not grow with
  // the distinct-key count. Feed 20x the cardinality, allow only slack from
  // amortized vector growth.
  SketchAccumulator small(SketchOpts(256, 100000, 2000));
  FeedZipf(small, 3, 100000, 5000, 1.0);
  small.Seal();
  SketchAccumulator large(SketchOpts(256, 100000, 2000));
  FeedZipf(large, 3, 100000, 100000, 1.0);
  large.Seal();
  EXPECT_LT(large.key_state_bytes(), 2 * small.key_state_bytes());
}

TEST(SketchAccumulatorTest, SealOrderingIsQuasiDescending) {
  SketchAccumulator acc(SketchOpts(64, 30000, 500));
  auto truth = FeedZipf(acc, 19, 30000, 3000, 1.3);
  AccumulatedBatch batch = acc.Seal();
  ASSERT_GT(batch.keys().size(), 4u);
  // The first-ranked key should be a genuinely heavy one: within the top
  // few of the true ranking (rank_base + budgeted updates are approximate).
  std::vector<std::pair<uint64_t, KeyId>> ranked;
  for (const auto& [k, c] : truth) ranked.push_back({c, k});
  std::sort(ranked.rbegin(), ranked.rend());
  std::set<KeyId> top8;
  for (size_t i = 0; i < 8 && i < ranked.size(); ++i) {
    top8.insert(ranked[i].second);
  }
  EXPECT_TRUE(top8.count(batch.keys()[0].key));
}

TEST(SketchAccumulatorTest, PostSortSealKeepsChainsIntact) {
  SketchAccumulator acc(SketchOpts(64, 20000, 500));
  FeedZipf(acc, 23, 20000, 2000, 1.1);
  AccumulatedBatch batch = acc.SealWithPostSort();
  for (const SortedKeyRun& run : batch.keys()) {
    uint64_t chain_len = 0;
    batch.ForEachTuple(run, 0, run.count + 1,
                       [&](const Tuple&) { ++chain_len; });
    EXPECT_EQ(chain_len, run.count);
  }
}

TEST(SketchAccumulatorTest, CmsCrossCheckStillPromotesTrueHitters) {
  AccumulatorOptions o = SketchOpts(64, 50000, 1000);
  o.sketch.cms_width = 1024;
  o.sketch.cms_depth = 4;
  SketchAccumulator acc(o);
  auto truth = FeedZipf(acc, 31, 50000, 20000, 1.2);
  AccumulatedBatch batch = acc.Seal();
  std::vector<std::pair<uint64_t, KeyId>> ranked;
  for (const auto& [k, c] : truth) ranked.push_back({c, k});
  std::sort(ranked.rbegin(), ranked.rend());
  std::set<KeyId> head_keys;
  for (const SortedKeyRun& run : batch.keys()) head_keys.insert(run.key);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(head_keys.count(ranked[i].second)) << "rank " << i;
  }
  EXPECT_GT(batch.stats().head_coverage(), 0.3);
}

TEST(SketchAccumulatorTest, ReusableAcrossBatches) {
  SketchAccumulator acc(SketchOpts(32, 5000, 200));
  FeedZipf(acc, 1, 5000, 500, 1.1);
  AccumulatedBatch first = acc.Seal();
  const uint64_t first_tuples = first.num_tuples();
  FeedZipf(acc, 2, 5000, 500, 1.1);
  AccumulatedBatch second = acc.Seal();
  EXPECT_EQ(first_tuples, 5000u);
  EXPECT_EQ(second.num_tuples(), 5000u);
  EXPECT_EQ(second.stats().head_tuples + second.stats().tail_tuples, 5000u);
  acc.Reset();
  EXPECT_EQ(acc.num_tuples(), 0u);
}

TEST(SketchPartitionPlanTest, TailBucketsMaterializeOnceAndSplitCorrectly) {
  SketchAccumulator acc(SketchOpts(64, 30000, 600, 32));
  auto truth = FeedZipf(acc, 77, 30000, 10000, 1.1);
  AccumulatedBatch batch = acc.Seal();
  ASSERT_GT(batch.stats().tail_tuples, 0u);
  ASSERT_GT(batch.stats().head_tuples, 0u);

  const uint32_t kBlocks = 4;
  PartitionPlan plan = BuildPromptPlan(batch, kBlocks);
  ASSERT_EQ(plan.tail_bucket_block.size(), batch.tail().size());
  for (uint32_t b : plan.tail_bucket_block) EXPECT_LT(b, kBlocks);

  PartitionedBatch out = MaterializePlan(batch, plan, kBlocks);
  ASSERT_EQ(out.blocks.size(), kBlocks);
  EXPECT_TRUE(out.sketch.sketch_mode);

  // Conservation: every input tuple lands in exactly one block.
  std::map<KeyId, uint64_t> materialized;
  uint64_t total = 0;
  for (const DataBlock& block : out.blocks) {
    total += block.size();
    for (const Tuple& t : block.tuples()) ++materialized[t.key];
  }
  EXPECT_EQ(total, 30000u);
  for (const auto& [k, c] : truth) {
    EXPECT_EQ(materialized[k], c) << "key " << k;
  }

  // Split correctness: any key present in 2+ blocks must be flagged split in
  // every block that holds it (otherwise reduce emits duplicate keys).
  std::map<KeyId, int> key_blocks;
  for (const DataBlock& block : out.blocks) {
    std::set<KeyId> here;
    for (const Tuple& t : block.tuples()) here.insert(t.key);
    for (KeyId k : here) ++key_blocks[k];
  }
  for (const DataBlock& block : out.blocks) {
    std::set<KeyId> flagged;
    for (const KeyFragment& f : block.fragments()) {
      if (f.split) flagged.insert(f.key);
    }
    std::set<KeyId> here;
    for (const Tuple& t : block.tuples()) here.insert(t.key);
    for (KeyId k : here) {
      if (key_blocks[k] > 1) {
        EXPECT_TRUE(flagged.count(k))
            << "key " << k << " spans " << key_blocks[k]
            << " blocks but is not flagged split in block "
            << block.block_id();
      }
    }
  }

  // Load balance: no block should dwarf the rest (LPT buckets + B-BPFI).
  uint64_t max_size = 0, min_size = UINT64_MAX;
  for (const DataBlock& block : out.blocks) {
    max_size = std::max(max_size, block.size());
    min_size = std::min(min_size, block.size());
  }
  EXPECT_LT(max_size, 2 * (30000 / kBlocks));
}

TEST(SketchPartitionPlanTest, ExactBatchPlanUnchangedByTailSupport) {
  // An exact accumulator's batch has no tail: the plan must carry no tail
  // assignments and materialize identically to the pre-sketch behavior.
  auto acc = MakeAccumulator(AccumulatorKind::kFlat);
  acc->Begin(0, 1000000);
  Rng rng(5);
  ZipfSampler zipf(500, 1.0);
  for (int i = 0; i < 5000; ++i) {
    acc->OnTuple(Tuple{static_cast<TimeMicros>(i * 10), zipf.Sample(rng), 1.0});
  }
  AccumulatedBatch batch = acc->Seal();
  EXPECT_TRUE(batch.tail().empty());
  EXPECT_FALSE(batch.stats().sketch_mode);
  PartitionPlan plan = BuildPromptPlan(batch, 4);
  EXPECT_TRUE(plan.tail_bucket_block.empty());
  PartitionedBatch out = MaterializePlan(batch, plan, 4);
  EXPECT_FALSE(out.sketch.sketch_mode);
  EXPECT_EQ(out.num_keys, batch.num_keys());
}

TEST(SketchAccumulatorTest, StatsReportDistinctEstimate) {
  SketchAccumulator acc(SketchOpts(64, 50000, 1000));
  auto truth = FeedZipf(acc, 13, 50000, 30000, 0.8);
  AccumulatedBatch batch = acc.Seal();
  const double est = static_cast<double>(batch.stats().distinct_estimate);
  const double truth_keys = static_cast<double>(truth.size());
  EXPECT_GT(est, truth_keys * 0.9);
  EXPECT_LT(est, truth_keys * 1.1);
  EXPECT_GT(batch.stats().min_count, 0u);
}

}  // namespace
}  // namespace prompt
