#include "core/reduce_allocator.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.h"
#include "stats/metrics.h"

namespace prompt {
namespace {

std::vector<uint64_t> BucketSizes(const std::vector<KeyCluster>& clusters,
                                  const std::vector<uint32_t>& assignment,
                                  uint32_t r) {
  std::vector<uint64_t> sizes(r, 0);
  for (size_t i = 0; i < clusters.size(); ++i) {
    sizes[assignment[i]] += clusters[i].size;
  }
  return sizes;
}

TEST(HashReduceAllocatorTest, DeterministicPerKey) {
  HashReduceAllocator alloc;
  std::vector<KeyCluster> a = {{1, 10, false}, {2, 5, true}};
  std::vector<KeyCluster> b = {{2, 99, true}, {1, 1, false}};
  auto assign_a = alloc.Assign(a, 7);
  auto assign_b = alloc.Assign(b, 7);
  EXPECT_EQ(assign_a[0], assign_b[1]);  // key 1
  EXPECT_EQ(assign_a[1], assign_b[0]);  // key 2
}

TEST(HashReduceAllocatorTest, AllBucketsInRange) {
  HashReduceAllocator alloc;
  std::vector<KeyCluster> clusters;
  for (uint64_t k = 0; k < 1000; ++k) clusters.push_back({k, 1, false});
  auto assignment = alloc.Assign(clusters, 9);
  for (uint32_t b : assignment) EXPECT_LT(b, 9u);
}

TEST(PromptReduceAllocatorTest, SplitKeysFollowTheSharedHash) {
  // Split keys must land on the same bucket as HashReduceAllocator would
  // choose, so independent Map tasks agree without coordination.
  PromptReduceAllocator prompt_alloc;
  HashReduceAllocator hash_alloc;
  std::vector<KeyCluster> clusters;
  for (uint64_t k = 0; k < 200; ++k) clusters.push_back({k, k + 1, true});
  auto a = prompt_alloc.Assign(clusters, 8);
  auto b = hash_alloc.Assign(clusters, 8);
  EXPECT_EQ(a, b);
}

TEST(PromptReduceAllocatorTest, TwoMapTasksAgreeOnSplitKeys) {
  PromptReduceAllocator alloc;
  // Same split key appears in two different task outputs with different
  // cluster sizes and neighbors.
  std::vector<KeyCluster> task1 = {{7, 100, true}, {1, 50, false}};
  std::vector<KeyCluster> task2 = {{3, 10, false}, {7, 2, true}, {9, 5, false}};
  auto a1 = alloc.Assign(task1, 4);
  auto a2 = alloc.Assign(task2, 4);
  EXPECT_EQ(a1[0], a2[1]);  // key 7 agrees
}

TEST(PromptReduceAllocatorTest, NonSplitClustersBalanceBuckets) {
  PromptReduceAllocator prompt_alloc;
  HashReduceAllocator hash_alloc;
  // Skewed non-split cluster sizes, many more clusters than buckets so a
  // smart allocator has room to balance.
  Rng rng(3);
  ZipfSampler zipf(2000, 1.0);
  std::map<uint64_t, uint64_t> sizes;
  for (int i = 0; i < 40000; ++i) ++sizes[zipf.Sample(rng)];
  std::vector<KeyCluster> clusters;
  for (const auto& [k, s] : sizes) clusters.push_back({k, s, false});

  const uint32_t r = 8;
  auto prompt_assign = prompt_alloc.Assign(clusters, r);
  auto hash_assign = hash_alloc.Assign(clusters, r);
  double prompt_bsi =
      BucketSizeImbalance(BucketSizes(clusters, prompt_assign, r));
  double hash_bsi = BucketSizeImbalance(BucketSizes(clusters, hash_assign, r));
  EXPECT_LT(prompt_bsi, hash_bsi * 0.5)
      << "Worst-Fit should at least halve hashing's bucket imbalance";
}

TEST(PromptReduceAllocatorTest, BucketRetirementBalancesClusterCounts) {
  PromptReduceAllocator alloc;
  std::vector<KeyCluster> clusters;
  for (uint64_t k = 0; k < 16; ++k) clusters.push_back({k, 10, false});
  auto assignment = alloc.Assign(clusters, 4);
  std::vector<int> counts(4, 0);
  for (uint32_t b : assignment) ++counts[b];
  for (int c : counts) EXPECT_EQ(c, 4);  // 16 equal clusters over 4 buckets
}

TEST(PromptReduceAllocatorTest, EmptyInput) {
  PromptReduceAllocator alloc;
  auto assignment = alloc.Assign({}, 4);
  EXPECT_TRUE(assignment.empty());
}

TEST(PromptReduceAllocatorTest, SingleBucketTakesAll) {
  PromptReduceAllocator alloc;
  std::vector<KeyCluster> clusters = {{1, 5, false}, {2, 3, true}};
  auto assignment = alloc.Assign(clusters, 1);
  EXPECT_EQ(assignment[0], 0u);
  EXPECT_EQ(assignment[1], 0u);
}

TEST(PromptReduceAllocatorTest, LargestClustersGoFirstToEmptiestBuckets) {
  PromptReduceAllocator alloc;
  // One huge, three small, r=2. Worst-Fit puts the huge cluster alone
  // first; bucket retirement (Alg. 3 lines 7-9) then alternates buckets, so
  // exactly one small cluster joins the huge one after the candidate reset.
  std::vector<KeyCluster> clusters = {
      {1, 1000, false}, {2, 10, false}, {3, 10, false}, {4, 10, false}};
  auto assignment = alloc.Assign(clusters, 2);
  auto sizes = BucketSizes(clusters, assignment, 2);
  EXPECT_EQ(std::max(sizes[0], sizes[1]), 1010u);
  EXPECT_EQ(std::min(sizes[0], sizes[1]), 20u);
  EXPECT_NE(assignment[0], assignment[1]);  // first small avoids the huge one
}

// Sweep: with many equal clusters, Worst-Fit yields near-perfect balance for
// any bucket count.
class ReduceAllocSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ReduceAllocSweepTest, EqualClustersSpreadEvenly) {
  const uint32_t r = GetParam();
  PromptReduceAllocator alloc;
  std::vector<KeyCluster> clusters;
  for (uint64_t k = 0; k < 40 * r; ++k) clusters.push_back({k, 7, false});
  auto assignment = alloc.Assign(clusters, r);
  auto sizes = BucketSizes(clusters, assignment, r);
  EXPECT_DOUBLE_EQ(BucketSizeImbalance(sizes), 0.0);
}

INSTANTIATE_TEST_SUITE_P(BucketCounts, ReduceAllocSweepTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33));

}  // namespace
}  // namespace prompt
