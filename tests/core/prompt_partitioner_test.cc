#include "core/prompt_partitioner.h"

#include <gtest/gtest.h>

#include <map>

#include "stats/metrics.h"
#include "testing/test_helpers.h"

namespace prompt {
namespace {

using testing::Accumulate;
using testing::KeyHistogram;
using testing::RunBatch;
using testing::ZipfTuples;

constexpr TimeMicros kStart = 0;
constexpr TimeMicros kEnd = Seconds(1);

TEST(PromptPlanTest, EmptyBatchYieldsEmptyBlocks) {
  auto acc_ptr = MakeAccumulator(AccumulatorKind::kFlat);
  auto& acc = *acc_ptr;
  acc.Begin(kStart, kEnd);
  auto sealed = acc.Seal();
  auto plan = BuildPromptPlan(sealed, 4);
  EXPECT_EQ(plan.blocks.size(), 4u);
  for (const auto& b : plan.blocks) EXPECT_TRUE(b.empty());
  auto batch = MaterializePlan(sealed, plan, 4);
  EXPECT_EQ(batch.blocks.size(), 4u);
}

TEST(PromptPlanTest, PlanCoversEveryTupleExactlyOnce) {
  auto acc_ptr = MakeAccumulator(AccumulatorKind::kFlat);
  auto& acc = *acc_ptr;
  auto tuples = ZipfTuples(30000, 2000, 1.2, kStart, kEnd);
  auto sealed = Accumulate(acc, tuples, kStart, kEnd);
  auto plan = BuildPromptPlan(sealed, 8);

  // Per-key takes must sum to the key's count with disjoint segments.
  std::map<uint32_t, uint64_t> taken;
  for (const auto& block : plan.blocks) {
    for (const auto& pl : block) taken[pl.key_index] += pl.take;
  }
  ASSERT_EQ(taken.size(), sealed.keys().size());
  for (const auto& [idx, take] : taken) {
    EXPECT_EQ(take, sealed.keys()[idx].count) << "key index " << idx;
  }
}

TEST(PromptPlanTest, MaterializedBatchPreservesKeyHistogram) {
  auto acc_ptr = MakeAccumulator(AccumulatorKind::kFlat);
  auto& acc = *acc_ptr;
  auto tuples = ZipfTuples(20000, 500, 1.5, kStart, kEnd);
  auto sealed = Accumulate(acc, tuples, kStart, kEnd);
  auto plan = BuildPromptPlan(sealed, 6);
  auto batch = MaterializePlan(sealed, plan, 6);

  EXPECT_EQ(testing::BatchKeyHistogram(batch), KeyHistogram(tuples));
  EXPECT_EQ(batch.num_tuples, tuples.size());
}

TEST(PromptPlanTest, BlockSizesAreNearlyEqualUnderHeavySkew) {
  auto acc_ptr = MakeAccumulator(AccumulatorKind::kFlat);
  auto& acc = *acc_ptr;
  auto tuples = ZipfTuples(50000, 10000, 1.8, kStart, kEnd);
  auto sealed = Accumulate(acc, tuples, kStart, kEnd);
  const uint32_t p = 8;
  auto plan = BuildPromptPlan(sealed, p);
  auto batch = MaterializePlan(sealed, plan, p);

  auto m = ComputeBlockMetrics(batch);
  // BSI within 5% of the average block size despite z=1.8 skew.
  EXPECT_LT(m.bsi, 0.05 * m.avg_block_size)
      << "max=" << m.max_block_size << " avg=" << m.avg_block_size;
}

TEST(PromptPlanTest, CardinalityIsBalanced) {
  auto acc_ptr = MakeAccumulator(AccumulatorKind::kFlat);
  auto& acc = *acc_ptr;
  auto tuples = ZipfTuples(40000, 4000, 1.0, kStart, kEnd);
  auto sealed = Accumulate(acc, tuples, kStart, kEnd);
  const uint32_t p = 5;
  auto plan = BuildPromptPlan(sealed, p);
  auto batch = MaterializePlan(sealed, plan, p);

  auto m = ComputeBlockMetrics(batch);
  // BCI small relative to the per-block average cardinality. The Best-Fit
  // residual pass (Alg. 2 line 23) can pile diverted residuals onto one
  // nearly-full block, so the bound is looser than for sizes.
  EXPECT_LT(m.bci, 0.25 * m.avg_block_cardinality);
  // Cardinality magnitude stays near the ideal K/P share (unlike shuffle,
  // where every block's cardinality approaches K).
  EXPECT_LT(static_cast<double>(m.max_block_cardinality),
            1.5 * m.avg_block_cardinality);
}

TEST(PromptPlanTest, FragmentationIsLimited) {
  auto acc_ptr = MakeAccumulator(AccumulatorKind::kFlat);
  auto& acc = *acc_ptr;
  auto tuples = ZipfTuples(50000, 5000, 1.4, kStart, kEnd);
  auto sealed = Accumulate(acc, tuples, kStart, kEnd);
  const uint32_t p = 8;
  auto plan = BuildPromptPlan(sealed, p);
  auto batch = MaterializePlan(sealed, plan, p);

  auto m = ComputeBlockMetrics(batch);
  // Only keys above S_cut may fragment; KSR stays close to 1.
  EXPECT_LT(m.ksr, 1.05);
  // And far below shuffle's worst case of ~p fragments per key.
  EXPECT_LT(m.ksr, static_cast<double>(p) / 2);
}

TEST(PromptPlanTest, SingleBlockTakesEverything) {
  auto acc_ptr = MakeAccumulator(AccumulatorKind::kFlat);
  auto& acc = *acc_ptr;
  auto tuples = ZipfTuples(1000, 100, 1.0, kStart, kEnd);
  auto sealed = Accumulate(acc, tuples, kStart, kEnd);
  auto plan = BuildPromptPlan(sealed, 1);
  auto batch = MaterializePlan(sealed, plan, 1);
  EXPECT_EQ(batch.blocks[0].size(), 1000u);
  EXPECT_EQ(plan.split_keys, 0u);
}

TEST(PromptPlanTest, MoreBlocksThanKeys) {
  auto acc_ptr = MakeAccumulator(AccumulatorKind::kFlat);
  auto& acc = *acc_ptr;
  acc.Begin(kStart, kEnd);
  for (int i = 0; i < 90; ++i) {
    acc.OnTuple(Tuple{kStart + i, static_cast<KeyId>(i % 3), 1.0});
  }
  auto sealed = acc.Seal();
  auto plan = BuildPromptPlan(sealed, 6);
  auto batch = MaterializePlan(sealed, plan, 6);
  // 3 keys x 30 tuples into 6 blocks of capacity 15: every key must split,
  // sizes stay equal.
  uint64_t total = 0;
  for (const auto& b : batch.blocks) total += b.size();
  EXPECT_EQ(total, 90u);
  auto m = ComputeBlockMetrics(batch);
  EXPECT_LE(m.bsi, 1.0);
}

TEST(PromptPlanTest, OneGiantKeyIsSpreadAcrossBlocks) {
  auto acc_ptr = MakeAccumulator(AccumulatorKind::kFlat);
  auto& acc = *acc_ptr;
  acc.Begin(kStart, kEnd);
  for (int i = 0; i < 10000; ++i) acc.OnTuple(Tuple{kStart + i, 42, 1.0});
  for (int i = 0; i < 100; ++i) {
    acc.OnTuple(Tuple{kStart + 20000 + i, static_cast<KeyId>(100 + i), 1.0});
  }
  auto sealed = acc.Seal();
  const uint32_t p = 4;
  auto plan = BuildPromptPlan(sealed, p);
  auto batch = MaterializePlan(sealed, plan, p);
  auto m = ComputeBlockMetrics(batch);
  EXPECT_LT(m.bsi, 0.1 * m.avg_block_size);
  // The giant key must appear in multiple blocks.
  int blocks_with_42 = 0;
  for (const auto& b : batch.blocks) {
    for (const auto& f : b.fragments()) {
      if (f.key == 42) {
        ++blocks_with_42;
        EXPECT_TRUE(f.split);
      }
    }
  }
  EXPECT_GE(blocks_with_42, 2);
}

// Property sweep over (tuples, keys, blocks, skew): invariants hold across
// the workload space.
struct PlanSweepParam {
  uint64_t tuples;
  uint64_t cardinality;
  uint32_t blocks;
  double z;
};

class PromptPlanSweepTest : public ::testing::TestWithParam<PlanSweepParam> {};

TEST_P(PromptPlanSweepTest, InvariantsHold) {
  const auto& p = GetParam();
  auto acc_ptr = MakeAccumulator(AccumulatorKind::kFlat);
  auto& acc = *acc_ptr;
  auto tuples = ZipfTuples(p.tuples, p.cardinality, p.z, kStart, kEnd);
  auto sealed = Accumulate(acc, tuples, kStart, kEnd);
  auto plan = BuildPromptPlan(sealed, p.blocks);
  auto batch = MaterializePlan(sealed, plan, p.blocks);

  // 1. Conservation.
  EXPECT_EQ(testing::BatchKeyHistogram(batch), KeyHistogram(tuples));
  // 2. Size balance: max block within 2x average (loose bound that must
  // hold even for degenerate shapes).
  auto m = ComputeBlockMetrics(batch);
  if (m.avg_block_size >= 1) {
    EXPECT_LE(static_cast<double>(m.max_block_size), 2.0 * m.avg_block_size + 8);
  }
  // 3. Fragment accounting matches plan stats.
  EXPECT_EQ(m.total_fragments, plan.fragments);
  EXPECT_EQ(m.split_keys, plan.split_keys);
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadShapes, PromptPlanSweepTest,
    ::testing::Values(PlanSweepParam{1000, 10, 4, 0.5},
                      PlanSweepParam{5000, 5000, 4, 0.0},
                      PlanSweepParam{20000, 200, 16, 1.0},
                      PlanSweepParam{20000, 200, 3, 2.0},
                      PlanSweepParam{500, 1, 4, 1.0},
                      PlanSweepParam{10000, 100, 1, 1.5},
                      PlanSweepParam{30000, 30000, 8, 1.2}));

TEST(PromptPartitionerTest, FullPipelineProducesBalancedBatch) {
  PromptPartitioner partitioner;
  auto tuples = ZipfTuples(30000, 1000, 1.3, kStart, kEnd);
  auto batch = RunBatch(partitioner, tuples, 8, kStart, kEnd, 17);
  EXPECT_EQ(batch.batch_id, 17u);
  EXPECT_EQ(batch.num_tuples, tuples.size());
  EXPECT_EQ(batch.blocks.size(), 8u);
  auto m = ComputeBlockMetrics(batch);
  EXPECT_LT(m.bsi, 0.05 * m.avg_block_size);
  EXPECT_GE(batch.seal_time, kEnd);
}

TEST(PromptPartitionerTest, ReportsPartitionCost) {
  PromptPartitioner partitioner;
  auto tuples = ZipfTuples(50000, 5000, 1.0, kStart, kEnd);
  auto batch = RunBatch(partitioner, tuples, 8, kStart, kEnd);
  EXPECT_GT(batch.partition_cost, 0);
  // The decision must be far cheaper than the 5% slack of a 1s interval.
  EXPECT_LT(batch.partition_cost, Seconds(1) / 20);
}

TEST(PromptPartitionerTest, ReusableAcrossBatches) {
  PromptPartitioner partitioner;
  for (int i = 0; i < 3; ++i) {
    TimeMicros start = i * kEnd;
    auto tuples = ZipfTuples(5000, 200, 1.0, start, start + kEnd,
                             /*seed=*/100 + i);
    auto batch = RunBatch(partitioner, tuples, 4, start, start + kEnd, i);
    EXPECT_EQ(batch.num_tuples, 5000u);
  }
}

TEST(PromptPartitionerTest, PostSortVariantNameAndBehaviour) {
  PromptPartitionerOptions opts;
  opts.post_sort = true;
  PromptPartitioner partitioner(opts);
  EXPECT_STREQ(partitioner.name(), "Prompt+PostSort");
  auto tuples = ZipfTuples(10000, 500, 1.0, kStart, kEnd);
  auto batch = RunBatch(partitioner, tuples, 4, kStart, kEnd);
  EXPECT_EQ(batch.num_tuples, 10000u);
}

}  // namespace
}  // namespace prompt
