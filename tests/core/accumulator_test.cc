#include "core/accumulator.h"

#include <gtest/gtest.h>

#include <map>

#include "testing/test_helpers.h"

namespace prompt {
namespace {

using testing::Accumulate;
using testing::KeyHistogram;
using testing::ZipfTuples;

constexpr TimeMicros kStart = 0;
constexpr TimeMicros kEnd = Seconds(1);

TEST(AccumulatorTest, EmptyBatch) {
  MicrobatchAccumulator acc;
  acc.Begin(kStart, kEnd);
  auto batch = acc.Seal();
  EXPECT_EQ(batch.num_tuples(), 0u);
  EXPECT_EQ(batch.num_keys(), 0u);
}

TEST(AccumulatorTest, CountsAreExact) {
  MicrobatchAccumulator acc;
  auto tuples = ZipfTuples(20000, 500, 1.0, kStart, kEnd);
  auto batch = Accumulate(acc, tuples, kStart, kEnd);
  auto expected = KeyHistogram(tuples);

  EXPECT_EQ(batch.num_tuples(), tuples.size());
  EXPECT_EQ(batch.num_keys(), expected.size());
  std::map<KeyId, uint64_t> got;
  for (const auto& run : batch.keys()) got[run.key] = run.count;
  EXPECT_EQ(got, expected);
}

TEST(AccumulatorTest, ChainsContainAllTuplesOfKey) {
  MicrobatchAccumulator acc;
  auto tuples = ZipfTuples(5000, 100, 1.2, kStart, kEnd);
  auto batch = Accumulate(acc, tuples, kStart, kEnd);
  for (const auto& run : batch.keys()) {
    uint64_t visited = 0;
    batch.ForEachTuple(run, 0, run.count, [&](const Tuple& t) {
      EXPECT_EQ(t.key, run.key);
      ++visited;
    });
    EXPECT_EQ(visited, run.count);
  }
}

TEST(AccumulatorTest, ChainSkipAndLimitSegmentTheChain) {
  MicrobatchAccumulator acc;
  acc.Begin(kStart, kEnd);
  for (int i = 0; i < 10; ++i) {
    acc.Add(Tuple{kStart + i, 7, static_cast<double>(i)});
  }
  auto batch = acc.Seal();
  ASSERT_EQ(batch.keys().size(), 1u);
  const auto& run = batch.keys()[0];
  std::vector<double> seg;
  batch.ForEachTuple(run, 3, 4, [&](const Tuple& t) { seg.push_back(t.value); });
  // Chain preserves arrival order: skipping 3 takes values 3,4,5,6.
  ASSERT_EQ(seg.size(), 4u);
  EXPECT_DOUBLE_EQ(seg[0], 3.0);
  EXPECT_DOUBLE_EQ(seg[3], 6.0);
}

TEST(AccumulatorTest, PostSortIsExactlyDescending) {
  MicrobatchAccumulator acc;
  auto tuples = ZipfTuples(30000, 1000, 1.3, kStart, kEnd);
  acc.Begin(kStart, kEnd);
  for (const Tuple& t : tuples) acc.Add(t);
  auto batch = acc.SealWithPostSort();
  for (size_t i = 1; i < batch.keys().size(); ++i) {
    EXPECT_GE(batch.keys()[i - 1].count, batch.keys()[i].count);
  }
}

TEST(AccumulatorTest, QuasiSortedOrderIsNearlyDescending) {
  AccumulatorOptions opts;
  opts.budget = 16;
  opts.estimated_tuples = 50000;
  opts.avg_keys = 1000;
  MicrobatchAccumulator acc(opts);
  auto tuples = ZipfTuples(50000, 1000, 1.1, kStart, kEnd);
  auto batch = Accumulate(acc, tuples, kStart, kEnd);

  // Measure order quality: fraction of adjacent pairs in correct order.
  size_t ordered = 0;
  for (size_t i = 1; i < batch.keys().size(); ++i) {
    if (batch.keys()[i - 1].count >= batch.keys()[i].count) ++ordered;
  }
  double frac =
      static_cast<double>(ordered) / static_cast<double>(batch.keys().size() - 1);
  EXPECT_GT(frac, 0.85) << "quasi-sorted order should be mostly descending";

  // The heaviest key must surface near the front even with stale counts.
  uint64_t max_count = 0;
  for (const auto& run : batch.keys()) max_count = std::max(max_count, run.count);
  size_t max_pos = 0;
  for (size_t i = 0; i < batch.keys().size(); ++i) {
    if (batch.keys()[i].count == max_count) {
      max_pos = i;
      break;
    }
  }
  EXPECT_LT(max_pos, batch.keys().size() / 10);
}

TEST(AccumulatorTest, TreeUpdatesRespectBudget) {
  AccumulatorOptions opts;
  opts.budget = 4;
  opts.estimated_tuples = 100000;
  opts.avg_keys = 100;
  MicrobatchAccumulator acc(opts);
  auto tuples = ZipfTuples(100000, 100, 0.8, kStart, kEnd);
  Accumulate(acc, tuples, kStart, kEnd);
  // Each key gets 1 insert + at most `budget` repositionings.
  EXPECT_LE(acc.tree_updates(), acc.num_keys() * opts.budget);
}

TEST(AccumulatorTest, LargerBudgetImprovesOrdering) {
  auto order_quality = [](uint32_t budget) {
    AccumulatorOptions opts;
    opts.budget = budget;
    opts.estimated_tuples = 60000;
    opts.avg_keys = 2000;
    MicrobatchAccumulator acc(opts);
    auto tuples = ZipfTuples(60000, 2000, 1.0, kStart, kEnd, 7);
    auto batch = Accumulate(acc, tuples, kStart, kEnd);
    // Kendall-ish metric: mean absolute displacement of the top 50 keys
    // versus the exact order.
    auto exact = batch.keys();
    std::stable_sort(exact.begin(), exact.end(),
                     [](const SortedKeyRun& a, const SortedKeyRun& b) {
                       return a.count > b.count;
                     });
    std::map<KeyId, size_t> pos;
    for (size_t i = 0; i < batch.keys().size(); ++i) {
      pos[batch.keys()[i].key] = i;
    }
    double disp = 0;
    size_t top = std::min<size_t>(50, exact.size());
    for (size_t i = 0; i < top; ++i) {
      disp += std::abs(static_cast<double>(pos[exact[i].key]) -
                       static_cast<double>(i));
    }
    return disp / static_cast<double>(top);
  };
  // Not strictly monotone per-seed, but a 16x budget should clearly help.
  EXPECT_LE(order_quality(32), order_quality(2) + 1.0);
}

TEST(AccumulatorTest, BeginResetsAllState) {
  MicrobatchAccumulator acc;
  auto tuples = ZipfTuples(1000, 50, 1.0, kStart, kEnd);
  Accumulate(acc, tuples, kStart, kEnd);
  acc.Begin(kEnd, kEnd + Seconds(1));
  EXPECT_EQ(acc.num_tuples(), 0u);
  EXPECT_EQ(acc.num_keys(), 0u);
  acc.Add(Tuple{kEnd + 5, 1, 1.0});
  auto batch = acc.Seal();
  EXPECT_EQ(batch.num_tuples(), 1u);
  ASSERT_EQ(batch.keys().size(), 1u);
  EXPECT_EQ(batch.keys()[0].count, 1u);
}

TEST(AccumulatorTest, TimeStepUpdatesLowFrequencyKeys) {
  // A key whose arrivals are far apart never satisfies f.step, but t.step
  // (Alg. 1 lines 15-19) still refreshes its tree position over the
  // interval.
  AccumulatorOptions opts;
  opts.budget = 8;
  opts.estimated_tuples = 1000000;  // huge N_est => huge initial f.step
  opts.avg_keys = 1;
  MicrobatchAccumulator acc(opts);
  acc.Begin(0, Seconds(1));
  // Key 7 arrives 10 times, spread across the whole interval; key 1 floods
  // early so the tree has competing mass.
  for (int i = 0; i < 50; ++i) acc.Add(Tuple{Millis(1) + i, 1, 1.0});
  for (int i = 0; i < 10; ++i) {
    acc.Add(Tuple{Millis(100) * (i + 1), 7, 1.0});
  }
  const uint64_t updates = acc.tree_updates();
  // Key 7's time-step must have fired at least a few times (initial f.step
  // is ~125k arrivals, unreachable; only t.step can trigger).
  EXPECT_GE(updates, 3u);
  auto batch = acc.Seal();
  // Both keys report exact counts regardless of update cadence.
  for (const auto& run : batch.keys()) {
    if (run.key == 1) {
      EXPECT_EQ(run.count, 50u);
    }
    if (run.key == 7) {
      EXPECT_EQ(run.count, 10u);
    }
  }
}

TEST(AccumulatorTest, ZeroBudgetStillCountsExactly) {
  AccumulatorOptions opts;
  opts.budget = 0;  // no repositioning at all beyond the initial insert
  MicrobatchAccumulator acc(opts);
  auto tuples = ZipfTuples(5000, 200, 1.2, kStart, kEnd);
  auto batch = Accumulate(acc, tuples, kStart, kEnd);
  EXPECT_EQ(testing::KeyHistogram(tuples).size(), batch.num_keys());
  std::map<KeyId, uint64_t> got;
  for (const auto& run : batch.keys()) got[run.key] = run.count;
  EXPECT_EQ(got, testing::KeyHistogram(tuples));
}

TEST(AccumulatorTest, SingleKeyBatch) {
  MicrobatchAccumulator acc;
  acc.Begin(kStart, kEnd);
  for (int i = 0; i < 1000; ++i) acc.Add(Tuple{kStart + i, 99, 1.0});
  auto batch = acc.Seal();
  ASSERT_EQ(batch.keys().size(), 1u);
  EXPECT_EQ(batch.keys()[0].key, 99u);
  EXPECT_EQ(batch.keys()[0].count, 1000u);
}

}  // namespace
}  // namespace prompt
