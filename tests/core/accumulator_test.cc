#include "core/accumulator_api.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "testing/test_helpers.h"

namespace prompt {
namespace {

using testing::Accumulate;
using testing::KeyHistogram;
using testing::ZipfTuples;

constexpr TimeMicros kStart = 0;
constexpr TimeMicros kEnd = Seconds(1);

// Every behavioural test runs against both implementations of the
// Accumulator interface: the legacy CountTree chain and the flat columnar
// rewrite. The two must be observationally identical (see
// accumulator_differential_test.cc for the bit-identity fuzz).
class AccumulatorTest : public ::testing::TestWithParam<AccumulatorKind> {
 protected:
  std::unique_ptr<Accumulator> Make(AccumulatorOptions opts = {}) const {
    return MakeAccumulator(GetParam(), opts);
  }
};

INSTANTIATE_TEST_SUITE_P(Kinds, AccumulatorTest,
                         ::testing::Values(AccumulatorKind::kLegacyChain,
                                           AccumulatorKind::kFlat),
                         [](const auto& info) {
                           return std::string(AccumulatorKindName(info.param));
                         });

TEST_P(AccumulatorTest, EmptyBatch) {
  auto acc = Make();
  acc->Begin(kStart, kEnd);
  auto batch = acc->Seal();
  EXPECT_EQ(batch.num_tuples(), 0u);
  EXPECT_EQ(batch.num_keys(), 0u);
}

TEST_P(AccumulatorTest, CountsAreExact) {
  auto acc = Make();
  auto tuples = ZipfTuples(20000, 500, 1.0, kStart, kEnd);
  auto batch = Accumulate(*acc, tuples, kStart, kEnd);
  auto expected = KeyHistogram(tuples);

  EXPECT_EQ(batch.num_tuples(), tuples.size());
  EXPECT_EQ(batch.num_keys(), expected.size());
  std::map<KeyId, uint64_t> got;
  for (const auto& run : batch.keys()) got[run.key] = run.count;
  EXPECT_EQ(got, expected);
}

TEST_P(AccumulatorTest, ChainsContainAllTuplesOfKey) {
  auto acc = Make();
  auto tuples = ZipfTuples(5000, 100, 1.2, kStart, kEnd);
  auto batch = Accumulate(*acc, tuples, kStart, kEnd);
  for (const auto& run : batch.keys()) {
    uint64_t visited = 0;
    batch.ForEachTuple(run, 0, run.count, [&](const Tuple& t) {
      EXPECT_EQ(t.key, run.key);
      ++visited;
    });
    EXPECT_EQ(visited, run.count);
  }
}

TEST_P(AccumulatorTest, ChainSkipAndLimitSegmentTheChain) {
  auto acc = Make();
  acc->Begin(kStart, kEnd);
  for (int i = 0; i < 10; ++i) {
    acc->OnTuple(Tuple{kStart + i, 7, static_cast<double>(i)});
  }
  auto batch = acc->Seal();
  ASSERT_EQ(batch.keys().size(), 1u);
  const auto& run = batch.keys()[0];
  std::vector<double> seg;
  batch.ForEachTuple(run, 3, 4, [&](const Tuple& t) { seg.push_back(t.value); });
  // Chain preserves arrival order: skipping 3 takes values 3,4,5,6.
  ASSERT_EQ(seg.size(), 4u);
  EXPECT_DOUBLE_EQ(seg[0], 3.0);
  EXPECT_DOUBLE_EQ(seg[3], 6.0);
}

TEST_P(AccumulatorTest, PostSortIsExactlyDescending) {
  auto acc = Make();
  auto tuples = ZipfTuples(30000, 1000, 1.3, kStart, kEnd);
  acc->Begin(kStart, kEnd);
  for (const Tuple& t : tuples) acc->OnTuple(t);
  auto batch = acc->SealWithPostSort();
  for (size_t i = 1; i < batch.keys().size(); ++i) {
    EXPECT_GE(batch.keys()[i - 1].count, batch.keys()[i].count);
  }
}

TEST_P(AccumulatorTest, QuasiSortedOrderIsNearlyDescending) {
  AccumulatorOptions opts;
  opts.budget = 16;
  opts.estimated_tuples = 50000;
  opts.avg_keys = 1000;
  auto acc = Make(opts);
  auto tuples = ZipfTuples(50000, 1000, 1.1, kStart, kEnd);
  auto batch = Accumulate(*acc, tuples, kStart, kEnd);

  // Measure order quality: fraction of adjacent pairs in correct order.
  size_t ordered = 0;
  for (size_t i = 1; i < batch.keys().size(); ++i) {
    if (batch.keys()[i - 1].count >= batch.keys()[i].count) ++ordered;
  }
  double frac =
      static_cast<double>(ordered) / static_cast<double>(batch.keys().size() - 1);
  EXPECT_GT(frac, 0.85) << "quasi-sorted order should be mostly descending";

  // The heaviest key must surface near the front even with stale counts.
  uint64_t max_count = 0;
  for (const auto& run : batch.keys()) max_count = std::max(max_count, run.count);
  size_t max_pos = 0;
  for (size_t i = 0; i < batch.keys().size(); ++i) {
    if (batch.keys()[i].count == max_count) {
      max_pos = i;
      break;
    }
  }
  EXPECT_LT(max_pos, batch.keys().size() / 10);
}

TEST_P(AccumulatorTest, OrderingUpdatesRespectBudget) {
  AccumulatorOptions opts;
  opts.budget = 4;
  opts.estimated_tuples = 100000;
  opts.avg_keys = 100;
  auto acc = Make(opts);
  auto tuples = ZipfTuples(100000, 100, 0.8, kStart, kEnd);
  Accumulate(*acc, tuples, kStart, kEnd);
  // Each key gets 1 insert + at most `budget` repositionings.
  EXPECT_LE(acc->ordering_updates(), acc->num_keys() * opts.budget);
}

TEST_P(AccumulatorTest, LargerBudgetImprovesOrdering) {
  auto order_quality = [this](uint32_t budget) {
    AccumulatorOptions opts;
    opts.budget = budget;
    opts.estimated_tuples = 60000;
    opts.avg_keys = 2000;
    auto acc = Make(opts);
    auto tuples = ZipfTuples(60000, 2000, 1.0, kStart, kEnd, 7);
    auto batch = Accumulate(*acc, tuples, kStart, kEnd);
    // Kendall-ish metric: mean absolute displacement of the top 50 keys
    // versus the exact order.
    auto exact = batch.keys();
    std::stable_sort(exact.begin(), exact.end(),
                     [](const SortedKeyRun& a, const SortedKeyRun& b) {
                       return a.count > b.count;
                     });
    std::map<KeyId, size_t> pos;
    for (size_t i = 0; i < batch.keys().size(); ++i) {
      pos[batch.keys()[i].key] = i;
    }
    double disp = 0;
    size_t top = std::min<size_t>(50, exact.size());
    for (size_t i = 0; i < top; ++i) {
      disp += std::abs(static_cast<double>(pos[exact[i].key]) -
                       static_cast<double>(i));
    }
    return disp / static_cast<double>(top);
  };
  // Not strictly monotone per-seed, but a 16x budget should clearly help.
  EXPECT_LE(order_quality(32), order_quality(2) + 1.0);
}

TEST_P(AccumulatorTest, BeginResetsAllState) {
  auto acc = Make();
  auto tuples = ZipfTuples(1000, 50, 1.0, kStart, kEnd);
  Accumulate(*acc, tuples, kStart, kEnd);
  acc->Begin(kEnd, kEnd + Seconds(1));
  EXPECT_EQ(acc->num_tuples(), 0u);
  EXPECT_EQ(acc->num_keys(), 0u);
  acc->OnTuple(Tuple{kEnd + 5, 1, 1.0});
  auto batch = acc->Seal();
  EXPECT_EQ(batch.num_tuples(), 1u);
  ASSERT_EQ(batch.keys().size(), 1u);
  EXPECT_EQ(batch.keys()[0].count, 1u);
}

TEST_P(AccumulatorTest, ResetReleasesCapacity) {
  auto acc = Make();
  auto tuples = ZipfTuples(20000, 2000, 1.0, kStart, kEnd);
  Accumulate(*acc, tuples, kStart, kEnd);
  EXPECT_GT(acc->capacity_bytes(), 0u);
  acc->Reset();
  EXPECT_EQ(acc->num_tuples(), 0u);
  EXPECT_EQ(acc->num_keys(), 0u);
  // Reset must release the bulk of the batch storage (small fixed-size
  // tables may remain).
  EXPECT_LT(acc->capacity_bytes(), 64u * 1024u);
  // And the accumulator is reusable after a Reset.
  acc->Begin(kStart, kEnd);
  acc->OnTuple(Tuple{kStart + 1, 3, 1.0});
  auto batch = acc->Seal();
  EXPECT_EQ(batch.num_tuples(), 1u);
}

TEST_P(AccumulatorTest, TimeStepUpdatesLowFrequencyKeys) {
  // A key whose arrivals are far apart never satisfies f.step, but t.step
  // (Alg. 1 lines 15-19) still refreshes its ordering position over the
  // interval.
  AccumulatorOptions opts;
  opts.budget = 8;
  opts.estimated_tuples = 1000000;  // huge N_est => huge initial f.step
  opts.avg_keys = 1;
  auto acc = Make(opts);
  acc->Begin(0, Seconds(1));
  // Key 7 arrives 10 times, spread across the whole interval; key 1 floods
  // early so the ordering has competing mass.
  for (int i = 0; i < 50; ++i) acc->OnTuple(Tuple{Millis(1) + i, 1, 1.0});
  for (int i = 0; i < 10; ++i) {
    acc->OnTuple(Tuple{Millis(100) * (i + 1), 7, 1.0});
  }
  const uint64_t updates = acc->ordering_updates();
  // Key 7's time-step must have fired at least a few times (initial f.step
  // is ~125k arrivals, unreachable; only t.step can trigger).
  EXPECT_GE(updates, 3u);
  auto batch = acc->Seal();
  // Both keys report exact counts regardless of update cadence.
  for (const auto& run : batch.keys()) {
    if (run.key == 1) {
      EXPECT_EQ(run.count, 50u);
    }
    if (run.key == 7) {
      EXPECT_EQ(run.count, 10u);
    }
  }
}

TEST_P(AccumulatorTest, ZeroBudgetStillCountsExactly) {
  AccumulatorOptions opts;
  opts.budget = 0;  // no repositioning at all beyond the initial insert
  auto acc = Make(opts);
  auto tuples = ZipfTuples(5000, 200, 1.2, kStart, kEnd);
  auto batch = Accumulate(*acc, tuples, kStart, kEnd);
  EXPECT_EQ(testing::KeyHistogram(tuples).size(), batch.num_keys());
  std::map<KeyId, uint64_t> got;
  for (const auto& run : batch.keys()) got[run.key] = run.count;
  EXPECT_EQ(got, testing::KeyHistogram(tuples));
}

TEST_P(AccumulatorTest, SingleKeyBatch) {
  auto acc = Make();
  acc->Begin(kStart, kEnd);
  for (int i = 0; i < 1000; ++i) acc->OnTuple(Tuple{kStart + i, 99, 1.0});
  auto batch = acc->Seal();
  ASSERT_EQ(batch.keys().size(), 1u);
  EXPECT_EQ(batch.keys()[0].key, 99u);
  EXPECT_EQ(batch.keys()[0].count, 1000u);
}

TEST(AccumulatorFactoryTest, KindNamesRoundTrip) {
  EXPECT_STREQ(AccumulatorKindName(AccumulatorKind::kFlat), "flat");
  EXPECT_STREQ(AccumulatorKindName(AccumulatorKind::kLegacyChain), "legacy");
  AccumulatorKind kind;
  EXPECT_TRUE(ParseAccumulatorKind("flat", &kind));
  EXPECT_EQ(kind, AccumulatorKind::kFlat);
  EXPECT_TRUE(ParseAccumulatorKind("legacy", &kind));
  EXPECT_EQ(kind, AccumulatorKind::kLegacyChain);
  EXPECT_TRUE(ParseAccumulatorKind("legacy_chain", &kind));
  EXPECT_EQ(kind, AccumulatorKind::kLegacyChain);
  EXPECT_FALSE(ParseAccumulatorKind("treap", &kind));
}

TEST(AccumulatorFactoryTest, FactoryReportsKindName) {
  EXPECT_STREQ(MakeAccumulator(AccumulatorKind::kFlat)->name(), "flat");
  EXPECT_STREQ(MakeAccumulator(AccumulatorKind::kLegacyChain)->name(),
               "legacy");
}

TEST(TupleStorageViewTest, RowsAndColumnsMaterializeIdentically) {
  const Tuple rows[3] = {{10, 1, 0.5}, {20, 2, 1.5}, {30, 1, 2.5}};
  const uint32_t next[3] = {2, SortedKeyRun::kNoTuple, SortedKeyRun::kNoTuple};
  const KeyId keys[3] = {1, 2, 1};
  const TimeMicros ts[3] = {10, 20, 30};
  const double values[3] = {0.5, 1.5, 2.5};

  const auto row_view = TupleStorageView::Rows(rows, next, 3);
  const auto col_view = TupleStorageView::Columns(keys, ts, values, next, 3);
  EXPECT_FALSE(row_view.columnar());
  EXPECT_TRUE(col_view.columnar());
  ASSERT_EQ(row_view.size(), col_view.size());
  for (uint32_t i = 0; i < 3; ++i) {
    const Tuple a = row_view.At(i);
    const Tuple b = col_view.At(i);
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_EQ(a.key, b.key);
    EXPECT_DOUBLE_EQ(a.value, b.value);
    EXPECT_EQ(row_view.Next(i), col_view.Next(i));
  }
}

}  // namespace
}  // namespace prompt
