// Differential fuzz between the two Accumulator implementations: the legacy
// CountTree chain and the flat columnar rewrite must be BIT-IDENTICAL in
// every observable output — the quasi-sorted run sequence, the per-key tuple
// chains, both seal variants, and the downstream Alg. 2 partitions built
// from the sealed batch. This is the tentpole acceptance gate: any
// divergence between the budget state machines or the seal orders shows up
// here as a first-class failure.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/accumulator_api.h"
#include "core/prompt_partitioner.h"
#include "testing/test_helpers.h"

namespace prompt {
namespace {

using testing::ZipfTuples;

constexpr TimeMicros kStart = 0;
constexpr TimeMicros kEnd = Seconds(1);

std::vector<Tuple> DuplicateHeavy(uint64_t n, uint64_t seed) {
  // 90% of tuples hit 4 hot keys; the rest spread over a small tail.
  Rng rng(seed);
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  const double step = static_cast<double>(kEnd) / static_cast<double>(n);
  for (uint64_t i = 0; i < n; ++i) {
    Tuple t;
    t.ts = kStart + static_cast<TimeMicros>(step * static_cast<double>(i));
    t.key = rng.NextBounded(10) < 9 ? rng.NextBounded(4)
                                    : 100 + rng.NextBounded(50);
    t.value = static_cast<double>(i);
    tuples.push_back(t);
  }
  return tuples;
}

std::vector<Tuple> SingleKey(uint64_t n) {
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    tuples.push_back(Tuple{kStart + static_cast<TimeMicros>(i), 17,
                           static_cast<double>(i)});
  }
  return tuples;
}

struct Workload {
  std::string name;
  std::vector<Tuple> tuples;
};

std::vector<Workload> Workloads() {
  std::vector<Workload> w;
  w.push_back({"empty", {}});
  w.push_back({"single_key", SingleKey(5000)});
  w.push_back({"duplicate_heavy", DuplicateHeavy(30000, 3)});
  w.push_back({"uniform", ZipfTuples(40000, 5000, 0.0, kStart, kEnd, 11)});
  w.push_back({"zipf_0.5", ZipfTuples(40000, 5000, 0.5, kStart, kEnd, 12)});
  w.push_back({"zipf_1.0", ZipfTuples(40000, 5000, 1.0, kStart, kEnd, 13)});
  w.push_back({"zipf_1.4", ZipfTuples(40000, 5000, 1.4, kStart, kEnd, 14)});
  return w;
}

void ExpectBatchesBitIdentical(const AccumulatedBatch& a,
                               const AccumulatedBatch& b,
                               const std::string& ctx) {
  ASSERT_EQ(a.num_tuples(), b.num_tuples()) << ctx;
  ASSERT_EQ(a.keys().size(), b.keys().size()) << ctx;
  for (size_t i = 0; i < a.keys().size(); ++i) {
    EXPECT_EQ(a.keys()[i].key, b.keys()[i].key) << ctx << " run " << i;
    EXPECT_EQ(a.keys()[i].count, b.keys()[i].count) << ctx << " run " << i;
    // Chain contents in chain order: same tuples, same arrival sequence.
    std::vector<Tuple> ta, tb;
    a.ForEachTuple(a.keys()[i], 0, a.keys()[i].count,
                   [&](const Tuple& t) { ta.push_back(t); });
    b.ForEachTuple(b.keys()[i], 0, b.keys()[i].count,
                   [&](const Tuple& t) { tb.push_back(t); });
    ASSERT_EQ(ta.size(), tb.size()) << ctx << " run " << i;
    for (size_t j = 0; j < ta.size(); ++j) {
      EXPECT_EQ(ta[j].ts, tb[j].ts) << ctx << " run " << i << " pos " << j;
      EXPECT_EQ(ta[j].key, tb[j].key) << ctx << " run " << i << " pos " << j;
      EXPECT_EQ(ta[j].value, tb[j].value)
          << ctx << " run " << i << " pos " << j;
    }
  }
}

void ExpectPartitionsBitIdentical(const PartitionedBatch& a,
                                  const PartitionedBatch& b,
                                  const std::string& ctx) {
  ASSERT_EQ(a.blocks.size(), b.blocks.size()) << ctx;
  for (size_t i = 0; i < a.blocks.size(); ++i) {
    const auto& fa = a.blocks[i].fragments();
    const auto& fb = b.blocks[i].fragments();
    ASSERT_EQ(fa.size(), fb.size()) << ctx << " block " << i;
    for (size_t j = 0; j < fa.size(); ++j) {
      EXPECT_EQ(fa[j].key, fb[j].key) << ctx << " block " << i;
      EXPECT_EQ(fa[j].count, fb[j].count) << ctx << " block " << i;
      EXPECT_EQ(fa[j].split, fb[j].split) << ctx << " block " << i;
    }
    const auto& ta = a.blocks[i].tuples();
    const auto& tb = b.blocks[i].tuples();
    ASSERT_EQ(ta.size(), tb.size()) << ctx << " block " << i;
    for (size_t j = 0; j < ta.size(); ++j) {
      EXPECT_EQ(ta[j].ts, tb[j].ts) << ctx << " block " << i << " pos " << j;
      EXPECT_EQ(ta[j].key, tb[j].key) << ctx << " block " << i;
      EXPECT_EQ(ta[j].value, tb[j].value) << ctx << " block " << i;
    }
  }
}

// A sealed batch plus the accumulator that owns its tuple storage: the
// AccumulatedBatch's TupleStorageView is non-owning, so the producer must
// outlive every read of the batch.
struct SealedRun {
  std::unique_ptr<Accumulator> acc;
  AccumulatedBatch batch;
};

SealedRun RunSeal(AccumulatorKind kind, const std::vector<Tuple>& tuples,
                  AccumulatorOptions opts, bool post_sort) {
  SealedRun run;
  run.acc = MakeAccumulator(kind, opts);
  run.acc->Begin(kStart, kEnd);
  for (const Tuple& t : tuples) run.acc->OnTuple(t);
  run.batch = post_sort ? run.acc->SealWithPostSort() : run.acc->Seal();
  return run;
}

TEST(AccumulatorDifferentialTest, SealIsBitIdenticalAcrossWorkloads) {
  for (const Workload& w : Workloads()) {
    for (uint32_t budget : {0u, 4u, 16u}) {
      AccumulatorOptions opts;
      opts.budget = budget;
      const std::string ctx = w.name + " budget=" + std::to_string(budget);
      auto legacy =
          RunSeal(AccumulatorKind::kLegacyChain, w.tuples, opts, /*post=*/false);
      auto flat = RunSeal(AccumulatorKind::kFlat, w.tuples, opts, /*post=*/false);
      ExpectBatchesBitIdentical(legacy.batch, flat.batch, ctx);
    }
  }
}

TEST(AccumulatorDifferentialTest, PostSortSealIsBitIdentical) {
  for (const Workload& w : Workloads()) {
    AccumulatorOptions opts;
    auto legacy =
        RunSeal(AccumulatorKind::kLegacyChain, w.tuples, opts, /*post=*/true);
    auto flat = RunSeal(AccumulatorKind::kFlat, w.tuples, opts, /*post=*/true);
    ExpectBatchesBitIdentical(legacy.batch, flat.batch, w.name + " post_sort");
  }
}

// The downstream gate: Alg. 2 plans built from either sealed batch must
// materialize identical partitions at several block counts.
TEST(AccumulatorDifferentialTest, SealedPartitionsAreBitIdentical) {
  for (const Workload& w : Workloads()) {
    AccumulatorOptions opts;
    auto legacy =
        RunSeal(AccumulatorKind::kLegacyChain, w.tuples, opts, /*post=*/false);
    auto flat = RunSeal(AccumulatorKind::kFlat, w.tuples, opts, /*post=*/false);
    for (uint32_t blocks : {1u, 4u, 16u}) {
      const std::string ctx = w.name + " blocks=" + std::to_string(blocks);
      auto batch_a = MaterializePlan(legacy.batch,
                                     BuildPromptPlan(legacy.batch, blocks),
                                     blocks);
      auto batch_b = MaterializePlan(flat.batch,
                                     BuildPromptPlan(flat.batch, blocks),
                                     blocks);
      ExpectPartitionsBitIdentical(batch_a, batch_b, ctx);
    }
  }
}

// Paranoia sweep: randomized options across randomized streams.
TEST(AccumulatorDifferentialTest, RandomizedOptionSweep) {
  Rng rng(99);
  for (int round = 0; round < 12; ++round) {
    AccumulatorOptions opts;
    opts.budget = static_cast<uint32_t>(rng.NextBounded(33));
    opts.estimated_tuples = 1 + rng.NextBounded(200000);
    opts.avg_keys = 1 + rng.NextBounded(5000);
    const double z = static_cast<double>(rng.NextBounded(15)) / 10.0;
    const uint64_t n = 1000 + rng.NextBounded(20000);
    const uint64_t cardinality = 1 + rng.NextBounded(2000);
    auto tuples =
        ZipfTuples(n, cardinality, z, kStart, kEnd, 1000 + round);
    const std::string ctx = "round " + std::to_string(round);
    auto legacy =
        RunSeal(AccumulatorKind::kLegacyChain, tuples, opts, /*post=*/false);
    auto flat = RunSeal(AccumulatorKind::kFlat, tuples, opts, /*post=*/false);
    ExpectBatchesBitIdentical(legacy.batch, flat.batch, ctx);
  }
}

}  // namespace
}  // namespace prompt
