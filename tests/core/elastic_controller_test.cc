#include "core/elastic_controller.h"

#include <gtest/gtest.h>

#include <cmath>

namespace prompt {
namespace {

ElasticityOptions DefaultOptions() {
  ElasticityOptions opts;
  opts.threshold = 0.9;
  opts.step = 0.1;
  opts.d = 3;
  return opts;
}

TEST(ElasticControllerTest, ZoneClassification) {
  auto opts = DefaultOptions();
  EXPECT_EQ(ElasticController::ZoneOf(0.5, opts),
            ElasticityZone::kUnderUtilized);
  EXPECT_EQ(ElasticController::ZoneOf(0.85, opts), ElasticityZone::kStable);
  EXPECT_EQ(ElasticController::ZoneOf(0.95, opts),
            ElasticityZone::kOverloaded);
}

// Executable spec for the band boundaries: the stability band is closed at
// BOTH endpoints — W == threshold and W == threshold - step are kStable;
// only strictly outside the band counts toward an action. (threshold - step
// is computed with the same expression ZoneOf uses, so the comparison is
// against the identical floating-point value.)
TEST(ElasticControllerTest, BandIsClosedAtBothBoundaries) {
  auto opts = DefaultOptions();
  const double upper = opts.threshold;
  const double lower = opts.threshold - opts.step;
  EXPECT_EQ(ElasticController::ZoneOf(upper, opts), ElasticityZone::kStable);
  EXPECT_EQ(ElasticController::ZoneOf(lower, opts), ElasticityZone::kStable);
  // One ulp outside either endpoint flips the zone.
  EXPECT_EQ(ElasticController::ZoneOf(std::nextafter(upper, 2.0), opts),
            ElasticityZone::kOverloaded);
  EXPECT_EQ(ElasticController::ZoneOf(std::nextafter(lower, 0.0), opts),
            ElasticityZone::kUnderUtilized);
}

TEST(ElasticControllerTest, ExactThresholdBatchesNeverScale) {
  // Sitting exactly on the upper boundary for many batches must not count
  // as overload — the d-streak never starts.
  auto opts = DefaultOptions();
  ElasticController controller(opts, 4, 4);
  uint64_t rate = 1000;
  for (int i = 0; i < 12; ++i) {
    auto d = controller.OnBatchCompleted(opts.threshold, rate, 100);
    EXPECT_FALSE(d.changed());
    rate += 200;
  }
  EXPECT_EQ(controller.map_tasks(), 4u);
}

TEST(ElasticControllerTest, StableZoneNeverScales) {
  ElasticController controller(DefaultOptions(), 4, 4);
  for (int i = 0; i < 20; ++i) {
    auto d = controller.OnBatchCompleted(0.85, 1000, 100);
    EXPECT_FALSE(d.changed());
  }
  EXPECT_EQ(controller.map_tasks(), 4u);
  EXPECT_EQ(controller.reduce_tasks(), 4u);
}

TEST(ElasticControllerTest, ScaleOutRequiresDConsecutiveBatches) {
  ElasticController controller(DefaultOptions(), 4, 4);
  // Rising rate so the trend test attributes load to data rate.
  EXPECT_FALSE(controller.OnBatchCompleted(1.2, 1000, 100).changed());
  EXPECT_FALSE(controller.OnBatchCompleted(1.2, 1100, 100).changed());
  auto d = controller.OnBatchCompleted(1.2, 1200, 100);
  EXPECT_TRUE(d.changed());
  EXPECT_EQ(d.delta_map, 1);
  EXPECT_EQ(controller.map_tasks(), 5u);
}

TEST(ElasticControllerTest, StableBatchResetsTheCount) {
  ElasticController controller(DefaultOptions(), 4, 4);
  controller.OnBatchCompleted(1.2, 1000, 100);
  controller.OnBatchCompleted(1.2, 1100, 100);
  controller.OnBatchCompleted(0.85, 1100, 100);  // back to stable
  auto d = controller.OnBatchCompleted(1.2, 1200, 100);
  EXPECT_FALSE(d.changed());  // count restarted
}

TEST(ElasticControllerTest, DirectZoneFlipResetsTheOpposingCount) {
  // Overloaded -> under-utilized without passing through stable: the
  // above-count must reset the moment the zone flips, and the below side
  // starts its own fresh d-streak.
  ElasticController controller(DefaultOptions(), 4, 4);
  uint64_t rate = 5000;
  controller.OnBatchCompleted(1.2, rate, 100);
  controller.OnBatchCompleted(1.2, rate, 100);  // above-count = 2
  ScaleDecision d;
  d = controller.OnBatchCompleted(0.2, rate -= 800, 100);  // flip: below = 1
  EXPECT_FALSE(d.changed());
  d = controller.OnBatchCompleted(0.2, rate -= 800, 100);  // below = 2
  EXPECT_FALSE(d.changed());
  d = controller.OnBatchCompleted(0.2, rate -= 800, 100);  // below = 3
  EXPECT_TRUE(d.changed());
  EXPECT_EQ(d.delta_map, -1);
}

TEST(ElasticControllerTest, FlipThroughStableRequiresAFullFreshStreak) {
  // 2 overloaded, 1 stable, 2 under-utilized, then overloaded again: both
  // counters were cleared along the way, so only a brand-new 3-batch streak
  // acts.
  ElasticController controller(DefaultOptions(), 4, 4);
  uint64_t rate = 1000;
  EXPECT_FALSE(controller.OnBatchCompleted(1.2, rate += 200, 100).changed());
  EXPECT_FALSE(controller.OnBatchCompleted(1.2, rate += 200, 100).changed());
  EXPECT_FALSE(controller.OnBatchCompleted(0.85, rate, 100).changed());
  EXPECT_FALSE(controller.OnBatchCompleted(0.2, rate, 100).changed());
  EXPECT_FALSE(controller.OnBatchCompleted(0.2, rate, 100).changed());
  EXPECT_FALSE(controller.OnBatchCompleted(1.2, rate += 200, 100).changed());
  EXPECT_FALSE(controller.OnBatchCompleted(1.2, rate += 200, 100).changed());
  auto d = controller.OnBatchCompleted(1.2, rate += 200, 100);
  EXPECT_TRUE(d.changed());  // 3rd consecutive overloaded batch
  EXPECT_EQ(controller.map_tasks(), 5u);
}

TEST(ElasticControllerTest, RateIncreaseAddsMappers) {
  ElasticController controller(DefaultOptions(), 4, 4);
  // Rate rising, keys flat -> mappers only (Alg. 4 lines 6-7).
  uint64_t rate = 1000;
  ScaleDecision last;
  for (int i = 0; i < 3; ++i) {
    last = controller.OnBatchCompleted(1.1, rate, 100);
    rate += 200;
  }
  EXPECT_EQ(last.delta_map, 1);
  EXPECT_EQ(last.delta_reduce, 0);
}

TEST(ElasticControllerTest, CardinalityIncreaseAddsReducers) {
  ElasticController controller(DefaultOptions(), 4, 4);
  uint64_t keys = 100;
  ScaleDecision last;
  for (int i = 0; i < 3; ++i) {
    last = controller.OnBatchCompleted(1.1, 1000, keys);
    keys += 50;
  }
  EXPECT_EQ(last.delta_map, 0);
  EXPECT_EQ(last.delta_reduce, 1);
}

TEST(ElasticControllerTest, BothTrendsAddBoth) {
  ElasticController controller(DefaultOptions(), 4, 4);
  uint64_t rate = 1000, keys = 100;
  ScaleDecision last;
  for (int i = 0; i < 3; ++i) {
    last = controller.OnBatchCompleted(1.1, rate, keys);
    rate += 300;
    keys += 40;
  }
  EXPECT_EQ(last.delta_map, 1);
  EXPECT_EQ(last.delta_reduce, 1);
}

TEST(ElasticControllerTest, GracePeriodBlocksImmediateReversal) {
  ElasticController controller(DefaultOptions(), 4, 4);
  uint64_t rate = 1000;
  for (int i = 0; i < 3; ++i) {
    controller.OnBatchCompleted(1.1, rate, 100);
    rate += 200;
  }
  ASSERT_EQ(controller.map_tasks(), 5u);
  // Under-utilized right after scaling out: the grace period blocks the
  // reverse (scale-in) decision when its d-count fills.
  ScaleDecision d{};
  for (int i = 0; i < 3; ++i) {
    d = controller.OnBatchCompleted(0.2, rate, 100);
    EXPECT_FALSE(d.changed());
  }
  EXPECT_TRUE(d.in_grace_period);  // the suppressed reversal
  EXPECT_EQ(controller.map_tasks(), 5u);
}

TEST(ElasticControllerTest, GraceAllowsContinuedScalingInSameDirection) {
  // §6: the grace period prevents *reverse* decisions; a sustained overload
  // keeps adding one task per d batches (the "repeat until W <= thres"
  // behaviour).
  ElasticController controller(DefaultOptions(), 4, 4);
  uint64_t rate = 1000;
  for (int i = 0; i < 9; ++i) {
    controller.OnBatchCompleted(1.3, rate, 100);
    rate += 200;
  }
  EXPECT_EQ(controller.map_tasks(), 7u);  // 3 scale-outs in 9 batches (d=3)
}

TEST(ElasticControllerTest, ScaleInAfterSustainedUnderutilization) {
  ElasticController controller(DefaultOptions(), 8, 8);
  uint64_t rate = 5000;
  ScaleDecision last;
  for (int i = 0; i < 3; ++i) {
    last = controller.OnBatchCompleted(0.3, rate, 500);
    rate -= 800;  // falling rate
  }
  EXPECT_EQ(last.delta_map, -1);
  EXPECT_EQ(controller.map_tasks(), 7u);
}

TEST(ElasticControllerTest, RespectsMinimumTasks) {
  auto opts = DefaultOptions();
  opts.min_map_tasks = 2;
  opts.min_reduce_tasks = 2;
  ElasticController controller(opts, 2, 2);
  uint64_t rate = 5000;
  for (int round = 0; round < 10; ++round) {
    controller.OnBatchCompleted(0.1, rate, 10);
    rate = rate > 500 ? rate - 400 : rate;
  }
  EXPECT_GE(controller.map_tasks(), 2u);
  EXPECT_GE(controller.reduce_tasks(), 2u);
}

TEST(ElasticControllerTest, RespectsMaximumTasks) {
  auto opts = DefaultOptions();
  opts.max_map_tasks = 5;
  ElasticController controller(opts, 4, 4);
  uint64_t rate = 1000;
  for (int round = 0; round < 30; ++round) {
    controller.OnBatchCompleted(1.5, rate, 100);
    rate += 500;
  }
  EXPECT_LE(controller.map_tasks(), 5u);
}

TEST(ElasticControllerTest, CapacityLossShrinksTheGraphImmediately) {
  ElasticController controller(DefaultOptions(), 8, 8);
  controller.OnCapacityChange(4);
  EXPECT_EQ(controller.capacity(), 4u);
  EXPECT_EQ(controller.map_tasks(), 4u);
  EXPECT_EQ(controller.reduce_tasks(), 4u);
  // The forced shrink counts as a scale-in, so the grace period blocks the
  // reverse (scale-out) streak that overload would otherwise trigger.
  ScaleDecision d;
  for (int i = 0; i < 3; ++i) d = controller.OnBatchCompleted(1.5, 1000, 100);
  EXPECT_TRUE(d.in_grace_period);
  EXPECT_EQ(controller.map_tasks(), 4u);
}

TEST(ElasticControllerTest, CapacityChangeWithoutShrinkOpensNoGrace) {
  // Only a *forced scale-in* opens a grace period; a capacity feed that the
  // current graph already fits under must not suppress the next decision.
  ElasticController controller(DefaultOptions(), 4, 4);
  controller.OnCapacityChange(16);
  EXPECT_EQ(controller.map_tasks(), 4u);
  uint64_t rate = 1000;
  ScaleDecision d;
  for (int i = 0; i < 3; ++i) {
    d = controller.OnBatchCompleted(1.2, rate, 100);
    rate += 200;
  }
  EXPECT_TRUE(d.changed());  // streak acted, no grace in the way
  EXPECT_FALSE(d.in_grace_period);
}

TEST(ElasticControllerTest, CapacityCapsFutureScaleOut) {
  ElasticController controller(DefaultOptions(), 2, 2);
  controller.OnCapacityChange(3);
  uint64_t rate = 1000;
  for (int round = 0; round < 30; ++round) {
    controller.OnBatchCompleted(1.5, rate, 100);
    rate += 500;
  }
  EXPECT_LE(controller.map_tasks(), 3u);
  EXPECT_LE(controller.reduce_tasks(), 3u);
}

TEST(ElasticControllerTest, CapacityRestoredReopensHeadroom) {
  ElasticController controller(DefaultOptions(), 2, 2);
  controller.OnCapacityChange(2);
  uint64_t rate = 1000;
  for (int round = 0; round < 15; ++round) {
    controller.OnBatchCompleted(1.5, rate, 100);
    rate += 500;
  }
  EXPECT_EQ(controller.map_tasks(), 2u);  // pinned at capacity
  controller.OnCapacityChange(8);         // the node rejoined
  for (int round = 0; round < 15; ++round) {
    controller.OnBatchCompleted(1.5, rate, 100);
    rate += 500;
  }
  EXPECT_GT(controller.map_tasks(), 2u);
}

TEST(ElasticControllerTest, CapacityChangeRespectsMinimumTasks) {
  auto opts = DefaultOptions();
  opts.min_map_tasks = 2;
  opts.min_reduce_tasks = 2;
  ElasticController controller(opts, 4, 4);
  controller.OnCapacityChange(1);
  EXPECT_EQ(controller.map_tasks(), 2u);
  EXPECT_EQ(controller.reduce_tasks(), 2u);
}

TEST(ElasticControllerTest, FlatStatisticsStillScaleOutWhenOverloaded) {
  // W above threshold but neither statistic trending: workload got more
  // expensive per tuple; grow both.
  ElasticController controller(DefaultOptions(), 4, 4);
  ScaleDecision last;
  for (int i = 0; i < 3; ++i) {
    last = controller.OnBatchCompleted(1.3, 1000, 100);
  }
  EXPECT_EQ(last.delta_map, 1);
  EXPECT_EQ(last.delta_reduce, 1);
}

}  // namespace
}  // namespace prompt
