// Flight-recorder journal unit coverage: manifest round-trips, outcome
// fingerprint codec, writer→reader record round-trip, crash/restart resume
// semantics (per-attempt manifests, torn-tail truncation) and the
// order-independence of the window-output hash.
#include "replay/journal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace prompt {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

JournalOptions Opts(const std::string& dir) {
  JournalOptions o;
  o.dir = dir;
  return o;
}

std::unique_ptr<JournalWriter> MustOpen(const JournalOptions& options,
                                        const JournalManifest& manifest) {
  auto writer = JournalWriter::Open(options, manifest);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  return std::move(writer).ValueUnsafe();
}

TEST(JournalManifestTest, LiteralValuesRoundTripAsText) {
  JournalManifest m;
  // A string literal must land as text, not decay through the bool
  // overload (the conversion-rank trap this codebase hit once already).
  m.Set("mode", "single");
  m.Set("batches", static_cast<uint64_t>(12));
  m.Set("offset", static_cast<int64_t>(-3));
  m.Set("frac", 0.25);
  m.Set("flag", true);
  EXPECT_EQ(m.Get("mode", "?"), "single");
  EXPECT_EQ(m.GetUint("batches", 0), 12u);
  EXPECT_EQ(m.GetInt("offset", 0), -3);
  EXPECT_EQ(m.GetDouble("frac", 0), 0.25);
  EXPECT_TRUE(m.GetBool("flag", false));

  auto parsed = JournalManifest::Parse(m.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Serialize(), m.Serialize());
}

TEST(JournalManifestTest, RepeatedKeysKeepInsertionOrder) {
  JournalManifest m;
  m.Set("tenant", "id=a weight=1");
  m.Set("mode", "multi");
  m.Set("tenant", "id=b weight=3");
  const std::vector<std::string> tenants = m.GetAll("tenant");
  ASSERT_EQ(tenants.size(), 2u);
  EXPECT_EQ(tenants[0], "id=a weight=1");
  EXPECT_EQ(tenants[1], "id=b weight=3");

  auto parsed = JournalManifest::Parse(m.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetAll("tenant"), tenants);
}

TEST(JournalTest, HashBatchOutputIsOrderIndependent) {
  std::vector<KV> a = {{1, 2.0}, {7, 0.5}, {9, -3.25}};
  std::vector<KV> b = {{9, -3.25}, {1, 2.0}, {7, 0.5}};
  std::vector<KV> c = {{9, -3.25}, {1, 2.0}, {7, 0.75}};
  EXPECT_EQ(HashBatchOutput(a), HashBatchOutput(b));
  EXPECT_NE(HashBatchOutput(a), HashBatchOutput(c));
  EXPECT_NE(HashBatchOutput(a), HashBatchOutput({}));
}

BatchOutcome SampleOutcome(uint64_t batch_id) {
  BatchOutcome o;
  o.batch_id = batch_id;
  o.output_hash = 0xdeadbeef + batch_id;
  o.signals[0] = 123.5;
  o.signals[1] = -0.25;
  o.map_makespan = 1000;
  o.reduce_makespan = 2000;
  o.partition_overflow = 17;
  o.technique = 3;
  o.technique_switched = true;
  o.switched_from = 1;
  o.dominant = BatchCause::kBucketSkew;
  o.total_excess = 4321;
  o.threshold = 999;
  o.excess[static_cast<size_t>(BatchCause::kBucketSkew)] = 4321;
  return o;
}

TEST(JournalTest, WriterReaderRoundTripsEveryRecordKind) {
  const std::string dir = FreshDir("journal_roundtrip");
  JournalManifest manifest;
  manifest.Set("mode", "single");
  manifest.Set("batches", static_cast<uint64_t>(2));
  {
    auto writer = MustOpen(Opts(dir), manifest);
    EXPECT_TRUE(writer->fresh());
    Tuple t;
    for (uint64_t i = 0; i < 100; ++i) {
      t.ts = static_cast<TimeMicros>(i * 10);
      t.key = i % 7;  // runs of repeated keys exercise the run-length path
      t.value = 1.0;
      writer->RecordTuple(t);
    }
    ASSERT_TRUE(writer->AppendBatchTuples(0).ok());
    ASSERT_TRUE(writer->AppendOutcome(0, SampleOutcome(0)).ok());
    JournalSwitch s;
    s.owner = 0;
    s.after_batch = 0;
    s.from = 1;
    s.to = 3;
    s.reason = "skew";
    ASSERT_TRUE(writer->AppendSwitch(s).ok());
    JournalFault f;
    f.batch_id = 1;
    f.point = 2;
    f.kind = 1;
    f.target = 4;
    ASSERT_TRUE(writer->AppendFault(f).ok());
    BatchEnv env;
    env.batch_id = 0;
    env.partition_cost = 55;
    env.seal_barrier_latency = 7;
    env.merge_latency = 3;
    env.ring_high_water = 12;
    env.ring_capacity = 64;
    ASSERT_TRUE(writer->AppendEnv(0, env).ok());
    ASSERT_TRUE(writer->SyncBatch().ok());
    EXPECT_EQ(writer->unsynced_bytes(), 0u);
  }

  auto journal = ReadJournal(dir);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_EQ(journal->torn_records, 0u);
  ASSERT_EQ(journal->attempts.size(), 1u);
  const JournalAttempt& attempt = journal->attempts[0];
  EXPECT_EQ(attempt.manifest.Serialize(), manifest.Serialize());

  ASSERT_EQ(attempt.tuples.size(), 100u);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(attempt.tuples[i].ts, static_cast<TimeMicros>(i * 10));
    EXPECT_EQ(attempt.tuples[i].key, i % 7);
    EXPECT_EQ(attempt.tuples[i].value, 1.0);
  }

  ASSERT_EQ(attempt.outcomes.count(0u), 1u);
  ASSERT_EQ(attempt.outcomes.at(0u).size(), 1u);
  EXPECT_TRUE(attempt.outcomes.at(0u)[0].BitIdentical(SampleOutcome(0)));

  ASSERT_EQ(attempt.switches.size(), 1u);
  EXPECT_EQ(attempt.switches[0].reason, "skew");
  EXPECT_EQ(attempt.switches[0].from, 1);
  EXPECT_EQ(attempt.switches[0].to, 3);

  ASSERT_EQ(attempt.faults.size(), 1u);
  EXPECT_EQ(attempt.faults[0].batch_id, 1u);
  EXPECT_EQ(attempt.faults[0].point, 2);
  EXPECT_EQ(attempt.faults[0].kind, 1);
  EXPECT_EQ(attempt.faults[0].target, 4u);

  ASSERT_EQ(attempt.envs.size(), 1u);
  const BatchEnv& env = attempt.envs.at({0u, 0u});
  EXPECT_EQ(env.partition_cost, 55);
  EXPECT_EQ(env.seal_barrier_latency, 7);
  EXPECT_EQ(env.merge_latency, 3);
  EXPECT_EQ(env.ring_high_water, 12u);
  EXPECT_EQ(env.ring_capacity, 64u);
}

TEST(JournalTest, ResumeAppendsAttemptWithItsOwnManifest) {
  const std::string dir = FreshDir("journal_resume");
  JournalManifest first;
  first.Set("mode", "single");
  first.Set("faults", "crash:5;restart:6");
  {
    auto writer = MustOpen(Opts(dir), first);
    ASSERT_TRUE(writer->AppendOutcome(0, SampleOutcome(0)).ok());
    ASSERT_TRUE(writer->Sync().ok());
  }
  // The restarted run drops the crash fault — its attempt must carry the
  // fault-free manifest, not the first run's.
  JournalManifest second;
  second.Set("mode", "single");
  {
    auto writer = MustOpen(Opts(dir), second);
    EXPECT_FALSE(writer->fresh());
    ASSERT_TRUE(writer->AppendOutcome(0, SampleOutcome(1)).ok());
    ASSERT_TRUE(writer->Sync().ok());
  }

  auto journal = ReadJournal(dir);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  // The journal-level manifest is the lineage's first.
  EXPECT_EQ(journal->manifest.Get("faults", ""), "crash:5;restart:6");
  ASSERT_EQ(journal->attempts.size(), 2u);
  EXPECT_EQ(journal->attempts[0].manifest.Serialize(), first.Serialize());
  EXPECT_EQ(journal->attempts[1].manifest.Serialize(), second.Serialize());
  ASSERT_EQ(journal->attempts[0].outcomes.at(0u).size(), 1u);
  ASSERT_EQ(journal->attempts[1].outcomes.at(0u).size(), 1u);
  EXPECT_EQ(journal->attempts[1].outcomes.at(0u)[0].batch_id, 1u);
}

TEST(JournalTest, TornTailIsDroppedOnReadAndTruncatedOnResume) {
  const std::string dir = FreshDir("journal_torn");
  JournalManifest manifest;
  manifest.Set("mode", "single");
  {
    auto writer = MustOpen(Opts(dir), manifest);
    ASSERT_TRUE(writer->AppendOutcome(0, SampleOutcome(0)).ok());
    ASSERT_TRUE(writer->Sync().ok());
  }
  // Simulate a crash mid-append: garbage bytes past the last full record.
  std::string seg;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    seg = entry.path().string();
  }
  ASSERT_FALSE(seg.empty());
  const auto intact = std::filesystem::file_size(seg);
  {
    std::ofstream f(seg, std::ios::binary | std::ios::app);
    f.write("\x07torn", 5);
  }

  auto journal = ReadJournal(dir);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  ASSERT_EQ(journal->attempts.size(), 1u);
  EXPECT_EQ(journal->attempts[0].outcomes.at(0u).size(), 1u);

  // Resume truncates the tail so the next append lands on a clean frame.
  { auto writer = MustOpen(Opts(dir), manifest); }
  EXPECT_GT(std::filesystem::file_size(seg), intact);  // new manifest+marker
  auto reopened = ReadJournal(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->torn_records, 0u);
  EXPECT_EQ(reopened->attempts.size(), 2u);
}

TEST(JournalTest, TupleSourceReplaysRecordedStreamVerbatim) {
  std::vector<Tuple> tuples(5);
  for (size_t i = 0; i < tuples.size(); ++i) {
    tuples[i].ts = static_cast<TimeMicros>(100 * i);
    tuples[i].key = 40 + i;
    tuples[i].value = 0.5 * static_cast<double>(i);
  }
  JournalTupleSource source(tuples);
  EXPECT_STREQ(source.name(), "journal-replay");
  Tuple t;
  for (size_t i = 0; i < tuples.size(); ++i) {
    ASSERT_TRUE(source.Next(&t));
    EXPECT_EQ(t.ts, tuples[i].ts);
    EXPECT_EQ(t.key, tuples[i].key);
    EXPECT_EQ(t.value, tuples[i].value);
  }
  EXPECT_FALSE(source.Next(&t));
}

}  // namespace
}  // namespace prompt
