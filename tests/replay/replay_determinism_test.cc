// End-to-end flight-recorder acceptance: record real engine runs, replay
// them from the journal alone and require bit-identical outcome streams —
// across ingest shard counts, a crash/restart lineage over the durable
// store, and a two-tenant run. Plus the autopsy direction: a deliberately
// perturbed re-run must diff with the divergence pinned to the exact batch
// the perturbation lands in.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "fault/fault_injector.h"
#include "query/multi_query.h"
#include "replay/diff.h"
#include "replay/journal.h"
#include "replay/replayer.h"
#include "tenant/multi_tenant_engine.h"
#include "workload/sources.h"

namespace prompt {
namespace {

constexpr TimeMicros kInterval = Millis(200);

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::unique_ptr<TupleSource> MakeSource(uint64_t seed = 11) {
  ZipfKeyedSource::Params params;
  params.cardinality = 600;
  params.zipf = 1.0;
  params.seed = seed;
  params.rate = std::make_shared<ConstantRate>(6000);
  return std::make_unique<SynDSource>(std::move(params));
}

EngineOptions RecordOptions(const std::string& journal_dir) {
  EngineOptions opts;
  opts.batch_interval = kInterval;
  opts.map_tasks = 4;
  opts.reduce_tasks = 3;
  opts.obs.collect_partition_metrics = true;
  opts.obs.autopsy_enabled = true;
  opts.journal.dir = journal_dir;
  return opts;
}

ReplayResult MustReplay(const std::string& journal_dir,
                        const std::string& output_dir) {
  ReplayOptions replay;
  replay.journal_dir = journal_dir;
  replay.output_dir = output_dir;
  auto result = ReplayJournal(replay);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueUnsafe();
}

TEST(ReplayDeterminismTest, SingleTenantRoundTripsAcrossShardCounts) {
  for (uint32_t shards : {1u, 4u}) {
    const std::string name = "replay_shards" + std::to_string(shards);
    const std::string journal_dir = FreshDir(name);
    const std::string output_dir = FreshDir(name + ".out");
    {
      auto source = MakeSource();
      EngineOptions opts = RecordOptions(journal_dir);
      opts.ingest.shards = shards;
      MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                              CreatePartitioner(PartitionerType::kPrompt),
                              source.get());
      ASSERT_TRUE(engine.init_status().ok());
      RunSummary summary = engine.Run(8);
      ASSERT_EQ(summary.batches.size(), 8u);
    }
    const ReplayResult result = MustReplay(journal_dir, output_dir);
    EXPECT_EQ(result.mode, "single");
    EXPECT_EQ(result.attempts, 1u);
    EXPECT_EQ(result.batches, 8u);
    EXPECT_TRUE(result.manifest_match) << "shards=" << shards;
    EXPECT_TRUE(result.diff.identical)
        << "shards=" << shards << ": " << result.diff.summary;
    EXPECT_EQ(result.diff.identical_batches, 8u);
  }
}

TEST(ReplayDeterminismTest, AdaptiveRunReplaysSwitchForSwitch) {
  const std::string journal_dir = FreshDir("replay_adaptive");
  const std::string output_dir = FreshDir("replay_adaptive.out");
  {
    auto source = MakeSource(23);
    EngineOptions opts = RecordOptions(journal_dir);
    opts.adapt.enabled = true;
    MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    ASSERT_TRUE(engine.init_status().ok());
    engine.Run(10);
  }
  const ReplayResult result = MustReplay(journal_dir, output_dir);
  EXPECT_TRUE(result.BitIdentical()) << result.diff.summary;

  // Switch decisions are part of the identity check: both journals must
  // carry the same sequence, not merely the same batch outcomes.
  auto a = ReadJournal(journal_dir);
  auto b = ReadJournal(output_dir);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->AllSwitches(), b->AllSwitches());
}

TEST(ReplayDeterminismTest, CrashRestartLineageReplaysBothAttempts) {
  const std::string journal_dir = FreshDir("replay_lineage");
  const std::string output_dir = FreshDir("replay_lineage.out");
  const std::string store_dir = FreshDir("replay_lineage.store");

  // Run 1: durable store on, crash fault at batch 3 of 8.
  {
    auto source = MakeSource(31);
    EngineOptions opts = RecordOptions(journal_dir);
    opts.store.dir = store_dir;
    auto faults = ParseFaultSchedule("crash:3");
    ASSERT_TRUE(faults.ok());
    opts.faults = std::move(faults).ValueUnsafe();
    MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    ASSERT_TRUE(engine.init_status().ok());
    RunSummary summary = engine.Run(8);
    ASSERT_TRUE(summary.crashed);
    ASSERT_LT(summary.batches.size(), 8u);
  }
  // Run 2: the restart — same store and journal, no faults. The journal
  // must carry run 2's fault-free manifest on its own attempt, or replay
  // would re-fire run 1's crash schedule against the restarted engine.
  {
    auto source = MakeSource(31);
    // The restarted process sees the stream from where the crash left it:
    // skip what run 1 already consumed (recorded batches 0..2 + the
    // crashed batch 3's tuples).
    auto recorded = ReadJournal(journal_dir);
    ASSERT_TRUE(recorded.ok());
    Tuple t;
    for (size_t i = 0; i < recorded->attempts[0].tuples.size(); ++i) {
      ASSERT_TRUE(source->Next(&t));
    }
    EngineOptions opts = RecordOptions(journal_dir);
    opts.store.dir = store_dir;
    MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    ASSERT_TRUE(engine.init_status().ok());
    engine.Run(4);
  }

  const ReplayResult result = MustReplay(journal_dir, output_dir);
  EXPECT_EQ(result.attempts, 2u);
  EXPECT_TRUE(result.manifest_match);
  EXPECT_TRUE(result.diff.identical) << result.diff.summary;

  // The replayed lineage reproduced the crash too: the scratch store's
  // attempt 1 ends mid-batch exactly like the recorded one.
  auto replayed = ReadJournal(output_dir);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->attempts.size(), 2u);
  EXPECT_TRUE(replayed->attempts[0].crashed());
  EXPECT_FALSE(replayed->attempts[1].crashed());
}

TEST(ReplayDeterminismTest, TwoTenantRunRoundTrips) {
  const std::string journal_dir = FreshDir("replay_tenants");
  const std::string output_dir = FreshDir("replay_tenants.out");
  {
    auto specs = ParseQueryFile(
        "TENANT even WEIGHT 1 TECHNIQUE Hash KEYS mod:2:0 "
        "QUERY SELECT COUNT WINDOW 1S\n"
        "TENANT odd  WEIGHT 3 TECHNIQUE Prompt KEYS mod:2:1 "
        "QUERY SELECT SUM WINDOW 1S\n");
    ASSERT_TRUE(specs.ok()) << specs.status().message();
    MultiTenantEngineOptions opts;
    opts.batch_interval = kInterval;
    opts.total_slots = 8;
    opts.map_tasks = 4;
    opts.reduce_tasks = 3;
    opts.journal.dir = journal_dir;
    auto source = MakeSource(47);
    auto engine = MultiTenantEngine::Create(
        opts, std::move(specs).ValueUnsafe(), source.get());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    (*engine)->Run(6);
  }
  const ReplayResult result = MustReplay(journal_dir, output_dir);
  EXPECT_EQ(result.mode, "multi");
  EXPECT_TRUE(result.BitIdentical()) << result.diff.summary;

  // Both tenants' verdict streams must be present and identical per owner.
  auto a = ReadJournal(journal_dir);
  auto b = ReadJournal(output_dir);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto oa = a->AllOutcomes();
  const auto ob = b->AllOutcomes();
  ASSERT_EQ(oa.size(), 2u);
  ASSERT_EQ(ob.size(), 2u);
  for (const auto& [owner, outcomes] : oa) {
    ASSERT_EQ(ob.count(owner), 1u) << "owner " << owner;
    ASSERT_EQ(outcomes.size(), ob.at(owner).size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
      EXPECT_TRUE(outcomes[i].BitIdentical(ob.at(owner)[i]))
          << "owner " << owner << " batch " << i;
    }
  }
}

TEST(ReplayDiffTest, PerturbedRerunPinsTheFirstDivergentBatch) {
  const std::string journal_a = FreshDir("diff_base");
  const std::string journal_b = FreshDir("diff_perturbed");
  {
    auto source = MakeSource(59);
    EngineOptions opts = RecordOptions(journal_a);
    MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    engine.Run(8);
  }
  auto a = ReadJournal(journal_a);
  ASSERT_TRUE(a.ok());

  // Re-run the exact recorded stream with one tuple's key flipped inside
  // batch 5 — batches 0..4 must compare identical, batch 5 must be the
  // reported divergence, with the window-output hash among the deltas.
  std::vector<Tuple> tuples = a->AllTuples();
  bool perturbed = false;
  for (Tuple& t : tuples) {
    if (t.ts >= 5 * kInterval) {
      t.key += 1;
      perturbed = true;
      break;
    }
  }
  ASSERT_TRUE(perturbed);
  {
    JournalTupleSource source(std::move(tuples));
    EngineOptions opts = RecordOptions(journal_b);
    MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                            CreatePartitioner(PartitionerType::kPrompt),
                            &source);
    engine.Run(8);
  }
  auto b = ReadJournal(journal_b);
  ASSERT_TRUE(b.ok());

  const JournalDiff diff = DiffJournals(*a, *b);
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.first_divergent_batch, 5u);
  EXPECT_EQ(diff.divergent_owner, 0u);
  EXPECT_EQ(diff.identical_batches, 5u);
  ASSERT_FALSE(diff.fields.empty());
  bool saw_hash = false;
  for (const DiffField& f : diff.fields) {
    if (f.field.find("output_hash") != std::string::npos) saw_hash = true;
  }
  EXPECT_TRUE(saw_hash) << diff.summary;

  // And the self-comparison is clean.
  const JournalDiff same = DiffJournals(*a, *a);
  EXPECT_TRUE(same.identical);
  EXPECT_EQ(same.identical_batches, 8u);
}

}  // namespace
}  // namespace prompt
