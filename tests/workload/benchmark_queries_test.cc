#include "workload/benchmark_queries.h"

#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "engine/engine.h"

namespace prompt {
namespace {

TEST(BenchmarkQueriesTest, AllWorkloadsPresent) {
  auto workloads = PaperWorkloads();
  ASSERT_EQ(workloads.size(), 7u);
  for (const auto& w : workloads) {
    EXPECT_FALSE(w.name.empty());
    EXPECT_GT(w.window, 0);
    EXPECT_GT(w.slide, 0);
    EXPECT_GE(w.job.window_batches, 1u);
    EXPECT_NE(w.job.map, nullptr);
    EXPECT_NE(w.job.reduce, nullptr);
  }
}

TEST(BenchmarkQueriesTest, LookupByName) {
  auto q1 = WorkloadByName("DebsQ1");
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(q1->dataset, DatasetId::kDebs);
  // 2h window / 5min slide = 24 batches regardless of time scale.
  EXPECT_EQ(q1->job.window_batches, 24u);

  EXPECT_TRUE(WorkloadByName("Nope").status().IsInvalid());
}

TEST(BenchmarkQueriesTest, TimeScaleShrinksWindows) {
  auto paper = WorkloadByName("DebsQ2", 1.0);
  auto scaled = WorkloadByName("DebsQ2", 1.0 / 60.0);
  ASSERT_TRUE(paper.ok());
  ASSERT_TRUE(scaled.ok());
  EXPECT_EQ(paper->window, 45 * Seconds(60));
  EXPECT_EQ(scaled->window, Seconds(45));
  EXPECT_EQ(paper->job.window_batches, scaled->job.window_batches);
}

TEST(BenchmarkQueriesTest, TopKCountCarriesK) {
  auto topk = WorkloadByName("TopKCount");
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(topk->top_k, 10u);
}

TEST(BenchmarkQueriesTest, TpchQ6FilterApplies) {
  auto q6 = WorkloadByName("TpchQ6");
  ASSERT_TRUE(q6.ok());
  std::vector<KV> out;
  q6->job.map->Map(Tuple{0, 1, 10.0}, &out);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  q6->job.map->Map(Tuple{0, 1, 30.0}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(BenchmarkQueriesTest, WorkloadsRunOnTheEngine) {
  for (const char* name : {"WordCount", "DebsQ1", "GcmUsage", "TpchQ6"}) {
    auto w = WorkloadByName(name, 1.0 / 300.0);  // extra-compressed windows
    ASSERT_TRUE(w.ok()) << name;
    auto source = MakeDataset(w->dataset, std::make_shared<ConstantRate>(8000),
                              7, 1.0, 0.01);
    EngineOptions opts;
    opts.batch_interval = w->slide;
    MicroBatchEngine engine(opts, w->job,
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    auto summary = engine.Run(3);
    EXPECT_EQ(summary.batches.size(), 3u) << name;
    EXPECT_GT(summary.batches[2].num_tuples, 0u) << name;
  }
}

}  // namespace
}  // namespace prompt
