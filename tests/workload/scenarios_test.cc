// Bursty/adversarial scenario pack: every scenario must be a deterministic
// function of (seed, params) — the crash-restart suite diffs runs across
// process restarts — and must actually exhibit the stress it claims.
#include "workload/scenarios.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <vector>

#include "replay/journal.h"

namespace prompt {
namespace {

std::vector<Tuple> Draw(TupleSource* source, size_t n) {
  std::vector<Tuple> tuples(n);
  for (Tuple& t : tuples) EXPECT_TRUE(source->Next(&t));
  return tuples;
}

TEST(ScenariosTest, EveryScenarioReplaysBitIdentically) {
  for (ScenarioId id : {ScenarioId::kDiurnal, ScenarioId::kFlashCrowd,
                        ScenarioId::kVocabChurn}) {
    ScenarioSpec a = MakeScenario(id, 20000, 7);
    ScenarioSpec b = MakeScenario(id, 20000, 7);
    auto ta = Draw(a.source.get(), 5000);
    auto tb = Draw(b.source.get(), 5000);
    for (size_t i = 0; i < ta.size(); ++i) {
      ASSERT_EQ(ta[i].ts, tb[i].ts) << ScenarioName(id) << " i=" << i;
      ASSERT_EQ(ta[i].key, tb[i].key) << ScenarioName(id) << " i=" << i;
      ASSERT_EQ(ta[i].value, tb[i].value) << ScenarioName(id) << " i=" << i;
    }
  }
}

TEST(ScenariosTest, DifferentSeedsDiverge) {
  ScenarioSpec a = MakeScenario(ScenarioId::kFlashCrowd, 20000, 7);
  ScenarioSpec b = MakeScenario(ScenarioId::kFlashCrowd, 20000, 8);
  auto ta = Draw(a.source.get(), 500);
  auto tb = Draw(b.source.get(), 500);
  size_t same = 0;
  for (size_t i = 0; i < ta.size(); ++i) same += ta[i].key == tb[i].key;
  EXPECT_LT(same, ta.size() / 10);
}

TEST(DiurnalRateTest, PeakIsSharpAndTroughIsFlat) {
  DiurnalRate rate(1000, 3.0, Seconds(20), 9);
  EXPECT_NEAR(rate.RateAt(0), 1000, 1e-6);
  EXPECT_NEAR(rate.RateAt(Seconds(10)), 4000, 1e-6);  // mid-"day" rush
  // Shoulders: with sharpness 9 the quarter-day points are near base — the
  // spike is narrow, not a gentle sinusoid hump.
  EXPECT_LT(rate.RateAt(Seconds(5)), 1100);
  EXPECT_LT(rate.RateAt(Seconds(15)), 1100);
  // Periodic: the next day repeats.
  EXPECT_NEAR(rate.RateAt(Seconds(30)), rate.RateAt(Seconds(10)), 1e-6);
}

TEST(FlashCrowdTest, BurstConcentratesOnViralKeys) {
  ScenarioSpec spec = MakeScenario(ScenarioId::kFlashCrowd, 40000, 11);
  std::map<uint64_t, uint64_t> in_burst, outside;
  Tuple t;
  while (spec.source->Next(&t) && t.ts < Seconds(10)) {
    const bool burst = t.ts >= Seconds(4) && t.ts < Seconds(8);
    ++(burst ? in_burst : outside)[t.key];
  }
  auto top3_share = [](const std::map<uint64_t, uint64_t>& hist) {
    std::vector<uint64_t> counts;
    uint64_t total = 0;
    for (const auto& [key, c] : hist) {
      counts.push_back(c);
      total += c;
    }
    std::sort(counts.rbegin(), counts.rend());
    uint64_t top = 0;
    for (size_t i = 0; i < counts.size() && i < 3; ++i) top += counts[i];
    return static_cast<double>(top) / static_cast<double>(total);
  };
  // 60% of burst tuples collapse onto 3 keys; the Zipf background's top-3
  // holds far less of a 100k-key z=1.0 draw.
  EXPECT_GT(top3_share(in_burst), 0.55);
  EXPECT_LT(top3_share(outside), 0.35);
}

TEST(FlashCrowdTest, PreBurstStreamMatchesPlainZipf) {
  // Until the burst begins the source must be indistinguishable from the
  // plain background — the burst is a redirection, not a different stream.
  ZipfKeyedSource::Params params;
  params.cardinality = 100000;
  params.zipf = 1.0;
  params.seed = 7;
  params.rate = std::make_shared<ConstantRate>(20000);
  SynDSource plain(std::move(params));
  ScenarioSpec crowd = MakeScenario(ScenarioId::kFlashCrowd, 20000, 7);
  for (int i = 0; i < 1000; ++i) {  // 1000 tuples at 20k/s ≈ 50ms << 4s
    Tuple a, b;
    ASSERT_TRUE(plain.Next(&a));
    ASSERT_TRUE(crowd.source->Next(&b));
    ASSERT_EQ(a.ts, b.ts) << i;
    ASSERT_EQ(a.key, b.key) << i;
  }
}

TEST(VocabularyChurnTest, EpochsShareAlmostNoKeys) {
  ScenarioSpec spec = MakeScenario(ScenarioId::kVocabChurn, 40000, 13);
  std::set<uint64_t> epoch0, epoch1;
  Tuple t;
  while (spec.source->Next(&t) && t.ts < Seconds(6)) {
    (t.ts < Seconds(3) ? epoch0 : epoch1).insert(t.key);
  }
  ASSERT_GT(epoch0.size(), 1000u);
  ASSERT_GT(epoch1.size(), 1000u);
  size_t shared = 0;
  for (uint64_t k : epoch0) shared += epoch1.count(k);
  // The whole vocabulary rotates: only chance Mix64 collisions remain.
  EXPECT_LT(shared, epoch0.size() / 100);
}

TEST(VocabularyChurnTest, DistributionShapeCarriesAcrossEpochs) {
  ScenarioSpec spec = MakeScenario(ScenarioId::kVocabChurn, 40000, 13);
  std::map<uint64_t, uint64_t> epoch0, epoch1;
  Tuple t;
  while (spec.source->Next(&t) && t.ts < Seconds(6)) {
    ++(t.ts < Seconds(3) ? epoch0 : epoch1)[t.key];
  }
  auto top_count = [](const std::map<uint64_t, uint64_t>& hist) {
    uint64_t top = 0;
    for (const auto& [key, c] : hist) top = std::max(top, c);
    return top;
  };
  // Different keys, same Zipf: the hottest key's mass is comparable.
  const double ratio = static_cast<double>(top_count(epoch0)) /
                       static_cast<double>(top_count(epoch1));
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(ScenariosTest, NamesAreStable) {
  EXPECT_STREQ(ScenarioName(ScenarioId::kDiurnal), "diurnal");
  EXPECT_STREQ(ScenarioName(ScenarioId::kFlashCrowd), "flash_crowd");
  EXPECT_STREQ(ScenarioName(ScenarioId::kVocabChurn), "vocab_churn");
  for (ScenarioId id : {ScenarioId::kDiurnal, ScenarioId::kFlashCrowd,
                        ScenarioId::kVocabChurn}) {
    ScenarioSpec spec = MakeScenario(id, 1000, 1);
    EXPECT_NE(spec.source, nullptr);
    EXPECT_NE(spec.description[0], '\0');
  }
}

TEST(ScenariosTest, StringSpecResolvesPresetsAndRejectsUnknown) {
  for (const char* name : {"diurnal", "flash_crowd", "vocab_churn"}) {
    auto spec = MakeScenario(std::string(name), 1000, 1);
    ASSERT_TRUE(spec.ok()) << name;
    EXPECT_NE(spec->source, nullptr);
  }
  EXPECT_FALSE(MakeScenario(std::string("thundering_herd"), 1000, 1).ok());
  EXPECT_FALSE(MakeScenario(std::string("replay:"), 1000, 1).ok());
  EXPECT_FALSE(
      MakeScenario(std::string("replay:/nonexistent/journal"), 1000, 1).ok());
}

TEST(ScenariosTest, ReplaySpecServesAJournalsRecordedStream) {
  const std::string dir = ::testing::TempDir() + "/scenario_replay_journal";
  std::filesystem::remove_all(dir);
  JournalManifest manifest;
  manifest.Set("mode", "single");
  JournalOptions options;
  options.dir = dir;
  {
    auto writer = JournalWriter::Open(options, manifest);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    Tuple t;
    for (uint64_t i = 0; i < 50; ++i) {
      t.ts = static_cast<TimeMicros>(i * 1000);
      t.key = i * 3 + 1;
      t.value = static_cast<double>(i);
      (*writer)->RecordTuple(t);
    }
    ASSERT_TRUE((*writer)->AppendBatchTuples(0).ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }

  auto spec = MakeScenario("replay:" + dir, /*rate ignored*/ 0, /*seed*/ 0);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  Tuple t;
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(spec->source->Next(&t)) << i;
    EXPECT_EQ(t.ts, static_cast<TimeMicros>(i * 1000));
    EXPECT_EQ(t.key, i * 3 + 1);
    EXPECT_EQ(t.value, static_cast<double>(i));
  }
  EXPECT_FALSE(spec->source->Next(&t));
}

}  // namespace
}  // namespace prompt
