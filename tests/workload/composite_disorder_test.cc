#include <gtest/gtest.h>

#include <map>

#include "workload/composite_source.h"
#include "workload/disorder.h"
#include "workload/sources.h"

namespace prompt {
namespace {

std::unique_ptr<SynDSource> MakeSource(double rate, uint64_t seed) {
  ZipfKeyedSource::Params params;
  params.cardinality = 100;
  params.zipf = 1.0;
  params.seed = seed;
  params.rate = std::make_shared<ConstantRate>(rate);
  return std::make_unique<SynDSource>(std::move(params));
}

TEST(CompositeSourceTest, MergesInTimestampOrder) {
  auto a = MakeSource(1000, 1);
  auto b = MakeSource(3000, 2);
  auto c = MakeSource(500, 3);
  CompositeSource merged({a.get(), b.get(), c.get()});
  EXPECT_EQ(merged.active_sources(), 3u);

  Tuple t;
  TimeMicros prev = -1;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(merged.Next(&t));
    ASSERT_GE(t.ts, prev) << "merge violated order at " << i;
    prev = t.ts;
  }
}

TEST(CompositeSourceTest, RateIsSumOfConstituents) {
  auto a = MakeSource(1000, 1);
  auto b = MakeSource(3000, 2);
  CompositeSource merged({a.get(), b.get()});
  Tuple t{};
  int n = 0;
  while (true) {
    merged.Next(&t);
    if (t.ts >= Seconds(1)) break;
    ++n;
  }
  EXPECT_NEAR(n, 4000, 200);
}

TEST(CompositeSourceTest, CardinalitySums) {
  auto a = MakeSource(1000, 1);
  auto b = MakeSource(1000, 2);
  CompositeSource merged({a.get(), b.get()});
  EXPECT_EQ(merged.cardinality(), 200u);
}

// A finite source for exhaustion tests.
class FiniteSource final : public TupleSource {
 public:
  FiniteSource(TimeMicros step, int count) : step_(step), remaining_(count) {}
  const char* name() const override { return "Finite"; }
  uint64_t cardinality() const override { return 1; }
  bool Next(Tuple* t) override {
    if (remaining_ == 0) return false;
    --remaining_;
    now_ += step_;
    *t = Tuple{now_, 1, 1.0};
    return true;
  }

 private:
  TimeMicros step_;
  TimeMicros now_ = 0;
  int remaining_;
};

TEST(CompositeSourceTest, DrainsExhaustedSources) {
  FiniteSource a(10, 5);
  FiniteSource b(7, 8);
  CompositeSource merged({&a, &b});
  Tuple t;
  int n = 0;
  while (merged.Next(&t)) ++n;
  EXPECT_EQ(n, 13);
  EXPECT_FALSE(merged.Next(&t));
}

TEST(DisorderedSourceTest, IntroducesBoundedDisorder) {
  auto inner = MakeSource(10000, 4);
  DisorderedSource disordered(inner.get(), 16);
  Tuple t;
  TimeMicros prev = 0;
  int inversions = 0;
  TimeMicros worst_regression = 0;
  TimeMicros max_seen = 0;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(disordered.Next(&t));
    if (t.ts < prev) ++inversions;
    max_seen = std::max(max_seen, t.ts);
    worst_regression = std::max(worst_regression, max_seen - t.ts);
    prev = t.ts;
  }
  EXPECT_GT(inversions, 0) << "should actually disorder the stream";
  // Displacement bound: at 10k/s, 17 positions is a few ms of regression.
  EXPECT_LE(worst_regression, Millis(5));
}

TEST(ReorderBufferTest, RestoresExactOrder) {
  auto inner = MakeSource(10000, 4);
  DisorderedSource disordered(inner.get(), 16);
  ReorderBuffer reordered(&disordered, Millis(5));
  Tuple t;
  TimeMicros prev = -1;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(reordered.Next(&t));
    ASSERT_GE(t.ts, prev) << "reorder buffer failed at " << i;
    prev = t.ts;
  }
  EXPECT_EQ(reordered.dropped(), 0u);
}

TEST(ReorderBufferTest, LosslessWhenDelayCoversDisorder) {
  // Count tuples over a fixed stream-time horizon with and without the
  // disorder+reorder pipeline; they must agree.
  auto count_until = [](TupleSource& src, TimeMicros horizon) {
    Tuple t{};
    std::map<KeyId, int> hist;
    while (src.Next(&t) && t.ts < horizon) ++hist[t.key];
    return hist;
  };
  auto plain = MakeSource(5000, 9);
  auto expected = count_until(*plain, Millis(500));

  auto inner = MakeSource(5000, 9);
  DisorderedSource disordered(inner.get(), 8);
  ReorderBuffer reordered(&disordered, Millis(10));
  auto got = count_until(reordered, Millis(500));
  EXPECT_EQ(got, expected);
}

TEST(ReorderBufferTest, DropsTuplesBeyondMaxDelay) {
  auto inner = MakeSource(20000, 11);
  DisorderedSource disordered(inner.get(), 64);  // ~3.2ms max regression
  ReorderBuffer reordered(&disordered, Millis(0));  // no tolerance at all
  Tuple t;
  TimeMicros prev = -1;
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(reordered.Next(&t));
    ASSERT_GE(t.ts, prev);  // order still guaranteed...
    prev = t.ts;
  }
  EXPECT_GT(reordered.dropped(), 0u);  // ...at the price of drops
}

}  // namespace
}  // namespace prompt
