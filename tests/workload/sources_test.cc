#include "workload/sources.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace prompt {
namespace {

std::shared_ptr<const RateProfile> Constant(double rate) {
  return std::make_shared<ConstantRate>(rate);
}

TEST(SourcesTest, TimestampsAreNonDecreasing) {
  for (DatasetId id : {DatasetId::kTweets, DatasetId::kSynD, DatasetId::kDebs,
                       DatasetId::kGcm, DatasetId::kTpch}) {
    auto source = MakeDataset(id, Constant(10000));
    Tuple t;
    TimeMicros prev = -1;
    for (int i = 0; i < 5000; ++i) {
      ASSERT_TRUE(source->Next(&t));
      ASSERT_GE(t.ts, prev) << DatasetName(id);
      prev = t.ts;
    }
  }
}

TEST(SourcesTest, DeterministicPerSeed) {
  auto a = MakeDataset(DatasetId::kSynD, Constant(1000), 7);
  auto b = MakeDataset(DatasetId::kSynD, Constant(1000), 7);
  auto c = MakeDataset(DatasetId::kSynD, Constant(1000), 8);
  Tuple ta, tb, tc;
  bool all_same_c = true;
  for (int i = 0; i < 1000; ++i) {
    a->Next(&ta);
    b->Next(&tb);
    c->Next(&tc);
    ASSERT_EQ(ta.key, tb.key);
    ASSERT_EQ(ta.ts, tb.ts);
    if (ta.key != tc.key) all_same_c = false;
  }
  EXPECT_FALSE(all_same_c);
}

TEST(SourcesTest, PacingMatchesConstantRate) {
  auto source = MakeDataset(DatasetId::kSynD, Constant(50000));
  Tuple t{};
  for (int i = 0; i < 50000; ++i) source->Next(&t);
  // 50k tuples at 50k/s ~ 1 second of stream time.
  EXPECT_NEAR(ToSeconds(t.ts), 1.0, 0.02);
}

TEST(SourcesTest, SinusoidalRateModulatesDensity) {
  auto rate = std::make_shared<SinusoidalRate>(10000, 0.8, Seconds(2));
  auto source = MakeDataset(DatasetId::kSynD, rate);
  std::map<int64_t, int> per_half_second;
  Tuple t;
  while (true) {
    source->Next(&t);
    if (t.ts >= Seconds(2)) break;
    ++per_half_second[t.ts / Millis(500)];
  }
  // First half-second (rising toward peak) much denser than the third
  // (falling toward trough).
  EXPECT_GT(per_half_second[0], per_half_second[2] * 2);
}

TEST(SourcesTest, SkewConcentratesKeys) {
  ZipfKeyedSource::Params params;
  params.cardinality = 100000;
  params.zipf = 1.8;
  params.rate = Constant(10000);
  SynDSource skewed(std::move(params));

  std::map<KeyId, int> counts;
  Tuple t;
  for (int i = 0; i < 20000; ++i) {
    skewed.Next(&t);
    ++counts[t.key];
  }
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 2000);  // hottest key dominates at z=1.8
}

TEST(SourcesTest, NearUniformSpreadsKeys) {
  ZipfKeyedSource::Params params;
  params.cardinality = 100000;
  params.zipf = 0.1;
  params.rate = Constant(10000);
  SynDSource uniform(std::move(params));
  std::map<KeyId, int> counts;
  Tuple t;
  for (int i = 0; i < 20000; ++i) {
    uniform.Next(&t);
    ++counts[t.key];
  }
  // Nearly all keys distinct when drawing 20k of 100k near-uniformly.
  EXPECT_GT(counts.size(), 15000u);
}

TEST(SourcesTest, TweetsBurstsShareTimestamps) {
  auto source = MakeDataset(DatasetId::kTweets, Constant(10000));
  std::map<TimeMicros, int> words_per_ts;
  Tuple t;
  for (int i = 0; i < 5000; ++i) {
    source->Next(&t);
    ++words_per_ts[t.ts];
  }
  int total = 0, bursts = 0;
  for (const auto& [ts, n] : words_per_ts) {
    total += n;
    if (n >= 8) ++bursts;
  }
  EXPECT_GT(bursts, 0) << "tweets should burst 8-20 words per timestamp";
  EXPECT_NEAR(static_cast<double>(total) / words_per_ts.size(), 14.0, 4.0);
}

TEST(SourcesTest, DebsValuesLookLikeFares) {
  ZipfKeyedSource::Params params;
  params.cardinality = 10000;
  params.zipf = 0.6;
  params.rate = Constant(1000);
  DebsTaxiSource fares(std::move(params), DebsTaxiSource::Query::kFare);
  Tuple t;
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    fares.Next(&t);
    ASSERT_GE(t.value, 2.5);
    ASSERT_LE(t.value, 120.0);
    sum += t.value;
  }
  EXPECT_GT(sum / 5000, 5.0);  // mean fare above the base
}

TEST(SourcesTest, TpchQuantitiesAreIntegral) {
  auto source = MakeDataset(DatasetId::kTpch, Constant(1000));
  Tuple t;
  for (int i = 0; i < 2000; ++i) {
    source->Next(&t);
    ASSERT_GE(t.value, 1.0);
    ASSERT_LE(t.value, 50.0);
    ASSERT_DOUBLE_EQ(t.value, std::floor(t.value));
  }
}

TEST(SourcesTest, Table1CardinalitiesMatchThePaper) {
  auto rate = Constant(1000);
  EXPECT_EQ(MakeDataset(DatasetId::kTweets, rate)->cardinality(), 790000u);
  EXPECT_EQ(MakeDataset(DatasetId::kSynD, rate)->cardinality(), 1000000u);
  EXPECT_EQ(MakeDataset(DatasetId::kDebs, rate)->cardinality(), 8000000u);
  EXPECT_EQ(MakeDataset(DatasetId::kGcm, rate)->cardinality(), 600000u);
  EXPECT_EQ(MakeDataset(DatasetId::kTpch, rate)->cardinality(), 1000000u);
}

TEST(SourcesTest, GcmValuesAreNormalizedCpu) {
  auto source = MakeDataset(DatasetId::kGcm, Constant(1000));
  Tuple t;
  for (int i = 0; i < 2000; ++i) {
    source->Next(&t);
    ASSERT_GE(t.value, 0.0);
    ASSERT_LE(t.value, 1.0);
  }
}

}  // namespace
}  // namespace prompt
