#include "workload/dictionary.h"

#include <gtest/gtest.h>

#include <set>

#include "workload/text_sources.h"

namespace prompt {
namespace {

TEST(KeyDictionaryTest, InternIsIdempotent) {
  KeyDictionary dict;
  KeyId a = dict.Intern("hello");
  KeyId b = dict.Intern("world");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("hello"), a);
  EXPECT_EQ(dict.Intern("world"), b);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(KeyDictionaryTest, IdsAreDense) {
  KeyDictionary dict;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dict.Intern("k" + std::to_string(i)), static_cast<KeyId>(i));
  }
}

TEST(KeyDictionaryTest, LookupRoundTrip) {
  KeyDictionary dict;
  KeyId id = dict.Intern("medallion-7");
  auto r = dict.Lookup(id);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "medallion-7");
}

TEST(KeyDictionaryTest, LookupUnknownIdFails) {
  KeyDictionary dict;
  EXPECT_TRUE(dict.Lookup(0).status().IsKeyError());
  EXPECT_EQ(dict.LookupOr(5, "??"), "??");
}

TEST(KeyDictionaryTest, ContainsChecksWithoutInterning) {
  KeyDictionary dict;
  dict.Intern("a");
  EXPECT_TRUE(dict.Contains("a"));
  EXPECT_FALSE(dict.Contains("b"));
  EXPECT_EQ(dict.size(), 1u);
}

TEST(KeyDictionaryTest, SurvivesManyInterns) {
  // deque storage must keep views valid across growth.
  KeyDictionary dict;
  std::vector<KeyId> ids;
  for (int i = 0; i < 50000; ++i) {
    ids.push_back(dict.Intern("key-" + std::to_string(i)));
  }
  for (int i = 0; i < 50000; i += 997) {
    auto r = dict.Lookup(ids[i]);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, "key-" + std::to_string(i));
  }
}

TEST(SynthesizeWordTest, DistinctAndDeterministic) {
  std::set<std::string> words;
  for (uint64_t rank = 0; rank < 10000; ++rank) {
    auto w = SynthesizeWord(rank);
    EXPECT_TRUE(words.insert(w).second) << "duplicate word " << w;
    EXPECT_EQ(w, SynthesizeWord(rank));
  }
  // Low ranks get short words.
  EXPECT_LE(SynthesizeWord(0).size(), SynthesizeWord(5000).size());
}

TEST(SynthesizeMedallionTest, DistinctLabels) {
  std::set<std::string> labels;
  for (uint64_t rank = 0; rank < 100000; rank += 7) {
    EXPECT_TRUE(labels.insert(SynthesizeMedallion(rank)).second);
  }
}

TEST(WordStreamSourceTest, EmitsInternedWords) {
  WordStreamSource::Params params;
  params.vocabulary = 1000;
  params.zipf = 1.0;
  params.rate = std::make_shared<ConstantRate>(10000);
  WordStreamSource source(std::move(params));
  Tuple t;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(source.Next(&t));
    auto word = source.dictionary().Lookup(t.key);
    ASSERT_TRUE(word.ok());
    EXPECT_FALSE(word->empty());
  }
  EXPECT_GT(source.dictionary().size(), 100u);
  EXPECT_LE(source.dictionary().size(), 1000u);
}

TEST(MedallionTripSourceTest, FaresAndLabels) {
  MedallionTripSource::Params params;
  params.medallions = 5000;
  params.rate = std::make_shared<ConstantRate>(5000);
  MedallionTripSource source(std::move(params));
  Tuple t;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(source.Next(&t));
    EXPECT_GE(t.value, 2.5);
    EXPECT_LE(t.value, 120.0);
    auto label = source.dictionary().Lookup(t.key);
    ASSERT_TRUE(label.ok());
    EXPECT_EQ(label->size(), 7u);  // "XXXX-YY"
  }
}

}  // namespace
}  // namespace prompt
