#include "workload/rate_profile.h"

#include <gtest/gtest.h>

namespace prompt {
namespace {

TEST(ConstantRateTest, IsConstant) {
  ConstantRate rate(1234.5);
  EXPECT_DOUBLE_EQ(rate.RateAt(0), 1234.5);
  EXPECT_DOUBLE_EQ(rate.RateAt(Seconds(100)), 1234.5);
}

TEST(SinusoidalRateTest, OscillatesAroundMean) {
  SinusoidalRate rate(1000, 0.5, Seconds(10));
  EXPECT_NEAR(rate.RateAt(0), 1000, 1e-6);                    // sin(0)=0
  EXPECT_NEAR(rate.RateAt(Seconds(2.5)), 1500, 1e-6);         // peak
  EXPECT_NEAR(rate.RateAt(Seconds(7.5)), 500, 1e-6);          // trough
  EXPECT_NEAR(rate.RateAt(Seconds(10)), 1000, 1e-6);          // wraps
}

TEST(SinusoidalRateTest, NeverNonPositiveForValidAmplitude) {
  SinusoidalRate rate(100, 0.99, Seconds(1));
  for (TimeMicros t = 0; t < Seconds(2); t += Millis(13)) {
    EXPECT_GT(rate.RateAt(t), 0);
  }
}

TEST(PiecewiseRateTest, InterpolatesLinearly) {
  PiecewiseRate rate({{0, 100}, {Seconds(10), 1100}});
  EXPECT_DOUBLE_EQ(rate.RateAt(0), 100);
  EXPECT_DOUBLE_EQ(rate.RateAt(Seconds(5)), 600);
  EXPECT_DOUBLE_EQ(rate.RateAt(Seconds(10)), 1100);
}

TEST(PiecewiseRateTest, ClampsOutsideKnots) {
  PiecewiseRate rate({{Seconds(1), 100}, {Seconds(2), 200}});
  EXPECT_DOUBLE_EQ(rate.RateAt(0), 100);
  EXPECT_DOUBLE_EQ(rate.RateAt(Seconds(99)), 200);
}

TEST(PiecewiseRateTest, MultiSegmentRampUpDown) {
  PiecewiseRate rate(
      {{0, 100}, {Seconds(2), 500}, {Seconds(4), 500}, {Seconds(6), 200}});
  EXPECT_DOUBLE_EQ(rate.RateAt(Seconds(1)), 300);
  EXPECT_DOUBLE_EQ(rate.RateAt(Seconds(3)), 500);
  EXPECT_DOUBLE_EQ(rate.RateAt(Seconds(5)), 350);
}

TEST(ScaledRateTest, MultipliesBase) {
  auto base = std::make_shared<ConstantRate>(100);
  ScaledRate scaled(base, 2.5);
  EXPECT_DOUBLE_EQ(scaled.RateAt(0), 250);
}

}  // namespace
}  // namespace prompt
