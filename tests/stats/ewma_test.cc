#include "stats/ewma.h"

#include <gtest/gtest.h>

namespace prompt {
namespace {

TEST(EwmaTest, FirstObservationInitializes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  EXPECT_DOUBLE_EQ(e.Value(99.0), 99.0);
  e.Observe(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.Value(), 10.0);
}

TEST(EwmaTest, BlendsObservations) {
  Ewma e(0.5);
  e.Observe(10.0);
  e.Observe(20.0);
  EXPECT_DOUBLE_EQ(e.Value(), 15.0);
  e.Observe(15.0);
  EXPECT_DOUBLE_EQ(e.Value(), 15.0);
}

TEST(EwmaTest, ConvergesToConstantInput) {
  Ewma e(0.3);
  for (int i = 0; i < 100; ++i) e.Observe(42.0);
  EXPECT_NEAR(e.Value(), 42.0, 1e-9);
}

TEST(EwmaTest, ResetForgets) {
  Ewma e(0.3);
  e.Observe(5.0);
  e.Reset();
  EXPECT_FALSE(e.initialized());
}

TEST(TrendTrackerTest, DetectsIncrease) {
  TrendTracker t(3);
  t.Observe(100);
  t.Observe(110);
  t.Observe(125);
  t.Observe(140);
  EXPECT_TRUE(t.Increasing());
  EXPECT_FALSE(t.Decreasing());
}

TEST(TrendTrackerTest, DetectsDecrease) {
  TrendTracker t(3);
  for (double v : {200.0, 180.0, 150.0, 120.0}) t.Observe(v);
  EXPECT_TRUE(t.Decreasing());
  EXPECT_FALSE(t.Increasing());
}

TEST(TrendTrackerTest, FlatIsNeither) {
  TrendTracker t(3);
  for (double v : {100.0, 101.0, 100.0, 100.5}) t.Observe(v);
  EXPECT_FALSE(t.Increasing());
  EXPECT_FALSE(t.Decreasing());
}

TEST(TrendTrackerTest, SingleObservationIsNeither) {
  TrendTracker t(3);
  t.Observe(5);
  EXPECT_FALSE(t.Increasing());
  EXPECT_FALSE(t.Decreasing());
}

TEST(TrendTrackerTest, ToleranceSuppressesNoise) {
  TrendTracker t(3);
  t.Observe(1000);
  t.Observe(1005);
  t.Observe(1010);
  t.Observe(1015);
  EXPECT_FALSE(t.Increasing(0.05));  // 1.5% < 5% tolerance
  EXPECT_TRUE(t.Increasing(0.001));
}

}  // namespace
}  // namespace prompt
