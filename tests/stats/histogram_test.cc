#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace prompt {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.Record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 3.0);
}

TEST(HistogramTest, PercentileInterpolates) {
  Histogram h;
  h.Record(0.0);
  h.Record(10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(25), 2.5);
}

TEST(HistogramTest, RecordAfterPercentileQuery) {
  Histogram h;
  h.Record(5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 5.0);
  h.Record(1.0);  // must re-sort lazily
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
}

TEST(HistogramTest, StdDev) {
  Histogram h;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) h.Record(v);
  EXPECT_NEAR(h.StdDev(), 2.0, 1e-9);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Record(1.0);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
}

}  // namespace
}  // namespace prompt
