#include "stats/hyperloglog.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace prompt {
namespace {

TEST(HyperLogLogTest, EmptyEstimatesZero) {
  HyperLogLog hll(12);
  EXPECT_NEAR(hll.Estimate(), 0.0, 1.0);
}

TEST(HyperLogLogTest, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  for (int i = 0; i < 100000; ++i) hll.Add(42);
  EXPECT_NEAR(hll.Estimate(), 1.0, 1.0);
}

class HllAccuracyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HllAccuracyTest, WithinExpectedError) {
  const uint64_t n = GetParam();
  HyperLogLog hll(12);  // ~1.6% standard error
  for (uint64_t k = 0; k < n; ++k) hll.Add(k);
  const double estimate = hll.Estimate();
  EXPECT_NEAR(estimate, static_cast<double>(n),
              std::max(8.0, 0.06 * static_cast<double>(n)))
      << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, HllAccuracyTest,
                         ::testing::Values(10, 100, 1000, 50000, 1000000));

TEST(HyperLogLogTest, MergeEqualsUnion) {
  HyperLogLog a(12), b(12), both(12);
  for (uint64_t k = 0; k < 30000; ++k) {
    a.Add(k);
    both.Add(k);
  }
  for (uint64_t k = 20000; k < 60000; ++k) {
    b.Add(k);
    both.Add(k);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_NEAR(a.Estimate(), both.Estimate(), 0.01 * both.Estimate() + 10);
  EXPECT_NEAR(a.Estimate(), 60000, 3000);
}

TEST(HyperLogLogTest, MergeRejectsPrecisionMismatch) {
  HyperLogLog a(10), b(12);
  EXPECT_TRUE(a.Merge(b).IsInvalid());
}

TEST(HyperLogLogTest, ClearResets) {
  HyperLogLog hll(10);
  for (uint64_t k = 0; k < 1000; ++k) hll.Add(k);
  hll.Clear();
  EXPECT_NEAR(hll.Estimate(), 0.0, 1.0);
}

TEST(HyperLogLogTest, MemoryIsRegisterCount) {
  EXPECT_EQ(HyperLogLog(10).memory_bytes(), 1024u);
  EXPECT_EQ(HyperLogLog(14).memory_bytes(), 16384u);
}

TEST(HyperLogLogTest, LowPrecisionStillReasonable) {
  HyperLogLog hll(6);  // 64 registers, ~13% error
  for (uint64_t k = 0; k < 100000; ++k) hll.Add(k);
  EXPECT_NEAR(hll.Estimate(), 100000, 35000);
}

// Heavy-hitter mode feeds the HLL a duplicate-heavy Zipf stream (the same
// key arrives thousands of times): the estimate must track the number of
// DISTINCT keys drawn, not the number of Add calls.
TEST(HyperLogLogTest, DuplicateHeavyZipfStreamTracksDistinctDraws) {
  Rng rng(1234);
  ZipfSampler sampler(/*cardinality=*/200000, /*z=*/1.0);
  HyperLogLog hll(12);
  std::vector<bool> seen(200001, false);
  uint64_t distinct = 0;
  for (int i = 0; i < 500000; ++i) {
    const uint64_t key = sampler.Sample(rng);
    if (!seen[key]) {
      seen[key] = true;
      ++distinct;
    }
    hll.Add(key);
  }
  // 500k draws collapse to far fewer distinct keys; 6% tolerance matches
  // the sequential-stream accuracy cases above.
  EXPECT_LT(distinct, 200000u);
  EXPECT_NEAR(hll.Estimate(), static_cast<double>(distinct),
              0.06 * static_cast<double>(distinct));
}

// Merge is a register-wise max: commutative, and merging a sketch into
// itself (or an empty one into anything) must not move the estimate.
TEST(HyperLogLogTest, MergeIsCommutativeAndIdempotent) {
  HyperLogLog a(12), b(12);
  for (uint64_t k = 0; k < 40000; ++k) a.Add(k);
  for (uint64_t k = 25000; k < 90000; ++k) b.Add(k * 7 + 3);

  HyperLogLog ab = a, ba = b;
  ASSERT_TRUE(ab.Merge(b).ok());
  ASSERT_TRUE(ba.Merge(a).ok());
  EXPECT_DOUBLE_EQ(ab.Estimate(), ba.Estimate());

  const double before = ab.Estimate();
  ASSERT_TRUE(ab.Merge(ab).ok());  // self-merge: register-wise no-op
  EXPECT_DOUBLE_EQ(ab.Estimate(), before);

  HyperLogLog empty(12);
  ASSERT_TRUE(ab.Merge(empty).ok());  // empty is the identity
  EXPECT_DOUBLE_EQ(ab.Estimate(), before);
}

// Sharded ingest folds per-shard HLLs by addition of estimates only when
// shards see disjoint keys; the sketch itself must stay deterministic so
// that fold is reproducible run to run.
TEST(HyperLogLogTest, DeterministicAcrossIdenticalStreams) {
  Rng rng_a(77), rng_b(77);
  HyperLogLog a(10), b(10);
  for (int i = 0; i < 100000; ++i) {
    a.Add(rng_a.Next() % 30000);
    b.Add(rng_b.Next() % 30000);
  }
  EXPECT_DOUBLE_EQ(a.Estimate(), b.Estimate());
}

}  // namespace
}  // namespace prompt
