#include "stats/hyperloglog.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace prompt {
namespace {

TEST(HyperLogLogTest, EmptyEstimatesZero) {
  HyperLogLog hll(12);
  EXPECT_NEAR(hll.Estimate(), 0.0, 1.0);
}

TEST(HyperLogLogTest, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  for (int i = 0; i < 100000; ++i) hll.Add(42);
  EXPECT_NEAR(hll.Estimate(), 1.0, 1.0);
}

class HllAccuracyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HllAccuracyTest, WithinExpectedError) {
  const uint64_t n = GetParam();
  HyperLogLog hll(12);  // ~1.6% standard error
  for (uint64_t k = 0; k < n; ++k) hll.Add(k);
  const double estimate = hll.Estimate();
  EXPECT_NEAR(estimate, static_cast<double>(n),
              std::max(8.0, 0.06 * static_cast<double>(n)))
      << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, HllAccuracyTest,
                         ::testing::Values(10, 100, 1000, 50000, 1000000));

TEST(HyperLogLogTest, MergeEqualsUnion) {
  HyperLogLog a(12), b(12), both(12);
  for (uint64_t k = 0; k < 30000; ++k) {
    a.Add(k);
    both.Add(k);
  }
  for (uint64_t k = 20000; k < 60000; ++k) {
    b.Add(k);
    both.Add(k);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_NEAR(a.Estimate(), both.Estimate(), 0.01 * both.Estimate() + 10);
  EXPECT_NEAR(a.Estimate(), 60000, 3000);
}

TEST(HyperLogLogTest, MergeRejectsPrecisionMismatch) {
  HyperLogLog a(10), b(12);
  EXPECT_TRUE(a.Merge(b).IsInvalid());
}

TEST(HyperLogLogTest, ClearResets) {
  HyperLogLog hll(10);
  for (uint64_t k = 0; k < 1000; ++k) hll.Add(k);
  hll.Clear();
  EXPECT_NEAR(hll.Estimate(), 0.0, 1.0);
}

TEST(HyperLogLogTest, MemoryIsRegisterCount) {
  EXPECT_EQ(HyperLogLog(10).memory_bytes(), 1024u);
  EXPECT_EQ(HyperLogLog(14).memory_bytes(), 16384u);
}

TEST(HyperLogLogTest, LowPrecisionStillReasonable) {
  HyperLogLog hll(6);  // 64 registers, ~13% error
  for (uint64_t k = 0; k < 100000; ++k) hll.Add(k);
  EXPECT_NEAR(hll.Estimate(), 100000, 35000);
}

}  // namespace
}  // namespace prompt
