#include "stats/space_saving.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"

namespace prompt {
namespace {

TEST(SpaceSavingTest, ExactWhenUnderCapacity) {
  SpaceSaving sketch(16);
  for (int i = 0; i < 10; ++i) {
    for (uint64_t k = 0; k <= static_cast<uint64_t>(i); ++k) sketch.Add(k);
  }
  // Key k was added (10 - k) times.
  for (uint64_t k = 0; k < 10; ++k) {
    EXPECT_EQ(sketch.Estimate(k), 10 - k);
  }
  EXPECT_EQ(sketch.size(), 10u);
}

TEST(SpaceSavingTest, EstimateZeroForUnknownKey) {
  SpaceSaving sketch(4);
  sketch.Add(1);
  EXPECT_EQ(sketch.Estimate(99), 0u);
  EXPECT_FALSE(sketch.Tracks(99));
}

TEST(SpaceSavingTest, CapacityIsRespected) {
  SpaceSaving sketch(8);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) sketch.Add(rng.NextBounded(1000));
  EXPECT_EQ(sketch.size(), 8u);
  EXPECT_EQ(sketch.total(), 10000u);
}

TEST(SpaceSavingTest, NeverUnderestimates) {
  // Space-Saving guarantees estimate >= true count for tracked keys.
  SpaceSaving sketch(32);
  Rng rng(7);
  ZipfSampler zipf(500, 1.2);
  std::map<KeyId, uint64_t> truth;
  for (int i = 0; i < 50000; ++i) {
    KeyId k = zipf.Sample(rng);
    ++truth[k];
    sketch.Add(k);
  }
  for (const auto& e : sketch.TopEntries()) {
    EXPECT_GE(e.count, truth[e.key]) << "key " << e.key;
    EXPECT_LE(e.count - e.error, truth[e.key] + 0u) << "lower bound invalid";
  }
}

TEST(SpaceSavingTest, FindsTrueHeavyHittersUnderSkew) {
  SpaceSaving sketch(64);
  Rng rng(3);
  ZipfSampler zipf(100000, 1.3);
  std::map<KeyId, uint64_t> truth;
  for (int i = 0; i < 200000; ++i) {
    KeyId k = zipf.Sample(rng);
    ++truth[k];
    sketch.Add(k);
  }
  // Every key above 2% of the stream must be reported as a heavy hitter.
  auto hitters = sketch.HeavyHitters(0.02);
  std::map<KeyId, bool> reported;
  for (const auto& e : hitters) reported[e.key] = true;
  for (const auto& [k, c] : truth) {
    if (c > 0.02 * 200000 * 1.2) {
      EXPECT_TRUE(reported[k]) << "missed heavy hitter " << k;
    }
  }
}

TEST(SpaceSavingTest, TopEntriesSortedDescending) {
  SpaceSaving sketch(16);
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) sketch.Add(rng.NextBounded(10));
  auto top = sketch.TopEntries();
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].count, top[i].count);
  }
}

TEST(SpaceSavingTest, EvictedKeyCanReturn) {
  SpaceSaving sketch(2);
  sketch.Add(1);
  sketch.Add(1);
  sketch.Add(2);
  sketch.Add(3);  // evicts 2 (min)
  EXPECT_FALSE(sketch.Tracks(2));
  sketch.Add(2);  // 2 returns, evicting the min
  EXPECT_TRUE(sketch.Tracks(2));
}

TEST(SpaceSavingTest, IndexRebuildKeepsConsistency) {
  // Push far more distinct keys than capacity to force tombstone rebuilds.
  SpaceSaving sketch(4);
  for (uint64_t k = 0; k < 10000; ++k) sketch.Add(k);
  EXPECT_EQ(sketch.size(), 4u);
  // The most recent keys are tracked with inherited counts.
  auto top = sketch.TopEntries();
  ASSERT_EQ(top.size(), 4u);
  for (const auto& e : top) {
    EXPECT_TRUE(sketch.Tracks(e.key));
    EXPECT_EQ(sketch.Estimate(e.key), e.count);
  }
}

TEST(SpaceSavingTest, SingleSlotCapacity) {
  // capacity == 1: every miss evicts the lone counter; sift on a one-element
  // heap must be a no-op, and the bound count-error <= true <= count holds.
  SpaceSaving sketch(1);
  for (int i = 0; i < 5; ++i) sketch.Add(7);
  EXPECT_EQ(sketch.Estimate(7), 5u);
  sketch.Add(9);  // evicts 7, inherits 5+1 with error 5
  EXPECT_FALSE(sketch.Tracks(7));
  ASSERT_TRUE(sketch.Tracks(9));
  EXPECT_EQ(sketch.Estimate(9), 6u);
  auto top = sketch.TopEntries();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].error, 5u);
  EXPECT_LE(top[0].count - top[0].error, 1u);  // true count of 9 is 1
  for (uint64_t k = 100; k < 200; ++k) sketch.Add(k);
  EXPECT_EQ(sketch.size(), 1u);
  EXPECT_EQ(sketch.total(), 106u);
}

TEST(SpaceSavingTest, ReinsertAfterEvictionReclaimsIndexSlot) {
  // A key evicted and re-added must land back in the index without leaving a
  // shadowed dead mapping; the index must stay O(capacity) under pure churn.
  SpaceSaving sketch(2);
  sketch.Add(1);
  sketch.Add(1);
  sketch.Add(2);
  sketch.Add(3);  // evicts 2
  sketch.Add(2);  // 2 returns, evicting 3
  ASSERT_TRUE(sketch.Tracks(2));
  EXPECT_FALSE(sketch.Tracks(3));
  // Estimate must reflect the *current* counter, not a stale slot.
  EXPECT_EQ(sketch.Estimate(2), 3u);  // inherited 2 (from 3's counter) + 1
  // Hammer the eviction path; index capacity must stay bounded.
  for (uint64_t k = 10; k < 100010; ++k) sketch.Add(k);
  EXPECT_EQ(sketch.size(), 2u);
  EXPECT_LT(sketch.capacity_bytes(), 4096u)
      << "index grew under churn — tombstones unaccounted";
}

TEST(SpaceSavingTest, DifferentialBoundVsExactCounterOnZipf) {
  // Classical Space-Saving guarantee, checked key-by-key against an exact
  // counter across several seeds and skews: for every tracked key,
  // count - error <= true <= count, and error <= min over-estimate budget.
  const struct { uint64_t seed; double z; } cases[] = {
      {11, 0.8}, {29, 1.0}, {47, 1.4}};
  for (const auto& c : cases) {
    SpaceSaving sketch(128);
    Rng rng(c.seed);
    ZipfSampler zipf(20000, c.z);
    std::map<KeyId, uint64_t> truth;
    for (int i = 0; i < 100000; ++i) {
      KeyId k = zipf.Sample(rng);
      ++truth[k];
      sketch.Add(k);
    }
    for (const auto& e : sketch.TopEntries()) {
      const uint64_t true_count = truth[e.key];
      EXPECT_LE(true_count, e.count) << "z=" << c.z << " key " << e.key;
      EXPECT_GE(true_count, e.count - e.error)
          << "z=" << c.z << " key " << e.key;
    }
    // Aggregate error budget: any key's over-estimate is at most N/capacity.
    for (const auto& e : sketch.TopEntries()) {
      EXPECT_LE(e.error, sketch.total() / sketch.capacity())
          << "z=" << c.z << " key " << e.key;
    }
  }
}

TEST(SpaceSavingTest, WeightedAddMatchesRepeatedAdd) {
  SpaceSaving a(8), b(8);
  for (int i = 0; i < 7; ++i) a.Add(5);
  b.Add(5, 7);
  EXPECT_EQ(a.Estimate(5), b.Estimate(5));
  EXPECT_EQ(a.total(), b.total());
}

TEST(SpaceSavingTest, MergeDisjointShardsMatchesSingleSketch) {
  // Hash-sharded ingest: each shard's sketch sees a disjoint key set. The
  // merged sketch must agree with one sketch over the union stream.
  SpaceSaving merged(64), shard0(64), shard1(64), single(64);
  Rng rng(17);
  ZipfSampler zipf(5000, 1.1);
  for (int i = 0; i < 60000; ++i) {
    KeyId k = zipf.Sample(rng);
    single.Add(k);
    (k % 2 == 0 ? shard0 : shard1).Add(k);
  }
  merged.Merge(shard0);
  merged.Merge(shard1);
  EXPECT_EQ(merged.total(), single.total());
  // Survivor set may differ near the tail, but every entry the merged sketch
  // keeps must satisfy the classical bound vs the per-shard truth, and the
  // clear heavy hitters must coincide.
  auto merged_top = merged.TopEntries();
  auto single_top = single.TopEntries();
  ASSERT_FALSE(merged_top.empty());
  const size_t head = std::min<size_t>(8, merged_top.size());
  for (size_t i = 0; i < head; ++i) {
    EXPECT_EQ(merged_top[i].key, single_top[i].key) << "rank " << i;
  }
}

TEST(SpaceSavingTest, MergeOverCapacityKeepsLargest) {
  SpaceSaving a(4), b(4);
  for (uint64_t k = 0; k < 4; ++k) a.Add(k, 10 + k);       // counts 10..13
  for (uint64_t k = 10; k < 14; ++k) b.Add(k, 100 + k);    // counts 110..113
  a.Merge(b);
  EXPECT_EQ(a.size(), 4u);
  for (uint64_t k = 10; k < 14; ++k) {
    EXPECT_TRUE(a.Tracks(k)) << k;
    EXPECT_EQ(a.Estimate(k), 100 + k);
  }
  for (uint64_t k = 0; k < 4; ++k) EXPECT_FALSE(a.Tracks(k)) << k;
  EXPECT_EQ(a.total(), 10u + 11 + 12 + 13 + 110 + 111 + 112 + 113);
  // Post-merge the structure must still be a working sketch.
  a.Add(10);
  EXPECT_EQ(a.Estimate(10), 111u);
  a.Add(999);  // evicts min (110's counter holder, key 10 got +1)
  EXPECT_EQ(a.size(), 4u);
}

TEST(SpaceSavingTest, MergeSharedKeysSumCounts) {
  SpaceSaving a(8), b(8);
  a.Add(1, 5);
  a.Add(2, 3);
  b.Add(1, 7);
  b.Add(3, 2);
  a.Merge(b);
  EXPECT_EQ(a.Estimate(1), 12u);
  EXPECT_EQ(a.Estimate(2), 3u);
  EXPECT_EQ(a.Estimate(3), 2u);
  EXPECT_EQ(a.total(), 17u);
}

TEST(SpaceSavingTest, MinCountTracksHeapRoot) {
  SpaceSaving sketch(2);
  EXPECT_EQ(sketch.MinCount(), 0u);
  sketch.Add(1, 5);
  sketch.Add(2, 3);
  EXPECT_EQ(sketch.MinCount(), 3u);
  sketch.Add(3);  // evicts 2 (count 3), newcomer count 4
  EXPECT_EQ(sketch.MinCount(), 4u);
}

TEST(SpaceSavingTest, ClearResets) {
  SpaceSaving sketch(4);
  sketch.Add(1);
  sketch.Clear();
  EXPECT_EQ(sketch.size(), 0u);
  EXPECT_EQ(sketch.total(), 0u);
  sketch.Add(2);
  EXPECT_EQ(sketch.Estimate(2), 1u);
}

}  // namespace
}  // namespace prompt
