#include "stats/space_saving.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace prompt {
namespace {

TEST(SpaceSavingTest, ExactWhenUnderCapacity) {
  SpaceSaving sketch(16);
  for (int i = 0; i < 10; ++i) {
    for (uint64_t k = 0; k <= static_cast<uint64_t>(i); ++k) sketch.Add(k);
  }
  // Key k was added (10 - k) times.
  for (uint64_t k = 0; k < 10; ++k) {
    EXPECT_EQ(sketch.Estimate(k), 10 - k);
  }
  EXPECT_EQ(sketch.size(), 10u);
}

TEST(SpaceSavingTest, EstimateZeroForUnknownKey) {
  SpaceSaving sketch(4);
  sketch.Add(1);
  EXPECT_EQ(sketch.Estimate(99), 0u);
  EXPECT_FALSE(sketch.Tracks(99));
}

TEST(SpaceSavingTest, CapacityIsRespected) {
  SpaceSaving sketch(8);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) sketch.Add(rng.NextBounded(1000));
  EXPECT_EQ(sketch.size(), 8u);
  EXPECT_EQ(sketch.total(), 10000u);
}

TEST(SpaceSavingTest, NeverUnderestimates) {
  // Space-Saving guarantees estimate >= true count for tracked keys.
  SpaceSaving sketch(32);
  Rng rng(7);
  ZipfSampler zipf(500, 1.2);
  std::map<KeyId, uint64_t> truth;
  for (int i = 0; i < 50000; ++i) {
    KeyId k = zipf.Sample(rng);
    ++truth[k];
    sketch.Add(k);
  }
  for (const auto& e : sketch.TopEntries()) {
    EXPECT_GE(e.count, truth[e.key]) << "key " << e.key;
    EXPECT_LE(e.count - e.error, truth[e.key] + 0u) << "lower bound invalid";
  }
}

TEST(SpaceSavingTest, FindsTrueHeavyHittersUnderSkew) {
  SpaceSaving sketch(64);
  Rng rng(3);
  ZipfSampler zipf(100000, 1.3);
  std::map<KeyId, uint64_t> truth;
  for (int i = 0; i < 200000; ++i) {
    KeyId k = zipf.Sample(rng);
    ++truth[k];
    sketch.Add(k);
  }
  // Every key above 2% of the stream must be reported as a heavy hitter.
  auto hitters = sketch.HeavyHitters(0.02);
  std::map<KeyId, bool> reported;
  for (const auto& e : hitters) reported[e.key] = true;
  for (const auto& [k, c] : truth) {
    if (c > 0.02 * 200000 * 1.2) {
      EXPECT_TRUE(reported[k]) << "missed heavy hitter " << k;
    }
  }
}

TEST(SpaceSavingTest, TopEntriesSortedDescending) {
  SpaceSaving sketch(16);
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) sketch.Add(rng.NextBounded(10));
  auto top = sketch.TopEntries();
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].count, top[i].count);
  }
}

TEST(SpaceSavingTest, EvictedKeyCanReturn) {
  SpaceSaving sketch(2);
  sketch.Add(1);
  sketch.Add(1);
  sketch.Add(2);
  sketch.Add(3);  // evicts 2 (min)
  EXPECT_FALSE(sketch.Tracks(2));
  sketch.Add(2);  // 2 returns, evicting the min
  EXPECT_TRUE(sketch.Tracks(2));
}

TEST(SpaceSavingTest, IndexRebuildKeepsConsistency) {
  // Push far more distinct keys than capacity to force tombstone rebuilds.
  SpaceSaving sketch(4);
  for (uint64_t k = 0; k < 10000; ++k) sketch.Add(k);
  EXPECT_EQ(sketch.size(), 4u);
  // The most recent keys are tracked with inherited counts.
  auto top = sketch.TopEntries();
  ASSERT_EQ(top.size(), 4u);
  for (const auto& e : top) {
    EXPECT_TRUE(sketch.Tracks(e.key));
    EXPECT_EQ(sketch.Estimate(e.key), e.count);
  }
}

TEST(SpaceSavingTest, ClearResets) {
  SpaceSaving sketch(4);
  sketch.Add(1);
  sketch.Clear();
  EXPECT_EQ(sketch.size(), 0u);
  EXPECT_EQ(sketch.total(), 0u);
  sketch.Add(2);
  EXPECT_EQ(sketch.Estimate(2), 1u);
}

}  // namespace
}  // namespace prompt
