#include "stats/count_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "common/random.h"

namespace prompt {
namespace {

TEST(CountTreeTest, EmptyTree) {
  CountTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Validate(), 0);
  EXPECT_TRUE(tree.ToDescending().empty());
}

TEST(CountTreeTest, SingleInsert) {
  CountTree tree;
  tree.Insert(42, 7);
  EXPECT_EQ(tree.size(), 1u);
  auto entries = tree.ToDescending();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].key, 42u);
  EXPECT_EQ(entries[0].count, 7u);
}

TEST(CountTreeTest, DescendingOrderByCountThenKey) {
  CountTree tree;
  tree.Insert(1, 10);
  tree.Insert(2, 30);
  tree.Insert(3, 20);
  tree.Insert(4, 30);
  auto entries = tree.ToDescending();
  ASSERT_EQ(entries.size(), 4u);
  // (30,4) > (30,2)? Descending by (count, key): key 4 before key 2.
  EXPECT_EQ(entries[0].count, 30u);
  EXPECT_EQ(entries[0].key, 4u);
  EXPECT_EQ(entries[1].count, 30u);
  EXPECT_EQ(entries[1].key, 2u);
  EXPECT_EQ(entries[2].count, 20u);
  EXPECT_EQ(entries[3].count, 10u);
}

TEST(CountTreeTest, AscendingIsReverseOfDescending) {
  CountTree tree;
  for (uint64_t k = 0; k < 50; ++k) tree.Insert(k, k * 3 % 17);
  std::vector<CountTree::Entry> asc;
  tree.ForEachAscending(
      [&asc](KeyId k, uint64_t c) { asc.push_back({k, c}); });
  auto desc = tree.ToDescending();
  ASSERT_EQ(asc.size(), desc.size());
  std::reverse(asc.begin(), asc.end());
  for (size_t i = 0; i < asc.size(); ++i) {
    EXPECT_EQ(asc[i].key, desc[i].key);
    EXPECT_EQ(asc[i].count, desc[i].count);
  }
}

TEST(CountTreeTest, EraseRemovesExactEntry) {
  CountTree tree;
  tree.Insert(1, 5);
  tree.Insert(2, 5);
  EXPECT_FALSE(tree.Erase(1, 4));  // wrong count
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_TRUE(tree.Erase(1, 5));
  EXPECT_EQ(tree.size(), 1u);
  auto entries = tree.ToDescending();
  EXPECT_EQ(entries[0].key, 2u);
}

TEST(CountTreeTest, UpdateRepositionsNode) {
  CountTree tree;
  tree.Insert(1, 1);
  tree.Insert(2, 10);
  EXPECT_TRUE(tree.Update(1, 1, 20));
  auto entries = tree.ToDescending();
  EXPECT_EQ(entries[0].key, 1u);
  EXPECT_EQ(entries[0].count, 20u);
  EXPECT_FALSE(tree.Update(1, 1, 30));  // stale old count
}

TEST(CountTreeTest, ClearResets) {
  CountTree tree;
  for (uint64_t k = 0; k < 100; ++k) tree.Insert(k, k);
  tree.Clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Validate(), 0);
  tree.Insert(5, 5);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(CountTreeTest, SequentialInsertStaysBalanced) {
  CountTree tree;
  for (uint64_t k = 0; k < 4096; ++k) tree.Insert(k, k);  // sorted order
  int height = tree.Validate();
  ASSERT_GT(height, 0);
  // AVL height bound: 1.44 * log2(n+2).
  EXPECT_LE(height, 19);
}

// Property sweep over workload shapes: random interleavings of insert /
// update / erase must preserve AVL invariants and match a reference
// std::multimap ordering.
class CountTreeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CountTreeFuzzTest, MatchesReferenceUnderRandomOps) {
  Rng rng(GetParam());
  CountTree tree;
  std::map<KeyId, uint64_t> counts;  // key -> current count
  for (int op = 0; op < 20000; ++op) {
    uint64_t key = rng.NextBounded(500);
    auto it = counts.find(key);
    if (it == counts.end()) {
      uint64_t c = 1 + rng.NextBounded(100);
      tree.Insert(key, c);
      counts[key] = c;
    } else if (rng.NextBool(0.8)) {
      uint64_t nc = it->second + 1 + rng.NextBounded(50);
      ASSERT_TRUE(tree.Update(key, it->second, nc));
      it->second = nc;
    } else {
      ASSERT_TRUE(tree.Erase(key, it->second));
      counts.erase(it);
    }
    if (op % 2000 == 0) {
      ASSERT_GE(tree.Validate(), 0) << "AVL invariant broken at op " << op;
    }
  }
  ASSERT_GE(tree.Validate(), 0);
  ASSERT_EQ(tree.size(), counts.size());

  // Final traversal must be exactly the reference sorted by (count, key) desc.
  std::vector<std::pair<uint64_t, KeyId>> expected;
  for (const auto& [k, c] : counts) expected.emplace_back(c, k);
  std::sort(expected.rbegin(), expected.rend());
  auto entries = tree.ToDescending();
  ASSERT_EQ(entries.size(), expected.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].count, expected[i].first);
    EXPECT_EQ(entries[i].key, expected[i].second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountTreeFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(CountTreeTest, NodePoolReuseAfterErase) {
  CountTree tree;
  for (int round = 0; round < 10; ++round) {
    for (uint64_t k = 0; k < 100; ++k) tree.Insert(k, k + 1);
    for (uint64_t k = 0; k < 100; ++k) ASSERT_TRUE(tree.Erase(k, k + 1));
    EXPECT_TRUE(tree.empty());
  }
  EXPECT_GE(tree.Validate(), 0);
}

}  // namespace
}  // namespace prompt
