#include "stats/metrics.h"

#include <gtest/gtest.h>

namespace prompt {
namespace {

// Builds a block with `counts[i]` tuples of key base+i.
DataBlock MakeBlock(uint32_t id, KeyId base,
                    const std::vector<uint64_t>& counts) {
  DataBlock b(id);
  for (size_t i = 0; i < counts.size(); ++i) {
    for (uint64_t n = 0; n < counts[i]; ++n) {
      b.Append(Tuple{0, base + i, 1.0});
    }
  }
  b.Finalize();
  return b;
}

PartitionedBatch MakeBatch(std::vector<DataBlock> blocks) {
  PartitionedBatch batch;
  for (auto& b : blocks) {
    batch.num_tuples += b.size();
    batch.blocks.push_back(std::move(b));
  }
  batch.num_keys = 0;  // recomputed by metrics
  batch.ComputeSplitFlags();
  return batch;
}

TEST(MetricsTest, PerfectlyBalancedBatchHasZeroImbalance) {
  auto batch = MakeBatch({MakeBlock(0, 0, {5, 5}), MakeBlock(1, 10, {5, 5})});
  auto m = ComputeBlockMetrics(batch);
  EXPECT_DOUBLE_EQ(m.bsi, 0.0);
  EXPECT_DOUBLE_EQ(m.bci, 0.0);
  EXPECT_DOUBLE_EQ(m.ksr, 1.0);
  EXPECT_DOUBLE_EQ(m.mpi, 0.0);
}

TEST(MetricsTest, BsiIsMaxMinusAverage) {
  // Sizes 30 and 10: max 30, avg 20 -> BSI 10 (Eqn. 2).
  auto batch = MakeBatch({MakeBlock(0, 0, {30}), MakeBlock(1, 1, {10})});
  auto m = ComputeBlockMetrics(batch);
  EXPECT_DOUBLE_EQ(m.bsi, 10.0);
  EXPECT_EQ(m.max_block_size, 30u);
  EXPECT_DOUBLE_EQ(m.avg_block_size, 20.0);
}

TEST(MetricsTest, BciIsCardinalityMaxMinusAverage) {
  // Cardinalities 4 and 2: max 4, avg 3 -> BCI 1 (Eqn. 4).
  auto batch = MakeBatch(
      {MakeBlock(0, 0, {1, 1, 1, 1}), MakeBlock(1, 10, {2, 2})});
  auto m = ComputeBlockMetrics(batch);
  EXPECT_DOUBLE_EQ(m.bci, 1.0);
}

TEST(MetricsTest, KsrCountsFragmentsPerKey) {
  // Key 0 appears in both blocks (2 fragments), key 1 and 2 once each.
  // KSR = 4 fragments / 3 keys (Eqn. 5).
  auto batch = MakeBatch({MakeBlock(0, 0, {3, 2}),      // keys 0,1
                          MakeBlock(1, 0, {3}),         // key 0 again
                          MakeBlock(2, 2, {4})});       // key 2
  auto m = ComputeBlockMetrics(batch);
  EXPECT_EQ(m.total_fragments, 4u);
  EXPECT_EQ(m.distinct_keys, 3u);
  EXPECT_DOUBLE_EQ(m.ksr, 4.0 / 3.0);
  EXPECT_EQ(m.split_keys, 1u);
}

TEST(MetricsTest, SplitFlagsMarkMultiBlockKeys) {
  auto batch = MakeBatch({MakeBlock(0, 0, {3, 2}), MakeBlock(1, 0, {3})});
  int split_fragments = 0;
  for (const auto& block : batch.blocks) {
    for (const auto& f : block.fragments()) {
      if (f.split) {
        ++split_fragments;
        EXPECT_EQ(f.key, 0u);
      }
    }
  }
  EXPECT_EQ(split_fragments, 2);  // key 0's fragment in each block
}

TEST(MetricsTest, MpiWeightsShiftEmphasis) {
  // Imbalanced sizes, no splitting.
  auto batch = MakeBatch({MakeBlock(0, 0, {40}), MakeBlock(1, 1, {10})});
  MpiWeights size_only{1.0, 0.0, 0.0};
  MpiWeights locality_only{0.0, 0.0, 1.0};
  auto m_size = ComputeBlockMetrics(batch, size_only);
  auto m_loc = ComputeBlockMetrics(batch, locality_only);
  EXPECT_GT(m_size.mpi, 0.0);          // size imbalance dominates
  EXPECT_DOUBLE_EQ(m_loc.mpi, 0.0);    // KSR == 1, so locality-only MPI == 0
}

TEST(MetricsTest, EmptyBatch) {
  PartitionedBatch batch;
  auto m = ComputeBlockMetrics(batch);
  EXPECT_DOUBLE_EQ(m.bsi, 0.0);
  EXPECT_DOUBLE_EQ(m.ksr, 1.0);
}

TEST(MetricsTest, BucketImbalance) {
  std::vector<uint64_t> buckets = {10, 20, 30};
  EXPECT_DOUBLE_EQ(BucketSizeImbalance(buckets), 30.0 - 20.0);
  std::vector<uint64_t> even = {10, 10, 10};
  EXPECT_DOUBLE_EQ(BucketSizeImbalance(even), 0.0);
  EXPECT_DOUBLE_EQ(BucketSizeImbalance({}), 0.0);
}

TEST(MetricsTest, ShardIngestAggregates) {
  IngestMetrics m;
  EXPECT_DOUBLE_EQ(ShardLoadImbalance(m), 1.0);  // degenerate: no shards
  EXPECT_DOUBLE_EQ(MaxRingOccupancyFrac(m), 0.0);
  EXPECT_DOUBLE_EQ(m.TuplesPerSec(), 0.0);

  ShardIngestStats a;
  a.tuples = 300;
  a.ring_high_water = 32;
  a.ring_capacity = 128;
  ShardIngestStats b;
  b.tuples = 100;
  b.ring_high_water = 64;
  b.ring_capacity = 128;
  m.shards = {a, b};
  m.total_tuples = 400;
  m.ingest_wall = 2000000;  // 2 s
  // max shard tuples / mean shard tuples = 300 / 200.
  EXPECT_DOUBLE_EQ(ShardLoadImbalance(m), 1.5);
  EXPECT_DOUBLE_EQ(MaxRingOccupancyFrac(m), 0.5);
  EXPECT_DOUBLE_EQ(m.TuplesPerSec(), 200.0);
}

TEST(MetricsTest, SpreadStatistics) {
  std::vector<uint64_t> sizes = {2, 4, 6, 8};
  auto s = ComputeSpread(sizes);
  EXPECT_EQ(s.max, 8u);
  EXPECT_EQ(s.min, 2u);
  EXPECT_DOUBLE_EQ(s.avg, 5.0);
  EXPECT_NEAR(s.stddev, 2.2360679, 1e-6);
}

}  // namespace
}  // namespace prompt
