#include "stats/count_min.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace prompt {
namespace {

TEST(CountMinTest, ExactForSparseKeys) {
  CountMin cms(1024, 4);
  cms.Add(1, 5);
  cms.Add(2, 3);
  cms.Add(3);
  EXPECT_EQ(cms.Estimate(1), 5u);
  EXPECT_EQ(cms.Estimate(2), 3u);
  EXPECT_EQ(cms.Estimate(3), 1u);
  EXPECT_EQ(cms.total(), 9u);
}

TEST(CountMinTest, NeverUnderestimates) {
  CountMin cms(256, 4);
  Rng rng(21);
  ZipfSampler zipf(5000, 1.1);
  std::map<KeyId, uint64_t> truth;
  for (int i = 0; i < 50000; ++i) {
    KeyId k = zipf.Sample(rng);
    ++truth[k];
    cms.Add(k);
  }
  for (const auto& [k, c] : truth) {
    EXPECT_GE(cms.Estimate(k), c) << "key " << k;
  }
}

TEST(CountMinTest, ErrorBoundedByWidth) {
  // Classical bound: excess < 2N/w with prob 1-(1/2)^d. With d=4 rows a
  // handful of the 5000 keys may exceed it; allow a small failure budget.
  CountMin cms(512, 4);
  Rng rng(33);
  ZipfSampler zipf(5000, 1.0);
  std::map<KeyId, uint64_t> truth;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    KeyId k = zipf.Sample(rng);
    ++truth[k];
    cms.Add(k);
  }
  const uint64_t budget = 2ull * n / cms.width();
  size_t violations = 0;
  for (const auto& [k, c] : truth) {
    if (cms.Estimate(k) - c > budget) ++violations;
  }
  EXPECT_LT(violations, truth.size() / 16) << "error bound broken too often";
}

TEST(CountMinTest, MergeMatchesCombinedStream) {
  CountMin a(256, 4), b(256, 4), combined(256, 4);
  Rng rng(55);
  for (int i = 0; i < 20000; ++i) {
    KeyId k = rng.NextBounded(1000);
    (i % 2 == 0 ? a : b).Add(k);
    combined.Add(k);
  }
  a.Merge(b);
  EXPECT_EQ(a.total(), combined.total());
  for (KeyId k = 0; k < 1000; ++k) {
    EXPECT_EQ(a.Estimate(k), combined.Estimate(k)) << "key " << k;
  }
}

TEST(CountMinTest, WidthRoundsToPowerOfTwo) {
  CountMin cms(100, 2);
  EXPECT_EQ(cms.width(), 128u);
  EXPECT_EQ(cms.depth(), 2u);
  EXPECT_EQ(cms.capacity_bytes(), 128u * 2 * sizeof(uint64_t));
}

TEST(CountMinTest, ClearResets) {
  CountMin cms(64, 2);
  cms.Add(9, 42);
  cms.Clear();
  EXPECT_EQ(cms.Estimate(9), 0u);
  EXPECT_EQ(cms.total(), 0u);
  cms.Add(9);
  EXPECT_EQ(cms.Estimate(9), 1u);
}

}  // namespace
}  // namespace prompt
