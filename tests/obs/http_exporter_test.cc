#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace prompt {
namespace {

/// Minimal blocking HTTP GET against 127.0.0.1:port; returns the raw
/// response (status line + headers + body), or "" on connect failure.
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(PrometheusExpositionTest, CountersAndGauges) {
  MetricsRegistry registry;
  registry.GetCounter("prompt_batches_total")->Increment(12);
  registry.GetGauge("prompt_batch_w")->Set(0.75);
  const std::string text = PrometheusExposition(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE prompt_batches_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("prompt_batches_total 12\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE prompt_batch_w gauge\n"), std::string::npos);
  EXPECT_NE(text.find("prompt_batch_w 0.75\n"), std::string::npos);
}

TEST(PrometheusExpositionTest, LabelsAreQuotedAndTypeLinesDeduped) {
  MetricsRegistry registry;
  registry.GetCounter("tuples_total", {{"shard", "0"}})->Increment(3);
  registry.GetCounter("tuples_total", {{"shard", "1"}})->Increment(4);
  const std::string text = PrometheusExposition(registry.Snapshot());
  EXPECT_NE(text.find("tuples_total{shard=\"0\"} 3\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("tuples_total{shard=\"1\"} 4\n"), std::string::npos);
  // One TYPE line for the family despite two labeled series.
  const size_t first = text.find("# TYPE tuples_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE tuples_total counter", first + 1),
            std::string::npos);
}

TEST(PrometheusExpositionTest, HistogramsExportAsSummaries) {
  MetricsRegistry registry;
  HistogramMetric* hist = registry.GetHistogram("latency_us");
  for (int i = 0; i < 10; ++i) hist->Observe(100.0);
  const std::string text = PrometheusExposition(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE latency_us summary\n"), std::string::npos);
  EXPECT_NE(text.find("latency_us{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("latency_us{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("latency_us_sum 1000\n"), std::string::npos) << text;
  EXPECT_NE(text.find("latency_us_count 10\n"), std::string::npos);
}

TEST(HttpExporterTest, ServesAllThreeEndpoints) {
  MetricsRegistry registry;
  registry.GetCounter("prompt_batches_total")->Increment(5);
  TimeSeriesStore timeseries;
  TimeSeriesPoint p;
  p.batch_id = 0;
  p.set(TimeSeriesSignal::kLatencyUs, 1234.0);
  timeseries.Push(p);

  HttpExporter exporter(&registry, &timeseries);
  ASSERT_TRUE(exporter.Start(0).ok());  // ephemeral port
  ASSERT_NE(exporter.port(), 0);
  EXPECT_TRUE(exporter.serving());

  const std::string health = HttpGet(exporter.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string metrics = HttpGet(exporter.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("prompt_batches_total 5"), std::string::npos)
      << metrics;

  const std::string ts = HttpGet(exporter.port(), "/timeseries.json");
  EXPECT_NE(ts.find("200 OK"), std::string::npos);
  EXPECT_NE(ts.find("application/json"), std::string::npos);
  EXPECT_NE(ts.find("\"batch_id\":0"), std::string::npos) << ts;
  EXPECT_NE(ts.find("\"latency_us\":1234"), std::string::npos);

  const std::string missing = HttpGet(exporter.port(), "/nope");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos);

  EXPECT_GE(exporter.requests_served(), 4u);
  exporter.Stop();
  EXPECT_FALSE(exporter.serving());
}

TEST(HttpExporterTest, NullSourcesAnswer404ButHealthzWorks) {
  HttpExporter exporter(nullptr, nullptr);
  ASSERT_TRUE(exporter.Start(0).ok());
  EXPECT_NE(HttpGet(exporter.port(), "/healthz").find("200 OK"),
            std::string::npos);
  EXPECT_NE(HttpGet(exporter.port(), "/metrics").find("404"),
            std::string::npos);
  EXPECT_NE(HttpGet(exporter.port(), "/timeseries.json").find("404"),
            std::string::npos);
}

TEST(HttpExporterTest, StartTwiceFailsAndStopIsIdempotent) {
  MetricsRegistry registry;
  HttpExporter exporter(&registry, nullptr);
  ASSERT_TRUE(exporter.Start(0).ok());
  EXPECT_FALSE(exporter.Start(0).ok());
  exporter.Stop();
  exporter.Stop();  // second stop is a no-op
}

TEST(HttpExporterTest, RenderPathWithoutSocket) {
  MetricsRegistry registry;
  registry.GetGauge("g")->Set(2.5);
  TimeSeriesStore timeseries;
  HttpExporter exporter(&registry, &timeseries);  // never started

  std::string body, type;
  ASSERT_TRUE(exporter.RenderPath("/metrics", &body, &type));
  EXPECT_NE(body.find("g 2.5"), std::string::npos);
  ASSERT_TRUE(exporter.RenderPath("/timeseries.json", &body, &type));
  EXPECT_EQ(type, "application/json");
  EXPECT_FALSE(exporter.RenderPath("/other", &body, &type));
}

TEST(HttpExporterTest, PerTenantStoresServeByQueryParameter) {
  MetricsRegistry registry;
  TimeSeriesStore default_store;
  TimeSeriesStore calm_store;
  TimeSeriesStore noisy_store;
  TimeSeriesPoint p;
  p.batch_id = 1;
  p.set(TimeSeriesSignal::kLatencyUs, 111.0);
  calm_store.Push(p);
  p.batch_id = 2;
  p.set(TimeSeriesSignal::kLatencyUs, 222.0);
  noisy_store.Push(p);

  HttpExporter exporter(&registry, &default_store);
  exporter.AddTimeSeries("calm", &calm_store);
  exporter.AddTimeSeries("noisy", &noisy_store);

  std::string body, type;
  // The no-arg form keeps serving the default store (backward compatible).
  ASSERT_TRUE(exporter.RenderPath("/timeseries.json", &body, &type));
  EXPECT_EQ(body.find("\"batch_id\":1"), std::string::npos) << body;

  ASSERT_TRUE(exporter.RenderPath("/timeseries.json?tenant=calm", &body, &type));
  EXPECT_EQ(type, "application/json");
  EXPECT_NE(body.find("\"batch_id\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"latency_us\":111"), std::string::npos);

  ASSERT_TRUE(
      exporter.RenderPath("/timeseries.json?tenant=noisy", &body, &type));
  EXPECT_NE(body.find("\"latency_us\":222"), std::string::npos) << body;

  // Unknown tenant -> 404, not the default store.
  EXPECT_FALSE(
      exporter.RenderPath("/timeseries.json?tenant=ghost", &body, &type));

  // The tenant index lists every registered store.
  ASSERT_TRUE(exporter.RenderPath("/tenants.json", &body, &type));
  EXPECT_EQ(type, "application/json");
  EXPECT_NE(body.find("\"calm\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"noisy\""), std::string::npos);

  // Re-registering a name replaces the store rather than duplicating it.
  TimeSeriesStore replacement;
  p.batch_id = 9;
  p.set(TimeSeriesSignal::kLatencyUs, 999.0);
  replacement.Push(p);
  exporter.AddTimeSeries("calm", &replacement);
  ASSERT_TRUE(exporter.RenderPath("/timeseries.json?tenant=calm", &body, &type));
  EXPECT_NE(body.find("\"batch_id\":9"), std::string::npos) << body;
}

TEST(HttpExporterTest, TenantQueryWorksOverTheSocket) {
  MetricsRegistry registry;
  TimeSeriesStore store;
  TimeSeriesPoint p;
  p.batch_id = 7;
  p.set(TimeSeriesSignal::kLatencyUs, 777.0);
  store.Push(p);

  HttpExporter exporter(&registry, nullptr);
  exporter.AddTimeSeries("calm", &store);
  ASSERT_TRUE(exporter.Start(0).ok());

  const std::string ok =
      HttpGet(exporter.port(), "/timeseries.json?tenant=calm");
  EXPECT_NE(ok.find("200 OK"), std::string::npos) << ok;
  EXPECT_NE(ok.find("\"batch_id\":7"), std::string::npos);

  const std::string missing =
      HttpGet(exporter.port(), "/timeseries.json?tenant=ghost");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos) << missing;

  const std::string index = HttpGet(exporter.port(), "/tenants.json");
  EXPECT_NE(index.find("\"calm\""), std::string::npos) << index;
}

TEST(HttpExporterTest, HealthzReportsEngineHealthAsJson) {
  HttpExporter exporter(nullptr, nullptr);
  ASSERT_TRUE(exporter.Start(0).ok());

  // Before any engine publishes, /healthz serves the healthy defaults.
  std::string health = HttpGet(exporter.port(), "/healthz");
  EXPECT_NE(health.find("application/json"), std::string::npos) << health;
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"data_loss\":false"), std::string::npos);
  EXPECT_NE(health.find("\"init_status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"last_batch_id\":-1"), std::string::npos);
  EXPECT_NE(health.find("\"journal_lag_bytes\":0"), std::string::npos);

  // The engine's per-batch publish lands verbatim.
  HealthStatus status;
  status.data_loss = false;
  status.init_status = "ok";
  status.last_batch_id = 41;
  status.journal_lag_bytes = 1234;
  exporter.UpdateHealth(status);
  health = HttpGet(exporter.port(), "/healthz");
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"last_batch_id\":41"), std::string::npos);
  EXPECT_NE(health.find("\"journal_lag_bytes\":1234"), std::string::npos);

  // Data loss flips the top-level verdict to degraded.
  status.data_loss = true;
  exporter.UpdateHealth(status);
  health = HttpGet(exporter.port(), "/healthz");
  EXPECT_NE(health.find("\"status\":\"degraded\""), std::string::npos)
      << health;
  EXPECT_NE(health.find("\"data_loss\":true"), std::string::npos);

  // So does a failed engine init, and the status string passes through
  // JSON-quoted.
  status.data_loss = false;
  status.init_status = "IOError: store segment unreadable";
  exporter.UpdateHealth(status);
  health = HttpGet(exporter.port(), "/healthz");
  EXPECT_NE(health.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(health.find("store segment unreadable"), std::string::npos);
}

TEST(HttpExporterTest, BindFailureReturnsIOError) {
  MetricsRegistry registry;
  HttpExporter first(&registry, nullptr);
  ASSERT_TRUE(first.Start(0).ok());
  HttpExporter second(&registry, nullptr);
  const Status st = second.Start(first.port());
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
}

}  // namespace
}  // namespace prompt
