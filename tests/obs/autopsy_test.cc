#include "obs/autopsy.h"

#include <gtest/gtest.h>

#include <sstream>

namespace prompt {
namespace {

const RecordField* FindField(const Record& r, std::string_view name) {
  for (const RecordField& f : r.fields()) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

BatchReport HealthyReport() {
  BatchReport r;
  r.batch_id = 3;
  r.batch_interval = 1000000;  // 1s
  r.latency = 1050000;
  return r;
}

TEST(AutopsyTest, HealthyBatchIsNone) {
  const BatchAutopsy a = ExplainBatch(HealthyReport());
  EXPECT_EQ(a.dominant, BatchCause::kNone);
  EXPECT_EQ(a.total_excess, 0);
  // Default noise floor: 1% of a 1s interval.
  EXPECT_EQ(a.threshold, 10000);
}

TEST(AutopsyTest, QueueDelayDominates) {
  BatchReport r = HealthyReport();
  r.queue_delay = 400000;
  const BatchAutopsy a = ExplainBatch(r);
  EXPECT_EQ(a.dominant, BatchCause::kQueueing);
  EXPECT_EQ(a.excess_of(BatchCause::kQueueing), 400000);
}

TEST(AutopsyTest, RecoveryDominates) {
  BatchReport r = HealthyReport();
  r.recovery_time = 250000;
  r.queue_delay = 20000;
  const BatchAutopsy a = ExplainBatch(r);
  EXPECT_EQ(a.dominant, BatchCause::kRecovery);
}

TEST(AutopsyTest, SplitKeyOverflowDominates) {
  BatchReport r = HealthyReport();
  r.partition_overflow = 90000;
  const BatchAutopsy a = ExplainBatch(r);
  EXPECT_EQ(a.dominant, BatchCause::kSplitKeyOverflow);
}

TEST(AutopsyTest, StragglerCoreNeedsPartitionMetrics) {
  BatchReport r = HealthyReport();
  r.map_makespan = 600000;
  // Without the partition-metrics pass the rule must stay mute.
  EXPECT_EQ(ExplainBatch(r).excess_of(BatchCause::kStragglerCore), 0);

  // max/avg = 3: a balanced plan would have finished in a third of the
  // makespan, so two thirds of it is straggler excess.
  r.partition_metrics.max_block_size = 300;
  r.partition_metrics.avg_block_size = 100.0;
  const BatchAutopsy a = ExplainBatch(r);
  EXPECT_EQ(a.dominant, BatchCause::kStragglerCore);
  EXPECT_EQ(a.excess_of(BatchCause::kStragglerCore), 400000);
  EXPECT_DOUBLE_EQ(a.block_load_ratio, 3.0);
}

TEST(AutopsyTest, BucketSkewUsesReduceCompletionSpread) {
  BatchReport r = HealthyReport();
  r.reduce_completion_mean_ms = 40.0;
  r.reduce_completion_max_ms = 120.0;
  const BatchAutopsy a = ExplainBatch(r);
  EXPECT_EQ(a.dominant, BatchCause::kBucketSkew);
  EXPECT_EQ(a.excess_of(BatchCause::kBucketSkew), 80000);
}

TEST(AutopsyTest, IngestBackpressureNeedsRingPressure) {
  BatchReport r = HealthyReport();
  r.has_ingest = true;
  r.ingest.seal_barrier_latency = 30000;
  r.ingest.merge_latency = 20000;
  ShardIngestStats shard;
  shard.ring_capacity = 100;
  shard.ring_high_water = 20;  // 20% — no pressure
  r.ingest.shards.push_back(shard);
  EXPECT_EQ(ExplainBatch(r).excess_of(BatchCause::kIngestBackpressure), 0);

  r.ingest.shards[0].ring_high_water = 90;  // 90% >= default 75%
  const BatchAutopsy a = ExplainBatch(r);
  EXPECT_EQ(a.dominant, BatchCause::kIngestBackpressure);
  EXPECT_EQ(a.excess_of(BatchCause::kIngestBackpressure), 50000);
  EXPECT_DOUBLE_EQ(a.ring_occupancy, 0.9);
}

TEST(AutopsyTest, TiesResolveToTheEarlierCause) {
  BatchReport r = HealthyReport();
  r.queue_delay = 50000;
  r.recovery_time = 50000;
  // Equal excess: kQueueing precedes kRecovery in the enum, so it wins.
  EXPECT_EQ(ExplainBatch(r).dominant, BatchCause::kQueueing);
}

TEST(AutopsyTest, ThresholdHonorsOptions) {
  BatchReport r = HealthyReport();
  r.queue_delay = 30000;
  AutopsyOptions opts;
  opts.min_excess_frac = 0.05;  // floor becomes 50ms
  EXPECT_EQ(ExplainBatch(r, opts).dominant, BatchCause::kNone);
  opts.min_excess_frac = 0.01;
  EXPECT_EQ(ExplainBatch(r, opts).dominant, BatchCause::kQueueing);
}

TEST(AutopsyTest, RecordCarriesVerdictAndPerCauseExcess) {
  BatchReport r = HealthyReport();
  r.queue_delay = 400000;
  const Record rec = AutopsyRecord(ExplainBatch(r));
  const RecordField* kind = FindField(rec, "record");
  ASSERT_NE(kind, nullptr);
  EXPECT_EQ(std::get<std::string>(kind->value), "autopsy");
  const RecordField* dominant = FindField(rec, "dominant");
  ASSERT_NE(dominant, nullptr);
  EXPECT_EQ(std::get<std::string>(dominant->value), "queueing");
  const RecordField* excess = FindField(rec, "excess_queueing_us");
  ASSERT_NE(excess, nullptr);
  EXPECT_EQ(std::get<int64_t>(excess->value), 400000);
  // Every cause gets its column, even at zero.
  for (size_t c = 1; c < kBatchCauses; ++c) {
    const std::string col =
        "excess_" +
        std::string(BatchCauseName(static_cast<BatchCause>(c))) + "_us";
    EXPECT_NE(FindField(rec, col), nullptr) << col;
  }
}

TEST(AutopsyTest, TextRenderingMarksTheDominantCause) {
  BatchReport r = HealthyReport();
  r.reduce_completion_mean_ms = 10.0;
  r.reduce_completion_max_ms = 60.0;
  const BatchAutopsy a = ExplainBatch(r);
  std::ostringstream os;
  WriteAutopsyText(a, r, &os);
  const std::string text = os.str();
  EXPECT_NE(text.find("dominant=bucket_skew"), std::string::npos) << text;
  EXPECT_NE(text.find("<=="), std::string::npos);
  EXPECT_NE(text.find("block_load_ratio"), std::string::npos);
}

}  // namespace
}  // namespace prompt
