#include "obs/sink.h"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/observability.h"

namespace prompt {
namespace {

Record SampleRecord() {
  Record r;
  r.Set("id", static_cast<uint64_t>(3))
      .Set("delta", static_cast<int64_t>(-12))
      .Set("ratio", 0.5)
      .Set("label", "zipf");
  return r;
}

TEST(CsvSinkTest, GoldenOutputWithHeaderFromFirstRecord) {
  std::ostringstream out;
  CsvSink sink(&out);
  sink.Write(SampleRecord());
  Record second;
  second.Set("id", static_cast<uint64_t>(4))
      .Set("delta", static_cast<int64_t>(0))
      .Set("ratio", 1.25)
      .Set("label", "uniform");
  sink.Write(second);
  EXPECT_EQ(out.str(),
            "id,delta,ratio,label\n"
            "3,-12,0.5,zipf\n"
            "4,0,1.25,uniform\n");
}

TEST(CsvSinkTest, DoublesRoundTrip) {
  std::ostringstream out;
  CsvSink sink(&out);
  Record r;
  const double v = 0.1234567890123456789;
  r.Set("v", v);
  sink.Write(r);
  std::istringstream in(out.str());
  std::string header, cell;
  std::getline(in, header);
  std::getline(in, cell);
  EXPECT_DOUBLE_EQ(std::stod(cell), v);
}

TEST(JsonlSinkTest, GoldenOutputAndEscaping) {
  std::ostringstream out;
  JsonlSink sink(&out);
  Record r;
  r.Set("n", static_cast<uint64_t>(1)).Set("s", "a\"b\\c\nd");
  sink.Write(r);
  EXPECT_EQ(out.str(), "{\"n\":1,\"s\":\"a\\\"b\\\\c\\nd\"}\n");
}

TEST(TableSinkTest, FixedWidthWithOptionalHeader) {
  std::ostringstream out;
  TableSink sink(&out, /*column_width=*/6);
  Record r;
  r.Set("id", static_cast<uint64_t>(42)).Set("name", "x");
  sink.Write(r);
  EXPECT_EQ(out.str(),
            "id    name  \n"
            "42    x     \n");

  std::ostringstream bare;
  TableSink no_header(&bare, 6, /*auto_header=*/false);
  no_header.Write(r);
  EXPECT_EQ(bare.str(), "42    x     \n");
}

TEST(JsonlTraceSinkTest, GoldenTraceRecord) {
  BatchTrace trace;
  trace.batch_id = 2;
  trace.batch_start = 2000000;
  trace.latency = 1100;
  trace.num_tuples = 10;
  trace.num_keys = 4;
  trace.spans.push_back(TraceSpan{"accumulate", 0, 1000, 0});
  trace.spans.push_back(TraceSpan{"seal_barrier", 1000, 7, 1});
  trace.spans.push_back(TraceSpan{"map", 1000, 100, 0});

  std::ostringstream out;
  JsonlTraceSink sink(&out);
  sink.Write(trace);
  EXPECT_EQ(out.str(),
            "{\"batch_id\":2,\"start_us\":2000000,\"latency_us\":1100,"
            "\"tuples\":10,\"keys\":4,\"spans\":["
            "{\"name\":\"accumulate\",\"start_us\":0,\"dur_us\":1000,"
            "\"depth\":0},"
            "{\"name\":\"seal_barrier\",\"start_us\":1000,\"dur_us\":7,"
            "\"depth\":1},"
            "{\"name\":\"map\",\"start_us\":1000,\"dur_us\":100,"
            "\"depth\":0}]}\n");
}

TEST(ReportRecordTest, ColumnsMatchTheReportIoCsvSchema) {
  BatchReport report;
  const Record row = ReportRecord(report);
  std::string joined;
  for (const RecordField& f : row.fields()) {
    if (!joined.empty()) joined += ',';
    joined += f.name;
  }
  EXPECT_EQ(joined,
            "batch_id,interval_us,tuples,keys,map_tasks,reduce_tasks,"
            "partition_cost_us,map_makespan_us,reduce_makespan_us,"
            "processing_us,queue_us,latency_us,w,bsi,bci,ksr,mpi,"
            "reduce_bucket_bsi");
}

TEST(SnapshotRecordsTest, LowersEveryMetricKind) {
  MetricsRegistry registry;
  registry.GetCounter("a_total")->Increment(2);
  registry.GetGauge("b_gauge")->Set(0.5);
  registry.GetHistogram("c_hist")->Observe(8);

  const auto records = SnapshotRecords(registry.Snapshot());
  ASSERT_EQ(records.size(), 3u);
  // Counter row: metric, kind, value.
  EXPECT_EQ(records[0].fields()[0].name, "metric");
  EXPECT_EQ(std::get<std::string>(records[0].fields()[0].value), "a_total");
  EXPECT_EQ(std::get<std::string>(records[0].fields()[1].value), "counter");
  // Histogram row carries count/sum/quantiles.
  EXPECT_EQ(records[2].size(), 8u);

  std::ostringstream out;
  WriteSnapshotText(registry.Snapshot(), &out);
  EXPECT_NE(out.str().find("a_total  2"), std::string::npos);
  EXPECT_NE(out.str().find("c_hist  count=1"), std::string::npos);
}

TEST(FileSinkTest, OpenFailsWithIoError) {
  auto bad = FileRecordSink::Open("/no/such/dir/out.csv",
                                  FileRecordSink::Format::kCsv);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsIOError());

  auto bad_trace = FileTraceSink::Open("/no/such/dir/trace.jsonl");
  ASSERT_FALSE(bad_trace.ok());
  EXPECT_TRUE(bad_trace.status().IsIOError());
}

}  // namespace
}  // namespace prompt
