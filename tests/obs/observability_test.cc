// End-to-end tests of the observability subsystem driven through the
// engine: one trace per batch, depth-0 span coverage of the reported
// latency (the ISSUE acceptance bar), embedded ingest metrics, the
// deprecated-alias migration and the zero-cost-when-disabled contract.
#include "obs/observability.h"

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "obs/sink.h"
#include "workload/sources.h"

namespace prompt {
namespace {

std::unique_ptr<SynDSource> MakeSource(double rate = 8000) {
  ZipfKeyedSource::Params params;
  params.cardinality = 500;
  params.zipf = 1.0;
  params.rate = std::make_shared<ConstantRate>(rate);
  return std::make_unique<SynDSource>(std::move(params));
}

EngineOptions BaseOptions() {
  EngineOptions opts;
  opts.batch_interval = Millis(250);
  return opts;
}

/// Collects every (report, trace) pair the engine fans out.
class CollectingObserver : public Observer {
 public:
  void OnRunStart(uint32_t num_batches) override { run_batches_ = num_batches; }
  void OnBatchComplete(const BatchReport& report,
                       const BatchTrace& trace) override {
    reports_.push_back(report);
    traces_.push_back(trace);
  }
  void OnRunEnd() override { run_ended_ = true; }

  uint32_t run_batches_ = 0;
  bool run_ended_ = false;
  std::vector<BatchReport> reports_;
  std::vector<BatchTrace> traces_;
};

TEST(ObservabilityTest, DisabledByDefaultAndZeroCostPathTaken) {
  auto source = MakeSource();
  MicroBatchEngine engine(BaseOptions(), JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  EXPECT_FALSE(engine.observability()->active());
  EXPECT_EQ(engine.observability()->registry(), nullptr);
  EXPECT_TRUE(engine.observability()->init_status().ok());
  // Runs fine with the whole subsystem off.
  EXPECT_EQ(engine.Run(3).batches.size(), 3u);
}

TEST(ObservabilityTest, OneJsonlTraceLinePerBatch) {
  auto source = MakeSource();
  MicroBatchEngine engine(BaseOptions(), JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  auto out = std::make_unique<std::ostringstream>();
  std::ostringstream* raw = out.get();
  struct OwningSink : JsonlTraceSink {
    explicit OwningSink(std::unique_ptr<std::ostringstream> s)
        : JsonlTraceSink(s.get()), stream(std::move(s)) {}
    std::unique_ptr<std::ostringstream> stream;
  };
  engine.observability()->AddTraceSink(
      std::make_unique<OwningSink>(std::move(out)));

  const uint32_t kBatches = 5;
  engine.Run(kBatches);

  std::istringstream lines(raw->str());
  std::string line;
  uint32_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"batch_id\":" + std::to_string(count)),
              std::string::npos);
    EXPECT_NE(line.find("\"spans\":["), std::string::npos);
    ++count;
  }
  EXPECT_EQ(count, kBatches);
}

// The ISSUE acceptance bar: every batch's depth-0 spans account for >= 95%
// of its reported end-to-end latency. The engine lays them to tile latency
// exactly, so coverage is 1.0 up to integer-microsecond accounting.
TEST(ObservabilityTest, SpansCoverReportedLatency) {
  auto source = MakeSource();
  EngineOptions opts = BaseOptions();
  opts.ingest_shards = 2;  // exercise the ingest annotation spans too
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  CollectingObserver observer;
  engine.AddObserver(&observer);

  engine.Run(6);
  ASSERT_EQ(observer.traces_.size(), 6u);
  EXPECT_EQ(observer.run_batches_, 6u);
  EXPECT_TRUE(observer.run_ended_);
  for (size_t i = 0; i < observer.traces_.size(); ++i) {
    const BatchTrace& trace = observer.traces_[i];
    EXPECT_EQ(trace.batch_id, observer.reports_[i].batch_id);
    EXPECT_EQ(trace.latency, observer.reports_[i].latency);
    EXPECT_GE(trace.Coverage(), 0.95) << "batch " << trace.batch_id;
    EXPECT_LE(trace.Coverage(), 1.0 + 1e-9) << "batch " << trace.batch_id;
    ASSERT_NE(trace.FindSpan("accumulate"), nullptr);
    EXPECT_EQ(trace.FindSpan("accumulate")->duration,
              observer.reports_[i].batch_interval);
    // Sharded ingest contributes its annotation spans.
    EXPECT_NE(trace.FindSpan("seal_barrier"), nullptr);
    EXPECT_NE(trace.FindSpan("kway_merge"), nullptr);
  }
}

TEST(ObservabilityTest, IngestMetricsEmbeddedInReports) {
  auto source = MakeSource();
  EngineOptions opts = BaseOptions();
  opts.ingest_shards = 2;
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  RunSummary summary = engine.Run(4);
  ASSERT_EQ(summary.batches.size(), 4u);
  for (const BatchReport& b : summary.batches) {
    EXPECT_TRUE(b.has_ingest);
    EXPECT_EQ(b.ingest.shards.size(), 2u);
    EXPECT_EQ(b.ingest.total_tuples, b.num_tuples);
  }
}

TEST(ObservabilityTest, SingleThreadedIngestHasNoEmbeddedMetrics) {
  auto source = MakeSource();
  MicroBatchEngine engine(BaseOptions(), JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  RunSummary summary = engine.Run(2);
  for (const BatchReport& b : summary.batches) EXPECT_FALSE(b.has_ingest);
}

TEST(ObservabilityTest, ObsOptionsDrivePartitionMetricCollection) {
  auto source = MakeSource();
  EngineOptions opts = BaseOptions();
  opts.obs.collect_partition_metrics = true;
  opts.obs.mpi_weights.p1 = 0.7;
  // Hash partitioning of a Zipf stream leaves the blocks imbalanced, so a
  // collected BSI is provably non-zero (Prompt's plan can reach BSI == 0).
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kHash),
                          source.get());
  EXPECT_TRUE(engine.options().obs.collect_partition_metrics);
  EXPECT_DOUBLE_EQ(engine.options().obs.mpi_weights.p1, 0.7);

  RunSummary summary = engine.Run(2);
  for (const BatchReport& b : summary.batches) {
    EXPECT_GT(b.partition_metrics.bsi, 0.0);
  }
}

TEST(ObservabilityTest, MetricsRegistryTracksTheRun) {
  auto source = MakeSource();
  EngineOptions opts = BaseOptions();
  opts.obs.metrics_enabled = true;
  opts.ingest_shards = 2;
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  MetricsRegistry* registry = engine.observability()->registry();
  ASSERT_NE(registry, nullptr);

  RunSummary summary = engine.Run(5);
  uint64_t tuples = 0;
  for (const BatchReport& b : summary.batches) tuples += b.num_tuples;

  EXPECT_EQ(registry->GetCounter("prompt_batches_total")->value(), 5u);
  EXPECT_EQ(registry->GetCounter("prompt_tuples_total")->value(), tuples);
  // Per-shard routed-tuple counters sum to the total.
  const uint64_t sharded =
      registry->GetCounter("prompt_ingest_tuples_total", {{"shard", "0"}})
          ->value() +
      registry->GetCounter("prompt_ingest_tuples_total", {{"shard", "1"}})
          ->value();
  EXPECT_EQ(sharded, tuples);
  EXPECT_EQ(
      registry->GetHistogram("prompt_batch_latency_us")->count(), 5u);
  EXPECT_GT(
      registry->GetCounter("prompt_map_tasks_total")->value(), 0u);
}

TEST(ObservabilityTest, InitStatusSurfacesBadSinkPaths) {
  ObservabilityOptions options;
  options.trace_path = "/no/such/dir/trace.jsonl";
  Observability obs(options);
  EXPECT_FALSE(obs.init_status().ok());
  EXPECT_TRUE(obs.init_status().IsIOError());
}

TEST(ObservabilityTest, MetricsSnapshotJsonlFile) {
  const std::string path = ::testing::TempDir() + "/metrics_snapshot.jsonl";
  ObservabilityOptions options;
  options.metrics_every = 2;
  options.metrics_path = path;
  Observability obs(options);
  ASSERT_TRUE(obs.init_status().ok());
  ASSERT_TRUE(obs.metrics_enabled());

  BatchReport report;
  for (uint64_t id = 0; id < 4; ++id) {
    report.batch_id = id;
    report.num_tuples = 100;
    report.latency = 1000;
    obs.OnBatchComplete(report, BatchTrace{});
  }
  obs.OnRunEnd();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  size_t lines = 0, after_batch_1 = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    if (line.find("\"after_batch\":1,") != std::string::npos) ++after_batch_1;
  }
  // Two snapshots (after batches 1 and 3), each one line per metric.
  EXPECT_GT(after_batch_1, 0u);
  EXPECT_EQ(lines % 2, 0u);
  EXPECT_GE(lines, 2 * after_batch_1);
}

TEST(ObservabilityTest, AutopsyPathWritesOneJsonlRecordPerBatch) {
  const std::string path = ::testing::TempDir() + "/autopsy.jsonl";
  ObservabilityOptions options;
  options.autopsy_path = path;  // implies autopsy_enabled
  Observability obs(options);
  ASSERT_TRUE(obs.init_status().ok());
  EXPECT_TRUE(obs.autopsy_enabled());
  EXPECT_TRUE(obs.active());

  BatchReport report;
  report.batch_interval = 1000000;
  for (uint64_t id = 0; id < 3; ++id) {
    report.batch_id = id;
    report.queue_delay = id == 2 ? 400000 : 0;  // only batch 2 queues
    obs.OnBatchComplete(report, BatchTrace{});
  }
  obs.OnRunEnd();

  EXPECT_EQ(obs.last_autopsy().batch_id, 2u);
  EXPECT_EQ(obs.last_autopsy().dominant, BatchCause::kQueueing);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"record\":\"autopsy\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"dominant\":\"none\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"dominant\":\"queueing\""), std::string::npos)
      << lines[2];
}

TEST(ObservabilityTest, TimeSeriesOptionsCreateAndFeedTheStore) {
  ObservabilityOptions options;
  options.timeseries_capacity = 4;
  Observability obs(options);
  ASSERT_NE(obs.timeseries(), nullptr);
  EXPECT_TRUE(obs.active());
  EXPECT_EQ(obs.timeseries()->capacity(), 4u);

  BatchReport report;
  for (uint64_t id = 0; id < 6; ++id) {
    report.batch_id = id;
    report.latency = static_cast<TimeMicros>(1000 * (id + 1));
    obs.OnBatchComplete(report, BatchTrace{});
  }
  EXPECT_EQ(obs.timeseries()->total_observed(), 6u);
  EXPECT_EQ(obs.timeseries()->size(), 4u);  // wrapped
  EXPECT_DOUBLE_EQ(
      obs.timeseries()->Aggregate(TimeSeriesSignal::kLatencyUs).last, 6000.0);
}

TEST(ObservabilityTest, ServePortSpinsUpExporterWithImpliedSources) {
  ObservabilityOptions options;
  options.serve_port = 0;  // ephemeral; implies metrics + timeseries
  Observability obs(options);
  ASSERT_TRUE(obs.init_status().ok());
  EXPECT_TRUE(obs.metrics_enabled());
  ASSERT_NE(obs.timeseries(), nullptr);
  ASSERT_NE(obs.exporter(), nullptr);
  EXPECT_TRUE(obs.exporter()->serving());
  EXPECT_NE(obs.exporter()->port(), 0);

  std::string body, type;
  EXPECT_TRUE(obs.exporter()->RenderPath("/timeseries.json", &body, &type));
  EXPECT_NE(body.find("\"batches_seen\":0"), std::string::npos);
}

}  // namespace
}  // namespace prompt
