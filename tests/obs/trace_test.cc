#include "obs/trace.h"

#include <gtest/gtest.h>

namespace prompt {
namespace {

TEST(TraceRecorderTest, ExplicitSpansTileTheLatency) {
  TraceRecorder recorder;
  recorder.BeginBatch(/*batch_id=*/7, /*batch_start=*/1000000);
  recorder.AddSpan("accumulate", 0, 1000000);
  recorder.AddSpan("map", 1000000, 60000);
  recorder.AddSpan("reduce", 1060000, 40000);
  const BatchTrace& trace = recorder.EndBatch(/*num_tuples=*/500,
                                              /*num_keys=*/100,
                                              /*latency=*/1100000);

  EXPECT_EQ(trace.batch_id, 7u);
  EXPECT_EQ(trace.batch_start, 1000000);
  EXPECT_EQ(trace.num_tuples, 500u);
  EXPECT_EQ(trace.num_keys, 100u);
  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_EQ(trace.TopLevelTotal(), 1100000);
  EXPECT_DOUBLE_EQ(trace.Coverage(), 1.0);

  const TraceSpan* map = trace.FindSpan("map");
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->start, 1000000);
  EXPECT_EQ(map->duration, 60000);
  EXPECT_EQ(trace.FindSpan("no_such_span"), nullptr);
}

TEST(TraceRecorderTest, NestedSpansArePlacedAsAnnotations) {
  TraceRecorder recorder;
  recorder.BeginBatch(0, 0);
  recorder.AddSpan("accumulate", 0, 1000);
  recorder.AddSpan("seal_barrier", 1000, 40, /*depth=*/1);
  recorder.AddSpan("kway_merge", 1040, 10, /*depth=*/1);
  const BatchTrace& trace = recorder.EndBatch(1, 1, 1000);

  // Depth-1 spans annotate; only depth-0 spans count toward coverage.
  EXPECT_EQ(trace.TopLevelTotal(), 1000);
  EXPECT_DOUBLE_EQ(trace.Coverage(), 1.0);
  EXPECT_EQ(trace.FindSpan("seal_barrier")->depth, 1u);
}

TEST(TraceRecorderTest, ScopedSpansNestByOpenCount) {
  TraceRecorder recorder;
  recorder.BeginBatch(0, 0);
  {
    auto outer = recorder.StartSpan("outer");
    {
      auto inner = recorder.StartSpan("inner");
    }  // inner closes first
  }
  const BatchTrace& trace = recorder.EndBatch(0, 0, 0);
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.FindSpan("outer")->depth, 0u);
  EXPECT_EQ(trace.FindSpan("inner")->depth, 1u);
  // Wall-clock scopes: inner is contained in outer.
  EXPECT_LE(trace.FindSpan("inner")->duration,
            trace.FindSpan("outer")->duration);
}

TEST(TraceRecorderTest, ScopeEndIsIdempotent) {
  TraceRecorder recorder;
  recorder.BeginBatch(0, 0);
  auto span = recorder.StartSpan("work");
  span.End();
  span.End();  // no-op
  const BatchTrace& trace = recorder.EndBatch(0, 0, 0);
  EXPECT_EQ(trace.spans.size(), 1u);
}

TEST(TraceRecorderTest, CoverageReportsMissingSpans) {
  TraceRecorder recorder;
  recorder.BeginBatch(0, 0);
  recorder.AddSpan("accumulate", 0, 900);
  const BatchTrace& trace = recorder.EndBatch(0, 0, 1000);
  EXPECT_DOUBLE_EQ(trace.Coverage(), 0.9);
}

TEST(TraceRecorderTest, RecorderIsReusableAcrossBatches) {
  TraceRecorder recorder;
  recorder.BeginBatch(0, 0);
  recorder.AddSpan("a", 0, 10);
  recorder.EndBatch(0, 0, 10);

  recorder.BeginBatch(1, 500);
  const BatchTrace& second = recorder.current();
  EXPECT_EQ(second.batch_id, 1u);
  EXPECT_TRUE(second.spans.empty());
  recorder.AddSpan("b", 0, 20);
  EXPECT_EQ(recorder.EndBatch(0, 0, 20).spans.size(), 1u);
}

}  // namespace
}  // namespace prompt
