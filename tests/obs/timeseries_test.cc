#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <sstream>

namespace prompt {
namespace {

TimeSeriesPoint LatencyPoint(uint64_t batch_id, double latency_us) {
  TimeSeriesPoint p;
  p.batch_id = batch_id;
  p.set(TimeSeriesSignal::kLatencyUs, latency_us);
  return p;
}

TEST(TimeSeriesTest, PointFromDerivesEverySignal) {
  BatchReport r;
  r.batch_id = 7;
  r.latency = 120000;
  r.processing_time = 90000;
  r.queue_delay = 5000;
  r.recovery_time = 2500;
  r.num_tuples = 4321;
  r.reduce_bucket_bsi = 0.4;
  r.partition_metrics.max_block_size = 300;
  r.partition_metrics.avg_block_size = 100.0;
  r.partition_metrics.split_keys = 5;
  r.partition_metrics.distinct_keys = 50;

  const TimeSeriesPoint p = TimeSeriesStore::PointFrom(r);
  EXPECT_EQ(p.batch_id, 7u);
  EXPECT_DOUBLE_EQ(p.value(TimeSeriesSignal::kLatencyUs), 120000.0);
  EXPECT_DOUBLE_EQ(p.value(TimeSeriesSignal::kProcessingUs), 90000.0);
  EXPECT_DOUBLE_EQ(p.value(TimeSeriesSignal::kQueueUs), 5000.0);
  EXPECT_DOUBLE_EQ(p.value(TimeSeriesSignal::kBlockLoadRatio), 3.0);
  EXPECT_DOUBLE_EQ(p.value(TimeSeriesSignal::kBucketImbalance), 0.4);
  EXPECT_DOUBLE_EQ(p.value(TimeSeriesSignal::kSplitKeyFrac), 0.1);
  EXPECT_DOUBLE_EQ(p.value(TimeSeriesSignal::kRingOccupancyFrac), 0.0);
  EXPECT_DOUBLE_EQ(p.value(TimeSeriesSignal::kRecoveryUs), 2500.0);
  EXPECT_DOUBLE_EQ(p.value(TimeSeriesSignal::kTuples), 4321.0);
}

TEST(TimeSeriesTest, PointFromWithoutPartitionMetricsReportsBalanced) {
  BatchReport r;  // collect_partition_metrics off: max/avg stay zero
  const TimeSeriesPoint p = TimeSeriesStore::PointFrom(r);
  EXPECT_DOUBLE_EQ(p.value(TimeSeriesSignal::kBlockLoadRatio), 1.0);
  EXPECT_DOUBLE_EQ(p.value(TimeSeriesSignal::kSplitKeyFrac), 0.0);
}

TEST(TimeSeriesTest, RingWrapsAroundAtCapacity) {
  TimeSeriesOptions opts;
  opts.capacity = 4;
  TimeSeriesStore store(opts);
  for (uint64_t i = 0; i < 10; ++i) {
    store.Push(LatencyPoint(i, static_cast<double>(i) * 100.0));
  }
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.capacity(), 4u);
  EXPECT_EQ(store.total_observed(), 10u);

  // Only the newest 4 points survive, returned oldest first.
  const std::vector<TimeSeriesPoint> tail = store.Tail();
  ASSERT_EQ(tail.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tail[i].batch_id, 6u + i);
    EXPECT_DOUBLE_EQ(tail[i].value(TimeSeriesSignal::kLatencyUs),
                     (6.0 + static_cast<double>(i)) * 100.0);
  }

  // Aggregates cover only retained points: max/last come from batch 9 and
  // the mean is over batches 6..9.
  const WindowAggregate agg =
      store.Aggregate(TimeSeriesSignal::kLatencyUs, /*window=*/8);
  EXPECT_EQ(agg.count, 4u);
  EXPECT_DOUBLE_EQ(agg.last, 900.0);
  EXPECT_DOUBLE_EQ(agg.max, 900.0);
  EXPECT_DOUBLE_EQ(agg.mean, (600.0 + 700.0 + 800.0 + 900.0) / 4.0);
}

TEST(TimeSeriesTest, TailHonorsRequestedWindow) {
  TimeSeriesStore store;
  for (uint64_t i = 0; i < 6; ++i) store.Push(LatencyPoint(i, 1.0));
  EXPECT_EQ(store.Tail(2).size(), 2u);
  EXPECT_EQ(store.Tail(2).front().batch_id, 4u);
  EXPECT_EQ(store.Tail(100).size(), 6u);
  EXPECT_EQ(store.Tail().size(), 6u);
}

TEST(TimeSeriesTest, QuantilesAreNearestRankOverTheWindow) {
  TimeSeriesOptions opts;
  opts.window = 100;
  TimeSeriesStore store(opts);
  for (uint64_t i = 1; i <= 100; ++i) {
    store.Push(LatencyPoint(i, static_cast<double>(i)));
  }
  const WindowAggregate agg = store.Aggregate(TimeSeriesSignal::kLatencyUs);
  EXPECT_EQ(agg.count, 100u);
  EXPECT_DOUBLE_EQ(agg.p50, 50.0);
  EXPECT_DOUBLE_EQ(agg.p95, 95.0);
  EXPECT_DOUBLE_EQ(agg.p99, 99.0);
  EXPECT_DOUBLE_EQ(agg.max, 100.0);
  EXPECT_DOUBLE_EQ(agg.mean, 50.5);
}

TEST(TimeSeriesTest, EwmaTracksTheConfiguredAlpha) {
  TimeSeriesOptions opts;
  opts.ewma_alpha = 0.5;
  TimeSeriesStore store(opts);
  store.Push(LatencyPoint(0, 100.0));  // first push seeds the EWMA
  store.Push(LatencyPoint(1, 200.0));  // 0.5*200 + 0.5*100
  const WindowAggregate agg = store.Aggregate(TimeSeriesSignal::kLatencyUs);
  EXPECT_DOUBLE_EQ(agg.ewma, 150.0);
}

TEST(TimeSeriesTest, EmptyStoreAggregatesToZeros) {
  TimeSeriesStore store;
  const WindowAggregate agg = store.Aggregate(TimeSeriesSignal::kLatencyUs);
  EXPECT_EQ(agg.count, 0u);
  EXPECT_DOUBLE_EQ(agg.p99, 0.0);
  EXPECT_DOUBLE_EQ(agg.mean, 0.0);
}

TEST(TimeSeriesTest, WriteJsonCoversEveryRetainedBatch) {
  TimeSeriesOptions opts;
  opts.capacity = 8;
  TimeSeriesStore store(opts);
  for (uint64_t i = 0; i < 5; ++i) {
    store.Push(LatencyPoint(i, static_cast<double>(i + 1)));
  }
  std::ostringstream os;
  store.WriteJson(&os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"batches_seen\":5"), std::string::npos);
  EXPECT_NE(json.find("\"size\":5"), std::string::npos);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_NE(json.find("\"batch_id\":" + std::to_string(i)),
              std::string::npos)
        << json;
  }
  // Every signal appears in the aggregate map by its stable wire name.
  for (size_t s = 0; s < kTimeSeriesSignals; ++s) {
    const std::string name(
        TimeSeriesSignalName(static_cast<TimeSeriesSignal>(s)));
    EXPECT_NE(json.find('"' + name + "\":{\"count\":"), std::string::npos)
        << name;
  }
}

}  // namespace
}  // namespace prompt
