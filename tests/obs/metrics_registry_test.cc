#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

namespace prompt {
namespace {

TEST(MetricsRegistryTest, HandlesAreStableAndKeyedByNameAndLabels) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests_total");
  Counter* b = registry.GetCounter("requests_total");
  EXPECT_EQ(a, b);

  Counter* shard0 = registry.GetCounter("tuples_total", {{"shard", "0"}});
  Counter* shard1 = registry.GetCounter("tuples_total", {{"shard", "1"}});
  EXPECT_NE(shard0, shard1);
  EXPECT_EQ(shard0, registry.GetCounter("tuples_total", {{"shard", "0"}}));
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hits");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("w");
  gauge->Set(0.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.5);
  gauge->Add(0.25);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.75);
}

TEST(MetricsRegistryTest, HistogramCountsSumsAndQuantiles) {
  MetricsRegistry registry;
  HistogramMetric* hist = registry.GetHistogram("latency_us");
  for (int v = 1; v <= 1000; ++v) hist->Observe(v);
  EXPECT_EQ(hist->count(), 1000u);
  EXPECT_DOUBLE_EQ(hist->sum(), 500500.0);
  EXPECT_DOUBLE_EQ(hist->Mean(), 500.5);

  // Power-of-two buckets interpolate inside the winning bucket: ~2x
  // worst-case relative error. The median of 1..1000 must land within a
  // factor of two of 500 and the quantiles must be monotone.
  const double p50 = hist->Quantile(0.5);
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_LE(hist->Quantile(0.1), hist->Quantile(0.5));
  EXPECT_LE(hist->Quantile(0.5), hist->Quantile(0.99));
  EXPECT_LE(hist->Quantile(0.99), 1024.0);
}

TEST(MetricsRegistryTest, HistogramConcurrentObserve) {
  MetricsRegistry registry;
  HistogramMetric* hist = registry.GetHistogram("cost_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist->Observe(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist->count(), static_cast<uint64_t>(kThreads * kPerThread));
  // Sum of (1+..+8) * 20000, accumulated with CAS — exact for integers.
  EXPECT_DOUBLE_EQ(hist->sum(), 36.0 * kPerThread);
}

TEST(MetricsRegistryTest, QuantileEdgeCases) {
  HistogramMetric hist;
  // Empty histogram: every quantile is the documented 0.0.
  EXPECT_DOUBLE_EQ(hist.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(1.0), 0.0);

  // Single observation of 5, bucket (4, 8]: q=0 returns the lower edge of
  // the (only) occupied bucket, q=1 its upper edge, and everything between
  // interpolates monotonically.
  hist.Observe(5.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(1.0), 8.0);
  EXPECT_GE(hist.Quantile(0.5), 4.0);
  EXPECT_LE(hist.Quantile(0.5), 8.0);
}

TEST(MetricsRegistryTest, QuantileRejectsNanQ) {
  HistogramMetric hist;
  hist.Observe(10.0);
  const double nan_q = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(hist.Quantile(nan_q)));
  // The histogram itself is untouched by the rejected query.
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_DOUBLE_EQ(hist.Quantile(1.0), 16.0);
}

TEST(MetricsRegistryTest, ObserveDropsNan) {
  HistogramMetric hist;
  hist.Observe(3.0);
  hist.Observe(std::numeric_limits<double>::quiet_NaN());
  hist.Observe(7.0);
  // The NaN neither counts nor poisons the running sum/mean.
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_DOUBLE_EQ(hist.sum(), 10.0);
  EXPECT_DOUBLE_EQ(hist.Mean(), 5.0);
  EXPECT_FALSE(std::isnan(hist.Quantile(0.5)));
}

TEST(MetricsRegistryTest, GaugeConcurrentMixedSetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("occupancy");
  constexpr int kAdders = 4;
  constexpr int kPerThread = 50000;
  std::atomic<bool> stop{false};
  // A writer hammers Set(0) while adders spin the CAS loop: Add must never
  // lose its delta to a torn read-modify-write, and every CAS retry must
  // terminate. The final Set(0) makes the end state exact.
  std::thread setter([gauge, &stop] {
    while (!stop.load(std::memory_order_relaxed)) gauge->Set(0.0);
  });
  std::vector<std::thread> adders;
  for (int t = 0; t < kAdders; ++t) {
    adders.emplace_back([gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge->Add(1.0);
    });
  }
  for (auto& t : adders) t.join();
  stop.store(true, std::memory_order_relaxed);
  setter.join();
  gauge->Set(0.0);
  for (int i = 0; i < 1000; ++i) gauge->Add(2.0);
  EXPECT_DOUBLE_EQ(gauge->value(), 2000.0);
}

TEST(MetricsRegistryTest, GaugeConcurrentAddsAreExact) {
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  // Integer-valued doubles accumulate exactly under the CAS loop.
  EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(kThreads * kPerThread));
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndTyped) {
  MetricsRegistry registry;
  registry.GetCounter("b_counter")->Increment(7);
  registry.GetGauge("a_gauge")->Set(1.5);
  HistogramMetric* hist = registry.GetHistogram("c_hist");
  hist->Observe(10);
  hist->Observe(20);

  const std::vector<MetricSample> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "a_gauge");
  EXPECT_EQ(snapshot[0].kind, MetricSample::Kind::kGauge);
  EXPECT_DOUBLE_EQ(snapshot[0].value, 1.5);
  EXPECT_EQ(snapshot[1].name, "b_counter");
  EXPECT_EQ(snapshot[1].kind, MetricSample::Kind::kCounter);
  EXPECT_DOUBLE_EQ(snapshot[1].value, 7.0);
  EXPECT_EQ(snapshot[2].name, "c_hist");
  EXPECT_EQ(snapshot[2].kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(snapshot[2].count, 2u);
  EXPECT_DOUBLE_EQ(snapshot[2].sum, 30.0);
  EXPECT_DOUBLE_EQ(snapshot[2].value, 15.0);  // mean
}

TEST(MetricsRegistryTest, FullNameIncludesLabels) {
  MetricsRegistry registry;
  registry.GetCounter("tuples_total", {{"shard", "3"}, {"node", "a"}});
  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].FullName(), "tuples_total{shard=3,node=a}");
}

}  // namespace
}  // namespace prompt
