#include "fault/recovery.h"

#include <gtest/gtest.h>

#include "core/prompt_partitioner.h"
#include "testing/test_helpers.h"

namespace prompt {
namespace {

TEST(RetryPolicyTest, NoFailuresCostsTheBaseDuration) {
  RetryOutcome outcome = ApplyRetryPolicy(1000, 0, 3, 100);
  EXPECT_EQ(outcome.effective_cost, 1000);
  EXPECT_EQ(outcome.retries, 0u);
  EXPECT_FALSE(outcome.exhausted);
}

TEST(RetryPolicyTest, EachFailureWastesAnAttemptPlusDoublingBackoff) {
  // 2 failures: wasted = (1000+100) + (1000+200); success adds base 1000.
  RetryOutcome outcome = ApplyRetryPolicy(1000, 2, 3, 100);
  EXPECT_EQ(outcome.effective_cost, 1000 + 1100 + 1200);
  EXPECT_EQ(outcome.retries, 2u);
  EXPECT_FALSE(outcome.exhausted);
}

TEST(RetryPolicyTest, ExhaustionStopsAtTheBudget) {
  // 5 failures against a budget of 2: two wasted attempts, never succeeds.
  RetryOutcome outcome = ApplyRetryPolicy(1000, 5, 2, 100);
  EXPECT_TRUE(outcome.exhausted);
  EXPECT_EQ(outcome.retries, 2u);
  EXPECT_EQ(outcome.effective_cost, 1100 + 1200);
}

TEST(SpeculationTest, StragglerCappedByBackupCopy) {
  // Median 1000, multiplier 2 -> detection at 2000. Task 3 (10000) gets a
  // backup launched at 2000 running its clean 1000 -> finishes at 3000.
  const std::vector<TimeMicros> costs = {1000, 1000, 1000, 10000};
  const std::vector<TimeMicros> clean = {1000, 1000, 1000, 1000};
  SpeculationResult result = ApplySpeculation(costs, clean, 2.0);
  EXPECT_EQ(result.speculated, 1u);
  EXPECT_EQ(result.costs[3], 3000);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(result.costs[i], 1000);
}

TEST(SpeculationTest, OriginalWinsWhenItWouldFinishFirst) {
  // Straggler at 2500 vs backup finishing at 2000 + 1800 = 3800: the
  // original copy is still the first finisher.
  const std::vector<TimeMicros> costs = {1000, 1000, 1000, 2500};
  const std::vector<TimeMicros> clean = {1000, 1000, 1000, 1800};
  SpeculationResult result = ApplySpeculation(costs, clean, 2.0);
  EXPECT_EQ(result.speculated, 1u);
  EXPECT_EQ(result.costs[3], 2500);
}

TEST(SpeculationTest, NoStragglersNoBackups) {
  const std::vector<TimeMicros> costs = {900, 1000, 1100, 1200};
  SpeculationResult result = ApplySpeculation(costs, costs, 2.0);
  EXPECT_EQ(result.speculated, 0u);
  EXPECT_EQ(result.costs, costs);
}

TEST(RepackBlocksTest, MergesDownToTheCoreBoundPreservingTuples) {
  PromptPartitioner partitioner;
  auto data = testing::ZipfTuples(4000, 300, 1.1, 0, Seconds(1));
  PartitionedBatch batch =
      testing::RunBatch(partitioner, data, /*blocks=*/8, 0, Seconds(1), 7);
  ASSERT_GT(batch.blocks.size(), 2u);

  uint64_t tuples_before = 0;
  for (const DataBlock& b : batch.blocks) tuples_before += b.size();

  RepackBlocks(&batch, 2);
  ASSERT_EQ(batch.blocks.size(), 2u);
  uint64_t tuples_after = 0;
  for (size_t i = 0; i < batch.blocks.size(); ++i) {
    EXPECT_EQ(batch.blocks[i].block_id(), static_cast<uint32_t>(i));
    tuples_after += batch.blocks[i].size();
  }
  EXPECT_EQ(tuples_after, tuples_before);
}

TEST(RepackBlocksTest, NoOpWhenAlreadyWithinBound) {
  PromptPartitioner partitioner;
  auto data = testing::ZipfTuples(1000, 100, 1.1, 0, Seconds(1));
  PartitionedBatch batch =
      testing::RunBatch(partitioner, data, /*blocks=*/4, 0, Seconds(1), 7);
  const size_t blocks = batch.blocks.size();
  RepackBlocks(&batch, 8);
  EXPECT_EQ(batch.blocks.size(), blocks);
}

}  // namespace
}  // namespace prompt
