#include "fault/fault_injector.h"

#include <gtest/gtest.h>

namespace prompt {
namespace {

std::vector<uint32_t> FourNodes() { return {0, 1, 2, 3}; }

TEST(FaultScheduleParseTest, KillWithStageAndRevive) {
  auto options = ParseFaultSchedule("kill:2@5.map;revive:2@9");
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  ASSERT_EQ(options->schedule.size(), 2u);

  const FaultEvent& kill = options->schedule[0];
  EXPECT_EQ(kill.kind, FaultKind::kKillNode);
  EXPECT_EQ(kill.target, 2u);
  EXPECT_EQ(kill.batch_id, 5u);
  EXPECT_EQ(kill.point, FaultPoint::kMapStage);

  const FaultEvent& revive = options->schedule[1];
  EXPECT_EQ(revive.kind, FaultKind::kReviveNode);
  EXPECT_EQ(revive.target, 2u);
  EXPECT_EQ(revive.batch_id, 9u);
  EXPECT_EQ(revive.point, FaultPoint::kBatchStart);  // default stage
}

TEST(FaultScheduleParseTest, DelayAndFail) {
  auto options = ParseFaultSchedule("delay:3@2:15000;fail:1@4:2;fail:6@4");
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  ASSERT_EQ(options->schedule.size(), 3u);
  EXPECT_EQ(options->schedule[0].kind, FaultKind::kDelayTask);
  EXPECT_EQ(options->schedule[0].target, 3u);
  EXPECT_EQ(options->schedule[0].batch_id, 2u);
  EXPECT_EQ(options->schedule[0].delay, 15000);
  EXPECT_EQ(options->schedule[1].kind, FaultKind::kFailTask);
  EXPECT_EQ(options->schedule[1].times, 2u);
  EXPECT_EQ(options->schedule[2].times, 1u);  // default failure count
}

TEST(FaultScheduleParseTest, RandomMode) {
  auto options =
      ParseFaultSchedule("random:p=0.25,seed=7,max_kills=2,revive_after=3");
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_TRUE(options->random.enabled);
  EXPECT_DOUBLE_EQ(options->random.kill_prob, 0.25);
  EXPECT_EQ(options->random.seed, 7u);
  EXPECT_EQ(options->random.max_kills, 2u);
  EXPECT_EQ(options->random.revive_after, 3u);
}

TEST(FaultScheduleParseTest, RejectsMalformedSpecs) {
  EXPECT_TRUE(ParseFaultSchedule("").status().IsInvalid());
  EXPECT_TRUE(ParseFaultSchedule("kill:2").status().IsInvalid());
  EXPECT_TRUE(ParseFaultSchedule("kill:x@5").status().IsInvalid());
  EXPECT_TRUE(ParseFaultSchedule("kill:2@5.shuffle").status().IsInvalid());
  EXPECT_TRUE(ParseFaultSchedule("explode:2@5").status().IsInvalid());
  EXPECT_TRUE(ParseFaultSchedule("delay:3@2").status().IsInvalid());
  EXPECT_TRUE(ParseFaultSchedule("random:p=1.5").status().IsInvalid());
  EXPECT_TRUE(ParseFaultSchedule("random:frequency=1").status().IsInvalid());
}

TEST(FaultInjectorTest, ScheduledEventsFireExactlyAtTheirPoint) {
  auto options = ParseFaultSchedule("kill:2@5.map;revive:2@9");
  ASSERT_TRUE(options.ok());
  FaultInjector injector(*options);

  // Nothing before the scheduled batch, and nothing at other stages.
  for (uint64_t batch = 0; batch < 5; ++batch) {
    for (FaultPoint point : {FaultPoint::kBatchStart, FaultPoint::kMapStage,
                             FaultPoint::kReduceStage}) {
      EXPECT_TRUE(injector.Poll(batch, point, FourNodes()).empty());
    }
  }
  EXPECT_TRUE(injector.Poll(5, FaultPoint::kBatchStart, FourNodes()).empty());

  auto fired = injector.Poll(5, FaultPoint::kMapStage, FourNodes());
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, FaultKind::kKillNode);
  EXPECT_EQ(fired[0].target, 2u);

  auto revive = injector.Poll(9, FaultPoint::kBatchStart, {0, 1, 3});
  ASSERT_EQ(revive.size(), 1u);
  EXPECT_EQ(revive[0].kind, FaultKind::kReviveNode);
  EXPECT_EQ(revive[0].target, 2u);
}

TEST(FaultInjectorTest, TaskFaultsAccumulatePerBatch) {
  auto options = ParseFaultSchedule("delay:3@2:15000;delay:3@2:5000;fail:1@2:2");
  ASSERT_TRUE(options.ok());
  FaultInjector injector(*options);

  TaskPerturbations p = injector.TaskFaults(2);
  ASSERT_EQ(p.delays.size(), 1u);
  EXPECT_EQ(p.delays.at(3), 20000);  // repeated delays add up
  ASSERT_EQ(p.failures.size(), 1u);
  EXPECT_EQ(p.failures.at(1), 2u);
  EXPECT_TRUE(injector.TaskFaults(3).empty());
}

TEST(FaultInjectorTest, RandomModeIsReproducibleForAFixedSeed) {
  auto options = ParseFaultSchedule("random:p=0.3,seed=11,max_kills=2");
  ASSERT_TRUE(options.ok());

  auto run = [&]() {
    FaultInjector injector(*options);
    std::vector<std::pair<uint64_t, uint32_t>> kills;
    std::vector<uint32_t> alive = FourNodes();
    for (uint64_t batch = 0; batch < 50; ++batch) {
      for (const FaultEvent& e :
           injector.Poll(batch, FaultPoint::kMapStage, alive)) {
        if (e.kind == FaultKind::kKillNode) {
          kills.emplace_back(batch, e.target);
          alive.erase(std::find(alive.begin(), alive.end(), e.target));
        }
      }
    }
    return kills;
  };

  const auto first = run();
  EXPECT_EQ(first, run());
  EXPECT_LE(first.size(), 2u);  // max_kills bound holds
}

TEST(FaultInjectorTest, RandomModeSchedulesRevives) {
  FaultOptions options;
  options.random.enabled = true;
  options.random.kill_prob = 1.0;  // kill at the first map-stage poll
  options.random.max_kills = 1;
  options.random.revive_after = 2;
  FaultInjector injector(options);

  auto kills = injector.Poll(0, FaultPoint::kMapStage, FourNodes());
  ASSERT_EQ(kills.size(), 1u);
  const uint32_t victim = kills[0].target;

  EXPECT_TRUE(injector.Poll(1, FaultPoint::kBatchStart, FourNodes()).empty());
  auto revives = injector.Poll(2, FaultPoint::kBatchStart, FourNodes());
  ASSERT_EQ(revives.size(), 1u);
  EXPECT_EQ(revives[0].kind, FaultKind::kReviveNode);
  EXPECT_EQ(revives[0].target, victim);
  // The revive fires once, not again on later polls.
  EXPECT_TRUE(injector.Poll(2, FaultPoint::kBatchStart, FourNodes()).empty());
}

TEST(FaultScheduleParseTest, CrashAndRestart) {
  auto options = ParseFaultSchedule("crash:6.map;restart:6");
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  ASSERT_EQ(options->schedule.size(), 2u);
  EXPECT_EQ(options->schedule[0].kind, FaultKind::kCrash);
  EXPECT_EQ(options->schedule[0].batch_id, 6u);
  EXPECT_EQ(options->schedule[0].point, FaultPoint::kMapStage);
  EXPECT_EQ(options->schedule[1].kind, FaultKind::kRestart);
  EXPECT_EQ(options->schedule[1].batch_id, 6u);
  EXPECT_EQ(options->schedule[1].point, FaultPoint::kBatchStart);

  // Default stage is the batch boundary, like every other event.
  auto boundary = ParseFaultSchedule("crash:3");
  ASSERT_TRUE(boundary.ok());
  EXPECT_EQ(boundary->schedule[0].point, FaultPoint::kBatchStart);
}

TEST(FaultScheduleParseTest, RejectsMalformedCrashSpecs) {
  // Crash kills the whole process; a node id makes no sense.
  EXPECT_TRUE(ParseFaultSchedule("crash:2@5").status().IsInvalid());
  EXPECT_TRUE(ParseFaultSchedule("crash:x").status().IsInvalid());
  EXPECT_TRUE(ParseFaultSchedule("crash:5.shuffle").status().IsInvalid());
  // Restart is a batch-boundary marker; it cannot take a stage.
  EXPECT_TRUE(ParseFaultSchedule("restart:5.map").status().IsInvalid());
  EXPECT_TRUE(ParseFaultSchedule("restart:").status().IsInvalid());
}

TEST(FaultInjectorTest, CrashFiresAtItsStageAndRestartOnlyAtBatchStart) {
  auto options = ParseFaultSchedule("crash:4.reduce;restart:4");
  ASSERT_TRUE(options.ok());
  FaultInjector injector(*options);

  // The restart marker must never leak into mid-stage polls.
  auto start = injector.Poll(4, FaultPoint::kBatchStart, FourNodes());
  ASSERT_EQ(start.size(), 1u);
  EXPECT_EQ(start[0].kind, FaultKind::kRestart);

  EXPECT_TRUE(injector.Poll(4, FaultPoint::kMapStage, FourNodes()).empty());
  auto reduce = injector.Poll(4, FaultPoint::kReduceStage, FourNodes());
  ASSERT_EQ(reduce.size(), 1u);
  EXPECT_EQ(reduce[0].kind, FaultKind::kCrash);
}

}  // namespace
}  // namespace prompt
