#include <gtest/gtest.h>

#include "model/batch.h"
#include "model/block.h"
#include "model/tuple.h"

namespace prompt {
namespace {

TEST(TupleTest, IsCompactPod) {
  EXPECT_EQ(sizeof(Tuple), 24u);
  EXPECT_TRUE(std::is_trivially_copyable_v<Tuple>);
}

TEST(DataBlockTest, FinalizeComputesFragments) {
  DataBlock block(3);
  for (int i = 0; i < 5; ++i) block.Append(Tuple{i, 1, 1.0});
  for (int i = 0; i < 2; ++i) block.Append(Tuple{i, 2, 1.0});
  block.Finalize();
  EXPECT_EQ(block.block_id(), 3u);
  EXPECT_EQ(block.size(), 7u);
  EXPECT_EQ(block.cardinality(), 2u);
  uint64_t total = 0;
  for (const auto& f : block.fragments()) {
    total += f.count;
    EXPECT_FALSE(f.split);
    if (f.key == 1) {
      EXPECT_EQ(f.count, 5u);
    }
    if (f.key == 2) {
      EXPECT_EQ(f.count, 2u);
    }
  }
  EXPECT_EQ(total, 7u);
}

TEST(DataBlockTest, FinalizeOnEmptyBlock) {
  DataBlock block;
  block.Finalize();
  EXPECT_EQ(block.size(), 0u);
  EXPECT_EQ(block.cardinality(), 0u);
}

TEST(DataBlockTest, MarkSplitTargetsOneKey) {
  DataBlock block;
  block.Append(Tuple{0, 1, 1.0});
  block.Append(Tuple{0, 2, 1.0});
  block.Finalize();
  block.MarkSplit(2);
  for (const auto& f : block.fragments()) {
    EXPECT_EQ(f.split, f.key == 2);
  }
}

TEST(PartitionedBatchTest, ComputeSplitFlagsAcrossBlocks) {
  PartitionedBatch batch;
  DataBlock a(0), b(1);
  a.Append(Tuple{0, 1, 1.0});
  a.Append(Tuple{0, 2, 1.0});
  b.Append(Tuple{0, 1, 1.0});
  b.Append(Tuple{0, 3, 1.0});
  a.Finalize();
  b.Finalize();
  batch.blocks.push_back(std::move(a));
  batch.blocks.push_back(std::move(b));
  batch.num_keys = 3;
  uint64_t split = batch.ComputeSplitFlags();
  EXPECT_EQ(split, 1u);  // only key 1 spans both blocks
  for (const auto& block : batch.blocks) {
    for (const auto& f : block.fragments()) {
      EXPECT_EQ(f.split, f.key == 1) << "key " << f.key;
    }
  }
}

TEST(PartitionedBatchTest, ComputeSplitFlagsEmptyBatch) {
  PartitionedBatch batch;
  EXPECT_EQ(batch.ComputeSplitFlags(), 0u);
}

}  // namespace
}  // namespace prompt
