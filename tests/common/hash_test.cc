#include "common/hash.h"

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

namespace prompt {
namespace {

TEST(HashTest, Mix64IsDeterministic) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
  EXPECT_NE(Mix64(12345), Mix64(12346));
}

TEST(HashTest, Mix64IsInjectiveOnSample) {
  // Mix64 is a bijection on uint64; verify no collisions over a dense range.
  std::unordered_set<uint64_t> seen;
  for (uint64_t i = 0; i < 100000; ++i) {
    EXPECT_TRUE(seen.insert(Mix64(i)).second) << "collision at " << i;
  }
}

TEST(HashTest, SeedsBehaveAsIndependentFunctions) {
  // The d-choices partitioners rely on different seeds giving different
  // block assignments for the same key.
  int differing = 0;
  constexpr int kTrials = 1000;
  for (uint64_t k = 0; k < kTrials; ++k) {
    if (HashKey(k, 1) % 16 != HashKey(k, 2) % 16) ++differing;
  }
  // Two independent uniform choices over 16 differ with prob 15/16.
  EXPECT_GT(differing, kTrials * 8 / 10);
}

TEST(HashTest, HashKeyDistributesUniformly) {
  constexpr int kBuckets = 8;
  constexpr int kKeys = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (uint64_t k = 0; k < kKeys; ++k) {
    ++counts[HashKey(k) % kBuckets];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kKeys / kBuckets, kKeys / kBuckets * 0.05);
  }
}

TEST(HashTest, HashBytesMatchesOnEqualContent) {
  EXPECT_EQ(HashBytes("taxi-medallion-42"), HashBytes("taxi-medallion-42"));
  EXPECT_NE(HashBytes("word-a"), HashBytes("word-b"));
  EXPECT_NE(HashBytes("word-a", 1), HashBytes("word-a", 2));
}

TEST(HashTest, HashBytesEmptyIsStable) {
  EXPECT_EQ(HashBytes(""), HashBytes(std::string_view{}));
}

}  // namespace
}  // namespace prompt
