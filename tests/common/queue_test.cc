#include "common/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace prompt {
namespace {

TEST(BlockingQueueTest, PushPopSingleThread) {
  BlockingQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
}

TEST(BlockingQueueTest, TryPushFailsWhenFull) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BlockingQueueTest, TryPopEmptyReturnsNullopt) {
  BlockingQueue<int> q(2);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, CloseUnblocksConsumers) {
  BlockingQueue<int> q(2);
  std::thread consumer([&q] {
    auto v = q.Pop();
    EXPECT_FALSE(v.has_value());
  });
  q.Close();
  consumer.join();
}

TEST(BlockingQueueTest, CloseDrainsRemainingItems) {
  BlockingQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, MpmcTransfersAllItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 5000;
  BlockingQueue<int> q(64);
  std::atomic<long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum += *v;
        ++received;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), total);
  EXPECT_EQ(sum.load(), static_cast<long>(total) * (total - 1) / 2);
}

}  // namespace
}  // namespace prompt
