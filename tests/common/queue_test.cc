#include "common/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace prompt {
namespace {

TEST(BlockingQueueTest, PushPopSingleThread) {
  BlockingQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
}

TEST(BlockingQueueTest, TryPushFailsWhenFull) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BlockingQueueTest, TryPopEmptyReturnsNullopt) {
  BlockingQueue<int> q(2);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, CloseUnblocksConsumers) {
  BlockingQueue<int> q(2);
  std::thread consumer([&q] {
    auto v = q.Pop();
    EXPECT_FALSE(v.has_value());
  });
  q.Close();
  consumer.join();
}

TEST(BlockingQueueTest, CloseDrainsRemainingItems) {
  BlockingQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, MpmcTransfersAllItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 5000;
  BlockingQueue<int> q(64);
  std::atomic<long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum += *v;
        ++received;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), total);
  EXPECT_EQ(sum.load(), static_cast<long>(total) * (total - 1) / 2);
}

TEST(BlockingQueueTest, CloseUnblocksProducerBlockedOnFullQueue) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.Push(0));  // queue now full
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    // Blocks on the full queue until Close(), which must fail the push
    // rather than wedge the thread.
    EXPECT_FALSE(q.Push(1));
    returned.store(true);
  });
  // Give the producer time to reach the blocking wait before closing.
  while (q.size() != 1) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  producer.join();
  EXPECT_TRUE(returned.load());
  // The item pushed before Close is still drainable.
  EXPECT_EQ(q.Pop(), 0);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, CloseWhileConsumersAndProducersBlocked) {
  BlockingQueue<int> q(2);
  q.Push(1);
  q.Push(2);  // full: producers below will block
  std::vector<std::thread> threads;
  std::atomic<int> popped{0};
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&q] { q.Push(100); });  // may succeed or fail
  }
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] {
      while (q.Pop().has_value()) ++popped;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  for (auto& t : threads) t.join();
  // Everything that was accepted must have been delivered; nobody deadlocks.
  EXPECT_GE(popped.load(), 2);
  EXPECT_LE(popped.load(), 5);
}

// Capacity-1 ping-pong: maximal full/empty contention. Every accepted item
// must come out exactly once and in FIFO order per producer.
TEST(BlockingQueueTest, FullEmptyRaceCapacityOne) {
  constexpr int kItems = 20000;
  BlockingQueue<int> q(1);
  std::thread producer([&q] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.Push(i));
    q.Close();
  });
  int expected = 0;
  while (auto v = q.Pop()) {
    ASSERT_EQ(*v, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

// TryPush/TryPop hammering alongside blocking ops must neither lose nor
// duplicate items.
TEST(BlockingQueueTest, MixedTryAndBlockingOps) {
  constexpr int kPerProducer = 10000;
  BlockingQueue<int> q(8);
  std::atomic<long> pushed_sum{0};
  std::atomic<long> popped_sum{0};
  std::atomic<int> popped_count{0};

  std::thread blocking_producer([&] {
    for (int i = 0; i < kPerProducer; ++i) {
      ASSERT_TRUE(q.Push(i));
      pushed_sum += i;
    }
  });
  std::thread try_producer([&] {
    for (int i = 0; i < kPerProducer; ++i) {
      while (!q.TryPush(i)) std::this_thread::yield();
      pushed_sum += i;
    }
  });
  std::thread blocking_consumer([&] {
    while (auto v = q.Pop()) {
      popped_sum += *v;
      ++popped_count;
    }
  });
  std::thread try_consumer([&] {
    for (;;) {
      if (auto v = q.TryPop()) {
        popped_sum += *v;
        ++popped_count;
      } else if (q.closed()) {
        return;
      } else {
        std::this_thread::yield();
      }
    }
  });
  blocking_producer.join();
  try_producer.join();
  q.Close();
  blocking_consumer.join();
  try_consumer.join();
  // Drain any stragglers left when the try-consumer saw closed() early.
  while (auto v = q.TryPop()) {
    popped_sum += *v;
    ++popped_count;
  }
  EXPECT_EQ(popped_count.load(), 2 * kPerProducer);
  EXPECT_EQ(popped_sum.load(), pushed_sum.load());
}

}  // namespace
}  // namespace prompt
