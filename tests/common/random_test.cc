#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace prompt {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
  }
  bool any_diff = false;
  Rng a2(7);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(2);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ExponentialHasExpectedMean) {
  Rng rng(3);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(4);
  double sum = 0, sq = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.NextGaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / kN;
  double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(ZipfTest, UniformWhenZeroExponent) {
  Rng rng(5);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, kN / 10, kN / 10 * 0.1);
}

TEST(ZipfTest, RanksStayInRange) {
  Rng rng(6);
  ZipfSampler zipf(1000, 1.5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 1000u);
  }
}

// Property sweep: empirical rank frequencies track the exact PMF across
// exponents, including z == 1 (the log-form special case).
class ZipfSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSweepTest, EmpiricalMatchesPmf) {
  const double z = GetParam();
  constexpr uint64_t kN = 50;
  constexpr int kSamples = 200000;
  Rng rng(42);
  ZipfSampler zipf(kN, z);
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(rng)];
  for (uint64_t r = 0; r < 5; ++r) {
    double expected = zipf.Pmf(r) * kSamples;
    EXPECT_NEAR(counts[r], expected, std::max(40.0, expected * 0.08))
        << "rank " << r << " z=" << z;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfSweepTest,
                         ::testing::Values(0.1, 0.5, 0.9, 1.0, 1.2, 1.5, 2.0));

TEST(ZipfTest, HighSkewConcentratesOnHead) {
  Rng rng(7);
  ZipfSampler zipf(100000, 1.8);
  int head = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (zipf.Sample(rng) < 10) ++head;
  }
  EXPECT_GT(head, kN / 2);  // top-10 ranks dominate at z=1.8
}

TEST(PermutationTest, IsAPermutation) {
  Rng rng(8);
  auto perm = RandomPermutation(1000, rng);
  std::vector<bool> seen(1000, false);
  for (uint64_t v : perm) {
    ASSERT_LT(v, 1000u);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

}  // namespace
}  // namespace prompt
