#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace prompt {
namespace {

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::Invalid("not positive");
  return x;
}

Result<int> Doubled(int x) {
  PROMPT_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

Status CheckPositive(int x) {
  PROMPT_RETURN_NOT_OK(ParsePositive(x).status());
  return Status::OK();
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::KeyError("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsKeyError());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.ValueOr("fallback"), "hello");
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> bad = Doubled(-3);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalid());
}

TEST(ResultTest, AssignOrReturnUnwrapsValue) {
  Result<int> good = Doubled(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
}

TEST(ResultTest, ReturnNotOkMacro) {
  EXPECT_TRUE(CheckPositive(1).ok());
  EXPECT_TRUE(CheckPositive(0).IsInvalid());
}

TEST(ResultTest, VectorValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace prompt
