#include "common/flags.h"

#include <gtest/gtest.h>

namespace prompt {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagParser(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, StringFlags) {
  auto flags = Parse({"--dataset=Tweets", "--technique=Prompt"});
  EXPECT_EQ(flags.GetString("dataset", "x"), "Tweets");
  EXPECT_EQ(flags.GetString("technique", "x"), "Prompt");
  EXPECT_EQ(flags.GetString("missing", "fallback"), "fallback");
}

TEST(FlagsTest, IntFlags) {
  auto flags = Parse({"--batches=42", "--bad=4x2"});
  EXPECT_EQ(*flags.GetInt("batches", 0), 42);
  EXPECT_EQ(*flags.GetInt("missing", 7), 7);
  EXPECT_TRUE(flags.GetInt("bad", 0).status().IsInvalid());
}

TEST(FlagsTest, DoubleFlags) {
  auto flags = Parse({"--rate=1.5e4", "--bad=abc"});
  EXPECT_DOUBLE_EQ(*flags.GetDouble("rate", 0), 15000.0);
  EXPECT_TRUE(flags.GetDouble("bad", 0).status().IsInvalid());
}

TEST(FlagsTest, BoolFlags) {
  auto flags =
      Parse({"--elastic", "--metrics=false", "--quiet=yes", "--bad=maybe"});
  EXPECT_TRUE(*flags.GetBool("elastic", false));
  EXPECT_FALSE(*flags.GetBool("metrics", true));
  EXPECT_TRUE(*flags.GetBool("quiet", false));
  EXPECT_FALSE(*flags.GetBool("missing", false));
  EXPECT_TRUE(flags.GetBool("bad", false).status().IsInvalid());
}

TEST(FlagsTest, PositionalArguments) {
  auto flags = Parse({"--a=1", "run", "now"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "run");
  EXPECT_EQ(flags.positional()[1], "now");
}

TEST(FlagsTest, UnknownFlagsAreReported) {
  auto flags = Parse({"--known=1", "--typo=2"});
  flags.GetInt("known", 0);
  auto unknown = flags.UnknownFlags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(FlagsTest, HasDetectsPresence) {
  auto flags = Parse({"--x=1"});
  EXPECT_TRUE(flags.Has("x"));
  EXPECT_FALSE(flags.Has("y"));
}

TEST(FlagsTest, EmptyValue) {
  auto flags = Parse({"--name="});
  EXPECT_EQ(flags.GetString("name", "z"), "");
}

}  // namespace
}  // namespace prompt
