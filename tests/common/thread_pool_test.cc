#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

namespace prompt {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitIdleIsABarrier) {
  ThreadPool pool(2);
  std::atomic<int> phase1{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&phase1] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ++phase1;
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(phase1.load(), 50);  // nothing still in flight
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      int now = ++concurrent;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      --concurrent;
    });
  }
  pool.WaitIdle();
  EXPECT_GT(peak.load(), 1);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Submit([] {});
  pool.Shutdown();
  pool.Shutdown();
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();
  SUCCEED();
}

TEST(ThreadPoolTest, ReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

}  // namespace
}  // namespace prompt
