#include "common/robin_hood_map.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.h"

namespace prompt {
namespace {

TEST(RobinHoodMapTest, InsertAndFind) {
  RobinHoodMap<uint64_t> map;
  EXPECT_TRUE(map.empty());
  for (uint64_t k = 0; k < 100; ++k) {
    bool inserted = false;
    map.GetOrInsert(k, &inserted) = k * 10;
    EXPECT_TRUE(inserted) << k;
  }
  EXPECT_EQ(map.size(), 100u);
  for (uint64_t k = 0; k < 100; ++k) {
    const uint64_t* v = map.Find(k);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k * 10);
  }
  EXPECT_EQ(map.Find(1000), nullptr);
}

TEST(RobinHoodMapTest, GetOrInsertIsIdempotent) {
  RobinHoodMap<int> map;
  bool inserted = false;
  map.GetOrInsert(42, &inserted) = 7;
  EXPECT_TRUE(inserted);
  int& again = map.GetOrInsert(42, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(again, 7);
  EXPECT_EQ(map.size(), 1u);
}

TEST(RobinHoodMapTest, GrowthPreservesAllEntries) {
  RobinHoodMap<uint64_t> map;
  const size_t initial_capacity = map.capacity();
  const uint64_t n = 10000;  // forces several doublings
  for (uint64_t k = 0; k < n; ++k) map.GetOrInsert(k * 7919) = k;
  EXPECT_GT(map.capacity(), initial_capacity);
  // Power-of-two capacity.
  EXPECT_EQ(map.capacity() & (map.capacity() - 1), 0u);
  // Load factor stays under the 7/8 growth threshold.
  EXPECT_LE(map.size() * 8, map.capacity() * 7);
  for (uint64_t k = 0; k < n; ++k) {
    const uint64_t* v = map.Find(k * 7919);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k);
  }
}

TEST(RobinHoodMapTest, ProbeDistancesStayShort) {
  RobinHoodMap<uint64_t> map;
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) map.GetOrInsert(rng.Next()) = 1;
  // Robin-hood's displacement equalization keeps the worst probe sequence
  // short even at ~87% peak load; a plain linear probe would show clusters
  // hundreds long.
  EXPECT_LE(map.MaxProbeDistance(), 64u);
}

TEST(RobinHoodMapTest, EraseRemovesAndBackwardShiftKeepsOthersReachable) {
  RobinHoodMap<uint64_t> map;
  const uint64_t n = 4096;
  for (uint64_t k = 0; k < n; ++k) map.GetOrInsert(k) = k;
  // Erase every third key; everything else must remain reachable.
  for (uint64_t k = 0; k < n; k += 3) EXPECT_TRUE(map.Erase(k)) << k;
  EXPECT_FALSE(map.Erase(0));  // already gone
  for (uint64_t k = 0; k < n; ++k) {
    const uint64_t* v = map.Find(k);
    if (k % 3 == 0) {
      EXPECT_EQ(v, nullptr) << k;
    } else {
      ASSERT_NE(v, nullptr) << k;
      EXPECT_EQ(*v, k);
    }
  }
  EXPECT_EQ(map.size(), n - (n + 2) / 3);
}

TEST(RobinHoodMapTest, ChurnMatchesStdMap) {
  RobinHoodMap<uint64_t> map;
  std::map<uint64_t, uint64_t> truth;
  Rng rng(11);
  for (int i = 0; i < 200000; ++i) {
    const uint64_t key = rng.NextBounded(5000);
    switch (rng.NextBounded(3)) {
      case 0:
      case 1: {  // upsert
        map.GetOrInsert(key) = i;
        truth[key] = static_cast<uint64_t>(i);
        break;
      }
      case 2: {  // erase
        const bool erased = map.Erase(key);
        EXPECT_EQ(erased, truth.erase(key) > 0) << "iter " << i;
        break;
      }
    }
  }
  EXPECT_EQ(map.size(), truth.size());
  size_t visited = 0;
  map.ForEach([&](uint64_t key, const uint64_t& value) {
    ++visited;
    auto it = truth.find(key);
    ASSERT_NE(it, truth.end()) << key;
    EXPECT_EQ(value, it->second) << key;
  });
  EXPECT_EQ(visited, truth.size());
}

TEST(RobinHoodMapTest, ClearKeepsCapacity) {
  RobinHoodMap<int> map;
  for (uint64_t k = 0; k < 1000; ++k) map.GetOrInsert(k) = 1;
  const size_t cap = map.capacity();
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(map.Find(5), nullptr);
  map.GetOrInsert(5) = 9;
  EXPECT_EQ(*map.Find(5), 9);
}

TEST(RobinHoodMapTest, CapacityBytesTracksStorage) {
  RobinHoodMap<uint64_t> map;
  const size_t before = map.capacity_bytes();
  for (uint64_t k = 0; k < 10000; ++k) map.GetOrInsert(k) = k;
  EXPECT_GT(map.capacity_bytes(), before);
}

}  // namespace
}  // namespace prompt
