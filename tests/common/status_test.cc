#include "common/status.h"

#include <gtest/gtest.h>

namespace prompt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Invalid("bad partition count");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalid());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad partition count");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad partition count");
}

TEST(StatusTest, AllFactoriesMapToPredicates) {
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::KeyError("x").IsKeyError());
  EXPECT_TRUE(Status::CapacityError("x").IsCapacityError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::KeyError("missing key 7");
  Status copy = s;
  EXPECT_TRUE(copy.IsKeyError());
  EXPECT_EQ(copy.message(), "missing key 7");
  EXPECT_EQ(s, copy);
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status s = Status::IOError("disk");
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsIOError());
}

TEST(StatusTest, AssignmentOverwrites) {
  Status s = Status::Invalid("a");
  s = Status::OK();
  EXPECT_TRUE(s.ok());
  s = Status::Unknown("b");
  EXPECT_EQ(s.code(), StatusCode::kUnknownError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Invalid("x"), Status::Invalid("x"));
  EXPECT_FALSE(Status::Invalid("x") == Status::Invalid("y"));
  EXPECT_FALSE(Status::Invalid("x") == Status::KeyError("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCapacityError),
               "Capacity error");
}

}  // namespace
}  // namespace prompt
