#include "common/flat_map.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/random.h"

namespace prompt {
namespace {

TEST(FlatMapTest, InsertAndFind) {
  FlatMap<int> map;
  map.GetOrInsert(1) = 10;
  map.GetOrInsert(2) = 20;
  ASSERT_NE(map.Find(1), nullptr);
  EXPECT_EQ(*map.Find(1), 10);
  EXPECT_EQ(*map.Find(2), 20);
  EXPECT_EQ(map.Find(3), nullptr);
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMapTest, GetOrInsertReportsInsertion) {
  FlatMap<int> map;
  bool inserted = false;
  map.GetOrInsert(5, &inserted);
  EXPECT_TRUE(inserted);
  map.GetOrInsert(5, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, DefaultConstructsValue) {
  FlatMap<uint64_t> map;
  EXPECT_EQ(map.GetOrInsert(9), 0u);
  ++map.GetOrInsert(9);
  EXPECT_EQ(*map.Find(9), 1u);
}

TEST(FlatMapTest, GrowsBeyondInitialCapacity) {
  FlatMap<uint64_t> map(4);
  for (uint64_t k = 0; k < 10000; ++k) map.GetOrInsert(k) = k * 2;
  EXPECT_EQ(map.size(), 10000u);
  for (uint64_t k = 0; k < 10000; ++k) {
    ASSERT_NE(map.Find(k), nullptr) << k;
    EXPECT_EQ(*map.Find(k), k * 2);
  }
}

TEST(FlatMapTest, ClearRetainsUsability) {
  FlatMap<int> map;
  for (uint64_t k = 0; k < 100; ++k) map.GetOrInsert(k) = 1;
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(5), nullptr);
  map.GetOrInsert(5) = 7;
  EXPECT_EQ(*map.Find(5), 7);
}

TEST(FlatMapTest, ForEachVisitsAllEntriesOnce) {
  FlatMap<uint64_t> map;
  for (uint64_t k = 100; k < 200; ++k) map.GetOrInsert(k) = k;
  uint64_t visits = 0, key_sum = 0;
  map.ForEach([&](uint64_t k, uint64_t v) {
    ++visits;
    key_sum += k;
    EXPECT_EQ(k, v);
  });
  EXPECT_EQ(visits, 100u);
  EXPECT_EQ(key_sum, (100 + 199) * 100 / 2);
}

TEST(FlatMapTest, MatchesUnorderedMapUnderRandomOps) {
  FlatMap<int> map;
  std::unordered_map<uint64_t, int> reference;
  Rng rng(99);
  for (int i = 0; i < 50000; ++i) {
    uint64_t key = rng.NextBounded(5000);
    int delta = static_cast<int>(rng.NextBounded(10));
    map.GetOrInsert(key) += delta;
    reference[key] += delta;
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [k, v] : reference) {
    ASSERT_NE(map.Find(k), nullptr);
    EXPECT_EQ(*map.Find(k), v);
  }
}

TEST(FlatMapTest, EraseRemovesAndReportsPresence) {
  FlatMap<int> map;
  map.GetOrInsert(1) = 10;
  map.GetOrInsert(2) = 20;
  EXPECT_TRUE(map.Erase(1));
  EXPECT_EQ(map.Find(1), nullptr);
  EXPECT_FALSE(map.Erase(1));  // already gone
  EXPECT_FALSE(map.Erase(7));  // never present
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.Find(2), 20);
}

TEST(FlatMapTest, EraseDoesNotBreakProbeChains) {
  // Three keys colliding into one probe chain; erasing the middle one must
  // leave the later chain members findable (tombstone, not empty).
  FlatMap<int> map(4);
  std::vector<uint64_t> chain;
  // Find keys that land on the same initial slot.
  const size_t cap = map.capacity();
  const size_t want = HashKey(1) & (cap - 1);
  for (uint64_t k = 1; chain.size() < 3 && k < 100000; ++k) {
    if ((HashKey(k) & (cap - 1)) == want) chain.push_back(k);
  }
  ASSERT_EQ(chain.size(), 3u);
  for (uint64_t k : chain) map.GetOrInsert(k) = static_cast<int>(k);
  ASSERT_EQ(map.capacity(), cap) << "grew during setup; collisions invalid";
  map.Erase(chain[1]);
  EXPECT_NE(map.Find(chain[0]), nullptr);
  EXPECT_NE(map.Find(chain[2]), nullptr);
  EXPECT_EQ(map.Find(chain[1]), nullptr);
}

TEST(FlatMapTest, ReinsertAfterEraseReclaimsTombstone) {
  FlatMap<int> map(8);
  map.GetOrInsert(42) = 1;
  EXPECT_TRUE(map.Erase(42));
  EXPECT_EQ(map.tombstones(), 1u);
  map.GetOrInsert(42) = 2;  // must reclaim the tombstone, not shadow it
  EXPECT_EQ(map.tombstones(), 0u);
  EXPECT_EQ(*map.Find(42), 2);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, ChurnOnlyWorkloadStaysBounded) {
  // Insert+erase a fresh key each step: live size stays 1, but every erase
  // leaves a tombstone. Unaccounted tombstones would either degrade Find to
  // a full-table scan (chains never hit an empty slot) or grow the table
  // without bound; tombstone-aware rehash keeps capacity at its floor.
  FlatMap<int> map(8);
  const size_t initial_cap = map.capacity();
  for (uint64_t k = 0; k < 200000; ++k) {
    map.GetOrInsert(k) = static_cast<int>(k);
    EXPECT_TRUE(map.Erase(k));
  }
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), initial_cap) << "churn must not grow the table";
  EXPECT_LT(map.tombstones(), map.capacity());
  // Still a working map.
  map.GetOrInsert(7) = 7;
  EXPECT_EQ(*map.Find(7), 7);
}

TEST(FlatMapTest, MixedChurnMatchesReference) {
  FlatMap<int> map;
  std::unordered_map<uint64_t, int> reference;
  Rng rng(123);
  for (int i = 0; i < 100000; ++i) {
    uint64_t key = rng.NextBounded(2000);
    if (rng.NextBounded(3) == 0) {
      EXPECT_EQ(map.Erase(key), reference.erase(key) > 0) << "key " << key;
    } else {
      int delta = static_cast<int>(rng.NextBounded(10));
      map.GetOrInsert(key) += delta;
      reference[key] += delta;
    }
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [k, v] : reference) {
    ASSERT_NE(map.Find(k), nullptr) << k;
    EXPECT_EQ(*map.Find(k), v);
  }
}

TEST(FlatMapTest, ClearResetsTombstones) {
  FlatMap<int> map;
  for (uint64_t k = 0; k < 50; ++k) map.GetOrInsert(k) = 1;
  for (uint64_t k = 0; k < 50; ++k) map.Erase(k);
  EXPECT_GT(map.tombstones(), 0u);
  map.Clear();
  EXPECT_EQ(map.tombstones(), 0u);
  EXPECT_EQ(map.size(), 0u);
}

TEST(FlatMapTest, HandlesAdversarialKeys) {
  // Keys differing only in high bits; linear probing must still separate.
  FlatMap<int> map;
  for (uint64_t k = 0; k < 64; ++k) map.GetOrInsert(k << 58) = static_cast<int>(k);
  for (uint64_t k = 0; k < 64; ++k) {
    ASSERT_NE(map.Find(k << 58), nullptr);
    EXPECT_EQ(*map.Find(k << 58), static_cast<int>(k));
  }
}

}  // namespace
}  // namespace prompt
