#include "common/flat_map.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/random.h"

namespace prompt {
namespace {

TEST(FlatMapTest, InsertAndFind) {
  FlatMap<int> map;
  map.GetOrInsert(1) = 10;
  map.GetOrInsert(2) = 20;
  ASSERT_NE(map.Find(1), nullptr);
  EXPECT_EQ(*map.Find(1), 10);
  EXPECT_EQ(*map.Find(2), 20);
  EXPECT_EQ(map.Find(3), nullptr);
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMapTest, GetOrInsertReportsInsertion) {
  FlatMap<int> map;
  bool inserted = false;
  map.GetOrInsert(5, &inserted);
  EXPECT_TRUE(inserted);
  map.GetOrInsert(5, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, DefaultConstructsValue) {
  FlatMap<uint64_t> map;
  EXPECT_EQ(map.GetOrInsert(9), 0u);
  ++map.GetOrInsert(9);
  EXPECT_EQ(*map.Find(9), 1u);
}

TEST(FlatMapTest, GrowsBeyondInitialCapacity) {
  FlatMap<uint64_t> map(4);
  for (uint64_t k = 0; k < 10000; ++k) map.GetOrInsert(k) = k * 2;
  EXPECT_EQ(map.size(), 10000u);
  for (uint64_t k = 0; k < 10000; ++k) {
    ASSERT_NE(map.Find(k), nullptr) << k;
    EXPECT_EQ(*map.Find(k), k * 2);
  }
}

TEST(FlatMapTest, ClearRetainsUsability) {
  FlatMap<int> map;
  for (uint64_t k = 0; k < 100; ++k) map.GetOrInsert(k) = 1;
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(5), nullptr);
  map.GetOrInsert(5) = 7;
  EXPECT_EQ(*map.Find(5), 7);
}

TEST(FlatMapTest, ForEachVisitsAllEntriesOnce) {
  FlatMap<uint64_t> map;
  for (uint64_t k = 100; k < 200; ++k) map.GetOrInsert(k) = k;
  uint64_t visits = 0, key_sum = 0;
  map.ForEach([&](uint64_t k, uint64_t v) {
    ++visits;
    key_sum += k;
    EXPECT_EQ(k, v);
  });
  EXPECT_EQ(visits, 100u);
  EXPECT_EQ(key_sum, (100 + 199) * 100 / 2);
}

TEST(FlatMapTest, MatchesUnorderedMapUnderRandomOps) {
  FlatMap<int> map;
  std::unordered_map<uint64_t, int> reference;
  Rng rng(99);
  for (int i = 0; i < 50000; ++i) {
    uint64_t key = rng.NextBounded(5000);
    int delta = static_cast<int>(rng.NextBounded(10));
    map.GetOrInsert(key) += delta;
    reference[key] += delta;
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [k, v] : reference) {
    ASSERT_NE(map.Find(k), nullptr);
    EXPECT_EQ(*map.Find(k), v);
  }
}

TEST(FlatMapTest, HandlesAdversarialKeys) {
  // Keys differing only in high bits; linear probing must still separate.
  FlatMap<int> map;
  for (uint64_t k = 0; k < 64; ++k) map.GetOrInsert(k << 58) = static_cast<int>(k);
  for (uint64_t k = 0; k < 64; ++k) {
    ASSERT_NE(map.Find(k << 58), nullptr);
    EXPECT_EQ(*map.Find(k << 58), static_cast<int>(k));
  }
}

}  // namespace
}  // namespace prompt
