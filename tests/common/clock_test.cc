#include "common/clock.h"

#include <gtest/gtest.h>

#include <thread>

namespace prompt {
namespace {

TEST(ClockTest, UnitHelpers) {
  EXPECT_EQ(Millis(3), 3000);
  EXPECT_EQ(Seconds(2.0), 2000000);
  EXPECT_DOUBLE_EQ(ToSeconds(1500000), 1.5);
}

TEST(VirtualClockTest, StartsAtGivenTime) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
}

TEST(VirtualClockTest, AdvanceAddsDelta) {
  VirtualClock clock;
  clock.Advance(250);
  clock.Advance(750);
  EXPECT_EQ(clock.Now(), 1000);
}

TEST(VirtualClockTest, AdvanceToNeverMovesBackwards) {
  VirtualClock clock(500);
  clock.AdvanceTo(400);
  EXPECT_EQ(clock.Now(), 500);
  clock.AdvanceTo(900);
  EXPECT_EQ(clock.Now(), 900);
}

TEST(SystemClockTest, MonotonicallyIncreases) {
  SystemClock clock;
  TimeMicros a = clock.Now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  TimeMicros b = clock.Now();
  EXPECT_GT(b, a);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  TimeMicros elapsed = watch.ElapsedMicros();
  EXPECT_GE(elapsed, 4000);
  watch.Restart();
  EXPECT_LT(watch.ElapsedMicros(), elapsed);
}

}  // namespace
}  // namespace prompt
