#include "tenant/multi_tenant_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "query/parser.h"
#include "workload/composite_source.h"
#include "workload/key_map.h"
#include "workload/sources.h"

namespace prompt {
namespace {

std::shared_ptr<const RateProfile> Constant(double rate) {
  return std::make_shared<ConstantRate>(rate);
}

std::unique_ptr<TupleSource> MakeSource(double rate, double z = 1.0,
                                        uint64_t cardinality = 500,
                                        uint64_t seed = 42) {
  ZipfKeyedSource::Params params;
  params.cardinality = cardinality;
  params.zipf = z;
  params.seed = seed;
  params.rate = Constant(rate);
  return std::make_unique<SynDSource>(std::move(params));
}

CompiledQuery CountQuery(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().message();
  return q.ValueOrDie();
}

TenantQuerySpec MakeSpec(const std::string& id, uint32_t weight,
                         const std::string& query_text,
                         KeyFilter filter = {}) {
  TenantQuerySpec spec;
  spec.id = id;
  spec.weight = weight;
  spec.technique = PartitionerType::kHash;
  spec.filter = filter;
  spec.query = CountQuery(query_text);
  return spec;
}

KeyFilter ModFilter(uint64_t modulo, uint64_t residue) {
  KeyFilter f;
  f.kind = KeyFilter::Kind::kModulo;
  f.modulo = modulo;
  f.residue = residue;
  return f;
}

MultiTenantEngineOptions FastOptions(uint32_t total_slots) {
  MultiTenantEngineOptions opts;
  opts.batch_interval = Millis(200);
  opts.total_slots = total_slots;
  opts.map_tasks = 4;
  opts.reduce_tasks = 4;
  return opts;
}

// Satellite 1's engine-level counterpart: a single kAll tenant through the
// multi-tenant path must be indistinguishable from MicroBatchEngine —
// same per-batch tuple counts and latencies, bit-identical window answers.
TEST(MultiTenantEngineTest, SingleTenantMatchesMicroBatchEngine) {
  const std::string kQuery = "SELECT COUNT WINDOW 800MS SLIDE 200MS";

  auto solo_source = MakeSource(20000);
  CompiledQuery q = CountQuery(kQuery);
  JobSpec job = q.job;
  job.window_batches = q.window_batches();
  EngineOptions solo_opts;
  solo_opts.batch_interval = Millis(200);
  solo_opts.map_tasks = 4;
  solo_opts.reduce_tasks = 4;
  solo_opts.cores = 4;
  MicroBatchEngine solo(solo_opts, job,
                        CreatePartitioner(PartitionerType::kHash),
                        solo_source.get());
  RunSummary solo_summary = solo.Run(12);

  auto mt_source = MakeSource(20000);
  auto mt = MultiTenantEngine::Create(FastOptions(/*total_slots=*/4),
                                      {MakeSpec("solo", 1, kQuery)},
                                      mt_source.get());
  ASSERT_TRUE(mt.ok()) << mt.status().message();
  MultiTenantRunSummary mt_summary = mt.ValueOrDie()->Run(12);

  ASSERT_EQ(mt_summary.tenants.size(), 1u);
  const RunSummary& tenant = mt_summary.tenants[0].summary;
  ASSERT_EQ(tenant.batches.size(), solo_summary.batches.size());
  for (size_t i = 0; i < tenant.batches.size(); ++i) {
    EXPECT_EQ(tenant.batches[i].num_tuples, solo_summary.batches[i].num_tuples)
        << "batch " << i;
    EXPECT_EQ(tenant.batches[i].latency, solo_summary.batches[i].latency)
        << "batch " << i;
    EXPECT_EQ(tenant.batches[i].processing_time,
              solo_summary.batches[i].processing_time)
        << "batch " << i;
  }
  // Window aggregates must be bit-identical (same doubles, same keys).
  EXPECT_EQ(mt.ValueOrDie()->window(0).Result(), solo.window().Result());
}

// The isolation core: two tenants on disjoint key slices sharing one stream
// must each compute exactly what they compute alone. KeyMappedSource carves
// the disjoint slices (even/odd keys) out of two independent generators.
TEST(MultiTenantEngineTest, DisjointTenantsMatchTheirSoloRuns) {
  const std::string kQuery = "SELECT COUNT WINDOW 800MS SLIDE 200MS";
  const double kRate = 8000;

  auto run_solo = [&](uint64_t seed, uint64_t add) {
    auto inner = MakeSource(kRate, 1.0, 500, seed);
    KeyMappedSource mapped(inner.get(), 2, add);
    auto mt = MultiTenantEngine::Create(FastOptions(/*total_slots=*/4),
                                        {MakeSpec("solo", 1, kQuery)},
                                        &mapped);
    EXPECT_TRUE(mt.ok()) << mt.status().message();
    MultiTenantRunSummary summary = mt.ValueOrDie()->Run(10);
    return std::make_pair(std::move(summary),
                          mt.ValueOrDie()->window(0).Result());
  };
  auto solo_even = run_solo(7, 0);
  auto solo_odd = run_solo(99, 1);

  // Shared run: both generators interleave into one stream; mod-2 filters
  // route each slice to its tenant. 8 slots at equal weights = 4 each, the
  // same compute the solo runs had.
  auto inner_even = MakeSource(kRate, 1.0, 500, 7);
  auto inner_odd = MakeSource(kRate, 1.0, 500, 99);
  KeyMappedSource even(inner_even.get(), 2, 0);
  KeyMappedSource odd(inner_odd.get(), 2, 1);
  CompositeSource shared({&even, &odd});
  auto mt = MultiTenantEngine::Create(
      FastOptions(/*total_slots=*/8),
      {MakeSpec("even", 1, kQuery, ModFilter(2, 0)),
       MakeSpec("odd", 1, kQuery, ModFilter(2, 1))},
      &shared);
  ASSERT_TRUE(mt.ok()) << mt.status().message();
  MultiTenantRunSummary summary = mt.ValueOrDie()->Run(10);
  ASSERT_EQ(summary.tenants.size(), 2u);

  const std::pair<MultiTenantRunSummary,
                  std::unordered_map<KeyId, double>>* solos[2] = {&solo_even,
                                                                  &solo_odd};
  for (size_t t = 0; t < 2; ++t) {
    const RunSummary& shared_run = summary.tenants[t].summary;
    const RunSummary& solo_run = solos[t]->first.tenants[0].summary;
    ASSERT_EQ(shared_run.batches.size(), solo_run.batches.size());
    for (size_t i = 0; i < shared_run.batches.size(); ++i) {
      EXPECT_EQ(shared_run.batches[i].num_tuples,
                solo_run.batches[i].num_tuples)
          << "tenant " << t << " batch " << i;
      EXPECT_EQ(shared_run.batches[i].latency, solo_run.batches[i].latency)
          << "tenant " << t << " batch " << i;
    }
    EXPECT_EQ(mt.ValueOrDie()->window(t).Result(), solos[t]->second)
        << "tenant " << t;
  }
}

// Sharded ingest must not change any tenant's answer: the merged runs are
// replayed through each tenant's filter in the same per-key order.
TEST(MultiTenantEngineTest, ShardedIngestPreservesTenantAnswers) {
  const std::string kQuery = "SELECT COUNT WINDOW 600MS SLIDE 200MS";

  auto run = [&](uint32_t shards) {
    auto inner_even = MakeSource(6000, 1.0, 500, 7);
    auto inner_odd = MakeSource(6000, 1.2, 500, 99);
    KeyMappedSource even(inner_even.get(), 2, 0);
    KeyMappedSource odd(inner_odd.get(), 2, 1);
    CompositeSource shared({&even, &odd});
    MultiTenantEngineOptions opts = FastOptions(/*total_slots=*/8);
    opts.ingest.shards = shards;
    auto mt = MultiTenantEngine::Create(
        opts,
        {MakeSpec("even", 1, kQuery, ModFilter(2, 0)),
         MakeSpec("odd", 1, kQuery, ModFilter(2, 1))},
        &shared);
    EXPECT_TRUE(mt.ok()) << mt.status().message();
    mt.ValueOrDie()->Run(8);
    return std::make_pair(mt.ValueOrDie()->window(0).Result(),
                          mt.ValueOrDie()->window(1).Result());
  };

  auto direct = run(1);
  auto sharded = run(4);
  EXPECT_EQ(direct.first, sharded.first);
  EXPECT_EQ(direct.second, sharded.second);
}

TEST(MultiTenantEngineTest, WeightsDriveSlotsGranted) {
  auto source = MakeSource(8000);
  auto mt = MultiTenantEngine::Create(
      FastOptions(/*total_slots=*/16),
      {MakeSpec("light", 1, "SELECT COUNT WINDOW 600MS SLIDE 200MS"),
       MakeSpec("heavy", 3, "SELECT COUNT WINDOW 600MS SLIDE 200MS")},
      source.get());
  ASSERT_TRUE(mt.ok()) << mt.status().message();
  MultiTenantRunSummary summary = mt.ValueOrDie()->Run(10);
  // {1,3} over 16 slots allocates {4,12} with the stride handing the one
  // leftover slot to the light tenant every 4th heartbeat (heartbeats 3 and
  // 7 of these 10): 4*10+2 vs 12*10-2. Deterministic, so exact.
  EXPECT_EQ(summary.tenants[0].slots_granted, 42u);
  EXPECT_EQ(summary.tenants[1].slots_granted, 118u);
  // Every batch got an autopsy verdict in the per-tenant cause stream.
  for (const TenantRunResult& t : summary.tenants) {
    EXPECT_EQ(t.causes.size(), 10u);
    uint64_t total = 0;
    for (uint64_t c : t.cause_counts) total += c;
    EXPECT_EQ(total, 10u);
  }
}

TEST(MultiTenantEngineTest, CreateRejectsInvalidConfigurations) {
  auto source = MakeSource(1000);
  const std::string kQuery = "SELECT COUNT WINDOW 600MS SLIDE 200MS";

  // Null source.
  EXPECT_FALSE(MultiTenantEngine::Create(FastOptions(4),
                                         {MakeSpec("a", 1, kQuery)}, nullptr)
                   .ok());
  // No tenants.
  EXPECT_FALSE(MultiTenantEngine::Create(FastOptions(4), {}, source.get()).ok());
  // Duplicate ids (rejected by the scheduler).
  EXPECT_FALSE(MultiTenantEngine::Create(
                   FastOptions(4),
                   {MakeSpec("a", 1, kQuery), MakeSpec("a", 1, kQuery)},
                   source.get())
                   .ok());
  // More tenants than slots: someone would lose their guaranteed slot.
  EXPECT_FALSE(MultiTenantEngine::Create(
                   FastOptions(2),
                   {MakeSpec("a", 1, kQuery), MakeSpec("b", 1, kQuery),
                    MakeSpec("c", 1, kQuery)},
                   source.get())
                   .ok());
}

}  // namespace
}  // namespace prompt
