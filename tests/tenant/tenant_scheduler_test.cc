#include "tenant/tenant_scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace prompt {
namespace {

std::unique_ptr<TenantScheduler> MakeScheduler(
    uint32_t total_slots, const std::vector<uint32_t>& weights) {
  auto s = std::make_unique<TenantScheduler>(
      TenantSchedulerOptions{total_slots});
  for (size_t i = 0; i < weights.size(); ++i) {
    auto added = s->AddTenant("t" + std::to_string(i), weights[i]);
    EXPECT_TRUE(added.ok());
  }
  return s;
}

TEST(TenantSchedulerTest, EqualWeightsSplitThePoolEvenly) {
  auto s = MakeScheduler(16, {1, 1});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(s->AllocateSlots(), (std::vector<uint32_t>{8, 8}));
  }
}

TEST(TenantSchedulerTest, OneToThreeWeightsAllocateFourTwelve) {
  // 16 slots at 1:3 — floors + proportional shares give {4, 11} and leave
  // one leftover slot that the stride rotates 3:1 toward the heavy tenant:
  // {4,12} three heartbeats out of four, {5,11} on the fourth. The exact
  // sequence is deterministic.
  auto s = MakeScheduler(16, {1, 3});
  const std::vector<std::vector<uint32_t>> expected = {
      {4, 12}, {4, 12}, {4, 12}, {5, 11},
      {4, 12}, {4, 12}, {4, 12}, {5, 11},
  };
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(s->AllocateSlots(), expected[i]) << "heartbeat " << i;
  }
}

TEST(TenantSchedulerTest, ThreeTenantWeightsTwoThreeFive) {
  auto s = MakeScheduler(16, {2, 3, 5});
  // floor: 1+2, 1+3, 1+6 = 11 granted of 13 available; the 2 leftover slots
  // go by stride order to the weight-5 then the weight-3 tenant.
  EXPECT_EQ(s->AllocateSlots(), (std::vector<uint32_t>{3, 5, 8}));
}

TEST(TenantSchedulerTest, EverySlotGrantedAndEveryTenantGetsItsFloor) {
  // A 1:1000 weight ratio models a permanently overflowing neighbor: the
  // light tenant still receives its guaranteed slot on every heartbeat
  // (allocation never consults demand, so overflow cannot starve it).
  auto s = MakeScheduler(16, {1, 1000});
  for (int i = 0; i < 100; ++i) {
    const std::vector<uint32_t> slots = s->AllocateSlots();
    uint32_t sum = 0;
    for (uint32_t x : slots) {
      EXPECT_GE(x, 1u);
      sum += x;
    }
    EXPECT_EQ(sum, 16u);
  }
}

TEST(TenantSchedulerTest, RemainderRotatesInStrideOrder) {
  // 4 slots, 3 equal tenants: floors grant 1 each, the one leftover slot
  // must rotate deterministically (pass ties break on the lower index).
  auto s = MakeScheduler(4, {1, 1, 1});
  EXPECT_EQ(s->AllocateSlots(), (std::vector<uint32_t>{2, 1, 1}));
  EXPECT_EQ(s->AllocateSlots(), (std::vector<uint32_t>{1, 2, 1}));
  EXPECT_EQ(s->AllocateSlots(), (std::vector<uint32_t>{1, 1, 2}));
  EXPECT_EQ(s->AllocateSlots(), (std::vector<uint32_t>{2, 1, 1}));
  // Cumulative shares even out over full rotation cycles.
  EXPECT_EQ(s->cumulative_slots(0), 6u);
  EXPECT_EQ(s->cumulative_slots(1), 5u);
  EXPECT_EQ(s->cumulative_slots(2), 5u);
}

TEST(TenantSchedulerTest, CumulativeSharesTrackWeights) {
  auto s = MakeScheduler(10, {1, 4});
  for (int i = 0; i < 1000; ++i) s->AllocateSlots();
  // The guaranteed floor gives the light tenant slightly more than its
  // proportional share on a small pool, so the long-run ratio sits a bit
  // under the 4.0 weight ratio — but must stay close to it.
  const double ratio = static_cast<double>(s->cumulative_slots(1)) /
                       static_cast<double>(s->cumulative_slots(0));
  EXPECT_GT(ratio, 3.3);
  EXPECT_LE(ratio, 4.0);
}

TEST(TenantSchedulerTest, WeightChangeAppliesAtTheNextBatchBoundaryOnly) {
  auto s = MakeScheduler(16, {1, 1});
  EXPECT_EQ(s->AllocateSlots(), (std::vector<uint32_t>{8, 8}));
  ASSERT_TRUE(s->SetWeight(1, 3).ok());
  // Queued, not applied: the live weight is still 1 until AllocateSlots.
  EXPECT_EQ(s->weight(1), 1u);
  EXPECT_EQ(s->pending_weight(1), 3u);
  // The new weights take effect at this boundary. The one leftover slot goes
  // to tenant 0 (both passes tie from the equal-weight era; lower index
  // wins), after which the stride favors the now-heavy tenant 3:1.
  EXPECT_EQ(s->AllocateSlots(), (std::vector<uint32_t>{5, 11}));
  EXPECT_EQ(s->weight(1), 3u);
  EXPECT_EQ(s->AllocateSlots(), (std::vector<uint32_t>{4, 12}));
}

TEST(TenantSchedulerTest, RejectsDuplicateIdsZeroWeightsAndOverflow) {
  TenantScheduler s(TenantSchedulerOptions{2});
  EXPECT_TRUE(s.AddTenant("a", 1).ok());
  EXPECT_FALSE(s.AddTenant("a", 2).ok());  // duplicate id
  EXPECT_FALSE(s.AddTenant("b", 0).ok());  // zero weight
  EXPECT_TRUE(s.AddTenant("b", 1).ok());
  // A third tenant cannot receive its guaranteed slot from a 2-slot pool.
  EXPECT_FALSE(s.AddTenant("c", 1).ok());
  EXPECT_FALSE(s.SetWeight(0, 0).ok());  // zero weight via SetWeight
  EXPECT_FALSE(s.SetWeight(9, 1).ok());  // no such tenant
}

TEST(TenantSchedulerTest, AllocationSequencesAreDeterministic) {
  auto a = MakeScheduler(16, {2, 3, 5});
  auto b = MakeScheduler(16, {2, 3, 5});
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a->AllocateSlots(), b->AllocateSlots()) << "heartbeat " << i;
  }
}

TEST(TenantSchedulerTest, LateJoinerCannotMonopolizeTheRemainder) {
  // A fresh tenant starts at its stride's first tick, not pass 0 — so it
  // competes fairly for leftovers instead of winning every one until its
  // pass catches up with the incumbents'.
  TenantScheduler s(TenantSchedulerOptions{4});
  ASSERT_TRUE(s.AddTenant("a", 1).ok());
  ASSERT_TRUE(s.AddTenant("b", 1).ok());
  for (int i = 0; i < 6; ++i) s.AllocateSlots();
  ASSERT_TRUE(s.AddTenant("c", 1).ok());
  uint32_t c_extra = 0;
  for (int i = 0; i < 6; ++i) {
    const std::vector<uint32_t> slots = s.AllocateSlots();
    if (slots[2] > 1) ++c_extra;
  }
  // One leftover slot per heartbeat across three tenants: the newcomer must
  // not take more than its rotating share of the 6 leftovers.
  EXPECT_LE(c_extra, 3u);
}

}  // namespace
}  // namespace prompt
