// Shared helpers for feeding partitioners with synthetic batches in tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "common/random.h"
#include "core/accumulator_api.h"
#include "core/partitioner.h"
#include "model/tuple.h"

namespace prompt::testing {

/// Generates `n` tuples with Zipf(cardinality, z) keys and timestamps spread
/// evenly over [start, end).
inline std::vector<Tuple> ZipfTuples(uint64_t n, uint64_t cardinality,
                                     double z, TimeMicros start,
                                     TimeMicros end, uint64_t seed = 42) {
  Rng rng(seed);
  ZipfSampler zipf(cardinality, z);
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  const double step = static_cast<double>(end - start) / static_cast<double>(n);
  for (uint64_t i = 0; i < n; ++i) {
    Tuple t;
    t.ts = start + static_cast<TimeMicros>(step * static_cast<double>(i));
    t.key = zipf.Sample(rng);
    t.value = 1.0;
    tuples.push_back(t);
  }
  return tuples;
}

/// Runs a full Begin/OnTuple*/Seal cycle.
inline PartitionedBatch RunBatch(BatchPartitioner& partitioner,
                                 const std::vector<Tuple>& tuples,
                                 uint32_t num_blocks, TimeMicros start,
                                 TimeMicros end, uint64_t batch_id = 0) {
  partitioner.Begin(num_blocks, start, end);
  for (const Tuple& t : tuples) partitioner.OnTuple(t);
  return partitioner.Seal(batch_id);
}

/// Feeds tuples into an accumulator and seals it.
inline AccumulatedBatch Accumulate(Accumulator& acc,
                                   const std::vector<Tuple>& tuples,
                                   TimeMicros start, TimeMicros end) {
  acc.Begin(start, end);
  for (const Tuple& t : tuples) acc.OnTuple(t);
  return acc.Seal();
}

/// Exact per-key histogram of a tuple set.
inline std::map<KeyId, uint64_t> KeyHistogram(const std::vector<Tuple>& tuples) {
  std::map<KeyId, uint64_t> hist;
  for (const Tuple& t : tuples) ++hist[t.key];
  return hist;
}

/// Sum of block sizes and per-key totals across all blocks of a batch; used
/// to assert no tuple was lost or duplicated by a partitioner.
inline std::map<KeyId, uint64_t> BatchKeyHistogram(
    const PartitionedBatch& batch) {
  std::map<KeyId, uint64_t> hist;
  for (const auto& block : batch.blocks) {
    for (const Tuple& t : block.tuples()) ++hist[t.key];
  }
  return hist;
}

}  // namespace prompt::testing
