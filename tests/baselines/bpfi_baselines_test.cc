#include "baselines/bpfi_baselines.h"

#include <gtest/gtest.h>

#include "core/prompt_partitioner.h"
#include "stats/metrics.h"
#include "testing/test_helpers.h"

namespace prompt {
namespace {

using testing::Accumulate;
using testing::KeyHistogram;
using testing::RunBatch;
using testing::ZipfTuples;

constexpr TimeMicros kStart = 0;
constexpr TimeMicros kEnd = Seconds(1);

// The paper's running example (Fig. 5): 385 tuples over 8 keys.
// Frequencies chosen to mirror the figure's shape: a few heavy keys.
std::vector<Tuple> PaperExampleTuples() {
  const uint64_t counts[8] = {120, 85, 60, 50, 30, 20, 12, 8};  // sums to 385
  std::vector<Tuple> tuples;
  TimeMicros ts = kStart;
  for (uint64_t k = 0; k < 8; ++k) {
    for (uint64_t i = 0; i < counts[k]; ++i) {
      tuples.push_back(Tuple{ts++, k + 1, 1.0});
    }
  }
  return tuples;
}

TEST(FfdPlanTest, PacksTightButFragmentsMore) {
  auto acc_ptr = MakeAccumulator(AccumulatorKind::kFlat);
  auto& acc = *acc_ptr;
  auto tuples = PaperExampleTuples();
  auto sealed = Accumulate(acc, tuples, kStart, kEnd);
  auto ffd = BuildFfdPlan(sealed, 4);
  auto prompt_plan = BuildPromptPlan(sealed, 4);

  auto ffd_batch = MaterializePlan(sealed, ffd, 4);
  auto m = ComputeBlockMetrics(ffd_batch);
  // FFD fills bins to capacity: sizes equal (capacity 97, total 385).
  EXPECT_LE(m.bsi, 4.0);
  // Paper Fig. 6c: Prompt fragments only two keys on the running example
  // while keeping equal sizes and near-identical cardinality.
  EXPECT_EQ(prompt_plan.split_keys, 2u);
  EXPECT_GE(ffd.split_keys, 1u);  // the 120-count key cannot fit any bin
}

TEST(FragMinPlanTest, FragmentsAtMostBlocksMinusOneKeys) {
  auto acc_ptr = MakeAccumulator(AccumulatorKind::kFlat);
  auto& acc = *acc_ptr;
  auto tuples = ZipfTuples(20000, 300, 1.2, kStart, kEnd);
  auto sealed = Accumulate(acc, tuples, kStart, kEnd);
  for (uint32_t p : {2u, 4u, 8u}) {
    auto plan = BuildFragMinPlan(sealed, p);
    EXPECT_LE(plan.split_keys, p - 1) << "p=" << p;
  }
}

TEST(FragMinPlanTest, CardinalityIsImbalanced) {
  // The price of minimal fragmentation: late blocks collect the small keys.
  auto acc_ptr = MakeAccumulator(AccumulatorKind::kFlat);
  auto& acc = *acc_ptr;
  auto tuples = ZipfTuples(30000, 3000, 1.3, kStart, kEnd);
  auto sealed = Accumulate(acc, tuples, kStart, kEnd);
  auto fragmin_batch = MaterializePlan(sealed, BuildFragMinPlan(sealed, 4), 4);
  auto prompt_batch = MaterializePlan(sealed, BuildPromptPlan(sealed, 4), 4);
  auto m_fragmin = ComputeBlockMetrics(fragmin_batch);
  auto m_prompt = ComputeBlockMetrics(prompt_batch);
  EXPECT_GT(m_fragmin.bci, 5.0 * std::max(1.0, m_prompt.bci));
}

TEST(BpfiPlansTest, BothConserveTuples) {
  auto acc_ptr = MakeAccumulator(AccumulatorKind::kFlat);
  auto& acc = *acc_ptr;
  auto tuples = ZipfTuples(10000, 150, 1.4, kStart, kEnd);
  auto sealed = Accumulate(acc, tuples, kStart, kEnd);
  auto expected = KeyHistogram(tuples);
  for (auto* build : {&BuildFfdPlan, &BuildFragMinPlan}) {
    auto batch = MaterializePlan(sealed, build(sealed, 6), 6);
    EXPECT_EQ(testing::BatchKeyHistogram(batch), expected);
  }
}

TEST(BpfiPartitionerTest, AdapterRunsFullPipeline) {
  BpfiBaselinePartitioner ffd(BpfiBaselinePartitioner::Kind::kFfd);
  BpfiBaselinePartitioner fragmin(BpfiBaselinePartitioner::Kind::kFragMin);
  EXPECT_STREQ(ffd.name(), "FFD");
  EXPECT_STREQ(fragmin.name(), "FragMin");
  auto tuples = ZipfTuples(5000, 100, 1.0, kStart, kEnd);
  auto b1 = RunBatch(ffd, tuples, 4, kStart, kEnd);
  auto b2 = RunBatch(fragmin, tuples, 4, kStart, kEnd);
  EXPECT_EQ(b1.num_tuples, 5000u);
  EXPECT_EQ(b2.num_tuples, 5000u);
}

TEST(PromptVsBaselinesTest, PromptBalancesAllThreeObjectives) {
  // The Fig. 6 trade-off: Prompt should be at-or-near FFD's size balance,
  // near FragMin's fragmentation, and better than both on cardinality.
  auto acc_ptr = MakeAccumulator(AccumulatorKind::kFlat);
  auto& acc = *acc_ptr;
  auto tuples = ZipfTuples(40000, 800, 1.5, kStart, kEnd);
  auto sealed = Accumulate(acc, tuples, kStart, kEnd);
  const uint32_t p = 4;
  auto m_prompt =
      ComputeBlockMetrics(MaterializePlan(sealed, BuildPromptPlan(sealed, p), p));
  auto m_ffd =
      ComputeBlockMetrics(MaterializePlan(sealed, BuildFfdPlan(sealed, p), p));
  auto m_fragmin = ComputeBlockMetrics(
      MaterializePlan(sealed, BuildFragMinPlan(sealed, p), p));

  EXPECT_LE(m_prompt.bsi, std::max(m_ffd.bsi, 4.0) * 2);
  EXPECT_LE(m_prompt.ksr, m_ffd.ksr + 0.05);
  EXPECT_LE(m_prompt.bci, m_fragmin.bci);
}

}  // namespace
}  // namespace prompt
