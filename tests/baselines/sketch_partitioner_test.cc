#include "baselines/sketch_partitioner.h"

#include <gtest/gtest.h>

#include "core/prompt_partitioner.h"
#include "stats/metrics.h"
#include "testing/test_helpers.h"

namespace prompt {
namespace {

using testing::BatchKeyHistogram;
using testing::KeyHistogram;
using testing::RunBatch;
using testing::ZipfTuples;

constexpr TimeMicros kStart = 0;
constexpr TimeMicros kEnd = Seconds(1);

TEST(SketchPartitionerTest, ConservesTuples) {
  SketchPartitioner partitioner;
  auto tuples = ZipfTuples(20000, 800, 1.3, kStart, kEnd);
  auto batch = RunBatch(partitioner, tuples, 8, kStart, kEnd);
  EXPECT_EQ(BatchKeyHistogram(batch), KeyHistogram(tuples));
  EXPECT_EQ(batch.num_tuples, tuples.size());
  EXPECT_EQ(batch.num_keys, KeyHistogram(tuples).size());
}

TEST(SketchPartitionerTest, SplitsHeavyHittersOnly) {
  SketchPartitioner partitioner;
  partitioner.Begin(4, kStart, kEnd);
  // One dominating key plus light tail.
  for (int i = 0; i < 8000; ++i) partitioner.OnTuple(Tuple{kStart + i, 1, 1.0});
  for (int i = 0; i < 2000; ++i) {
    partitioner.OnTuple(
        Tuple{kStart + 8000 + i, static_cast<KeyId>(100 + i % 500), 1.0});
  }
  auto batch = partitioner.Seal(0);
  int blocks_with_hot = 0;
  for (const auto& block : batch.blocks) {
    for (const auto& f : block.fragments()) {
      if (f.key == 1) {
        ++blocks_with_hot;
        EXPECT_TRUE(f.split);
      }
    }
  }
  EXPECT_EQ(blocks_with_hot, 4);  // round-robined everywhere
  // The light keys stay hashed to single blocks.
  auto m = ComputeBlockMetrics(batch);
  EXPECT_LT(m.split_keys, 5u);
}

TEST(SketchPartitionerTest, BalancesSkewBetterThanHash) {
  auto tuples = ZipfTuples(40000, 5000, 1.6, kStart, kEnd);
  SketchPartitioner sketch;
  auto sketch_batch = RunBatch(sketch, tuples, 8, kStart, kEnd);
  auto sketch_m = ComputeBlockMetrics(sketch_batch);

  // Splitting the sketch's heavy hitters must keep size imbalance well
  // below hashing's (where the hot key pins a whole block).
  PromptPartitioner prompt;
  auto prompt_batch = RunBatch(prompt, tuples, 8, kStart, kEnd);
  auto prompt_m = ComputeBlockMetrics(prompt_batch);
  EXPECT_LT(sketch_m.bsi, 0.5 * sketch_m.avg_block_size);
  // But exact statistics still win on the combined objective.
  EXPECT_LE(prompt_m.mpi, sketch_m.mpi * 1.2);
}

TEST(SketchPartitionerTest, WorksWithTinySketch) {
  SketchPartitionerOptions opts;
  opts.sketch_capacity = 4;
  SketchPartitioner partitioner(opts);
  auto tuples = ZipfTuples(5000, 100, 1.0, kStart, kEnd);
  auto batch = RunBatch(partitioner, tuples, 4, kStart, kEnd);
  EXPECT_EQ(batch.num_tuples, 5000u);
}

TEST(SketchPartitionerTest, ReusableAcrossBatches) {
  SketchPartitioner partitioner;
  for (int i = 0; i < 3; ++i) {
    auto tuples = ZipfTuples(2000, 50, 1.0, i * kEnd, (i + 1) * kEnd, 10 + i);
    auto batch =
        RunBatch(partitioner, tuples, 4, i * kEnd, (i + 1) * kEnd, i);
    EXPECT_EQ(batch.num_tuples, 2000u) << i;
  }
}

}  // namespace
}  // namespace prompt
