#include "baselines/sketch_partitioner.h"

#include <gtest/gtest.h>

#include <array>

#include "core/prompt_partitioner.h"
#include "stats/metrics.h"
#include "testing/test_helpers.h"

namespace prompt {
namespace {

using testing::BatchKeyHistogram;
using testing::KeyHistogram;
using testing::RunBatch;
using testing::ZipfTuples;

constexpr TimeMicros kStart = 0;
constexpr TimeMicros kEnd = Seconds(1);

TEST(SketchPartitionerTest, ConservesTuples) {
  SketchPartitioner partitioner;
  auto tuples = ZipfTuples(20000, 800, 1.3, kStart, kEnd);
  auto batch = RunBatch(partitioner, tuples, 8, kStart, kEnd);
  EXPECT_EQ(BatchKeyHistogram(batch), KeyHistogram(tuples));
  EXPECT_EQ(batch.num_tuples, tuples.size());
  EXPECT_EQ(batch.num_keys, KeyHistogram(tuples).size());
}

TEST(SketchPartitionerTest, SplitsHeavyHittersOnly) {
  SketchPartitioner partitioner;
  partitioner.Begin(4, kStart, kEnd);
  // One dominating key plus light tail.
  for (int i = 0; i < 8000; ++i) partitioner.OnTuple(Tuple{kStart + i, 1, 1.0});
  for (int i = 0; i < 2000; ++i) {
    partitioner.OnTuple(
        Tuple{kStart + 8000 + i, static_cast<KeyId>(100 + i % 500), 1.0});
  }
  auto batch = partitioner.Seal(0);
  int blocks_with_hot = 0;
  for (const auto& block : batch.blocks) {
    for (const auto& f : block.fragments()) {
      if (f.key == 1) {
        ++blocks_with_hot;
        EXPECT_TRUE(f.split);
      }
    }
  }
  EXPECT_EQ(blocks_with_hot, 4);  // round-robined everywhere
  // The light keys stay hashed to single blocks.
  auto m = ComputeBlockMetrics(batch);
  EXPECT_LT(m.split_keys, 5u);
}

TEST(SketchPartitionerTest, BalancesSkewBetterThanHash) {
  auto tuples = ZipfTuples(40000, 5000, 1.6, kStart, kEnd);
  SketchPartitioner sketch;
  auto sketch_batch = RunBatch(sketch, tuples, 8, kStart, kEnd);
  auto sketch_m = ComputeBlockMetrics(sketch_batch);

  // Splitting the sketch's heavy hitters must keep size imbalance well
  // below hashing's (where the hot key pins a whole block).
  PromptPartitioner prompt;
  auto prompt_batch = RunBatch(prompt, tuples, 8, kStart, kEnd);
  auto prompt_m = ComputeBlockMetrics(prompt_batch);
  EXPECT_LT(sketch_m.bsi, 0.5 * sketch_m.avg_block_size);
  // But exact statistics still win on the combined objective.
  EXPECT_LE(prompt_m.mpi, sketch_m.mpi * 1.2);
}

TEST(SketchPartitionerTest, WorksWithTinySketch) {
  SketchPartitionerOptions opts;
  opts.sketch_capacity = 4;
  SketchPartitioner partitioner(opts);
  auto tuples = ZipfTuples(5000, 100, 1.0, kStart, kEnd);
  auto batch = RunBatch(partitioner, tuples, 4, kStart, kEnd);
  EXPECT_EQ(batch.num_tuples, 5000u);
}

TEST(SketchPartitionerTest, ReusableAcrossBatches) {
  SketchPartitioner partitioner;
  for (int i = 0; i < 3; ++i) {
    auto tuples = ZipfTuples(2000, 50, 1.0, i * kEnd, (i + 1) * kEnd, 10 + i);
    auto batch =
        RunBatch(partitioner, tuples, 4, i * kEnd, (i + 1) * kEnd, i);
    EXPECT_EQ(batch.num_tuples, 2000u) << i;
  }
}

TEST(SketchPartitionerTest, SingleBlockSkipsHeavyDetection) {
  SketchPartitioner partitioner;
  partitioner.Begin(1, kStart, kEnd);
  // At one block the old share cutoff (total / heavy_fraction) still labeled
  // dominating keys "heavy" with nowhere to spread them; everything must
  // land in block 0 unsplit regardless.
  for (int i = 0; i < 6000; ++i) partitioner.OnTuple(Tuple{kStart + i, 7, 1.0});
  for (int i = 0; i < 1000; ++i) {
    partitioner.OnTuple(
        Tuple{kStart + 6000 + i, static_cast<KeyId>(50 + i % 100), 1.0});
  }
  auto batch = partitioner.Seal(0);
  ASSERT_EQ(batch.blocks.size(), 1u);
  EXPECT_EQ(batch.blocks[0].tuples().size(), 7000u);
  for (const auto& f : batch.blocks[0].fragments()) EXPECT_FALSE(f.split);
}

// The round-robin cursor must persist across batches: with one dominating
// key whose per-batch count splits unevenly over the blocks, a cursor that
// re-seeds from the key hash every batch piles the extra fragment onto the
// same block each time, while a persistent cursor rotates the surplus.
TEST(SketchPartitionerTest, HeavyCursorRotatesAcrossBatches) {
  constexpr uint32_t kBlocks = 4;
  constexpr int kBatches = 8;
  // 10 hot tuples per batch over 4 blocks: 2 blocks get 3 fragments' worth,
  // 2 get 2 — the surplus position is what must rotate.
  constexpr int kHotPerBatch = 10;
  SketchPartitioner partitioner;
  std::array<uint64_t, kBlocks> hot_load{};
  for (int b = 0; b < kBatches; ++b) {
    const TimeMicros start = b * kEnd, end = (b + 1) * kEnd;
    partitioner.Begin(kBlocks, start, end);
    for (int i = 0; i < kHotPerBatch; ++i) {
      partitioner.OnTuple(Tuple{start + i, 1, 1.0});
    }
    // Light tail so the sketch sees a mixture (still leaves key 1 heavy).
    for (int i = 0; i < 20; ++i) {
      partitioner.OnTuple(
          Tuple{start + kHotPerBatch + i, static_cast<KeyId>(100 + i), 1.0});
    }
    auto batch = partitioner.Seal(b);
    for (uint32_t blk = 0; blk < kBlocks; ++blk) {
      for (const Tuple& t : batch.blocks[blk].tuples()) {
        if (t.key == 1) ++hot_load[blk];
      }
    }
  }
  // 8 batches * 10 tuples = 80 hot tuples over 4 blocks: a rotating cursor
  // gives every block exactly 20; the pre-fix re-seeded cursor gives the
  // hash-favored blocks 24 and the others 16.
  const uint64_t total =
      hot_load[0] + hot_load[1] + hot_load[2] + hot_load[3];
  EXPECT_EQ(total, static_cast<uint64_t>(kBatches * kHotPerBatch));
  for (uint32_t blk = 0; blk < kBlocks; ++blk) {
    EXPECT_EQ(hot_load[blk], total / kBlocks) << "block " << blk;
  }
}

}  // namespace
}  // namespace prompt
