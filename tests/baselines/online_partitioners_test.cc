#include "baselines/online_partitioners.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "stats/metrics.h"
#include "testing/test_helpers.h"

namespace prompt {
namespace {

using testing::BatchKeyHistogram;
using testing::KeyHistogram;
using testing::RunBatch;
using testing::ZipfTuples;

constexpr TimeMicros kStart = 0;
constexpr TimeMicros kEnd = Seconds(1);

TEST(ShufflePartitionerTest, BlockSizesAreExactlyEqual) {
  ShufflePartitioner partitioner;
  auto tuples = ZipfTuples(8000, 100, 1.5, kStart, kEnd);
  auto batch = RunBatch(partitioner, tuples, 8, kStart, kEnd);
  for (const auto& block : batch.blocks) {
    EXPECT_EQ(block.size(), 1000u);
  }
  auto m = ComputeBlockMetrics(batch);
  EXPECT_DOUBLE_EQ(m.bsi, 0.0);
}

TEST(ShufflePartitionerTest, DestroysKeyLocality) {
  ShufflePartitioner partitioner;
  auto tuples = ZipfTuples(20000, 50, 1.0, kStart, kEnd);
  auto batch = RunBatch(partitioner, tuples, 8, kStart, kEnd);
  auto m = ComputeBlockMetrics(batch);
  // Frequent keys land in every block: KSR approaches the block count.
  EXPECT_GT(m.ksr, 4.0);
}

TEST(HashPartitionerTest, PerfectKeyLocality) {
  HashPartitioner partitioner;
  auto tuples = ZipfTuples(20000, 500, 1.2, kStart, kEnd);
  auto batch = RunBatch(partitioner, tuples, 8, kStart, kEnd);
  auto m = ComputeBlockMetrics(batch);
  EXPECT_DOUBLE_EQ(m.ksr, 1.0);
  EXPECT_EQ(m.split_keys, 0u);
  // Every tuple of a key in exactly one block.
  std::map<KeyId, std::set<uint32_t>> blocks_of_key;
  for (const auto& block : batch.blocks) {
    for (const auto& f : block.fragments()) {
      blocks_of_key[f.key].insert(block.block_id());
    }
  }
  for (const auto& [k, blocks] : blocks_of_key) EXPECT_EQ(blocks.size(), 1u);
}

TEST(HashPartitionerTest, SkewCausesSizeImbalance) {
  HashPartitioner partitioner;
  auto tuples = ZipfTuples(40000, 10000, 1.6, kStart, kEnd);
  auto batch = RunBatch(partitioner, tuples, 8, kStart, kEnd);
  auto m = ComputeBlockMetrics(batch);
  // The block holding the hottest key dominates.
  EXPECT_GT(m.bsi, 0.5 * m.avg_block_size);
}

TEST(TimeBasedPartitionerTest, AssignsByArrivalTime) {
  TimeBasedPartitioner partitioner;
  partitioner.Begin(4, kStart, kEnd);
  // Tuples in the first quarter of the interval -> block 0, etc.
  partitioner.OnTuple(Tuple{kStart + 10, 1, 1.0});
  partitioner.OnTuple(Tuple{kStart + Seconds(1) / 4 + 10, 2, 1.0});
  partitioner.OnTuple(Tuple{kStart + Seconds(1) / 2 + 10, 3, 1.0});
  partitioner.OnTuple(Tuple{kStart + 3 * Seconds(1) / 4 + 10, 4, 1.0});
  auto batch = partitioner.Seal(0);
  for (uint32_t b = 0; b < 4; ++b) {
    ASSERT_EQ(batch.blocks[b].size(), 1u) << "block " << b;
    EXPECT_EQ(batch.blocks[b].tuples()[0].key, b + 1);
  }
}

TEST(TimeBasedPartitionerTest, VariableRateSkewsBlockSizes) {
  TimeBasedPartitioner partitioner;
  partitioner.Begin(4, kStart, kEnd);
  // 4x the tuples in the last quarter of the interval (a rate spike).
  for (int i = 0; i < 1000; ++i) {
    partitioner.OnTuple(
        Tuple{kStart + i * (Seconds(1) * 3 / 4) / 1000, 1, 1.0});
  }
  for (int i = 0; i < 4000; ++i) {
    partitioner.OnTuple(Tuple{
        kStart + Seconds(1) * 3 / 4 + i * (Seconds(1) / 4) / 4000, 2, 1.0});
  }
  auto batch = partitioner.Seal(0);
  auto m = ComputeBlockMetrics(batch);
  EXPECT_GT(m.bsi, 2.0 * m.avg_block_size);  // spike block ~4000 vs avg 1250
}

TEST(KeySplitPartitionerTest, KeysTouchAtMostDBlocks) {
  for (uint32_t d : {2u, 5u}) {
    KeySplitPartitioner partitioner(d);
    auto tuples = ZipfTuples(30000, 300, 1.4, kStart, kEnd, /*seed=*/d);
    auto batch = RunBatch(partitioner, tuples, 12, kStart, kEnd);
    std::map<KeyId, std::set<uint32_t>> blocks_of_key;
    for (const auto& block : batch.blocks) {
      for (const auto& f : block.fragments()) {
        blocks_of_key[f.key].insert(block.block_id());
      }
    }
    for (const auto& [k, blocks] : blocks_of_key) {
      EXPECT_LE(blocks.size(), d) << "key " << k << " d=" << d;
    }
  }
}

TEST(KeySplitPartitionerTest, BalancesSizesUnderSkew) {
  KeySplitPartitioner partitioner(5);
  auto tuples = ZipfTuples(40000, 5000, 1.5, kStart, kEnd);
  auto batch = RunBatch(partitioner, tuples, 8, kStart, kEnd);
  auto m = ComputeBlockMetrics(batch);
  EXPECT_LT(m.bsi, 0.25 * m.avg_block_size);
}

TEST(KeySplitPartitionerTest, NamesMatchThePaper) {
  EXPECT_STREQ(KeySplitPartitioner(2).name(), "PK2");
  EXPECT_STREQ(KeySplitPartitioner(5).name(), "PK5");
}

TEST(CamPartitionerTest, TradesSizeAndCardinality) {
  CamPartitioner cam(4);
  KeySplitPartitioner pk5(5);
  auto tuples = ZipfTuples(40000, 2000, 1.2, kStart, kEnd);
  auto cam_batch = RunBatch(cam, tuples, 8, kStart, kEnd);
  auto pk5_batch = RunBatch(pk5, tuples, 8, kStart, kEnd);
  auto cam_m = ComputeBlockMetrics(cam_batch);
  auto pk5_m = ComputeBlockMetrics(pk5_batch);
  // cAM should fragment keys less than PK5 while staying size-balanced.
  EXPECT_LT(cam_m.ksr, pk5_m.ksr);
  EXPECT_LT(cam_m.bsi, 0.5 * cam_m.avg_block_size);
}

TEST(OnlinePartitionersTest, AllConserveTuples) {
  auto tuples = ZipfTuples(15000, 700, 1.1, kStart, kEnd);
  auto expected = KeyHistogram(tuples);
  ShufflePartitioner shuffle;
  HashPartitioner hash;
  TimeBasedPartitioner time_based;
  KeySplitPartitioner pk2(2);
  CamPartitioner cam(4);
  for (BatchPartitioner* p : std::initializer_list<BatchPartitioner*>{
           &shuffle, &hash, &time_based, &pk2, &cam}) {
    auto batch = RunBatch(*p, tuples, 8, kStart, kEnd);
    EXPECT_EQ(BatchKeyHistogram(batch), expected) << p->name();
    EXPECT_EQ(batch.num_tuples, tuples.size()) << p->name();
    EXPECT_EQ(batch.num_keys, expected.size()) << p->name();
  }
}

TEST(OnlinePartitionersTest, BeginResetsState) {
  ShufflePartitioner partitioner;
  auto tuples = ZipfTuples(1000, 10, 1.0, kStart, kEnd);
  RunBatch(partitioner, tuples, 4, kStart, kEnd);
  auto batch2 = RunBatch(partitioner, tuples, 4, kStart, kEnd, 1);
  EXPECT_EQ(batch2.num_tuples, 1000u);
  for (const auto& block : batch2.blocks) EXPECT_EQ(block.size(), 250u);
}

}  // namespace
}  // namespace prompt
