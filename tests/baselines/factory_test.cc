#include "baselines/factory.h"

#include <gtest/gtest.h>

#include "testing/test_helpers.h"

namespace prompt {
namespace {

TEST(FactoryTest, CreatesEveryType) {
  for (PartitionerType type :
       {PartitionerType::kTimeBased, PartitionerType::kShuffle,
        PartitionerType::kHash, PartitionerType::kPk2, PartitionerType::kPk5,
        PartitionerType::kCam, PartitionerType::kPrompt,
        PartitionerType::kPromptPostSort, PartitionerType::kFfd,
        PartitionerType::kFragMin}) {
    auto p = CreatePartitioner(type);
    ASSERT_NE(p, nullptr);
    EXPECT_STREQ(p->name(), PartitionerTypeName(type));
  }
}

TEST(FactoryTest, NameRoundTrip) {
  for (PartitionerType type : EvaluationTechniques()) {
    auto parsed = PartitionerTypeFromName(PartitionerTypeName(type));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, type);
  }
}

TEST(FactoryTest, UnknownNameIsInvalid) {
  auto r = PartitionerTypeFromName("RoundRobinDeluxe");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalid());
}

TEST(FactoryTest, EvaluationSetMatchesThePaper) {
  auto set = EvaluationTechniques();
  EXPECT_EQ(set.size(), 7u);
  EXPECT_EQ(set.back(), PartitionerType::kPrompt);
}

TEST(FactoryTest, EveryTechniquePartitionsABatch) {
  auto tuples = testing::ZipfTuples(4000, 100, 1.0, 0, Seconds(1));
  for (PartitionerType type : EvaluationTechniques()) {
    auto p = CreatePartitioner(type);
    auto batch = testing::RunBatch(*p, tuples, 4, 0, Seconds(1));
    EXPECT_EQ(batch.num_tuples, 4000u) << p->name();
    EXPECT_EQ(batch.blocks.size(), 4u) << p->name();
  }
}

TEST(FactoryTest, CamCandidatesConfigurable) {
  PartitionerConfig config;
  config.cam_candidates = 7;
  auto p = CreatePartitioner(PartitionerType::kCam, config);
  ASSERT_NE(p, nullptr);
}

}  // namespace
}  // namespace prompt
