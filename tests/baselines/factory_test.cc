#include "baselines/factory.h"

#include <gtest/gtest.h>

#include "testing/test_helpers.h"

namespace prompt {
namespace {

// The enum has no sentinel; kSketch is its last enumerator and the values
// are contiguous from 0, so iterating 0..kSketch visits every type. If an
// enumerator is ever added after kSketch these exhaustive loops go stale —
// extend them together with the enum.
std::vector<PartitionerType> AllTypes() {
  std::vector<PartitionerType> all;
  for (int raw = 0; raw <= static_cast<int>(PartitionerType::kSketch); ++raw) {
    all.push_back(static_cast<PartitionerType>(raw));
  }
  return all;
}

TEST(FactoryTest, CreatesEveryType) {
  for (PartitionerType type : AllTypes()) {
    auto p = CreatePartitioner(type);
    ASSERT_NE(p, nullptr) << PartitionerTypeName(type);
    EXPECT_STREQ(p->name(), PartitionerTypeName(type));
  }
}

// Load-bearing for adaptive switching (promptctl parses --adapt_candidates
// back into types): every enumerator must survive type -> name -> type.
TEST(FactoryTest, NameRoundTrip) {
  for (PartitionerType type : AllTypes()) {
    const char* name = PartitionerTypeName(type);
    ASSERT_STRNE(name, "?");
    auto parsed = PartitionerTypeFromName(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, type) << name;
  }
}

TEST(FactoryTest, EvaluationTechniquesAllConstructible) {
  for (PartitionerType type : EvaluationTechniques()) {
    auto p = CreatePartitioner(type);
    ASSERT_NE(p, nullptr) << PartitionerTypeName(type);
  }
}

TEST(FactoryTest, UnknownNameIsInvalid) {
  auto r = PartitionerTypeFromName("RoundRobinDeluxe");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalid());
}

TEST(FactoryTest, EvaluationSetMatchesThePaper) {
  auto set = EvaluationTechniques();
  EXPECT_EQ(set.size(), 7u);
  EXPECT_EQ(set.back(), PartitionerType::kPrompt);
}

TEST(FactoryTest, EveryTechniquePartitionsABatch) {
  auto tuples = testing::ZipfTuples(4000, 100, 1.0, 0, Seconds(1));
  for (PartitionerType type : EvaluationTechniques()) {
    auto p = CreatePartitioner(type);
    auto batch = testing::RunBatch(*p, tuples, 4, 0, Seconds(1));
    EXPECT_EQ(batch.num_tuples, 4000u) << p->name();
    EXPECT_EQ(batch.blocks.size(), 4u) << p->name();
  }
}

TEST(FactoryTest, CamCandidatesConfigurable) {
  PartitionerConfig config;
  config.cam_candidates = 7;
  auto p = CreatePartitioner(PartitionerType::kCam, config);
  ASSERT_NE(p, nullptr);
}

}  // namespace
}  // namespace prompt
