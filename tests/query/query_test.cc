#include "query/query.h"

#include <gtest/gtest.h>

namespace prompt {
namespace {

TEST(QueryBuilderTest, DefaultsToWordCount) {
  auto q = QueryBuilder().Build();
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->window_batches(), 30u);
  EXPECT_EQ(q->top_k, 0u);
  std::vector<KV> out;
  q->job.map->Map(Tuple{0, 7, 3.5}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].value, 1.0);  // COUNT emits 1
}

TEST(QueryBuilderTest, SumEmitsValues) {
  auto q = QueryBuilder().Select(Aggregate::kSum).Build();
  ASSERT_TRUE(q.ok());
  std::vector<KV> out;
  q->job.map->Map(Tuple{0, 7, 3.5}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].value, 3.5);
}

TEST(QueryBuilderTest, MinMaxAreNotInvertible) {
  auto qmin = QueryBuilder().Select(Aggregate::kMin).Build();
  auto qmax = QueryBuilder().Select(Aggregate::kMax).Build();
  ASSERT_TRUE(qmin.ok());
  ASSERT_TRUE(qmax.ok());
  EXPECT_FALSE(qmin->job.reduce->invertible());
  EXPECT_FALSE(qmax->job.reduce->invertible());
  EXPECT_DOUBLE_EQ(qmax->job.reduce->Combine(3.0, 7.0), 7.0);
  EXPECT_DOUBLE_EQ(qmin->job.reduce->Combine(3.0, 7.0), 3.0);
}

TEST(QueryBuilderTest, PredicatesAreConjunctive) {
  auto q = QueryBuilder()
               .Where([](const Tuple& t) { return t.value > 1; })
               .Where([](const Tuple& t) { return t.value < 5; })
               .Build();
  ASSERT_TRUE(q.ok());
  std::vector<KV> out;
  q->job.map->Map(Tuple{0, 1, 3.0}, &out);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  q->job.map->Map(Tuple{0, 1, 7.0}, &out);
  EXPECT_TRUE(out.empty());
  out.clear();
  q->job.map->Map(Tuple{0, 1, 0.5}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(QueryBuilderTest, WindowGeometry) {
  auto q = QueryBuilder().Window(Seconds(120), Seconds(5)).Build();
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->window_batches(), 24u);
  EXPECT_EQ(q->job.window_batches, 24u);
}

TEST(QueryBuilderTest, RejectsBadWindows) {
  EXPECT_TRUE(QueryBuilder().Window(0, Seconds(1)).Build().status().IsInvalid());
  EXPECT_TRUE(QueryBuilder().Window(Seconds(1), 0).Build().status().IsInvalid());
  EXPECT_TRUE(QueryBuilder()
                  .Window(Seconds(1), Seconds(2))
                  .Build()
                  .status()
                  .IsInvalid());
  EXPECT_TRUE(QueryBuilder()
                  .Window(Seconds(7), Seconds(2))
                  .Build()
                  .status()
                  .IsInvalid());  // not a multiple
}

TEST(QueryBuilderTest, TopKCarriesThrough) {
  auto q = QueryBuilder().Top(10).Build();
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->top_k, 10u);
}

TEST(AggregateNameTest, AllNames) {
  EXPECT_STREQ(AggregateName(Aggregate::kCount), "COUNT");
  EXPECT_STREQ(AggregateName(Aggregate::kSum), "SUM");
  EXPECT_STREQ(AggregateName(Aggregate::kMin), "MIN");
  EXPECT_STREQ(AggregateName(Aggregate::kMax), "MAX");
}

}  // namespace
}  // namespace prompt
