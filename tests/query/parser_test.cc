#include "query/parser.h"

#include <gtest/gtest.h>

namespace prompt {
namespace {

TEST(ParserTest, MinimalWordCount) {
  auto q = ParseQuery("SELECT COUNT WINDOW 30S");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->window, Seconds(30));
  EXPECT_EQ(q->slide, Seconds(1));
  EXPECT_EQ(q->window_batches(), 30u);
  EXPECT_EQ(q->top_k, 0u);
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  auto q = ParseQuery("select sum window 10s slide 2s");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->window_batches(), 5u);
}

TEST(ParserTest, TopKCount) {
  auto q = ParseQuery("SELECT COUNT TOP 10 WINDOW 30S");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->top_k, 10u);
}

TEST(ParserTest, DurationsInAllUnits) {
  auto ms = ParseQuery("SELECT COUNT WINDOW 1500MS SLIDE 500MS");
  ASSERT_TRUE(ms.ok());
  EXPECT_EQ(ms->window, Millis(1500));
  EXPECT_EQ(ms->window_batches(), 3u);

  auto minutes = ParseQuery("SELECT SUM WINDOW 2M SLIDE 30S");
  ASSERT_TRUE(minutes.ok());
  EXPECT_EQ(minutes->window, Seconds(120));
  EXPECT_EQ(minutes->window_batches(), 4u);
}

TEST(ParserTest, ValuePredicate) {
  auto q = ParseQuery("SELECT SUM WHERE VALUE > 2.5 WINDOW 10S");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<KV> out;
  q->job.map->Map(Tuple{0, 1, 3.0}, &out);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  q->job.map->Map(Tuple{0, 1, 2.0}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(ParserTest, ConjunctionOfPredicates) {
  auto q = ParseQuery(
      "SELECT COUNT WHERE VALUE >= 1 AND VALUE <= 5 AND KEY != 9 WINDOW 5S");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<KV> out;
  q->job.map->Map(Tuple{0, 2, 3.0}, &out);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  q->job.map->Map(Tuple{0, 9, 3.0}, &out);  // key filtered
  EXPECT_TRUE(out.empty());
  out.clear();
  q->job.map->Map(Tuple{0, 2, 6.0}, &out);  // value filtered
  EXPECT_TRUE(out.empty());
}

TEST(ParserTest, EqualityOperators) {
  auto eq = ParseQuery("SELECT COUNT WHERE KEY = 4 WINDOW 5S");
  ASSERT_TRUE(eq.ok());
  auto eq2 = ParseQuery("SELECT COUNT WHERE KEY == 4 WINDOW 5S");
  ASSERT_TRUE(eq2.ok());
  std::vector<KV> out;
  eq->job.map->Map(Tuple{0, 4, 1.0}, &out);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  eq->job.map->Map(Tuple{0, 5, 1.0}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(ParserTest, MinAndMaxAggregates) {
  auto qmin = ParseQuery("SELECT MIN WINDOW 10S");
  ASSERT_TRUE(qmin.ok());
  EXPECT_FALSE(qmin->job.reduce->invertible());
  auto qmax = ParseQuery("SELECT MAX WINDOW 10S");
  ASSERT_TRUE(qmax.ok());
  EXPECT_DOUBLE_EQ(qmax->job.reduce->Combine(1, 2), 2.0);
}

TEST(ParserTest, OperatorsAdjacentToOperands) {
  // Tokenizer splits "VALUE>2.5" without spaces around the operator.
  auto q = ParseQuery("SELECT SUM WHERE VALUE>2.5 WINDOW 10S");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
}

struct BadQuery {
  const char* text;
  const char* why;
};

class ParserErrorTest : public ::testing::TestWithParam<BadQuery> {};

TEST_P(ParserErrorTest, RejectsInvalidQueries) {
  auto q = ParseQuery(GetParam().text);
  EXPECT_FALSE(q.ok()) << GetParam().why;
  EXPECT_TRUE(q.status().IsInvalid());
}

INSTANTIATE_TEST_SUITE_P(
    Invalid, ParserErrorTest,
    ::testing::Values(
        BadQuery{"", "empty"},
        BadQuery{"COUNT WINDOW 30S", "missing SELECT"},
        BadQuery{"SELECT AVG WINDOW 30S", "unknown aggregate"},
        BadQuery{"SELECT COUNT", "missing WINDOW"},
        BadQuery{"SELECT COUNT WINDOW", "missing duration"},
        BadQuery{"SELECT COUNT WINDOW 30X", "bad unit"},
        BadQuery{"SELECT COUNT WINDOW 0S", "zero duration"},
        BadQuery{"SELECT COUNT WINDOW 30S EXTRA", "trailing token"},
        BadQuery{"SELECT COUNT TOP 0 WINDOW 30S", "top zero"},
        BadQuery{"SELECT COUNT TOP 2.5 WINDOW 30S", "fractional top"},
        BadQuery{"SELECT COUNT WHERE WINDOW 30S", "empty condition"},
        BadQuery{"SELECT COUNT WHERE VALUE >> 3 WINDOW 30S", "bad operator"},
        BadQuery{"SELECT COUNT WHERE VALUE > x WINDOW 30S", "non-numeric"},
        BadQuery{"SELECT COUNT WINDOW 7S SLIDE 2S", "non-multiple window"}));

TEST(ParserTest, ErrorMessagesCarryPosition) {
  auto q = ParseQuery("SELECT AVG WINDOW 30S");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("position 7"), std::string::npos)
      << q.status().message();
}

TEST(ParserTest, ParsedQueryRunsEndToEnd) {
  // Compile "DEBS Query 1" from text and check the job shape.
  auto q = ParseQuery("SELECT SUM WINDOW 2M SLIDE 5S");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->window_batches(), 24u);
  EXPECT_EQ(q->job.window_batches, 24u);
  EXPECT_TRUE(q->job.reduce->invertible());
}

}  // namespace
}  // namespace prompt
