#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/factory.h"
#include "query/multi_query.h"

namespace prompt {
namespace {

TEST(KeyFilterTest, MatchesByKind) {
  KeyFilter all;
  EXPECT_TRUE(all.Matches(0));
  EXPECT_TRUE(all.Matches(12345));

  KeyFilter mod;
  mod.kind = KeyFilter::Kind::kModulo;
  mod.modulo = 4;
  mod.residue = 1;
  EXPECT_TRUE(mod.Matches(1));
  EXPECT_TRUE(mod.Matches(9));
  EXPECT_FALSE(mod.Matches(2));

  KeyFilter range;
  range.kind = KeyFilter::Kind::kRange;
  range.lo = 10;
  range.hi = 20;
  EXPECT_FALSE(range.Matches(9));
  EXPECT_TRUE(range.Matches(10));
  EXPECT_TRUE(range.Matches(20));
  EXPECT_FALSE(range.Matches(21));
}

TEST(KeyFilterTest, ParseRoundTripsToString) {
  for (const char* text : {"all", "mod:2:1", "range:100:4096"}) {
    auto parsed = KeyFilter::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed.ValueOrDie().ToString(), text);
  }
}

TEST(KeyFilterTest, ParseRejectsMalformedFilters) {
  for (const char* text :
       {"", "nope", "mod:0:0", "mod:4", "mod:4:4", "range:9:3", "range:7"}) {
    EXPECT_FALSE(KeyFilter::Parse(text).ok()) << text;
  }
}

TEST(TenantSpecTest, ParsesAFullSpecLine) {
  auto specs = ParseQueryFile(
      "# two-tenant demo\n"
      "\n"
      "TENANT calm  WEIGHT 1 TECHNIQUE Hash KEYS mod:2:0 "
      "QUERY SELECT COUNT WINDOW 8S\n"
      "TENANT noisy WEIGHT 3 ADAPTIVE CANDIDATES Hash,Prompt KEYS mod:2:1 "
      "QUERY SELECT SUM WHERE VALUE > 2.5 WINDOW 4S\n");
  ASSERT_TRUE(specs.ok()) << specs.status().message();
  ASSERT_EQ(specs.ValueOrDie().size(), 2u);

  const TenantQuerySpec& calm = specs.ValueOrDie()[0];
  EXPECT_EQ(calm.id, "calm");
  EXPECT_EQ(calm.weight, 1u);
  EXPECT_EQ(calm.technique, PartitionerType::kHash);
  EXPECT_FALSE(calm.adaptive);
  EXPECT_EQ(calm.filter.kind, KeyFilter::Kind::kModulo);
  EXPECT_EQ(calm.filter.modulo, 2u);
  EXPECT_EQ(calm.filter.residue, 0u);
  EXPECT_EQ(calm.query.window_batches(), 8u);

  const TenantQuerySpec& noisy = specs.ValueOrDie()[1];
  EXPECT_EQ(noisy.id, "noisy");
  EXPECT_EQ(noisy.weight, 3u);
  EXPECT_TRUE(noisy.adaptive);
  EXPECT_EQ(noisy.adapt_candidates,
            (std::vector<PartitionerType>{PartitionerType::kHash,
                                          PartitionerType::kPrompt}));
  // Without a TECHNIQUE clause the adaptive spec starts on the ladder's
  // first rung.
  EXPECT_EQ(noisy.technique, PartitionerType::kHash);
  EXPECT_EQ(noisy.query.window_batches(), 4u);
}

TEST(TenantSpecTest, DefaultsWeightTechniqueAndFilter) {
  auto specs = ParseQueryFile("TENANT solo QUERY SELECT COUNT WINDOW 30S\n");
  ASSERT_TRUE(specs.ok()) << specs.status().message();
  ASSERT_EQ(specs.ValueOrDie().size(), 1u);
  const TenantQuerySpec& spec = specs.ValueOrDie()[0];
  EXPECT_EQ(spec.weight, 1u);
  EXPECT_EQ(spec.technique, PartitionerType::kPrompt);
  EXPECT_FALSE(spec.adaptive);
  EXPECT_EQ(spec.filter.kind, KeyFilter::Kind::kAll);
}

TEST(TenantSpecTest, SpecLineRoundTrips) {
  const std::string text =
      "TENANT calm  WEIGHT 2 TECHNIQUE Hash KEYS range:0:499 "
      "QUERY SELECT COUNT TOP 10 WINDOW 30S\n"
      "TENANT noisy WEIGHT 5 TECHNIQUE Hash ADAPTIVE ADAPT_D 4 "
      "CANDIDATES Hash,PK2,Prompt KEYS mod:3:2 "
      "QUERY SELECT COUNT WINDOW 30S\n";
  auto first = ParseQueryFile(text);
  ASSERT_TRUE(first.ok()) << first.status().message();

  // Serialize every spec back to text and re-parse: the second pass must
  // reproduce the first exactly.
  std::string round;
  for (const TenantQuerySpec& spec : first.ValueOrDie()) {
    round += TenantSpecLine(spec);
    round += '\n';
  }
  auto second = ParseQueryFile(round);
  ASSERT_TRUE(second.ok()) << second.status().message() << "\n" << round;
  ASSERT_EQ(second.ValueOrDie().size(), first.ValueOrDie().size());
  for (size_t i = 0; i < first.ValueOrDie().size(); ++i) {
    const TenantQuerySpec& a = first.ValueOrDie()[i];
    const TenantQuerySpec& b = second.ValueOrDie()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.weight, b.weight);
    EXPECT_EQ(a.technique, b.technique);
    EXPECT_EQ(a.adaptive, b.adaptive);
    EXPECT_EQ(a.adapt_d, b.adapt_d);
    EXPECT_EQ(a.adapt_candidates, b.adapt_candidates);
    EXPECT_EQ(a.filter.ToString(), b.filter.ToString());
    EXPECT_EQ(a.query.text, b.query.text);
    EXPECT_EQ(a.query.window, b.query.window);
    EXPECT_EQ(a.query.slide, b.query.slide);
    EXPECT_EQ(a.query.top_k, b.query.top_k);
  }
}

TEST(TenantSpecTest, RejectsDuplicateTenantIds) {
  auto specs = ParseQueryFile(
      "TENANT a QUERY SELECT COUNT WINDOW 4S\n"
      "TENANT a QUERY SELECT COUNT WINDOW 8S\n");
  ASSERT_FALSE(specs.ok());
  EXPECT_NE(specs.status().message().find("duplicate"), std::string::npos)
      << specs.status().message();
}

TEST(TenantSpecTest, RejectsZeroAndNegativeWeights) {
  EXPECT_FALSE(
      ParseQueryFile("TENANT a WEIGHT 0 QUERY SELECT COUNT WINDOW 4S\n").ok());
  EXPECT_FALSE(
      ParseQueryFile("TENANT a WEIGHT -2 QUERY SELECT COUNT WINDOW 4S\n").ok());
  EXPECT_FALSE(ParseQueryFile(
                   "TENANT a WEIGHT banana QUERY SELECT COUNT WINDOW 4S\n")
                   .ok());
}

TEST(TenantSpecTest, RejectsMismatchedSlides) {
  auto specs = ParseQueryFile(
      "TENANT a QUERY SELECT COUNT WINDOW 8S SLIDE 1S\n"
      "TENANT b QUERY SELECT COUNT WINDOW 8S SLIDE 2S\n");
  ASSERT_FALSE(specs.ok());
  EXPECT_NE(specs.status().message().find("SLIDE"), std::string::npos)
      << specs.status().message();
}

TEST(TenantSpecTest, RejectsUnknownTechniqueFilterAndEmptyFiles) {
  EXPECT_FALSE(
      ParseQueryFile("TENANT a TECHNIQUE Warp QUERY SELECT COUNT WINDOW 4S\n")
          .ok());
  EXPECT_FALSE(
      ParseQueryFile("TENANT a KEYS mod:0:0 QUERY SELECT COUNT WINDOW 4S\n")
          .ok());
  EXPECT_FALSE(ParseQueryFile("").ok());
  EXPECT_FALSE(ParseQueryFile("# only a comment\n\n").ok());
  // Missing QUERY clause.
  EXPECT_FALSE(ParseQueryFile("TENANT a WEIGHT 2\n").ok());
}

TEST(TenantSpecTest, RejectsAdaptiveLadderMissingInitialTechnique) {
  // The explicit TECHNIQUE must sit on the candidate ladder, otherwise the
  // adaptive controller could never escalate away from it.
  EXPECT_FALSE(ParseQueryFile(
                   "TENANT a TECHNIQUE cAM ADAPTIVE CANDIDATES Hash,Prompt "
                   "QUERY SELECT COUNT WINDOW 4S\n")
                   .ok());
}

}  // namespace
}  // namespace prompt
