// DurableBlockStore: segment format, CRC torn-tail detection, index
// rebuild on reopen, tombstone replay, prefix GC, compaction, crash
// simulation and the fsync-policy durability contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "store/block_store.h"
#include "store/crc32c.h"
#include "store/segment.h"

namespace prompt {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

StoreOptions Opts(const std::string& dir,
                  FsyncPolicy fsync = FsyncPolicy::kBatch) {
  StoreOptions o;
  o.dir = dir;
  o.fsync = fsync;
  return o;
}

std::unique_ptr<DurableBlockStore> MustOpen(const StoreOptions& options) {
  auto store = DurableBlockStore::Open(options);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).ValueUnsafe();
}

std::string Body(uint64_t id, size_t len = 64) {
  std::string s(len, '\0');
  for (size_t i = 0; i < len; ++i) {
    s[i] = static_cast<char>((id * 131 + i * 7) & 0xff);
  }
  return s;
}

TEST(Crc32cTest, KnownVector) {
  // The check value every CRC-32C implementation agrees on.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, IncrementalEqualsOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  uint32_t chunked = 0;
  for (size_t i = 0; i < data.size(); i += 5) {
    chunked = Crc32c(data.data() + i, std::min<size_t>(5, data.size() - i),
                     chunked);
  }
  EXPECT_EQ(chunked, whole);
}

TEST(Crc32cTest, MaskRoundTripAndDisplacement) {
  for (uint32_t crc : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu}) {
    EXPECT_EQ(UnmaskCrc32c(MaskCrc32c(crc)), crc);
    EXPECT_NE(MaskCrc32c(crc), crc);  // the point of masking
  }
}

TEST(FsyncPolicyTest, ParseRoundTrip) {
  for (FsyncPolicy p :
       {FsyncPolicy::kNever, FsyncPolicy::kBatch, FsyncPolicy::kAlways}) {
    auto parsed = ParseFsyncPolicy(FsyncPolicyName(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").ok());
}

TEST(SegmentTest, ScanReturnsEveryAppendedRecord) {
  const std::string dir = FreshDir("seg_roundtrip");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/seg-000000.log";
  auto writer = SegmentWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  std::vector<std::string> payloads = {"alpha", "", Body(7, 300), "z"};
  for (const std::string& p : payloads) {
    ASSERT_TRUE((*writer)->Append(p).ok());
  }
  ASSERT_TRUE((*writer)->Sync().ok());
  writer->reset();

  auto scan = ScanSegmentFile(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->header_ok);
  ASSERT_EQ(scan->records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(scan->records[i].payload, payloads[i]);
  }
  EXPECT_EQ(scan->valid_bytes, scan->file_bytes);
  EXPECT_EQ(scan->torn_records, 0u);
}

TEST(SegmentTest, ScanStopsAtTornTail) {
  const std::string dir = FreshDir("seg_torn");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/seg-000000.log";
  auto writer = SegmentWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append("first").ok());
  ASSERT_TRUE((*writer)->Append("second").ok());
  const uint64_t valid = (*writer)->size();
  writer->reset();
  {
    // A crash mid-append: a length prefix promising more bytes than exist.
    std::ofstream f(path, std::ios::binary | std::ios::app);
    const uint32_t len = 1000;
    f.write(reinterpret_cast<const char*>(&len), sizeof(len));
    f.write("xx", 2);
  }

  auto scan = ScanSegmentFile(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[0].payload, "first");
  EXPECT_EQ(scan->valid_bytes, valid);
  EXPECT_EQ(scan->torn_records, 1u);
  EXPECT_EQ(scan->torn_bytes, 6u);
}

TEST(SegmentTest, ScanStopsAtBitFlip) {
  const std::string dir = FreshDir("seg_flip");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/seg-000000.log";
  auto writer = SegmentWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append("first").ok());
  const uint64_t second_at = (*writer)->size();
  ASSERT_TRUE((*writer)->Append("second").ok());
  ASSERT_TRUE((*writer)->Append("third").ok());
  writer->reset();
  {
    // Flip one payload byte of the middle record: its CRC must fail, and
    // nothing after it can be trusted (offsets may be forged too).
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(second_at + kRecordHeaderBytes));
    f.put('X');
  }

  auto scan = ScanSegmentFile(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].payload, "first");
  EXPECT_EQ(scan->valid_bytes, second_at);
  EXPECT_EQ(scan->torn_records, 1u);
}

TEST(BlockStoreTest, PutGetRoundTrip) {
  auto store = MustOpen(Opts(FreshDir("put_get")));
  for (uint64_t id = 0; id < 5; ++id) {
    ASSERT_TRUE(store->Put(0, id, Body(id)).ok());
  }
  EXPECT_EQ(store->live_batches(), 5u);
  for (uint64_t id = 0; id < 5; ++id) {
    auto got = store->Get(0, id);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, Body(id));
  }
  EXPECT_TRUE(store->Contains(0, 3));
  EXPECT_FALSE(store->Contains(0, 99));
  EXPECT_FALSE(store->Get(0, 99).ok());
  EXPECT_EQ(store->LiveBatches(0), (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(BlockStoreTest, RePutOverwrites) {
  auto store = MustOpen(Opts(FreshDir("reput")));
  ASSERT_TRUE(store->Put(0, 7, "old").ok());
  ASSERT_TRUE(store->Put(0, 7, "new and longer").ok());
  EXPECT_EQ(store->live_batches(), 1u);
  auto got = store->Get(0, 7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "new and longer");
  EXPECT_EQ(store->live_bytes(), 14u);
}

TEST(BlockStoreTest, OwnersAreNamespaced) {
  auto store = MustOpen(Opts(FreshDir("owners")));
  ASSERT_TRUE(store->Put(0, 5, "tenant-zero").ok());
  ASSERT_TRUE(store->Put(1, 5, "tenant-one").ok());
  EXPECT_EQ(*store->Get(0, 5), "tenant-zero");
  EXPECT_EQ(*store->Get(1, 5), "tenant-one");
  ASSERT_TRUE(store->Evict(0, 5).ok());
  EXPECT_FALSE(store->Contains(0, 5));
  EXPECT_TRUE(store->Contains(1, 5));
  EXPECT_EQ(store->LiveBatches(1), (std::vector<uint64_t>{5}));
}

TEST(BlockStoreTest, ReopenRebuildsIndex) {
  const std::string dir = FreshDir("reopen");
  {
    auto store = MustOpen(Opts(dir));
    for (uint64_t id = 0; id < 4; ++id) {
      ASSERT_TRUE(store->Put(0, id, Body(id, 100 + id)).ok());
    }
    ASSERT_TRUE(store->Sync().ok());
  }
  auto store = MustOpen(Opts(dir));
  EXPECT_EQ(store->recovery().batches_recovered, 4u);
  EXPECT_EQ(store->recovery().torn_records, 0u);
  for (uint64_t id = 0; id < 4; ++id) {
    auto got = store->Get(0, id);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, Body(id, 100 + id));
  }
}

TEST(BlockStoreTest, TombstoneSurvivesReopen) {
  const std::string dir = FreshDir("tombstone");
  {
    auto store = MustOpen(Opts(dir));
    for (uint64_t id = 0; id < 3; ++id) {
      ASSERT_TRUE(store->Put(0, id, Body(id)).ok());
    }
    ASSERT_TRUE(store->Evict(0, 1).ok());
    ASSERT_TRUE(store->Sync().ok());
  }
  auto store = MustOpen(Opts(dir));
  EXPECT_EQ(store->recovery().tombstones, 1u);
  EXPECT_EQ(store->LiveBatches(0), (std::vector<uint64_t>{0, 2}));
  EXPECT_FALSE(store->Get(0, 1).ok());
}

TEST(BlockStoreTest, CrashDiscardsUnsyncedUnderNever) {
  const std::string dir = FreshDir("crash_never");
  {
    auto store = MustOpen(Opts(dir, FsyncPolicy::kNever));
    for (uint64_t id = 0; id < 3; ++id) {
      ASSERT_TRUE(store->Put(0, id, Body(id)).ok());
    }
    ASSERT_TRUE(store->SimulateCrash(/*tear_tail=*/false).ok());
  }
  auto store = MustOpen(Opts(dir, FsyncPolicy::kNever));
  // Only the segment header was fsynced: every record is gone, honestly.
  EXPECT_EQ(store->recovery().batches_recovered, 0u);
}

TEST(BlockStoreTest, CrashKeepsEverythingUnderAlways) {
  const std::string dir = FreshDir("crash_always");
  {
    auto store = MustOpen(Opts(dir, FsyncPolicy::kAlways));
    for (uint64_t id = 0; id < 3; ++id) {
      ASSERT_TRUE(store->Put(0, id, Body(id)).ok());
    }
    ASSERT_TRUE(store->SimulateCrash(/*tear_tail=*/true).ok());
  }
  auto store = MustOpen(Opts(dir, FsyncPolicy::kAlways));
  EXPECT_EQ(store->recovery().batches_recovered, 3u);
  EXPECT_EQ(store->recovery().torn_records, 0u);
  for (uint64_t id = 0; id < 3; ++id) {
    EXPECT_EQ(*store->Get(0, id), Body(id));
  }
}

TEST(BlockStoreTest, TornTailTruncatedOnReopen) {
  const std::string dir = FreshDir("torn_tail");
  {
    auto store = MustOpen(Opts(dir, FsyncPolicy::kBatch));
    ASSERT_TRUE(store->Put(0, 0, Body(0)).ok());
    ASSERT_TRUE(store->Put(0, 1, Body(1)).ok());
    ASSERT_TRUE(store->Sync().ok());
    // Batch 2 is appended but never synced; the crash tears it mid-record.
    ASSERT_TRUE(store->Put(0, 2, Body(2)).ok());
    ASSERT_TRUE(store->SimulateCrash(/*tear_tail=*/true).ok());
  }
  auto store = MustOpen(Opts(dir, FsyncPolicy::kBatch));
  EXPECT_EQ(store->recovery().batches_recovered, 2u);
  EXPECT_EQ(store->recovery().torn_records, 1u);
  EXPECT_GT(store->recovery().torn_bytes, 0u);
  EXPECT_FALSE(store->Contains(0, 2));
  EXPECT_EQ(*store->Get(0, 0), Body(0));
  EXPECT_EQ(*store->Get(0, 1), Body(1));
  // The repaired log must accept appends again at the truncation point.
  ASSERT_TRUE(store->Put(0, 2, Body(2)).ok());
  ASSERT_TRUE(store->Sync().ok());
  EXPECT_EQ(*store->Get(0, 2), Body(2));
}

TEST(BlockStoreTest, PrefixSegmentsDeletedOnceDead) {
  const std::string dir = FreshDir("prefix_gc");
  StoreOptions opts = Opts(dir);
  opts.segment_bytes = 256;  // a few puts per segment
  auto store = MustOpen(opts);
  for (uint64_t id = 0; id < 12; ++id) {
    ASSERT_TRUE(store->Put(0, id, Body(id, 100)).ok());
  }
  const uint64_t segments_before = store->segment_count();
  ASSERT_GT(segments_before, 2u);
  const uint64_t disk_before = store->disk_bytes();
  // Window-FIFO eviction: the oldest batches die first, exactly the
  // front-of-log pattern prefix GC exploits.
  for (uint64_t id = 0; id < 8; ++id) {
    ASSERT_TRUE(store->Evict(0, id).ok());
  }
  EXPECT_LT(store->segment_count(), segments_before);
  EXPECT_LT(store->disk_bytes(), disk_before);
  for (uint64_t id = 8; id < 12; ++id) {
    EXPECT_EQ(*store->Get(0, id), Body(id, 100));
  }
  // On-disk files match the in-memory segment map.
  uint64_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    files += entry.is_regular_file() ? 1 : 0;
  }
  EXPECT_EQ(files, store->segment_count());
}

TEST(BlockStoreTest, CompactDropsDeadBytes) {
  const std::string dir = FreshDir("compact");
  StoreOptions opts = Opts(dir);
  opts.segment_bytes = 256;
  // Disable Evict's automatic fallback so the explicit Compact() call is
  // what reclaims the interior holes (the auto path has its own test).
  opts.compact_live_frac = 0;
  auto store = MustOpen(opts);
  for (uint64_t id = 0; id < 10; ++id) {
    ASSERT_TRUE(store->Put(0, id, Body(id, 100)).ok());
  }
  // Kill interior batches (not a prefix), so prefix GC cannot reclaim them.
  for (uint64_t id : {1u, 2u, 3u, 5u, 6u, 7u, 8u}) {
    ASSERT_TRUE(store->Evict(0, id).ok());
  }
  const uint64_t disk_before = store->disk_bytes();
  ASSERT_TRUE(store->Compact().ok());
  EXPECT_LT(store->disk_bytes(), disk_before);
  EXPECT_EQ(store->LiveBatches(0), (std::vector<uint64_t>{0, 4, 9}));
  for (uint64_t id : {0u, 4u, 9u}) {
    EXPECT_EQ(*store->Get(0, id), Body(id, 100));
  }
  // And the compacted log must survive a reopen.
  store.reset();
  store = MustOpen(opts);
  EXPECT_EQ(store->LiveBatches(0), (std::vector<uint64_t>{0, 4, 9}));
  EXPECT_EQ(*store->Get(0, 4), Body(4, 100));
}

TEST(BlockStoreTest, EvictAutoCompactsOnceDeadWeightDominates) {
  const std::string dir = FreshDir("auto_compact");
  StoreOptions opts = Opts(dir);
  opts.segment_bytes = 256;  // default compact_live_frac = 0.5
  auto store = MustOpen(opts);
  for (uint64_t id = 0; id < 10; ++id) {
    ASSERT_TRUE(store->Put(0, id, Body(id, 100)).ok());
  }
  const uint64_t disk_full = store->disk_bytes();
  // Interior holes escape prefix GC, but once live bytes fall under half
  // the on-disk footprint Evict itself must trigger the rewrite — no
  // explicit Compact() call anywhere.
  for (uint64_t id : {1u, 2u, 3u, 5u, 6u, 7u, 8u}) {
    ASSERT_TRUE(store->Evict(0, id).ok());
  }
  EXPECT_LT(store->disk_bytes(), disk_full / 2);
  EXPECT_EQ(store->LiveBatches(0), (std::vector<uint64_t>{0, 4, 9}));
  for (uint64_t id : {0u, 4u, 9u}) {
    EXPECT_EQ(*store->Get(0, id), Body(id, 100));
  }
}

TEST(BlockStoreTest, MetricsCountAppendsAndEvictions) {
  MetricsRegistry registry;
  auto store = MustOpen(Opts(FreshDir("metrics")));
  store->BindMetrics(&registry);
  ASSERT_TRUE(store->Put(0, 0, Body(0)).ok());
  ASSERT_TRUE(store->Put(0, 1, Body(1)).ok());
  ASSERT_TRUE(store->Evict(0, 0).ok());
  ASSERT_TRUE(store->Sync().ok());
  EXPECT_EQ(registry.GetCounter("prompt_store_appends_total")->value(), 3u)
      << "2 puts + 1 tombstone";
  EXPECT_EQ(registry.GetCounter("prompt_store_evictions_total")->value(), 1u);
  EXPECT_GE(registry.GetCounter("prompt_store_syncs_total")->value(), 1u);
  EXPECT_EQ(registry.GetGauge("prompt_store_live_batches")->value(), 1.0);
  EXPECT_GT(registry.GetGauge("prompt_store_disk_bytes")->value(), 0.0);
}

// Builds a record payload exactly as the store frames it:
// [kind u8][owner u32][batch_id u64][body] with kind 1 = put, 2 =
// tombstone. Tests use it to lay down disk states (e.g. mid-compaction)
// that recovery must tolerate.
std::string RecordPayload(uint8_t kind, uint32_t owner, uint64_t batch_id,
                          const std::string& body) {
  std::string p;
  p.push_back(static_cast<char>(kind));
  p.append(reinterpret_cast<const char*>(&owner), 4);
  p.append(reinterpret_cast<const char*>(&batch_id), 8);
  p += body;
  return p;
}

void WriteSegment(const std::string& path,
                  const std::vector<std::string>& payloads) {
  auto writer = SegmentWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (const std::string& p : payloads) {
    ASSERT_TRUE((*writer)->Append(p).ok());
  }
  ASSERT_TRUE((*writer)->Sync().ok());
}

TEST(BlockStoreTest, CompactionInterruptedBetweenGenerationsRecovers) {
  // The disk state a kill mid-Compact() leaves behind: the old generation
  // (a live put, a doomed put, its tombstone) still present, the new
  // generation (the re-appended live put) already written. Last-write-wins
  // replay must keep the new copy and never resurrect the tombstoned batch.
  const std::string dir = FreshDir("compact_both_gens");
  std::filesystem::create_directories(dir);
  WriteSegment(dir + "/seg-000000.log",
               {RecordPayload(1, 0, 0, "old-zero"),
                RecordPayload(1, 0, 1, "doomed"),
                RecordPayload(2, 0, 1, "")});
  WriteSegment(dir + "/seg-000001.log",
               {RecordPayload(1, 0, 0, "new-zero")});

  auto store = MustOpen(Opts(dir));
  EXPECT_EQ(store->LiveBatches(0), (std::vector<uint64_t>{0}));
  EXPECT_EQ(*store->Get(0, 0), "new-zero");
  EXPECT_FALSE(store->Contains(0, 1));
}

TEST(BlockStoreTest, CompactionIsDurableBeforeOldSegmentsGo) {
  // Compact() must fsync the rewritten generation before the old one is
  // deleted — under fsync=never a crash straight after compaction would
  // otherwise lose every live batch.
  const std::string dir = FreshDir("compact_crash");
  StoreOptions opts = Opts(dir, FsyncPolicy::kNever);
  opts.segment_bytes = 256;
  opts.compact_live_frac = 0;
  {
    auto store = MustOpen(opts);
    for (uint64_t id = 0; id < 10; ++id) {
      ASSERT_TRUE(store->Put(0, id, Body(id, 100)).ok());
    }
    for (uint64_t id : {1u, 2u, 3u, 5u, 6u, 7u, 8u}) {
      ASSERT_TRUE(store->Evict(0, id).ok());
    }
    ASSERT_TRUE(store->Compact().ok());
    ASSERT_TRUE(store->SimulateCrash(/*tear_tail=*/false).ok());
  }
  auto store = MustOpen(opts);
  EXPECT_EQ(store->LiveBatches(0), (std::vector<uint64_t>{0, 4, 9}));
  for (uint64_t id : {0u, 4u, 9u}) {
    EXPECT_EQ(*store->Get(0, id), Body(id, 100));
  }
}

TEST(BlockStoreTest, StrictFilenameParsingSkipsStraysAndReadsLongIds) {
  const std::string dir = FreshDir("filenames");
  std::filesystem::create_directories(dir);
  // A 7-digit id (past the zero-padded width) and an unpadded name are
  // both real segments; the .bak impostor is neither indexed nor deleted.
  WriteSegment(dir + "/seg-1.log", {RecordPayload(1, 0, 1, "one")});
  WriteSegment(dir + "/seg-1000000.log", {RecordPayload(1, 0, 2, "two")});
  {
    std::ofstream f(dir + "/seg-000001.log.bak", std::ios::binary);
    f << "junk";
  }

  auto store = MustOpen(Opts(dir));
  EXPECT_EQ(store->LiveBatches(0), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(*store->Get(0, 1), "one");
  EXPECT_EQ(*store->Get(0, 2), "two");
  EXPECT_TRUE(std::filesystem::exists(dir + "/seg-000001.log.bak"));
  // New appends land past the highest seen id and survive a reopen.
  ASSERT_TRUE(store->Put(0, 3, "three").ok());
  ASSERT_TRUE(store->Sync().ok());
  store.reset();
  store = MustOpen(Opts(dir));
  EXPECT_EQ(store->LiveBatches(0), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(*store->Get(0, 3), "three");
}

TEST(BlockStoreTest, CorruptHeaderFileIsDroppedNotFatal) {
  const std::string dir = FreshDir("bad_header");
  std::filesystem::create_directories(dir);
  {
    std::ofstream f(dir + "/seg-000000.log", std::ios::binary);
    f << "not a segment";
  }
  auto store = MustOpen(Opts(dir));
  EXPECT_EQ(store->recovery().batches_recovered, 0u);
  // The store must be writable despite the impostor file.
  ASSERT_TRUE(store->Put(0, 0, Body(0)).ok());
  ASSERT_TRUE(store->Sync().ok());
  EXPECT_EQ(*store->Get(0, 0), Body(0));
}

}  // namespace
}  // namespace prompt
