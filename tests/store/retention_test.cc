// Store retention knobs (promptctl --retain_bytes / --retain_batches):
// size- and count-based GC beyond window eviction. Retention must expire
// only the oldest batches, keep the newest alive, survive reopen, and
// leave a store the recovery scan still accepts.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "store/block_store.h"

namespace prompt {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::unique_ptr<DurableBlockStore> MustOpen(const StoreOptions& options) {
  auto store = DurableBlockStore::Open(options);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).ValueUnsafe();
}

std::string Body(uint64_t id, size_t len = 512) {
  std::string s(len, '\0');
  for (size_t i = 0; i < len; ++i) {
    s[i] = static_cast<char>((id * 97 + i * 13) & 0xff);
  }
  return s;
}

TEST(RetentionTest, RetainBatchesKeepsOnlyTheNewestPerOwner) {
  StoreOptions opts;
  opts.dir = FreshDir("retain_batches");
  opts.retain_batches = 3;
  auto store = MustOpen(opts);

  for (uint64_t id = 0; id < 10; ++id) {
    ASSERT_TRUE(store->Put(0, id, Body(id)).ok());
  }
  EXPECT_EQ(store->LiveBatches(0), (std::vector<uint64_t>{7, 8, 9}));
  for (uint64_t id = 0; id < 7; ++id) {
    EXPECT_FALSE(store->Contains(0, id)) << "batch " << id;
  }
  // The survivors read back intact.
  for (uint64_t id = 7; id < 10; ++id) {
    auto got = store->Get(0, id);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, Body(id));
  }
}

TEST(RetentionTest, RetainBatchesIsPerOwner) {
  StoreOptions opts;
  opts.dir = FreshDir("retain_owners");
  opts.retain_batches = 2;
  auto store = MustOpen(opts);

  for (uint64_t id = 0; id < 4; ++id) {
    ASSERT_TRUE(store->Put(0, id, Body(id)).ok());
    ASSERT_TRUE(store->Put(1, id, Body(100 + id)).ok());
  }
  EXPECT_EQ(store->LiveBatches(0), (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(store->LiveBatches(1), (std::vector<uint64_t>{2, 3}));
}

TEST(RetentionTest, RetainBytesCapsDiskAndKeepsNewestAlive) {
  StoreOptions opts;
  opts.dir = FreshDir("retain_bytes");
  opts.segment_bytes = 4 * 1024;  // small segments so GC has prefixes to drop
  opts.retain_bytes = 16 * 1024;
  auto store = MustOpen(opts);

  for (uint64_t id = 0; id < 64; ++id) {
    ASSERT_TRUE(store->Put(0, id, Body(id, 1024)).ok());
    // The byte cap holds after every put (the newest batch always survives,
    // so a single batch larger than the cap may exceed it — not this size).
    EXPECT_LE(store->disk_bytes(), opts.retain_bytes)
        << "after put " << id;
    EXPECT_TRUE(store->Contains(0, id));
  }
  EXPECT_LT(store->live_batches(), 64u);
  // Expiry ate from the front: live ids form a contiguous newest suffix.
  const std::vector<uint64_t> live = store->LiveBatches(0);
  ASSERT_FALSE(live.empty());
  EXPECT_EQ(live.back(), 63u);
  for (size_t i = 1; i < live.size(); ++i) {
    EXPECT_EQ(live[i], live[i - 1] + 1);
  }
}

TEST(RetentionTest, RetentionSurvivesReopen) {
  StoreOptions opts;
  opts.dir = FreshDir("retain_reopen");
  opts.retain_batches = 2;
  {
    auto store = MustOpen(opts);
    for (uint64_t id = 0; id < 6; ++id) {
      ASSERT_TRUE(store->Put(0, id, Body(id)).ok());
    }
    ASSERT_TRUE(store->Sync().ok());
  }
  auto reopened = MustOpen(opts);
  EXPECT_EQ(reopened->recovery().batches_recovered, 2u);
  EXPECT_EQ(reopened->LiveBatches(0), (std::vector<uint64_t>{4, 5}));
  auto got = reopened->Get(0, 5);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Body(5));
}

TEST(RetentionTest, ZeroKnobsRetainEverything) {
  StoreOptions opts;
  opts.dir = FreshDir("retain_unlimited");
  auto store = MustOpen(opts);
  for (uint64_t id = 0; id < 20; ++id) {
    ASSERT_TRUE(store->Put(0, id, Body(id)).ok());
  }
  EXPECT_EQ(store->live_batches(), 20u);
}

TEST(RetentionTest, WindowEvictionAndRetentionCompose) {
  StoreOptions opts;
  opts.dir = FreshDir("retain_evict");
  opts.retain_batches = 4;
  auto store = MustOpen(opts);
  for (uint64_t id = 0; id < 8; ++id) {
    ASSERT_TRUE(store->Put(0, id, Body(id)).ok());
  }
  // Window eviction tombstones inside the retained suffix; retention must
  // not resurrect it or miscount the per-owner quota afterwards.
  ASSERT_TRUE(store->Evict(0, 5).ok());
  EXPECT_EQ(store->LiveBatches(0), (std::vector<uint64_t>{4, 6, 7}));
  ASSERT_TRUE(store->Put(0, 8, Body(8)).ok());
  EXPECT_EQ(store->LiveBatches(0), (std::vector<uint64_t>{4, 6, 7, 8}));
}

}  // namespace
}  // namespace prompt
