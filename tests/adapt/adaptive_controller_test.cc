#include "adapt/adaptive_controller.h"

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"

namespace prompt {
namespace {

// A report whose derived signals read "calm": block-load ratio 1.01,
// split-key fraction 0.
BatchReport CalmReport(uint64_t id) {
  BatchReport r;
  r.batch_id = id;
  r.num_tuples = 1000;
  r.partition_metrics.max_block_size = 101;
  r.partition_metrics.avg_block_size = 100.0;
  r.partition_metrics.distinct_keys = 100;
  r.partition_metrics.split_keys = 0;
  return r;
}

BatchAutopsy Verdict(BatchCause cause) {
  BatchAutopsy a;
  a.dominant = cause;
  return a;
}

AdaptiveOptions TestOptions(int d = 3) {
  AdaptiveOptions o;
  o.enabled = true;
  o.d = d;
  return o;
}

TEST(AdaptiveControllerTest, EscalatesToTopRungAfterDConsecutiveSkewVerdicts) {
  AdaptivePartitionController c(TestOptions(), PartitionerType::kHash);
  EXPECT_FALSE(
      c.OnBatchCompleted(CalmReport(0), Verdict(BatchCause::kBucketSkew))
          .switch_now);
  EXPECT_FALSE(
      c.OnBatchCompleted(CalmReport(1), Verdict(BatchCause::kBucketSkew))
          .switch_now);
  auto d = c.OnBatchCompleted(CalmReport(2), Verdict(BatchCause::kBucketSkew));
  EXPECT_TRUE(d.switch_now);
  EXPECT_EQ(d.from, PartitionerType::kHash);
  // Straight to the top rung, skipping PK2: skew is a live SLA violation.
  EXPECT_EQ(d.to, PartitionerType::kPrompt);
  EXPECT_STREQ(d.reason, "skew");
  EXPECT_EQ(c.active(), PartitionerType::kPrompt);
  EXPECT_EQ(c.switches_up(), 1u);
  EXPECT_EQ(c.switches_down(), 0u);
}

TEST(AdaptiveControllerTest, AllThreeSkewCausesCountAsEvidence) {
  EXPECT_TRUE(AdaptivePartitionController::IsSkewCause(BatchCause::kBucketSkew));
  EXPECT_TRUE(
      AdaptivePartitionController::IsSkewCause(BatchCause::kStragglerCore));
  EXPECT_TRUE(
      AdaptivePartitionController::IsSkewCause(BatchCause::kSplitKeyOverflow));
  EXPECT_FALSE(AdaptivePartitionController::IsSkewCause(BatchCause::kNone));
  EXPECT_FALSE(AdaptivePartitionController::IsSkewCause(BatchCause::kQueueing));
  EXPECT_FALSE(AdaptivePartitionController::IsSkewCause(BatchCause::kRecovery));
  EXPECT_FALSE(AdaptivePartitionController::IsSkewCause(
      BatchCause::kIngestBackpressure));
}

TEST(AdaptiveControllerTest, DeEscalatesExactlyOneRungOnCalm) {
  AdaptivePartitionController c(TestOptions(), PartitionerType::kPrompt);
  EXPECT_FALSE(c.OnBatchCompleted(CalmReport(0), Verdict(BatchCause::kNone))
                   .switch_now);
  EXPECT_FALSE(c.OnBatchCompleted(CalmReport(1), Verdict(BatchCause::kNone))
                   .switch_now);
  auto d = c.OnBatchCompleted(CalmReport(2), Verdict(BatchCause::kNone));
  EXPECT_TRUE(d.switch_now);
  EXPECT_EQ(d.from, PartitionerType::kPrompt);
  EXPECT_EQ(d.to, PartitionerType::kPk2);  // one rung, not straight to Hash
  EXPECT_STREQ(d.reason, "calm");
  EXPECT_EQ(c.switches_down(), 1u);
}

TEST(AdaptiveControllerTest, AmbiguousBatchesResetBothStreaks) {
  AdaptivePartitionController c(TestOptions(), PartitionerType::kHash);
  c.OnBatchCompleted(CalmReport(0), Verdict(BatchCause::kBucketSkew));
  c.OnBatchCompleted(CalmReport(1), Verdict(BatchCause::kBucketSkew));
  // Queueing is neither skew nor calm evidence: the streak restarts.
  EXPECT_FALSE(c.OnBatchCompleted(CalmReport(2), Verdict(BatchCause::kQueueing))
                   .switch_now);
  EXPECT_FALSE(
      c.OnBatchCompleted(CalmReport(3), Verdict(BatchCause::kBucketSkew))
          .switch_now);
  EXPECT_FALSE(
      c.OnBatchCompleted(CalmReport(4), Verdict(BatchCause::kBucketSkew))
          .switch_now);
  EXPECT_TRUE(
      c.OnBatchCompleted(CalmReport(5), Verdict(BatchCause::kBucketSkew))
          .switch_now);
}

TEST(AdaptiveControllerTest, CleanVerdictOverSkewedWindowIsNotCalm) {
  // Autopsy kNone but the windowed block-load ratio is way above the calm
  // bound: the batch is ambiguous, so the controller never de-escalates.
  AdaptivePartitionController c(TestOptions(), PartitionerType::kPrompt);
  BatchReport skewed = CalmReport(0);
  skewed.partition_metrics.max_block_size = 200;  // ratio = 2.0
  for (uint64_t i = 0; i < 8; ++i) {
    skewed.batch_id = i;
    EXPECT_FALSE(
        c.OnBatchCompleted(skewed, Verdict(BatchCause::kNone)).switch_now);
  }
  EXPECT_EQ(c.active(), PartitionerType::kPrompt);
}

TEST(AdaptiveControllerTest, GraceBlocksTheImmediateReversalOnly) {
  AdaptivePartitionController c(TestOptions(/*d=*/2), PartitionerType::kHash);
  c.OnBatchCompleted(CalmReport(0), Verdict(BatchCause::kBucketSkew));
  ASSERT_TRUE(c.OnBatchCompleted(CalmReport(1), Verdict(BatchCause::kBucketSkew))
                  .switch_now);
  ASSERT_EQ(c.active(), PartitionerType::kPrompt);
  // Two calm batches complete a d-streak inside the grace window (grace = d
  // = 2 batches after the switch): the reverse move is suppressed and the
  // streak restarts.
  EXPECT_FALSE(c.OnBatchCompleted(CalmReport(2), Verdict(BatchCause::kNone))
                   .switch_now);
  auto blocked = c.OnBatchCompleted(CalmReport(3), Verdict(BatchCause::kNone));
  EXPECT_FALSE(blocked.switch_now);
  EXPECT_TRUE(blocked.blocked_by_grace);
  EXPECT_EQ(c.active(), PartitionerType::kPrompt);
  // Grace expired; a fresh calm streak now acts.
  EXPECT_FALSE(c.OnBatchCompleted(CalmReport(4), Verdict(BatchCause::kNone))
                   .switch_now);
  auto d = c.OnBatchCompleted(CalmReport(5), Verdict(BatchCause::kNone));
  EXPECT_TRUE(d.switch_now);
  EXPECT_EQ(d.to, PartitionerType::kPk2);
}

TEST(AdaptiveControllerTest, GraceAllowsContinuedSameDirectionMoves) {
  // Prompt -> PK2 on calm, then continued calm: the grace period only blocks
  // the *reverse* direction, so the ladder keeps stepping down to Hash.
  AdaptivePartitionController c(TestOptions(/*d=*/2), PartitionerType::kPrompt);
  c.OnBatchCompleted(CalmReport(0), Verdict(BatchCause::kNone));
  ASSERT_TRUE(
      c.OnBatchCompleted(CalmReport(1), Verdict(BatchCause::kNone)).switch_now);
  ASSERT_EQ(c.active(), PartitionerType::kPk2);
  EXPECT_FALSE(
      c.OnBatchCompleted(CalmReport(2), Verdict(BatchCause::kNone)).switch_now);
  auto d = c.OnBatchCompleted(CalmReport(3), Verdict(BatchCause::kNone));
  EXPECT_TRUE(d.switch_now);  // inside grace, but same direction
  EXPECT_EQ(d.to, PartitionerType::kHash);
  EXPECT_EQ(c.switches_down(), 2u);
}

TEST(AdaptiveControllerTest, SplitFractionOnlyGatesOnDemandSplitters) {
  // split_keys 50/100: a B-BPFI plan that splits half its keys is clearly
  // not calm, but PK2 splits every key by design — the same gauge says
  // nothing there and must not block de-escalation.
  BatchReport heavy_split = CalmReport(0);
  heavy_split.partition_metrics.split_keys = 50;

  AdaptiveOptions two_rung = TestOptions();
  two_rung.candidates = {PartitionerType::kHash, PartitionerType::kPk2};
  AdaptivePartitionController under_pk2(two_rung, PartitionerType::kPk2);
  bool switched = false;
  for (uint64_t i = 0; i < 3; ++i) {
    heavy_split.batch_id = i;
    switched = under_pk2.OnBatchCompleted(heavy_split, Verdict(BatchCause::kNone))
                   .switch_now;
  }
  EXPECT_TRUE(switched);  // PK2 -> Hash despite the split gauge

  AdaptivePartitionController under_prompt(TestOptions(),
                                           PartitionerType::kPrompt);
  for (uint64_t i = 0; i < 8; ++i) {
    heavy_split.batch_id = i;
    EXPECT_FALSE(
        under_prompt.OnBatchCompleted(heavy_split, Verdict(BatchCause::kNone))
            .switch_now);
  }
  EXPECT_EQ(under_prompt.active(), PartitionerType::kPrompt);
}

TEST(AdaptiveControllerTest, AtTopRungSkewNeverSwitches) {
  AdaptivePartitionController c(TestOptions(), PartitionerType::kPrompt);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_FALSE(
        c.OnBatchCompleted(CalmReport(i), Verdict(BatchCause::kBucketSkew))
            .switch_now);
  }
  EXPECT_EQ(c.active(), PartitionerType::kPrompt);
  EXPECT_EQ(c.switches_up(), 0u);
}

TEST(AdaptiveControllerTest, AtBottomRungCalmNeverSwitches) {
  AdaptivePartitionController c(TestOptions(), PartitionerType::kHash);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_FALSE(c.OnBatchCompleted(CalmReport(i), Verdict(BatchCause::kNone))
                     .switch_now);
  }
  EXPECT_EQ(c.active(), PartitionerType::kHash);
  EXPECT_EQ(c.switches_down(), 0u);
}

TEST(AdaptiveControllerTest, ObservesEveryBatchIntoItsOwnRing) {
  AdaptivePartitionController c(TestOptions(), PartitionerType::kHash);
  for (uint64_t i = 0; i < 5; ++i) {
    c.OnBatchCompleted(CalmReport(i), Verdict(BatchCause::kQueueing));
  }
  EXPECT_EQ(c.timeseries().total_observed(), 5u);
  const WindowAggregate load =
      c.timeseries().Aggregate(TimeSeriesSignal::kBlockLoadRatio);
  EXPECT_NEAR(load.mean, 1.01, 1e-9);
}

TEST(AdaptiveControllerTest, BindMetricsPublishesSwitchesAndActiveTechnique) {
  AdaptivePartitionController c(TestOptions(/*d=*/1), PartitionerType::kPk2);
  MetricsRegistry registry;
  c.BindMetrics(&registry);
  Gauge* active = registry.GetGauge("prompt_active_technique");
  EXPECT_EQ(active->value(), static_cast<double>(PartitionerType::kPk2));

  // One escalation and (after grace) one de-escalation.
  ASSERT_TRUE(c.OnBatchCompleted(CalmReport(0), Verdict(BatchCause::kBucketSkew))
                  .switch_now);
  c.OnBatchCompleted(CalmReport(1), Verdict(BatchCause::kNone));  // in grace
  ASSERT_TRUE(
      c.OnBatchCompleted(CalmReport(2), Verdict(BatchCause::kNone)).switch_now);

  EXPECT_EQ(registry
                .GetCounter("prompt_partitioner_switches_total",
                            {{"direction", "up"}})
                ->value(),
            1u);
  EXPECT_EQ(registry
                .GetCounter("prompt_partitioner_switches_total",
                            {{"direction", "down"}})
                ->value(),
            1u);
  EXPECT_EQ(active->value(), static_cast<double>(c.active()));
}

}  // namespace
}  // namespace prompt
