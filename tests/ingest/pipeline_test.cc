#include "ingest/pipeline.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <random>
#include <vector>

#include "baselines/online_partitioners.h"
#include "core/prompt_partitioner.h"
#include "engine/receiver.h"
#include "workload/sources.h"

namespace prompt {
namespace {

// A skewed tuple stream with timestamps spread over [start, end).
std::vector<Tuple> MakeStream(uint64_t n, uint64_t cardinality, uint64_t seed,
                              TimeMicros start, TimeMicros end) {
  std::mt19937_64 rng(seed);
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  const TimeMicros span = end - start;
  for (uint64_t i = 0; i < n; ++i) {
    Tuple t;
    // Squaring a uniform variate skews toward low key ids (a cheap Zipf-ish
    // profile; the pipeline only cares that frequencies differ).
    const double u =
        static_cast<double>(rng() % 1000000) / 1000000.0;
    t.key = static_cast<KeyId>(u * u * static_cast<double>(cardinality));
    t.ts = start + static_cast<TimeMicros>(
                       (static_cast<double>(i) / static_cast<double>(n)) *
                       static_cast<double>(span));
    t.value = 1.0;
    tuples.push_back(t);
  }
  return tuples;
}

std::map<KeyId, uint64_t> KeyCounts(const AccumulatedBatch& batch) {
  std::map<KeyId, uint64_t> counts;
  for (const SortedKeyRun& run : batch.keys()) counts[run.key] += run.count;
  return counts;
}

std::map<KeyId, uint64_t> KeyCounts(const PartitionedBatch& batch) {
  std::map<KeyId, uint64_t> counts;
  for (const DataBlock& b : batch.blocks) {
    for (const KeyFragment& f : b.fragments()) counts[f.key] += f.count;
  }
  return counts;
}

// Full observable state of a merged batch: the quasi-sorted (key, count)
// sequence plus every chained tuple in chain order.
struct BatchImage {
  std::vector<std::pair<KeyId, uint64_t>> runs;
  std::vector<Tuple> chained;
  bool operator==(const BatchImage& o) const {
    if (runs != o.runs || chained.size() != o.chained.size()) return false;
    for (size_t i = 0; i < chained.size(); ++i) {
      if (chained[i].ts != o.chained[i].ts ||
          chained[i].key != o.chained[i].key ||
          chained[i].value != o.chained[i].value) {
        return false;
      }
    }
    return true;
  }
};

BatchImage Image(const AccumulatedBatch& batch) {
  BatchImage img;
  for (const SortedKeyRun& run : batch.keys()) {
    img.runs.emplace_back(run.key, run.count);
    batch.ForEachTuple(run, 0, run.count,
                       [&](const Tuple& t) { img.chained.push_back(t); });
  }
  return img;
}

class ParallelIngestPipelineTest
    : public ::testing::TestWithParam<AccumulatorKind> {};

INSTANTIATE_TEST_SUITE_P(Kinds, ParallelIngestPipelineTest,
                         ::testing::Values(AccumulatorKind::kLegacyChain,
                                           AccumulatorKind::kFlat),
                         [](const auto& info) {
                           return std::string(AccumulatorKindName(info.param));
                         });

// Tentpole acceptance: for any shard count the merged batch's per-key counts
// are bit-identical to a single accumulator fed the same stream, and the
// merged list stays quasi-sorted with every tuple reachable through the
// rebased chains.
TEST_P(ParallelIngestPipelineTest, MergedCountsMatchSingleAccumulator) {
  const TimeMicros start = 0, end = Seconds(1);
  const auto stream = MakeStream(20000, 400, 7, start, end);

  auto reference = MakeAccumulator(GetParam());
  reference->Begin(start, end);
  for (const Tuple& t : stream) reference->OnTuple(t);
  const auto expected = KeyCounts(reference->Seal());

  for (uint32_t shards : {1u, 2u, 3u, 4u}) {
    IngestOptions opts;
    opts.shards = shards;
    opts.ring_capacity = 256;  // small ring: exercises back-pressure
    opts.accumulator = GetParam();
    ParallelIngestPipeline pipeline(opts);
    pipeline.BeginBatch(start, end);
    for (const Tuple& t : stream) pipeline.Ingest(t);
    const AccumulatedBatch& merged = pipeline.SealBatch();

    EXPECT_EQ(merged.num_tuples(), stream.size()) << "shards=" << shards;
    EXPECT_EQ(KeyCounts(merged), expected) << "shards=" << shards;

    // Every run's chain must yield exactly `count` tuples of that key.
    uint64_t chained = 0;
    for (const SortedKeyRun& run : merged.keys()) {
      uint64_t seen = 0;
      merged.ForEachTuple(run, 0, run.count, [&](const Tuple& t) {
        EXPECT_EQ(t.key, run.key);
        ++seen;
      });
      EXPECT_EQ(seen, run.count) << "key=" << run.key;
      chained += seen;
    }
    EXPECT_EQ(chained, merged.num_tuples());

    const IngestMetrics& m = pipeline.last_metrics();
    EXPECT_EQ(m.shards.size(), shards);
    EXPECT_EQ(m.total_tuples, stream.size());
  }
}

// Shard invariance across accumulator kinds: at every shard count the flat
// pipeline's merged batch is bit-identical to the legacy pipeline's —
// identical run sequence and identical chained tuples.
TEST(ParallelIngestPipelineDifferentialTest, FlatMatchesLegacyAtEveryShardCount) {
  const TimeMicros start = 0, end = Seconds(1);
  const auto stream = MakeStream(30000, 800, 13, start, end);

  for (uint32_t shards : {1u, 2u, 3u, 4u}) {
    auto run = [&](AccumulatorKind kind) {
      IngestOptions opts;
      opts.shards = shards;
      opts.accumulator = kind;
      ParallelIngestPipeline pipeline(opts);
      pipeline.BeginBatch(start, end);
      for (const Tuple& t : stream) pipeline.Ingest(t);
      return Image(pipeline.SealBatch());
    };
    const BatchImage legacy = run(AccumulatorKind::kLegacyChain);
    const BatchImage flat = run(AccumulatorKind::kFlat);
    EXPECT_TRUE(flat == legacy) << "shards=" << shards;
  }
}

TEST_P(ParallelIngestPipelineTest, MultipleBatchesReuseWorkers) {
  IngestOptions opts;
  opts.shards = 3;
  opts.accumulator = GetParam();
  ParallelIngestPipeline pipeline(opts);
  for (int b = 0; b < 4; ++b) {
    const TimeMicros start = Seconds(b), end = Seconds(b + 1);
    const auto stream =
        MakeStream(5000, 100, 100 + static_cast<uint64_t>(b), start, end);
    auto reference = MakeAccumulator(GetParam());
    reference->Begin(start, end);
    for (const Tuple& t : stream) reference->OnTuple(t);
    const auto expected = KeyCounts(reference->Seal());

    pipeline.BeginBatch(start, end);
    for (const Tuple& t : stream) pipeline.Ingest(t);
    const AccumulatedBatch& merged = pipeline.SealBatch();
    EXPECT_EQ(KeyCounts(merged), expected) << "batch=" << b;
  }
}

TEST_P(ParallelIngestPipelineTest, EmptyBatch) {
  IngestOptions opts;
  opts.shards = 4;
  opts.accumulator = GetParam();
  ParallelIngestPipeline pipeline(opts);
  pipeline.BeginBatch(0, Seconds(1));
  const AccumulatedBatch& merged = pipeline.SealBatch();
  EXPECT_EQ(merged.num_tuples(), 0u);
  EXPECT_TRUE(merged.keys().empty());
  // And a non-empty batch right after still works.
  pipeline.BeginBatch(Seconds(1), Seconds(2));
  Tuple t;
  t.ts = Seconds(1);
  t.key = 42;
  pipeline.Ingest(t);
  const AccumulatedBatch& merged2 = pipeline.SealBatch();
  EXPECT_EQ(merged2.num_tuples(), 1u);
  ASSERT_EQ(merged2.keys().size(), 1u);
  EXPECT_EQ(merged2.keys()[0].key, 42u);
}

TEST_P(ParallelIngestPipelineTest, ShardStatsCoverAllTuples) {
  IngestOptions opts;
  opts.shards = 4;
  opts.accumulator = GetParam();
  ParallelIngestPipeline pipeline(opts);
  const auto stream = MakeStream(10000, 1000, 3, 0, Seconds(1));
  pipeline.BeginBatch(0, Seconds(1));
  for (const Tuple& t : stream) pipeline.Ingest(t);
  pipeline.SealBatch();
  const IngestMetrics& m = pipeline.last_metrics();
  uint64_t tuples = 0, keys = 0;
  for (const ShardIngestStats& s : m.shards) {
    tuples += s.tuples;
    keys += s.keys;
  }
  EXPECT_EQ(tuples, stream.size());
  EXPECT_GT(keys, 0u);
  EXPECT_GE(ShardLoadImbalance(m), 1.0);
}

// --- Sketch (heavy-hitter) mode ---

// Sketch mode at every shard count: the merged batch conserves all tuples
// across the run list plus the stitched tail buckets, a tail key never spans
// two buckets, and the folded stats cover the whole batch.
TEST(ParallelIngestPipelineSketchTest, TailStitchConservesTuples) {
  const TimeMicros start = 0, end = Seconds(1);
  const auto stream = MakeStream(40000, 5000, 17, start, end);
  std::map<KeyId, uint64_t> truth;
  for (const Tuple& t : stream) ++truth[t.key];

  for (uint32_t shards : {1u, 2u, 4u}) {
    IngestOptions opts;
    opts.shards = shards;
    opts.key_mode = KeyMode::kSketch;
    opts.accumulator_options.sketch.capacity = 256;
    opts.accumulator_options.sketch.tail_buckets = 32;
    ParallelIngestPipeline pipeline(opts);
    pipeline.BeginBatch(start, end);
    for (const Tuple& t : stream) pipeline.Ingest(t);
    const AccumulatedBatch& merged = pipeline.SealBatch();

    EXPECT_EQ(merged.num_tuples(), stream.size()) << "shards=" << shards;
    ASSERT_FALSE(merged.tail().empty()) << "shards=" << shards;

    // Conservation: per-key counts over head runs + tail chains == truth.
    std::map<KeyId, uint64_t> seen;
    for (const SortedKeyRun& run : merged.keys()) {
      uint64_t chained = 0;
      merged.ForEachTuple(run, 0, run.count, [&](const Tuple& t) {
        EXPECT_EQ(t.key, run.key);
        ++chained;
      });
      EXPECT_EQ(chained, run.count) << "key=" << run.key;
      seen[run.key] += run.count;
    }
    // A tail key must live in exactly one global bucket (the bucket hash is
    // shard-independent), or Alg. 2 would split it without knowing.
    std::map<KeyId, size_t> key_bucket;
    uint64_t tail_tuples = 0;
    for (size_t b = 0; b < merged.tail().size(); ++b) {
      uint64_t in_bucket = 0;
      merged.ForEachTailTuple(merged.tail()[b], [&](const Tuple& t) {
        auto [it, inserted] = key_bucket.emplace(t.key, b);
        EXPECT_EQ(it->second, b) << "tail key " << t.key << " in two buckets";
        ++seen[t.key];
        ++in_bucket;
      });
      EXPECT_EQ(in_bucket, merged.tail()[b].tuples) << "bucket=" << b;
      tail_tuples += in_bucket;
    }
    EXPECT_EQ(seen, truth) << "shards=" << shards;

    const SketchBatchStats& stats = merged.stats();
    EXPECT_TRUE(stats.sketch_mode);
    EXPECT_EQ(stats.head_tuples + stats.tail_tuples, stream.size());
    EXPECT_EQ(stats.tail_tuples, tail_tuples);
    EXPECT_GT(stats.head_coverage(), 0.0);
    EXPECT_GT(stats.distinct_estimate, 0u);
  }
}

// The per-shard sketch capacity bounds merged key state at every shard
// count: run-list size stays O(shards * capacity) even at high cardinality.
TEST(ParallelIngestPipelineSketchTest, RunListBoundedBySketchCapacity) {
  const TimeMicros start = 0, end = Seconds(1);
  const auto stream = MakeStream(60000, 50000, 23, start, end);
  for (uint32_t shards : {1u, 4u}) {
    IngestOptions opts;
    opts.shards = shards;
    opts.key_mode = KeyMode::kSketch;
    opts.accumulator_options.sketch.capacity = 128;
    ParallelIngestPipeline pipeline(opts);
    pipeline.BeginBatch(start, end);
    for (const Tuple& t : stream) pipeline.Ingest(t);
    const AccumulatedBatch& merged = pipeline.SealBatch();
    EXPECT_LE(merged.keys().size(), 128u * shards) << "shards=" << shards;
    EXPECT_EQ(merged.num_tuples(), stream.size());
  }
}

// --- Receiver integration ---

std::unique_ptr<TupleSource> MakeSource(double rate = 10000,
                                        uint64_t seed = 1) {
  ZipfKeyedSource::Params params;
  params.cardinality = 300;
  params.zipf = 1.0;
  params.seed = seed;
  params.rate = std::make_shared<ConstantRate>(rate);
  return std::make_unique<SynDSource>(std::move(params));
}

// Sharded receiver + Prompt (SealAccumulated fast path) produces batches with
// the same tuple membership and per-key counts as the single-threaded
// receiver over an identical source.
TEST(ReceiverShardedIngestTest, MatchesSingleThreadedReceiver) {
  auto source_a = MakeSource(10000, 9);
  auto source_b = MakeSource(10000, 9);
  PromptPartitioner part_a, part_b;
  ReceiverOptions opts_a;
  opts_a.batch_interval = Millis(200);
  ReceiverOptions opts_b = opts_a;
  opts_b.ingest.shards = 3;
  opts_b.ingest.ring_capacity = 512;

  StreamReceiver single(source_a.get(), &part_a, opts_a);
  StreamReceiver sharded(source_b.get(), &part_b, opts_b);
  ASSERT_TRUE(single.Start().ok());
  ASSERT_TRUE(sharded.Start().ok());
  for (int i = 0; i < 4; ++i) {
    auto a = single.NextBatch(4);
    auto b = sharded.NextBatch(4);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(b->batch.num_tuples, a->batch.num_tuples) << "batch " << i;
    EXPECT_EQ(b->batch.num_keys, a->batch.num_keys) << "batch " << i;
    EXPECT_EQ(KeyCounts(b->batch), KeyCounts(a->batch)) << "batch " << i;
    EXPECT_EQ(b->batch.batch_id, a->batch.batch_id);
  }
  const IngestMetrics* m = sharded.ingest_metrics();
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->shards.size(), 3u);
  single.Stop();
  sharded.Stop();
}

// A partitioner without the SealAccumulated fast path gets the merged batch
// replayed through OnTuple: totals must still match the single-threaded run.
TEST(ReceiverShardedIngestTest, FallbackReplayForOnlinePartitioner) {
  auto source_a = MakeSource(8000, 21);
  auto source_b = MakeSource(8000, 21);
  HashPartitioner part_a, part_b;
  ReceiverOptions opts_a;
  opts_a.batch_interval = Millis(200);
  ReceiverOptions opts_b = opts_a;
  opts_b.ingest.shards = 2;

  StreamReceiver single(source_a.get(), &part_a, opts_a);
  StreamReceiver sharded(source_b.get(), &part_b, opts_b);
  ASSERT_TRUE(single.Start().ok());
  ASSERT_TRUE(sharded.Start().ok());
  for (int i = 0; i < 3; ++i) {
    auto a = single.NextBatch(4);
    auto b = sharded.NextBatch(4);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b->batch.num_tuples, a->batch.num_tuples) << "batch " << i;
    EXPECT_EQ(KeyCounts(b->batch), KeyCounts(a->batch)) << "batch " << i;
  }
  single.Stop();
  sharded.Stop();
}

// Sketch-mode receiver conserves every tuple — through the Prompt fast path
// (tail buckets placed whole by Alg. 2) and through the fallback replay
// (tail buckets drained tuple-by-tuple into an online partitioner).
TEST(ReceiverSketchModeTest, ConservesTuplesOnBothSealPaths) {
  for (const bool prompt_path : {true, false}) {
    auto source_exact = MakeSource(10000, 31);
    auto source_sketch = MakeSource(10000, 31);
    PromptPartitioner prompt_a, prompt_b;
    HashPartitioner hash_a, hash_b;
    BatchPartitioner* part_a =
        prompt_path ? static_cast<BatchPartitioner*>(&prompt_a) : &hash_a;
    BatchPartitioner* part_b =
        prompt_path ? static_cast<BatchPartitioner*>(&prompt_b) : &hash_b;

    ReceiverOptions opts_exact;
    opts_exact.batch_interval = Millis(200);
    ReceiverOptions opts_sketch = opts_exact;
    opts_sketch.ingest.shards = 2;
    opts_sketch.ingest.key_mode = KeyMode::kSketch;
    opts_sketch.ingest.accumulator_options.sketch.capacity = 64;
    // Seed N_est / K_avg with the source's real shape (10k/s * 200ms, 300
    // keys) so the auto promote threshold is sane from batch 0; later
    // batches re-estimate via the receiver EWMA (which in sketch mode must
    // feed the HLL estimate, not the head-run count — the regression this
    // test pins down).
    opts_sketch.ingest.accumulator_options.estimated_tuples = 2000;
    opts_sketch.ingest.accumulator_options.avg_keys = 300;

    StreamReceiver exact(source_exact.get(), part_a, opts_exact);
    StreamReceiver sketch(source_sketch.get(), part_b, opts_sketch);
    ASSERT_TRUE(exact.Start().ok());
    ASSERT_TRUE(sketch.Start().ok());
    for (int i = 0; i < 3; ++i) {
      auto a = exact.NextBatch(4);
      auto b = sketch.NextBatch(4);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      EXPECT_EQ(b->batch.num_tuples, a->batch.num_tuples)
          << "prompt_path=" << prompt_path << " batch " << i;
      // Per-key conservation holds in sketch mode too: tail tuples reach
      // blocks, they just carry no fragment summaries, so compare block
      // tuple contents instead of fragments.
      std::map<KeyId, uint64_t> counts_a, counts_b;
      for (const DataBlock& blk : a->batch.blocks) {
        for (const Tuple& t : blk.tuples()) ++counts_a[t.key];
      }
      for (const DataBlock& blk : b->batch.blocks) {
        for (const Tuple& t : blk.tuples()) ++counts_b[t.key];
      }
      EXPECT_EQ(counts_b, counts_a)
          << "prompt_path=" << prompt_path << " batch " << i;
      if (prompt_path) {
        EXPECT_TRUE(b->batch.sketch.sketch_mode);
        EXPECT_GT(b->batch.sketch.head_coverage(), 0.0);
      }
    }
    exact.Stop();
    sketch.Stop();
  }
}

}  // namespace
}  // namespace prompt
