#include "ingest/spsc_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace prompt {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
}

TEST(SpscRingTest, FifoSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.TryPush(i));
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.TryPop(&v));
}

TEST(SpscRingTest, FullRingRejectsPush) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));
  int v = -1;
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ring.TryPush(99));  // slot freed
}

TEST(SpscRingTest, WraparoundPreservesOrder) {
  SpscRing<int> ring(4);
  int v = -1;
  // Many laps around a tiny ring: indices wrap repeatedly.
  for (int lap = 0; lap < 100; ++lap) {
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.TryPush(lap * 3 + i));
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.TryPop(&v));
      ASSERT_EQ(v, lap * 3 + i);
    }
  }
}

TEST(SpscRingTest, SizeTracksOccupancy) {
  SpscRing<int> ring(8);
  EXPECT_EQ(ring.size(), 0u);
  for (int i = 0; i < 6; ++i) ring.TryPush(i);
  EXPECT_EQ(ring.size(), 6u);
  int v;
  ring.TryPop(&v);
  ring.TryPop(&v);
  EXPECT_EQ(ring.size(), 4u);
}

TEST(SpscRingTest, CloseIsVisibleAcrossThreads) {
  SpscRing<int> ring(4);
  EXPECT_FALSE(ring.closed());
  std::thread t([&ring] { ring.Close(); });
  t.join();
  EXPECT_TRUE(ring.closed());
}

// Two-thread stress: one producer pushes a known sequence, one consumer
// drains it. Checks no loss, no duplication, no reordering across many
// wraparounds (the ring is far smaller than the stream).
TEST(SpscRingTest, TwoThreadStressExactSequence) {
  constexpr uint64_t kItems = 200000;
  SpscRing<uint64_t> ring(64);

  std::thread producer([&ring] {
    SpinBackoff backoff;
    for (uint64_t i = 0; i < kItems; ++i) {
      while (!ring.TryPush(i)) backoff.Pause();
      backoff.Reset();
    }
    ring.Close();
  });

  uint64_t expected = 0;
  uint64_t v = 0;
  SpinBackoff backoff;
  for (;;) {
    if (ring.TryPop(&v)) {
      ASSERT_EQ(v, expected);
      ++expected;
      backoff.Reset();
      continue;
    }
    if (ring.closed()) {
      // Close-then-drain race: items pushed between our failed pop and the
      // close observation must still come out in sequence.
      while (ring.TryPop(&v)) {
        ASSERT_EQ(v, expected);
        ++expected;
      }
      break;
    }
    backoff.Pause();
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

}  // namespace
}  // namespace prompt
