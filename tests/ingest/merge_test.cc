#include "ingest/merge.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <span>
#include <vector>

namespace prompt {
namespace {

std::vector<SortedKeyRun> MakeRun(
    std::initializer_list<std::pair<KeyId, uint64_t>> entries) {
  std::vector<SortedKeyRun> run;
  for (const auto& [key, count] : entries) {
    run.push_back(SortedKeyRun{key, count, SortedKeyRun::kNoTuple});
  }
  return run;
}

std::vector<std::span<const SortedKeyRun>> Spans(
    const std::vector<std::vector<SortedKeyRun>>& shards) {
  std::vector<std::span<const SortedKeyRun>> spans;
  for (const auto& s : shards) spans.emplace_back(s);
  return spans;
}

TEST(LoserTreeMergeTest, EmptyInputs) {
  EXPECT_TRUE(MergeShardRuns({}).empty());
  std::vector<std::vector<SortedKeyRun>> shards(3);
  EXPECT_TRUE(MergeShardRuns(Spans(shards)).empty());
}

TEST(LoserTreeMergeTest, SingleShardPassesThrough) {
  std::vector<std::vector<SortedKeyRun>> shards;
  shards.push_back(MakeRun({{1, 50}, {2, 30}, {3, 10}}));
  auto merged = MergeShardRuns(Spans(shards));
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].key, 1u);
  EXPECT_EQ(merged[2].count, 10u);
}

TEST(LoserTreeMergeTest, InterleavesDescendingByCount) {
  std::vector<std::vector<SortedKeyRun>> shards;
  shards.push_back(MakeRun({{1, 100}, {3, 40}, {5, 5}}));
  shards.push_back(MakeRun({{2, 70}, {4, 40}, {6, 1}}));
  auto merged = MergeShardRuns(Spans(shards));
  ASSERT_EQ(merged.size(), 6u);
  std::vector<KeyId> keys;
  for (const auto& r : merged) keys.push_back(r.key);
  // Equal counts (40) tie-break by ascending key: 3 before 4.
  EXPECT_EQ(keys, (std::vector<KeyId>{1, 2, 3, 4, 5, 6}));
}

TEST(LoserTreeMergeTest, ReportsSourceShard) {
  std::vector<std::vector<SortedKeyRun>> shards;
  shards.push_back(MakeRun({{1, 9}}));
  shards.push_back(MakeRun({{2, 8}}));
  shards.push_back(MakeRun({{3, 7}}));
  LoserTree tree(Spans(shards));
  SortedKeyRun run;
  uint32_t source = 99;
  ASSERT_TRUE(tree.Next(&run, &source));
  EXPECT_EQ(run.key, 1u);
  EXPECT_EQ(source, 0u);
  ASSERT_TRUE(tree.Next(&run, &source));
  EXPECT_EQ(source, 1u);
  ASSERT_TRUE(tree.Next(&run, &source));
  EXPECT_EQ(source, 2u);
  EXPECT_FALSE(tree.Next(&run, &source));
}

TEST(LoserTreeMergeTest, HandlesNonPowerOfTwoAndEmptyShards) {
  std::vector<std::vector<SortedKeyRun>> shards(5);
  shards[1] = MakeRun({{10, 3}});
  shards[3] = MakeRun({{11, 4}, {12, 2}});
  auto merged = MergeShardRuns(Spans(shards));
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].key, 11u);
  EXPECT_EQ(merged[1].key, 10u);
  EXPECT_EQ(merged[2].key, 12u);
}

// Merge determinism and exactness over randomized shardings: for any shard
// count, splitting a key population across shards (disjoint keys, as hash
// routing guarantees) and merging yields (a) exactly the original per-key
// counts and (b) globally sorted order when the inputs are sorted — the
// merge never degrades the input's sortedness.
TEST(LoserTreeMergeTest, RandomizedDisjointShardingIsExactAndSorted) {
  std::mt19937_64 rng(1234);
  for (uint32_t num_shards : {1u, 2u, 3u, 4u, 7u, 16u}) {
    // Build a key population with random counts.
    std::map<KeyId, uint64_t> truth;
    for (KeyId k = 0; k < 500; ++k) {
      truth[k] = 1 + rng() % 1000;
    }
    // Route each key to a shard, then sort each shard's run list the way
    // Seal() emits it (count desc, key asc).
    std::vector<std::vector<SortedKeyRun>> shards(num_shards);
    for (const auto& [key, count] : truth) {
      shards[key % num_shards].push_back(
          SortedKeyRun{key, count, SortedKeyRun::kNoTuple});
    }
    for (auto& s : shards) {
      std::sort(s.begin(), s.end(),
                [](const SortedKeyRun& a, const SortedKeyRun& b) {
                  return RunBefore(a, b);
                });
    }
    auto merged = MergeShardRuns(Spans(shards));
    ASSERT_EQ(merged.size(), truth.size()) << "shards=" << num_shards;
    for (size_t i = 1; i < merged.size(); ++i) {
      EXPECT_FALSE(RunBefore(merged[i], merged[i - 1]))
          << "out of order at " << i << " with shards=" << num_shards;
    }
    std::map<KeyId, uint64_t> got;
    for (const auto& r : merged) got[r.key] += r.count;
    EXPECT_EQ(got, truth) << "shards=" << num_shards;

    // Determinism: a second merge of the same inputs is identical.
    auto merged2 = MergeShardRuns(Spans(shards));
    ASSERT_EQ(merged2.size(), merged.size());
    for (size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged2[i].key, merged[i].key);
      EXPECT_EQ(merged2[i].count, merged[i].count);
    }
  }
}

}  // namespace
}  // namespace prompt
