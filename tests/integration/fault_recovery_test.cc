// End-to-end fault injection + automatic in-loop recovery (§8): a node
// killed mid-map-stage must leave the window aggregates bit-identical to a
// failure-free run of the same seed, with the recovery visible in the
// per-batch reports, the run summary, the trace and the metrics registry.
#include <gtest/gtest.h>

#include <map>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "obs/observability.h"
#include "workload/sources.h"

namespace prompt {
namespace {

EngineOptions ClusterEngineOptions(uint32_t replication_factor = 2) {
  EngineOptions opts;
  opts.batch_interval = Millis(200);
  opts.map_tasks = 8;
  opts.reduce_tasks = 4;
  opts.cluster_enabled = true;
  opts.cluster.nodes = 4;
  opts.cluster.cores_per_node = 2;
  opts.cluster.replication_factor = replication_factor;
  opts.cores = 8;
  return opts;
}

std::unique_ptr<TupleSource> MakeSource(uint64_t seed = 77) {
  ZipfKeyedSource::Params params;
  params.cardinality = 500;
  params.zipf = 1.0;
  params.seed = seed;
  params.rate = std::make_shared<ConstantRate>(10000);
  return std::make_unique<SynDSource>(std::move(params));
}

std::map<KeyId, double> WindowMap(const WindowState& window) {
  return {window.Result().begin(), window.Result().end()};
}

class CollectingObserver : public Observer {
 public:
  void OnBatchComplete(const BatchReport& report,
                       const BatchTrace& trace) override {
    reports.push_back(report);
    traces.push_back(trace);
  }
  std::vector<BatchReport> reports;
  std::vector<BatchTrace> traces;
};

// The acceptance bar: kill a node during the map stage mid-run; the final
// window aggregates must match the failure-free twin bit for bit (WordCount
// sums integer counts, exact in doubles under any combine order).
TEST(FaultRecoveryTest, ExactlyOnceUnderMidMapNodeLoss) {
  auto clean_src = MakeSource(123);
  auto faulty_src = MakeSource(123);

  MicroBatchEngine clean(ClusterEngineOptions(), JobSpec::WordCount(8),
                         CreatePartitioner(PartitionerType::kPrompt),
                         clean_src.get());

  EngineOptions opts = ClusterEngineOptions();
  auto faults = ParseFaultSchedule("kill:2@5.map");
  ASSERT_TRUE(faults.ok());
  opts.faults = *faults;
  MicroBatchEngine faulty(opts, JobSpec::WordCount(8),
                          CreatePartitioner(PartitionerType::kPrompt),
                          faulty_src.get());
  CollectingObserver observer;
  faulty.AddObserver(&observer);

  RunSummary clean_summary = clean.Run(10);
  RunSummary faulty_summary = faulty.Run(10);

  // The injected failure was detected, recovered, and accounted.
  EXPECT_EQ(faulty.cluster()->alive_nodes(), 3u);
  EXPECT_GT(faulty_summary.batches_replayed, 0u);
  EXPECT_EQ(faulty_summary.failures_recovered, 1u);
  EXPECT_GT(faulty_summary.total_recovery_time, 0);
  EXPECT_GE(faulty_summary.max_recovery_time,
            faulty_summary.total_recovery_time / 10);
  EXPECT_FALSE(faulty_summary.data_loss);
  const BatchReport& hit = faulty_summary.batches[5];
  EXPECT_TRUE(hit.recovered_from_failure);
  EXPECT_GT(hit.batches_replayed, 0u);
  EXPECT_GT(hit.recovery_time, 0);
  // Recovery work is on the batch's clock.
  EXPECT_GE(hit.processing_time, hit.recovery_time);

  // Exactly-once: identical window aggregates despite the loss.
  EXPECT_EQ(WindowMap(clean.window()), WindowMap(faulty.window()));

  // The recovery shows up as a depth-0 trace span of the hit batch.
  const BatchTrace& trace = observer.traces[5];
  const TraceSpan* span = trace.FindSpan("recovery");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->depth, 0u);
  EXPECT_EQ(span->duration, hit.recovery_time);
  // Healthy batches have no recovery span.
  EXPECT_EQ(observer.traces[2].FindSpan("recovery"), nullptr);
}

TEST(FaultRecoveryTest, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    auto source = MakeSource(55);
    EngineOptions opts = ClusterEngineOptions();
    opts.faults = *ParseFaultSchedule("kill:1@3.map;revive:1@6");
    MicroBatchEngine engine(opts, JobSpec::WordCount(8),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    RunSummary summary = engine.Run(8);
    return std::make_pair(WindowMap(engine.window()),
                          summary.total_recovery_time);
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

TEST(FaultRecoveryTest, KillLeavesUnderReplicationUntilReviveTopsUp) {
  auto source = MakeSource();
  EngineOptions opts = ClusterEngineOptions();
  // Only 2 nodes: killing one leaves a single alive node, so rf=2 cannot be
  // restored until the revive.
  opts.cluster.nodes = 2;
  opts.cores = 4;
  opts.faults = *ParseFaultSchedule("kill:1@3;revive:1@6");
  MicroBatchEngine engine(opts, JobSpec::WordCount(8),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  RunSummary summary = engine.Run(8);

  // While node 1 is down every in-window batch is stuck below the factor.
  EXPECT_GT(summary.batches[3].under_replicated_batches, 0u);
  EXPECT_GT(summary.batches[4].under_replicated_batches, 0u);
  // The revive triggers a top-up back to the configured factor.
  EXPECT_EQ(summary.batches[6].under_replicated_batches, 0u);
  for (uint64_t id = 7; id > 2; --id) {
    EXPECT_EQ(engine.store()->AliveReplicaCount(id), 2u) << "batch " << id;
  }
}

TEST(FaultRecoveryTest, ReplicationFactorOneIsUnrecoverable) {
  auto source = MakeSource();
  EngineOptions opts = ClusterEngineOptions(/*replication_factor=*/1);
  // Batch 5's single copy lands on node 5 % 4 = 1; killing node 1 during
  // the map stage destroys the only replica of the in-flight batch.
  opts.faults = *ParseFaultSchedule("kill:1@5.map");
  MicroBatchEngine engine(opts, JobSpec::WordCount(8),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  RunSummary summary = engine.Run(8);
  EXPECT_TRUE(summary.data_loss);
  EXPECT_TRUE(summary.batches[5].unrecoverable);
}

TEST(FaultRecoveryTest, TaskFailuresAreRetriedWithBoundedBudget) {
  auto source = MakeSource();
  EngineOptions opts = ClusterEngineOptions();
  opts.faults = *ParseFaultSchedule("fail:0@2:2");
  MicroBatchEngine engine(opts, JobSpec::WordCount(8),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  RunSummary summary = engine.Run(4);
  EXPECT_EQ(summary.tasks_retried, 2u);
  EXPECT_EQ(summary.batches_replayed, 0u);  // retries succeeded in place
  EXPECT_FALSE(summary.data_loss);
  // The wasted attempts made batch 2 slower than its neighbors.
  EXPECT_GT(summary.batches[2].processing_time,
            summary.batches[1].processing_time);
}

TEST(FaultRecoveryTest, ExhaustedRetriesTriggerBatchReplay) {
  auto clean_src = MakeSource(31);
  auto faulty_src = MakeSource(31);
  EngineOptions opts = ClusterEngineOptions();
  MicroBatchEngine clean(opts, JobSpec::WordCount(8),
                         CreatePartitioner(PartitionerType::kPrompt),
                         clean_src.get());
  opts.faults = *ParseFaultSchedule("fail:0@2:9");  // budget is 3
  MicroBatchEngine faulty(opts, JobSpec::WordCount(8),
                          CreatePartitioner(PartitionerType::kPrompt),
                          faulty_src.get());
  RunSummary clean_summary = clean.Run(5);
  RunSummary summary = faulty.Run(5);
  (void)clean_summary;
  EXPECT_EQ(summary.tasks_retried, 3u);
  EXPECT_GT(summary.batches_replayed, 0u);
  EXPECT_FALSE(summary.data_loss);
  EXPECT_EQ(WindowMap(clean.window()), WindowMap(faulty.window()));
}

TEST(FaultRecoveryTest, StragglersGetSpeculativeBackups) {
  auto source = MakeSource();
  EngineOptions opts = ClusterEngineOptions();
  // A delay far beyond 2x the stage median triggers speculation; the backup
  // bounds the straggler's cost, so the batch stays fast.
  opts.faults = *ParseFaultSchedule("delay:0@2:10000000");
  MicroBatchEngine engine(opts, JobSpec::WordCount(8),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  RunSummary summary = engine.Run(4);
  EXPECT_EQ(summary.tasks_speculated, 1u);
  EXPECT_LT(summary.batches[2].processing_time, 10000000);

  // Speculation off: the straggler dominates the makespan.
  auto slow_src = MakeSource();
  EngineOptions slow_opts = ClusterEngineOptions();
  slow_opts.faults = *ParseFaultSchedule("delay:0@2:10000000");
  slow_opts.faults.speculation_enabled = false;
  MicroBatchEngine slow(slow_opts, JobSpec::WordCount(8),
                        CreatePartitioner(PartitionerType::kPrompt),
                        slow_src.get());
  RunSummary slow_summary = slow.Run(4);
  EXPECT_EQ(slow_summary.tasks_speculated, 0u);
  EXPECT_GE(slow_summary.batches[2].processing_time, 10000000);
}

TEST(FaultRecoveryTest, CapacityFeedClampsElasticScaleOut) {
  auto source = MakeSource();
  EngineOptions opts = ClusterEngineOptions();
  opts.elasticity_enabled = true;
  opts.elasticity.max_map_tasks = 64;
  opts.elasticity.max_reduce_tasks = 64;
  opts.faults = *ParseFaultSchedule("kill:0@2;kill:1@2");
  MicroBatchEngine engine(opts, JobSpec::WordCount(8),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  engine.Run(10);
  // Two nodes down -> 4 cores of capacity; the controller may never scale
  // past what the surviving cluster can run.
  EXPECT_LE(engine.map_tasks(), 4u);
  EXPECT_LE(engine.reduce_tasks(), 4u);
}

TEST(FaultRecoveryTest, RecoveryMetricsRegisteredLazily) {
  auto source = MakeSource();
  EngineOptions opts = ClusterEngineOptions();
  opts.obs.metrics_enabled = true;
  opts.faults = *ParseFaultSchedule("kill:2@3.map");
  MicroBatchEngine engine(opts, JobSpec::WordCount(8),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  RunSummary summary = engine.Run(6);
  MetricsRegistry* registry = engine.observability()->registry();
  ASSERT_NE(registry, nullptr);
  EXPECT_EQ(registry->GetCounter("prompt_batches_replayed_total")->value(),
            summary.batches_replayed);
  EXPECT_GT(registry->GetHistogram("prompt_recovery_us")->count(), 0u);

  // A failure-free run never registers the recovery series.
  auto clean_src = MakeSource();
  EngineOptions clean_opts = ClusterEngineOptions();
  clean_opts.obs.metrics_enabled = true;
  MicroBatchEngine clean(clean_opts, JobSpec::WordCount(8),
                         CreatePartitioner(PartitionerType::kPrompt),
                         clean_src.get());
  clean.Run(6);
  bool has_recovery_series = false;
  for (const MetricSample& s :
       clean.observability()->registry()->Snapshot()) {
    if (s.name.find("recovery") != std::string::npos ||
        s.name.find("replayed") != std::string::npos) {
      has_recovery_series = true;
    }
  }
  EXPECT_FALSE(has_recovery_series);
}

TEST(FaultRecoveryTest, RandomModeWithFixedSeedIsReproducible) {
  auto run = [] {
    auto source = MakeSource(99);
    EngineOptions opts = ClusterEngineOptions();
    opts.faults =
        *ParseFaultSchedule("random:p=0.4,seed=5,max_kills=1,revive_after=2");
    MicroBatchEngine engine(opts, JobSpec::WordCount(8),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    RunSummary summary = engine.Run(10);
    return std::make_tuple(WindowMap(engine.window()),
                           summary.failures_recovered,
                           summary.total_recovery_time);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace prompt
