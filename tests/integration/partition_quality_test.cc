// Integration-level checks that the paper's headline quality relationships
// hold in this implementation (the "shape" assertions backing Fig. 10).
#include <gtest/gtest.h>

#include <map>

#include "baselines/factory.h"
#include "stats/metrics.h"
#include "testing/test_helpers.h"

namespace prompt {
namespace {

using testing::RunBatch;
using testing::ZipfTuples;

constexpr TimeMicros kStart = 0;
constexpr TimeMicros kEnd = Seconds(1);

struct QualityRow {
  PartitionMetrics m;
};

std::map<PartitionerType, PartitionMetrics> MeasureAll(double z,
                                                       uint64_t cardinality,
                                                       uint64_t tuples) {
  std::map<PartitionerType, PartitionMetrics> rows;
  auto data = ZipfTuples(tuples, cardinality, z, kStart, kEnd, /*seed=*/11);
  for (PartitionerType type : EvaluationTechniques()) {
    auto partitioner = CreatePartitioner(type);
    auto batch = RunBatch(*partitioner, data, 8, kStart, kEnd);
    rows[type] = ComputeBlockMetrics(batch);
  }
  return rows;
}

TEST(PartitionQualityTest, PromptNearShuffleOnSizeBalance) {
  auto rows = MeasureAll(1.4, 2000, 40000);
  const double hash_bsi = rows[PartitionerType::kHash].bsi;
  ASSERT_GT(hash_bsi, 0);
  // Fig. 10a/b: Prompt and Shuffle BSI (relative to Hash) near 0.
  EXPECT_LT(rows[PartitionerType::kPrompt].bsi / hash_bsi, 0.1);
  EXPECT_LT(rows[PartitionerType::kShuffle].bsi / hash_bsi, 0.05);
  // PK2 sits between Hash and Prompt.
  EXPECT_LT(rows[PartitionerType::kPk2].bsi, hash_bsi);
}

TEST(PartitionQualityTest, PromptNearHashOnCardinalityBalance) {
  auto rows = MeasureAll(1.4, 2000, 40000);
  // Fig. 10c/d: Prompt keeps per-block key cardinality at the hash-like
  // K/P share — shuffle replicates hot keys into every block, so its
  // per-block cardinality approaches K.
  const auto& prompt = rows[PartitionerType::kPrompt];
  const auto& hash = rows[PartitionerType::kHash];
  const auto& shuffle = rows[PartitionerType::kShuffle];
  EXPECT_LT(prompt.avg_block_cardinality, shuffle.avg_block_cardinality / 2);
  EXPECT_LT(prompt.max_block_cardinality,
            2 * std::max<uint64_t>(hash.max_block_cardinality, 1));
  // Imbalance stays a small fraction of the per-block average.
  EXPECT_LT(prompt.bci, 0.35 * prompt.avg_block_cardinality);
}

TEST(PartitionQualityTest, PromptMinimizesCombinedImbalanceUnderSkew) {
  // At meaningful skew Prompt's MPI beats the single-objective baselines;
  // at near-uniform loads hash is already near-optimal on all three
  // objectives, so there Prompt need only be competitive.
  for (double z : {1.2, 1.6}) {
    auto rows = MeasureAll(z, 3000, 50000);
    const double prompt_mpi = rows[PartitionerType::kPrompt].mpi;
    for (PartitionerType other :
         {PartitionerType::kTimeBased, PartitionerType::kShuffle,
          PartitionerType::kHash}) {
      EXPECT_LE(prompt_mpi, rows[other].mpi * 1.05)
          << "z=" << z << " vs " << PartitionerTypeName(other);
    }
  }
  auto rows = MeasureAll(0.8, 3000, 50000);
  double best_other = 1e300;
  for (PartitionerType other :
       {PartitionerType::kTimeBased, PartitionerType::kShuffle,
        PartitionerType::kHash}) {
    best_other = std::min(best_other, rows[other].mpi);
  }
  EXPECT_LE(rows[PartitionerType::kPrompt].mpi, best_other * 2.0);
}

TEST(PartitionQualityTest, PromptKsrFarBelowShuffle) {
  auto rows = MeasureAll(1.2, 1000, 40000);
  EXPECT_LT(rows[PartitionerType::kPrompt].ksr,
            rows[PartitionerType::kShuffle].ksr / 2);
  EXPECT_DOUBLE_EQ(rows[PartitionerType::kHash].ksr, 1.0);
}

TEST(PartitionQualityTest, MpiWeightExtremesMimicShuffleAndHash) {
  // §3.3: p1=1 ranks partitioners by pure size balance (shuffle optimal);
  // p3=1 by pure locality (hash optimal).
  auto data = ZipfTuples(40000, 2000, 1.4, kStart, kEnd);
  auto measure = [&](PartitionerType type, const MpiWeights& w) {
    auto p = CreatePartitioner(type);
    auto batch = RunBatch(*p, data, 8, kStart, kEnd);
    return ComputeBlockMetrics(batch, w).mpi;
  };
  MpiWeights size_only{1, 0, 0};
  EXPECT_LE(measure(PartitionerType::kShuffle, size_only),
            measure(PartitionerType::kHash, size_only));
  MpiWeights locality_only{0, 0, 1};
  EXPECT_LE(measure(PartitionerType::kHash, locality_only),
            measure(PartitionerType::kShuffle, locality_only));
}

}  // namespace
}  // namespace prompt
