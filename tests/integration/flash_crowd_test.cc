// Satellite scenario test: the flash-crowd preset (60% of tuples collapse
// onto 3 viral keys for a 4 s window) must actually register as skew — the
// autopsy draws bucket-skew/straggler verdicts during the burst — and an
// adaptive run starting on the cheap Hash rung must escalate up the ladder
// while the crowd is live.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "obs/autopsy.h"
#include "workload/scenarios.h"

namespace prompt {
namespace {

constexpr TimeMicros kInterval = Millis(250);
// The preset's burst spans [4 s, 8 s): batches 16..31 at 250 ms.
constexpr uint32_t kBatches = 48;
constexpr uint64_t kBurstFirstBatch = 16;
constexpr uint64_t kBurstLastBatch = 31;

EngineOptions FlashCrowdOptions() {
  EngineOptions opts;
  opts.batch_interval = kInterval;
  opts.obs.collect_partition_metrics = true;
  opts.obs.autopsy_enabled = true;
  opts.obs.autopsy.min_excess_frac = 0.08;
  // Reduce-heavy cost model: viral-key concentration lands on reduce
  // buckets, which is the kBucketSkew signature the controller reacts to.
  opts.cost.map_per_tuple_us = 2;
  opts.cost.reduce_per_tuple_us = 50;
  opts.use_prompt_reduce = true;
  opts.unstable_queue_intervals = 1e9;
  opts.adapt.calm_split_key_frac = 0.05;
  return opts;
}

TEST(FlashCrowdScenarioTest, BurstDrawsSkewVerdictsFromTheAutopsy) {
  ScenarioSpec scenario = MakeScenario(ScenarioId::kFlashCrowd, 8000, 7);
  EngineOptions opts = FlashCrowdOptions();
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kHash),
                          scenario.source.get());
  RunSummary summary = engine.Run(kBatches);
  ASSERT_EQ(summary.batches.size(), kBatches);

  uint64_t burst_skew = 0;
  uint64_t preburst_skew = 0;
  for (const BatchReport& report : summary.batches) {
    const BatchAutopsy autopsy = ExplainBatch(report, opts.obs.autopsy);
    const bool skew = autopsy.dominant == BatchCause::kBucketSkew ||
                      autopsy.dominant == BatchCause::kStragglerCore;
    if (!skew) continue;
    if (report.batch_id >= kBurstFirstBatch &&
        report.batch_id <= kBurstLastBatch) {
      ++burst_skew;
    } else if (report.batch_id < kBurstFirstBatch) {
      ++preburst_skew;
    }
  }
  // The crowd is unmissable: at least one skew verdict inside the burst,
  // and the quiet lead-in must not be what trips it.
  EXPECT_GE(burst_skew, 1u);
  EXPECT_EQ(preburst_skew, 0u);
}

TEST(FlashCrowdScenarioTest, AdaptiveControllerEscalatesDuringTheBurst) {
  ScenarioSpec scenario = MakeScenario(ScenarioId::kFlashCrowd, 8000, 7);
  EngineOptions opts = FlashCrowdOptions();
  opts.adapt.enabled = true;
  // Start on the cheapest rung: the crowd is what must force the climb.
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kHash),
                          scenario.source.get());
  RunSummary summary = engine.Run(kBatches);

  EXPECT_GE(summary.technique_switches_up, 1u);
  bool saw_burst_escalation = false;
  for (const auto& s : summary.technique_switches) {
    if (s.reason != "skew") continue;
    EXPECT_GE(s.after_batch, kBurstFirstBatch);
    EXPECT_EQ(s.to, PartitionerType::kPrompt);
    saw_burst_escalation = true;
  }
  EXPECT_TRUE(saw_burst_escalation);
}

}  // namespace
}  // namespace prompt
