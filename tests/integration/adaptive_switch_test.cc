// End-to-end adaptive technique switching over a mid-run skew shift: a
// SkewShiftSource stream that is uniform for the first half and heavily
// Zipf-skewed for the second. Starting at Prompt, the controller must walk
// the ladder down (calm evidence) during the uniform phase and escalate back
// to Prompt (skew autopsies under Hash) after the shift — and because
// switches only change *placement*, never tuple→key content, the per-key
// window aggregates must be bit-identical to a static run over the same
// stream (WordCount sums small integers, so double addition is exact in any
// order).
#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "workload/sources.h"

namespace prompt {
namespace {

constexpr uint32_t kBatches = 24;
constexpr uint32_t kShiftBatch = 12;
constexpr TimeMicros kInterval = Millis(250);

std::unique_ptr<SkewShiftSource> MakeShiftSource() {
  ZipfKeyedSource::Params params;
  params.cardinality = 500;
  params.zipf = 0.0;  // phase 1: uniform
  params.seed = 42;
  params.rate = std::make_shared<ConstantRate>(8000);
  return std::make_unique<SkewShiftSource>(std::move(params),
                                           /*zipf_after=*/2.0,
                                           /*shift_at=*/kShiftBatch * kInterval);
}

EngineOptions AdaptiveRunOptions() {
  EngineOptions opts;
  opts.batch_interval = kInterval;
  opts.obs.collect_partition_metrics = true;
  opts.obs.autopsy_enabled = true;
  // Floor the autopsy above hash-bucket noise on uniform data but well below
  // the shifted phase's hot-bucket excess.
  opts.obs.autopsy.min_excess_frac = 0.08;
  // Reduce-heavy cost model: the hot reduce bucket is what skewed batches
  // pay for, which is the kBucketSkew signature the controller listens for.
  opts.cost.map_per_tuple_us = 2;
  opts.cost.reduce_per_tuple_us = 50;
  opts.use_prompt_reduce = true;
  opts.unstable_queue_intervals = 1e9;
  // At ~4 tuples/key the B-BPFI packer splits ~2-3% of keys on *uniform*
  // data purely from block-boundary straddling; lift the calm bound above
  // that floor so the gauge discriminates heavy-key splitting, not packing
  // noise.
  opts.adapt.calm_split_key_frac = 0.05;
  return opts;
}

RunSummary RunStatic(PartitionerType type) {
  auto source = MakeShiftSource();
  EngineOptions opts = AdaptiveRunOptions();
  MicroBatchEngine engine(opts, JobSpec::WordCount(4), CreatePartitioner(type),
                          source.get());
  return engine.Run(kBatches);
}

TEST(AdaptiveSwitchIntegrationTest, SwitchesBothDirectionsAcrossTheShift) {
  auto source = MakeShiftSource();
  EngineOptions opts = AdaptiveRunOptions();
  opts.adapt.enabled = true;
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  RunSummary summary = engine.Run(kBatches);

  // Uniform phase sheds robustness; skewed phase escalates back.
  EXPECT_GE(summary.technique_switches_down, 1u);
  EXPECT_GE(summary.technique_switches_up, 1u);
  ASSERT_FALSE(summary.technique_switches.empty());

  // The first move is a de-escalation off the initial Prompt rung, and it
  // happens strictly inside the uniform phase.
  const auto& first = summary.technique_switches.front();
  EXPECT_EQ(first.from, PartitionerType::kPrompt);
  EXPECT_EQ(first.reason, "calm");
  EXPECT_LT(first.after_batch, kShiftBatch);

  // Every escalation lands on the ladder's top rung (Prompt) and only fires
  // once the shift is live.
  bool saw_up = false;
  for (const auto& s : summary.technique_switches) {
    if (s.reason == "skew") {
      saw_up = true;
      EXPECT_EQ(s.to, PartitionerType::kPrompt);
      EXPECT_GE(s.after_batch, kShiftBatch);
    }
  }
  EXPECT_TRUE(saw_up);
}

TEST(AdaptiveSwitchIntegrationTest, ReportsMarkTheFirstBatchAfterASwitch) {
  auto source = MakeShiftSource();
  EngineOptions opts = AdaptiveRunOptions();
  opts.adapt.enabled = true;
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  RunSummary summary = engine.Run(kBatches);
  ASSERT_FALSE(summary.technique_switches.empty());

  // Each recorded switch after batch i marks batch i+1's report: it carries
  // the new technique plus the switched-from annotation (the source of the
  // depth-1 trace span).
  for (const auto& s : summary.technique_switches) {
    const size_t next = static_cast<size_t>(s.after_batch) + 1;
    ASSERT_LT(next, summary.batches.size());
    const BatchReport& r = summary.batches[next];
    EXPECT_TRUE(r.technique_switched) << "batch " << next;
    EXPECT_EQ(r.switched_from, static_cast<int32_t>(s.from));
    EXPECT_EQ(r.technique, static_cast<int32_t>(s.to));
  }
  // Unswitched batches carry the active technique but no switch mark.
  EXPECT_FALSE(summary.batches.front().technique_switched);
  EXPECT_EQ(summary.batches.front().technique,
            static_cast<int32_t>(PartitionerType::kPrompt));
}

TEST(AdaptiveSwitchIntegrationTest, WindowAggregatesMatchStaticRunsExactly) {
  auto source = MakeShiftSource();
  EngineOptions opts = AdaptiveRunOptions();
  opts.adapt.enabled = true;
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  RunSummary summary = engine.Run(kBatches);
  ASSERT_GE(summary.technique_switches.size(), 2u);  // the run did adapt

  const std::unordered_map<KeyId, double>& adaptive = engine.window().Result();
  ASSERT_FALSE(adaptive.empty());

  // Partitioning chooses placement only: every static replay of the same
  // stream must produce the same per-key window sums, bit for bit.
  for (PartitionerType type :
       {PartitionerType::kHash, PartitionerType::kPk2,
        PartitionerType::kPrompt}) {
    auto static_source = MakeShiftSource();
    MicroBatchEngine static_engine(AdaptiveRunOptions(), JobSpec::WordCount(4),
                                   CreatePartitioner(type),
                                   static_source.get());
    static_engine.Run(kBatches);
    const auto& got = static_engine.window().Result();
    ASSERT_EQ(got.size(), adaptive.size()) << PartitionerTypeName(type);
    for (const auto& [key, value] : adaptive) {
      auto it = got.find(key);
      ASSERT_NE(it, got.end()) << PartitionerTypeName(type);
      EXPECT_EQ(it->second, value) << PartitionerTypeName(type);
    }
  }
}

TEST(AdaptiveSwitchIntegrationTest, StaticRunsNeverSwitch) {
  RunSummary summary = RunStatic(PartitionerType::kHash);
  EXPECT_TRUE(summary.technique_switches.empty());
  EXPECT_EQ(summary.technique_switches_up, 0u);
  EXPECT_EQ(summary.technique_switches_down, 0u);
}

}  // namespace
}  // namespace prompt
