// End-to-end telemetry: a sharded Zipf(z=1.0) run whose key distribution
// shifts mid-stream onto one hot key. The autopsy must label the shifted
// batches' dominant cause exactly (bucket skew under hash reduce
// allocation), the time series must cover every batch, and the embedded
// HTTP exporter must serve all of it live.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "workload/sources.h"

namespace prompt {
namespace {

constexpr uint64_t kHotKey = 0xdeadbeefcafef00dULL;

/// Zipf(z=1.0) stream that, from `shift_at` (stream time) on, redirects
/// every other tuple to one hot key — a mid-stream hot-spot the partition
/// plan of a hash baseline cannot absorb.
class HotKeyShiftSource final : public TupleSource {
 public:
  HotKeyShiftSource(double rate, TimeMicros shift_at) : shift_at_(shift_at) {
    ZipfKeyedSource::Params params;
    params.cardinality = 500;
    params.zipf = 1.0;
    params.rate = std::make_shared<ConstantRate>(rate);
    inner_ = std::make_unique<SynDSource>(std::move(params));
  }

  const char* name() const override { return "HotKeyShift"; }
  uint64_t cardinality() const override { return inner_->cardinality(); }

  bool Next(Tuple* t) override {
    if (!inner_->Next(t)) return false;
    if (t->ts >= shift_at_ && (count_++ % 2 == 0)) t->key = kHotKey;
    return true;
  }

 private:
  std::unique_ptr<SynDSource> inner_;
  TimeMicros shift_at_;
  uint64_t count_ = 0;
};

/// Collects every report the engine fans out.
class ReportCollector : public Observer {
 public:
  void OnBatchComplete(const BatchReport& report,
                       const BatchTrace& trace) override {
    (void)trace;
    reports_.push_back(report);
  }
  std::vector<BatchReport> reports_;
};

std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

EngineOptions TelemetryOptions() {
  EngineOptions opts;
  opts.batch_interval = Millis(250);
  opts.ingest_shards = 2;
  opts.obs.collect_partition_metrics = true;
  opts.obs.autopsy_enabled = true;
  // Floor the autopsy at 15% of the interval: base Zipf(1.0) skew under
  // hash allocation stays below it, the injected hot key does not.
  opts.obs.autopsy.min_excess_frac = 0.15;
  opts.obs.timeseries_capacity = 64;
  // Reduce-heavy cost model: the hot reduce bucket, not the hot Map block,
  // is what the shifted batches pay for.
  opts.cost.map_per_tuple_us = 2;
  opts.cost.reduce_per_tuple_us = 50;
  return opts;
}

TEST(TelemetryIntegrationTest, HotKeyShiftIsAutopsiedAsBucketSkew) {
  constexpr uint32_t kBatches = 8;
  constexpr uint32_t kShiftBatch = 4;
  HotKeyShiftSource source(/*rate=*/8000,
                           /*shift_at=*/kShiftBatch * Millis(250));
  MicroBatchEngine engine(TelemetryOptions(), JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kHash), &source);
  ReportCollector collector;
  engine.AddObserver(&collector);

  RunSummary summary = engine.Run(kBatches);
  ASSERT_EQ(collector.reports_.size(), kBatches);

  const AutopsyOptions autopsy_opts = engine.options().obs.autopsy;
  for (const BatchReport& report : collector.reports_) {
    const BatchAutopsy a = ExplainBatch(report, autopsy_opts);
    if (report.batch_id < kShiftBatch) {
      EXPECT_EQ(a.dominant, BatchCause::kNone)
          << "pre-shift batch " << report.batch_id << " blamed on "
          << BatchCauseName(a.dominant);
    } else {
      // Exact-match: the hot key lands in one hash bucket and drags the
      // reduce completion spread far past the noise floor.
      EXPECT_EQ(a.dominant, BatchCause::kBucketSkew)
          << "shifted batch " << report.batch_id << " blamed on "
          << BatchCauseName(a.dominant) << " (excess "
          << a.excess_of(a.dominant) << "us, threshold " << a.threshold
          << "us)";
      EXPECT_GT(a.excess_of(BatchCause::kBucketSkew), a.threshold);
    }
  }

  // The engine-side autopsy tracked the same run.
  EXPECT_EQ(engine.observability()->last_autopsy().batch_id, kBatches - 1);
  EXPECT_EQ(engine.observability()->last_autopsy().dominant,
            BatchCause::kBucketSkew);
}

TEST(TelemetryIntegrationTest, TimeSeriesSeesTheShift) {
  constexpr uint32_t kBatches = 8;
  constexpr uint32_t kShiftBatch = 4;
  HotKeyShiftSource source(8000, kShiftBatch * Millis(250));
  MicroBatchEngine engine(TelemetryOptions(), JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kHash), &source);
  engine.Run(kBatches);

  const TimeSeriesStore* ts = engine.observability()->timeseries();
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->total_observed(), kBatches);
  const std::vector<TimeSeriesPoint> points = ts->Tail();
  ASSERT_EQ(points.size(), kBatches);
  // Bucket imbalance jumps across the shift: every shifted batch's BSI
  // exceeds every pre-shift batch's.
  double pre_max = 0, post_min = 1e18;
  for (const TimeSeriesPoint& p : points) {
    const double bsi = p.value(TimeSeriesSignal::kBucketImbalance);
    if (p.batch_id < kShiftBatch) {
      pre_max = std::max(pre_max, bsi);
    } else {
      post_min = std::min(post_min, bsi);
    }
  }
  EXPECT_GT(post_min, pre_max);
  // Windowed aggregates read coherently (max over the full window covers
  // the shifted batches).
  const WindowAggregate agg =
      ts->Aggregate(TimeSeriesSignal::kBucketImbalance, kBatches);
  EXPECT_EQ(agg.count, kBatches);
  EXPECT_GE(agg.max, post_min);
  EXPECT_GE(agg.p99, agg.p50);
}

TEST(TelemetryIntegrationTest, ExporterServesEveryBatchOfTheRun) {
  constexpr uint32_t kBatches = 6;
  HotKeyShiftSource source(8000, 2 * Millis(250));
  EngineOptions opts = TelemetryOptions();
  opts.obs.serve_port = 0;  // ephemeral
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kHash), &source);
  ASSERT_TRUE(engine.observability()->init_status().ok());
  const HttpExporter* exporter = engine.observability()->exporter();
  ASSERT_NE(exporter, nullptr);
  ASSERT_TRUE(exporter->serving());

  engine.Run(kBatches);

  // /timeseries.json covers every batch of the finished run.
  const std::string ts = HttpGet(exporter->port(), "/timeseries.json");
  EXPECT_NE(ts.find("200 OK"), std::string::npos);
  EXPECT_NE(ts.find("\"batches_seen\":" + std::to_string(kBatches)),
            std::string::npos);
  for (uint32_t i = 0; i < kBatches; ++i) {
    EXPECT_NE(ts.find("\"batch_id\":" + std::to_string(i)), std::string::npos)
        << "batch " << i << " missing from /timeseries.json";
  }

  // /metrics is live Prometheus exposition of the same run.
  const std::string metrics = HttpGet(exporter->port(), "/metrics");
  EXPECT_NE(metrics.find("# TYPE prompt_batches_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("prompt_batches_total " + std::to_string(kBatches)),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("prompt_batch_latency_us{quantile=\"0.99\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace prompt
