// Cross-cutting invariant: the streaming query answer must be identical no
// matter which partitioning technique is used — partitioning affects
// performance, never results.
#include <gtest/gtest.h>

#include <map>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "workload/sources.h"

namespace prompt {
namespace {

std::map<KeyId, double> WindowAnswer(PartitionerType type, bool prompt_reduce,
                                     DatasetId dataset = DatasetId::kSynD) {
  EngineOptions opts;
  opts.batch_interval = Millis(200);
  opts.map_tasks = 5;
  opts.reduce_tasks = 3;
  opts.cores = 4;
  opts.use_prompt_reduce = prompt_reduce;
  auto source = MakeDataset(dataset, std::make_shared<ConstantRate>(15000),
                            /*seed=*/1234);
  MicroBatchEngine engine(opts, JobSpec::WordCount(4), CreatePartitioner(type),
                          source.get());
  engine.Run(6);
  std::map<KeyId, double> out(engine.window().Result().begin(),
                              engine.window().Result().end());
  return out;
}

TEST(CorrectnessTest, AllTechniquesComputeTheSameAnswer) {
  auto reference = WindowAnswer(PartitionerType::kHash, false);
  ASSERT_FALSE(reference.empty());
  for (PartitionerType type : EvaluationTechniques()) {
    auto got = WindowAnswer(type, /*prompt_reduce=*/true);
    EXPECT_EQ(got, reference) << PartitionerTypeName(type);
  }
}

TEST(CorrectnessTest, ReduceAllocatorDoesNotChangeAnswers) {
  auto with_prompt = WindowAnswer(PartitionerType::kPrompt, true);
  auto with_hash = WindowAnswer(PartitionerType::kPrompt, false);
  EXPECT_EQ(with_prompt, with_hash);
}

TEST(CorrectnessTest, HoldsAcrossDatasets) {
  for (DatasetId dataset :
       {DatasetId::kTweets, DatasetId::kGcm, DatasetId::kTpch}) {
    auto prompt_answer =
        WindowAnswer(PartitionerType::kPrompt, true, dataset);
    auto shuffle_answer =
        WindowAnswer(PartitionerType::kShuffle, true, dataset);
    EXPECT_EQ(prompt_answer, shuffle_answer) << DatasetName(dataset);
  }
}

TEST(CorrectnessTest, KeyedSumAgreesAcrossTechniques) {
  auto run = [](PartitionerType type) {
    EngineOptions opts;
    opts.batch_interval = Millis(200);
    opts.map_tasks = 4;
    opts.reduce_tasks = 4;
    opts.cores = 4;
    ZipfKeyedSource::Params params;
    params.cardinality = 5000;
    params.zipf = 0.6;
    params.seed = 99;
    params.rate = std::make_shared<ConstantRate>(10000);
    DebsTaxiSource source(std::move(params), DebsTaxiSource::Query::kFare);
    MicroBatchEngine engine(opts, JobSpec::KeyedSum(3),
                            CreatePartitioner(type), &source);
    engine.Run(5);
    std::map<KeyId, double> out(engine.window().Result().begin(),
                                engine.window().Result().end());
    return out;
  };
  auto ref = run(PartitionerType::kHash);
  auto got = run(PartitionerType::kPrompt);
  ASSERT_EQ(ref.size(), got.size());
  for (const auto& [k, v] : ref) {
    ASSERT_NEAR(got.at(k), v, 1e-6 * std::max(1.0, std::abs(v))) << k;
  }
}

}  // namespace
}  // namespace prompt
