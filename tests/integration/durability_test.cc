// Crash-restart matrix: kill the engine at every stage boundary, under
// every fsync policy, at rf 1 and 2 — then restart over the same store
// directory and demand either a bit-identical recovered window (for every
// batch the policy promised to persist) or an honest data_loss report.
// Nothing in between: recovery must never fabricate output.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "fault/fault_injector.h"
#include "workload/sources.h"

namespace prompt {
namespace {

constexpr uint64_t kCrashAt = 4;  // the batch whose processing dies
constexpr uint32_t kRunBatches = 8;

EngineOptions StoreOpts(const std::string& dir, FsyncPolicy fsync,
                        uint32_t rf) {
  EngineOptions opts;
  opts.batch_interval = Millis(200);
  opts.map_tasks = 4;
  opts.reduce_tasks = 3;
  opts.cluster_enabled = true;
  opts.cluster.nodes = 4;
  opts.cluster.cores_per_node = 2;
  opts.cluster.replication_factor = rf;
  opts.cores = 8;
  opts.store.dir = dir;
  opts.store.fsync = fsync;
  return opts;
}

std::unique_ptr<TupleSource> MakeSource() {
  ZipfKeyedSource::Params params;
  params.cardinality = 800;
  params.zipf = 1.0;
  params.seed = 5;
  params.rate = std::make_shared<ConstantRate>(8000);
  return std::make_unique<SynDSource>(std::move(params));
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/durability_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<KV> WindowTopK(const MicroBatchEngine& engine) {
  return engine.window().TopK(50);
}

/// The uninterrupted run's window after `batches` batches — the ground
/// truth a recovered engine must reproduce exactly.
std::vector<KV> ReferenceWindow(uint32_t batches) {
  auto source = MakeSource();
  EngineOptions opts = StoreOpts("", FsyncPolicy::kBatch, 2);
  opts.store = StoreOptions{};  // memory-only reference
  MicroBatchEngine engine(opts, JobSpec::WordCount(10),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  engine.Run(batches);
  return WindowTopK(engine);
}

void ExpectSameWindow(const std::vector<KV>& got, const std::vector<KV>& want,
                      const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, want[i].key) << label << " rank " << i;
    EXPECT_EQ(got[i].value, want[i].value) << label << " rank " << i;
  }
}

TEST(DurabilityMatrixTest, EveryStageFsyncAndRfComboRecoversHonestly) {
  for (const char* stage : {"start", "map", "reduce"}) {
    for (FsyncPolicy fsync :
         {FsyncPolicy::kNever, FsyncPolicy::kBatch, FsyncPolicy::kAlways}) {
      for (uint32_t rf : {1u, 2u}) {
        const std::string label = std::string(stage) + "/" +
                                  FsyncPolicyName(fsync) + "/rf" +
                                  std::to_string(rf);
        const std::string dir = FreshDir(label);

        // --- the doomed run -------------------------------------------
        {
          auto source = MakeSource();
          EngineOptions opts = StoreOpts(dir, fsync, rf);
          auto faults = ParseFaultSchedule(
              "crash:" + std::to_string(kCrashAt) + "." + stage);
          ASSERT_TRUE(faults.ok()) << label;
          opts.faults = *faults;
          MicroBatchEngine engine(opts, JobSpec::WordCount(10),
                                  CreatePartitioner(PartitionerType::kPrompt),
                                  source.get());
          RunSummary summary = engine.Run(kRunBatches);
          EXPECT_TRUE(summary.crashed) << label;
          EXPECT_EQ(summary.crashed_at_batch, kCrashAt) << label;
          // The doomed batch's report is never published — a crashed
          // process reports nothing.
          ASSERT_EQ(summary.batches.size(), kCrashAt) << label;
          EXPECT_EQ(summary.batches.back().batch_id, kCrashAt - 1) << label;
        }

        // --- the restart ----------------------------------------------
        auto source = MakeSource();
        MicroBatchEngine engine(StoreOpts(dir, fsync, rf),
                                JobSpec::WordCount(10),
                                CreatePartitioner(PartitionerType::kPrompt),
                                source.get());
        const auto& rec = engine.durable_recovery();
        // What each policy promises to have persisted at the crash point:
        // the batch-kCrashAt record was appended (input logging precedes
        // every stage) but only kAlways had synced it.
        uint64_t expect_recovered = 0;
        bool expect_loss = true;
        switch (fsync) {
          case FsyncPolicy::kAlways:
            expect_recovered = kCrashAt + 1;
            expect_loss = false;
            break;
          case FsyncPolicy::kBatch:
            expect_recovered = kCrashAt;  // everything but the doomed batch
            break;
          case FsyncPolicy::kNever:
            expect_recovered = 0;  // only the segment header was durable
            break;
        }
        EXPECT_EQ(rec.batches_recovered, expect_recovered) << label;
        EXPECT_EQ(rec.data_loss, expect_loss) << label;
        if (expect_loss) {
          EXPECT_GE(rec.torn_records, 1u) << label;
        } else {
          EXPECT_EQ(rec.torn_records, 0u) << label;
        }

        // Bit-identical window for everything that was persisted.
        ExpectSameWindow(
            WindowTopK(engine),
            ReferenceWindow(static_cast<uint32_t>(expect_recovered)), label);
      }
    }
  }
}

TEST(DurabilityTest, RecoveredEngineResumesBatchNumbering) {
  const std::string dir = FreshDir("resume");
  {
    auto source = MakeSource();
    MicroBatchEngine engine(StoreOpts(dir, FsyncPolicy::kBatch, 2),
                            JobSpec::WordCount(10),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    engine.Run(3);
  }
  auto source = MakeSource();
  MicroBatchEngine engine(StoreOpts(dir, FsyncPolicy::kBatch, 2),
                          JobSpec::WordCount(10),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  EXPECT_EQ(engine.durable_recovery().batches_recovered, 3u);
  RunSummary summary = engine.Run(2);
  ASSERT_EQ(summary.batches.size(), 2u);
  // Ids continue where the previous process stopped — a replayed id would
  // shadow a recovered batch in the store and the window.
  EXPECT_EQ(summary.batches[0].batch_id, 3u);
  EXPECT_EQ(summary.batches[1].batch_id, 4u);
  EXPECT_FALSE(summary.crashed);
}

TEST(DurabilityTest, CrashedEngineRefusesFurtherRuns) {
  const std::string dir = FreshDir("refuse");
  auto source = MakeSource();
  EngineOptions opts = StoreOpts(dir, FsyncPolicy::kBatch, 2);
  opts.faults = *ParseFaultSchedule("crash:2");
  MicroBatchEngine engine(opts, JobSpec::WordCount(10),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  RunSummary first = engine.Run(5);
  EXPECT_TRUE(first.crashed);
  // A dead process cannot process more batches; only a new engine over the
  // same store directory (a restart) continues the query.
  RunSummary second = engine.Run(3);
  EXPECT_TRUE(second.crashed);
  EXPECT_TRUE(second.batches.empty());
}

TEST(DurabilityTest, WindowEvictionTombstonesTheStore) {
  // A 3-batch window over 6 batches: ids 0..2 must be tombstoned (and the
  // log's front reclaimable), ids 3..5 still live for recovery.
  const std::string dir = FreshDir("evict");
  {
    auto source = MakeSource();
    MicroBatchEngine engine(StoreOpts(dir, FsyncPolicy::kBatch, 2),
                            JobSpec::WordCount(3),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    engine.Run(6);
    ASSERT_NE(engine.durable_store(), nullptr);
    EXPECT_EQ(engine.durable_store()->live_batches(), 3u);
  }
  auto source = MakeSource();
  MicroBatchEngine engine(StoreOpts(dir, FsyncPolicy::kBatch, 2),
                          JobSpec::WordCount(3),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  EXPECT_EQ(engine.durable_recovery().batches_recovered, 3u);
  EXPECT_EQ(engine.durable_recovery().first_recovered_batch, 3u);
  EXPECT_EQ(engine.durable_recovery().last_recovered_batch, 5u);
}

TEST(DurabilityTest, UnopenableStoreFailsInitStatusNotSilently) {
  // A requested store dir that cannot be opened (here: a regular file
  // squats on the path) must surface in init_status() and data_loss, never
  // silently degrade the engine to memory-only durability.
  const std::string path = FreshDir("unopenable");
  {
    std::ofstream f(path, std::ios::binary);
    f << "a file where the store dir should be";
  }
  auto source = MakeSource();
  MicroBatchEngine engine(StoreOpts(path, FsyncPolicy::kBatch, 1),
                          JobSpec::WordCount(10),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  EXPECT_FALSE(engine.init_status().ok());
  EXPECT_TRUE(engine.durable_recovery().data_loss);
  EXPECT_EQ(engine.durable_store(), nullptr);
}

}  // namespace
}  // namespace prompt
