// End-to-end cluster mode: locality scheduling, node failure during a run,
// and §8 recovery of in-window batches from surviving replicas.
#include <gtest/gtest.h>

#include <map>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "workload/sources.h"

namespace prompt {
namespace {

EngineOptions ClusterEngineOptions() {
  EngineOptions opts;
  opts.batch_interval = Millis(200);
  opts.map_tasks = 8;
  opts.reduce_tasks = 4;
  opts.cluster_enabled = true;
  opts.cluster.nodes = 4;
  opts.cluster.cores_per_node = 2;
  opts.cluster.replication_factor = 2;
  return opts;
}

std::unique_ptr<TupleSource> MakeSource(uint64_t seed = 77) {
  ZipfKeyedSource::Params params;
  params.cardinality = 500;
  params.zipf = 1.0;
  params.seed = seed;
  params.rate = std::make_shared<ConstantRate>(10000);
  return std::make_unique<SynDSource>(std::move(params));
}

TEST(ClusterRecoveryTest, RunsWithLocalityScheduling) {
  auto source = MakeSource();
  MicroBatchEngine engine(ClusterEngineOptions(), JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  auto summary = engine.Run(5);
  ASSERT_EQ(summary.batches.size(), 5u);
  for (const auto& b : summary.batches) {
    EXPECT_GT(b.map_makespan, 0);
    // 8 blocks, rf=2 over 4 nodes with 8 cores: everything can run local.
    EXPECT_EQ(b.remote_map_tasks, 0u);
  }
  EXPECT_NE(engine.cluster(), nullptr);
  EXPECT_NE(engine.store(), nullptr);
}

TEST(ClusterRecoveryTest, InWindowBatchesAreRecomputable) {
  auto source = MakeSource();
  MicroBatchEngine engine(ClusterEngineOptions(), JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  engine.Run(6);
  // Window is 4 batches; batches 2..5 must still be in the store.
  for (uint64_t id = 2; id <= 5; ++id) {
    auto out = engine.RecomputeBatchFromStore(id);
    EXPECT_TRUE(out.ok()) << "batch " << id << ": " << out.status().ToString();
    EXPECT_FALSE(out->empty());
  }
  // Batch 0 and 1 expired from the window and were evicted.
  EXPECT_TRUE(engine.RecomputeBatchFromStore(0).status().IsKeyError());
  EXPECT_TRUE(engine.RecomputeBatchFromStore(1).status().IsKeyError());
}

TEST(ClusterRecoveryTest, RecomputedOutputMatchesWindowContribution) {
  // Run two identically-seeded engines; in one of them, recompute a batch
  // from the store and check it matches the other's live output by
  // reconstructing the same per-key aggregation.
  auto source_a = MakeSource(123);
  auto source_b = MakeSource(123);
  auto opts = ClusterEngineOptions();
  MicroBatchEngine a(opts, JobSpec::WordCount(8),
                     CreatePartitioner(PartitionerType::kPrompt),
                     source_a.get());
  MicroBatchEngine b(opts, JobSpec::WordCount(8),
                     CreatePartitioner(PartitionerType::kPrompt),
                     source_b.get());
  a.Run(3);
  b.Run(3);
  auto redo = a.RecomputeBatchFromStore(2);
  ASSERT_TRUE(redo.ok());
  auto redo_b = b.RecomputeBatchFromStore(2);
  ASSERT_TRUE(redo_b.ok());
  std::map<KeyId, double> ma, mb;
  for (const KV& kv : *redo) ma[kv.key] = kv.value;
  for (const KV& kv : *redo_b) mb[kv.key] = kv.value;
  EXPECT_EQ(ma, mb);
}

TEST(ClusterRecoveryTest, SurvivesNodeFailureMidRun) {
  auto source = MakeSource();
  MicroBatchEngine engine(ClusterEngineOptions(), JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  engine.Run(3);
  ASSERT_TRUE(engine.KillNode(1).ok());
  auto summary = engine.Run(3);  // keeps running on 3 nodes
  ASSERT_EQ(summary.batches.size(), 3u);
  // With rf=2, every in-window batch is still recoverable after one loss.
  auto redo = engine.RecomputeBatchFromStore(5);
  EXPECT_TRUE(redo.ok()) << redo.status().ToString();
  // Revive and continue.
  ASSERT_TRUE(engine.ReviveNode(1).ok());
  EXPECT_EQ(engine.Run(2).batches.size(), 2u);
}

TEST(ClusterRecoveryTest, DoubleFailureCanLoseBatches) {
  auto opts = ClusterEngineOptions();
  opts.cluster.nodes = 3;
  opts.cluster.replication_factor = 2;
  auto source = MakeSource();
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  engine.Run(4);
  ASSERT_TRUE(engine.KillNode(0).ok());
  ASSERT_TRUE(engine.KillNode(1).ok());
  // Some in-window batch had both replicas on the dead nodes.
  bool any_lost = false;
  for (uint64_t id = 0; id < 4; ++id) {
    auto r = engine.RecomputeBatchFromStore(id);
    if (!r.ok() && r.status().code() == StatusCode::kUnknownError) {
      any_lost = true;
    }
  }
  EXPECT_TRUE(any_lost);
}

TEST(ClusterRecoveryTest, KillNodeRequiresClusterMode) {
  auto source = MakeSource();
  EngineOptions opts;
  opts.batch_interval = Millis(200);
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  EXPECT_TRUE(engine.KillNode(0).IsInvalid());
  EXPECT_TRUE(engine.RecomputeBatchFromStore(0).status().IsInvalid());
}

}  // namespace
}  // namespace prompt
