// §8 consistency: batch replication, recompute-on-failure, exactly-once at
// batch granularity, and window retraction under recovery.
#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "workload/sources.h"

namespace prompt {
namespace {

EngineOptions RecoveryOptions() {
  EngineOptions opts;
  opts.batch_interval = Millis(200);
  opts.map_tasks = 4;
  opts.reduce_tasks = 3;
  opts.cores = 4;
  opts.replicate_input = true;
  return opts;
}

std::unique_ptr<TupleSource> MakeSource(uint64_t seed = 5) {
  ZipfKeyedSource::Params params;
  params.cardinality = 800;
  params.zipf = 1.0;
  params.seed = seed;
  params.rate = std::make_shared<ConstantRate>(8000);
  return std::make_unique<SynDSource>(std::move(params));
}

TEST(RecoveryTest, EveryBatchIsRecomputable) {
  auto source = MakeSource();
  MicroBatchEngine engine(RecoveryOptions(), JobSpec::WordCount(3),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  for (int i = 0; i < 5; ++i) {
    engine.Run(1);
    EXPECT_TRUE(engine.VerifyRecoveryOfLastBatch().ok()) << "batch " << i;
  }
}

TEST(RecoveryTest, RecomputationIsDeterministicAcrossTechniques) {
  for (PartitionerType type :
       {PartitionerType::kShuffle, PartitionerType::kPk5,
        PartitionerType::kPrompt}) {
    auto source = MakeSource(17);
    MicroBatchEngine engine(RecoveryOptions(), JobSpec::WordCount(3),
                            CreatePartitioner(type), source.get());
    engine.Run(3);
    EXPECT_TRUE(engine.VerifyRecoveryOfLastBatch().ok())
        << PartitionerTypeName(type);
  }
}

TEST(RecoveryTest, VerifyRecomputesOverTheAliveCoreCount) {
  // Regression: the recompute used to be costed over options.cores even
  // after node losses shrank the cluster. Killing 3 of 4 nodes must make
  // the same batch's recovery recomputation strictly more expensive
  // (8 tasks on 2 surviving cores instead of 8).
  auto opts = RecoveryOptions();
  opts.map_tasks = 8;
  opts.cluster_enabled = true;
  opts.cluster.nodes = 4;
  opts.cluster.cores_per_node = 2;
  opts.cores = 8;
  auto source = MakeSource();
  MicroBatchEngine engine(opts, JobSpec::WordCount(3),
                          CreatePartitioner(PartitionerType::kPrompt),
                          source.get());
  engine.Run(3);
  ASSERT_TRUE(engine.VerifyRecoveryOfLastBatch().ok());
  const TimeMicros full_cluster_cost = engine.last_verify_recovery_cost();
  ASSERT_GT(full_cluster_cost, 0);

  ASSERT_TRUE(engine.KillNode(1).ok());
  ASSERT_TRUE(engine.KillNode(2).ok());
  ASSERT_TRUE(engine.KillNode(3).ok());
  ASSERT_TRUE(engine.VerifyRecoveryOfLastBatch().ok());
  EXPECT_GT(engine.last_verify_recovery_cost(), full_cluster_cost);
}

TEST(RecoveryTest, RecoveryWorksUnderElasticScaling) {
  auto opts = RecoveryOptions();
  opts.elasticity_enabled = true;
  opts.cores_track_tasks = true;
  opts.elasticity.d = 2;
  ZipfKeyedSource::Params params;
  params.cardinality = 800;
  params.zipf = 1.0;
  params.rate = std::make_shared<PiecewiseRate>(
      std::vector<PiecewiseRate::Knot>{{0, 4000}, {Seconds(3), 40000}});
  SynDSource source(std::move(params));
  MicroBatchEngine engine(opts, JobSpec::WordCount(3),
                          CreatePartitioner(PartitionerType::kPrompt),
                          &source);
  engine.Run(15);
  EXPECT_TRUE(engine.VerifyRecoveryOfLastBatch().ok());
}

}  // namespace
}  // namespace prompt
