// Randomized cross-cutting invariants: every partitioning technique, across
// random workload shapes, must conserve tuples, respect block counts, and
// never crash; the simulated engine must be bit-deterministic per seed.
#include <gtest/gtest.h>

#include <map>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "engine/serde.h"
#include "testing/test_helpers.h"
#include "workload/composite_source.h"
#include "workload/disorder.h"
#include "workload/sources.h"

namespace prompt {
namespace {

using testing::BatchKeyHistogram;
using testing::KeyHistogram;
using testing::RunBatch;

std::vector<PartitionerType> AllTechniques() {
  return {PartitionerType::kTimeBased, PartitionerType::kShuffle,
          PartitionerType::kHash,      PartitionerType::kPk2,
          PartitionerType::kPk5,       PartitionerType::kCam,
          PartitionerType::kPrompt,    PartitionerType::kPromptPostSort,
          PartitionerType::kFfd,       PartitionerType::kFragMin,
          PartitionerType::kSketch};
}

class PartitionerFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionerFuzzTest, AllTechniquesConserveRandomWorkloads) {
  Rng shape_rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    const uint64_t tuples = 100 + shape_rng.NextBounded(20000);
    const uint64_t cardinality = 1 + shape_rng.NextBounded(3000);
    const double z = shape_rng.NextDouble() * 2.0;
    const uint32_t blocks = 1 + static_cast<uint32_t>(shape_rng.NextBounded(24));
    auto data = testing::ZipfTuples(tuples, cardinality, z, 0, Seconds(1),
                                    shape_rng.Next());
    auto expected = KeyHistogram(data);
    for (PartitionerType type : AllTechniques()) {
      auto p = CreatePartitioner(type);
      auto batch = RunBatch(*p, data, blocks, 0, Seconds(1));
      ASSERT_EQ(batch.blocks.size(), blocks)
          << p->name() << " round " << round;
      ASSERT_EQ(batch.num_tuples, tuples) << p->name() << " round " << round;
      ASSERT_EQ(BatchKeyHistogram(batch), expected)
          << p->name() << " lost or duplicated tuples (round " << round
          << ", n=" << tuples << ", k=" << cardinality << ", z=" << z
          << ", p=" << blocks << ")";
      // Fragment summaries must be consistent with tuple contents.
      for (const auto& block : batch.blocks) {
        uint64_t frag_total = 0;
        for (const auto& f : block.fragments()) frag_total += f.count;
        ASSERT_EQ(frag_total, block.size()) << p->name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, PartitionerFuzzTest,
                         ::testing::Values(101, 202, 303));

TEST(EngineDeterminismTest, IdenticalSeedsGiveIdenticalRuns) {
  auto run_once = [] {
    ZipfKeyedSource::Params params;
    params.cardinality = 700;
    params.zipf = 1.1;
    params.seed = 55;
    params.rate = std::make_shared<SinusoidalRate>(9000, 0.4, Millis(700));
    SynDSource source(std::move(params));
    EngineOptions opts;
    opts.batch_interval = Millis(250);
    opts.map_tasks = 5;
    opts.reduce_tasks = 3;
    opts.cores = 4;
    MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                            CreatePartitioner(PartitionerType::kPrompt),
                            &source);
    auto summary = engine.Run(8);
    std::map<KeyId, double> window(engine.window().Result().begin(),
                                   engine.window().Result().end());
    return std::make_pair(summary, window);
  };
  auto [s1, w1] = run_once();
  auto [s2, w2] = run_once();
  ASSERT_EQ(s1.batches.size(), s2.batches.size());
  for (size_t i = 0; i < s1.batches.size(); ++i) {
    EXPECT_EQ(s1.batches[i].num_tuples, s2.batches[i].num_tuples) << i;
    EXPECT_EQ(s1.batches[i].num_keys, s2.batches[i].num_keys) << i;
    EXPECT_EQ(s1.batches[i].map_makespan, s2.batches[i].map_makespan) << i;
    EXPECT_EQ(s1.batches[i].reduce_makespan, s2.batches[i].reduce_makespan)
        << i;
  }
  EXPECT_EQ(w1, w2);
}

TEST(SerdeFuzzTest, SingleByteCorruptionIsAlwaysDetected) {
  PromptPartitioner partitioner;
  auto data = testing::ZipfTuples(600, 40, 1.0, 0, Seconds(1));
  auto batch = RunBatch(partitioner, data, 3, 0, Seconds(1));
  const std::string bytes = EncodeBatch(batch);
  Rng rng(13);
  int detected = 0;
  constexpr int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    std::string corrupted = bytes;
    const size_t pos = rng.NextBounded(corrupted.size());
    const char flip = static_cast<char>(1 + rng.NextBounded(255));
    corrupted[pos] ^= flip;
    auto r = DecodeBatch(corrupted);  // must never crash
    if (!r.ok()) ++detected;
  }
  // The checksum covers the payload and the magic covers the header;
  // corruption of the stored checksum itself also fails. Everything must
  // be caught.
  EXPECT_EQ(detected, kTrials);
}

TEST(CompositeEngineTest, EngineRunsOnMergedReceivers) {
  // Two receivers with different rates and key spaces feeding one engine.
  ZipfKeyedSource::Params a_params;
  a_params.cardinality = 300;
  a_params.zipf = 1.0;
  a_params.seed = 1;
  a_params.rate = std::make_shared<ConstantRate>(4000);
  SynDSource a(std::move(a_params));
  ZipfKeyedSource::Params b_params;
  b_params.cardinality = 300;
  b_params.zipf = 0.4;
  b_params.seed = 2;
  b_params.rate = std::make_shared<ConstantRate>(8000);
  SynDSource b(std::move(b_params));
  CompositeSource merged({&a, &b});

  EngineOptions opts;
  opts.batch_interval = Millis(250);
  MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                          CreatePartitioner(PartitionerType::kPrompt),
                          &merged);
  auto summary = engine.Run(6);
  for (const auto& batch : summary.batches) {
    EXPECT_NEAR(static_cast<double>(batch.num_tuples), 3000, 400);
  }
  EXPECT_FALSE(engine.window().Result().empty());
}

TEST(DisorderedEngineTest, ReorderBufferFeedsTheEngineCleanly) {
  // Engine over a disordered feed with a watermark reorder buffer: results
  // must equal the ordered run (no loss, no misplacement across batches).
  auto make_inner = [] {
    ZipfKeyedSource::Params params;
    params.cardinality = 400;
    params.zipf = 1.0;
    params.seed = 31;
    params.rate = std::make_shared<ConstantRate>(8000);
    return std::make_unique<SynDSource>(std::move(params));
  };
  auto run = [](TupleSource* source) {
    EngineOptions opts;
    opts.batch_interval = Millis(250);
    MicroBatchEngine engine(opts, JobSpec::WordCount(4),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source);
    engine.Run(6);
    return std::map<KeyId, double>(engine.window().Result().begin(),
                                   engine.window().Result().end());
  };

  auto ordered_source = make_inner();
  auto expected = run(ordered_source.get());

  auto inner = make_inner();
  DisorderedSource disordered(inner.get(), 32);
  ReorderBuffer reordered(&disordered, Millis(20));
  auto got = run(&reordered);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(reordered.dropped(), 0u);
}

}  // namespace
}  // namespace prompt
