// §8 consistency in action: run on a simulated 4-node cluster with
// replicated batches, kill a node mid-run, keep processing on the survivors,
// and recompute a lost batch's output from its surviving replica —
// exactly-once at batch granularity.
#include <cstdio>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "workload/sources.h"

using namespace prompt;

int main() {
  ZipfKeyedSource::Params params;
  params.cardinality = 2000;
  params.zipf = 1.0;
  params.rate = std::make_shared<ConstantRate>(12000);
  SynDSource source(std::move(params));

  EngineOptions options;
  options.batch_interval = Millis(500);
  options.map_tasks = 8;
  options.reduce_tasks = 4;
  options.cluster_enabled = true;
  options.cluster.nodes = 4;
  options.cluster.cores_per_node = 2;
  options.cluster.replication_factor = 2;

  MicroBatchEngine engine(options, JobSpec::WordCount(6),
                          CreatePartitioner(PartitionerType::kPrompt),
                          &source);

  std::printf("cluster: 4 nodes x 2 cores, replication factor 2\n\n");

  auto report = [&](const RunSummary& s, const char* phase) {
    for (const auto& b : s.batches) {
      std::printf(
          "[%s] batch %2lu: %5lu tuples, map %4.1fms (%u remote), "
          "latency %6.1fms\n",
          phase, static_cast<unsigned long>(b.batch_id),
          static_cast<unsigned long>(b.num_tuples),
          static_cast<double>(b.map_makespan) / 1000.0, b.remote_map_tasks,
          static_cast<double>(b.latency) / 1000.0);
    }
  };

  report(engine.Run(4), "healthy ");

  std::printf("\n*** killing node 2 (its block replicas and cores are gone)\n\n");
  if (auto st = engine.KillNode(2); !st.ok()) {
    std::printf("kill failed: %s\n", st.ToString().c_str());
    return 1;
  }
  report(engine.Run(4), "degraded");

  // The window still covers batches processed before the failure; §8 says a
  // lost batch state is recomputed from the replicated input. Demonstrate
  // on batch 3 (processed pre-failure, replicas spread over nodes).
  std::printf("\nrecovering batch 3 from surviving replicas...\n");
  auto redo = engine.RecomputeBatchFromStore(3);
  if (!redo.ok()) {
    std::printf("recovery failed: %s\n", redo.status().ToString().c_str());
    return 1;
  }
  double total = 0;
  for (const KV& kv : *redo) total += kv.value;
  std::printf("recomputed %zu per-key aggregates (%.0f tuples accounted)\n",
              redo->size(), total);

  std::printf("\n*** node 2 rejoins\n\n");
  (void)engine.ReviveNode(2);
  report(engine.Run(3), "restored");

  std::printf("\nwindow covers %zu batches, %zu keys — no gaps despite the "
              "failure.\n",
              engine.window().depth(), engine.window().Result().size());
  return 0;
}
