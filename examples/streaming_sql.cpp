// Declarative queries end-to-end: compile query text into a Map-Reduce job
// (paper §2.1), run it on a word stream with real string keys, and print
// human-readable windowed answers. Pass a query as argv[1] to try your own:
//
//   ./streaming_sql "SELECT COUNT TOP 5 WINDOW 10S SLIDE 2S"
#include <cstdio>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "query/parser.h"
#include "workload/text_sources.h"

using namespace prompt;

namespace {

void RunQuery(const std::string& text) {
  auto compiled = ParseQuery(text);
  if (!compiled.ok()) {
    std::printf("query error: %s\n", compiled.status().ToString().c_str());
    return;
  }
  std::printf("\n>> %s\n", text.c_str());
  std::printf("   window=%lldms slide=%lldms (%u batches)%s\n",
              static_cast<long long>(compiled->window / 1000),
              static_cast<long long>(compiled->slide / 1000),
              compiled->window_batches(),
              compiled->job.reduce->invertible()
                  ? ""
                  : "  [non-invertible: window recomputes on expiry]");

  WordStreamSource::Params params;
  params.vocabulary = 50000;
  params.zipf = 1.05;
  params.rate = std::make_shared<ConstantRate>(30000);
  WordStreamSource source(std::move(params));

  EngineOptions options;
  options.batch_interval = compiled->slide;  // slide defines the heartbeat
  options.map_tasks = options.reduce_tasks = options.cores = 8;

  MicroBatchEngine engine(options, compiled->job,
                          CreatePartitioner(PartitionerType::kPrompt),
                          &source);
  auto summary = engine.Run(compiled->window_batches() + 3);

  const uint32_t k = compiled->top_k > 0 ? compiled->top_k : 8;
  std::printf("   %-16s %s\n", "word", "aggregate");
  for (const KV& kv : engine.window().TopK(k)) {
    std::printf("   %-16s %.2f\n",
                source.dictionary().LookupOr(kv.key).c_str(), kv.value);
  }
  std::printf("   (%zu keys in window, mean W=%.2f, %s)\n",
              engine.window().Result().size(), summary.MeanW(1),
              summary.stable ? "stable" : "UNSTABLE");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    RunQuery(argv[1]);
    return 0;
  }
  // A little showcase: the paper's workloads as query text.
  RunQuery("SELECT COUNT WINDOW 10S SLIDE 2S");            // WordCount
  RunQuery("SELECT COUNT TOP 5 WINDOW 10S SLIDE 2S");      // TopKCount
  RunQuery("SELECT SUM WHERE VALUE > 0 WINDOW 6S SLIDE 2S");
  RunQuery("SELECT MAX WINDOW 4S SLIDE 1S");               // non-invertible
  RunQuery("SELECT COUNT WINDOW 7S SLIDE 2S");             // rejected
  return 0;
}
