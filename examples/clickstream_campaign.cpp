// The paper's motivating application (§1): count users' clicks per country
// for a web advertising campaign over a sliding window, under a workload
// that surges during the campaign — exercising Prompt's elasticity (Alg. 4).
#include <cstdio>

#include "baselines/factory.h"
#include "common/hash.h"
#include "engine/engine.h"
#include "workload/sources.h"

using namespace prompt;

namespace {

// Clickstream: country keys with heavy skew (a few countries dominate),
// click volume surging 6x mid-campaign.
class ClickstreamSource final : public TupleSource {
 public:
  explicit ClickstreamSource(std::shared_ptr<const RateProfile> rate)
      : rate_(std::move(rate)), rng_(2024), countries_(195, 1.2) {}

  const char* name() const override { return "Clickstream"; }
  uint64_t cardinality() const override { return 195; }

  bool Next(Tuple* t) override {
    now_ += 1e6 / rate_->RateAt(static_cast<TimeMicros>(now_));
    t->ts = static_cast<TimeMicros>(now_);
    t->key = countries_.Sample(rng_);  // country id
    t->value = 1.0;                    // one click
    return true;
  }

 private:
  std::shared_ptr<const RateProfile> rate_;
  Rng rng_;
  ZipfSampler countries_;
  double now_ = 0;
};

const char* kCountryNames[] = {"US", "IN", "BR", "ID", "MX",
                               "DE", "GB", "FR", "JP", "NG"};

}  // namespace

int main() {
  // Campaign surge: 5k clicks/s, ramping to 30k/s minutes in, then fading.
  auto rate = std::make_shared<PiecewiseRate>(std::vector<PiecewiseRate::Knot>{
      {0, 5000},
      {Seconds(20), 30000},
      {Seconds(35), 30000},
      {Seconds(60), 6000}});
  ClickstreamSource source(rate);

  EngineOptions options;
  options.batch_interval = Seconds(1);
  options.map_tasks = 2;
  options.reduce_tasks = 2;
  options.cores = 32;
  options.cores_track_tasks = true;  // cloud resources on demand
  options.elasticity_enabled = true;
  options.elasticity.d = 3;
  // Calibrated so the surge overloads the initial 2-task graph.
  options.cost.map_per_tuple_us = 80;
  options.cost.reduce_per_tuple_us = 40;
  options.unstable_queue_intervals = 1e9;

  // Clicks per country over a 30-batch window (the paper's "30 minutes",
  // scaled to 30 seconds).
  MicroBatchEngine engine(options, JobSpec::WordCount(30),
                          CreatePartitioner(PartitionerType::kPrompt),
                          &source);

  std::printf("t(s)  clicks/s  W     mapTasks  reduceTasks  zone\n");
  for (int step = 0; step < 12; ++step) {
    RunSummary summary = engine.Run(5);
    const BatchReport& b = summary.batches.back();
    const char* zone =
        b.w > 0.9 ? "OVERLOADED" : (b.w < 0.8 ? "under-utilized" : "stable");
    std::printf("%4d  %8lu  %.2f  %8u  %11u  %s\n", (step + 1) * 5,
                static_cast<unsigned long>(b.num_tuples), b.w, b.map_tasks,
                b.reduce_tasks, zone);
  }

  std::printf("\nClicks per country over the last 30s (top 10):\n");
  auto top = engine.window().TopK(10);
  for (size_t i = 0; i < top.size(); ++i) {
    // Country ids are Zipf ranks; label the 10 biggest for readability.
    const char* name = top[i].key < 10
                           ? kCountryNames[top[i].key]
                           : "other";
    std::printf("  #%zu country[%lu] (%s): %.0f clicks\n", i + 1,
                static_cast<unsigned long>(top[i].key), name, top[i].value);
  }
  return 0;
}
