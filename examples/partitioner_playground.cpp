// Side-by-side look at what each partitioning technique does to one
// micro-batch: block sizes, cardinalities, fragmentation, and the cost-model
// metrics of §3.3. A compact way to *see* Fig. 4 and Fig. 6 of the paper.
#include <cstdio>

#include "baselines/factory.h"
#include "common/hash.h"
#include "common/random.h"
#include "stats/metrics.h"

using namespace prompt;

int main() {
  // One batch: 100k tuples, Zipf z=1.3 over 10k keys, 8 blocks.
  const uint64_t kTuples = 100000;
  const uint32_t kBlocks = 8;
  Rng rng(99);
  ZipfSampler zipf(10000, 1.3);
  std::vector<Tuple> tuples(kTuples);
  for (uint64_t i = 0; i < kTuples; ++i) {
    tuples[i] = Tuple{static_cast<TimeMicros>(i * 10),
                      Mix64(zipf.Sample(rng)), 1.0};
  }

  std::printf(
      "One micro-batch: %lu tuples, Zipf z=1.3, %u blocks\n\n"
      "%-12s %-28s %-26s %-7s %-7s %-7s\n",
      static_cast<unsigned long>(kTuples), kBlocks, "Technique",
      "block sizes (min..max)", "cardinalities (min..max)", "BSI", "BCI",
      "KSR");

  for (PartitionerType type : EvaluationTechniques()) {
    auto partitioner = CreatePartitioner(type);
    partitioner->Begin(kBlocks, 0, Seconds(1));
    for (const Tuple& t : tuples) partitioner->OnTuple(t);
    auto batch = partitioner->Seal(0);

    uint64_t min_size = UINT64_MAX, max_size = 0;
    uint64_t min_card = UINT64_MAX, max_card = 0;
    for (const auto& block : batch.blocks) {
      min_size = std::min(min_size, block.size());
      max_size = std::max(max_size, block.size());
      min_card = std::min(min_card, block.cardinality());
      max_card = std::max(max_card, block.cardinality());
    }
    auto m = ComputeBlockMetrics(batch);
    char sizes[64], cards[64];
    std::snprintf(sizes, sizeof(sizes), "%lu..%lu",
                  static_cast<unsigned long>(min_size),
                  static_cast<unsigned long>(max_size));
    std::snprintf(cards, sizeof(cards), "%lu..%lu",
                  static_cast<unsigned long>(min_card),
                  static_cast<unsigned long>(max_card));
    std::printf("%-12s %-28s %-26s %-7.0f %-7.0f %-7.2f\n",
                partitioner->name(), sizes, cards, m.bsi, m.bci, m.ksr);
  }

  std::printf(
      "\nReading the table: Shuffle equalizes sizes but explodes KSR (every\n"
      "hot key in every block); Hash keeps KSR=1 but skews sizes; Prompt\n"
      "holds all three close to ideal — the Fig. 6 trade-off.\n");
  return 0;
}
