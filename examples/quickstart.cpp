// Quickstart: a sliding-window word count over a skewed synthetic stream,
// processed by the micro-batch engine with Prompt's partitioning.
//
//   source (Zipf words) -> Prompt batching (Alg. 1+2) -> Map/Reduce with
//   Worst-Fit reduce buckets (Alg. 3) -> windowed answer
#include <cstdio>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "workload/sources.h"

using namespace prompt;

int main() {
  // 1. A stream: words drawn from a Zipf(100k, 1.1) vocabulary at 20k/s.
  ZipfKeyedSource::Params params;
  params.cardinality = 100000;
  params.zipf = 1.1;
  params.rate = std::make_shared<ConstantRate>(20000);
  SynDSource source(std::move(params));

  // 2. The engine: 500 ms batches, 8-way parallelism, Prompt partitioning.
  EngineOptions options;
  options.batch_interval = Millis(500);
  options.map_tasks = 8;
  options.reduce_tasks = 8;
  options.cores = 8;

  // WordCount over a 10-batch (5 s) sliding window.
  MicroBatchEngine engine(options, JobSpec::WordCount(10),
                          CreatePartitioner(PartitionerType::kPrompt),
                          &source);

  // 3. Run 20 batch intervals and inspect per-batch health.
  RunSummary summary = engine.Run(20);
  std::printf("batch  tuples  keys   proc(ms)  W     latency(ms)\n");
  for (const BatchReport& b : summary.batches) {
    std::printf("%5lu  %6lu  %5lu  %8.1f  %.2f  %8.1f\n",
                static_cast<unsigned long>(b.batch_id),
                static_cast<unsigned long>(b.num_tuples),
                static_cast<unsigned long>(b.num_keys),
                static_cast<double>(b.processing_time) / 1000.0, b.w,
                static_cast<double>(b.latency) / 1000.0);
  }

  // 4. The windowed query answer: the 10 most frequent words right now.
  std::printf("\nTop-10 words over the last 5 seconds:\n");
  for (const KV& kv : engine.window().TopK(10)) {
    std::printf("  word %016lx : %.0f occurrences\n",
                static_cast<unsigned long>(kv.key), kv.value);
  }
  std::printf("\nstable=%s  mean W=%.2f  throughput=%.0f tuples/s\n",
              summary.stable ? "yes" : "no", summary.MeanW(2),
              summary.MeanThroughputTuplesPerSec(options.batch_interval, 2));
  return 0;
}
