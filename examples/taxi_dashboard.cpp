// DEBS 2015 Grand Challenge dashboard (paper §7.1): two concurrent
// sliding-window queries over the taxi-trip stream.
//   Query 1: total fare per taxi over a long window with a short slide
//   Query 2: total distance per taxi over a shorter window
// Each query runs as its own micro-batch pipeline on the same logical feed.
#include <cstdio>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "workload/sources.h"

using namespace prompt;

namespace {

void RunQuery(const char* title, DebsTaxiSource::Query query,
              uint32_t window_batches, const char* unit) {
  ZipfKeyedSource::Params params;
  params.cardinality = 200000;  // medallions active this hour
  params.zipf = 0.6;            // busy cabs finish more trips
  params.seed = 2015;
  params.rate = std::make_shared<SinusoidalRate>(15000, 0.4, Seconds(8));
  DebsTaxiSource source(std::move(params), query);

  EngineOptions options;
  options.batch_interval = Seconds(1);
  options.map_tasks = 8;
  options.reduce_tasks = 8;
  options.cores = 8;

  // Per-taxi SUM with incremental window retraction (inverse Reduce).
  MicroBatchEngine engine(options, JobSpec::KeyedSum(window_batches),
                          CreatePartitioner(PartitionerType::kPrompt),
                          &source);
  RunSummary summary = engine.Run(window_batches + 5);

  std::printf("\n== %s ==\n", title);
  std::printf("window: last %u batches | taxis tracked: %zu | stable: %s\n",
              window_batches, engine.window().Result().size(),
              summary.stable ? "yes" : "no");
  std::printf("top 5 taxis:\n");
  for (const KV& kv : engine.window().TopK(5)) {
    std::printf("  medallion %016lx : %.2f %s\n",
                static_cast<unsigned long>(kv.key), kv.value, unit);
  }
  double mean_latency = 0;
  for (const auto& b : summary.batches) {
    mean_latency += static_cast<double>(b.latency) / 1000.0;
  }
  std::printf("mean end-to-end latency: %.0f ms\n",
              mean_latency / static_cast<double>(summary.batches.size()));
}

}  // namespace

int main() {
  // Paper: Q1 = fares over 2h windows / 5-min slide; Q2 = distance over
  // 45-min / 1-min slide. Scaled 60:1 so the demo runs in seconds: the
  // window geometry (long window, slide of one batch) is preserved.
  RunQuery("DEBS Query 1: total fare per taxi (2h window @ 5min slide, scaled)",
           DebsTaxiSource::Query::kFare, 24, "USD");
  RunQuery(
      "DEBS Query 2: total distance per taxi (45min window @ 1min slide, "
      "scaled)",
      DebsTaxiSource::Query::kDistance, 9, "miles");
  return 0;
}
