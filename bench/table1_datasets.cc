// Regenerates Table 1 (dataset properties) at reproduction scale: for each
// generator, the nominal cardinality of the modeled dataset plus measured
// properties of a sampled stream prefix.
#include <cinttypes>
#include <map>

#include "bench_util.h"

using namespace prompt;
using namespace prompt::bench;

int main() {
  PrintHeader("Table 1: Datasets Properties (paper scale -> synthetic generators)");
  PrintRow({"Name", "PaperSize", "PaperCard", "GenCard", "SampleKeys",
            "Top1Share", "MeanValue"});

  struct Entry {
    DatasetId id;
    const char* paper_size;
    const char* paper_card;
  };
  const Entry entries[] = {
      {DatasetId::kTweets, "50GB", "790k"},
      {DatasetId::kSynD, "40GB", "500k-1M"},
      {DatasetId::kDebs, "32GB", "8M"},
      {DatasetId::kGcm, "16GB", "600K"},
      {DatasetId::kTpch, "100GB", "1M"},
  };

  constexpr int kSample = 2000000;
  for (const Entry& e : entries) {
    auto source =
        MakeDataset(e.id, std::make_shared<ConstantRate>(1e6), /*seed=*/7);
    std::map<KeyId, uint64_t> counts;
    double value_sum = 0;
    Tuple t;
    for (int i = 0; i < kSample; ++i) {
      source->Next(&t);
      ++counts[t.key];
      value_sum += t.value;
    }
    uint64_t top = 0;
    for (const auto& [k, c] : counts) top = std::max(top, c);
    PrintRow({DatasetName(e.id), e.paper_size, e.paper_card,
              std::to_string(source->cardinality()),
              std::to_string(counts.size()),
              Fmt(100.0 * static_cast<double>(top) / kSample, 2) + "%",
              Fmt(value_sum / kSample, 2)});
  }
  std::printf(
      "\n(Sample = %d tuples per generator. Generators model the paper's\n"
      " key-frequency shape; bytes-on-disk are not meaningful here.)\n",
      kSample);
  return 0;
}
