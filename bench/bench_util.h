// Shared scaffolding for the figure-reproduction harnesses: engine
// construction, dataset factories at bench scale, and table printing.
#pragma once

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/factory.h"
#include "engine/backpressure.h"
#include "engine/engine.h"
#include "obs/sink.h"
#include "workload/sources.h"

namespace prompt::bench {

/// Cost-model calibration used across the throughput experiments. The
/// virtual per-tuple cost is deliberately high (hundreds of µs) so the
/// back-pressure knee lands at laptop-friendly rates — every technique is
/// scaled identically, so relative throughput (the paper's claim) is
/// preserved while harnesses stay fast.
inline CostModelParams BenchCostModel() {
  CostModelParams cost;
  cost.map_task_fixed_us = 5000;
  cost.map_per_tuple_us = 600;
  cost.map_per_key_us = 100;
  cost.reduce_task_fixed_us = 5000;
  cost.reduce_per_tuple_us = 60;
  cost.reduce_per_cluster_us = 2500;
  return cost;
}

struct ThroughputSetup {
  TimeMicros batch_interval = Seconds(1);
  uint32_t tasks = 16;  ///< map tasks = reduce tasks = cores
  uint32_t batches_per_probe = 8;
  int search_iterations = 8;
  double lo_rate = 500;
  double hi_rate = 16000;
  uint64_t seed = 42;
  /// Shrinks each dataset's Table-1 cardinality so reproduction-scale
  /// batches keep the paper's tuples-per-key regime (see EXPERIMENTS.md).
  double cardinality_scale = 0.02;
};

/// Builds the source for a dataset with the given mean rate (sinusoidal
/// variation per the Fig. 11 methodology) and runs the engine.
inline RunSummary RunThroughputProbe(DatasetId dataset, PartitionerType type,
                                     double mean_rate,
                                     const ThroughputSetup& setup,
                                     double synd_zipf = 1.0,
                                     double amplitude = 0.45) {
  // Period of 2 intervals: the rate swings *within* each batch interval,
  // which is precisely what breaks Time-based partitioning (Fig. 4a).
  auto rate = std::make_shared<SinusoidalRate>(
      mean_rate, amplitude, 2 * setup.batch_interval);
  auto source = MakeDataset(dataset, rate, setup.seed, synd_zipf,
                            setup.cardinality_scale);

  EngineOptions opts;
  opts.batch_interval = setup.batch_interval;
  opts.map_tasks = setup.tasks;
  opts.reduce_tasks = setup.tasks;
  opts.cores = setup.tasks;
  opts.cost = BenchCostModel();
  // Prompt brings its own processing-phase allocator (Alg. 3); every
  // baseline runs the conventional hash shuffle it would have in Spark.
  opts.use_prompt_reduce = (type == PartitionerType::kPrompt ||
                            type == PartitionerType::kPromptPostSort);
  MicroBatchEngine engine(opts, JobSpec::WordCount(8), CreatePartitioner(type),
                          source.get());
  return engine.Run(setup.batches_per_probe);
}

/// Max sustainable rate for (dataset, technique) per the back-pressure
/// methodology of §7.
inline double MaxThroughput(DatasetId dataset, PartitionerType type,
                            const ThroughputSetup& setup,
                            double synd_zipf = 1.0) {
  auto run = [&](double rate) {
    return RunThroughputProbe(dataset, type, rate, setup, synd_zipf);
  };
  return FindMaxSustainableRate(run, setup.batch_interval, setup.lo_rate,
                                setup.hi_rate, setup.search_iterations);
}

/// The drift scenario of the adaptive-switching evaluation: SynD-style
/// stream, uniform for the first half (Zipf z = 0) and skewed (z = 1.4 by
/// default) from `shift_batch` on. Everything runs in virtual time, so each
/// (setup, technique) pair is bit-deterministic across machines — the
/// regression tracker gates these runs at tight tolerance.
struct SkewShiftSetup {
  TimeMicros batch_interval = Seconds(1);
  uint32_t batches = 24;
  uint32_t shift_batch = 12;
  double rate = 4000;
  double zipf_before = 0.0;
  double zipf_after = 1.4;
  uint64_t cardinality = 500;
  uint64_t seed = 42;
  uint32_t tasks = 8;
  /// Batches at the start of each phase excluded from the per-phase means:
  /// the run's warmup and the controller's detection + switch transition.
  uint32_t transition = 4;
};

inline std::unique_ptr<SkewShiftSource> MakeSkewShiftSource(
    const SkewShiftSetup& setup) {
  ZipfKeyedSource::Params params;
  params.cardinality = setup.cardinality;
  params.zipf = setup.zipf_before;
  params.seed = setup.seed;
  params.rate = std::make_shared<ConstantRate>(setup.rate);
  return std::make_unique<SkewShiftSource>(
      std::move(params), setup.zipf_after,
      static_cast<TimeMicros>(setup.shift_batch) * setup.batch_interval);
}

struct SkewShiftRun {
  RunSummary summary;
  /// Final per-key window aggregates (placement-independence check).
  std::unordered_map<KeyId, double> window;
};

/// Runs the drift scenario with a static technique, or adaptively (initial
/// technique = Prompt, default Hash→PK2→Prompt ladder) when `adaptive`.
inline SkewShiftRun RunSkewShift(const SkewShiftSetup& setup,
                                 PartitionerType type, bool adaptive) {
  auto source = MakeSkewShiftSource(setup);
  EngineOptions opts;
  opts.batch_interval = setup.batch_interval;
  opts.map_tasks = setup.tasks;
  opts.reduce_tasks = setup.tasks;
  opts.cores = setup.tasks;
  opts.cost = BenchCostModel();
  opts.unstable_queue_intervals = 1e9;
  opts.obs.collect_partition_metrics = true;
  // The reduce allocator is fixed across switches (a switch changes the
  // batching technique only), so every arm runs the same allocator.
  opts.use_prompt_reduce = true;
  // Floor the autopsy above uniform-phase hash-block noise (~1-2% of the
  // interval here) while the skewed phase's straggler excess sits far above.
  opts.obs.autopsy.min_excess_frac = 0.05;
  if (adaptive) {
    opts.adapt.enabled = true;
    // Two-rung ladder. Under the bench cost model's heavy per-cluster
    // reduce cost, PK2's unconditional key-splitting inflicts real bucket
    // skew even on uniform data — the autopsy flags it and the controller
    // (correctly) escalates rather than resting there, so PK2 is not a
    // usable intermediate rung for this workload.
    opts.adapt.candidates = {PartitionerType::kHash, PartitionerType::kPrompt};
    // At ~8 tuples/key the B-BPFI packer splits 2-3% of keys on uniform
    // data from block straddling alone; the calm bound must sit above that
    // floor (see DESIGN.md §11).
    opts.adapt.calm_split_key_frac = 0.05;
  }
  MicroBatchEngine engine(opts, JobSpec::WordCount(8), CreatePartitioner(type),
                          source.get());
  SkewShiftRun run;
  run.summary = engine.Run(setup.batches);
  run.window = engine.window().Result();
  return run;
}

/// Mean end-to-end latency over one phase of the drift run, excluding each
/// phase's first `transition` batches.
inline double PhaseMeanLatencyUs(const RunSummary& summary,
                                 const SkewShiftSetup& setup, int phase) {
  const uint32_t begin =
      (phase == 1 ? 0 : setup.shift_batch) + setup.transition;
  const uint32_t end = phase == 1 ? setup.shift_batch : setup.batches;
  double sum = 0;
  uint32_t n = 0;
  for (const BatchReport& b : summary.batches) {
    if (b.batch_id >= begin && b.batch_id < end) {
      sum += static_cast<double>(b.latency);
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

/// Prints a markdown-ish table row through the shared obs formatting path
/// (TableSink) — the same code that renders promptctl per-batch tables.
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  TableSink sink(&std::cout, width, /*auto_header=*/false);
  Record row;
  for (const auto& c : cells) row.Set("", c);
  sink.Write(row);
}

inline std::string Fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace prompt::bench
