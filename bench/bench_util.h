// Shared scaffolding for the figure-reproduction harnesses: engine
// construction, dataset factories at bench scale, and table printing.
#pragma once

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "engine/backpressure.h"
#include "engine/engine.h"
#include "obs/sink.h"
#include "workload/sources.h"

namespace prompt::bench {

/// Cost-model calibration used across the throughput experiments. The
/// virtual per-tuple cost is deliberately high (hundreds of µs) so the
/// back-pressure knee lands at laptop-friendly rates — every technique is
/// scaled identically, so relative throughput (the paper's claim) is
/// preserved while harnesses stay fast.
inline CostModelParams BenchCostModel() {
  CostModelParams cost;
  cost.map_task_fixed_us = 5000;
  cost.map_per_tuple_us = 600;
  cost.map_per_key_us = 100;
  cost.reduce_task_fixed_us = 5000;
  cost.reduce_per_tuple_us = 60;
  cost.reduce_per_cluster_us = 2500;
  return cost;
}

struct ThroughputSetup {
  TimeMicros batch_interval = Seconds(1);
  uint32_t tasks = 16;  ///< map tasks = reduce tasks = cores
  uint32_t batches_per_probe = 8;
  int search_iterations = 8;
  double lo_rate = 500;
  double hi_rate = 16000;
  uint64_t seed = 42;
  /// Shrinks each dataset's Table-1 cardinality so reproduction-scale
  /// batches keep the paper's tuples-per-key regime (see EXPERIMENTS.md).
  double cardinality_scale = 0.02;
};

/// Builds the source for a dataset with the given mean rate (sinusoidal
/// variation per the Fig. 11 methodology) and runs the engine.
inline RunSummary RunThroughputProbe(DatasetId dataset, PartitionerType type,
                                     double mean_rate,
                                     const ThroughputSetup& setup,
                                     double synd_zipf = 1.0,
                                     double amplitude = 0.45) {
  // Period of 2 intervals: the rate swings *within* each batch interval,
  // which is precisely what breaks Time-based partitioning (Fig. 4a).
  auto rate = std::make_shared<SinusoidalRate>(
      mean_rate, amplitude, 2 * setup.batch_interval);
  auto source = MakeDataset(dataset, rate, setup.seed, synd_zipf,
                            setup.cardinality_scale);

  EngineOptions opts;
  opts.batch_interval = setup.batch_interval;
  opts.map_tasks = setup.tasks;
  opts.reduce_tasks = setup.tasks;
  opts.cores = setup.tasks;
  opts.cost = BenchCostModel();
  // Prompt brings its own processing-phase allocator (Alg. 3); every
  // baseline runs the conventional hash shuffle it would have in Spark.
  opts.use_prompt_reduce = (type == PartitionerType::kPrompt ||
                            type == PartitionerType::kPromptPostSort);
  MicroBatchEngine engine(opts, JobSpec::WordCount(8), CreatePartitioner(type),
                          source.get());
  return engine.Run(setup.batches_per_probe);
}

/// Max sustainable rate for (dataset, technique) per the back-pressure
/// methodology of §7.
inline double MaxThroughput(DatasetId dataset, PartitionerType type,
                            const ThroughputSetup& setup,
                            double synd_zipf = 1.0) {
  auto run = [&](double rate) {
    return RunThroughputProbe(dataset, type, rate, setup, synd_zipf);
  };
  return FindMaxSustainableRate(run, setup.batch_interval, setup.lo_rate,
                                setup.hi_rate, setup.search_iterations);
}

/// Prints a markdown-ish table row through the shared obs formatting path
/// (TableSink) — the same code that renders promptctl per-batch tables.
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  TableSink sink(&std::cout, width, /*auto_header=*/false);
  Record row;
  for (const auto& c : cells) row.Set("", c);
  sink.Write(row);
}

inline std::string Fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace prompt::bench
