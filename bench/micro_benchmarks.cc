// Google-benchmark microbenchmarks of the hot data structures: the per-tuple
// accumulator path, CountTree repositioning, seal-time planning, the online
// baselines' per-tuple decisions, and the reduce allocator.
#include <benchmark/benchmark.h>

#include "baselines/factory.h"
#include "common/flat_map.h"
#include "core/accumulator_api.h"
#include "core/prompt_partitioner.h"
#include "core/reduce_allocator.h"
#include "stats/count_tree.h"
#include "engine/serde.h"
#include "stats/hyperloglog.h"
#include "stats/space_saving.h"
#include "workload/sources.h"

#include <unordered_map>

namespace prompt {
namespace {

std::vector<Tuple> MakeTuples(uint64_t n, uint64_t cardinality, double z) {
  Rng rng(7);
  ZipfSampler zipf(cardinality, z);
  std::vector<Tuple> tuples(n);
  for (uint64_t i = 0; i < n; ++i) {
    tuples[i] = Tuple{static_cast<TimeMicros>(i * 10),
                      Mix64(zipf.Sample(rng)), 1.0};
  }
  return tuples;
}

AccumulatorKind KindArg(const benchmark::State& state) {
  return state.range(1) != 0 ? AccumulatorKind::kFlat
                             : AccumulatorKind::kLegacyChain;
}

void BM_AccumulatorOnTuple(benchmark::State& state) {
  const auto tuples = MakeTuples(100000, state.range(0), 1.0);
  AccumulatorOptions opts;
  opts.estimated_tuples = tuples.size();
  opts.avg_keys = state.range(0);
  auto acc = MakeAccumulator(KindArg(state), opts);
  for (auto _ : state) {
    acc->Begin(0, Seconds(10));
    for (const Tuple& t : tuples) acc->OnTuple(t);
    benchmark::DoNotOptimize(acc->num_keys());
  }
  state.SetItemsProcessed(state.iterations() * tuples.size());
  state.SetLabel(acc->name());
}
BENCHMARK(BM_AccumulatorOnTuple)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({100000, 0})
    ->Args({100000, 1});

void BM_AccumulatorSeal(benchmark::State& state) {
  const auto tuples = MakeTuples(200000, state.range(0), 1.0);
  auto acc = MakeAccumulator(KindArg(state));
  for (auto _ : state) {
    state.PauseTiming();
    acc->Begin(0, Seconds(10));
    for (const Tuple& t : tuples) acc->OnTuple(t);
    state.ResumeTiming();
    auto batch = acc->Seal();
    benchmark::DoNotOptimize(batch.keys().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(acc->name());
}
BENCHMARK(BM_AccumulatorSeal)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({100000, 0})
    ->Args({100000, 1});

void BM_PostSortSeal(benchmark::State& state) {
  const auto tuples = MakeTuples(200000, state.range(0), 1.0);
  auto acc = MakeAccumulator(KindArg(state));
  for (auto _ : state) {
    state.PauseTiming();
    acc->Begin(0, Seconds(10));
    for (const Tuple& t : tuples) acc->OnTuple(t);
    state.ResumeTiming();
    auto batch = acc->SealWithPostSort();
    benchmark::DoNotOptimize(batch.keys().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(acc->name());
}
BENCHMARK(BM_PostSortSeal)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({100000, 0})
    ->Args({100000, 1});

void BM_CountTreeUpdate(benchmark::State& state) {
  const uint64_t n = state.range(0);
  CountTree tree;
  std::vector<uint64_t> counts(n);
  for (uint64_t k = 0; k < n; ++k) {
    counts[k] = 1;
    tree.Insert(k, 1);
  }
  Rng rng(3);
  for (auto _ : state) {
    uint64_t k = rng.NextBounded(n);
    tree.Update(k, counts[k], counts[k] + 1);
    ++counts[k];
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountTreeUpdate)->Arg(1000)->Arg(100000);

void BM_PromptPlan(benchmark::State& state) {
  const auto tuples = MakeTuples(200000, state.range(0), 1.2);
  auto acc = MakeAccumulator(AccumulatorKind::kFlat);
  acc->Begin(0, Seconds(10));
  for (const Tuple& t : tuples) acc->OnTuple(t);
  auto sealed = acc->Seal();
  for (auto _ : state) {
    auto plan = BuildPromptPlan(sealed, 16);
    benchmark::DoNotOptimize(plan.fragments);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PromptPlan)->Arg(1000)->Arg(50000);

void BM_OnlinePartitionerTuple(benchmark::State& state) {
  const auto type = static_cast<PartitionerType>(state.range(0));
  auto partitioner = CreatePartitioner(type);
  const auto tuples = MakeTuples(100000, 10000, 1.0);
  size_t i = 0;
  partitioner->Begin(16, 0, Seconds(1000000));
  for (auto _ : state) {
    partitioner->OnTuple(tuples[i]);
    i = (i + 1) % tuples.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(PartitionerTypeName(type));
}
BENCHMARK(BM_OnlinePartitionerTuple)
    ->Arg(static_cast<int>(PartitionerType::kShuffle))
    ->Arg(static_cast<int>(PartitionerType::kHash))
    ->Arg(static_cast<int>(PartitionerType::kPk5))
    ->Arg(static_cast<int>(PartitionerType::kCam));

void BM_ReduceAssign(benchmark::State& state) {
  Rng rng(9);
  ZipfSampler zipf(state.range(0), 1.0);
  FlatMap<uint64_t> sizes(state.range(0));
  for (int i = 0; i < 100000; ++i) ++sizes.GetOrInsert(zipf.Sample(rng));
  std::vector<KeyCluster> clusters;
  sizes.ForEach([&clusters](KeyId k, uint64_t s) {
    clusters.push_back(KeyCluster{k, s, false});
  });
  PromptReduceAllocator alloc;
  for (auto _ : state) {
    auto assignment = alloc.Assign(clusters, 16);
    benchmark::DoNotOptimize(assignment.data());
  }
  state.SetItemsProcessed(state.iterations() * clusters.size());
}
BENCHMARK(BM_ReduceAssign)->Arg(1000)->Arg(50000);

void BM_FlatMapGetOrInsert(benchmark::State& state) {
  Rng rng(1);
  FlatMap<uint64_t> map(1024);
  for (auto _ : state) {
    ++map.GetOrInsert(rng.NextBounded(state.range(0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatMapGetOrInsert)->Arg(1000)->Arg(1000000);

void BM_StdUnorderedMapBaseline(benchmark::State& state) {
  Rng rng(1);
  std::unordered_map<uint64_t, uint64_t> map;
  for (auto _ : state) {
    ++map[rng.NextBounded(state.range(0))];
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdUnorderedMapBaseline)->Arg(1000)->Arg(1000000);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(2);
  ZipfSampler zipf(10000000, 1.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void BM_SpaceSavingAdd(benchmark::State& state) {
  Rng rng(4);
  ZipfSampler zipf(100000, 1.1);
  SpaceSaving sketch(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    sketch.Add(Mix64(zipf.Sample(rng)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingAdd)->Arg(64)->Arg(4096);

void BM_HyperLogLogAdd(benchmark::State& state) {
  Rng rng(5);
  HyperLogLog hll(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    hll.Add(rng.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HyperLogLogAdd)->Arg(10)->Arg(14);

void BM_SerdeEncodeBatch(benchmark::State& state) {
  PromptPartitioner partitioner;
  const auto tuples = MakeTuples(static_cast<uint64_t>(state.range(0)),
                                 state.range(0) / 10 + 1, 1.0);
  partitioner.Begin(16, 0, Seconds(100));
  for (const Tuple& t : tuples) partitioner.OnTuple(t);
  auto batch = partitioner.Seal(0);
  for (auto _ : state) {
    std::string bytes = EncodeBatch(batch);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(EncodeBatch(batch).size()));
}
BENCHMARK(BM_SerdeEncodeBatch)->Arg(10000)->Arg(100000);

void BM_SerdeDecodeBatch(benchmark::State& state) {
  PromptPartitioner partitioner;
  const auto tuples = MakeTuples(static_cast<uint64_t>(state.range(0)),
                                 state.range(0) / 10 + 1, 1.0);
  partitioner.Begin(16, 0, Seconds(100));
  for (const Tuple& t : tuples) partitioner.OnTuple(t);
  const std::string bytes = EncodeBatch(partitioner.Seal(0));
  for (auto _ : state) {
    auto decoded = DecodeBatch(bytes);
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_SerdeDecodeBatch)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace prompt

BENCHMARK_MAIN();
