// Regenerates Figure 13: distribution of reduce-task completion times per
// batch for Time-based partitioning (a) vs Prompt (b) over thousands of
// batches under a variable input rate.
#include "bench_util.h"
#include "stats/histogram.h"

#include "common/hash.h"

using namespace prompt;
using namespace prompt::bench;

namespace {

void Report(PartitionerType type, double mean_rate) {
  auto rate =
      std::make_shared<SinusoidalRate>(mean_rate, 0.35, Seconds(4));
  auto source = MakeDataset(DatasetId::kTweets, rate, /*seed=*/33,
                            /*synd_zipf=*/1.0, /*cardinality_scale=*/0.02);

  EngineOptions opts;
  opts.batch_interval = Seconds(1);
  opts.map_tasks = 16;
  opts.reduce_tasks = 16;
  opts.cores = 16;
  opts.cost = BenchCostModel();
  opts.unstable_queue_intervals = 1e9;
  opts.use_prompt_reduce = type == PartitionerType::kPrompt;
  MicroBatchEngine engine(opts, JobSpec::WordCount(8), CreatePartitioner(type),
                          source.get());
  auto summary = engine.Run(1000);

  Histogram mean_ms, spread_ms, latency_ms;
  for (const auto& b : summary.batches) {
    mean_ms.Record(b.reduce_completion_mean_ms);
    spread_ms.Record(b.reduce_completion_max_ms - b.reduce_completion_min_ms);
    latency_ms.Record(static_cast<double>(b.latency) / 1000.0);
  }

  PrintHeader(std::string("Figure 13 — reduce completion distribution, ") +
              PartitionerTypeName(type) + " (" +
              std::to_string(summary.batches.size()) + " batches)");
  PrintRow({"metric", "p5", "p50", "p95", "max", "stddev"});
  auto row = [&](const char* name, Histogram& h) {
    PrintRow({name, Fmt(h.Percentile(5), 1), Fmt(h.Percentile(50), 1),
              Fmt(h.Percentile(95), 1), Fmt(h.Max(), 1), Fmt(h.StdDev(), 1)});
  };
  row("avgReduceDone(ms)", mean_ms);
  row("taskSpread(ms)", spread_ms);
  row("batchLatency(ms)", latency_ms);
}

}  // namespace

int main() {
  // Rate chosen so Time-based is stressed but not collapsed; identical for
  // both techniques.
  const double kRate = 5200;
  Report(PartitionerType::kTimeBased, kRate);  // Fig. 13a
  Report(PartitionerType::kPrompt, kRate);     // Fig. 13b
  std::printf(
      "\nExpected shape: Prompt's avgReduceDone variance and task spread are\n"
      "far narrower than Time-based's, giving a tight latency band.\n");
  return 0;
}
