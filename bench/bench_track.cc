// Standardized benchmark tracker: runs a small fixed set of configurations
// and writes BENCH_prompt.json — the time-series of record that CI compares
// against the committed baseline (scripts/check_bench_regression.py).
//
// Signals come in two classes:
//  - gated: computed in virtual time (deterministic per seed across
//    machines), so the regression gate can hold them to a tight tolerance;
//  - ungated: wall-clock (observability overhead) — tracked for trend
//    plots, never failed on, because CI hosts are noisy.
//
//   bench_track [output.json]     default output: BENCH_prompt.json
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <filesystem>

#include "bench_util.h"
#include "common/hash.h"
#include "common/random.h"
#include "core/accumulator_api.h"
#include "core/prompt_partitioner.h"
#include "durability_util.h"
#include "ingest/merge.h"
#include "ingest/pipeline.h"
#include "multi_tenant_util.h"
#include "obs/timeseries.h"
#include "replay/replayer.h"

using namespace prompt;
using namespace prompt::bench;

namespace {

struct Signal {
  std::string id;
  double value = 0;
  std::string unit;
  bool gate = true;
  /// Allowed relative drift before the gate fails (both directions: an
  /// unexplained improvement is a determinism bug in a virtual-time run).
  double tolerance_pct = 0.1;
};

/// One tracked configuration: fixed-rate SynD run, virtual time end to end.
RunSummary TrackedRun(double zipf, PartitionerType type, double rate,
                      TimeSeriesStore* timeseries) {
  auto profile = std::make_shared<ConstantRate>(rate);
  auto source = MakeDataset(DatasetId::kSynD, profile, /*seed=*/42, zipf,
                            /*cardinality_scale=*/0.02);
  EngineOptions opts;
  opts.batch_interval = Seconds(1);
  opts.map_tasks = 16;
  opts.reduce_tasks = 16;
  opts.cores = 16;
  opts.cost = BenchCostModel();
  opts.unstable_queue_intervals = 1e9;
  opts.obs.collect_partition_metrics = true;
  opts.use_prompt_reduce = type == PartitionerType::kPrompt;
  MicroBatchEngine engine(opts, JobSpec::WordCount(8), CreatePartitioner(type),
                          source.get());
  RunSummary summary = engine.Run(8);
  for (const BatchReport& b : summary.batches) timeseries->Observe(b);
  return summary;
}

void TrackConfig(const std::string& name, double zipf, PartitionerType type,
                 double rate, std::vector<Signal>* out) {
  TimeSeriesOptions ts_opts;
  ts_opts.window = 8;
  TimeSeriesStore timeseries(ts_opts);
  RunSummary summary = TrackedRun(zipf, type, rate, &timeseries);

  out->push_back({name + ".throughput_tps",
                  summary.MeanThroughputTuplesPerSec(Seconds(1), /*warmup=*/2),
                  "tuples/s"});
  out->push_back({name + ".p99_latency_us",
                  timeseries.Aggregate(TimeSeriesSignal::kLatencyUs).p99,
                  "us"});
  out->push_back({name + ".bucket_imbalance_mean",
                  timeseries.Aggregate(TimeSeriesSignal::kBucketImbalance).mean,
                  "tuples"});
  out->push_back({name + ".block_load_ratio_max",
                  timeseries.Aggregate(TimeSeriesSignal::kBlockLoadRatio).max,
                  "ratio"});
}

/// The adaptive-switching drift scenario (bench/adaptive_switch.cc), fully
/// virtual-time: per-phase mean latencies of the adaptive arm and the best
/// static arm, plus the switch counts, all gated.
void TrackAdaptiveShift(std::vector<Signal>* out) {
  const SkewShiftSetup setup;
  double best_phase1 = 1e18, best_phase2 = 1e18;
  for (PartitionerType type :
       {PartitionerType::kHash, PartitionerType::kPk2,
        PartitionerType::kPrompt}) {
    const SkewShiftRun run = RunSkewShift(setup, type, /*adaptive=*/false);
    best_phase1 =
        std::min(best_phase1, PhaseMeanLatencyUs(run.summary, setup, 1));
    best_phase2 =
        std::min(best_phase2, PhaseMeanLatencyUs(run.summary, setup, 2));
  }
  const SkewShiftRun adaptive =
      RunSkewShift(setup, PartitionerType::kPrompt, /*adaptive=*/true);
  out->push_back({"adaptive_shift.phase1_latency_us",
                  PhaseMeanLatencyUs(adaptive.summary, setup, 1), "us"});
  out->push_back({"adaptive_shift.phase2_latency_us",
                  PhaseMeanLatencyUs(adaptive.summary, setup, 2), "us"});
  out->push_back({"adaptive_shift.best_static_phase1_latency_us", best_phase1,
                  "us"});
  out->push_back({"adaptive_shift.best_static_phase2_latency_us", best_phase2,
                  "us"});
  out->push_back(
      {"adaptive_shift.switches_up",
       static_cast<double>(adaptive.summary.technique_switches_up), "count"});
  out->push_back(
      {"adaptive_shift.switches_down",
       static_cast<double>(adaptive.summary.technique_switches_down), "count"});
}

/// The multi-tenant noisy-neighbor scenario (bench/multi_tenant_isolation):
/// a calm uniform tenant shares ingest and slots with a Zipf-shifting
/// neighbor. Fully virtual-time, so the isolation properties themselves are
/// gated: calm drift signals must stay exactly zero, the noisy tenant's
/// escalation and post-shift skew verdicts must keep firing.
void TrackMultiTenant(std::vector<Signal>* out) {
  const MultiTenantSetup setup;
  const MultiTenantScenario shared =
      RunMultiTenantScenario(setup, /*calm_only=*/false);
  const MultiTenantScenario solo =
      RunMultiTenantScenario(setup, /*calm_only=*/true);

  out->push_back({"multi_tenant.calm_p99_latency_us",
                  P99LatencyUs(shared.calm.summary), "us"});
  out->push_back({"multi_tenant.calm_solo_p99_latency_us",
                  P99LatencyUs(solo.calm.summary), "us"});
  out->push_back({"multi_tenant.noisy_p99_latency_us",
                  P99LatencyUs(shared.noisy.summary), "us"});
  out->push_back(
      {"multi_tenant.noisy_switches_up",
       static_cast<double>(shared.noisy.summary.technique_switches_up),
       "count"});
  out->push_back({"multi_tenant.noisy_post_shift_skew_verdicts",
                  static_cast<double>(SkewVerdicts(shared.noisy.causes,
                                                   setup.shift_batch,
                                                   shared.noisy.causes.size())),
                  "count"});
  out->push_back(
      {"multi_tenant.calm_verdict_divergence",
       static_cast<double>(CauseDivergence(shared.calm.causes,
                                           solo.calm.causes)),
       "count"});
  out->push_back({"multi_tenant.calm_window_drift",
                  WindowDrift(shared.calm.window, solo.calm.window), "delta"});
}

/// Tentpole acceptance signals for the flat accumulator rewrite over a
/// deterministic replayed stream:
///  - flat_vs_legacy exactness (gated): 1.0 iff the flat accumulator's
///    sealed run sequence and chained tuples are bit-identical to the legacy
///    chain's. Pure data comparison, no clocks — any drift is a real bug.
///  - single-shard flat/legacy tuples-per-second ratio (ungated): the >= 3x
///    throughput payoff, wall-clock and therefore host-dependent.
void TrackIngestAccumulators(std::vector<Signal>* out) {
  Rng rng(7);
  ZipfSampler sampler(/*cardinality=*/50000, /*z=*/1.0);
  std::vector<Tuple> stream;
  const uint64_t kTuples = 500000;
  stream.reserve(kTuples);
  for (uint64_t i = 0; i < kTuples; ++i) {
    stream.push_back(Tuple{static_cast<TimeMicros>(i),
                           sampler.Sample(rng), 1.0});
  }

  struct Sealed {
    std::unique_ptr<Accumulator> acc;
    AccumulatedBatch batch;
    double best_tps = 0;
  };
  auto run = [&stream](AccumulatorKind kind) {
    Sealed s;
    s.acc = MakeAccumulator(kind);
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch watch;
      s.acc->Begin(0, static_cast<TimeMicros>(stream.size()));
      for (const Tuple& t : stream) s.acc->OnTuple(t);
      s.batch = s.acc->Seal();
      const double secs =
          static_cast<double>(watch.ElapsedMicros()) / 1e6;
      const double tps =
          secs > 0 ? static_cast<double>(stream.size()) / secs : 0;
      s.best_tps = std::max(s.best_tps, tps);
    }
    return s;
  };
  const Sealed legacy = run(AccumulatorKind::kLegacyChain);
  const Sealed flat = run(AccumulatorKind::kFlat);

  double exact = 1.0;
  if (legacy.batch.keys().size() != flat.batch.keys().size()) exact = 0.0;
  for (size_t i = 0; exact == 1.0 && i < legacy.batch.keys().size(); ++i) {
    const SortedKeyRun& a = legacy.batch.keys()[i];
    const SortedKeyRun& b = flat.batch.keys()[i];
    if (a.key != b.key || a.count != b.count) {
      exact = 0.0;
      break;
    }
    std::vector<Tuple> ta, tb;
    legacy.batch.ForEachTuple(a, 0, a.count,
                              [&ta](const Tuple& t) { ta.push_back(t); });
    flat.batch.ForEachTuple(b, 0, b.count,
                            [&tb](const Tuple& t) { tb.push_back(t); });
    for (size_t j = 0; j < ta.size(); ++j) {
      if (ta[j].ts != tb[j].ts || ta[j].key != tb[j].key ||
          ta[j].value != tb[j].value) {
        exact = 0.0;
        break;
      }
    }
  }

  out->push_back({"ingest_throughput.flat_vs_legacy", exact, "exact"});
  out->push_back({"ingest_throughput.flat_tuples_per_sec", flat.best_tps,
                  "tuples/s", /*gate=*/false, /*tolerance_pct=*/100.0});
  out->push_back({"ingest_throughput.legacy_tuples_per_sec", legacy.best_tps,
                  "tuples/s", /*gate=*/false, /*tolerance_pct=*/100.0});
  out->push_back({"ingest_throughput.flat_speedup_ratio",
                  legacy.best_tps > 0 ? flat.best_tps / legacy.best_tps : 0,
                  "ratio", /*gate=*/false, /*tolerance_pct=*/100.0});
}

/// Heavy-hitter mode acceptance (DESIGN.md §17) on a deterministic
/// high-cardinality Zipf z=1.0 stream (scaled-down twin of bench/sketch_scale
/// so the nightly track stays fast). All gated — every signal is a pure
/// data-structure or virtual-plan property, no clocks:
///  - memory_within_budget: 1.0 iff sketch key_state_bytes() (the
///    O(distinct-keys) axis; tuple columns are O(tuples) in both modes)
///    <= 10% of exact mode's.
///  - bsi_excess_ok: 1.0 iff (bsi_sketch - bsi_exact) / avg_block_size
///    <= 0.15 — the documented tail-bucket imbalance bound.
///  - exact_shard_invariance: 1.0 iff at each shard count in {1, 4} the
///    exact-mode pipeline's sealed merged batch is bit-identical to an
///    inline pre-PR reference (route by hash, flat accumulators,
///    LoserTree merge) — proving the sketch machinery is inert when off.
///  - key_state_ratio / head_coverage: the underlying gated trends.
void TrackSketchScale(std::vector<Signal>* out) {
  constexpr uint32_t kBlocks = 16;
  constexpr uint64_t kCardinality = 1000000;
  Rng rng(42);
  ZipfSampler sampler(kCardinality, /*z=*/1.0);
  std::vector<Tuple> stream;
  const uint64_t kTuples = 2000000;
  stream.reserve(kTuples);
  for (uint64_t i = 0; i < kTuples; ++i) {
    stream.push_back(Tuple{static_cast<TimeMicros>(i),
                           static_cast<KeyId>(sampler.Sample(rng)), 1.0});
  }

  struct ModeResult {
    size_t key_state_bytes = 0;
    double bsi = 0;
    double avg_block_size = 0;
    double head_coverage = 1.0;
  };
  auto run_mode = [&stream](AccumulatorKind kind) {
    AccumulatorOptions opts;
    opts.estimated_tuples = stream.size();
    opts.avg_keys = kCardinality;  // auto promote threshold ~ 4x mean freq
    opts.sketch.capacity = 16384;
    opts.sketch.tail_buckets = 8 * kBlocks;
    auto acc = MakeAccumulator(kind, opts);
    acc->Begin(0, static_cast<TimeMicros>(stream.size()));
    for (const Tuple& t : stream) acc->OnTuple(t);
    AccumulatedBatch batch = acc->Seal();
    ModeResult r;
    r.key_state_bytes = acc->key_state_bytes();
    r.head_coverage = batch.stats().sketch_mode
                          ? batch.stats().head_coverage()
                          : 1.0;
    const PartitionPlan plan = BuildPromptPlan(batch, kBlocks);
    const PartitionedBatch parts = MaterializePlan(batch, plan, kBlocks);
    const PartitionMetrics m = ComputeBlockMetrics(parts);
    r.bsi = m.bsi;
    r.avg_block_size = m.avg_block_size;
    return r;
  };
  const ModeResult exact = run_mode(AccumulatorKind::kFlat);
  const ModeResult sketch = run_mode(AccumulatorKind::kSketch);

  const double mem_ratio =
      static_cast<double>(sketch.key_state_bytes) /
      static_cast<double>(std::max<size_t>(1, exact.key_state_bytes));
  const double bsi_excess =
      (sketch.bsi - exact.bsi) / std::max(1.0, exact.avg_block_size);

  // Exact-mode inertness over a 500k-tuple slice: at each shard count the
  // pipeline must be bit-identical to the pre-PR reference merge (hash
  // routing into flat accumulators + LoserTree). Different shard counts
  // legitimately interleave equal-count runs differently, so {1} and {4}
  // are each checked against their own reference, not against each other.
  constexpr size_t kSlice = 500000;
  auto pipeline_image = [&stream](uint32_t shards) {
    IngestOptions opts;
    opts.shards = shards;
    ParallelIngestPipeline pipeline(opts);
    pipeline.BeginBatch(0, static_cast<TimeMicros>(stream.size()));
    for (size_t i = 0; i < kSlice; ++i) pipeline.Ingest(stream[i]);
    const AccumulatedBatch& merged = pipeline.SealBatch();
    std::vector<SortedKeyRun> runs;
    std::vector<Tuple> chained;
    for (const SortedKeyRun& run : merged.keys()) {
      runs.push_back(run);
      merged.ForEachTuple(run, 0, run.count,
                          [&](const Tuple& t) { chained.push_back(t); });
    }
    return std::make_pair(std::move(runs), std::move(chained));
  };
  auto reference_image = [&stream](uint32_t shards) {
    AccumulatorOptions scaled;  // defaults, matching IngestOptions
    scaled.estimated_tuples =
        std::max<uint64_t>(1, scaled.estimated_tuples / shards);
    scaled.avg_keys = std::max<uint64_t>(1, scaled.avg_keys / shards);
    std::vector<std::unique_ptr<Accumulator>> accs;
    for (uint32_t s = 0; s < shards; ++s) {
      accs.push_back(MakeAccumulator(AccumulatorKind::kFlat, scaled));
      accs.back()->Begin(0, static_cast<TimeMicros>(stream.size()));
    }
    for (size_t i = 0; i < kSlice; ++i) {
      accs[HashKey(stream[i].key) % shards]->OnTuple(stream[i]);
    }
    std::vector<AccumulatedBatch> sealed;
    for (auto& acc : accs) sealed.push_back(acc->Seal());
    std::vector<std::span<const SortedKeyRun>> inputs;
    for (const AccumulatedBatch& b : sealed) inputs.emplace_back(b.keys());
    LoserTree tree(std::move(inputs));
    std::vector<SortedKeyRun> runs;
    std::vector<Tuple> chained;
    SortedKeyRun run;
    uint32_t source = 0;
    while (tree.Next(&run, &source)) {
      runs.push_back(run);
      sealed[source].ForEachTuple(
          run, 0, run.count, [&](const Tuple& t) { chained.push_back(t); });
    }
    return std::make_pair(std::move(runs), std::move(chained));
  };
  double invariant = 1.0;
  for (const uint32_t shards : {1u, 4u}) {
    const auto got = pipeline_image(shards);
    const auto want = reference_image(shards);
    if (got.first.size() != want.first.size() ||
        got.second.size() != want.second.size()) {
      invariant = 0.0;
    }
    for (size_t i = 0; invariant == 1.0 && i < got.first.size(); ++i) {
      if (got.first[i].key != want.first[i].key ||
          got.first[i].count != want.first[i].count) {
        invariant = 0.0;
      }
    }
    for (size_t i = 0; invariant == 1.0 && i < got.second.size(); ++i) {
      if (got.second[i].ts != want.second[i].ts ||
          got.second[i].key != want.second[i].key ||
          got.second[i].value != want.second[i].value) {
        invariant = 0.0;
      }
    }
  }

  out->push_back({"sketch_scale.memory_within_budget",
                  mem_ratio <= 0.10 ? 1.0 : 0.0, "bool"});
  out->push_back({"sketch_scale.bsi_excess_ok",
                  bsi_excess <= 0.15 ? 1.0 : 0.0, "bool"});
  out->push_back({"sketch_scale.exact_shard_invariance", invariant, "bool"});
  out->push_back({"sketch_scale.key_state_ratio", mem_ratio, "ratio",
                  /*gate=*/true, /*tolerance_pct=*/10.0});
  out->push_back({"sketch_scale.head_coverage", sketch.head_coverage, "frac",
                  /*gate=*/true, /*tolerance_pct=*/10.0});
}

/// The crash-restart drill (bench/durability.cc), fully virtual-time: for
/// each fsync policy, kill the engine at batch 4's map stage and restart
/// over the surviving segments. Recovered-batch counts, torn records and
/// the recovered-vs-reference window drift are exact integers/zeros on a
/// healthy store, so all of them are gated; drift in particular must stay
/// 0.0 — any nonzero value means recovery fabricated or lost window state.
void TrackDurability(std::vector<Signal>* out) {
  const DurabilityDrillSetup setup;
  for (FsyncPolicy fsync :
       {FsyncPolicy::kNever, FsyncPolicy::kBatch, FsyncPolicy::kAlways}) {
    const DurabilityDrillResult r = RunDurabilityDrill(
        fsync, setup, std::string("track_") + FsyncPolicyName(fsync));
    const std::string name = std::string("durability.") + FsyncPolicyName(fsync);
    out->push_back({name + ".recovered_batches",
                    static_cast<double>(r.recovery.batches_recovered),
                    "count"});
    out->push_back({name + ".torn_records",
                    static_cast<double>(r.recovery.torn_records), "count"});
    out->push_back({name + ".data_loss", r.recovery.data_loss ? 1.0 : 0.0,
                    "bool"});
    out->push_back({name + ".recovered_window_drift",
                    WindowDrift(r.recovered_window, r.reference_window),
                    "delta"});
  }

  // One adversarial stream through the same drill: the flash crowd's
  // mid-window key burst is the hardest state to reproduce from the log.
  DurabilityDrillSetup scen = setup;
  scen.crash_at = 5;
  scen.run_batches = 10;
  const DurabilityDrillResult crowd =
      RunScenarioDrill(ScenarioId::kFlashCrowd, FsyncPolicy::kBatch, scen,
                       /*rate_tps=*/20000, /*seed=*/17);
  out->push_back({"durability.flash_crowd.recovered_batches",
                  static_cast<double>(crowd.recovery.batches_recovered),
                  "count"});
  out->push_back({"durability.flash_crowd.recovered_window_drift",
                  WindowDrift(crowd.recovered_window, crowd.reference_window),
                  "delta"});
}

/// Flight-recorder acceptance signals (DESIGN.md §16):
///  - roundtrip_divergent_batches (gated, exactly 0): record a run with the
///    journal on, replay it with ReplayJournal, and count batches whose
///    outcome fingerprints diverge. Virtual-time deterministic end to end.
///  - record_overhead_pct (gated, exactly 0): recorder wall-time beyond the
///    §8 2% budget. The engine runs in virtual time, so wall-over-wall
///    ratios are simulator bookkeeping noise (which is why
///    telemetry_overhead_pct is ungated); what the budget constrains in
///    deployment is recorder CPU per second of *stream* at the recorded
///    rate. So: overhead = min-of-N wall delta (journal on vs off) divided
///    by the recorded stream's duration. Within budget the signal is
///    exactly 0.0, so the relative gate (baseline 0) trips only on a real
///    budget breach, not host noise.
///  - record_overhead_raw_pct (ungated): the raw stream-relative trend.
void TrackReplay(std::vector<Signal>* out) {
  const std::string scratch =
      (std::filesystem::temp_directory_path() / "prompt_replay_bench")
          .string();
  std::filesystem::remove_all(scratch);

  auto run_once = [](const std::string& journal_dir) {
    auto profile = std::make_shared<ConstantRate>(20000.0);
    auto source = MakeDataset(DatasetId::kSynD, profile, /*seed=*/7, 1.0, 0.02);
    EngineOptions opts;
    opts.batch_interval = Seconds(1);
    opts.map_tasks = 16;
    opts.reduce_tasks = 16;
    opts.cores = 16;
    opts.cost = BenchCostModel();
    opts.unstable_queue_intervals = 1e9;
    opts.obs.collect_partition_metrics = true;
    if (!journal_dir.empty()) {
      opts.journal.dir = journal_dir;
      // kNever isolates the recording CPU cost (encode + append); the fsync
      // policy's disk cost is the store's §8 trade-off, not the recorder's.
      opts.journal.fsync = FsyncPolicy::kNever;
    }
    MicroBatchEngine engine(opts, JobSpec::WordCount(8),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    Stopwatch watch;
    engine.Run(8);
    return watch.ElapsedMicros();
  };

  // Determinism leg: one recorded run, replayed and diffed.
  const std::string journal = scratch + "/journal";
  run_once(journal);
  ReplayOptions replay;
  replay.journal_dir = journal;
  replay.output_dir = journal + ".replay";
  auto result = ReplayJournal(replay);
  double divergent = 1e9;  // a failed replay is maximally divergent
  if (result.ok()) {
    divergent = result->BitIdentical()
                    ? 0.0
                    : static_cast<double>(result->batches -
                                          result->diff.identical_batches);
  }
  out->push_back({"replay.roundtrip_divergent_batches", divergent, "count"});

  // Overhead leg: min-of-N journal-on vs journal-off twins.
  TimeMicros off = run_once(""), on = run_once(scratch + "/overhead");
  for (int i = 0; i < 4; ++i) {
    off = std::min(off, run_once(""));
    std::filesystem::remove_all(scratch + "/overhead");
    on = std::min(on, run_once(scratch + "/overhead"));
  }
  const double stream_us = static_cast<double>(8 * Seconds(1));
  const double raw_pct =
      100.0 * (static_cast<double>(on) - static_cast<double>(off)) / stream_us;
  out->push_back({"replay.record_overhead_pct", std::max(0.0, raw_pct - 2.0),
                  "%>budget"});
  out->push_back({"replay.record_overhead_raw_pct", raw_pct, "%",
                  /*gate=*/false, /*tolerance_pct=*/100.0});
  std::filesystem::remove_all(scratch);
}

/// Wall-clock overhead of the telemetry layer (ring + autopsy + exporter)
/// over a metrics-only run — tracked, not gated.
double TelemetryOverheadPct() {
  auto run_once = [](bool telemetry) {
    auto profile = std::make_shared<ConstantRate>(20000.0);
    auto source = MakeDataset(DatasetId::kSynD, profile, /*seed=*/7, 1.0, 0.02);
    EngineOptions opts;
    opts.batch_interval = Seconds(1);
    opts.map_tasks = 16;
    opts.reduce_tasks = 16;
    opts.cores = 16;
    opts.cost = BenchCostModel();
    opts.unstable_queue_intervals = 1e9;
    opts.obs.metrics_enabled = true;
    if (telemetry) {
      opts.obs.serve_port = 0;
      opts.obs.autopsy_enabled = true;
    }
    MicroBatchEngine engine(opts, JobSpec::WordCount(8),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    Stopwatch watch;
    engine.Run(8);
    return watch.ElapsedMicros();
  };
  TimeMicros off = run_once(false), on = run_once(true);
  for (int i = 0; i < 4; ++i) {
    off = std::min(off, run_once(false));
    on = std::min(on, run_once(true));
  }
  return 100.0 * (static_cast<double>(on) - static_cast<double>(off)) /
         static_cast<double>(off);
}

void WriteJson(const std::vector<Signal>& signals, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_track: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema_version\": 1,\n  \"signals\": [\n");
  for (size_t i = 0; i < signals.size(); ++i) {
    const Signal& s = signals[i];
    std::fprintf(f,
                 "    {\"id\": \"%s\", \"value\": %.6f, \"unit\": \"%s\", "
                 "\"gate\": %s, \"tolerance_pct\": %.2f}%s\n",
                 s.id.c_str(), s.value, s.unit.c_str(),
                 s.gate ? "true" : "false", s.tolerance_pct,
                 i + 1 < signals.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_prompt.json";
  std::vector<Signal> signals;

  // Gated, deterministic (virtual-time) signals.
  TrackConfig("synd_z1.0_prompt", 1.0, PartitionerType::kPrompt, 8000.0,
              &signals);
  TrackConfig("synd_z1.4_hash", 1.4, PartitionerType::kHash, 8000.0, &signals);
  TrackAdaptiveShift(&signals);
  TrackMultiTenant(&signals);
  // Flat-accumulator bit-identity (gated) + throughput ratio (ungated).
  TrackIngestAccumulators(&signals);
  // Heavy-hitter mode contract: memory budget, BSI bound, shard invariance.
  TrackSketchScale(&signals);
  // Crash-restart recovery contract per fsync policy (all gated; the
  // window-drift signals must hold at exactly zero).
  TrackDurability(&signals);
  // Flight-recorder round trip (gated at zero divergence) and recording
  // overhead vs the §8 2% budget.
  TrackReplay(&signals);

  // Ungated wall-clock trend signal: loose tolerance recorded for context.
  signals.push_back({"telemetry_overhead_pct", TelemetryOverheadPct(), "%",
                     /*gate=*/false, /*tolerance_pct=*/100.0});

  WriteJson(signals, out_path);
  std::printf("wrote %zu signals to %s\n", signals.size(), out_path.c_str());
  for (const Signal& s : signals) {
    std::printf("  %-40s %14.4f %-8s %s\n", s.id.c_str(), s.value,
                s.unit.c_str(), s.gate ? "gated" : "ungated");
  }
  return 0;
}
