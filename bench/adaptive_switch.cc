// Adaptive technique switching under drift (the §7-style skew-shift
// scenario): a stream that is uniform (z = 0) for the first half and Zipf
// z = 1.4 from mid-run. Static techniques face a trade-off — Hash is cheap
// on the uniform phase but straggles after the shift, Prompt absorbs the
// shift but pays its machinery everywhere. The adaptive controller walks
// down to Hash while the stream is calm and escalates back to Prompt once
// the skew autopsies accumulate, landing within a few percent of the best
// *static* technique on both phases.
//
// The harness is also the acceptance gate for the controller: it exits
// non-zero unless (a) at least one switch fired in each direction, (b) the
// adaptive per-phase mean latency (excluding each phase's transition window)
// is within kMaxOverheadPct of the best static arm, and (c) the per-key
// window aggregates are bit-identical to a static run over the same stream.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"

using namespace prompt;
using namespace prompt::bench;

namespace {

constexpr double kMaxOverheadPct = 5.0;

int CheckClose(const char* phase, double adaptive_us, double best_us) {
  const double overhead = 100.0 * (adaptive_us / best_us - 1.0);
  std::printf("  %s: adaptive %.0f us vs best static %.0f us (%+.2f%%)\n",
              phase, adaptive_us, best_us, overhead);
  if (overhead > kMaxOverheadPct) {
    std::fprintf(stderr,
                 "FAIL: adaptive %s mean latency %.2f%% above best static "
                 "(limit %.1f%%)\n",
                 phase, overhead, kMaxOverheadPct);
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  const SkewShiftSetup setup;
  PrintHeader("Adaptive switching under a z=0 -> z=1.4 skew shift");

  const PartitionerType statics[] = {PartitionerType::kHash,
                                     PartitionerType::kPk2,
                                     PartitionerType::kPrompt};
  double best_phase1 = 1e18, best_phase2 = 1e18;
  SkewShiftRun hash_run;

  PrintRow({"technique", "phase1 mean ms", "phase2 mean ms", "switches"});
  for (PartitionerType type : statics) {
    SkewShiftRun run = RunSkewShift(setup, type, /*adaptive=*/false);
    const double p1 = PhaseMeanLatencyUs(run.summary, setup, 1);
    const double p2 = PhaseMeanLatencyUs(run.summary, setup, 2);
    best_phase1 = std::min(best_phase1, p1);
    best_phase2 = std::min(best_phase2, p2);
    if (type == PartitionerType::kHash) hash_run = std::move(run);
    PrintRow({PartitionerTypeName(type), Fmt(p1 / 1000.0), Fmt(p2 / 1000.0),
              "static"});
  }

  SkewShiftRun adaptive =
      RunSkewShift(setup, PartitionerType::kPrompt, /*adaptive=*/true);
  const double a1 = PhaseMeanLatencyUs(adaptive.summary, setup, 1);
  const double a2 = PhaseMeanLatencyUs(adaptive.summary, setup, 2);
  PrintRow({"Adaptive", Fmt(a1 / 1000.0), Fmt(a2 / 1000.0),
            "up=" + std::to_string(adaptive.summary.technique_switches_up) +
                " down=" +
                std::to_string(adaptive.summary.technique_switches_down)});
  for (const auto& s : adaptive.summary.technique_switches) {
    std::printf("  after batch %llu: %s -> %s (%s)\n",
                static_cast<unsigned long long>(s.after_batch),
                PartitionerTypeName(s.from), PartitionerTypeName(s.to),
                s.reason.c_str());
  }

  int failures = 0;
  if (adaptive.summary.technique_switches_up < 1 ||
      adaptive.summary.technique_switches_down < 1) {
    std::fprintf(stderr, "FAIL: expected >=1 switch in each direction "
                         "(up=%llu down=%llu)\n",
                 static_cast<unsigned long long>(
                     adaptive.summary.technique_switches_up),
                 static_cast<unsigned long long>(
                     adaptive.summary.technique_switches_down));
    ++failures;
  }
  failures += CheckClose("phase1", a1, best_phase1);
  failures += CheckClose("phase2", a2, best_phase2);

  // Partitioning decides placement only: the adaptive run's per-key window
  // sums must equal a static replay's, bit for bit (WordCount sums small
  // integers — double addition is exact in any order).
  bool identical = adaptive.window.size() == hash_run.window.size();
  if (identical) {
    for (const auto& [key, value] : adaptive.window) {
      auto it = hash_run.window.find(key);
      if (it == hash_run.window.end() || it->second != value) {
        identical = false;
        break;
      }
    }
  }
  std::printf("  window aggregates vs static replay: %s (%zu keys)\n",
              identical ? "bit-identical" : "MISMATCH",
              adaptive.window.size());
  if (!identical) {
    std::fprintf(stderr, "FAIL: adaptive window diverged from static replay\n");
    ++failures;
  }

  if (failures > 0) return 1;
  std::printf("OK: adaptive within %.1f%% of best static on both phases\n",
              kMaxOverheadPct);
  return 0;
}
