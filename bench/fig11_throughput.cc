// Regenerates Figure 11: maximum sustainable throughput under variable
// (sinusoidal) input rates.
//  (a)-(c): per batch interval (1, 2, 3 s) for Tweets, DEBS, GCM
//  (d):     vs Zipf exponent z in {0.1 .. 2.0} on SynD at a 3 s interval
// The back-pressure probe reports the highest mean rate with a stable
// pipeline, exactly the paper's measurement methodology.
#include <cstring>

#include "bench_util.h"

using namespace prompt;
using namespace prompt::bench;

namespace {

void VariableRateExperiment(DatasetId dataset) {
  PrintHeader(std::string("Figure 11 — max throughput (tuples/s), ") +
              DatasetName(dataset) + ", sinusoidal rate");
  PrintRow({"Technique", "interval=1s", "interval=2s", "interval=3s"});
  for (PartitionerType type : EvaluationTechniques()) {
    std::vector<std::string> cells = {PartitionerTypeName(type)};
    for (double interval_s : {1.0, 2.0, 3.0}) {
      ThroughputSetup setup;
      setup.batch_interval = Seconds(interval_s);
      setup.batches_per_probe = 8;
      setup.search_iterations = 6;
      cells.push_back(Fmt(MaxThroughput(dataset, type, setup), 0));
    }
    PrintRow(cells);
  }
}

void SkewExperiment() {
  PrintHeader(
      "Figure 11d — max throughput (tuples/s) vs Zipf exponent, SynD, "
      "interval=3s");
  const double zs[] = {0.1, 0.4, 0.8, 1.0, 1.2, 1.6, 2.0};
  std::vector<std::string> header = {"Technique"};
  for (double z : zs) header.push_back("z=" + Fmt(z, 1));
  PrintRow(header, 11);
  for (PartitionerType type : EvaluationTechniques()) {
    std::vector<std::string> cells = {PartitionerTypeName(type)};
    for (double z : zs) {
      ThroughputSetup setup;
      setup.batch_interval = Seconds(3);
      setup.batches_per_probe = 6;
      setup.search_iterations = 6;
      cells.push_back(Fmt(MaxThroughput(DatasetId::kSynD, type, setup, z), 0));
    }
    PrintRow(cells, 11);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  VariableRateExperiment(DatasetId::kTweets);  // Fig. 11a
  if (!quick) {
    VariableRateExperiment(DatasetId::kDebs);  // Fig. 11b
    VariableRateExperiment(DatasetId::kGcm);   // Fig. 11c
  }
  SkewExperiment();  // Fig. 11d
  return 0;
}
