// Shared scaffolding for the durability harnesses: the crash-restart drill
// (kill the engine mid-window, restart a fresh engine over the same store
// directory, compare the recovered window against an uninterrupted twin)
// used by bench/durability.cc and the gated durability.* signals in
// bench_track.cc. Everything runs in virtual time over deterministic
// sources, so recovered-batch counts and window drift are exact numbers a
// regression gate can hold at zero tolerance.
#pragma once

#include <filesystem>
#include <memory>
#include <string>
#include <unordered_map>

#include "baselines/factory.h"
#include "engine/engine.h"
#include "fault/fault_injector.h"
#include "workload/scenarios.h"
#include "workload/sources.h"

namespace prompt::bench {

struct DurabilityDrillSetup {
  uint64_t crash_at = 4;     ///< the batch whose processing dies
  uint32_t run_batches = 8;  ///< batches the doomed run was asked for
  uint32_t window_batches = 10;
  uint32_t rf = 2;
  double rate_tps = 8000;
  uint64_t seed = 5;
};

inline EngineOptions DurabilityDrillOptions(const std::string& dir,
                                            FsyncPolicy fsync,
                                            const DurabilityDrillSetup& setup) {
  EngineOptions opts;
  opts.batch_interval = Millis(200);
  opts.map_tasks = 4;
  opts.reduce_tasks = 3;
  opts.cores = 8;
  opts.cluster_enabled = true;
  opts.cluster.nodes = 4;
  opts.cluster.cores_per_node = 2;
  opts.cluster.replication_factor = setup.rf;
  opts.store.dir = dir;
  opts.store.fsync = fsync;
  return opts;
}

inline std::unique_ptr<TupleSource> DurabilityDrillSource(
    const DurabilityDrillSetup& setup) {
  ZipfKeyedSource::Params params;
  params.cardinality = 800;
  params.zipf = 1.0;
  params.seed = setup.seed;
  params.rate = std::make_shared<ConstantRate>(setup.rate_tps);
  return std::make_unique<SynDSource>(std::move(params));
}

/// A scratch store directory under the system temp dir, wiped before use.
inline std::string FreshDrillDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "prompt_durability_bench" /
       name)
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

struct DurabilityDrillResult {
  RunSummary doomed;  ///< the crashed run's summary
  MicroBatchEngine::DurableRecovery recovery;
  /// The restarted engine's window, and the window of an uninterrupted
  /// memory-only run over `recovery.batches_recovered` batches — equal iff
  /// recovery was bit-exact for everything the fsync policy persisted.
  std::unordered_map<KeyId, double> recovered_window;
  std::unordered_map<KeyId, double> reference_window;
  uint64_t live_batches = 0;  ///< store-held batches after restart
  uint64_t disk_bytes = 0;
};

/// Kill the engine at `setup.crash_at` (map stage), restart over the same
/// store directory, and replay an uninterrupted reference for comparison.
/// `make_source` must yield bit-identical streams on every call.
template <typename SourceFactory>
DurabilityDrillResult RunDurabilityDrill(FsyncPolicy fsync,
                                         const DurabilityDrillSetup& setup,
                                         const std::string& dir_name,
                                         SourceFactory make_source) {
  const std::string dir = FreshDrillDir(dir_name);
  DurabilityDrillResult result;

  {  // --- the doomed run ---------------------------------------------
    auto source = make_source();
    EngineOptions opts = DurabilityDrillOptions(dir, fsync, setup);
    auto faults =
        ParseFaultSchedule("crash:" + std::to_string(setup.crash_at) + ".map");
    PROMPT_CHECK(faults.ok());
    opts.faults = *faults;
    MicroBatchEngine engine(opts, JobSpec::WordCount(setup.window_batches),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    result.doomed = engine.Run(setup.run_batches);
    PROMPT_CHECK(result.doomed.crashed);
  }

  {  // --- the restart ------------------------------------------------
    auto source = make_source();
    MicroBatchEngine engine(DurabilityDrillOptions(dir, fsync, setup),
                            JobSpec::WordCount(setup.window_batches),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    result.recovery = engine.durable_recovery();
    result.recovered_window = engine.window().Result();
    if (engine.durable_store() != nullptr) {
      result.live_batches = engine.durable_store()->live_batches();
      result.disk_bytes = engine.durable_store()->disk_bytes();
    }
  }

  {  // --- the uninterrupted reference (memory-only) ------------------
    auto source = make_source();
    EngineOptions opts = DurabilityDrillOptions("", fsync, setup);
    opts.store = StoreOptions{};
    MicroBatchEngine engine(opts, JobSpec::WordCount(setup.window_batches),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    engine.Run(static_cast<uint32_t>(result.recovery.batches_recovered));
    result.reference_window = engine.window().Result();
  }

  std::filesystem::remove_all(dir);
  return result;
}

inline DurabilityDrillResult RunDurabilityDrill(
    FsyncPolicy fsync, const DurabilityDrillSetup& setup,
    const std::string& dir_name) {
  return RunDurabilityDrill(fsync, setup, dir_name,
                            [&setup]() { return DurabilityDrillSource(setup); });
}

/// Crash-restart drill over a named adversarial scenario: same shape, but
/// the stream is the scenario's (deterministic per seed, so the restart and
/// the reference replay the identical input).
inline DurabilityDrillResult RunScenarioDrill(ScenarioId id, FsyncPolicy fsync,
                                              const DurabilityDrillSetup& setup,
                                              double rate_tps, uint64_t seed) {
  return RunDurabilityDrill(
      fsync, setup, std::string("scenario_") + ScenarioName(id),
      [id, rate_tps, seed]() { return MakeScenario(id, rate_tps, seed).source; });
}

}  // namespace prompt::bench
