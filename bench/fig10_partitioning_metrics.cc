// Regenerates Figure 10: batching-phase partitioning quality.
//  (a)/(b) BSI relative to Hashing  — Tweets, TPC-H
//  (c)/(d) BCI relative to Shuffle  — Tweets, TPC-H
// GCM and DEBS are included as well (the paper reports they match).
#include <map>

#include "bench_util.h"
#include "stats/metrics.h"

using namespace prompt;
using namespace prompt::bench;

namespace {

struct Quality {
  double bsi = 0;
  double bci = 0;
  double ksr = 0;
  double mpi = 0;
};

std::map<PartitionerType, Quality> Measure(DatasetId dataset) {
  constexpr int kBatches = 12;
  constexpr double kRate = 60000;
  const TimeMicros interval = Seconds(1);

  std::map<PartitionerType, Quality> out;
  for (PartitionerType type : EvaluationTechniques()) {
    auto rate = std::make_shared<ConstantRate>(kRate);
    auto source = MakeDataset(dataset, rate, /*seed=*/21,
                              /*synd_zipf=*/1.0, /*cardinality_scale=*/0.1);
    auto partitioner = CreatePartitioner(type);
    Quality q;
    Tuple t{};
    bool pending = false;
    for (int b = 0; b < kBatches; ++b) {
      const TimeMicros start = b * interval;
      const TimeMicros end = start + interval;
      partitioner->Begin(16, start, end);
      if (pending && t.ts < end) {
        partitioner->OnTuple(t);
        pending = false;
      }
      while (!pending) {
        source->Next(&t);
        if (t.ts >= end) {
          pending = true;
          break;
        }
        partitioner->OnTuple(t);
      }
      auto batch = partitioner->Seal(b);
      auto m = ComputeBlockMetrics(batch);
      q.bsi += m.bsi;
      q.bci += m.bci;
      q.ksr += m.ksr;
      q.mpi += m.mpi;
    }
    q.bsi /= kBatches;
    q.bci /= kBatches;
    q.ksr /= kBatches;
    q.mpi /= kBatches;
    out[type] = q;
  }
  return out;
}

void Report(DatasetId dataset) {
  auto rows = Measure(dataset);
  const double hash_bsi = std::max(rows[PartitionerType::kHash].bsi, 1e-9);
  const double shuffle_bci =
      std::max(rows[PartitionerType::kShuffle].bci, 1e-9);

  PrintHeader(std::string("Figure 10 — ") + DatasetName(dataset));
  PrintRow({"Technique", "BSI", "BSI/Hash", "BCI", "BCI/Shuffle", "KSR",
            "MPI"});
  for (PartitionerType type : EvaluationTechniques()) {
    const Quality& q = rows[type];
    PrintRow({PartitionerTypeName(type), Fmt(q.bsi, 1),
              Fmt(q.bsi / hash_bsi, 3), Fmt(q.bci, 1),
              Fmt(q.bci / shuffle_bci, 3), Fmt(q.ksr, 3), Fmt(q.mpi, 4)});
  }
}

}  // namespace

int main() {
  std::printf(
      "Figure 10: Data Partitioning Metrics (lower is better; BSI relative\n"
      "to Hashing as in Fig. 10a/b, BCI relative to Shuffle as in 10c/d)\n");
  Report(DatasetId::kTweets);  // Fig. 10a / 10c
  Report(DatasetId::kTpch);    // Fig. 10b / 10d
  Report(DatasetId::kGcm);     // reported as "similar" in the paper
  Report(DatasetId::kDebs);
  return 0;
}
