// Ablations of Prompt's design choices (DESIGN.md §5):
//   A1  CountTree update-budget sweep: ordering quality & cost vs budget
//   A2  MPI weight extremes (p1=1 ≈ shuffle, p3=1 ≈ hash behaviour, §3.3)
//   A3  Early-release slack sweep: how much slack Alg. 2 actually needs
//   A4  Reduce-allocator isolation: Alg. 3 vs hash shuffle on Prompt blocks
//   A5  Elasticity thresholds: convergence speed vs (threshold, d)
//   A6  Batch resizing [12] vs a fixed interval + Alg. 4 elasticity
#include <algorithm>
#include <map>

#include "bench_util.h"
#include "core/accumulator_api.h"
#include "core/prompt_partitioner.h"
#include "stats/metrics.h"

using namespace prompt;
using namespace prompt::bench;

namespace {

// ---------- A1: budget sweep ----------
void BudgetSweep() {
  PrintHeader("A1 — CountTree budget sweep (Tweets-like batch, 60k tuples)");
  PrintRow({"budget", "treeUpdates", "updates/key", "displacement",
            "sealCost(us)"});
  for (uint32_t budget : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    Rng rng(11);
    ZipfSampler zipf(40000, 1.0);
    AccumulatorOptions opts;
    opts.budget = budget;
    opts.estimated_tuples = 60000;
    opts.avg_keys = 20000;
    auto acc_ptr = MakeAccumulator(AccumulatorKind::kFlat, opts);
    auto& acc = *acc_ptr;
    acc.Begin(0, Seconds(1));
    for (int i = 0; i < 60000; ++i) {
      acc.OnTuple(Tuple{i * 16, Mix64(zipf.Sample(rng)), 1.0});
    }
    Stopwatch watch;
    auto batch = acc.Seal();
    TimeMicros seal_cost = watch.ElapsedMicros();

    // Mean displacement of the top-100 keys vs the exact order.
    auto exact = batch.keys();
    std::stable_sort(exact.begin(), exact.end(),
                     [](const SortedKeyRun& a, const SortedKeyRun& b) {
                       return a.count > b.count;
                     });
    std::map<KeyId, size_t> pos;
    for (size_t i = 0; i < batch.keys().size(); ++i) {
      pos[batch.keys()[i].key] = i;
    }
    double disp = 0;
    const size_t top = std::min<size_t>(100, exact.size());
    for (size_t i = 0; i < top; ++i) {
      disp += std::abs(static_cast<double>(pos[exact[i].key]) -
                       static_cast<double>(i));
    }
    PrintRow({std::to_string(budget), std::to_string(acc.ordering_updates()),
              Fmt(static_cast<double>(acc.ordering_updates()) /
                      static_cast<double>(acc.num_keys()),
                  2),
              Fmt(disp / static_cast<double>(top), 1),
              std::to_string(seal_cost)});
  }
  std::printf(
      "(Ordering quality saturates quickly with budget; the default 16 is\n"
      " near-exact for the head keys at a fraction of per-tuple updates.)\n");
}

// ---------- A2: MPI weight extremes ----------
void MpiWeightExtremes() {
  PrintHeader("A2 — MPI weights rank techniques by objective (§3.3)");
  auto rate = std::make_shared<ConstantRate>(50000);
  auto source = MakeDataset(DatasetId::kSynD, rate, 5, 1.2, 0.02);
  // One batch of tuples shared by all techniques.
  std::vector<Tuple> tuples;
  Tuple t;
  while (true) {
    source->Next(&t);
    if (t.ts >= Seconds(1)) break;
    tuples.push_back(t);
  }
  struct Row {
    const char* name;
    double size_only;
    double locality_only;
    double balanced;
  };
  std::vector<Row> rows;
  for (PartitionerType type :
       {PartitionerType::kShuffle, PartitionerType::kHash,
        PartitionerType::kPrompt}) {
    auto p = CreatePartitioner(type);
    p->Begin(16, 0, Seconds(1));
    for (const Tuple& tup : tuples) p->OnTuple(tup);
    auto batch = p->Seal(0);
    rows.push_back(Row{
        PartitionerTypeName(type),
        ComputeBlockMetrics(batch, MpiWeights{1, 0, 0}).mpi,
        ComputeBlockMetrics(batch, MpiWeights{0, 0, 1}).mpi,
        ComputeBlockMetrics(batch, MpiWeights{}).mpi,
    });
  }
  PrintRow({"Technique", "MPI(p1=1)", "MPI(p3=1)", "MPI(1/3,1/3,1/3)"}, 18);
  for (const Row& r : rows) {
    PrintRow({r.name, Fmt(r.size_only, 4), Fmt(r.locality_only, 4),
              Fmt(r.balanced, 4)},
             18);
  }
}

// ---------- A3: early-release slack sweep ----------
void SlackSweep() {
  PrintHeader("A3 — early-release slack sweep (partition_cost_scale=100)");
  PrintRow({"slack%", "overflow_batches", "meanOverflow(ms)", "stable@6k"});
  for (double frac : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    auto rate = std::make_shared<ConstantRate>(6000);
    auto source = MakeDataset(DatasetId::kTweets, rate, 7, 1.0, 0.02);
    EngineOptions opts;
    opts.batch_interval = Seconds(1);
    opts.map_tasks = opts.reduce_tasks = opts.cores = 16;
    opts.cost = BenchCostModel();
    opts.cost.partition_cost_scale = 100;  // production-substrate scale
    opts.early_release_frac = frac;
    MicroBatchEngine engine(opts, JobSpec::WordCount(8),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    auto summary = engine.Run(10);
    int overflow_batches = 0;
    double mean_overflow = 0;
    for (const auto& b : summary.batches) {
      if (b.partition_overflow > 0) ++overflow_batches;
      mean_overflow += static_cast<double>(b.partition_overflow) / 1000.0;
    }
    mean_overflow /= static_cast<double>(summary.batches.size());
    PrintRow({Fmt(frac * 100, 0) + "%", std::to_string(overflow_batches),
              Fmt(mean_overflow, 1),
              IsStableRun(summary, opts.batch_interval) ? "yes" : "no"});
  }
}

// ---------- A4: reduce allocator isolation ----------
void ReduceAllocatorIsolation() {
  PrintHeader(
      "A4 — Alg. 3 Worst-Fit vs hash shuffle on identical Prompt blocks");
  PrintRow({"allocator", "meanBucketBSI", "maxThroughput(t/s)"});
  for (bool prompt_reduce : {false, true}) {
    // Bucket imbalance at a fixed rate.
    auto rate = std::make_shared<ConstantRate>(6000);
    auto source = MakeDataset(DatasetId::kTweets, rate, 13, 1.0, 0.02);
    EngineOptions opts;
    opts.batch_interval = Seconds(1);
    opts.map_tasks = opts.reduce_tasks = opts.cores = 16;
    opts.cost = BenchCostModel();
    opts.use_prompt_reduce = prompt_reduce;
    opts.unstable_queue_intervals = 1e9;
    MicroBatchEngine engine(opts, JobSpec::WordCount(8),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    auto summary = engine.Run(8);
    double bsi = 0;
    for (const auto& b : summary.batches) bsi += b.reduce_bucket_bsi;
    bsi /= static_cast<double>(summary.batches.size());

    // Max throughput with this allocator.
    auto probe = [&](double r) {
      auto prof = std::make_shared<SinusoidalRate>(r, 0.45, Seconds(2));
      auto src = MakeDataset(DatasetId::kTweets, prof, 13, 1.0, 0.02);
      EngineOptions o = opts;
      o.unstable_queue_intervals = 8.0;
      MicroBatchEngine e(o, JobSpec::WordCount(8),
                         CreatePartitioner(PartitionerType::kPrompt),
                         src.get());
      return e.Run(8);
    };
    double max_rate =
        FindMaxSustainableRate(probe, opts.batch_interval, 500, 16000, 7);
    PrintRow({prompt_reduce ? "PromptWorstFit" : "HashShuffle", Fmt(bsi, 1),
              Fmt(max_rate, 0)});
  }
}

// ---------- A5: elasticity threshold sensitivity ----------
void ElasticitySensitivity() {
  PrintHeader("A5 — elasticity sensitivity: batches to re-stabilize a 3x "
              "rate step");
  PrintRow({"threshold", "d", "recovery_batches", "peak_tasks", "end_tasks"});
  for (double threshold : {0.7, 0.9}) {
    for (int d : {2, 4}) {
      ZipfKeyedSource::Params params;
      params.cardinality = 3000;
      params.zipf = 0.6;
      params.rate = std::make_shared<PiecewiseRate>(
          std::vector<PiecewiseRate::Knot>{{0, 4000},
                                           {Seconds(10), 4000},
                                           {Seconds(11), 12000}});
      SynDSource source(std::move(params));
      EngineOptions opts;
      opts.batch_interval = Seconds(1);
      opts.map_tasks = opts.reduce_tasks = 6;
      opts.cores = 64;
      opts.cores_track_tasks = true;
      opts.cost = BenchCostModel();
      opts.elasticity_enabled = true;
      opts.elasticity.threshold = threshold;
      opts.elasticity.d = d;
      opts.elasticity.max_map_tasks = 64;
      opts.elasticity.max_reduce_tasks = 64;
      opts.unstable_queue_intervals = 1e9;
      MicroBatchEngine engine(opts, JobSpec::WordCount(6),
                              CreatePartitioner(PartitionerType::kPrompt),
                              &source);
      auto summary = engine.Run(60);
      // Recovery = first batch after the step with W back under threshold.
      int recovery = -1;
      uint32_t peak = 0;
      for (size_t i = 12; i < summary.batches.size(); ++i) {
        peak = std::max(peak, summary.batches[i].map_tasks);
        if (recovery < 0 && summary.batches[i].w <= threshold) {
          recovery = static_cast<int>(i) - 11;
        }
      }
      PrintRow({Fmt(threshold, 1), std::to_string(d),
                recovery < 0 ? "never" : std::to_string(recovery),
                std::to_string(peak), std::to_string(engine.map_tasks())});
    }
  }
}

// ---------- A6: resizing vs elasticity ----------
void ResizingVsElasticity() {
  PrintHeader("A6 — Das et al. [12] batch resizing vs Alg. 4 elasticity "
              "under a 3x load step");
  PrintRow({"strategy", "stable", "endInterval(ms)", "p95 latency(ms)"});
  for (int strategy = 0; strategy < 2; ++strategy) {
    ZipfKeyedSource::Params params;
    params.cardinality = 3000;
    params.zipf = 0.6;
    params.rate = std::make_shared<PiecewiseRate>(
        std::vector<PiecewiseRate::Knot>{{0, 4000},
                                         {Seconds(10), 4000},
                                         {Seconds(11), 12000}});
    SynDSource source(std::move(params));
    EngineOptions opts;
    opts.batch_interval = Seconds(1);
    opts.map_tasks = opts.reduce_tasks = 6;
    opts.cores = 64;
    opts.cost = BenchCostModel();
    opts.unstable_queue_intervals = 1e9;
    if (strategy == 0) {
      opts.batch_resizing_enabled = true;
      opts.cores_track_tasks = false;
      opts.cores = 6;  // fixed resources: resizing is the only lever
    } else {
      opts.elasticity_enabled = true;
      opts.cores_track_tasks = true;
      opts.elasticity.d = 2;
      opts.elasticity.max_map_tasks = 64;
      opts.elasticity.max_reduce_tasks = 64;
    }
    MicroBatchEngine engine(opts, JobSpec::WordCount(6),
                            CreatePartitioner(PartitionerType::kPrompt),
                            &source);
    auto summary = engine.Run(60);
    std::vector<double> latencies;
    for (const auto& b : summary.batches) {
      latencies.push_back(static_cast<double>(b.latency) / 1000.0);
    }
    std::sort(latencies.begin(), latencies.end());
    double p95 = latencies[static_cast<size_t>(latencies.size() * 0.95)];
    PrintRow({strategy == 0 ? "BatchResizing" : "Prompt+Alg4",
              IsStableRun(summary, opts.batch_interval,
                          StabilityCriteria{5, 1.05, 2.0})
                  ? "yes"
                  : "no",
              Fmt(static_cast<double>(
                      summary.batches.back().batch_interval) /
                      1000.0,
                  0),
              Fmt(p95, 0)});
  }
  std::printf(
      "(Resizing stabilizes by growing the interval — inflating latency —\n"
      " while elasticity holds the 1s interval and adds tasks, the paper's\n"
      " §1 argument for attacking partitioning/resources instead.)\n");
}

// ---------- A7: exact statistics vs bounded-memory sketch ----------
void ExactVsSketch() {
  PrintHeader(
      "A7 — exact per-batch statistics (Prompt) vs Space-Saving sketch "
      "partitioning (§2.2.4)");
  PrintRow({"technique", "BSI/avg", "KSR", "MPI", "maxThroughput"});
  for (PartitionerType type :
       {PartitionerType::kSketch, PartitionerType::kPrompt}) {
    // Quality on a fixed batch stream.
    auto rate = std::make_shared<ConstantRate>(6000);
    auto source = MakeDataset(DatasetId::kSynD, rate, 23, 1.4, 0.02);
    auto partitioner = CreatePartitioner(type);
    double bsi_rel = 0, ksr = 0, mpi = 0;
    Tuple t{};
    bool pending = false;
    const int kBatches = 8;
    for (int b = 0; b < kBatches; ++b) {
      partitioner->Begin(16, b * Seconds(1), (b + 1) * Seconds(1));
      if (pending && t.ts < (b + 1) * Seconds(1)) {
        partitioner->OnTuple(t);
        pending = false;
      }
      while (!pending) {
        source->Next(&t);
        if (t.ts >= (b + 1) * Seconds(1)) {
          pending = true;
          break;
        }
        partitioner->OnTuple(t);
      }
      auto m = ComputeBlockMetrics(partitioner->Seal(b));
      bsi_rel += m.avg_block_size > 0 ? m.bsi / m.avg_block_size : 0;
      ksr += m.ksr;
      mpi += m.mpi;
    }
    ThroughputSetup setup;
    setup.batch_interval = Seconds(1);
    const double max_rate = MaxThroughput(DatasetId::kSynD, type, setup, 1.4);
    PrintRow({PartitionerTypeName(type), Fmt(bsi_rel / kBatches, 3),
              Fmt(ksr / kBatches, 3), Fmt(mpi / kBatches, 4),
              Fmt(max_rate, 0)});
  }
  std::printf(
      "(The sketch splits only detected heavy hitters and hashes the rest:\n"
      " good size balance, but the tail imbalance and missed mid-weight keys\n"
      " cost combined MPI and throughput vs exact batch statistics.)\n");
}

}  // namespace

int main() {
  BudgetSweep();
  MpiWeightExtremes();
  SlackSweep();
  ReduceAllocatorIsolation();
  ElasticitySensitivity();
  ResizingVsElasticity();
  ExactVsSketch();
  return 0;
}
