// Regenerates Figure 14: the cost of Prompt itself.
//  (a) throughput of Prompt vs Prompt with an explicit post-sort at seal
//      (what Alg. 1's in-stream quasi-sorting avoids)
//  (b) Prompt's partitioning time as a percentage of the batch interval
//      across data rates — the paper observes it stays under ~5%.
//  (c) overhead of the observability subsystem (metrics + per-batch JSONL
//      traces) relative to a run with observability disabled — the budget
//      is <2% wall time.
//  (d) overhead of the continuous-telemetry layer (time-series ring +
//      per-batch autopsy + live HTTP exporter under scrape) against the
//      same <2% DESIGN.md §8 budget.
#include <algorithm>
#include <limits>
#include <sstream>

#include "bench_util.h"

using namespace prompt;
using namespace prompt::bench;

namespace {

void PostSortThroughput() {
  PrintHeader("Figure 14a — throughput with Post-Sort instead of Alg. 1");
  PrintRow({"Variant", "interval=1s", "interval=2s"});
  for (PartitionerType type :
       {PartitionerType::kPrompt, PartitionerType::kPromptPostSort}) {
    std::vector<std::string> cells = {PartitionerTypeName(type)};
    for (double interval_s : {1.0, 2.0}) {
      ThroughputSetup setup;
      setup.batch_interval = Seconds(interval_s);
      setup.batches_per_probe = 8;
      setup.search_iterations = 6;
      auto run = [&](double rate) {
        auto profile = std::make_shared<SinusoidalRate>(
            rate, 0.3, 4 * setup.batch_interval);
        auto source = MakeDataset(DatasetId::kTweets, profile, setup.seed);
        EngineOptions opts;
        opts.batch_interval = setup.batch_interval;
        opts.map_tasks = setup.tasks;
        opts.reduce_tasks = setup.tasks;
        opts.cores = setup.tasks;
        opts.cost = BenchCostModel();
        // Model a production-grade (JVM/serialization) substrate where the
        // seal-time work is ~3 orders of magnitude costlier than this C++
        // core: what fits in the release slack for Alg. 1 no longer fits
        // once an explicit O(K log K) sort is added.
        opts.cost.partition_cost_scale = 2000;
        MicroBatchEngine engine(opts, JobSpec::WordCount(8),
                                CreatePartitioner(type), source.get());
        return engine.Run(setup.batches_per_probe);
      };
      cells.push_back(Fmt(
          FindMaxSustainableRate(run, setup.batch_interval, setup.lo_rate,
                                 setup.hi_rate, setup.search_iterations),
          0));
    }
    PrintRow(cells);
  }
}

void PartitioningOverhead() {
  PrintHeader(
      "Figure 14b — Prompt partitioning time as % of the batch interval");
  PrintRow({"rate(t/s)", "keys/batch", "cost(ms)", "pct_of_1s", "slack_ok"});
  for (double rate : {10000.0, 20000.0, 40000.0, 80000.0, 160000.0}) {
    auto profile = std::make_shared<ConstantRate>(rate);
    auto source = MakeDataset(DatasetId::kTweets, profile, /*seed=*/3);
    EngineOptions opts;
    opts.batch_interval = Seconds(1);
    opts.map_tasks = 16;
    opts.reduce_tasks = 16;
    opts.cores = 16;
    opts.cost = BenchCostModel();
    opts.unstable_queue_intervals = 1e9;
    MicroBatchEngine engine(opts, JobSpec::WordCount(8),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    auto summary = engine.Run(6);
    double cost_ms = 0, keys = 0;
    bool all_within_slack = true;
    for (const auto& b : summary.batches) {
      cost_ms += static_cast<double>(b.partition_cost) / 1000.0;
      keys += static_cast<double>(b.num_keys);
      if (b.partition_overflow > 0) all_within_slack = false;
    }
    cost_ms /= static_cast<double>(summary.batches.size());
    keys /= static_cast<double>(summary.batches.size());
    PrintRow({Fmt(rate, 0), Fmt(keys, 0), Fmt(cost_ms, 2),
              Fmt(100.0 * cost_ms / 1000.0, 3) + "%",
              all_within_slack ? "yes" : "no"});
  }
  std::printf(
      "\nWith Early Batch Release (5%% slack) the decision cost never\n"
      "reaches the processing phase as long as pct stays below 5%%.\n");
}

void ObservabilityOverhead() {
  PrintHeader("Figure 14c — observability subsystem overhead");
  auto run_once = [](bool observe, std::ostream* trace_out) {
    auto profile = std::make_shared<ConstantRate>(40000.0);
    auto source = MakeDataset(DatasetId::kTweets, profile, /*seed=*/7);
    EngineOptions opts;
    opts.batch_interval = Seconds(1);
    opts.map_tasks = 16;
    opts.reduce_tasks = 16;
    opts.cores = 16;
    opts.cost = BenchCostModel();
    opts.unstable_queue_intervals = 1e9;
    if (observe) {
      opts.obs.metrics_enabled = true;
      opts.obs.trace_enabled = true;
    }
    MicroBatchEngine engine(opts, JobSpec::WordCount(8),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    if (observe) {
      engine.observability()->AddTraceSink(
          std::make_unique<JsonlTraceSink>(trace_out));
    }
    Stopwatch watch;
    engine.Run(12);
    return watch.ElapsedMicros();
  };
  // Interleaved best-of-5 per config damps scheduler noise and drift; the
  // run itself is virtual time, so wall time measures engine-side work only.
  std::ostringstream traces;
  TimeMicros off = std::numeric_limits<TimeMicros>::max();
  TimeMicros on = std::numeric_limits<TimeMicros>::max();
  for (int i = 0; i < 5; ++i) {
    off = std::min(off, run_once(false, nullptr));
    on = std::min(on, run_once(true, &traces));
  }
  const double pct =
      100.0 * (static_cast<double>(on) - static_cast<double>(off)) /
      static_cast<double>(off);
  PrintRow({"config", "wall(ms)", "overhead"});
  PrintRow({"obs off", Fmt(static_cast<double>(off) / 1000.0, 2), "-"});
  PrintRow({"obs on", Fmt(static_cast<double>(on) / 1000.0, 2),
            Fmt(pct, 2) + "%"});
  std::printf(
      "\nThe <2%% budget binds the *disabled* path (one branch per batch —\n"
      "indistinguishable from run-to-run noise). 'obs on' above is the full\n"
      "cost of metrics + trace assembly + JSONL encoding over 12 one-second\n"
      "batches; expect a few percent, noise-dominated on busy hosts.\n");
}

void TelemetryOverhead() {
  PrintHeader(
      "Figure 14d — continuous telemetry (time series + autopsy + exporter)");
  auto run_once = [](bool telemetry) {
    auto profile = std::make_shared<ConstantRate>(40000.0);
    auto source = MakeDataset(DatasetId::kTweets, profile, /*seed=*/7);
    EngineOptions opts;
    opts.batch_interval = Seconds(1);
    opts.map_tasks = 16;
    opts.reduce_tasks = 16;
    opts.cores = 16;
    opts.cost = BenchCostModel();
    opts.unstable_queue_intervals = 1e9;
    // Baseline is metrics-on: (d) isolates the *additional* cost of the
    // telemetry layer over the already-measured (c) configuration.
    opts.obs.metrics_enabled = true;
    if (telemetry) {
      opts.obs.serve_port = 0;  // implies a 1024-deep time series
      opts.obs.autopsy_enabled = true;
    }
    MicroBatchEngine engine(opts, JobSpec::WordCount(8),
                            CreatePartitioner(PartitionerType::kPrompt),
                            source.get());
    Stopwatch watch;
    engine.Run(12);
    return watch.ElapsedMicros();
  };
  TimeMicros off = std::numeric_limits<TimeMicros>::max();
  TimeMicros on = std::numeric_limits<TimeMicros>::max();
  for (int i = 0; i < 5; ++i) {
    off = std::min(off, run_once(false));
    on = std::min(on, run_once(true));
  }
  const double pct =
      100.0 * (static_cast<double>(on) - static_cast<double>(off)) /
      static_cast<double>(off);
  PrintRow({"config", "wall(ms)", "overhead"});
  PrintRow({"metrics only", Fmt(static_cast<double>(off) / 1000.0, 2), "-"});
  PrintRow({"+telemetry", Fmt(static_cast<double>(on) / 1000.0, 2),
            Fmt(pct, 2) + "%"});
  std::printf(
      "\nThe telemetry layer adds one ring write + one rule pass per batch\n"
      "and an idle accept thread; scrapes snapshot outside the engine's\n"
      "path. Budget: <2%% (DESIGN.md §8) — expect noise-dominated deltas.\n");
}

}  // namespace

int main() {
  PostSortThroughput();
  PartitioningOverhead();
  ObservabilityOverhead();
  TelemetryOverhead();
  return 0;
}
