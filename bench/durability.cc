// Durability harness (self-asserting): crash the engine mid-window under
// each fsync policy, restart a fresh process image over the same store
// directory, and hold the recovered window bit-identical to an
// uninterrupted run truncated at the policy's persistence watermark —
// kAlways must recover through the doomed batch with no loss, kBatch must
// recover everything before it and confess the torn tail, kNever must
// recover nothing and still confess. Then the same drill over the
// bursty/adversarial scenario pack, where recovery has to reproduce
// flash-crowd spikes and vocabulary flips exactly, not just steady Zipf.
#include <cstdio>

#include "durability_util.h"
#include "multi_tenant_util.h"

using namespace prompt;
using namespace prompt::bench;

namespace {

const char* Verdict(bool ok) { return ok ? "ok" : "FAIL"; }

}  // namespace

int main() {
  std::printf("# Durability: SIGKILL-equivalent crash at batch 4's map stage,\n");
  std::printf("# restart over the surviving segment files, diff the window.\n");
  std::printf("# cluster: 4 nodes x 2 cores, rf 2, Prompt partitioning, SynD\n\n");

  const DurabilityDrillSetup setup;
  std::printf("%-8s %-10s %-6s %-10s %-12s %-10s %s\n", "fsync", "recovered",
              "torn", "data_loss", "window_drift", "disk_kb", "verdict");

  for (FsyncPolicy fsync :
       {FsyncPolicy::kNever, FsyncPolicy::kBatch, FsyncPolicy::kAlways}) {
    const DurabilityDrillResult r =
        RunDurabilityDrill(fsync, setup, FsyncPolicyName(fsync));

    // What each policy promises at the crash point: the doomed batch's
    // record was appended before its stages ran, but only kAlways synced it.
    uint64_t expect_recovered = 0;
    bool expect_loss = true;
    switch (fsync) {
      case FsyncPolicy::kAlways:
        expect_recovered = setup.crash_at + 1;
        expect_loss = false;
        break;
      case FsyncPolicy::kBatch:
        expect_recovered = setup.crash_at;
        break;
      case FsyncPolicy::kNever:
        expect_recovered = 0;
        break;
    }
    const double drift = WindowDrift(r.recovered_window, r.reference_window);
    const bool ok = r.recovery.batches_recovered == expect_recovered &&
                    r.recovery.data_loss == expect_loss && drift == 0.0;
    PROMPT_CHECK(r.doomed.crashed_at_batch == setup.crash_at);
    PROMPT_CHECK(ok);

    std::printf("%-8s %-10llu %-6llu %-10s %-12.1f %-10.1f %s\n",
                FsyncPolicyName(fsync),
                static_cast<unsigned long long>(r.recovery.batches_recovered),
                static_cast<unsigned long long>(r.recovery.torn_records),
                r.recovery.data_loss ? "yes" : "no", drift,
                static_cast<double>(r.disk_bytes) / 1024.0, Verdict(ok));
  }

  std::printf(
      "\n# Adversarial scenarios, fsync=batch: the restart must replay the\n"
      "# burst/churn shape exactly, not merely a plausible Zipf window.\n\n");
  std::printf("%-12s %-10s %-6s %-12s %s\n", "scenario", "recovered", "torn",
              "window_drift", "verdict");

  DurabilityDrillSetup scen = setup;
  scen.crash_at = 5;
  scen.run_batches = 10;
  for (ScenarioId id : {ScenarioId::kDiurnal, ScenarioId::kFlashCrowd,
                        ScenarioId::kVocabChurn}) {
    const DurabilityDrillResult r = RunScenarioDrill(
        id, FsyncPolicy::kBatch, scen, /*rate_tps=*/20000, /*seed=*/17);
    const double drift = WindowDrift(r.recovered_window, r.reference_window);
    const bool ok =
        r.recovery.batches_recovered == scen.crash_at && drift == 0.0;
    PROMPT_CHECK(ok);
    std::printf("%-12s %-10llu %-6llu %-12.1f %s\n", ScenarioName(id),
                static_cast<unsigned long long>(r.recovery.batches_recovered),
                static_cast<unsigned long long>(r.recovery.torn_records),
                drift, Verdict(ok));
  }

  std::printf(
      "\nwindow_drift = max |recovered - reference| over the key union\n"
      "(1e18 on a key-set mismatch); zero means the restart reproduced the\n"
      "persisted prefix bit-for-bit and fabricated nothing past it.\n");
  return 0;
}
