// Ablation for the Figure 6 discussion: First-Fit-Decreasing vs
// Fragmentation-Minimization vs Prompt's Algorithm 2 on B-BPFI instances —
// the paper's running example (385 tuples, 8 keys, 4 blocks) plus a
// batch-scale instance.
#include "baselines/bpfi_baselines.h"
#include "bench_util.h"
#include "core/prompt_partitioner.h"
#include "stats/metrics.h"

using namespace prompt;
using namespace prompt::bench;

namespace {

void Compare(const AccumulatedBatch& sealed, uint32_t blocks,
             const std::string& title) {
  PrintHeader(title);
  PrintRow({"Heuristic", "BSI", "BCI", "KSR", "splitKeys", "fragments"});
  struct Variant {
    const char* name;
    PartitionPlan plan;
  };
  Variant variants[] = {
      {"FFD", BuildFfdPlan(sealed, blocks)},
      {"FragMin", BuildFragMinPlan(sealed, blocks)},
      {"Prompt", BuildPromptPlan(sealed, blocks)},
  };
  for (auto& v : variants) {
    auto batch = MaterializePlan(sealed, v.plan, blocks);
    auto m = ComputeBlockMetrics(batch);
    PrintRow({v.name, Fmt(m.bsi, 1), Fmt(m.bci, 1), Fmt(m.ksr, 3),
              std::to_string(v.plan.split_keys),
              std::to_string(v.plan.fragments)});
  }
}

}  // namespace

int main() {
  // The paper's running example shape (Fig. 5): 385 tuples over 8 keys.
  {
    auto acc_ptr = MakeAccumulator(AccumulatorKind::kFlat);
    auto& acc = *acc_ptr;
    acc.Begin(0, Seconds(1));
    const uint64_t counts[8] = {120, 85, 60, 50, 30, 20, 12, 8};
    TimeMicros ts = 0;
    for (uint64_t k = 0; k < 8; ++k) {
      for (uint64_t i = 0; i < counts[k]; ++i) {
        acc.OnTuple(Tuple{ts++, k + 1, 1.0});
      }
    }
    auto sealed = acc.Seal();
    Compare(sealed, 4,
            "Figure 6 — paper example: 385 tuples, 8 keys, 4 blocks");
  }
  // A realistic batch: Zipfian, thousands of keys.
  {
    auto acc_ptr = MakeAccumulator(AccumulatorKind::kFlat);
    auto& acc = *acc_ptr;
    acc.Begin(0, Seconds(1));
    Rng rng(5);
    ZipfSampler zipf(20000, 1.3);
    for (int i = 0; i < 200000; ++i) {
      acc.OnTuple(Tuple{i * 5, Mix64(zipf.Sample(rng)), 1.0});
    }
    auto sealed = acc.Seal();
    Compare(sealed, 16,
            "Figure 6 (scaled) — 200k tuples, Zipf z=1.3, 16 blocks");
  }
  std::printf(
      "\nExpected shape: FFD and FragMin keep sizes tight and fragmentation\n"
      "low but ignore cardinality, piling small keys into late blocks (high\n"
      "BCI); Prompt spends a few extra fragments to balance size, cardinality\n"
      "and locality simultaneously (Fig. 6c).\n");
  return 0;
}
