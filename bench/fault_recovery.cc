// Recovery-latency experiment for the fault-tolerance subsystem (§8): kill
// one node mid-map-stage and measure what automatic in-loop recovery costs
// at replication factors 1–3.
//
// For each factor the same deterministic schedule (kill node 1 during batch
// 5's map stage) runs against a failure-free twin with the identical seed;
// the table reports batches replayed, the worst single-batch recovery
// latency, whether the window aggregates still match the failure-free run
// bit for bit, and whether any batch was unrecoverable. Factor 1 keeps no
// second copy, so the killed node's batches are correctly reported lost.
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace prompt;
using namespace prompt::bench;

namespace {

constexpr uint32_t kBatches = 12;
constexpr uint64_t kSeed = 42;

EngineOptions FaultBenchOptions(uint32_t replication_factor) {
  EngineOptions opts;
  opts.batch_interval = Millis(500);
  opts.map_tasks = 8;
  opts.reduce_tasks = 4;
  opts.cluster_enabled = true;
  opts.cluster.nodes = 4;
  opts.cluster.cores_per_node = 2;
  opts.cluster.replication_factor = replication_factor;
  opts.cores = opts.cluster.nodes * opts.cluster.cores_per_node;
  return opts;
}

std::unique_ptr<TupleSource> MakeBenchSource() {
  auto rate = std::make_shared<ConstantRate>(4000);
  return MakeDataset(DatasetId::kSynD, rate, kSeed, /*zipf=*/1.0,
                     /*cardinality_scale=*/0.02);
}

RunSummary RunOnce(uint32_t replication_factor, bool inject,
                   MicroBatchEngine** engine_out,
                   std::unique_ptr<MicroBatchEngine>* keep,
                   std::unique_ptr<TupleSource>* source_keep) {
  EngineOptions opts = FaultBenchOptions(replication_factor);
  if (inject) {
    auto faults = ParseFaultSchedule("kill:1@5.map");
    PROMPT_CHECK(faults.ok());
    opts.faults = *faults;
  }
  *source_keep = MakeBenchSource();
  *keep = std::make_unique<MicroBatchEngine>(
      opts, JobSpec::WordCount(8), CreatePartitioner(PartitionerType::kPrompt),
      source_keep->get());
  *engine_out = keep->get();
  return (*keep)->Run(kBatches);
}

bool WindowsMatch(const WindowState& a, const WindowState& b) {
  if (a.Result().size() != b.Result().size()) return false;
  for (const auto& [key, value] : a.Result()) {
    auto it = b.Result().find(key);
    if (it == b.Result().end() || it->second != value) return false;
  }
  return true;
}

}  // namespace

int main() {
  std::printf("# Fault recovery: kill node 1 during batch 5's map stage\n");
  std::printf("# cluster: 4 nodes x 2 cores, Prompt partitioning, SynD\n\n");
  std::printf("%-12s %-9s %-9s %-13s %-13s %s\n", "replication", "replayed",
              "retried", "recovery_ms", "exact_window", "verdict");

  for (uint32_t rf = 1; rf <= 3; ++rf) {
    std::unique_ptr<TupleSource> base_src, fault_src;
    std::unique_ptr<MicroBatchEngine> base_keep, fault_keep;
    MicroBatchEngine* base = nullptr;
    MicroBatchEngine* faulty = nullptr;
    RunSummary clean = RunOnce(rf, /*inject=*/false, &base, &base_keep,
                               &base_src);
    RunSummary recovered = RunOnce(rf, /*inject=*/true, &faulty, &fault_keep,
                                   &fault_src);
    (void)clean;

    // A data-loss run keeps its logical output only because the simulator
    // cannot physically destroy it — don't let that read as exactly-once.
    const bool exact = !recovered.data_loss &&
                       WindowsMatch(base->window(), faulty->window());
    const char* verdict =
        recovered.data_loss
            ? "UNRECOVERABLE (no surviving replica)"
            : (exact ? "recovered, exactly-once preserved"
                     : "recovered, window diverged");
    std::printf("%-12u %-9llu %-9llu %-13.1f %-13s %s\n", rf,
                static_cast<unsigned long long>(recovered.batches_replayed),
                static_cast<unsigned long long>(recovered.tasks_retried),
                static_cast<double>(recovered.max_recovery_time) / 1000.0,
                recovered.data_loss ? "lost" : (exact ? "yes" : "no"),
                verdict);
  }
  std::printf(
      "\nrecovery_ms = worst single-batch recovery latency (replays +\n"
      "re-replication traffic); factor 1 keeps a single copy, so the copies\n"
      "lost with the node cannot be replayed and exactly-once is violated.\n");
  return 0;
}
