// Ingest scaling harness for the accumulator rewrite and the sharded
// parallel ingest pipeline (src/ingest/): raw Alg. 1 buffering throughput
// (tuples/s) for each accumulator kind at 1..S shards over uniform and Zipf
// key streams, plus two correctness cross-checks:
//   - the merged batch's per-key counts are bit-identical to a single
//     accumulator fed the same stream, and
//   - the flat accumulator's sealed run sequence is bit-identical to the
//     legacy chain's at every shard count (the tentpole acceptance).
//
// The streams are pre-generated and replayed from memory, so the measurement
// isolates route + accumulate + seal + merge — no source pacing, no queueing.
// Multi-shard speedups require the shards to actually run on separate cores;
// on a single-core host those numbers degenerate to ~1x. The single-shard
// flat-vs-legacy ratio at the bottom is core-count independent.
#include <cstdio>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "core/accumulator_api.h"
#include "ingest/pipeline.h"

using namespace prompt;

namespace {

std::vector<Tuple> MakeStream(uint64_t n, uint64_t cardinality, double zipf,
                              uint64_t seed) {
  Rng rng(seed);
  ZipfSampler sampler(cardinality, zipf);
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Tuple t;
    t.key = sampler.Sample(rng);
    t.ts = static_cast<TimeMicros>(i);  // interval [0, n)
    t.value = 1.0;
    tuples.push_back(t);
  }
  return tuples;
}

std::map<KeyId, uint64_t> KeyCounts(const AccumulatedBatch& batch) {
  std::map<KeyId, uint64_t> counts;
  for (const SortedKeyRun& run : batch.keys()) counts[run.key] += run.count;
  return counts;
}

// The exact (key, count) sequence: order matters for the bit-identity check.
std::vector<std::pair<KeyId, uint64_t>> RunSequence(
    const AccumulatedBatch& batch) {
  std::vector<std::pair<KeyId, uint64_t>> runs;
  runs.reserve(batch.keys().size());
  for (const SortedKeyRun& run : batch.keys()) {
    runs.emplace_back(run.key, run.count);
  }
  return runs;
}

/// One timed pass: BeginBatch -> Ingest all -> SealBatch. Returns tuples/s.
double TimedPass(ParallelIngestPipeline& pipeline,
                 const std::vector<Tuple>& stream) {
  Stopwatch watch;
  pipeline.BeginBatch(0, static_cast<TimeMicros>(stream.size()));
  for (const Tuple& t : stream) pipeline.Ingest(t);
  pipeline.SealBatch();
  const double secs = static_cast<double>(watch.ElapsedMicros()) / 1e6;
  return secs > 0 ? static_cast<double>(stream.size()) / secs : 0;
}

/// Best-of-reps single-accumulator throughput (no pipeline overhead).
double SingleAccumulatorTps(AccumulatorKind kind,
                            const std::vector<Tuple>& stream, int reps) {
  auto acc = MakeAccumulator(kind);
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    acc->Begin(0, static_cast<TimeMicros>(stream.size()));
    for (const Tuple& t : stream) acc->OnTuple(t);
    acc->Seal();
    const double secs = static_cast<double>(watch.ElapsedMicros()) / 1e6;
    const double tps =
        secs > 0 ? static_cast<double>(stream.size()) / secs : 0;
    if (tps > best) best = tps;
  }
  return best;
}

void RunScaling(const char* label, const std::vector<Tuple>& stream,
                const std::vector<uint32_t>& shard_counts, int reps) {
  // Ground truth for the bit-identity checks: the legacy chain accumulator.
  auto reference = MakeAccumulator(AccumulatorKind::kLegacyChain);
  reference->Begin(0, static_cast<TimeMicros>(stream.size()));
  for (const Tuple& t : stream) reference->OnTuple(t);
  const auto ref_batch = reference->Seal();
  const auto expected_counts = KeyCounts(ref_batch);
  const auto expected_runs = RunSequence(ref_batch);

  for (AccumulatorKind kind :
       {AccumulatorKind::kLegacyChain, AccumulatorKind::kFlat}) {
    std::printf("%-10s %-8s %8s %14s %10s %10s %12s\n", label,
                AccumulatorKindName(kind), "shards", "tuples/s", "speedup",
                "imbalance", "runs");
    double base = 0;
    for (uint32_t shards : shard_counts) {
      IngestOptions opts;
      opts.shards = shards;
      opts.accumulator = kind;
      ParallelIngestPipeline pipeline(opts);
      double best = 0;
      bool counts_exact = true;
      bool runs_exact = true;
      for (int r = 0; r < reps; ++r) {
        const double tps = TimedPass(pipeline, stream);
        if (tps > best) best = tps;
        if (r == 0) {
          // Re-run untimed for verification.
          pipeline.BeginBatch(0, static_cast<TimeMicros>(stream.size()));
          for (const Tuple& t : stream) pipeline.Ingest(t);
          const AccumulatedBatch& merged = pipeline.SealBatch();
          counts_exact = KeyCounts(merged) == expected_counts;
          // The run *sequence* is only bit-identical to the single legacy
          // accumulator at 1 shard; multi-shard merges interleave shards.
          runs_exact = shards > 1 || RunSequence(merged) == expected_runs;
        }
      }
      if (shards == shard_counts.front()) base = best;
      std::printf("%-10s %-8s %8u %14.0f %9.2fx %10.3f %12s\n", "", "",
                  shards, best, base > 0 ? best / base : 0,
                  ShardLoadImbalance(pipeline.last_metrics()),
                  !counts_exact ? "COUNT-MISMATCH"
                  : !runs_exact ? "RUN-MISMATCH"
                                : "exact");
    }
    std::printf("\n");
  }

  // The tentpole headline: raw single-shard accumulator throughput.
  const double legacy_tps =
      SingleAccumulatorTps(AccumulatorKind::kLegacyChain, stream, reps);
  const double flat_tps =
      SingleAccumulatorTps(AccumulatorKind::kFlat, stream, reps);
  std::printf("%-10s single-shard accumulator: legacy %.0f t/s, flat %.0f "
              "t/s, flat/legacy %.2fx\n\n",
              label, legacy_tps, flat_tps,
              legacy_tps > 0 ? flat_tps / legacy_tps : 0);
}

}  // namespace

int main() {
  const uint64_t kTuples = 2000000;
  const uint64_t kCardinality = 100000;
  const int kReps = 3;
  const std::vector<uint32_t> shard_counts = {1, 2, 4, 8};

  std::printf("ingest_throughput: %llu tuples, cardinality %llu, %u cores\n\n",
              static_cast<unsigned long long>(kTuples),
              static_cast<unsigned long long>(kCardinality),
              std::thread::hardware_concurrency());

  RunScaling("uniform", MakeStream(kTuples, kCardinality, 0.0, 7),
             shard_counts, kReps);
  RunScaling("zipf-1.0", MakeStream(kTuples, kCardinality, 1.0, 7),
             shard_counts, kReps);
  return 0;
}
