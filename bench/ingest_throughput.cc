// Ingest scaling harness for the sharded parallel ingest pipeline
// (src/ingest/): raw Alg. 1 buffering throughput (tuples/s) at 1..S shards
// over uniform and Zipf key streams, plus a correctness cross-check that the
// merged batch's per-key counts are bit-identical to a single accumulator
// fed the same stream.
//
// The streams are pre-generated and replayed from memory, so the measurement
// isolates route + accumulate + seal + merge — no source pacing, no queueing.
// Speedups require the shards to actually run on separate cores; on a
// single-core host the numbers degenerate to ~1x (the routing and ring
// overhead without the parallelism) — report them for what they are.
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "core/accumulator.h"
#include "ingest/pipeline.h"

using namespace prompt;

namespace {

std::vector<Tuple> MakeStream(uint64_t n, uint64_t cardinality, double zipf,
                              uint64_t seed) {
  Rng rng(seed);
  ZipfSampler sampler(cardinality, zipf);
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Tuple t;
    t.key = sampler.Sample(rng);
    t.ts = static_cast<TimeMicros>(i);  // interval [0, n)
    t.value = 1.0;
    tuples.push_back(t);
  }
  return tuples;
}

std::map<KeyId, uint64_t> KeyCounts(const AccumulatedBatch& batch) {
  std::map<KeyId, uint64_t> counts;
  for (const SortedKeyRun& run : batch.keys()) counts[run.key] += run.count;
  return counts;
}

/// One timed pass: BeginBatch -> Ingest all -> SealBatch. Returns tuples/s.
double TimedPass(ParallelIngestPipeline& pipeline,
                 const std::vector<Tuple>& stream) {
  Stopwatch watch;
  pipeline.BeginBatch(0, static_cast<TimeMicros>(stream.size()));
  for (const Tuple& t : stream) pipeline.Ingest(t);
  pipeline.SealBatch();
  const double secs = static_cast<double>(watch.ElapsedMicros()) / 1e6;
  return secs > 0 ? static_cast<double>(stream.size()) / secs : 0;
}

void RunScaling(const char* label, const std::vector<Tuple>& stream,
                const std::vector<uint32_t>& shard_counts, int reps) {
  // Ground truth for the bit-identity check.
  MicrobatchAccumulator reference;
  reference.Begin(0, static_cast<TimeMicros>(stream.size()));
  for (const Tuple& t : stream) reference.Add(t);
  const auto expected = KeyCounts(reference.Seal());

  std::printf("%-10s %8s %14s %10s %10s %10s\n", label, "shards", "tuples/s",
              "speedup", "imbalance", "counts");
  double base = 0;
  for (uint32_t shards : shard_counts) {
    ParallelIngestOptions opts;
    opts.num_shards = shards;
    ParallelIngestPipeline pipeline(opts);
    double best = 0;
    bool exact = true;
    for (int r = 0; r < reps; ++r) {
      const double tps = TimedPass(pipeline, stream);
      if (tps > best) best = tps;
      if (r == 0) {
        // Re-run untimed for verification: SealBatch's view was measured
        // above and is still valid until the next BeginBatch.
        pipeline.BeginBatch(0, static_cast<TimeMicros>(stream.size()));
        for (const Tuple& t : stream) pipeline.Ingest(t);
        exact = KeyCounts(pipeline.SealBatch()) == expected;
      }
    }
    if (shards == shard_counts.front()) base = best;
    std::printf("%-10s %8u %14.0f %9.2fx %10.3f %10s\n", "", shards, best,
                base > 0 ? best / base : 0,
                ShardLoadImbalance(pipeline.last_metrics()),
                exact ? "exact" : "MISMATCH");
  }
}

}  // namespace

int main() {
  const uint64_t kTuples = 2000000;
  const uint64_t kCardinality = 100000;
  const int kReps = 3;
  const std::vector<uint32_t> shard_counts = {1, 2, 4, 8};

  std::printf("ingest_throughput: %llu tuples, cardinality %llu, %u cores\n\n",
              static_cast<unsigned long long>(kTuples),
              static_cast<unsigned long long>(kCardinality),
              std::thread::hardware_concurrency());

  RunScaling("uniform", MakeStream(kTuples, kCardinality, 0.0, 7),
             shard_counts, kReps);
  std::printf("\n");
  RunScaling("zipf-1.0", MakeStream(kTuples, kCardinality, 1.0, 7),
             shard_counts, kReps);
  return 0;
}
