// Heavy-hitter mode at scale (DESIGN.md §17): a 10M-distinct-key Zipf
// stream through exact vs sketch ingest, reporting the memory-vs-balance
// frontier and self-asserting the mode's contract:
//
//  1. Memory: sketch-mode key-proportional state (key_state_bytes(), the
//     O(distinct-keys) axis — tuple columns are O(tuples) in both modes)
//     stays <= 10% of exact mode's on the z=1.0 headline stream.
//  2. Balance: sketch-mode BSI stays within the documented bound of exact —
//     (bsi_sketch - bsi_exact) / avg_block_size <= 0.15, i.e. the
//     unsplittable tail buckets may cost at most 15 points of
//     avg-block-normalized imbalance, on z in {0.8, 1.0, 1.4}.
//  3. Exactness: at each shard count S in {1, 4} the exact-mode pipeline's
//     sealed merged batch is bit-identical (runs and chained tuples) to an
//     inline reference that routes by the same hash into S flat
//     accumulators and LoserTree-merges the sealed runs — the pre-PR merge
//     algorithm — proving the tail-bucket machinery is inert when off.
//     (Different shard counts legitimately interleave equal-count runs
//     differently, so S=1 vs S=4 outputs are NOT compared to each other.)
//
//   sketch_scale [tuples] [cardinality]     defaults: 10000000 10000000
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <span>

#include "common/hash.h"
#include "common/random.h"
#include "core/accumulator_api.h"
#include "core/prompt_partitioner.h"
#include "ingest/merge.h"
#include "ingest/pipeline.h"
#include "stats/metrics.h"

using namespace prompt;

namespace {

constexpr uint32_t kBlocks = 16;

std::vector<Tuple> MakeStream(uint64_t n, uint64_t cardinality, double z,
                              uint64_t seed) {
  Rng rng(seed);
  ZipfSampler sampler(cardinality, z);
  std::vector<Tuple> stream;
  stream.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    stream.push_back(Tuple{static_cast<TimeMicros>(i),
                           static_cast<KeyId>(sampler.Sample(rng)), 1.0});
  }
  return stream;
}

struct ModeResult {
  size_t key_state_bytes = 0;
  double bsi = 0;
  double avg_block_size = 0;
  double head_coverage = 1.0;
  uint64_t distinct = 0;
  double accumulate_tps = 0;
};

/// One mode over one stream: accumulate, seal, plan with Alg. 2, measure.
/// `cardinality` feeds K_avg so the auto promote threshold
/// (4 * N_est / K_avg) reflects the stream's true mean frequency.
ModeResult RunMode(const std::vector<Tuple>& stream, AccumulatorKind kind,
                   size_t sketch_capacity, uint64_t cardinality) {
  AccumulatorOptions opts;
  opts.estimated_tuples = stream.size();
  opts.avg_keys = cardinality;
  opts.sketch.capacity = sketch_capacity;
  opts.sketch.tail_buckets = 8 * kBlocks;
  auto acc = MakeAccumulator(kind, opts);

  Stopwatch watch;
  acc->Begin(0, static_cast<TimeMicros>(stream.size()));
  for (const Tuple& t : stream) acc->OnTuple(t);
  AccumulatedBatch batch = acc->Seal();
  const double secs = static_cast<double>(watch.ElapsedMicros()) / 1e6;

  ModeResult r;
  r.key_state_bytes = acc->key_state_bytes();
  r.accumulate_tps =
      secs > 0 ? static_cast<double>(stream.size()) / secs : 0;
  r.distinct = batch.stats().sketch_mode
                   ? batch.stats().distinct_estimate
                   : batch.keys().size();
  r.head_coverage = batch.stats().sketch_mode
                        ? batch.stats().head_coverage()
                        : 1.0;

  const PartitionPlan plan = BuildPromptPlan(batch, kBlocks);
  const PartitionedBatch parts = MaterializePlan(batch, plan, kBlocks);
  const PartitionMetrics m = ComputeBlockMetrics(parts);
  r.bsi = m.bsi;
  r.avg_block_size = m.avg_block_size;
  return r;
}

/// Runs+chained-tuples image of a merged batch for bit-identity checks.
struct BatchImage {
  std::vector<SortedKeyRun> runs;
  std::vector<Tuple> chained;
};

BatchImage Image(const AccumulatedBatch& batch) {
  BatchImage img;
  for (const SortedKeyRun& run : batch.keys()) {
    img.runs.push_back(run);
    batch.ForEachTuple(run, 0, run.count,
                       [&](const Tuple& t) { img.chained.push_back(t); });
  }
  return img;
}

bool Identical(const BatchImage& a, const BatchImage& b) {
  if (a.runs.size() != b.runs.size() || a.chained.size() != b.chained.size())
    return false;
  for (size_t i = 0; i < a.runs.size(); ++i) {
    if (a.runs[i].key != b.runs[i].key || a.runs[i].count != b.runs[i].count)
      return false;
  }
  for (size_t i = 0; i < a.chained.size(); ++i) {
    if (a.chained[i].ts != b.chained[i].ts ||
        a.chained[i].key != b.chained[i].key ||
        a.chained[i].value != b.chained[i].value)
      return false;
  }
  return true;
}

BatchImage RunExactPipeline(const std::vector<Tuple>& stream,
                            uint32_t shards) {
  IngestOptions opts;
  opts.shards = shards;
  ParallelIngestPipeline pipeline(opts);
  pipeline.BeginBatch(0, static_cast<TimeMicros>(stream.size()));
  for (const Tuple& t : stream) pipeline.Ingest(t);
  return Image(pipeline.SealBatch());
}

/// Pre-PR reference for the exact path at S shards: route by the pipeline's
/// hash into S flat accumulators (options scaled exactly as the pipeline
/// scales them), seal, and LoserTree-merge the run lists. No tail buckets,
/// no sketch — this is the merge algorithm as it existed before heavy-hitter
/// mode, rebuilt inline.
BatchImage ReferenceExactMerge(const std::vector<Tuple>& stream,
                               uint32_t shards) {
  AccumulatorOptions scaled;  // defaults, matching IngestOptions
  scaled.estimated_tuples =
      std::max<uint64_t>(1, scaled.estimated_tuples / shards);
  scaled.avg_keys = std::max<uint64_t>(1, scaled.avg_keys / shards);
  std::vector<std::unique_ptr<Accumulator>> accs;
  accs.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    accs.push_back(MakeAccumulator(AccumulatorKind::kFlat, scaled));
    accs.back()->Begin(0, static_cast<TimeMicros>(stream.size()));
  }
  for (const Tuple& t : stream) {
    accs[HashKey(t.key) % shards]->OnTuple(t);
  }
  std::vector<AccumulatedBatch> sealed;
  sealed.reserve(shards);
  for (auto& acc : accs) sealed.push_back(acc->Seal());
  std::vector<std::span<const SortedKeyRun>> inputs;
  inputs.reserve(shards);
  for (const AccumulatedBatch& b : sealed) inputs.emplace_back(b.keys());
  LoserTree tree(std::move(inputs));
  BatchImage img;
  SortedKeyRun run;
  uint32_t source = 0;
  while (tree.Next(&run, &source)) {
    img.runs.push_back(run);
    sealed[source].ForEachTuple(
        run, 0, run.count, [&](const Tuple& t) { img.chained.push_back(t); });
  }
  return img;
}

int g_failures = 0;

void Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t tuples =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10000000ull;
  const uint64_t cardinality =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10000000ull;

  std::printf("sketch_scale: %llu tuples, %llu-key Zipf, %u blocks\n",
              static_cast<unsigned long long>(tuples),
              static_cast<unsigned long long>(cardinality), kBlocks);

  // --- Memory-vs-BSI frontier across z and sketch capacity. ---
  std::printf("\n%-6s %-10s %14s %12s %10s %12s %12s\n", "z", "mode",
              "key_state_B", "bsi", "bsi/avg", "coverage", "Mtps");
  for (const double z : {0.8, 1.0, 1.4}) {
    const auto stream = MakeStream(tuples, cardinality, z, /*seed=*/42);
    const ModeResult exact = RunMode(stream, AccumulatorKind::kFlat,
                                     /*sketch_capacity=*/0, cardinality);
    std::printf("%-6.1f %-10s %14zu %12.0f %10.4f %12.3f %12.2f\n", z,
                "exact", exact.key_state_bytes, exact.bsi,
                exact.bsi / exact.avg_block_size, exact.head_coverage,
                exact.accumulate_tps / 1e6);
    for (const size_t capacity : {4096ul, 16384ul, 65536ul}) {
      const ModeResult sk =
          RunMode(stream, AccumulatorKind::kSketch, capacity, cardinality);
      std::printf("%-6.1f %-10s %14zu %12.0f %10.4f %12.3f %12.2f\n", z,
                  ("sk" + std::to_string(capacity / 1024) + "k").c_str(),
                  sk.key_state_bytes, sk.bsi, sk.bsi / sk.avg_block_size,
                  sk.head_coverage, sk.accumulate_tps / 1e6);
      if (capacity == 65536ul) {
        // Documented bound (DESIGN.md §17): the unsplittable tail may cost
        // at most 15 points of avg-block-normalized BSI over exact.
        const double excess =
            (sk.bsi - exact.bsi) / std::max(1.0, exact.avg_block_size);
        char label[96];
        std::snprintf(label, sizeof(label),
                      "z=%.1f bsi excess %.4f <= 0.15", z, excess);
        Check(excess <= 0.15, label);
        if (z == 1.0) {
          const double mem_ratio =
              static_cast<double>(sk.key_state_bytes) /
              static_cast<double>(std::max<size_t>(1, exact.key_state_bytes));
          std::snprintf(label, sizeof(label),
                        "z=1.0 key-state ratio %.4f <= 0.10", mem_ratio);
          Check(mem_ratio <= 0.10, label);
          std::snprintf(label, sizeof(label),
                        "z=1.0 head coverage %.3f > 0", sk.head_coverage);
          Check(sk.head_coverage > 0.0, label);
        }
      }
    }
  }

  // --- Exact-mode inertness: pipeline == pre-PR reference merge at each
  // shard count (the "inert when off" leg). ---
  {
    const uint64_t n = std::min<uint64_t>(tuples, 1000000ull);
    const auto stream = MakeStream(n, cardinality, 1.0, /*seed=*/7);
    for (const uint32_t shards : {1u, 4u}) {
      const BatchImage pipeline = RunExactPipeline(stream, shards);
      const BatchImage reference = ReferenceExactMerge(stream, shards);
      char label[96];
      std::snprintf(label, sizeof(label),
                    "exact pipeline bit-identical to reference merge at "
                    "shards=%u",
                    shards);
      Check(Identical(pipeline, reference), label);
    }
  }

  if (g_failures > 0) {
    std::printf("\nsketch_scale: %d check(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf("\nsketch_scale: all checks passed\n");
  return 0;
}
