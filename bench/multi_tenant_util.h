// Shared scenario for the multi-tenant isolation bench and the regression
// tracker (bench_track): a calm uniform tenant and a Zipf-shifting tenant
// share one ingest stream under the weighted-fair TenantScheduler. Fully
// virtual-time, so every number is bit-deterministic per seed.
//
// The key space splits by parity (KeyMappedSource: calm = even keys,
// noisy = odd keys), so the tenants' slices are provably disjoint and the
// calm tenant's answers can be compared bit-for-bit against its solo run —
// the paper-style noisy-neighbor isolation claim.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "obs/timeseries.h"
#include "query/parser.h"
#include "tenant/multi_tenant_engine.h"
#include "workload/composite_source.h"
#include "workload/key_map.h"

namespace prompt::bench {

struct MultiTenantSetup {
  TimeMicros batch_interval = Seconds(1);
  uint32_t batches = 24;
  /// Batch at which the noisy tenant's slice shifts from uniform to Zipf.
  uint32_t shift_batch = 12;
  double rate = 4000;  ///< tuples/s per tenant
  double zipf_calm = 0.0;
  double zipf_noisy_before = 0.0;
  double zipf_noisy_after = 1.4;
  uint64_t cardinality = 500;  ///< per tenant
  uint64_t calm_seed = 42;
  uint64_t noisy_seed = 99;
  /// Per-tenant Map/Reduce parallelism; the shared slot pool is
  /// 2 * tasks (each equal-weight tenant's share equals its solo run).
  uint32_t tasks = 8;
};

/// Owns the generator chain: two independent paced streams relabeled onto
/// disjoint parities, optionally interleaved into one shared stream.
struct MultiTenantSources {
  std::unique_ptr<TupleSource> calm_inner;
  std::unique_ptr<TupleSource> noisy_inner;
  std::unique_ptr<KeyMappedSource> calm;
  std::unique_ptr<KeyMappedSource> noisy;
  std::unique_ptr<CompositeSource> shared;
};

inline MultiTenantSources MakeMultiTenantSources(const MultiTenantSetup& s,
                                                 bool calm_only) {
  MultiTenantSources out;
  ZipfKeyedSource::Params calm_params;
  calm_params.cardinality = s.cardinality;
  calm_params.zipf = s.zipf_calm;
  calm_params.seed = s.calm_seed;
  calm_params.rate = std::make_shared<ConstantRate>(s.rate);
  out.calm_inner = std::make_unique<SynDSource>(std::move(calm_params));
  out.calm = std::make_unique<KeyMappedSource>(out.calm_inner.get(), 2, 0);
  if (calm_only) return out;

  ZipfKeyedSource::Params noisy_params;
  noisy_params.cardinality = s.cardinality;
  noisy_params.zipf = s.zipf_noisy_before;
  noisy_params.seed = s.noisy_seed;
  noisy_params.rate = std::make_shared<ConstantRate>(s.rate);
  out.noisy_inner = std::make_unique<SkewShiftSource>(
      std::move(noisy_params), s.zipf_noisy_after,
      static_cast<TimeMicros>(s.shift_batch) * s.batch_interval);
  out.noisy = std::make_unique<KeyMappedSource>(out.noisy_inner.get(), 2, 1);
  out.shared = std::make_unique<CompositeSource>(
      std::vector<TupleSource*>{out.calm.get(), out.noisy.get()});
  return out;
}

inline TenantQuerySpec CalmTenantSpec() {
  TenantQuerySpec spec;
  spec.id = "calm";
  spec.weight = 1;
  spec.technique = PartitionerType::kHash;
  spec.filter = *KeyFilter::Parse("mod:2:0");
  spec.query = *ParseQuery("SELECT COUNT WINDOW 8S");
  return spec;
}

inline TenantQuerySpec NoisyTenantSpec() {
  TenantQuerySpec spec;
  spec.id = "noisy";
  spec.weight = 1;
  spec.technique = PartitionerType::kHash;
  spec.adaptive = true;
  // Two-rung ladder, same rationale as the adaptive-switch bench: under the
  // bench cost model PK2 is not a usable intermediate rung.
  spec.adapt_candidates = {PartitionerType::kHash, PartitionerType::kPrompt};
  spec.filter = *KeyFilter::Parse("mod:2:1");
  spec.query = *ParseQuery("SELECT COUNT WINDOW 8S");
  return spec;
}

inline MultiTenantEngineOptions MultiTenantBenchOptions(
    const MultiTenantSetup& s, uint32_t total_slots) {
  MultiTenantEngineOptions opts;
  opts.batch_interval = s.batch_interval;
  opts.total_slots = total_slots;
  opts.map_tasks = s.tasks;
  opts.reduce_tasks = s.tasks;
  opts.cost = BenchCostModel();
  opts.unstable_queue_intervals = 1e9;
  opts.use_prompt_reduce = true;
  opts.obs.collect_partition_metrics = true;
  // Same calm thresholds as the single-tenant drift bench (DESIGN.md §11):
  // floor the autopsy above uniform-phase hash noise, and tolerate the
  // 2-3% of keys B-BPFI splits on uniform data from block straddling.
  opts.obs.autopsy.min_excess_frac = 0.05;
  opts.adapt_base.calm_split_key_frac = 0.05;
  return opts;
}

/// One tenant's observables from a scenario run.
struct TenantOutcome {
  RunSummary summary;
  std::vector<BatchCause> causes;
  std::unordered_map<KeyId, double> window;
  uint64_t slots_granted = 0;
};

struct MultiTenantScenario {
  TenantOutcome calm;
  TenantOutcome noisy;  ///< empty summary in the calm-solo run
};

/// Runs the shared two-tenant scenario (16 slots, weights 1:1), or the calm
/// tenant alone on its guaranteed half of the pool (the solo baseline the
/// isolation claims compare against).
inline MultiTenantScenario RunMultiTenantScenario(const MultiTenantSetup& s,
                                                  bool calm_only) {
  MultiTenantSources sources = MakeMultiTenantSources(s, calm_only);
  std::vector<TenantQuerySpec> specs = {CalmTenantSpec()};
  if (!calm_only) specs.push_back(NoisyTenantSpec());
  auto engine = MultiTenantEngine::Create(
      MultiTenantBenchOptions(s, calm_only ? s.tasks : 2 * s.tasks),
      std::move(specs),
      calm_only ? static_cast<TupleSource*>(sources.calm.get())
                : static_cast<TupleSource*>(sources.shared.get()));
  PROMPT_CHECK(engine.ok());
  MultiTenantRunSummary run = (*engine)->Run(s.batches);

  MultiTenantScenario out;
  auto fill = [&](size_t t, TenantOutcome* dst) {
    dst->summary = std::move(run.tenants[t].summary);
    dst->causes = std::move(run.tenants[t].causes);
    dst->slots_granted = run.tenants[t].slots_granted;
    dst->window = (*engine)->window(t).Result();
  };
  fill(0, &out.calm);
  if (!calm_only) fill(1, &out.noisy);
  return out;
}

/// p99 end-to-end latency over the whole run (TimeSeriesStore's estimator,
/// the same one the telemetry endpoints report).
inline double P99LatencyUs(const RunSummary& summary) {
  TimeSeriesOptions opts;
  opts.window = static_cast<uint32_t>(summary.batches.size());
  TimeSeriesStore store(opts);
  for (const BatchReport& b : summary.batches) store.Observe(b);
  return store.Aggregate(TimeSeriesSignal::kLatencyUs).p99;
}

/// Verdicts attributing the batch to data skew (the causes the adaptive
/// controller escalates on), counted over [begin, end) batch indices.
inline uint64_t SkewVerdicts(const std::vector<BatchCause>& causes,
                             size_t begin, size_t end) {
  uint64_t n = 0;
  for (size_t i = begin; i < end && i < causes.size(); ++i) {
    if (causes[i] == BatchCause::kSplitKeyOverflow ||
        causes[i] == BatchCause::kStragglerCore ||
        causes[i] == BatchCause::kBucketSkew) {
      ++n;
    }
  }
  return n;
}

/// Batches whose verdicts differ between two runs of the same tenant (0 =
/// the autopsy streams are bit-identical; the isolation requirement for the
/// calm tenant — its own workload may have verdicts, the neighbor must not
/// add, remove or change any).
inline uint64_t CauseDivergence(const std::vector<BatchCause>& a,
                                const std::vector<BatchCause>& b) {
  if (a.size() != b.size()) return a.size() + b.size();
  uint64_t n = 0;
  for (size_t i = 0; i < a.size(); ++i) n += (a[i] != b[i]) ? 1 : 0;
  return n;
}

/// Largest absolute per-key difference between two window answers (0.0 when
/// bit-identical, which is what the isolation scenario requires).
inline double WindowDrift(const std::unordered_map<KeyId, double>& a,
                          const std::unordered_map<KeyId, double>& b) {
  if (a.size() != b.size()) return 1e18;
  double drift = 0;
  for (const auto& [key, value] : a) {
    auto it = b.find(key);
    if (it == b.end()) return 1e18;
    const double d = value - it->second;
    drift = std::max(drift, d < 0 ? -d : d);
  }
  return drift;
}

}  // namespace prompt::bench
