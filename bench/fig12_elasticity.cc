// Regenerates Figure 12: resource elasticity. A single long run where the
// offered data rate and key cardinality rise and then fall; Prompt's Alg. 4
// controller adds/removes Map and Reduce tasks to track the workload.
//  (a) throughput over time  (b) task counts over time
//  (c)/(d) scale-in behaviour as the rate decreases, map/reduce mix
#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "common/hash.h"

using namespace prompt;
using namespace prompt::bench;

namespace {

// Key-cardinality ramp: a SynD source whose effective cardinality grows and
// shrinks over time, so the data-distribution statistic of Alg. 4 trends.
class RampCardinalitySource final : public TupleSource {
 public:
  RampCardinalitySource(std::shared_ptr<const RateProfile> rate)
      : rate_(std::move(rate)), rng_(13) {}

  const char* name() const override { return "SynD-ramp"; }
  uint64_t cardinality() const override { return 200000; }

  bool Next(Tuple* t) override {
    const double rate = rate_->RateAt(static_cast<TimeMicros>(now_));
    now_ += 1e6 / rate;
    t->ts = static_cast<TimeMicros>(now_);
    // Cardinality ramps 2k -> 16k -> 2k over the run (peak at t=60s).
    const double sec = now_ / 1e6;
    const double peak = 60.0;
    const double frac = 1.0 - std::abs(sec - peak) / peak;
    const uint64_t card = 2000 + static_cast<uint64_t>(
                                     14000 * std::clamp(frac, 0.0, 1.0));
    ZipfSampler zipf(card, 0.6);
    t->key = Mix64(zipf.Sample(rng_));
    t->value = 1.0;
    return true;
  }

 private:
  std::shared_ptr<const RateProfile> rate_;
  Rng rng_;
  double now_ = 0;
};

}  // namespace

int main() {
  // Offered rate: ramp 4k/s -> 16k/s -> 4k/s over 120 one-second batches.
  auto rate = std::make_shared<PiecewiseRate>(std::vector<PiecewiseRate::Knot>{
      {0, 4000},
      {Seconds(50), 16000},
      {Seconds(70), 16000},
      {Seconds(120), 4000}});
  RampCardinalitySource source(rate);

  EngineOptions opts;
  opts.batch_interval = Seconds(1);
  opts.map_tasks = 8;
  opts.reduce_tasks = 8;
  opts.cores = 64;
  opts.cores_track_tasks = true;  // resources on demand (§3.1)
  opts.cost = BenchCostModel();
  opts.elasticity_enabled = true;
  opts.elasticity.d = 2;
  opts.elasticity.max_map_tasks = 64;
  opts.elasticity.max_reduce_tasks = 64;
  opts.unstable_queue_intervals = 1e9;  // back-pressure disabled (§7.2)

  MicroBatchEngine engine(opts, JobSpec::WordCount(8),
                          CreatePartitioner(PartitionerType::kPrompt),
                          &source);
  auto summary = engine.Run(120);

  PrintHeader(
      "Figure 12 — Prompt elasticity under a rise-then-fall workload "
      "(back-pressure off)");
  PrintRow({"t(s)", "rate(t/s)", "keys", "W", "zone", "mapTasks",
            "reduceTasks", "queue(ms)"},
           12);
  for (size_t i = 0; i < summary.batches.size(); i += 4) {
    const auto& b = summary.batches[i];
    const char* zone = b.w > opts.elasticity.threshold
                           ? "overload"
                           : (b.w < opts.elasticity.threshold -
                                        opts.elasticity.step
                                  ? "under"
                                  : "stable");
    PrintRow({std::to_string(i), Fmt(static_cast<double>(b.num_tuples), 0),
              std::to_string(b.num_keys), Fmt(b.w, 2), zone,
              std::to_string(b.map_tasks), std::to_string(b.reduce_tasks),
              Fmt(static_cast<double>(b.queue_delay) / 1000.0, 0)},
             12);
  }

  // Summary claims matching the figure's narrative.
  uint32_t max_map = 0, max_reduce = 0;
  for (const auto& b : summary.batches) {
    max_map = std::max(max_map, b.map_tasks);
    max_reduce = std::max(max_reduce, b.reduce_tasks);
  }
  std::printf(
      "\npeak parallelism: %u map / %u reduce tasks (started 8/8, ended "
      "%u/%u)\n",
      max_map, max_reduce, engine.map_tasks(), engine.reduce_tasks());
  return 0;
}
