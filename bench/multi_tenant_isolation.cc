// Noisy-neighbor isolation under the weighted-fair TenantScheduler
// (self-asserting): a calm uniform tenant (even keys, static Hash) shares
// one ingest stream and one 16-slot pool with a tenant whose odd-key slice
// shifts from uniform to Zipf z = 1.4 mid-run. The harness exits non-zero
// unless
//   (a) the noisy tenant's adaptive ladder escalates (>= 1 switch up) and
//       its post-shift autopsy stream carries skew verdicts,
//   (b) the calm tenant's autopsy stream is bit-identical to its solo run —
//       the neighbor's skew must not add, remove or change a single verdict
//       (the calm workload's own occasional stragglers are fine; a *new*
//       verdict would be leakage),
//   (c) the calm tenant's p99 latency in the shared run is within
//       kMaxP99DriftPct of its solo run on the same guaranteed slot share,
//   (d) the calm tenant's window aggregates are bit-identical to that solo
//       run (the scheduler guarantees slots, the KeyFilter guarantees data).
// Everything runs on the virtual clock, so all five numbers are
// bit-deterministic per seed — bench_track gates them in BENCH_prompt.json.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "multi_tenant_util.h"

using namespace prompt;
using namespace prompt::bench;

namespace {

constexpr double kMaxP99DriftPct = 10.0;

int g_failures = 0;

void Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) ++g_failures;
}

}  // namespace

int main() {
  const MultiTenantSetup setup;
  PrintHeader(
      "Multi-tenant isolation: calm uniform tenant vs z=0 -> z=1.4 neighbor");

  const MultiTenantScenario shared =
      RunMultiTenantScenario(setup, /*calm_only=*/false);
  const MultiTenantScenario solo =
      RunMultiTenantScenario(setup, /*calm_only=*/true);

  const double calm_p99 = P99LatencyUs(shared.calm.summary);
  const double solo_p99 = P99LatencyUs(solo.calm.summary);
  const double noisy_p99 = P99LatencyUs(shared.noisy.summary);
  const double p99_drift_pct = 100.0 * (calm_p99 / solo_p99 - 1.0);
  const uint64_t noisy_skew = SkewVerdicts(
      shared.noisy.causes, setup.shift_batch, shared.noisy.causes.size());
  const uint64_t calm_divergence =
      CauseDivergence(shared.calm.causes, solo.calm.causes);
  const double window_drift = WindowDrift(shared.calm.window, solo.calm.window);

  PrintRow({"tenant", "p99 ms", "slots", "switches up", "skew verdicts"});
  PrintRow({"calm (shared)", Fmt(calm_p99 / 1000.0),
            std::to_string(shared.calm.slots_granted),
            std::to_string(shared.calm.summary.technique_switches_up),
            std::to_string(SkewVerdicts(shared.calm.causes, 0,
                                        shared.calm.causes.size()))});
  PrintRow({"calm (solo)", Fmt(solo_p99 / 1000.0),
            std::to_string(solo.calm.slots_granted),
            std::to_string(solo.calm.summary.technique_switches_up),
            std::to_string(SkewVerdicts(solo.calm.causes, 0,
                                        solo.calm.causes.size()))});
  PrintRow({"noisy", Fmt(noisy_p99 / 1000.0),
            std::to_string(shared.noisy.slots_granted),
            std::to_string(shared.noisy.summary.technique_switches_up),
            std::to_string(noisy_skew)});
  for (const auto& s : shared.noisy.summary.technique_switches) {
    std::printf("  noisy after batch %llu: %s -> %s (%s)\n",
                static_cast<unsigned long long>(s.after_batch),
                PartitionerTypeName(s.from), PartitionerTypeName(s.to),
                s.reason.c_str());
  }
  std::printf("  calm p99 drift vs solo: %+.2f%% (limit %.1f%%)\n",
              p99_drift_pct, kMaxP99DriftPct);

  Check(shared.noisy.summary.technique_switches_up >= 1,
        "noisy tenant escalates its ladder after the shift");
  Check(noisy_skew >= 1,
        "noisy tenant's post-shift autopsy stream carries skew verdicts");
  Check(calm_divergence == 0,
        "calm autopsy stream bit-identical to solo (no verdict leakage)");
  Check(shared.calm.summary.technique_switches_up == 0,
        "calm tenant never escalates (its slice never skews)");
  Check(p99_drift_pct <= kMaxP99DriftPct && p99_drift_pct >= -kMaxP99DriftPct,
        "calm shared-run p99 within 10% of its solo baseline");
  Check(window_drift == 0.0,
        "calm window aggregates bit-identical to the solo run");
  Check(shared.calm.summary.stable && shared.noisy.summary.stable,
        "both tenants stay stable");

  if (g_failures > 0) {
    std::fprintf(stderr, "FAIL: %d isolation assertion(s) violated\n",
                 g_failures);
    return 1;
  }
  std::printf("PASS: noisy neighbor contained; calm tenant unaffected\n");
  return 0;
}
