// Exponentially-weighted moving averages for the receiver's rate and
// cardinality estimates (N_est and K_avg of Alg. 1's f initialisation).
#pragma once

#include <cmath>
#include <vector>

namespace prompt {

/// \brief Simple EWMA over scalar observations.
class Ewma {
 public:
  /// \param alpha weight of the newest observation, in (0, 1].
  explicit Ewma(double alpha = 0.3) : alpha_(alpha) {}

  void Observe(double value) {
    if (!initialized_) {
      value_ = value;
      initialized_ = true;
    } else {
      value_ = alpha_ * value + (1.0 - alpha_) * value_;
    }
  }

  /// Current estimate; `fallback` until the first observation.
  double Value(double fallback = 0.0) const {
    return initialized_ ? value_ : fallback;
  }

  bool initialized() const { return initialized_; }

  void Reset() { initialized_ = false; value_ = 0; }

 private:
  double alpha_;
  double value_ = 0;
  bool initialized_ = false;
};

/// \brief Tracks whether a scalar trend is increasing over a lookback of d
/// observations — the "data rate increased / data distribution increased"
/// tests of Alg. 4.
class TrendTracker {
 public:
  explicit TrendTracker(int lookback = 3) : lookback_(lookback) {}

  void Observe(double value) {
    prev_ = last_;
    last_ = value;
    history_.push_back(value);
    if (static_cast<int>(history_.size()) > lookback_ + 1) {
      history_.erase(history_.begin());
    }
  }

  /// True when the newest observation exceeds the oldest in the lookback
  /// window by more than `tolerance` (relative).
  bool Increasing(double tolerance = 0.02) const {
    if (history_.size() < 2) return false;
    double oldest = history_.front();
    double newest = history_.back();
    if (oldest <= 0) return newest > 0;
    return (newest - oldest) / oldest > tolerance;
  }

  bool Decreasing(double tolerance = 0.02) const {
    if (history_.size() < 2) return false;
    double oldest = history_.front();
    double newest = history_.back();
    if (oldest <= 0) return false;
    return (oldest - newest) / oldest > tolerance;
  }

 private:
  int lookback_;
  double prev_ = 0;
  double last_ = 0;
  std::vector<double> history_;
};

}  // namespace prompt
