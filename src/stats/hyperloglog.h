// HyperLogLog cardinality estimator. The elasticity controller's
// data-distribution statistic is the number of distinct keys per batch
// (Alg. 4); the accumulator counts it exactly, but a receiver in front of
// the engine (or a DEBS-scale 8M-key deployment that samples) can use this
// to track cardinality in O(2^p) bytes.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/macros.h"
#include "common/status.h"

namespace prompt {

/// \brief Flajolet et al.'s HyperLogLog with the standard bias corrections.
class HyperLogLog {
 public:
  /// \param precision register-count exponent p in [4, 18]; standard error
  /// is ~1.04 / sqrt(2^p) (p=12 -> ~1.6%).
  explicit HyperLogLog(int precision = 12)
      : precision_(precision), registers_(size_t{1} << precision, 0) {
    PROMPT_CHECK(precision >= 4 && precision <= 18);
  }

  /// Observes a key (hashed internally).
  void Add(uint64_t key) { AddHash(HashKey(key, 0x9e3779b9)); }

  /// Observes a pre-hashed 64-bit value.
  void AddHash(uint64_t hash) {
    const uint32_t idx = static_cast<uint32_t>(hash >> (64 - precision_));
    const uint64_t rest = hash << precision_;
    // Rank = position of the first 1-bit in the remaining bits, 1-based.
    const uint8_t rank = rest == 0
                             ? static_cast<uint8_t>(64 - precision_ + 1)
                             : static_cast<uint8_t>(__builtin_clzll(rest) + 1);
    if (rank > registers_[idx]) registers_[idx] = rank;
  }

  /// Estimated number of distinct values observed.
  double Estimate() const {
    const double m = static_cast<double>(registers_.size());
    double sum = 0;
    int zeros = 0;
    for (uint8_t r : registers_) {
      sum += std::ldexp(1.0, -r);
      if (r == 0) ++zeros;
    }
    const double alpha = AlphaFor(registers_.size());
    double estimate = alpha * m * m / sum;
    if (estimate <= 2.5 * m && zeros > 0) {
      // Small-range correction: linear counting.
      estimate = m * std::log(m / static_cast<double>(zeros));
    }
    return estimate;
  }

  /// Union with another sketch of the same precision.
  Status Merge(const HyperLogLog& other) {
    if (other.precision_ != precision_) {
      return Status::Invalid("precision mismatch in HyperLogLog merge");
    }
    for (size_t i = 0; i < registers_.size(); ++i) {
      registers_[i] = std::max(registers_[i], other.registers_[i]);
    }
    return Status::OK();
  }

  void Clear() { std::fill(registers_.begin(), registers_.end(), 0); }

  int precision() const { return precision_; }
  size_t memory_bytes() const { return registers_.size(); }

 private:
  static double AlphaFor(size_t m) {
    if (m == 16) return 0.673;
    if (m == 32) return 0.697;
    if (m == 64) return 0.709;
    return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }

  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace prompt
