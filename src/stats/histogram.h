// Latency histogram with percentile queries (Fig. 13 reporting).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace prompt {

/// \brief Exact-sample histogram: records every value, answers percentiles.
///
/// Experiments record at most a few hundred thousand batch latencies, so
/// storing raw samples is cheap and keeps percentiles exact.
class Histogram {
 public:
  void Record(double value) {
    samples_.push_back(value);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }

  double Min() const { return Percentile(0); }
  double Max() const { return Percentile(100); }
  double Mean() const {
    if (samples_.empty()) return 0;
    double sum = 0;
    for (double v : samples_) sum += v;
    return sum / static_cast<double>(samples_.size());
  }
  double StdDev() const {
    if (samples_.size() < 2) return 0;
    double mean = Mean();
    double var = 0;
    for (double v : samples_) var += (v - mean) * (v - mean);
    return std::sqrt(var / static_cast<double>(samples_.size()));
  }

  /// p in [0, 100]; nearest-rank percentile.
  double Percentile(double p) const {
    PROMPT_CHECK(p >= 0 && p <= 100);
    if (samples_.empty()) return 0;
    Sort();
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1 - frac) + samples_[hi] * frac;
  }

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void Sort() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace prompt
