#include "stats/space_saving.h"

#include <algorithm>

namespace prompt {

std::vector<SpaceSaving::Entry> SpaceSaving::TopEntries() const {
  std::vector<Entry> out = heap_;
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count != b.count ? a.count > b.count : a.key < b.key;
  });
  return out;
}

std::vector<SpaceSaving::Entry> SpaceSaving::HeavyHitters(double phi) const {
  const double threshold = phi * static_cast<double>(total_);
  std::vector<Entry> out;
  for (const Entry& e : heap_) {
    if (static_cast<double>(e.count - e.error) > threshold) out.push_back(e);
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count != b.count ? a.count > b.count : a.key < b.key;
  });
  return out;
}

}  // namespace prompt
