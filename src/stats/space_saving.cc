#include "stats/space_saving.h"

#include <algorithm>

namespace prompt {

std::vector<SpaceSaving::Entry> SpaceSaving::TopEntries() const {
  std::vector<Entry> out = heap_;
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count != b.count ? a.count > b.count : a.key < b.key;
  });
  return out;
}

std::vector<SpaceSaving::Entry> SpaceSaving::HeavyHitters(double phi) const {
  const double threshold = phi * static_cast<double>(total_);
  std::vector<Entry> out;
  for (const Entry& e : heap_) {
    if (static_cast<double>(e.count - e.error) > threshold) out.push_back(e);
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count != b.count ? a.count > b.count : a.key < b.key;
  });
  return out;
}

void SpaceSaving::Merge(const SpaceSaving& other) {
  total_ += other.total_;
  std::vector<Entry> combined = heap_;
  FlatMap<uint32_t> pos(combined.size() + other.heap_.size());
  for (uint32_t i = 0; i < combined.size(); ++i) {
    pos.GetOrInsert(combined[i].key) = i;
  }
  for (const Entry& e : other.heap_) {
    if (uint32_t* p = pos.Find(e.key)) {
      combined[*p].count += e.count;
      combined[*p].error += e.error;
    } else {
      pos.GetOrInsert(e.key) = static_cast<uint32_t>(combined.size());
      combined.push_back(e);
    }
  }
  if (combined.size() > capacity_) {
    // Deterministic survivor set: largest counts win, key breaks ties.
    std::sort(combined.begin(), combined.end(),
              [](const Entry& a, const Entry& b) {
                return a.count != b.count ? a.count > b.count : a.key < b.key;
              });
    combined.resize(capacity_);
  }
  // An array sorted ascending by count is a valid min-heap.
  std::sort(combined.begin(), combined.end(),
            [](const Entry& a, const Entry& b) {
              return a.count != b.count ? a.count < b.count : a.key < b.key;
            });
  heap_ = std::move(combined);
  RebuildIndex();
}

}  // namespace prompt
