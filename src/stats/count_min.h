// Count-Min sketch (Cormode & Muthukrishnan) — the cross-check companion to
// the Space-Saving sketch in heavy-hitter ingest mode (DESIGN.md §17).
// Space-Saving decides *which* keys are tracked; CMS provides an independent
// frequency estimate for any key, so a promotion decision can be vetoed when
// the two sketches disagree badly (a symptom of an under-sized counter set).
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/macros.h"
#include "model/tuple.h"

namespace prompt {

/// \brief Fixed-size d x w counter matrix with point-query over-estimates.
///
/// Estimate(key) >= true count always; with width w and depth d the excess
/// is below 2N/w with probability 1 - (1/2)^d. All state is POD vectors, so
/// Merge is element-wise addition and memory is exactly d*w counters.
class CountMin {
 public:
  /// Width is rounded up to a power of two so row indexing is a mask.
  CountMin(size_t width, size_t depth) : depth_(depth) {
    PROMPT_CHECK(width >= 1 && depth >= 1);
    width_ = 16;
    while (width_ < width) width_ <<= 1;
    rows_.assign(depth_ * width_, 0);
  }
  PROMPT_DISALLOW_COPY_AND_ASSIGN(CountMin);

  /// Observes `weight` occurrences of `key`.
  void Add(KeyId key, uint64_t weight = 1) {
    total_ += weight;
    for (size_t d = 0; d < depth_; ++d) {
      rows_[d * width_ + Slot(key, d)] += weight;
    }
  }

  /// Point query: minimum across rows (never underestimates).
  uint64_t Estimate(KeyId key) const {
    uint64_t est = rows_[Slot(key, 0)];
    for (size_t d = 1; d < depth_; ++d) {
      const uint64_t v = rows_[d * width_ + Slot(key, d)];
      if (v < est) est = v;
    }
    return est;
  }

  /// Element-wise sum; both sketches must share dimensions.
  void Merge(const CountMin& other) {
    PROMPT_CHECK(width_ == other.width_ && depth_ == other.depth_);
    for (size_t i = 0; i < rows_.size(); ++i) rows_[i] += other.rows_[i];
    total_ += other.total_;
  }

  size_t width() const { return width_; }
  size_t depth() const { return depth_; }
  uint64_t total() const { return total_; }

  size_t capacity_bytes() const { return rows_.capacity() * sizeof(uint64_t); }

  void Clear() {
    rows_.assign(rows_.size(), 0);
    total_ = 0;
  }

 private:
  size_t Slot(KeyId key, size_t row) const {
    // Distinct seeds act as pairwise-independent row hashes.
    return HashKey(key, 0x9e37u + row) & (width_ - 1);
  }

  size_t width_ = 0;
  size_t depth_ = 0;
  std::vector<uint64_t> rows_;  // row-major d x w
  uint64_t total_ = 0;
};

}  // namespace prompt
