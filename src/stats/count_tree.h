// CountTree: the balanced BST of approximate key frequencies maintained
// during the batching phase (paper §4.1, Fig. 5).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "common/macros.h"
#include "model/tuple.h"

namespace prompt {

/// \brief AVL tree ordered by (count, key) holding one node per distinct key.
///
/// The accumulator inserts a node when a key is first seen and *repositions*
/// it (erase + reinsert, O(log K)) whenever the key's budgeted update fires.
/// At the heartbeat, a reverse in-order traversal yields the quasi-sorted
/// `⟨key, count⟩` list consumed by the batch partitioner — no dedicated
/// post-sort step runs between batching and processing.
///
/// Nodes live in a pooled vector and are addressed by index; Clear() resets
/// the pool in O(1) amortized, matching the per-heartbeat reset of Alg. 1.
class CountTree {
 public:
  struct Entry {
    KeyId key;
    uint64_t count;
  };

  CountTree() = default;
  PROMPT_DISALLOW_COPY_AND_ASSIGN(CountTree);

  /// Inserts a node for `key` with the given count. The (count, key) pair
  /// must not already be present (keys are unique in the accumulator).
  void Insert(KeyId key, uint64_t count) {
    root_ = InsertRec(root_, key, count);
    ++size_;
  }

  /// Removes the node for (key, count). Returns false if absent.
  bool Erase(KeyId key, uint64_t count) {
    bool erased = false;
    root_ = EraseRec(root_, key, count, &erased);
    if (erased) --size_;
    return erased;
  }

  /// Moves a key from old_count to new_count (the budgeted CountTree update
  /// of Alg. 1 lines 10/16). Returns false if (key, old_count) was absent.
  bool Update(KeyId key, uint64_t old_count, uint64_t new_count) {
    if (!Erase(key, old_count)) return false;
    Insert(key, new_count);
    return true;
  }

  /// Number of keys currently tracked.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Bytes of node storage currently held.
  size_t capacity_bytes() const {
    return nodes_.capacity() * sizeof(Node) +
           free_list_.capacity() * sizeof(uint32_t);
  }

  /// Resets the tree for the next batch interval.
  void Clear() {
    root_ = kNil;
    size_ = 0;
    nodes_.clear();
    free_list_.clear();
  }

  /// Clear() plus releasing the node storage back to the allocator.
  void Reset() {
    Clear();
    nodes_.shrink_to_fit();
    free_list_.shrink_to_fit();
  }

  /// Visits entries in descending (count, key) order — the partitioner's
  /// input order (largest keys first).
  template <typename F>
  void ForEachDescending(F&& f) const {
    VisitDesc(root_, f);
  }

  /// Visits entries in ascending (count, key) order.
  template <typename F>
  void ForEachAscending(F&& f) const {
    VisitAsc(root_, f);
  }

  /// Materializes the descending traversal.
  std::vector<Entry> ToDescending() const {
    std::vector<Entry> out;
    out.reserve(size_);
    ForEachDescending([&out](KeyId k, uint64_t c) {
      out.push_back(Entry{k, c});
    });
    return out;
  }

  /// Verifies BST ordering and AVL balance (tests only). Returns tree height
  /// or -1 on violation.
  int Validate() const { return ValidateRec(root_); }

 private:
  static constexpr uint32_t kNil = 0xffffffffu;

  struct Node {
    KeyId key;
    uint64_t count;
    uint32_t left;
    uint32_t right;
    int32_t height;
  };

  static bool Less(uint64_t ca, KeyId ka, uint64_t cb, KeyId kb) {
    return ca < cb || (ca == cb && ka < kb);
  }

  uint32_t NewNode(KeyId key, uint64_t count) {
    uint32_t idx;
    if (!free_list_.empty()) {
      idx = free_list_.back();
      free_list_.pop_back();
    } else {
      idx = static_cast<uint32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    Node& n = nodes_[idx];
    n.key = key;
    n.count = count;
    n.left = n.right = kNil;
    n.height = 1;
    return idx;
  }

  int32_t HeightOf(uint32_t n) const { return n == kNil ? 0 : nodes_[n].height; }

  void Pull(uint32_t n) {
    nodes_[n].height =
        1 + std::max(HeightOf(nodes_[n].left), HeightOf(nodes_[n].right));
  }

  uint32_t RotateRight(uint32_t y) {
    uint32_t x = nodes_[y].left;
    nodes_[y].left = nodes_[x].right;
    nodes_[x].right = y;
    Pull(y);
    Pull(x);
    return x;
  }

  uint32_t RotateLeft(uint32_t x) {
    uint32_t y = nodes_[x].right;
    nodes_[x].right = nodes_[y].left;
    nodes_[y].left = x;
    Pull(x);
    Pull(y);
    return y;
  }

  int32_t BalanceFactor(uint32_t n) const {
    return HeightOf(nodes_[n].left) - HeightOf(nodes_[n].right);
  }

  uint32_t Rebalance(uint32_t n) {
    Pull(n);
    int32_t bf = BalanceFactor(n);
    if (bf > 1) {
      if (BalanceFactor(nodes_[n].left) < 0) {
        nodes_[n].left = RotateLeft(nodes_[n].left);
      }
      return RotateRight(n);
    }
    if (bf < -1) {
      if (BalanceFactor(nodes_[n].right) > 0) {
        nodes_[n].right = RotateRight(nodes_[n].right);
      }
      return RotateLeft(n);
    }
    return n;
  }

  uint32_t InsertRec(uint32_t n, KeyId key, uint64_t count) {
    if (n == kNil) return NewNode(key, count);
    if (Less(count, key, nodes_[n].count, nodes_[n].key)) {
      nodes_[n].left = InsertRec(nodes_[n].left, key, count);
    } else {
      nodes_[n].right = InsertRec(nodes_[n].right, key, count);
    }
    return Rebalance(n);
  }

  uint32_t MinNode(uint32_t n) const {
    while (nodes_[n].left != kNil) n = nodes_[n].left;
    return n;
  }

  uint32_t EraseRec(uint32_t n, KeyId key, uint64_t count, bool* erased) {
    if (n == kNil) return kNil;
    if (Less(count, key, nodes_[n].count, nodes_[n].key)) {
      nodes_[n].left = EraseRec(nodes_[n].left, key, count, erased);
    } else if (Less(nodes_[n].count, nodes_[n].key, count, key)) {
      nodes_[n].right = EraseRec(nodes_[n].right, key, count, erased);
    } else {
      *erased = true;
      if (nodes_[n].left == kNil || nodes_[n].right == kNil) {
        uint32_t child =
            nodes_[n].left != kNil ? nodes_[n].left : nodes_[n].right;
        free_list_.push_back(n);
        return child;
      }
      // Two children: replace payload with in-order successor, then erase it.
      uint32_t succ = MinNode(nodes_[n].right);
      nodes_[n].key = nodes_[succ].key;
      nodes_[n].count = nodes_[succ].count;
      bool dummy = false;
      nodes_[n].right =
          EraseRec(nodes_[n].right, nodes_[n].key, nodes_[n].count, &dummy);
    }
    return Rebalance(n);
  }

  template <typename F>
  void VisitDesc(uint32_t n, F& f) const {
    if (n == kNil) return;
    VisitDesc(nodes_[n].right, f);
    f(nodes_[n].key, nodes_[n].count);
    VisitDesc(nodes_[n].left, f);
  }

  template <typename F>
  void VisitAsc(uint32_t n, F& f) const {
    if (n == kNil) return;
    VisitAsc(nodes_[n].left, f);
    f(nodes_[n].key, nodes_[n].count);
    VisitAsc(nodes_[n].right, f);
  }

  int ValidateRec(uint32_t n) const {
    if (n == kNil) return 0;
    int hl = ValidateRec(nodes_[n].left);
    int hr = ValidateRec(nodes_[n].right);
    if (hl < 0 || hr < 0) return -1;
    if (std::abs(hl - hr) > 1) return -1;
    if (nodes_[n].left != kNil &&
        !Less(nodes_[nodes_[n].left].count, nodes_[nodes_[n].left].key,
              nodes_[n].count, nodes_[n].key)) {
      return -1;
    }
    if (nodes_[n].right != kNil &&
        !Less(nodes_[n].count, nodes_[n].key, nodes_[nodes_[n].right].count,
              nodes_[nodes_[n].right].key)) {
      return -1;
    }
    int h = 1 + std::max(hl, hr);
    if (h != nodes_[n].height) return -1;
    return h;
  }

  std::vector<Node> nodes_;
  std::vector<uint32_t> free_list_;
  uint32_t root_ = kNil;
  size_t size_ = 0;
};

}  // namespace prompt
