#include "stats/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/flat_map.h"

namespace prompt {

PartitionMetrics ComputeBlockMetrics(const PartitionedBatch& batch,
                                     const MpiWeights& weights) {
  PartitionMetrics m;
  const size_t p = batch.blocks.size();
  if (p == 0) return m;

  uint64_t total_size = 0;
  uint64_t total_cardinality = 0;
  FlatMap<uint32_t> key_blocks(batch.num_keys + 8);
  for (const DataBlock& b : batch.blocks) {
    total_size += b.size();
    total_cardinality += b.cardinality();
    m.max_block_size = std::max(m.max_block_size, b.size());
    m.max_block_cardinality = std::max(m.max_block_cardinality, b.cardinality());
    for (const KeyFragment& f : b.fragments()) {
      ++key_blocks.GetOrInsert(f.key);
      ++m.total_fragments;
    }
  }
  m.distinct_keys = key_blocks.size();
  key_blocks.ForEach([&m](KeyId, uint32_t n) {
    if (n > 1) ++m.split_keys;
  });

  m.avg_block_size = static_cast<double>(total_size) / static_cast<double>(p);
  m.avg_block_cardinality =
      static_cast<double>(total_cardinality) / static_cast<double>(p);
  m.bsi = static_cast<double>(m.max_block_size) - m.avg_block_size;
  m.bci = static_cast<double>(m.max_block_cardinality) - m.avg_block_cardinality;
  m.ksr = m.distinct_keys == 0
              ? 1.0
              : static_cast<double>(m.total_fragments) /
                    static_cast<double>(m.distinct_keys);

  const double bsi_norm = m.avg_block_size > 0 ? m.bsi / m.avg_block_size : 0;
  const double bci_norm =
      m.avg_block_cardinality > 0 ? m.bci / m.avg_block_cardinality : 0;
  m.mpi = weights.p1 * bsi_norm + weights.p2 * bci_norm +
          weights.p3 * (m.ksr - 1.0);
  return m;
}

double ShardLoadImbalance(const IngestMetrics& m) {
  if (m.shards.empty() || m.total_tuples == 0) return 1.0;
  uint64_t max = 0;
  for (const ShardIngestStats& s : m.shards) max = std::max(max, s.tuples);
  const double avg = static_cast<double>(m.total_tuples) /
                     static_cast<double>(m.shards.size());
  return avg > 0 ? static_cast<double>(max) / avg : 1.0;
}

double MaxRingOccupancyFrac(const IngestMetrics& m) {
  double worst = 0;
  for (const ShardIngestStats& s : m.shards) {
    if (s.ring_capacity == 0) continue;
    worst = std::max(worst, static_cast<double>(s.ring_high_water) /
                                static_cast<double>(s.ring_capacity));
  }
  return worst;
}

double BucketSizeImbalance(std::span<const uint64_t> bucket_sizes) {
  if (bucket_sizes.empty()) return 0;
  uint64_t max = 0;
  uint64_t total = 0;
  for (uint64_t s : bucket_sizes) {
    max = std::max(max, s);
    total += s;
  }
  return static_cast<double>(max) -
         static_cast<double>(total) / static_cast<double>(bucket_sizes.size());
}

SizeSpread ComputeSpread(std::span<const uint64_t> sizes) {
  SizeSpread s;
  if (sizes.empty()) return s;
  s.min = sizes[0];
  uint64_t total = 0;
  for (uint64_t v : sizes) {
    s.max = std::max(s.max, v);
    s.min = std::min(s.min, v);
    total += v;
  }
  s.avg = static_cast<double>(total) / static_cast<double>(sizes.size());
  double var = 0;
  for (uint64_t v : sizes) {
    double d = static_cast<double>(v) - s.avg;
    var += d * d;
  }
  s.stddev = std::sqrt(var / static_cast<double>(sizes.size()));
  return s;
}

}  // namespace prompt
