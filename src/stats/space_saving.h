// Space-Saving heavy-hitter sketch (Metwally et al.) — the bounded-memory,
// approximate alternative to Prompt's exact HTable+CountTree statistics.
// Gedik's partitioning functions [18] use lossy counting in the same role;
// the paper's position (§2.2.4) is that micro-batching makes *exact*
// per-batch statistics affordable. This sketch exists to quantify that
// trade-off (ablation A7): what a sketch-driven partitioner loses in
// ordering quality and split decisions.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/macros.h"
#include "model/tuple.h"

namespace prompt {

/// \brief Fixed-capacity top-k frequency tracker.
///
/// Holds at most `capacity` counters. A hit increments its counter; a miss
/// evicts the minimum counter and inherits its count + 1 (the classical
/// Space-Saving overestimate). Count error per key is bounded by the evicted
/// minimum at its insertion.
class SpaceSaving {
 public:
  struct Entry {
    KeyId key = 0;
    uint64_t count = 0;  ///< estimated frequency (over-estimate)
    uint64_t error = 0;  ///< max over-estimation carried from eviction
  };

  explicit SpaceSaving(size_t capacity) : capacity_(capacity), index_(capacity) {
    PROMPT_CHECK(capacity >= 1);
    heap_.reserve(capacity);
  }
  PROMPT_DISALLOW_COPY_AND_ASSIGN(SpaceSaving);

  /// Observes one occurrence of `key`.
  void Add(KeyId key) {
    ++total_;
    uint32_t* slot = index_.Find(key);
    if (slot != nullptr && *slot != kEvicted) {
      heap_[*slot].count++;
      SiftDown(*slot);
      return;
    }
    if (heap_.size() < capacity_) {
      heap_.push_back(Entry{key, 1, 0});
      index_.GetOrInsert(key) = static_cast<uint32_t>(heap_.size() - 1);
      SiftUp(static_cast<uint32_t>(heap_.size() - 1));
      return;
    }
    // Evict the minimum: the newcomer inherits min+1 with error = min.
    // FlatMap has no erase, so the evicted key leaves a tombstone; the
    // index is rebuilt once tombstones dominate, keeping memory O(capacity)
    // amortized.
    Entry& min = heap_[0];
    index_.GetOrInsert(min.key) = kEvicted;
    ++tombstones_;
    min = Entry{key, min.count + 1, min.count};
    index_.GetOrInsert(key) = 0;
    SiftDown(0);
    if (tombstones_ > 8 * capacity_) RebuildIndex();
  }

  /// Estimated count for a key (0 when not tracked).
  uint64_t Estimate(KeyId key) const {
    const uint32_t* slot = index_.Find(key);
    if (slot == nullptr || *slot == kEvicted) return 0;
    return heap_[*slot].count;
  }

  /// True when the key currently holds a counter.
  bool Tracks(KeyId key) const {
    const uint32_t* slot = index_.Find(key);
    return slot != nullptr && *slot != kEvicted;
  }

  /// Entries sorted by decreasing estimated count.
  std::vector<Entry> TopEntries() const;

  /// Guaranteed heavy hitters: entries whose lower bound (count - error)
  /// exceeds phi * total observations.
  std::vector<Entry> HeavyHitters(double phi) const;

  size_t size() const { return heap_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t total() const { return total_; }

  void Clear() {
    heap_.clear();
    index_.Clear();
    total_ = 0;
    tombstones_ = 0;
  }

 private:
  static constexpr uint32_t kEvicted = 0xffffffffu;

  void Swap(uint32_t a, uint32_t b) {
    std::swap(heap_[a], heap_[b]);
    index_.GetOrInsert(heap_[a].key) = a;
    index_.GetOrInsert(heap_[b].key) = b;
  }

  // Min-heap on count.
  void SiftUp(uint32_t i) {
    while (i > 0) {
      uint32_t parent = (i - 1) / 2;
      if (heap_[parent].count <= heap_[i].count) break;
      Swap(parent, i);
      i = parent;
    }
  }

  void SiftDown(uint32_t i) {
    const uint32_t n = static_cast<uint32_t>(heap_.size());
    while (true) {
      uint32_t smallest = i;
      uint32_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < n && heap_[l].count < heap_[smallest].count) smallest = l;
      if (r < n && heap_[r].count < heap_[smallest].count) smallest = r;
      if (smallest == i) break;
      Swap(smallest, i);
      i = smallest;
    }
  }

  void RebuildIndex() {
    index_ = FlatMap<uint32_t>(capacity_);
    for (uint32_t i = 0; i < heap_.size(); ++i) {
      index_.GetOrInsert(heap_[i].key) = i;
    }
    tombstones_ = 0;
  }

  size_t capacity_;
  std::vector<Entry> heap_;      // min-heap by count
  FlatMap<uint32_t> index_;      // key -> heap slot (kEvicted = gone)
  uint64_t total_ = 0;
  size_t tombstones_ = 0;
};

}  // namespace prompt
