// Space-Saving heavy-hitter sketch (Metwally et al.) — the bounded-memory,
// approximate alternative to Prompt's exact HTable+CountTree statistics.
// Gedik's partitioning functions [18] use lossy counting in the same role;
// the paper's position (§2.2.4) is that micro-batching makes *exact*
// per-batch statistics affordable. Under the heavy-hitter ingest mode
// (DESIGN.md §17) this sketch graduates to the hot path: it decides which
// keys earn exact accumulator state, so memory stays O(capacity) instead of
// O(distinct keys) on 10M-key streams.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/macros.h"
#include "model/tuple.h"

namespace prompt {

/// \brief Fixed-capacity top-k frequency tracker.
///
/// Holds at most `capacity` counters. A hit increments its counter; a miss
/// evicts the minimum counter and inherits its count + 1 (the classical
/// Space-Saving overestimate). Per tracked key the classical bound holds:
/// `count - error <= true frequency <= count`.
class SpaceSaving {
 public:
  struct Entry {
    KeyId key = 0;
    uint64_t count = 0;  ///< estimated frequency (over-estimate)
    uint64_t error = 0;  ///< max over-estimation carried from eviction
  };

  explicit SpaceSaving(size_t capacity) : capacity_(capacity), index_(capacity) {
    PROMPT_CHECK(capacity >= 1);
    heap_.reserve(capacity);
  }
  PROMPT_DISALLOW_COPY_AND_ASSIGN(SpaceSaving);

  /// Observes `weight` occurrences of `key`.
  void Add(KeyId key, uint64_t weight = 1) {
    total_ += weight;
    uint32_t* slot = index_.Find(key);
    if (slot != nullptr) {
      heap_[*slot].count += weight;
      SiftDown(*slot);
      return;
    }
    if (heap_.size() < capacity_) {
      heap_.push_back(Entry{key, weight, 0});
      index_.GetOrInsert(key) = static_cast<uint32_t>(heap_.size() - 1);
      SiftUp(static_cast<uint32_t>(heap_.size() - 1));
      return;
    }
    // Evict the minimum: the newcomer inherits min+weight with error = min.
    // The index erase leaves a FlatMap tombstone which the map itself
    // accounts for and compacts, so a churn-only workload (every Add a miss)
    // keeps the index O(capacity).
    Entry& min = heap_[0];
    index_.Erase(min.key);
    min = Entry{key, min.count + weight, min.count};
    index_.GetOrInsert(key) = 0;
    SiftDown(0);
  }

  /// Estimated count for a key (0 when not tracked).
  uint64_t Estimate(KeyId key) const {
    const uint32_t* slot = index_.Find(key);
    return slot == nullptr ? 0 : heap_[*slot].count;
  }

  /// Guaranteed lower bound on a key's true count (0 when not tracked).
  uint64_t LowerBound(KeyId key) const {
    const uint32_t* slot = index_.Find(key);
    return slot == nullptr ? 0 : heap_[*slot].count - heap_[*slot].error;
  }

  /// True when the key currently holds a counter.
  bool Tracks(KeyId key) const { return index_.Find(key) != nullptr; }

  /// Smallest tracked count — the ceiling on any untracked key's frequency.
  uint64_t MinCount() const { return heap_.empty() ? 0 : heap_[0].count; }

  /// Raw tracked entries in heap (unspecified) order — for telemetry that
  /// only aggregates; use TopEntries() when order matters.
  const std::vector<Entry>& entries() const { return heap_; }

  /// Entries sorted by decreasing estimated count.
  std::vector<Entry> TopEntries() const;

  /// Guaranteed heavy hitters: entries whose lower bound (count - error)
  /// exceeds phi * total observations.
  std::vector<Entry> HeavyHitters(double phi) const;

  /// Drops a key's counter, freeing its slot (heavy-hitter mode removes a
  /// key from the sketch once it is promoted to exact tracking). Returns
  /// whether the key was tracked.
  bool Remove(KeyId key) {
    uint32_t* slot = index_.Find(key);
    if (slot == nullptr) return false;
    const uint32_t i = *slot;
    const uint32_t last = static_cast<uint32_t>(heap_.size() - 1);
    index_.Erase(key);
    if (i != last) {
      heap_[i] = heap_[last];
      index_.GetOrInsert(heap_[i].key) = i;
      heap_.pop_back();
      // The relocated element is a former leaf: SiftDown restores order
      // below i; if it did not move, it may still beat i's parent (the
      // removed element's descendants were all >= that parent, but the
      // relocated element came from elsewhere), so SiftUp finishes the job.
      SiftDown(i);
      SiftUp(i);
    } else {
      heap_.pop_back();
    }
    return true;
  }

  /// Folds `other` into this sketch. Intended for sharded ingest where the
  /// two sketches observed *disjoint* key sets (hash-routed shards): the
  /// union is then exact up to each input's own error. Keys present in both
  /// sum counts and errors (still a valid over-estimate); when the union
  /// exceeds capacity only the top `capacity` entries by count survive.
  void Merge(const SpaceSaving& other);

  size_t size() const { return heap_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t total() const { return total_; }

  /// Bytes of backing storage (counter heap + key index).
  size_t capacity_bytes() const {
    return heap_.capacity() * sizeof(Entry) + index_.capacity_bytes();
  }

  void Clear() {
    heap_.clear();
    index_.Clear();
    total_ = 0;
  }

 private:
  void Swap(uint32_t a, uint32_t b) {
    std::swap(heap_[a], heap_[b]);
    index_.GetOrInsert(heap_[a].key) = a;
    index_.GetOrInsert(heap_[b].key) = b;
  }

  // Min-heap on count.
  void SiftUp(uint32_t i) {
    while (i > 0) {
      uint32_t parent = (i - 1) / 2;
      if (heap_[parent].count <= heap_[i].count) break;
      Swap(parent, i);
      i = parent;
    }
  }

  void SiftDown(uint32_t i) {
    const uint32_t n = static_cast<uint32_t>(heap_.size());
    while (true) {
      uint32_t smallest = i;
      uint32_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < n && heap_[l].count < heap_[smallest].count) smallest = l;
      if (r < n && heap_[r].count < heap_[smallest].count) smallest = r;
      if (smallest == i) break;
      Swap(smallest, i);
      i = smallest;
    }
  }

  void RebuildIndex() {
    index_.Clear();
    for (uint32_t i = 0; i < heap_.size(); ++i) {
      index_.GetOrInsert(heap_[i].key) = i;
    }
  }

  size_t capacity_;
  std::vector<Entry> heap_;  // min-heap by count
  FlatMap<uint32_t> index_;  // key -> heap slot
  uint64_t total_ = 0;
};

}  // namespace prompt
