// Partitioning-quality metrics of the paper's cost model (§3.3, Eqns. 2-6).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/batch.h"

namespace prompt {

/// \brief Weights of the combined Micro-batch Partitioning-Imbalance metric
/// (Eqn. 6). They must sum to 1; the paper uses 1/3 each. p1=1 degenerates to
/// shuffle-like behaviour (size only), p3=1 to hash-like (locality only).
struct MpiWeights {
  double p1 = 1.0 / 3.0;  ///< weight of Block Size-Imbalance (BSI)
  double p2 = 1.0 / 3.0;  ///< weight of Block Cardinality-Imbalance (BCI)
  double p3 = 1.0 / 3.0;  ///< weight of Key Split Ratio (KSR)
};

/// \brief Quality measurements for one partitioned micro-batch.
struct PartitionMetrics {
  /// BSI (Eqn. 2): max block size - average block size, in tuples.
  double bsi = 0;
  /// BCI (Eqn. 4): max block cardinality - average block cardinality.
  double bci = 0;
  /// KSR (Eqn. 5): total key fragments / distinct keys; 1.0 = no splitting.
  double ksr = 1;
  /// MPI (Eqn. 6) over *normalized* components so the three terms are
  /// commensurate: BSI/avg_size, BCI/avg_cardinality, KSR-1.
  double mpi = 0;

  uint64_t max_block_size = 0;
  double avg_block_size = 0;
  uint64_t max_block_cardinality = 0;
  double avg_block_cardinality = 0;
  uint64_t total_fragments = 0;
  uint64_t distinct_keys = 0;
  uint64_t split_keys = 0;
};

/// \brief Computes BSI/BCI/KSR/MPI for a partitioned batch. Blocks must have
/// their fragment summaries populated (DataBlock::Finalize or a plan-driven
/// partitioner).
PartitionMetrics ComputeBlockMetrics(const PartitionedBatch& batch,
                                     const MpiWeights& weights = {});

/// \brief BSI over Reduce buckets (Eqn. 3): max bucket size - average.
double BucketSizeImbalance(std::span<const uint64_t> bucket_sizes);

/// \brief Per-shard accounting of one batch interval in the parallel ingest
/// pipeline (src/ingest/). Filled by the shard workers and the router.
struct ShardIngestStats {
  uint64_t tuples = 0;           ///< tuples routed to this shard
  uint64_t keys = 0;             ///< distinct keys the shard accumulated
  uint64_t ring_high_water = 0;  ///< max observed ring occupancy (sampled)
  uint64_t ring_capacity = 0;
  TimeMicros seal_latency = 0;   ///< worker-side accumulator Seal() time
  TimeMicros copy_latency = 0;   ///< worker-side arena publish time
};

/// \brief One batch interval's ingest-side observability: per-shard loads,
/// the seal-barrier stall and the k-way merge cost — the quantities that
/// bound how far sharding can scale the batching phase.
struct IngestMetrics {
  std::vector<ShardIngestStats> shards;
  uint64_t total_tuples = 0;
  /// Router wall time spent routing this batch (BeginBatch -> seal request).
  TimeMicros ingest_wall = 0;
  /// Seal request -> every shard sealed (the barrier of the cut-off).
  TimeMicros seal_barrier_latency = 0;
  /// Loser-tree merge + arena publication after the barrier.
  TimeMicros merge_latency = 0;

  /// Router-observed ingest rate over the batch (0 when unmeasurable).
  double TuplesPerSec() const {
    return ingest_wall > 0 ? static_cast<double>(total_tuples) /
                                 (static_cast<double>(ingest_wall) / 1e6)
                           : 0.0;
  }
};

/// \brief Max-over-average shard load (1.0 = perfectly even routing): the
/// ingest analogue of BSI, reported per batch by the pipeline.
double ShardLoadImbalance(const IngestMetrics& m);

/// \brief Highest ring occupancy across shards as a fraction of capacity —
/// the early-warning signal for ingest back-pressure.
double MaxRingOccupancyFrac(const IngestMetrics& m);

/// \brief max/avg summary used in several experiment tables.
struct SizeSpread {
  uint64_t max = 0;
  uint64_t min = 0;
  double avg = 0;
  double stddev = 0;
};
SizeSpread ComputeSpread(std::span<const uint64_t> sizes);

}  // namespace prompt
