// Fixed-size worker pool: the "cores" of the simulated cluster when the
// engine executes Map/Reduce tasks for real.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace prompt {

/// \brief Fixed-size thread pool with a wait-for-drain barrier.
///
/// The engine submits one closure per Map/Reduce task and uses WaitIdle() as
/// the stage barrier (all Map tasks of a batch must finish before its Reduce
/// stage is scheduled).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    PROMPT_CHECK(num_threads > 0);
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() { Shutdown(); }
  PROMPT_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// Enqueues a task; aborts if the pool is shut down.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      PROMPT_CHECK_MSG(!shutdown_, "Submit after Shutdown");
      queue_.push_back(std::move(task));
      ++pending_;
    }
    work_available_.notify_one();
  }

  /// Blocks until every submitted task has completed.
  void WaitIdle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return pending_ == 0; });
  }

  /// Stops accepting work, drains the queue, joins workers. Idempotent.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;
      shutdown_ = true;
    }
    work_available_.notify_all();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_available_.wait(lock,
                             [this] { return !queue_.empty() || shutdown_; });
        if (queue_.empty()) {
          if (shutdown_) return;
          continue;
        }
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace prompt
