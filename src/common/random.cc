#include "common/random.h"

#include <numeric>

namespace prompt {

std::vector<uint64_t> RandomPermutation(uint64_t n, Rng& rng) {
  std::vector<uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), uint64_t{0});
  for (uint64_t i = n; i > 1; --i) {
    uint64_t j = rng.NextBounded(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace prompt
