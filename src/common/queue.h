// Bounded blocking MPMC queue used between receivers and the engine in
// real-execution mode.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/macros.h"

namespace prompt {

/// \brief Bounded blocking multi-producer/multi-consumer queue.
///
/// Push blocks when full (providing natural back-pressure between a receiver
/// and the batching layer); Pop blocks when empty unless the queue is closed.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t capacity) : capacity_(capacity) {
    PROMPT_CHECK(capacity > 0);
  }
  PROMPT_DISALLOW_COPY_AND_ASSIGN(BlockingQueue);

  /// Blocks until there is room; returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available; nullopt when closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: pending/future pushes fail, pops drain then end.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace prompt
