// Robin-hood open-addressing hash map specialized for uint64 keys. This is
// the flat accumulator's HTable: compared to FlatMap's plain linear probing
// it bounds probe-sequence variance by displacing "rich" entries (those
// close to their home slot) in favor of "poor" ones, which keeps lookups
// cache-friendly at higher load factors (0.875 here vs FlatMap's 0.7).
//
// Deletion uses backward shifting instead of tombstones, so the table never
// degrades under insert/erase churn — the property the unit tests pin down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/hash.h"

namespace prompt {

/// \brief Robin-hood hash map from uint64 keys to V (V small and movable).
///
/// Capacity is always a power of two; growth doubles at 87.5% load.
/// References returned by GetOrInsert()/Find() are invalidated by any
/// mutation.
template <typename V>
class RobinHoodMap {
 public:
  explicit RobinHoodMap(size_t initial_capacity = 16) {
    size_t cap = 16;
    while (cap < initial_capacity) cap <<= 1;
    keys_.resize(cap);
    values_.resize(cap);
    dist_.assign(cap, 0);
  }

  /// Returns the value slot for `key`, default-constructing it on first
  /// sight; *inserted reports which case occurred.
  V& GetOrInsert(uint64_t key, bool* inserted = nullptr) {
    if ((size_ + 1) * 8 > capacity() * 7) Grow();
    const size_t mask = capacity() - 1;
    size_t idx = Home(key);
    uint32_t d = 1;
    while (true) {
      if (dist_[idx] == 0) {
        keys_[idx] = key;
        values_[idx] = V{};
        dist_[idx] = d;
        ++size_;
        if (inserted != nullptr) *inserted = true;
        return values_[idx];
      }
      if (keys_[idx] == key) {
        if (inserted != nullptr) *inserted = false;
        return values_[idx];
      }
      if (dist_[idx] < d) {
        // Rob the rich: `key` claims this slot (its final position — the
        // displacement chain below never moves it again), and the evicted
        // resident is carried forward until it finds a poorer slot or an
        // empty one. Load < 1 guarantees termination.
        uint64_t ck = keys_[idx];
        V cv = std::move(values_[idx]);
        uint32_t cd = dist_[idx];
        const size_t home = idx;
        keys_[idx] = key;
        values_[idx] = V{};
        dist_[idx] = d;
        size_t j = (idx + 1) & mask;
        ++cd;
        while (true) {
          if (dist_[j] == 0) {
            keys_[j] = ck;
            values_[j] = std::move(cv);
            dist_[j] = cd;
            break;
          }
          if (dist_[j] < cd) {
            std::swap(keys_[j], ck);
            std::swap(values_[j], cv);
            std::swap(dist_[j], cd);
          }
          j = (j + 1) & mask;
          ++cd;
        }
        ++size_;
        if (inserted != nullptr) *inserted = true;
        return values_[home];
      }
      idx = (idx + 1) & mask;
      ++d;
    }
  }

  V* Find(uint64_t key) {
    const size_t idx = FindSlot(key);
    return idx == kNotFound ? nullptr : &values_[idx];
  }
  const V* Find(uint64_t key) const {
    const size_t idx = FindSlot(key);
    return idx == kNotFound ? nullptr : &values_[idx];
  }
  bool Contains(uint64_t key) const { return FindSlot(key) != kNotFound; }

  /// Removes `key` via backward shifting (no tombstone is left behind).
  /// Returns false when the key is absent.
  bool Erase(uint64_t key) {
    size_t idx = FindSlot(key);
    if (idx == kNotFound) return false;
    const size_t mask = capacity() - 1;
    size_t next = (idx + 1) & mask;
    // Shift the displaced tail back one slot until a run boundary: an empty
    // slot or an entry already sitting in its home position (dist == 1).
    while (dist_[next] > 1) {
      keys_[idx] = keys_[next];
      values_[idx] = std::move(values_[next]);
      dist_[idx] = dist_[next] - 1;
      idx = next;
      next = (next + 1) & mask;
    }
    dist_[idx] = 0;
    --size_;
    return true;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return keys_.size(); }

  /// Drops all entries, retaining capacity.
  void Clear() {
    dist_.assign(dist_.size(), 0);
    size_ = 0;
  }

  /// Bytes of backing storage currently held.
  size_t capacity_bytes() const {
    return keys_.capacity() * sizeof(uint64_t) +
           values_.capacity() * sizeof(V) +
           dist_.capacity() * sizeof(uint32_t);
  }

  /// Longest probe sequence currently in the table (1 = home slot); test
  /// observability for the robin-hood variance bound.
  uint32_t MaxProbeDistance() const {
    uint32_t max_d = 0;
    for (uint32_t d : dist_) max_d = d > max_d ? d : max_d;
    return max_d;
  }

  /// Applies f(key, value&) to every entry (unspecified order).
  template <typename F>
  void ForEach(F&& f) {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (dist_[i] != 0) f(keys_[i], values_[i]);
    }
  }
  template <typename F>
  void ForEach(F&& f) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (dist_[i] != 0) f(keys_[i], values_[i]);
    }
  }

 private:
  static constexpr size_t kNotFound = ~size_t{0};

  size_t Home(uint64_t key) const {
    return static_cast<size_t>(XxMix64(key)) & (capacity() - 1);
  }

  size_t FindSlot(uint64_t key) const {
    const size_t mask = capacity() - 1;
    size_t idx = Home(key);
    uint32_t d = 1;
    // Robin-hood invariant: once our probe distance exceeds the resident's,
    // the key cannot be further along — stop early.
    while (dist_[idx] >= d) {
      if (keys_[idx] == key) return idx;
      idx = (idx + 1) & mask;
      ++d;
    }
    return kNotFound;
  }

  /// Inserts an entry known to be absent (Grow's rehash path).
  void InsertAbsent(uint64_t key, V&& value) {
    const size_t mask = capacity() - 1;
    uint64_t ck = key;
    V cv = std::move(value);
    uint32_t cd = 1;
    size_t idx = Home(key);
    while (true) {
      if (dist_[idx] == 0) {
        keys_[idx] = ck;
        values_[idx] = std::move(cv);
        dist_[idx] = cd;
        ++size_;
        return;
      }
      if (dist_[idx] < cd) {
        std::swap(keys_[idx], ck);
        std::swap(values_[idx], cv);
        std::swap(dist_[idx], cd);
      }
      idx = (idx + 1) & mask;
      ++cd;
    }
  }

  void Grow() {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    std::vector<uint32_t> old_dist = std::move(dist_);
    const size_t cap = old_keys.size() * 2;
    keys_.assign(cap, 0);
    values_.assign(cap, V{});
    dist_.assign(cap, 0);
    size_ = 0;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_dist[i] != 0) InsertAbsent(old_keys[i], std::move(old_values[i]));
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<V> values_;
  /// Probe distance + 1 for occupied slots (1 = home position); 0 = empty.
  std::vector<uint32_t> dist_;
  size_t size_ = 0;
};

}  // namespace prompt
