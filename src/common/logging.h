// Minimal leveled logger. Defaults to WARN so benchmarks stay quiet; examples
// raise the level for narrative output.
#pragma once

#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>

namespace prompt {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Global logging configuration.
class Logger {
 public:
  static Logger& Instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void Log(LogLevel level, const std::string& msg) {
    if (level < level_) return;
    std::lock_guard<std::mutex> lock(mu_);
    std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
  }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO ";
      case LogLevel::kWarn: return "WARN ";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

namespace internal {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Instance().Log(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define PROMPT_LOG(level) \
  ::prompt::internal::LogMessage(::prompt::LogLevel::level).stream()

}  // namespace prompt
