// Seeded 64-bit hashing used for key-to-block and key-to-bucket assignment.
#pragma once

#include <cstdint>
#include <string_view>

namespace prompt {

/// \brief Mixes a 64-bit value into a well-distributed 64-bit hash
/// (SplitMix64 finalizer, a.k.a. Stafford variant 13).
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// \brief xxHash-style 64-bit avalanche (the XXH3 finalizer): two
/// multiply-xorshift rounds. Slightly cheaper than Mix64 (one fewer
/// multiply) with comparable diffusion — used by the flat accumulator's
/// robin-hood table, where the hash is on the per-tuple critical path.
inline uint64_t XxMix64(uint64_t x) {
  x ^= x >> 37;
  x *= 0x165667919e3779f9ULL;
  x ^= x >> 32;
  return x;
}

/// \brief Hashes a 64-bit key under a given seed.
///
/// Distinct seeds behave as independent hash functions; the d-choices
/// partitioners (PK-2, PK-5, cAM) derive their candidate assignments by
/// varying the seed.
inline uint64_t HashKey(uint64_t key, uint64_t seed = 0) {
  return Mix64(key ^ Mix64(seed ^ 0x2545F4914F6CDD1DULL));
}

/// \brief FNV-1a for string keys (used by sources that dictionary-encode
/// textual keys such as words or taxi medallions).
inline uint64_t HashBytes(std::string_view bytes, uint64_t seed = 0) {
  uint64_t h = 14695981039346656037ULL ^ Mix64(seed);
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return Mix64(h);
}

}  // namespace prompt
