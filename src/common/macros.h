// Core preprocessor utilities shared across the Prompt codebase.
#pragma once

#include <cstdio>
#include <cstdlib>

#define PROMPT_STRINGIFY_IMPL(x) #x
#define PROMPT_STRINGIFY(x) PROMPT_STRINGIFY_IMPL(x)

/// \brief Abort with a message when an internal invariant is violated.
///
/// Unlike assert(), PROMPT_CHECK is active in all build types. It is reserved
/// for invariants whose violation indicates a bug in this library, never for
/// user input validation (use Status for that).
#define PROMPT_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::std::fprintf(stderr, "PROMPT_CHECK failed at %s:%d: %s\n", __FILE__, \
                     __LINE__, PROMPT_STRINGIFY(cond));                      \
      ::std::abort();                                                        \
    }                                                                        \
  } while (0)

#define PROMPT_CHECK_MSG(cond, msg)                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::std::fprintf(stderr, "PROMPT_CHECK failed at %s:%d: %s (%s)\n",      \
                     __FILE__, __LINE__, PROMPT_STRINGIFY(cond), (msg));     \
      ::std::abort();                                                        \
    }                                                                        \
  } while (0)

#define PROMPT_CONCAT_IMPL(a, b) a##b
#define PROMPT_CONCAT(a, b) PROMPT_CONCAT_IMPL(a, b)

/// \brief Propagate a non-OK Status from the current function.
#define PROMPT_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::prompt::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (0)

/// \brief Assign the value of a Result<T> expression or propagate its error.
#define PROMPT_ASSIGN_OR_RETURN(lhs, expr)                        \
  PROMPT_ASSIGN_OR_RETURN_IMPL(PROMPT_CONCAT(_res_, __LINE__), lhs, expr)

#define PROMPT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueUnsafe();

#define PROMPT_DISALLOW_COPY_AND_ASSIGN(T) \
  T(const T&) = delete;                    \
  T& operator=(const T&) = delete
