// Minimal command-line flag parsing for the tools and harness binaries:
// --name=value and --name (boolean) forms, with typed accessors.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"

namespace prompt {

/// \brief Parses `--key=value` / `--flag` arguments.
///
/// Unrecognized positional arguments are collected separately; consumers
/// can reject them or use them (e.g. a query string). Accessors record the
/// keys they saw so UnknownFlags() can report typos.
class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const size_t eq = arg.find('=');
        if (eq == std::string::npos) {
          flags_[arg.substr(2)] = "true";
        } else {
          flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        }
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  bool Has(const std::string& name) const {
    return flags_.count(name) > 0;
  }

  std::string GetString(const std::string& name,
                        const std::string& fallback = "") {
    queried_.insert(name);
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
  }

  Result<int64_t> GetInt(const std::string& name, int64_t fallback) {
    queried_.insert(name);
    auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    try {
      size_t pos = 0;
      int64_t v = std::stoll(it->second, &pos);
      if (pos != it->second.size()) {
        return Status::Invalid("--" + name + " expects an integer, got '" +
                               it->second + "'");
      }
      return v;
    } catch (...) {
      return Status::Invalid("--" + name + " expects an integer, got '" +
                             it->second + "'");
    }
  }

  Result<double> GetDouble(const std::string& name, double fallback) {
    queried_.insert(name);
    auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    try {
      size_t pos = 0;
      double v = std::stod(it->second, &pos);
      if (pos != it->second.size()) {
        return Status::Invalid("--" + name + " expects a number, got '" +
                               it->second + "'");
      }
      return v;
    } catch (...) {
      return Status::Invalid("--" + name + " expects a number, got '" +
                             it->second + "'");
    }
  }

  Result<bool> GetBool(const std::string& name, bool fallback) {
    queried_.insert(name);
    auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    if (it->second == "true" || it->second == "1" || it->second == "yes") {
      return true;
    }
    if (it->second == "false" || it->second == "0" || it->second == "no") {
      return false;
    }
    return Status::Invalid("--" + name + " expects a boolean, got '" +
                           it->second + "'");
  }

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags present on the command line that no accessor asked about.
  std::vector<std::string> UnknownFlags() const {
    std::vector<std::string> unknown;
    for (const auto& [k, v] : flags_) {
      if (queried_.count(k) == 0) unknown.push_back(k);
    }
    return unknown;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::set<std::string> queried_;
  std::vector<std::string> positional_;
};

}  // namespace prompt
