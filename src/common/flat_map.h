// Open-addressing hash map specialized for uint64 keys. This is the HTable
// backbone of the frequency-aware accumulator (Alg. 1) and the per-block
// statistics in the metrics module; std::unordered_map's node allocations
// would dominate the per-tuple path.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/macros.h"

namespace prompt {

/// \brief Linear-probing hash map from uint64 keys to V.
///
/// Tombstone-free: the accumulator never erases individual keys (batches are
/// cleared wholesale), so deletion is simply not offered. Load factor is kept
/// under 0.7 by doubling.
template <typename V>
class FlatMap {
 public:
  struct Slot {
    uint64_t key;
    V value;
  };

  explicit FlatMap(size_t initial_capacity = 16) {
    size_t cap = 16;
    while (cap < initial_capacity * 2) cap <<= 1;
    slots_.resize(cap);
    used_.assign(cap, false);
  }

  /// Returns the value for key, inserting a default-constructed V first if
  /// absent. `inserted` (optional) reports whether an insert happened.
  V& GetOrInsert(uint64_t key, bool* inserted = nullptr) {
    if ((size_ + 1) * 10 >= slots_.size() * 7) Grow();
    size_t idx = Probe(key);
    if (!used_[idx]) {
      used_[idx] = true;
      slots_[idx].key = key;
      slots_[idx].value = V{};
      ++size_;
      if (inserted) *inserted = true;
    } else if (inserted) {
      *inserted = false;
    }
    return slots_[idx].value;
  }

  /// Pointer to value or nullptr when absent.
  V* Find(uint64_t key) {
    size_t idx = Probe(key);
    return used_[idx] ? &slots_[idx].value : nullptr;
  }
  const V* Find(uint64_t key) const {
    size_t idx = Probe(key);
    return used_[idx] ? &slots_[idx].value : nullptr;
  }

  bool Contains(uint64_t key) const { return Find(key) != nullptr; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Slot-array length (power of two).
  size_t capacity() const { return slots_.size(); }

  /// Bytes of backing storage currently held.
  size_t capacity_bytes() const {
    return slots_.capacity() * sizeof(Slot) + used_.capacity();
  }

  /// Drops all entries, retaining capacity.
  void Clear() {
    used_.assign(used_.size(), false);
    size_ = 0;
  }

  /// Applies f(key, value&) to every entry (unspecified order).
  template <typename F>
  void ForEach(F&& f) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) f(slots_[i].key, slots_[i].value);
    }
  }
  template <typename F>
  void ForEach(F&& f) const {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) f(slots_[i].key, slots_[i].value);
    }
  }

 private:
  size_t Probe(uint64_t key) const {
    size_t mask = slots_.size() - 1;
    size_t idx = HashKey(key) & mask;
    while (used_[idx] && slots_[idx].key != key) idx = (idx + 1) & mask;
    return idx;
  }

  void Grow() {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<char> old_used = std::move(used_);
    slots_.assign(old_slots.size() * 2, Slot{});
    used_.assign(old_used.size() * 2, false);
    size_ = 0;
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) continue;
      size_t idx = Probe(old_slots[i].key);
      used_[idx] = true;
      slots_[idx] = std::move(old_slots[i]);
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::vector<char> used_;  // char, not bool, to avoid bitset proxies
  size_t size_ = 0;
};

}  // namespace prompt
