// Open-addressing hash map specialized for uint64 keys. This is the HTable
// backbone of the frequency-aware accumulator (Alg. 1) and the per-block
// statistics in the metrics module; std::unordered_map's node allocations
// would dominate the per-tuple path.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/macros.h"

namespace prompt {

/// \brief Linear-probing hash map from uint64 keys to V.
///
/// Supports erasure via tombstones for churn-heavy users (the Space-Saving
/// sketch evicts a key on every miss once full). Tombstones count toward the
/// load-factor trigger — a probe chain only terminates at a truly empty
/// slot, so a table whose dead slots went unaccounted would degrade Find to
/// O(n) under churn. When the trigger fires on tombstone pressure alone the
/// table is rehashed in place (same capacity, tombstones dropped) instead of
/// doubled, keeping memory proportional to the live entry count.
template <typename V>
class FlatMap {
 public:
  struct Slot {
    uint64_t key;
    V value;
  };

  explicit FlatMap(size_t initial_capacity = 16) {
    size_t cap = 16;
    while (cap < initial_capacity * 2) cap <<= 1;
    slots_.resize(cap);
    used_.assign(cap, kEmpty);
  }

  /// Returns the value for key, inserting a default-constructed V first if
  /// absent. `inserted` (optional) reports whether an insert happened.
  V& GetOrInsert(uint64_t key, bool* inserted = nullptr) {
    // Tombstones occupy probe-chain slots just like live entries, so they
    // participate in the resize trigger.
    if ((size_ + tombstones_ + 1) * 10 >= slots_.size() * 7) Rehash();
    const size_t mask = slots_.size() - 1;
    size_t idx = HashKey(key) & mask;
    size_t reuse = kNoSlot;
    while (used_[idx] != kEmpty) {
      if (used_[idx] == kUsed && slots_[idx].key == key) {
        if (inserted) *inserted = false;
        return slots_[idx].value;
      }
      if (used_[idx] == kTombstone && reuse == kNoSlot) reuse = idx;
      idx = (idx + 1) & mask;
    }
    if (reuse != kNoSlot) {
      idx = reuse;  // reclaim the first tombstone on the probe path
      --tombstones_;
    }
    used_[idx] = kUsed;
    slots_[idx].key = key;
    slots_[idx].value = V{};
    ++size_;
    if (inserted) *inserted = true;
    return slots_[idx].value;
  }

  /// Pointer to value or nullptr when absent.
  V* Find(uint64_t key) {
    const size_t idx = FindSlot(key);
    return idx == kNoSlot ? nullptr : &slots_[idx].value;
  }
  const V* Find(uint64_t key) const {
    const size_t idx = FindSlot(key);
    return idx == kNoSlot ? nullptr : &slots_[idx].value;
  }

  bool Contains(uint64_t key) const { return Find(key) != nullptr; }

  /// Removes the entry for key, leaving a tombstone. Returns whether the key
  /// was present.
  bool Erase(uint64_t key) {
    const size_t idx = FindSlot(key);
    if (idx == kNoSlot) return false;
    used_[idx] = kTombstone;
    ++tombstones_;
    --size_;
    return true;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Tombstoned slots awaiting the next rehash (observability for the churn
  /// tests; always 0 for erase-free users).
  size_t tombstones() const { return tombstones_; }

  /// Slot-array length (power of two).
  size_t capacity() const { return slots_.size(); }

  /// Bytes of backing storage currently held.
  size_t capacity_bytes() const {
    return slots_.capacity() * sizeof(Slot) + used_.capacity();
  }

  /// Drops all entries, retaining capacity.
  void Clear() {
    used_.assign(used_.size(), kEmpty);
    size_ = 0;
    tombstones_ = 0;
  }

  /// Applies f(key, value&) to every entry (unspecified order).
  template <typename F>
  void ForEach(F&& f) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i] == kUsed) f(slots_[i].key, slots_[i].value);
    }
  }
  template <typename F>
  void ForEach(F&& f) const {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i] == kUsed) f(slots_[i].key, slots_[i].value);
    }
  }

 private:
  enum : char { kEmpty = 0, kUsed = 1, kTombstone = 2 };
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  /// Index of the live slot holding key, or kNoSlot. Probes past tombstones
  /// (a key inserted before an intervening erase still has its chain).
  size_t FindSlot(uint64_t key) const {
    const size_t mask = slots_.size() - 1;
    size_t idx = HashKey(key) & mask;
    while (used_[idx] != kEmpty) {
      if (used_[idx] == kUsed && slots_[idx].key == key) return idx;
      idx = (idx + 1) & mask;
    }
    return kNoSlot;
  }

  /// Doubles when live entries alone demand it; otherwise rehashes at the
  /// same capacity to shed tombstones (churn-only workloads stay bounded).
  void Rehash() {
    size_t new_cap = slots_.size();
    if ((size_ + 1) * 10 >= new_cap * 7) new_cap <<= 1;
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<char> old_used = std::move(used_);
    slots_.assign(new_cap, Slot{});
    used_.assign(new_cap, kEmpty);
    size_ = 0;
    tombstones_ = 0;
    const size_t mask = new_cap - 1;
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (old_used[i] != kUsed) continue;
      size_t idx = HashKey(old_slots[i].key) & mask;
      while (used_[idx] != kEmpty) idx = (idx + 1) & mask;
      used_[idx] = kUsed;
      slots_[idx] = std::move(old_slots[i]);
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::vector<char> used_;  // kEmpty / kUsed / kTombstone
  size_t size_ = 0;
  size_t tombstones_ = 0;
};

}  // namespace prompt
