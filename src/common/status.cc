#include "common/status.h"

namespace prompt {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kKeyError:
      return "Key error";
    case StatusCode::kCapacityError:
      return "Capacity error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kUnknownError:
      return "Unknown error";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unrecognized code";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace prompt
