// Deterministic PRNG and distribution samplers for workload generation.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace prompt {

/// \brief xoshiro256** PRNG: fast, high quality, fully deterministic per seed.
///
/// All randomness in the library flows through explicitly seeded instances of
/// this class so experiments are reproducible run to run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).
  uint64_t NextBounded(uint64_t bound) {
    PROMPT_CHECK(bound > 0);
    // Lemire's nearly-divisionless method.
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + NextDouble() * (hi - lo);
  }

  /// Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Exponential inter-arrival sample with the given rate (events/unit).
  double NextExponential(double rate) {
    PROMPT_CHECK(rate > 0);
    double u = NextDouble();
    if (u <= 0) u = 1e-18;
    return -std::log(u) / rate;
  }

  /// Standard normal via Box-Muller (no state caching; simple and adequate).
  double NextGaussian(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0) u1 = 1e-18;
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    return mean + stddev * z;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

/// \brief Zipf(N, z) sampler over ranks {0, ..., n-1}.
///
/// Rank r is drawn with probability proportional to 1/(r+1)^z. Uses the
/// rejection-inversion method of Hörmann & Derflinger, which is O(1) per
/// sample and exact — no table construction, so cardinalities up to 10^7
/// (the paper's SynD setting) are cheap.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double z) : n_(n), z_(z) {
    PROMPT_CHECK(n >= 1);
    PROMPT_CHECK(z >= 0.0);
    if (z_ < 1e-9) return;  // uniform fallback
    h_x1_ = H(1.5) - 1.0;
    h_n_ = H(static_cast<double>(n_) + 0.5);
    s_ = 2.0 - HInv(H(2.5) - std::pow(2.0, -z_));
  }

  uint64_t n() const { return n_; }
  double z() const { return z_; }

  /// Draws one rank in [0, n).
  uint64_t Sample(Rng& rng) const {
    if (z_ < 1e-9) return rng.NextBounded(n_);
    while (true) {
      double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
      double x = HInv(u);
      uint64_t k = static_cast<uint64_t>(x + 0.5);
      if (k < 1) k = 1;
      if (k > n_) k = n_;
      double kd = static_cast<double>(k);
      if (kd - x <= s_ || u >= H(kd + 0.5) - std::pow(kd, -z_)) {
        return k - 1;
      }
    }
  }

  /// Exact probability of rank r (for tests; O(n) normalization cached).
  double Pmf(uint64_t rank) const {
    if (z_ < 1e-9) return 1.0 / static_cast<double>(n_);
    if (norm_ == 0.0) {
      double s = 0.0;
      for (uint64_t i = 1; i <= n_; ++i) s += std::pow(double(i), -z_);
      norm_ = s;
    }
    return std::pow(static_cast<double>(rank + 1), -z_) / norm_;
  }

 private:
  // H(x) = integral of x^-z; closed forms per z == 1 or not.
  double H(double x) const {
    if (std::abs(z_ - 1.0) < 1e-12) return std::log(x);
    return std::pow(x, 1.0 - z_) / (1.0 - z_);
  }
  double HInv(double u) const {
    if (std::abs(z_ - 1.0) < 1e-12) return std::exp(u);
    return std::pow(u * (1.0 - z_), 1.0 / (1.0 - z_));
  }

  uint64_t n_;
  double z_;
  double h_x1_ = 0, h_n_ = 0, s_ = 0;
  mutable double norm_ = 0.0;
};

/// \brief Fisher-Yates permutation of {0..n-1}; used to decouple Zipf rank
/// from key identity so hash-based baselines are not accidentally favoured.
std::vector<uint64_t> RandomPermutation(uint64_t n, Rng& rng);

}  // namespace prompt
