// Arrow/RocksDB-style Status for error handling without exceptions.
#pragma once

#include <memory>
#include <string>
#include <utility>

namespace prompt {

/// \brief Machine-readable error category carried by a non-OK Status.
enum class StatusCode : char {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kKeyError,
  kCapacityError,
  kNotImplemented,
  kIOError,
  kAlreadyExists,
  kUnknownError,
  kCancelled,
  kResourceExhausted,
};

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// Status is the library-wide error channel; no exceptions cross the public
/// API. The OK state carries no allocation so returning Status::OK() in hot
/// paths is free.
class Status {
 public:
  /// Creates an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(msg)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_)
                            : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Returns an OK status.
  static Status OK() { return Status(); }

  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status CapacityError(std::string msg) {
    return Status(StatusCode::kCapacityError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknownError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }

  /// Error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalid() const { return code() == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsKeyError() const { return code() == StatusCode::kKeyError; }
  bool IsCapacityError() const { return code() == StatusCode::kCapacityError; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// Human-readable "Code: message" rendering.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // nullptr <=> OK.
  std::unique_ptr<State> state_;
};

/// \brief Name of a StatusCode, e.g. "Invalid argument".
const char* StatusCodeToString(StatusCode code);

}  // namespace prompt
