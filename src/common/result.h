// Result<T>: value-or-Status, modeled on arrow::Result.
#pragma once

#include <utility>
#include <variant>

#include "common/macros.h"
#include "common/status.h"

namespace prompt {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Functions that can fail but produce a value return Result<T>. Use
/// PROMPT_ASSIGN_OR_RETURN to unwrap inside Status/Result-returning code.
template <typename T>
class Result {
 public:
  /// Construct from a value (implicit so `return value;` works).
  Result(T value) : storage_(std::move(value)) {}  // NOLINT

  /// Construct from a non-OK status (implicit so `return status;` works).
  Result(Status status) : storage_(std::move(status)) {  // NOLINT
    PROMPT_CHECK_MSG(!std::get<Status>(storage_).ok(),
                     "Result constructed from OK status");
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(storage_); }

  /// The error status (OK() if a value is present).
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(storage_);
  }

  /// The value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    PROMPT_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(storage_);
  }
  T& ValueOrDie() & {
    PROMPT_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(storage_);
  }
  T ValueOrDie() && {
    PROMPT_CHECK_MSG(ok(), status().ToString().c_str());
    return std::move(std::get<T>(storage_));
  }

  /// The value without checking; undefined when !ok(). Used by macros after
  /// an explicit ok() check.
  T ValueUnsafe() && { return std::move(std::get<T>(storage_)); }
  const T& ValueUnsafe() const& { return std::get<T>(storage_); }

  /// Value or a fallback when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> storage_;
};

}  // namespace prompt
