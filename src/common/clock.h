// Time abstraction: the engine runs against a Clock so throughput and
// elasticity experiments can execute in deterministic virtual time.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace prompt {

/// Microseconds since an arbitrary epoch. All engine-visible timestamps,
/// batch intervals and task durations use this unit.
using TimeMicros = int64_t;

constexpr TimeMicros kMicrosPerMilli = 1000;
constexpr TimeMicros kMicrosPerSecond = 1000 * 1000;

inline constexpr TimeMicros Millis(int64_t ms) { return ms * kMicrosPerMilli; }
inline constexpr TimeMicros Seconds(double s) {
  return static_cast<TimeMicros>(s * kMicrosPerSecond);
}
inline constexpr double ToSeconds(TimeMicros t) {
  return static_cast<double>(t) / kMicrosPerSecond;
}

/// \brief Source of "now" for the engine.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds.
  virtual TimeMicros Now() const = 0;
};

/// \brief Wall-clock time (steady), used when examples execute for real.
class SystemClock final : public Clock {
 public:
  TimeMicros Now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// \brief Manually advanced clock for discrete-event simulation.
///
/// The simulation driver advances it; everything else only reads it, so the
/// same engine code runs unmodified under virtual or wall time.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(TimeMicros start = 0) : now_(start) {}

  TimeMicros Now() const override {
    return now_.load(std::memory_order_relaxed);
  }

  /// Moves time forward by delta (must be >= 0).
  void Advance(TimeMicros delta) {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Jumps to an absolute time (must not move backwards).
  void AdvanceTo(TimeMicros t) {
    TimeMicros cur = now_.load(std::memory_order_relaxed);
    while (t > cur &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<TimeMicros> now_;
};

/// \brief Scoped stopwatch measuring wall time in microseconds.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }
  void Restart() {
    start_ = std::chrono::steady_clock::now();
  }
  TimeMicros ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace prompt
