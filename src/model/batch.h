// PartitionedBatch: the sealed output of the batching phase.
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/flat_map.h"
#include "model/block.h"
#include "model/sketch_stats.h"

namespace prompt {

/// \brief A sealed micro-batch: data blocks ready for the Map stage, plus
/// batching-phase bookkeeping consumed by the scheduler and the elasticity
/// controller.
struct PartitionedBatch {
  uint64_t batch_id = 0;
  /// Heartbeat that closed this batch (end of its batch interval).
  TimeMicros seal_time = 0;
  /// Total tuples across all blocks (the data-rate statistic of Alg. 4).
  uint64_t num_tuples = 0;
  /// Distinct keys in the batch (the data-distribution statistic of Alg. 4).
  uint64_t num_keys = 0;
  /// Wall time the partitioner spent producing the blocks. With Early Batch
  /// Release this is overlapped with the tail of the batch interval, so the
  /// scheduler only counts the part exceeding the slack.
  TimeMicros partition_cost = 0;
  /// Heavy-hitter mode telemetry (sketch_mode == false for exact batches).
  /// In sketch mode, blocks' fragment tables cover head keys plus the
  /// tail-resident remnants of promoted keys; tail-only keys carry no
  /// per-key summary — that is the memory bound the mode exists for — so
  /// block cardinality() under-counts them (num_keys carries the HLL
  /// estimate instead).
  SketchBatchStats sketch;
  std::vector<DataBlock> blocks;

  /// Marks keys appearing in more than one block as split, completing each
  /// block's reference table. Returns the number of split keys.
  uint64_t ComputeSplitFlags() {
    FlatMap<uint32_t> appearances(num_keys + 8);
    for (const DataBlock& b : blocks) {
      for (const KeyFragment& f : b.fragments()) ++appearances.GetOrInsert(f.key);
    }
    uint64_t split = 0;
    for (DataBlock& b : blocks) {
      for (KeyFragment& f : b.mutable_fragments()) {
        const uint32_t* n = appearances.Find(f.key);
        if (n != nullptr && *n > 1) {
          f.split = true;
        }
      }
    }
    appearances.ForEach([&split](KeyId, uint32_t n) {
      if (n > 1) ++split;
    });
    return split;
  }
};

}  // namespace prompt
