// DataBlock: the unit of Map-stage parallelism.
#pragma once

#include <cstdint>
#include <vector>

#include "common/flat_map.h"
#include "model/tuple.h"

namespace prompt {

/// \brief One partition of a micro-batch, processed by exactly one Map task.
///
/// A block carries its tuples plus a per-key summary (the block "reference
/// table" of §5): fragment counts and split flags. Batching-phase
/// partitioners produce blocks; the scheduler hands each to a Map task.
class DataBlock {
 public:
  DataBlock() = default;
  explicit DataBlock(uint32_t block_id) : block_id_(block_id) {}

  uint32_t block_id() const { return block_id_; }
  void set_block_id(uint32_t id) { block_id_ = id; }

  /// Number of tuples (the |block| of Eqn. 2).
  uint64_t size() const { return tuples_.size(); }
  /// Number of distinct keys (the ||block|| of Eqn. 4).
  uint64_t cardinality() const { return fragments_.size(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>& mutable_tuples() { return tuples_; }

  /// Per-key fragments; valid after Finalize() (or for blocks built directly
  /// from a partition plan).
  const std::vector<KeyFragment>& fragments() const { return fragments_; }
  std::vector<KeyFragment>& mutable_fragments() { return fragments_; }

  /// Appends a tuple (online partitioners build blocks tuple-at-a-time).
  void Append(const Tuple& t) { tuples_.push_back(t); }

  /// Computes the per-key fragment summary from the stored tuples. Online
  /// partitioners call this once at batch seal; plan-driven construction
  /// (Prompt) fills fragments_ directly instead.
  void Finalize() {
    FlatMap<uint64_t> counts(tuples_.size() / 2 + 8);
    for (const Tuple& t : tuples_) ++counts.GetOrInsert(t.key);
    fragments_.clear();
    fragments_.reserve(counts.size());
    counts.ForEach([this](KeyId k, uint64_t c) {
      fragments_.push_back(KeyFragment{k, c, false});
    });
  }

  /// Marks the given key split (present in other blocks too).
  void MarkSplit(KeyId key) {
    for (auto& f : fragments_) {
      if (f.key == key) {
        f.split = true;
        return;
      }
    }
  }

 private:
  uint32_t block_id_ = 0;
  std::vector<Tuple> tuples_;
  std::vector<KeyFragment> fragments_;
};

}  // namespace prompt
