// Streaming query definition: a Map-Reduce computation applied to every
// micro-batch, with windowed aggregation over batch outputs (paper §2.1).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "model/tuple.h"

namespace prompt {

/// \brief One intermediate (key, value) pair emitted by the Map stage.
struct KV {
  KeyId key = 0;
  double value = 0.0;
};

/// \brief User Map function: Map(k, v) -> list of (k', v').
class MapFunction {
 public:
  virtual ~MapFunction() = default;
  virtual void Map(const Tuple& t, std::vector<KV>* out) const = 0;
};

/// \brief Associative, commutative Reduce, optionally with an inverse for
/// incremental window retraction (paper Fig. 3: expired batches are
/// subtracted from the window answer instead of recomputing it).
class ReduceFunction {
 public:
  virtual ~ReduceFunction() = default;
  virtual double Identity() const = 0;
  virtual double Combine(double a, double b) const = 0;
  /// True when Inverse() is exact. Non-invertible aggregates (MIN/MAX) make
  /// the window fall back to recomputation over the in-window batches —
  /// the "redundant recalculation" the paper's inverse functions avoid.
  virtual bool invertible() const { return true; }
  /// Removes `expired` from `aggregate` (the inverse Reduce of [43]).
  /// Only called when invertible() is true.
  virtual double Inverse(double aggregate, double expired) const = 0;
};

/// \brief Map stage of WordCount-style queries: emit (key, 1).
class CountMap final : public MapFunction {
 public:
  void Map(const Tuple& t, std::vector<KV>* out) const override {
    out->push_back(KV{t.key, 1.0});
  }
};

/// \brief Map stage of per-key SUM queries: emit (key, value).
class ValueMap final : public MapFunction {
 public:
  void Map(const Tuple& t, std::vector<KV>* out) const override {
    out->push_back(KV{t.key, t.value});
  }
};

/// \brief Map stage applying a filter predicate before emitting (key, value).
class FilterMap final : public MapFunction {
 public:
  explicit FilterMap(std::function<bool(const Tuple&)> pred)
      : pred_(std::move(pred)) {}
  void Map(const Tuple& t, std::vector<KV>* out) const override {
    if (pred_(t)) out->push_back(KV{t.key, t.value});
  }

 private:
  std::function<bool(const Tuple&)> pred_;
};

/// \brief SUM / COUNT aggregation with subtraction as the inverse.
class SumReduce final : public ReduceFunction {
 public:
  double Identity() const override { return 0.0; }
  double Combine(double a, double b) const override { return a + b; }
  double Inverse(double aggregate, double expired) const override {
    return aggregate - expired;
  }
};

/// \brief Per-key MAX. Not invertible: windows recompute on expiry.
class MaxReduce final : public ReduceFunction {
 public:
  double Identity() const override {
    return -std::numeric_limits<double>::infinity();
  }
  double Combine(double a, double b) const override {
    return a > b ? a : b;
  }
  bool invertible() const override { return false; }
  double Inverse(double aggregate, double) const override {
    return aggregate;  // unreachable; windows recompute instead
  }
};

/// \brief Per-key MIN. Not invertible: windows recompute on expiry.
class MinReduce final : public ReduceFunction {
 public:
  double Identity() const override {
    return std::numeric_limits<double>::infinity();
  }
  double Combine(double a, double b) const override {
    return a < b ? a : b;
  }
  bool invertible() const override { return false; }
  double Inverse(double aggregate, double) const override {
    return aggregate;
  }
};

/// \brief A compiled streaming query: Map + Reduce + window geometry.
///
/// The window is expressed in batches (paper Fig. 3): `window_batches`
/// consecutive batch outputs constitute the query answer; the slide is one
/// batch (every heartbeat produces an updated answer).
struct JobSpec {
  std::shared_ptr<MapFunction> map = std::make_shared<CountMap>();
  std::shared_ptr<ReduceFunction> reduce = std::make_shared<SumReduce>();
  uint32_t window_batches = 10;

  static JobSpec WordCount(uint32_t window_batches = 10) {
    JobSpec job;
    job.map = std::make_shared<CountMap>();
    job.reduce = std::make_shared<SumReduce>();
    job.window_batches = window_batches;
    return job;
  }

  static JobSpec KeyedSum(uint32_t window_batches = 10) {
    JobSpec job;
    job.map = std::make_shared<ValueMap>();
    job.reduce = std::make_shared<SumReduce>();
    job.window_batches = window_batches;
    return job;
  }
};

}  // namespace prompt
