// The stream data model: tuples, key fragments, data blocks, micro-batches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"

namespace prompt {

/// Dictionary-encoded partitioning key. Sources with textual keys (words,
/// taxi medallions) intern strings into KeyIds once at ingestion.
using KeyId = uint64_t;

/// \brief One stream tuple: `(timestamp, key, value)` per the paper's schema.
///
/// Timestamps are assigned by the originating source and arrive in
/// non-decreasing order (paper §2.1 assumption 1).
struct Tuple {
  TimeMicros ts = 0;
  KeyId key = 0;
  double value = 0.0;
};

static_assert(sizeof(Tuple) == 24, "Tuple should stay a compact POD");

/// \brief Per-block summary of one key: how many of its tuples landed in the
/// block and whether the key also appears in other blocks of the same batch.
struct KeyFragment {
  KeyId key = 0;
  uint64_t count = 0;
  /// True when this key is split across 2+ blocks of the batch. Map tasks use
  /// this "reference table" bit to route split keys by hashing (Alg. 3).
  bool split = false;
};

}  // namespace prompt
