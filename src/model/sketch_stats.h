// Sketch-mode (heavy-hitter ingest) batch telemetry, shared by the
// accumulator layer that produces it and the partitioned-batch model that
// carries it to the engine's observability stack.
#pragma once

#include <cstdint>

namespace prompt {

/// \brief Heavy-hitter mode telemetry for one batch. `sketch_mode` is false
/// (and the rest zero) when the batch came from an exact accumulator.
struct SketchBatchStats {
  bool sketch_mode = false;
  uint64_t head_tuples = 0;        ///< tuples chained under exact key runs
  uint64_t tail_tuples = 0;        ///< tuples flowing through tail buckets
  uint64_t tracked_keys = 0;       ///< live Space-Saving counters at seal
  uint64_t promoted_keys = 0;      ///< keys holding exact state
  uint64_t min_count = 0;          ///< sketch floor: max untracked frequency
  uint64_t distinct_estimate = 0;  ///< HyperLogLog estimate of distinct keys
  double error_frac = 0.0;         ///< sketch over-estimate mass / batch tuples

  /// Fraction of the batch's tuples covered by exact key runs.
  double head_coverage() const {
    const uint64_t n = head_tuples + tail_tuples;
    return n == 0 ? 0.0 : static_cast<double>(head_tuples) / n;
  }
};

}  // namespace prompt
