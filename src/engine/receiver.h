// Stream receiver: the dedicated ingestion process of §2.1 ("dedicated
// processes are responsible for continuously receiving stream data tuples
// and for emitting a micro-batch at every heartbeat"). A producer thread
// pulls tuples from the source into a bounded queue — the queue bound is the
// receiver-side back-pressure — while the batching loop drains it into the
// partitioner and seals at each heartbeat, honouring Early Batch Release.
#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "common/queue.h"
#include "common/result.h"
#include "core/partitioner.h"
#include "ingest/pipeline.h"
#include "workload/source.h"

namespace prompt {

/// \brief Receiver configuration.
struct ReceiverOptions {
  TimeMicros batch_interval = Seconds(1);
  /// Early Batch Release slack (§4.2): the batching cut-off precedes the
  /// heartbeat by this fraction of the interval, giving the partitioner
  /// slack to run before processing must start.
  double early_release_frac = 0.05;
  /// Bound of the ingestion queue; a full queue blocks the producer
  /// (back-pressure toward the source).
  size_t queue_capacity = 64 * 1024;
  /// Batching-phase ingest configuration (src/ingest/). ingest.shards = 1
  /// keeps the seed's single-threaded path: the batching loop feeds the
  /// partitioner directly. > 1 routes tuples by hash(key) % shards to that
  /// many accumulator workers and k-way merges their runs at the cut-off;
  /// partitioners that support SealAccumulated (Prompt) consume the merged
  /// list directly, others have it replayed through OnTuple in quasi-sorted
  /// order.
  IngestOptions ingest;
};

/// \brief One sealed batch plus receiver-side accounting.
struct ReceivedBatch {
  PartitionedBatch batch;
  /// Lower bound on tuples that arrived during this batch's slack window
  /// and were deferred to the next batch (the cost of separating the
  /// batching cut-off from the processing cut-off).
  uint64_t deferred_tuples = 0;
};

/// \brief Threaded ingestion front-end.
///
/// Start() launches the producer thread; NextBatch() runs on the caller's
/// thread, draining the queue into the partitioner until the batch's
/// early-release cut-off and sealing the batch. Tuples between the cut-off
/// and the heartbeat stay queued for the next batch, exactly the Fig. 7
/// timeline.
class StreamReceiver {
 public:
  /// Neither pointer is owned; both must outlive the receiver.
  StreamReceiver(TupleSource* source, BatchPartitioner* partitioner,
                 ReceiverOptions options);
  ~StreamReceiver();
  PROMPT_DISALLOW_COPY_AND_ASSIGN(StreamReceiver);

  /// Launches the producer thread. May be called once.
  Status Start();

  /// Blocks until the current batch's cut-off has been ingested, then seals
  /// and returns it. Returns Cancelled after Stop().
  Result<ReceivedBatch> NextBatch(uint32_t num_blocks);

  /// Stops the producer and unblocks any pending NextBatch.
  void Stop();

  /// Tuples currently buffered between producer and batching loop.
  size_t queued() const { return queue_.size(); }

  uint64_t batches_emitted() const { return next_batch_id_; }

  /// Per-shard ingest observability for the last sealed batch; nullptr when
  /// running single-threaded (ingest.shards <= 1).
  const IngestMetrics* ingest_metrics() const {
    return pipeline_ != nullptr ? &pipeline_->last_metrics() : nullptr;
  }

 private:
  void ProducerLoop();
  /// Sharded-path batch body: routes to the pipeline, seals, merges and
  /// hands the merged batch to the partitioner.
  Result<ReceivedBatch> NextBatchSharded(uint32_t num_blocks,
                                         TimeMicros start, TimeMicros end,
                                         TimeMicros cutoff);

  TupleSource* source_;
  BatchPartitioner* partitioner_;
  ReceiverOptions options_;
  BlockingQueue<Tuple> queue_;
  std::unique_ptr<ParallelIngestPipeline> pipeline_;  // ingest.shards > 1
  std::thread producer_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  uint64_t next_batch_id_ = 0;
  TimeMicros next_start_ = 0;
  bool have_pending_ = false;
  Tuple pending_{};
  // Receiver-side EWMA estimates feeding the pipeline's shard budgets.
  bool est_init_ = false;
  double est_tuples_ = 0;
  double est_keys_ = 0;
};

}  // namespace prompt
