// Task scheduling over the simulated cluster's cores: computes stage
// makespans the way a Spark-style scheduler would fill free cores.
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.h"

namespace prompt {

/// \brief Completion profile of one stage (Map wave or Reduce wave).
struct StageSchedule {
  TimeMicros makespan = 0;
  /// Completion time of each task relative to stage start, in input order.
  std::vector<TimeMicros> completion;
};

/// \brief Schedules tasks with the given durations onto `cores` identical
/// cores using Longest-Processing-Time list scheduling (sort by decreasing
/// duration, always assign to the earliest-free core). With tasks <= cores
/// the makespan reduces to the max task duration — exactly the
/// `max MapTaskTime + max ReduceTaskTime` processing-time model of Eqn. 1.
StageSchedule ScheduleStage(const std::vector<TimeMicros>& durations,
                            uint32_t cores);

}  // namespace prompt
