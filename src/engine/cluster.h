// Simulated cluster: nodes × cores, replicated block placement, locality-
// aware stage scheduling, and node-failure injection. Models the EC2
// deployment of §7 and the batch-replication consistency story of §8.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/scheduler.h"
#include "model/batch.h"
#include "store/block_store.h"

namespace prompt {

/// \brief Cluster shape and data-placement policy.
struct ClusterOptions {
  uint32_t nodes = 4;
  uint32_t cores_per_node = 4;
  /// Copies kept of every data block (§8: "exactly-once semantics is
  /// guaranteed by initially replicating the input batch"). 1 = no fault
  /// tolerance.
  uint32_t replication_factor = 2;
  /// Cost multiplier for a Map task reading its block from a non-replica
  /// node (network transfer).
  double remote_read_penalty = 0.25;
};

/// \brief Where a block's replicas live. replicas[0] is the primary.
struct BlockPlacement {
  std::vector<uint32_t> replicas;
};

/// \brief Nodes, failures, and block placement.
class SimulatedCluster {
 public:
  explicit SimulatedCluster(ClusterOptions options);

  uint32_t nodes() const { return options_.nodes; }
  uint32_t cores_per_node() const { return options_.cores_per_node; }
  uint32_t alive_nodes() const;
  uint32_t total_alive_cores() const {
    return alive_nodes() * options_.cores_per_node;
  }
  const ClusterOptions& options() const { return options_; }

  bool alive(uint32_t node) const {
    return node < alive_.size() && alive_[node];
  }

  /// Fails a node: its memory (replica copies) is lost and its cores stop
  /// accepting tasks until Revive.
  Status KillNode(uint32_t node);
  Status ReviveNode(uint32_t node);

  /// Round-robin placement of `num_blocks` blocks with
  /// `replication_factor` distinct alive nodes each.
  Result<std::vector<BlockPlacement>> PlaceBlocks(uint32_t num_blocks) const;

  /// The first alive replica of a placement, or KeyError when every replica
  /// was lost (the batch is unrecoverable).
  Result<uint32_t> PreferredNode(const BlockPlacement& placement) const;

 private:
  ClusterOptions options_;
  std::vector<char> alive_;
};

/// \brief Locality-aware map-stage schedule.
struct LocalityStageResult {
  TimeMicros makespan = 0;
  std::vector<TimeMicros> completion;
  uint32_t remote_tasks = 0;  ///< tasks that paid the remote-read penalty
};

/// \brief Schedules map tasks over per-node core pools. Each task prefers a
/// node holding a replica of its block; it runs remotely (duration scaled by
/// 1 + remote_read_penalty) only when that finishes earlier than waiting for
/// a local core — Spark-style delay-scheduling in spirit.
LocalityStageResult ScheduleMapStageWithLocality(
    const std::vector<TimeMicros>& durations,
    const std::vector<BlockPlacement>& placements,
    const SimulatedCluster& cluster);

/// \brief Outcome of a replication top-up pass (recovery after node loss).
struct TopUpResult {
  uint32_t copies_added = 0;       ///< new replicas placed on alive nodes
  uint32_t bytes_copied = 0;       ///< total re-replication traffic
  uint32_t under_replicated = 0;   ///< batches still below the target factor
};

/// \brief Per-node in-memory store of serialized batches (§8 replication).
///
/// Write() encodes the batch once and places a copy on each replica node of
/// its placement set; KillNode on the cluster makes those copies
/// unreadable; Read() recovers the batch from any surviving replica.
class BatchStore {
 public:
  explicit BatchStore(const SimulatedCluster* cluster) : cluster_(cluster) {}

  /// Attaches the durable tier (non-owning). Every subsequent Write also
  /// appends to `durable` under `owner`; Read falls back to it when every
  /// memory replica is gone; Evict tombstones it. With a memory budget in
  /// `durable->options()`, over-budget nodes spill their oldest
  /// durably-stored copies to keep RAM bounded.
  void AttachDurable(DurableBlockStore* durable, uint32_t owner);

  /// Stores the batch on `replication_factor` alive nodes, degrading to
  /// however many are alive when the cluster is short (the batch is then
  /// under-replicated, not failed). Returns the number of copies placed;
  /// ResourceExhausted only when no node is alive.
  Result<uint32_t> Write(const PartitionedBatch& batch);

  /// Places memory copies of an already-durable batch WITHOUT re-appending
  /// to the durable log — the recovery path after a restart (the log
  /// already holds the record; re-putting it would double the segment).
  Result<uint32_t> Restore(const PartitionedBatch& batch);

  /// Recovers a batch from any alive replica, falling back to the durable
  /// tier when every memory copy is gone; KeyError if unknown,
  /// Unknown if every replica's node is dead and the disk has no copy.
  Result<PartitionedBatch> Read(uint64_t batch_id) const;

  /// Drops a batch's replicas everywhere (it expired from the window and is
  /// no longer needed for recovery — §8's garbage collection rule).
  void Evict(uint64_t batch_id);

  /// Permanently drops every copy held on `node` — the memory lost when the
  /// node's process dies. Reviving the node later restores scheduling
  /// capacity only, never these copies.
  void DropNode(uint32_t node);

  /// Copies of the batch currently readable (on alive nodes).
  uint32_t AliveReplicaCount(uint64_t batch_id) const;

  /// Batches with fewer than `replication_factor` readable copies.
  uint32_t UnderReplicatedCount(uint32_t replication_factor) const;

  /// Re-replicates every under-replicated batch back toward
  /// `replication_factor` using the surviving copies as sources — the §8
  /// recovery step after a node loss. Batches with zero readable copies are
  /// unrecoverable and stay lost (counted in `under_replicated`).
  TopUpResult TopUpReplication(uint32_t replication_factor);

  /// Total bytes held on the given node — O(1) from running counters that
  /// Write/Evict/DropNode/TopUpReplication keep balanced.
  size_t BytesOnNode(uint32_t node) const;

  /// Memory copies dropped by the spill policy on the latest Write.
  uint32_t last_spill_count() const { return last_spill_count_; }
  /// Serialized size of the batch most recently written or restored.
  size_t last_write_bytes() const { return last_write_bytes_; }
  /// Copies rebuilt from the durable tier by the latest TopUpReplication.
  uint32_t durable_rescues() const { return durable_rescues_; }

 private:
  /// Inserts/overwrites one copy, keeping bytes_on_node_ balanced.
  void PlaceCopy(uint64_t batch_id, uint32_t node, std::string bytes);
  /// Drops memory copies only (the durable record, if any, stays).
  void EvictMemory(uint64_t batch_id);
  /// Places `rf` copies of pre-encoded bytes (shared Write/Restore body).
  Result<uint32_t> PlaceReplicas(uint64_t batch_id, const std::string& bytes);
  /// Evicts oldest durably-stored copies from nodes over the memory budget.
  void SpillOverBudget(uint64_t just_written);
  size_t& NodeBytes(uint32_t node);

  const SimulatedCluster* cluster_;
  // batch id -> (node -> serialized copy). Copies on dead nodes stay until
  // DropNode, mirroring memory lost with the process (unreadable meanwhile).
  std::map<uint64_t, std::map<uint32_t, std::string>> replicas_;
  std::vector<size_t> bytes_on_node_;
  DurableBlockStore* durable_ = nullptr;  ///< non-owning; null = memory-only
  uint32_t owner_ = 0;
  uint32_t last_spill_count_ = 0;
  uint32_t durable_rescues_ = 0;
  size_t last_write_bytes_ = 0;
};

}  // namespace prompt
