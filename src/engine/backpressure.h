// Back-pressure probe: finds the maximum sustainable ingestion rate — the
// paper's throughput metric ("the triggering of Spark Streaming's
// back-pressure is used to report the maximum throughput achieved", §7.2).
#pragma once

#include <functional>

#include "engine/engine.h"

namespace prompt {

/// \brief Stability criterion parameters.
struct StabilityCriteria {
  /// Batches ignored at the start of a run (system warm-up, §7 measure 4).
  size_t warmup_batches = 5;
  /// Mean W = processing/interval over the measured batches must not exceed
  /// this (1.0 = the stability line of Fig. 9a).
  double max_mean_w = 1.0;
  /// The pipeline must have caught up by the end: final queueing delay at
  /// most this fraction of the batch interval.
  double max_final_queue_frac = 0.5;
};

/// \brief True when the run kept processing time within the batch interval
/// without accumulating queued batches.
bool IsStableRun(const RunSummary& summary, TimeMicros batch_interval,
                 const StabilityCriteria& criteria = {});

/// \brief Binary-searches the highest offered rate (tuples/sec) for which
/// `run_at_rate` reports a stable run. The callback builds a fresh
/// source+engine at the given mean rate and returns its RunSummary.
///
/// Stability is monotone in offered load under a fixed configuration, so
/// `iterations` bisection steps give lo-hi resolution of
/// (hi - lo) / 2^iterations.
double FindMaxSustainableRate(
    const std::function<RunSummary(double rate)>& run_at_rate,
    TimeMicros batch_interval, double lo_rate, double hi_rate,
    int iterations = 12, const StabilityCriteria& criteria = {});

}  // namespace prompt
