// MicroBatchEngine: the distributed micro-batch stream-processing substrate
// (a from-scratch Spark-Streaming-style engine) that hosts the partitioning
// techniques under test.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "adapt/adaptive_controller.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/elastic_controller.h"
#include "engine/batch_resizer.h"
#include "engine/cluster.h"
#include "core/partitioner.h"
#include "core/reduce_allocator.h"
#include "engine/execution.h"
#include "engine/window.h"
#include "fault/fault_injector.h"
#include "ingest/pipeline.h"
#include "obs/batch_report.h"
#include "obs/observability.h"
#include "replay/journal.h"
#include "stats/metrics.h"
#include "tenant/query_context.h"
#include "workload/source.h"

namespace prompt {

/// \brief Engine configuration.
struct EngineOptions {
  /// Heartbeat period; fixed per run to honor the application's latency SLA
  /// (the paper's design constraint 1).
  TimeMicros batch_interval = Seconds(1);
  /// Initial Map parallelism = number of data blocks per batch (the paper
  /// bounds blocks by available cores).
  uint32_t map_tasks = 8;
  uint32_t reduce_tasks = 8;
  /// Simulated processing cores available to the scheduler.
  uint32_t cores = 8;
  /// When true (elasticity experiments), each stage gets as many cores as it
  /// has tasks — resources are "available on-demand" (§3.1 constraint 2).
  bool cores_track_tasks = false;
  /// Early Batch Release slack as a fraction of the interval (§4.2, ≤5%).
  double early_release_frac = 0.05;
  CostModelParams cost;
  ExecutionMode mode = ExecutionMode::kSimulated;
  /// Alg. 3 Worst-Fit Reduce allocation (true) vs conventional hashing.
  bool use_prompt_reduce = true;
  bool elasticity_enabled = false;
  ElasticityOptions elasticity;
  /// Drift-aware adaptive technique switching (src/adapt/): when
  /// adapt.enabled, the engine feeds each batch's report + autopsy verdict
  /// to an AdaptivePartitionController and swaps the live partitioner
  /// across adapt.candidates between heartbeats. The run's initial
  /// partitioner must map to a factory type in the candidate set (the
  /// engine warns and runs static otherwise).
  AdaptiveOptions adapt;
  /// Observability configuration: partition-quality metrics, the metrics
  /// registry, per-batch structured traces and their sinks (src/obs/).
  ObservabilityOptions obs;
  /// Deterministic fault injection + in-loop recovery (src/fault/): a seeded
  /// schedule of node kills/revives and task delays/failures polled at stage
  /// boundaries, plus the retry/speculation policies applied when they fire.
  FaultOptions faults;
  /// §8 consistency: replicate each batch's input blocks so a failed batch
  /// can be recomputed exactly-once.
  bool replicate_input = false;
  /// Run over a simulated multi-node cluster instead of a flat core pool:
  /// replicated block placement, locality-aware Map scheduling, per-node
  /// batch replicas, node-failure injection (KillNode).
  bool cluster_enabled = false;
  ClusterOptions cluster;
  /// Durable block store (src/store/): when store.dir is set the engine
  /// opens an append-only segment log under it, every sealed batch is
  /// logged before any stage runs, and a fresh engine over the same dir
  /// recovers the surviving in-window batches on construction. Implies
  /// cluster mode (the store backs the §8 BatchStore).
  StoreOptions store;
  /// Flight recorder (src/replay/): when journal.dir is set the engine
  /// records everything needed to reproduce this run bit-identically — the
  /// consumed tuple stream, per-batch outcome fingerprints, wall-clock
  /// inputs, fault firings, adaptive switches and the effective options
  /// manifest. journal.inject carries a recorded run's wall-clock inputs
  /// back in during --replay.
  JournalOptions journal;
  /// Adaptive batch resizing (Das et al. [12]) — a comparison baseline that
  /// grows/shrinks the batch interval instead of fixing it. Mutually
  /// exclusive with elasticity in experiments (the paper contrasts them).
  bool batch_resizing_enabled = false;
  BatchResizerOptions batch_resizer;
  /// Declare the run unstable once queueing delay exceeds this many
  /// intervals (back-pressure would have engaged).
  double unstable_queue_intervals = 8.0;
  /// Batching-phase ingest configuration (shard count, ring capacity,
  /// accumulator kind, Alg. 1 tuning): see IngestOptions in
  /// ingest/pipeline.h. ingest.shards = 1 keeps the seed's single-threaded
  /// path (source drained straight into the partitioner); > 1 routes tuples
  /// by hash(key) % shards to that many accumulator workers and k-way
  /// merges at the cut-off.
  IngestOptions ingest;
  /// DEPRECATED — pre-grouping aliases of ingest.shards and
  /// ingest.ring_capacity, honored (with a warning) for one release: a flat
  /// field moved off its default wins over an untouched grouped field. See
  /// MergeDeprecatedIngestAliases().
  uint32_t ingest_shards = 1;
  size_t ingest_ring_capacity = 16 * 1024;
};

/// Folds the deprecated flat ingest fields of EngineOptions into
/// opts->ingest, logging a deprecation warning for each one that diverges
/// from its default while the grouped field was left untouched (grouped
/// settings always win otherwise). The engine constructor applies this to
/// its options copy; exposed for the alias-merge tests.
void MergeDeprecatedIngestAliases(EngineOptions* opts);

// BatchReport — the per-batch observability record — lives in
// obs/batch_report.h so report writers and sinks don't depend on the engine.

/// \brief Summary over a run.
struct RunSummary {
  std::vector<BatchReport> batches;
  bool stable = true;
  /// First batch id at which the queue exceeded the instability bound
  /// (UINT64_MAX when the run stayed stable).
  uint64_t unstable_at_batch = UINT64_MAX;

  // ---- Fault-tolerance aggregates over the run (sums of the per-batch
  // BatchReport recovery fields; zeros on a failure-free run).
  uint64_t batches_replayed = 0;
  uint64_t tasks_retried = 0;
  uint64_t tasks_speculated = 0;
  /// Node losses detected and handled inside the run loop.
  uint64_t failures_recovered = 0;
  TimeMicros total_recovery_time = 0;
  /// Worst single-batch recovery latency (the §8 recovery-latency metric).
  TimeMicros max_recovery_time = 0;
  /// True when any batch needed a replica that no longer existed
  /// (replication factor too low): exactly-once was not preserved.
  bool data_loss = false;

  /// A `crash:` fault fired: the run stopped at `crashed_at_batch` and the
  /// durable store dropped its unsynced tail (reopen the dir to recover).
  bool crashed = false;
  uint64_t crashed_at_batch = UINT64_MAX;

  // ---- Adaptive technique switching (src/adapt/), zeros on static runs.
  struct TechniqueSwitch {
    uint64_t after_batch;  ///< switch decided after this batch completed
    PartitionerType from;
    PartitionerType to;
    std::string reason;  ///< "skew" (escalation) or "calm" (de-escalation)
  };
  std::vector<TechniqueSwitch> technique_switches;
  uint64_t technique_switches_up = 0;    ///< escalations toward robustness
  uint64_t technique_switches_down = 0;  ///< de-escalations toward cheapness

  double MeanW(size_t warmup = 0) const;
  double MeanThroughputTuplesPerSec(TimeMicros interval,
                                    size_t warmup = 0) const;
};

/// \brief Ties together source → partitioner → executor → window, repeating
/// the batching/processing pipeline with batching of batch x+1 overlapped
/// with processing of batch x (paper Fig. 2).
class MicroBatchEngine {
 public:
  /// \param source not owned; must outlive the engine.
  MicroBatchEngine(EngineOptions options, JobSpec job,
                   std::unique_ptr<BatchPartitioner> partitioner,
                   TupleSource* source);
  ~MicroBatchEngine();
  PROMPT_DISALLOW_COPY_AND_ASSIGN(MicroBatchEngine);

  /// Runs `num_batches` batch intervals and returns per-batch reports.
  /// Callable repeatedly; state (window, clock, queue) carries over.
  RunSummary Run(uint32_t num_batches);

  /// Current windowed query answer. Checkpoint() is available through this
  /// reference; restoring goes through RestoreWindow below.
  const WindowState& window() const { return *query_->window; }

  /// Replaces the window state from a WindowState::Checkpoint() blob (e.g.
  /// on planned restart). The checkpoint's window geometry must match.
  Status RestoreWindow(const std::string& checkpoint) {
    return query_->window->Restore(checkpoint);
  }

  /// Registers an additional streaming query sharing this engine's batching
  /// phase: the same partitioned blocks feed every query's Map/Reduce
  /// pipeline sequentially (key-based partitioning is query-agnostic, so
  /// batching work is done once). Must be called before the first Run.
  /// Returns an id for QueryWindow().
  Result<size_t> AddQuery(JobSpec job);

  /// Windowed answer of an extra query registered with AddQuery.
  Result<const WindowState*> QueryWindow(size_t query_id) const;

  /// Current parallelism (after any elastic scaling).
  uint32_t map_tasks() const { return query_->map_tasks; }
  uint32_t reduce_tasks() const { return query_->reduce_tasks; }

  /// The per-query state bag this engine drives (the single-tenant fast
  /// path: exactly one context, built in the constructor).
  const QueryContext& query_context() const { return *query_; }

  /// §8 fault tolerance: recomputes the most recent batch from its
  /// replicated input blocks and verifies the recomputed output matches the
  /// original (exactly-once at batch granularity). Requires
  /// options.replicate_input. In cluster mode the recomputation is costed
  /// over the cluster's *currently alive* cores, not the configured total.
  Status VerifyRecoveryOfLastBatch();

  /// Virtual cost of the last VerifyRecoveryOfLastBatch recomputation
  /// (map + reduce makespans on the surviving cores). 0 before first call.
  TimeMicros last_verify_recovery_cost() const {
    return last_verify_recovery_cost_;
  }

  // ---- Cluster mode (options.cluster_enabled) ----

  /// Injects a node failure / recovery into the simulated cluster.
  Status KillNode(uint32_t node);
  Status ReviveNode(uint32_t node);

  /// Recomputes a batch's per-key output from the replicas surviving in the
  /// BatchStore — the §8 recovery path after losing a batch's state.
  /// KeyError if the batch already expired from the store; Unknown when all
  /// replicas died with their nodes.
  Result<std::vector<KV>> RecomputeBatchFromStore(uint64_t batch_id);

  const SimulatedCluster* cluster() const { return cluster_.get(); }
  const BatchStore* store() const { return store_.get(); }

  // ---- Durable store (options.store.dir non-empty) ----

  /// What the constructor recovered from the store directory.
  struct DurableRecovery {
    /// In-window batches decoded, re-executed and re-admitted to the window.
    uint64_t batches_recovered = 0;
    uint64_t first_recovered_batch = UINT64_MAX;
    uint64_t last_recovered_batch = 0;
    /// Torn-tail records truncated away during the segment scan.
    uint64_t torn_records = 0;
    /// True when the log showed evidence of dropped writes (torn tail):
    /// the recovered window is complete only up to the fsync watermark.
    bool data_loss = false;
  };
  const DurableRecovery& durable_recovery() const { return durable_recovery_; }
  const DurableBlockStore* durable_store() const { return durable_.get(); }

  /// The flight recorder (null unless options.journal.dir is set).
  const JournalWriter* journal() const { return journal_.get(); }

  /// Not-OK when the constructor could not deliver something the options
  /// demanded — today: a requested durable store that failed to open (the
  /// engine then runs memory-only and data_loss is set). Callers that rely
  /// on durability must check this before the first Run.
  const Status& init_status() const { return init_status_; }

  /// True once a `crash:` fault fired; the engine refuses further Runs
  /// (build a fresh engine over the same store dir to model the restart).
  bool crashed() const { return crashed_; }

  const EngineOptions& options() const { return options_; }

  /// The engine's observability stack (registry, trace recorder, sinks).
  /// Configure through EngineOptions::obs; attach extra sinks/observers
  /// before the first Run.
  Observability* observability() { return obs_.get(); }
  const Observability* observability() const { return obs_.get(); }

  /// Fan-out shortcut for observability()->AddObserver.
  void AddObserver(Observer* observer) { obs_->AddObserver(observer); }

 private:
  BatchReport ProcessBatch(PartitionedBatch batch, TimeMicros interval);
  /// Lays the batch's timeline spans into the trace recorder (tracing only).
  void RecordBatchTrace(const BatchReport& report, TimeMicros interval,
                        TimeMicros batch_start);

  // ---- In-loop fault handling (src/fault/) ----
  /// Node ids currently alive (empty outside cluster mode).
  std::vector<uint32_t> AliveNodes() const;
  /// Deterministic alive node chosen to host a batch's reduce-bucket state.
  uint32_t PickStateNode(uint64_t batch_id) const;
  /// Applies the injector's kill/revive events scheduled at `point`; kills
  /// run the full §8 recovery routine. Returns true when a kill fired.
  bool PollFaults(uint64_t batch_id, FaultPoint point, BatchReport* report);
  /// §8 recovery after `node` died: drop its replica copies, replay
  /// in-window batches whose bucket state lived there, top up replication,
  /// and feed the reduced capacity to the elastic controller.
  void RecoverFromNodeLoss(uint32_t node, BatchReport* report);
  /// Re-executes one batch from surviving store replicas on the currently
  /// alive cores (input repacked to fit, Alg. 2 style). Charges the redo to
  /// report->recovery_time and counts it in batches_replayed.
  Result<BatchExecution> ReplayBatchFromStore(uint64_t batch_id,
                                              BatchReport* report);
  /// Re-replicates under-replicated batches toward the configured factor and
  /// charges the copy traffic to report->recovery_time.
  void TopUpStoreReplication(BatchReport* report);
  /// Injected per-task delays/failures for this batch: applies the bounded
  /// retry policy and speculative re-execution to the map-task costs.
  /// Returns true when some task exhausted its retry budget (the batch must
  /// be replayed from replicated input).
  bool ApplyTaskPerturbations(uint64_t batch_id, uint32_t map_cores,
                              BatchExecution* exec, BatchReport* report);

  EngineOptions options_;
  JobSpec job_;
  TupleSource* source_;
  /// All per-query mutable state: the live partitioner, window, elasticity /
  /// resizing / adaptive controllers, EWMA estimates, replication
  /// bookkeeping. The engine drives exactly one context; the multi-tenant
  /// scheduler (src/tenant/) drives N of them over one shared ingest.
  std::unique_ptr<QueryContext> query_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<SimulatedCluster> cluster_;
  std::unique_ptr<BatchStore> store_;
  std::unique_ptr<DurableBlockStore> durable_;
  std::unique_ptr<ParallelIngestPipeline> ingest_;  // ingest_shards > 1
  std::unique_ptr<Observability> obs_;

  // Extra queries sharing the batching phase (AddQuery).
  struct ExtraQuery {
    JobSpec job;
    std::unique_ptr<BatchExecutor> executor;
    std::unique_ptr<WindowState> window;
  };
  std::vector<ExtraQuery> extra_queries_;
  bool run_started_ = false;

  TimeMicros current_interval_ = 0;
  TimeMicros next_batch_start_ = 0;
  bool have_pending_ = false;
  Tuple pending_{};  ///< one-tuple lookahead across batch boundaries

  TimeMicros last_verify_recovery_cost_ = 0;

  // ---- Fault-injection / recovery state (cluster mode) ----
  std::unique_ptr<FaultInjector> fault_;
  /// Nodes killed through the public KillNode API whose recovery runs at the
  /// next batch boundary (the engine's failure-detection point).
  std::vector<uint32_t> pending_node_losses_;

  /// Replays surviving batches from the durable log into the window (ctor).
  void RecoverFromDurableStore();

  // ---- Flight recorder (src/replay/) ----
  std::unique_ptr<JournalWriter> journal_;

  DurableRecovery durable_recovery_;
  Status init_status_;
  bool crashed_ = false;
  uint64_t crashed_at_batch_ = UINT64_MAX;
};

}  // namespace prompt
