// Forwarding header: the job definition lives in the data-model layer so
// substrates below the engine (workload catalogs) can reference it.
#pragma once

#include "model/job.h"
