// Binary serialization of sealed blocks and batches — the "seal and
// serialize the data blocks and place them on the memory of the cluster
// nodes" step of the paper's batching module (§7), and the representation
// the replication store (§8) keeps per node.
#pragma once

#include <string>

#include "common/result.h"
#include "model/batch.h"

namespace prompt {

/// \brief Appends the little-endian wire encoding of a block to `out`.
///
/// Layout: block_id, tuple count, fragment count, tuples (ts, key, value),
/// fragments (key, count, split).
void EncodeBlock(const DataBlock& block, std::string* out);

/// \brief Decodes one block starting at `*offset`; advances the offset.
Result<DataBlock> DecodeBlock(const std::string& bytes, size_t* offset);

/// \brief Encodes a whole partitioned batch (header + every block).
std::string EncodeBatch(const PartitionedBatch& batch);

/// \brief Decodes a batch; fails with Status::Invalid on truncation or a
/// corrupted header, and verifies the checksum of the payload.
Result<PartitionedBatch> DecodeBatch(const std::string& bytes);

}  // namespace prompt
