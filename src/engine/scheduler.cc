#include "engine/scheduler.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/macros.h"

namespace prompt {

StageSchedule ScheduleStage(const std::vector<TimeMicros>& durations,
                            uint32_t cores) {
  PROMPT_CHECK(cores >= 1);
  StageSchedule schedule;
  schedule.completion.assign(durations.size(), 0);
  if (durations.empty()) return schedule;

  std::vector<size_t> order(durations.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return durations[a] > durations[b];
  });

  // Min-heap of core free times.
  std::priority_queue<TimeMicros, std::vector<TimeMicros>,
                      std::greater<TimeMicros>>
      free_at;
  for (uint32_t c = 0; c < cores; ++c) free_at.push(0);

  for (size_t idx : order) {
    TimeMicros start = free_at.top();
    free_at.pop();
    TimeMicros end = start + durations[idx];
    schedule.completion[idx] = end;
    schedule.makespan = std::max(schedule.makespan, end);
    free_at.push(end);
  }
  return schedule;
}

}  // namespace prompt
