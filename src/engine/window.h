// Sliding-window query state over batch outputs (paper Fig. 3): the answer
// aggregates the last W batch outputs; expiring batches are subtracted via
// the inverse Reduce function instead of recomputation.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/job.h"

namespace prompt {

/// \brief Maintains the windowed query answer incrementally.
class WindowState {
 public:
  WindowState(std::shared_ptr<ReduceFunction> reduce, uint32_t window_batches)
      : reduce_(std::move(reduce)), window_batches_(window_batches) {}

  /// Folds one batch's per-key output into the window, expiring the oldest
  /// batch when the window is full. Invertible aggregates retract the
  /// expired batch with the inverse Reduce; non-invertible ones (MIN/MAX)
  /// recompute the window answer from the retained batch outputs.
  void AddBatch(std::vector<KV> batch_output) {
    const bool incremental = reduce_->invertible();
    if (incremental) {
      for (const KV& kv : batch_output) {
        auto [it, inserted] = result_.try_emplace(kv.key, reduce_->Identity());
        it->second = reduce_->Combine(it->second, kv.value);
      }
    }
    history_.push_back(std::move(batch_output));
    bool expired = false;
    if (history_.size() > window_batches_) {
      if (incremental) {
        for (const KV& kv : history_.front()) {
          auto it = result_.find(kv.key);
          if (it == result_.end()) continue;
          it->second = reduce_->Inverse(it->second, kv.value);
          if (it->second == reduce_->Identity()) result_.erase(it);
        }
      }
      history_.pop_front();
      expired = true;
    }
    if (!incremental) {
      // Recompute only when needed: before the window fills, folding the new
      // batch is enough; after an expiry the whole window is rebuilt.
      if (expired) {
        result_.clear();
        for (const auto& batch : history_) {
          for (const KV& kv : batch) {
            auto [it, inserted] =
                result_.try_emplace(kv.key, reduce_->Identity());
            it->second = reduce_->Combine(it->second, kv.value);
          }
        }
      } else {
        for (const KV& kv : history_.back()) {
          auto [it, inserted] =
              result_.try_emplace(kv.key, reduce_->Identity());
          it->second = reduce_->Combine(it->second, kv.value);
        }
      }
    }
  }

  /// Replaces the retained output of one in-window batch with a recomputed
  /// one (§8 replay after its bucket state died with a node). `index` counts
  /// from the oldest retained batch. The window answer is patched by
  /// retracting the old contribution and folding in the new one.
  Status ReplaceBatch(size_t index, std::vector<KV> batch_output) {
    if (index >= history_.size()) {
      return Status::OutOfRange("no batch at window index " +
                                std::to_string(index));
    }
    if (reduce_->invertible()) {
      for (const KV& kv : history_[index]) {
        auto it = result_.find(kv.key);
        if (it == result_.end()) continue;
        it->second = reduce_->Inverse(it->second, kv.value);
        if (it->second == reduce_->Identity()) result_.erase(it);
      }
      for (const KV& kv : batch_output) {
        auto [it, inserted] = result_.try_emplace(kv.key, reduce_->Identity());
        it->second = reduce_->Combine(it->second, kv.value);
      }
      history_[index] = std::move(batch_output);
    } else {
      history_[index] = std::move(batch_output);
      result_.clear();
      for (const auto& batch : history_) {
        for (const KV& kv : batch) {
          auto [it, inserted] = result_.try_emplace(kv.key, reduce_->Identity());
          it->second = reduce_->Combine(it->second, kv.value);
        }
      }
    }
    return Status::OK();
  }

  /// Current window answer: key -> aggregate over in-window batches.
  const std::unordered_map<KeyId, double>& Result() const { return result_; }

  /// Number of batches currently inside the window.
  size_t depth() const { return history_.size(); }

  uint32_t window_batches() const { return window_batches_; }

  /// Top-k keys by aggregate (TopKCount workload helper).
  std::vector<KV> TopK(size_t k) const;

  /// Serializes the retained batch outputs (the window's authoritative
  /// state — the result map is derivable). Restore() rebuilds both; §8
  /// keeps state recoverable by recomputation, and checkpointing the
  /// per-batch outputs shortcuts that for planned restarts.
  std::string Checkpoint() const;
  Status Restore(const std::string& bytes);

 private:
  std::shared_ptr<ReduceFunction> reduce_;
  uint32_t window_batches_;
  std::deque<std::vector<KV>> history_;
  std::unordered_map<KeyId, double> result_;
};

}  // namespace prompt
