#include "engine/receiver.h"

namespace prompt {

StreamReceiver::StreamReceiver(TupleSource* source,
                               BatchPartitioner* partitioner,
                               ReceiverOptions options)
    : source_(source),
      partitioner_(partitioner),
      options_(options),
      queue_(options.queue_capacity) {
  PROMPT_CHECK(source_ != nullptr);
  PROMPT_CHECK(partitioner_ != nullptr);
  PROMPT_CHECK(options_.batch_interval > 0);
  PROMPT_CHECK(options_.early_release_frac >= 0 &&
               options_.early_release_frac < 1);
  // Sketch mode requires the pipeline even at one shard: only the pipeline
  // swaps the accumulator kind, the partitioner's own stays exact.
  if (options_.ingest.shards > 1 ||
      options_.ingest.key_mode == KeyMode::kSketch) {
    pipeline_ = std::make_unique<ParallelIngestPipeline>(options_.ingest);
  }
}

StreamReceiver::~StreamReceiver() { Stop(); }

Status StreamReceiver::Start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) {
    return Status::Invalid("receiver already started");
  }
  producer_ = std::thread([this] { ProducerLoop(); });
  return Status::OK();
}

void StreamReceiver::ProducerLoop() {
  Tuple t;
  while (!stopped_.load(std::memory_order_relaxed) && source_->Next(&t)) {
    // Push blocks when the queue is full: ingestion back-pressure.
    if (!queue_.Push(t)) return;  // queue closed by Stop()
  }
  queue_.Close();
}

Result<ReceivedBatch> StreamReceiver::NextBatch(uint32_t num_blocks) {
  if (!started_.load()) return Status::Invalid("receiver not started");
  if (stopped_.load()) return Status::Cancelled("receiver stopped");

  const TimeMicros start = next_start_;
  const TimeMicros end = start + options_.batch_interval;
  next_start_ = end;
  // Early Batch Release: stop accumulating at the cut-off, not at the
  // heartbeat, so Seal() has the slack to run the partitioning algorithm.
  const TimeMicros cutoff =
      end - static_cast<TimeMicros>(options_.early_release_frac *
                                    static_cast<double>(options_.batch_interval));

  if (pipeline_ != nullptr) {
    return NextBatchSharded(num_blocks, start, end, cutoff);
  }

  partitioner_->Begin(num_blocks, start, end);
  uint64_t deferred = 0;

  if (have_pending_) {
    if (pending_.ts < cutoff) {
      partitioner_->OnTuple(pending_);
      have_pending_ = false;
    } else if (pending_.ts >= end) {
      // Still belongs to a future batch: emit an empty batch for this
      // interval without consuming it.
      ReceivedBatch out;
      out.batch = partitioner_->Seal(next_batch_id_++);
      return out;
    }
  }
  while (!have_pending_ || pending_.ts < end) {
    if (have_pending_ && pending_.ts >= cutoff) {
      // Arrived in the slack window: counts as deferred but still consumed
      // into the *next* batch, so hold it.
      ++deferred;
      break;
    }
    auto item = queue_.Pop();
    if (!item.has_value()) {
      // Source exhausted or Stop(): seal what we have.
      stopped_.store(true);
      break;
    }
    if (item->ts >= cutoff) {
      pending_ = *item;
      have_pending_ = true;
      if (item->ts >= cutoff && item->ts < end) {
        ++deferred;
      }
      break;
    }
    partitioner_->OnTuple(*item);
  }

  ReceivedBatch out;
  out.batch = partitioner_->Seal(next_batch_id_++);
  out.deferred_tuples = deferred;
  return out;
}

Result<ReceivedBatch> StreamReceiver::NextBatchSharded(uint32_t num_blocks,
                                                       TimeMicros start,
                                                       TimeMicros end,
                                                       TimeMicros cutoff) {
  partitioner_->Begin(num_blocks, start, end);
  pipeline_->BeginBatch(start, end);
  uint64_t deferred = 0;

  // Same drain loop as the single-threaded path, with the pipeline's shard
  // router as the sink. An already-pending future-batch tuple simply leaves
  // the pipeline batch empty; the seal/merge still runs so the per-batch
  // state machine stays in lockstep.
  bool drain = true;
  if (have_pending_) {
    if (pending_.ts < cutoff) {
      pipeline_->Ingest(pending_);
      have_pending_ = false;
    } else if (pending_.ts >= end) {
      drain = false;
    }
  }
  while (drain && (!have_pending_ || pending_.ts < end)) {
    if (have_pending_ && pending_.ts >= cutoff) {
      ++deferred;
      break;
    }
    auto item = queue_.Pop();
    if (!item.has_value()) {
      stopped_.store(true);
      break;
    }
    if (item->ts >= cutoff) {
      pending_ = *item;
      have_pending_ = true;
      if (item->ts < end) ++deferred;
      break;
    }
    pipeline_->Ingest(*item);
  }

  const AccumulatedBatch& merged = pipeline_->SealBatch();

  ReceivedBatch out;
  if (!partitioner_->SealAccumulated(merged, next_batch_id_, &out.batch)) {
    // Technique without a quasi-sorted fast path: replay the merged batch in
    // quasi-sorted order through the regular per-tuple interface. Online
    // techniques are order-insensitive apart from tie-breaking, so this
    // preserves their semantics.
    for (const SortedKeyRun& run : merged.keys()) {
      merged.ForEachTuple(run, 0, run.count,
                          [&](const Tuple& t) { partitioner_->OnTuple(t); });
    }
    // Sketch mode keeps tail tuples outside the run list — replay them too.
    for (const TailBucket& bucket : merged.tail()) {
      merged.ForEachTailTuple(
          bucket, [&](const Tuple& t) { partitioner_->OnTuple(t); });
    }
    out.batch = partitioner_->Seal(next_batch_id_);
  }
  ++next_batch_id_;
  out.deferred_tuples = deferred;

  // EWMA feedback for the per-shard Alg. 1 scaling (mirrors the engine's
  // alpha = 0.4 receiver estimates). In sketch mode num_keys() counts only
  // promoted head runs — feeding that back would collapse K_avg toward 1,
  // blow up the auto promote threshold (4 * N_est / K_avg) and lock the
  // sketch out of ever promoting again; the HLL estimate is the honest
  // cardinality signal there.
  constexpr double kAlpha = 0.4;
  const double tuples = static_cast<double>(merged.num_tuples());
  const double keys = static_cast<double>(
      merged.stats().sketch_mode
          ? std::max(merged.num_keys(), merged.stats().distinct_estimate)
          : merged.num_keys());
  if (!est_init_) {
    est_tuples_ = tuples;
    est_keys_ = keys;
    est_init_ = true;
  } else {
    est_tuples_ = kAlpha * tuples + (1 - kAlpha) * est_tuples_;
    est_keys_ = kAlpha * keys + (1 - kAlpha) * est_keys_;
  }
  pipeline_->UpdateEstimates(static_cast<uint64_t>(est_tuples_),
                             static_cast<uint64_t>(est_keys_));
  return out;
}

void StreamReceiver::Stop() {
  stopped_.store(true);
  queue_.Close();
  if (producer_.joinable()) producer_.join();
}

}  // namespace prompt
