#include "engine/receiver.h"

namespace prompt {

StreamReceiver::StreamReceiver(TupleSource* source,
                               BatchPartitioner* partitioner,
                               ReceiverOptions options)
    : source_(source),
      partitioner_(partitioner),
      options_(options),
      queue_(options.queue_capacity) {
  PROMPT_CHECK(source_ != nullptr);
  PROMPT_CHECK(partitioner_ != nullptr);
  PROMPT_CHECK(options_.batch_interval > 0);
  PROMPT_CHECK(options_.early_release_frac >= 0 &&
               options_.early_release_frac < 1);
}

StreamReceiver::~StreamReceiver() { Stop(); }

Status StreamReceiver::Start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) {
    return Status::Invalid("receiver already started");
  }
  producer_ = std::thread([this] { ProducerLoop(); });
  return Status::OK();
}

void StreamReceiver::ProducerLoop() {
  Tuple t;
  while (!stopped_.load(std::memory_order_relaxed) && source_->Next(&t)) {
    // Push blocks when the queue is full: ingestion back-pressure.
    if (!queue_.Push(t)) return;  // queue closed by Stop()
  }
  queue_.Close();
}

Result<ReceivedBatch> StreamReceiver::NextBatch(uint32_t num_blocks) {
  if (!started_.load()) return Status::Invalid("receiver not started");
  if (stopped_.load()) return Status::Cancelled("receiver stopped");

  const TimeMicros start = next_start_;
  const TimeMicros end = start + options_.batch_interval;
  next_start_ = end;
  // Early Batch Release: stop accumulating at the cut-off, not at the
  // heartbeat, so Seal() has the slack to run the partitioning algorithm.
  const TimeMicros cutoff =
      end - static_cast<TimeMicros>(options_.early_release_frac *
                                    static_cast<double>(options_.batch_interval));

  partitioner_->Begin(num_blocks, start, end);
  uint64_t deferred = 0;

  if (have_pending_) {
    if (pending_.ts < cutoff) {
      partitioner_->OnTuple(pending_);
      have_pending_ = false;
    } else if (pending_.ts >= end) {
      // Still belongs to a future batch: emit an empty batch for this
      // interval without consuming it.
      ReceivedBatch out;
      out.batch = partitioner_->Seal(next_batch_id_++);
      return out;
    }
  }
  while (!have_pending_ || pending_.ts < end) {
    if (have_pending_ && pending_.ts >= cutoff) {
      // Arrived in the slack window: counts as deferred but still consumed
      // into the *next* batch, so hold it.
      ++deferred;
      break;
    }
    auto item = queue_.Pop();
    if (!item.has_value()) {
      // Source exhausted or Stop(): seal what we have.
      stopped_.store(true);
      break;
    }
    if (item->ts >= cutoff) {
      pending_ = *item;
      have_pending_ = true;
      if (item->ts >= cutoff && item->ts < end) {
        ++deferred;
      }
      break;
    }
    partitioner_->OnTuple(*item);
  }

  ReceivedBatch out;
  out.batch = partitioner_->Seal(next_batch_id_++);
  out.deferred_tuples = deferred;
  return out;
}

void StreamReceiver::Stop() {
  stopped_.store(true);
  queue_.Close();
  if (producer_.joinable()) producer_.join();
}

}  // namespace prompt
