#include "engine/report_io.h"

#include <fstream>
#include <sstream>

#include "obs/observability.h"
#include "obs/sink.h"

namespace prompt {

namespace {
// The column set ReportRecord emits, in order. ReadReportsCsv validates
// against this string, and WriteReportsCsv emits it even for empty runs
// (CsvSink derives the header from the first record, so an empty report
// vector would otherwise produce an empty file).
constexpr const char* kHeader =
    "batch_id,interval_us,tuples,keys,map_tasks,reduce_tasks,"
    "partition_cost_us,map_makespan_us,reduce_makespan_us,processing_us,"
    "queue_us,latency_us,w,bsi,bci,ksr,mpi,reduce_bucket_bsi";
}  // namespace

void WriteReportsCsv(const std::vector<BatchReport>& reports,
                     std::ostream* out) {
  if (reports.empty()) {
    *out << kHeader << "\n";
    return;
  }
  CsvSink sink(out);
  for (const BatchReport& b : reports) sink.Write(ReportRecord(b));
}

Status WriteReportsCsvFile(const std::vector<BatchReport>& reports,
                           const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  WriteReportsCsv(reports, &file);
  file.flush();
  if (!file.good()) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

void WriteReportsJsonl(const std::vector<BatchReport>& reports,
                       std::ostream* out) {
  JsonlSink sink(out);
  for (const BatchReport& b : reports) sink.Write(ReportRecord(b));
}

Result<std::vector<BatchReport>> ReadReportsCsv(std::istream* in) {
  std::string line;
  if (!std::getline(*in, line) || line != kHeader) {
    return Status::Invalid("missing or unexpected CSV header");
  }
  std::vector<BatchReport> reports;
  size_t line_no = 1;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    std::vector<std::string> cells;
    while (std::getline(row, cell, ',')) cells.push_back(cell);
    if (cells.size() != 18) {
      return Status::Invalid("line " + std::to_string(line_no) + " has " +
                             std::to_string(cells.size()) +
                             " fields, expected 18");
    }
    try {
      BatchReport b;
      size_t i = 0;
      b.batch_id = std::stoull(cells[i++]);
      b.batch_interval = std::stoll(cells[i++]);
      b.num_tuples = std::stoull(cells[i++]);
      b.num_keys = std::stoull(cells[i++]);
      b.map_tasks = static_cast<uint32_t>(std::stoul(cells[i++]));
      b.reduce_tasks = static_cast<uint32_t>(std::stoul(cells[i++]));
      b.partition_cost = std::stoll(cells[i++]);
      b.map_makespan = std::stoll(cells[i++]);
      b.reduce_makespan = std::stoll(cells[i++]);
      b.processing_time = std::stoll(cells[i++]);
      b.queue_delay = std::stoll(cells[i++]);
      b.latency = std::stoll(cells[i++]);
      b.w = std::stod(cells[i++]);
      b.partition_metrics.bsi = std::stod(cells[i++]);
      b.partition_metrics.bci = std::stod(cells[i++]);
      b.partition_metrics.ksr = std::stod(cells[i++]);
      b.partition_metrics.mpi = std::stod(cells[i++]);
      b.reduce_bucket_bsi = std::stod(cells[i++]);
      reports.push_back(b);
    } catch (...) {
      return Status::Invalid("unparsable number on line " +
                             std::to_string(line_no));
    }
  }
  return reports;
}

}  // namespace prompt
