// Task-duration cost model for discrete-event execution. Calibrated so task
// time grows monotonically with input size (the paper's §3.2 premise) and so
// per-key / per-fragment overheads reproduce the aggregation costs that
// penalize locality-blind partitioners at the Reduce stage.
#pragma once

#include <cstdint>

#include "common/clock.h"
#include "model/block.h"

namespace prompt {

/// \brief Linear cost coefficients (microseconds). Defaults approximate a
/// JVM-era executor: ~0.5 µs of Map work per tuple, a per-distinct-key
/// cluster-management surcharge, a fixed task-launch overhead, and a
/// per-fragment merge surcharge on the Reduce side (intermediate results of
/// a key arriving from different Map tasks must be combined).
struct CostModelParams {
  double map_task_fixed_us = 2000;
  double map_per_tuple_us = 0.5;
  double map_per_key_us = 1.5;
  double reduce_task_fixed_us = 2000;
  double reduce_per_tuple_us = 0.35;
  double reduce_per_cluster_us = 1.5;
  /// Scales the measured batching-phase partitioning cost when charging it
  /// against the early-release slack (models slower production substrates).
  double partition_cost_scale = 1.0;
  /// Network cost of copying one KiB of replica data between nodes during
  /// re-replication after a node loss (§8 recovery traffic).
  double replicate_per_kib_us = 20.0;
};

/// \brief Input summary of one Reduce task.
struct ReduceTaskInput {
  uint64_t tuples = 0;    ///< total intermediate values routed to the bucket
  uint64_t clusters = 0;  ///< (map task, key) cluster pieces to merge
};

/// \brief Computes modeled task durations.
class CostModel {
 public:
  explicit CostModel(CostModelParams params = {}) : params_(params) {}

  TimeMicros MapTaskCost(uint64_t block_tuples, uint64_t block_keys) const {
    return static_cast<TimeMicros>(params_.map_task_fixed_us +
                                   params_.map_per_tuple_us *
                                       static_cast<double>(block_tuples) +
                                   params_.map_per_key_us *
                                       static_cast<double>(block_keys));
  }

  TimeMicros ReduceTaskCost(const ReduceTaskInput& input) const {
    return static_cast<TimeMicros>(
        params_.reduce_task_fixed_us +
        params_.reduce_per_tuple_us * static_cast<double>(input.tuples) +
        params_.reduce_per_cluster_us * static_cast<double>(input.clusters));
  }

  const CostModelParams& params() const { return params_; }

 private:
  CostModelParams params_;
};

}  // namespace prompt
