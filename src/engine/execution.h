// Batch execution: runs the Map stage over data blocks, routes intermediate
// key clusters to Reduce buckets (Alg. 3 or hashing), runs the Reduce stage,
// and reports both real outputs and modeled/measured task durations.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/reduce_allocator.h"
#include "engine/cost_model.h"
#include "engine/job.h"
#include "engine/scheduler.h"
#include "model/batch.h"
#include "obs/metrics_registry.h"

namespace prompt {

/// \brief How task durations are obtained.
enum class ExecutionMode {
  /// Durations come from the cost model; Map/Reduce logic still executes so
  /// query outputs are real, but timing is deterministic virtual time.
  kSimulated,
  /// Tasks run on a thread pool and durations are measured wall time.
  kReal,
};

/// \brief Map-side partial aggregate for one key (map-side clusters carry
/// the tuple count that defines their *size* in the paper's model, plus the
/// partially-combined value so Reduce output is exact).
struct MapCluster {
  KeyId key = 0;
  uint64_t size = 0;
  bool split = false;
  double partial = 0.0;
};

/// \brief Everything observable about one executed batch.
struct BatchExecution {
  TimeMicros map_makespan = 0;
  TimeMicros reduce_makespan = 0;
  std::vector<TimeMicros> map_task_costs;
  std::vector<TimeMicros> reduce_task_costs;
  /// Completion time of each reduce task relative to reduce-stage start
  /// (Fig. 13's per-batch reduce-completion spread).
  std::vector<TimeMicros> reduce_completions;
  std::vector<uint64_t> bucket_tuples;
  std::vector<uint64_t> bucket_clusters;
  /// Exact per-key aggregates of this batch (consumed by the window state).
  std::vector<KV> output;

  TimeMicros processing_time() const { return map_makespan + reduce_makespan; }
};

class ThreadPool;

/// \brief Executes micro-batches for a fixed job.
class BatchExecutor {
 public:
  /// \param allocator routes each Map task's clusters to Reduce buckets;
  ///        not owned. Pass a PromptReduceAllocator for Prompt's processing
  ///        phase or HashReduceAllocator for the conventional shuffle.
  BatchExecutor(JobSpec job, CostModel cost_model, ReduceAllocator* allocator,
                ExecutionMode mode);

  /// Runs the Map and Reduce stages of `batch` with `reduce_tasks` buckets
  /// on `cores` cores. The number of Map tasks equals batch.blocks.size().
  BatchExecution Execute(const PartitionedBatch& batch, uint32_t reduce_tasks,
                         uint32_t cores, ThreadPool* pool = nullptr);

  /// Publishes per-task cost distributions and stage counters into
  /// `registry`. nullptr disables (the default) — Execute then records
  /// nothing beyond the returned BatchExecution. `labels` is appended to
  /// every registered series (multi-tenant runs pass {{"tenant", id}}).
  void BindMetrics(MetricsRegistry* registry, const MetricLabels& labels = {});

  const JobSpec& job() const { return job_; }

 private:
  /// Runs the Map function over a block and groups output into clusters
  /// (same-key pairs, with split flags from the block reference table).
  std::vector<MapCluster> RunMapTask(const DataBlock& block) const;

  JobSpec job_;
  CostModel cost_model_;
  ReduceAllocator* allocator_;
  ExecutionMode mode_;

  // Optional instrumentation handles (all null or all set).
  Counter* map_tasks_total_ = nullptr;
  Counter* reduce_tasks_total_ = nullptr;
  HistogramMetric* map_task_cost_us_ = nullptr;
  HistogramMetric* reduce_task_cost_us_ = nullptr;
};

}  // namespace prompt
