#include "engine/cluster.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"
#include "engine/serde.h"

namespace prompt {

SimulatedCluster::SimulatedCluster(ClusterOptions options)
    : options_(options), alive_(options.nodes, 1) {
  PROMPT_CHECK(options.nodes >= 1);
  PROMPT_CHECK(options.cores_per_node >= 1);
  PROMPT_CHECK(options.replication_factor >= 1);
}

uint32_t SimulatedCluster::alive_nodes() const {
  uint32_t n = 0;
  for (char a : alive_) n += a ? 1 : 0;
  return n;
}

Status SimulatedCluster::KillNode(uint32_t node) {
  if (node >= alive_.size()) return Status::OutOfRange("no such node");
  if (!alive_[node]) return Status::Invalid("node already dead");
  alive_[node] = 0;
  return Status::OK();
}

Status SimulatedCluster::ReviveNode(uint32_t node) {
  if (node >= alive_.size()) return Status::OutOfRange("no such node");
  if (alive_[node]) return Status::Invalid("node already alive");
  alive_[node] = 1;
  return Status::OK();
}

Result<std::vector<BlockPlacement>> SimulatedCluster::PlaceBlocks(
    uint32_t num_blocks) const {
  std::vector<uint32_t> alive_ids;
  for (uint32_t n = 0; n < options_.nodes; ++n) {
    if (alive_[n]) alive_ids.push_back(n);
  }
  const uint32_t rf = std::min<uint32_t>(options_.replication_factor,
                                         static_cast<uint32_t>(alive_ids.size()));
  if (rf == 0) return Status::ResourceExhausted("no alive nodes to place on");

  std::vector<BlockPlacement> placements(num_blocks);
  for (uint32_t b = 0; b < num_blocks; ++b) {
    BlockPlacement& p = placements[b];
    p.replicas.reserve(rf);
    for (uint32_t r = 0; r < rf; ++r) {
      p.replicas.push_back(alive_ids[(b + r) % alive_ids.size()]);
    }
  }
  return placements;
}

Result<uint32_t> SimulatedCluster::PreferredNode(
    const BlockPlacement& placement) const {
  for (uint32_t node : placement.replicas) {
    if (alive(node)) return node;
  }
  return Status::KeyError("all replicas of the block were lost");
}

LocalityStageResult ScheduleMapStageWithLocality(
    const std::vector<TimeMicros>& durations,
    const std::vector<BlockPlacement>& placements,
    const SimulatedCluster& cluster) {
  PROMPT_CHECK(durations.size() == placements.size());
  LocalityStageResult result;
  result.completion.assign(durations.size(), 0);
  if (durations.empty()) return result;

  // Per-node min-heaps of core free times (dead nodes get no cores).
  std::vector<std::priority_queue<TimeMicros, std::vector<TimeMicros>,
                                  std::greater<TimeMicros>>>
      cores(cluster.nodes());
  for (uint32_t n = 0; n < cluster.nodes(); ++n) {
    if (!cluster.alive(n)) continue;
    for (uint32_t c = 0; c < cluster.cores_per_node(); ++c) cores[n].push(0);
  }

  std::vector<size_t> order(durations.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return durations[a] > durations[b];
  });

  const double penalty = cluster.options().remote_read_penalty;
  for (size_t idx : order) {
    // Earliest-finishing local (replica-holding) option.
    int best_local = -1;
    TimeMicros best_local_finish = 0;
    for (uint32_t n : placements[idx].replicas) {
      if (!cluster.alive(n) || cores[n].empty()) continue;
      TimeMicros finish = cores[n].top() + durations[idx];
      if (best_local < 0 || finish < best_local_finish) {
        best_local = static_cast<int>(n);
        best_local_finish = finish;
      }
    }
    // Earliest-finishing option anywhere, paying the remote penalty.
    int best_any = -1;
    TimeMicros best_any_finish = 0;
    const TimeMicros remote_cost = static_cast<TimeMicros>(
        static_cast<double>(durations[idx]) * (1.0 + penalty));
    for (uint32_t n = 0; n < cluster.nodes(); ++n) {
      if (!cluster.alive(n) || cores[n].empty()) continue;
      TimeMicros finish = cores[n].top() + remote_cost;
      if (best_any < 0 || finish < best_any_finish) {
        best_any = static_cast<int>(n);
        best_any_finish = finish;
      }
    }
    PROMPT_CHECK_MSG(best_local >= 0 || best_any >= 0,
                     "no alive cores in the cluster");

    uint32_t node;
    TimeMicros finish;
    if (best_local >= 0 &&
        (best_any < 0 || best_local_finish <= best_any_finish)) {
      node = static_cast<uint32_t>(best_local);
      finish = best_local_finish;
    } else {
      node = static_cast<uint32_t>(best_any);
      finish = best_any_finish;
      ++result.remote_tasks;
    }
    cores[node].pop();
    cores[node].push(finish);
    result.completion[idx] = finish;
    result.makespan = std::max(result.makespan, finish);
  }
  return result;
}

void BatchStore::AttachDurable(DurableBlockStore* durable, uint32_t owner) {
  durable_ = durable;
  owner_ = owner;
}

size_t& BatchStore::NodeBytes(uint32_t node) {
  if (bytes_on_node_.size() <= node) bytes_on_node_.resize(node + 1, 0);
  return bytes_on_node_[node];
}

void BatchStore::PlaceCopy(uint64_t batch_id, uint32_t node,
                           std::string bytes) {
  std::string& slot = replicas_[batch_id][node];
  size_t& counter = NodeBytes(node);
  counter -= slot.size();  // overwrite: retire the old copy's bytes first
  counter += bytes.size();
  slot = std::move(bytes);
}

Result<uint32_t> BatchStore::PlaceReplicas(uint64_t batch_id,
                                           const std::string& bytes) {
  std::vector<uint32_t> targets;
  for (uint32_t n = 0; n < cluster_->nodes(); ++n) {
    if (cluster_->alive(n)) targets.push_back(n);
  }
  if (targets.empty()) {
    return Status::ResourceExhausted("no alive nodes for replication");
  }
  // Degrade gracefully when the cluster is short of the target factor:
  // write to every alive node and let the caller see the reduced count.
  const uint32_t rf = std::min<uint32_t>(
      cluster_->options().replication_factor,
      static_cast<uint32_t>(targets.size()));
  EvictMemory(batch_id);  // a re-write replaces any previous copies wholesale
  // Spread replica sets by batch id so one failure doesn't hit every batch.
  const size_t start = batch_id % targets.size();
  for (uint32_t r = 0; r < rf; ++r) {
    PlaceCopy(batch_id, targets[(start + r) % targets.size()], bytes);
  }
  return rf;
}

Result<uint32_t> BatchStore::Write(const PartitionedBatch& batch) {
  const std::string bytes = EncodeBatch(batch);
  last_write_bytes_ = bytes.size();
  if (durable_ != nullptr) {
    // Durability first: once Put returns, a crash can lose at most the
    // fsync-policy window, regardless of what happens to the memory tier.
    PROMPT_RETURN_NOT_OK(durable_->Put(owner_, batch.batch_id, bytes));
  }
  PROMPT_ASSIGN_OR_RETURN(uint32_t rf, PlaceReplicas(batch.batch_id, bytes));
  SpillOverBudget(batch.batch_id);
  return rf;
}

Result<uint32_t> BatchStore::Restore(const PartitionedBatch& batch) {
  const std::string bytes = EncodeBatch(batch);
  last_write_bytes_ = bytes.size();
  PROMPT_ASSIGN_OR_RETURN(uint32_t rf, PlaceReplicas(batch.batch_id, bytes));
  SpillOverBudget(batch.batch_id);
  return rf;
}

void BatchStore::SpillOverBudget(uint64_t just_written) {
  last_spill_count_ = 0;
  if (durable_ == nullptr) return;
  const size_t budget = durable_->options().memory_budget_bytes;
  if (budget == 0) return;
  for (uint32_t node = 0; node < cluster_->nodes(); ++node) {
    if (BytesOnNode(node) <= budget) continue;
    // Oldest first (map order); only copies the log already holds are
    // droppable — spilling must never turn a durable batch into a lost one.
    for (auto it = replicas_.begin();
         it != replicas_.end() && BytesOnNode(node) > budget;) {
      if (it->first == just_written ||
          !durable_->Contains(owner_, it->first)) {
        ++it;
        continue;
      }
      auto copy = it->second.find(node);
      if (copy == it->second.end()) {
        ++it;
        continue;
      }
      NodeBytes(node) -= copy->second.size();
      it->second.erase(copy);
      ++last_spill_count_;
      it = it->second.empty() ? replicas_.erase(it) : std::next(it);
    }
  }
}

Result<PartitionedBatch> BatchStore::Read(uint64_t batch_id) const {
  auto it = replicas_.find(batch_id);
  if (it != replicas_.end()) {
    for (const auto& [node, bytes] : it->second) {
      if (cluster_->alive(node)) return DecodeBatch(bytes);
    }
  }
  if (durable_ != nullptr && durable_->Contains(owner_, batch_id)) {
    PROMPT_ASSIGN_OR_RETURN(std::string bytes,
                            durable_->Get(owner_, batch_id));
    return DecodeBatch(bytes);
  }
  if (it == replicas_.end()) {
    return Status::KeyError("batch " + std::to_string(batch_id) +
                            " not in the store");
  }
  return Status::Unknown("every replica of batch " + std::to_string(batch_id) +
                         " was lost");
}

void BatchStore::EvictMemory(uint64_t batch_id) {
  auto it = replicas_.find(batch_id);
  if (it == replicas_.end()) return;
  for (const auto& [node, bytes] : it->second) {
    NodeBytes(node) -= bytes.size();
  }
  replicas_.erase(it);
}

void BatchStore::Evict(uint64_t batch_id) {
  EvictMemory(batch_id);
  if (durable_ != nullptr) {
    if (Status st = durable_->Evict(owner_, batch_id); !st.ok()) {
      PROMPT_LOG(kWarn) << "durable evict of batch " << batch_id
                        << " failed: " << st.ToString();
    }
  }
}

void BatchStore::DropNode(uint32_t node) {
  for (auto it = replicas_.begin(); it != replicas_.end();) {
    auto copy = it->second.find(node);
    if (copy != it->second.end()) {
      NodeBytes(node) -= copy->second.size();
      it->second.erase(copy);
    }
    // Keep empty entries: the id is still known (and possibly on disk);
    // Read/TopUp decide whether it is recoverable.
    ++it;
  }
}

uint32_t BatchStore::AliveReplicaCount(uint64_t batch_id) const {
  auto it = replicas_.find(batch_id);
  if (it == replicas_.end()) return 0;
  uint32_t alive = 0;
  for (const auto& [node, bytes] : it->second) {
    if (cluster_->alive(node)) ++alive;
  }
  return alive;
}

uint32_t BatchStore::UnderReplicatedCount(uint32_t replication_factor) const {
  uint32_t count = 0;
  for (const auto& [id, copies] : replicas_) {
    if (AliveReplicaCount(id) < replication_factor) ++count;
  }
  return count;
}

TopUpResult BatchStore::TopUpReplication(uint32_t replication_factor) {
  TopUpResult result;
  durable_rescues_ = 0;  // per-call, like last_spill_count_ per Write
  std::vector<uint32_t> alive_ids;
  for (uint32_t n = 0; n < cluster_->nodes(); ++n) {
    if (cluster_->alive(n)) alive_ids.push_back(n);
  }
  const uint32_t target = std::min<uint32_t>(
      replication_factor, static_cast<uint32_t>(alive_ids.size()));
  for (auto& [id, copies] : replicas_) {
    std::string source;
    uint32_t alive_copies = 0;
    for (const auto& [node, bytes] : copies) {
      if (cluster_->alive(node)) {
        ++alive_copies;
        if (source.empty()) source = bytes;
      }
    }
    if (source.empty() && durable_ != nullptr &&
        durable_->Contains(owner_, id)) {
      // Every memory copy died with its node, but the log still has the
      // batch: rebuild the replica set from disk (rf=1 + durable tier is
      // what makes this rescue possible at all).
      if (auto bytes = durable_->Get(owner_, id); bytes.ok()) {
        source = std::move(bytes).ValueUnsafe();
        ++durable_rescues_;
      }
    }
    if (source.empty()) {
      // Every copy died with its node: unrecoverable, permanently lost.
      ++result.under_replicated;
      continue;
    }
    for (uint32_t n : alive_ids) {
      if (alive_copies >= target) break;
      if (copies.count(n) > 0 && cluster_->alive(n)) continue;
      PlaceCopy(id, n, source);
      ++alive_copies;
      ++result.copies_added;
      result.bytes_copied += static_cast<uint32_t>(source.size());
    }
    if (alive_copies < replication_factor) ++result.under_replicated;
  }
  return result;
}

size_t BatchStore::BytesOnNode(uint32_t node) const {
  return node < bytes_on_node_.size() ? bytes_on_node_[node] : 0;
}

}  // namespace prompt
