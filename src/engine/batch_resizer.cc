#include "engine/batch_resizer.h"

#include <algorithm>
#include <cmath>

namespace prompt {

TimeMicros BatchIntervalController::OnBatchCompleted(
    TimeMicros interval, TimeMicros processing_time) {
  // Input-domain guard: a degenerate interval (0, or anything outside the
  // controller's own bounds) previously reached `ratio = p / t` with t == 0
  // and pushed NaN through std::clamp into the returned interval. Clamp the
  // incoming interval into [min_interval, max_interval] (min_interval > 0 is
  // a constructor invariant) and processing time to >= 0 before any math.
  const double t = std::clamp(static_cast<double>(interval),
                              static_cast<double>(options_.min_interval),
                              static_cast<double>(options_.max_interval));
  const double p = std::max(0.0, static_cast<double>(processing_time));
  samples_.push_back(Sample{t, p});
  if (static_cast<int>(samples_.size()) > options_.lookback) {
    samples_.pop_front();
  }

  const double target = options_.target_ratio;
  // Shared fallback: multiplicative step from the observed ratio toward the
  // fixed point — desired = t * (p/t) / target = p / target. Covers too few
  // observations (n < 2), an ill-conditioned fit (near-zero interval
  // variance, e.g. a constant-interval window), and the degenerate b <= 0
  // fit, which all want the same step.
  double desired = p / target;

  // Least squares proc = a*T + b over the lookback window.
  const size_t n = samples_.size();
  double sum_t = 0, sum_p = 0, sum_tt = 0, sum_tp = 0;
  for (const Sample& s : samples_) {
    sum_t += s.interval;
    sum_p += s.processing;
    sum_tt += s.interval * s.interval;
    sum_tp += s.interval * s.processing;
  }
  const double denom = static_cast<double>(n) * sum_tt - sum_t * sum_t;
  if (n >= 2 && std::abs(denom) > 1e-3 * sum_tt) {
    const double a = (static_cast<double>(n) * sum_tp - sum_t * sum_p) / denom;
    const double b = (sum_p - a * sum_t) / static_cast<double>(n);
    if (a < target && b > 0) {
      // Fixed point of a*T + b = target*T.
      desired = b / (target - a);
    } else if (a >= target) {
      // Per-interval work rate alone exceeds the target: no interval can
      // satisfy it (the system is overloaded); grow toward the max.
      desired = static_cast<double>(options_.max_interval);
    }
    // else b <= 0: keep the shared ratio-step fallback.
  }
  // Belt and braces: any non-finite step ("hold") keeps the current
  // interval — the controller must never emit NaN/inf downstream.
  if (!std::isfinite(desired)) desired = t;

  const double stepped = t + options_.gain * (desired - t);
  const double clamped =
      std::clamp(stepped, static_cast<double>(options_.min_interval),
                 static_cast<double>(options_.max_interval));
  return static_cast<TimeMicros>(clamped);
}

}  // namespace prompt
