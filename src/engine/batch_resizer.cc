#include "engine/batch_resizer.h"

#include <algorithm>
#include <cmath>

namespace prompt {

TimeMicros BatchIntervalController::OnBatchCompleted(
    TimeMicros interval, TimeMicros processing_time) {
  samples_.push_back(Sample{static_cast<double>(interval),
                            static_cast<double>(processing_time)});
  if (static_cast<int>(samples_.size()) > options_.lookback) {
    samples_.pop_front();
  }

  const double t = static_cast<double>(interval);
  const double target = options_.target_ratio;
  double desired;

  // Least squares proc = a*T + b over the lookback window.
  const size_t n = samples_.size();
  double sum_t = 0, sum_p = 0, sum_tt = 0, sum_tp = 0;
  for (const Sample& s : samples_) {
    sum_t += s.interval;
    sum_p += s.processing;
    sum_tt += s.interval * s.interval;
    sum_tp += s.interval * s.processing;
  }
  const double denom = static_cast<double>(n) * sum_tt - sum_t * sum_t;
  if (n >= 2 && std::abs(denom) > 1e-3 * sum_tt) {
    const double a = (static_cast<double>(n) * sum_tp - sum_t * sum_p) / denom;
    const double b = (sum_p - a * sum_t) / static_cast<double>(n);
    if (a < target && b > 0) {
      // Fixed point of a*T + b = target*T.
      desired = b / (target - a);
    } else if (a >= target) {
      // Per-interval work rate alone exceeds the target: no interval can
      // satisfy it (the system is overloaded); grow toward the max.
      desired = static_cast<double>(options_.max_interval);
    } else {
      // Degenerate fit (b <= 0): fall back to the ratio step below.
      desired = t * (static_cast<double>(processing_time) / t) / target;
    }
  } else {
    // Too few distinct observations: multiplicative step from the observed
    // ratio, proc/interval -> target.
    const double ratio = static_cast<double>(processing_time) / t;
    desired = t * ratio / target;
  }

  const double stepped = t + options_.gain * (desired - t);
  const double clamped =
      std::clamp(stepped, static_cast<double>(options_.min_interval),
                 static_cast<double>(options_.max_interval));
  return static_cast<TimeMicros>(clamped);
}

}  // namespace prompt
