#include "engine/execution.h"

#include <algorithm>

#include "common/flat_map.h"
#include "common/thread_pool.h"

namespace prompt {

BatchExecutor::BatchExecutor(JobSpec job, CostModel cost_model,
                             ReduceAllocator* allocator, ExecutionMode mode)
    : job_(std::move(job)),
      cost_model_(cost_model),
      allocator_(allocator),
      mode_(mode) {
  PROMPT_CHECK(allocator_ != nullptr);
}

void BatchExecutor::BindMetrics(MetricsRegistry* registry,
                                const MetricLabels& labels) {
  if (registry == nullptr) return;
  map_tasks_total_ = registry->GetCounter("prompt_map_tasks_total", labels);
  reduce_tasks_total_ =
      registry->GetCounter("prompt_reduce_tasks_total", labels);
  map_task_cost_us_ =
      registry->GetHistogram("prompt_map_task_cost_us", labels);
  reduce_task_cost_us_ =
      registry->GetHistogram("prompt_reduce_task_cost_us", labels);
}

std::vector<MapCluster> BatchExecutor::RunMapTask(
    const DataBlock& block) const {
  // Split flags from the block reference table (written at batching time).
  FlatMap<char> split_keys(block.cardinality() + 8);
  for (const KeyFragment& f : block.fragments()) {
    if (f.split) split_keys.GetOrInsert(f.key) = 1;
  }

  struct Agg {
    uint64_t size = 0;
    double partial = 0.0;
    bool init = false;
  };
  FlatMap<Agg> clusters(block.cardinality() + 8);
  std::vector<KV> emitted;
  emitted.reserve(2);
  for (const Tuple& t : block.tuples()) {
    emitted.clear();
    job_.map->Map(t, &emitted);
    for (const KV& kv : emitted) {
      Agg& agg = clusters.GetOrInsert(kv.key);
      if (!agg.init) {
        agg.partial = job_.reduce->Identity();
        agg.init = true;
      }
      agg.partial = job_.reduce->Combine(agg.partial, kv.value);
      ++agg.size;
    }
  }

  std::vector<MapCluster> out;
  out.reserve(clusters.size());
  clusters.ForEach([&](KeyId key, const Agg& agg) {
    const char* split = split_keys.Find(key);
    out.push_back(MapCluster{key, agg.size, split != nullptr, agg.partial});
  });
  return out;
}

BatchExecution BatchExecutor::Execute(const PartitionedBatch& batch,
                                      uint32_t reduce_tasks, uint32_t cores,
                                      ThreadPool* pool) {
  PROMPT_CHECK(reduce_tasks >= 1);
  PROMPT_CHECK(cores >= 1);
  BatchExecution exec;
  const size_t m = batch.blocks.size();
  std::vector<std::vector<MapCluster>> map_outputs(m);
  exec.map_task_costs.assign(m, 0);

  // --- Map stage ---
  if (mode_ == ExecutionMode::kReal && pool != nullptr) {
    for (size_t i = 0; i < m; ++i) {
      pool->Submit([this, i, &batch, &map_outputs, &exec] {
        Stopwatch watch;
        map_outputs[i] = RunMapTask(batch.blocks[i]);
        exec.map_task_costs[i] = std::max<TimeMicros>(1, watch.ElapsedMicros());
      });
    }
    pool->WaitIdle();
  } else {
    for (size_t i = 0; i < m; ++i) {
      map_outputs[i] = RunMapTask(batch.blocks[i]);
      exec.map_task_costs[i] = cost_model_.MapTaskCost(
          batch.blocks[i].size(), batch.blocks[i].cardinality());
    }
  }
  exec.map_makespan = ScheduleStage(exec.map_task_costs, cores).makespan;

  // --- Shuffle: each Map task independently assigns its clusters to the
  // Reduce buckets (Alg. 3 for Prompt, hashing for the baselines). ---
  struct Agg {
    double value = 0.0;
    bool init = false;
  };
  std::vector<FlatMap<Agg>> bucket_state;
  bucket_state.reserve(reduce_tasks);
  for (uint32_t j = 0; j < reduce_tasks; ++j) bucket_state.emplace_back(256);
  exec.bucket_tuples.assign(reduce_tasks, 0);
  exec.bucket_clusters.assign(reduce_tasks, 0);

  std::vector<KeyCluster> view;
  for (size_t i = 0; i < m; ++i) {
    const auto& clusters = map_outputs[i];
    view.clear();
    view.reserve(clusters.size());
    for (const MapCluster& c : clusters) {
      view.push_back(KeyCluster{c.key, c.size, c.split});
    }
    std::vector<uint32_t> assignment = allocator_->Assign(view, reduce_tasks);
    PROMPT_CHECK(assignment.size() == clusters.size());
    for (size_t c = 0; c < clusters.size(); ++c) {
      const uint32_t j = assignment[c];
      PROMPT_CHECK(j < reduce_tasks);
      Agg& agg = bucket_state[j].GetOrInsert(clusters[c].key);
      if (!agg.init) {
        agg.value = job_.reduce->Identity();
        agg.init = true;
      }
      agg.value = job_.reduce->Combine(agg.value, clusters[c].partial);
      exec.bucket_tuples[j] += clusters[c].size;
      ++exec.bucket_clusters[j];
    }
  }

  // --- Reduce stage ---
  exec.reduce_task_costs.assign(reduce_tasks, 0);
  for (uint32_t j = 0; j < reduce_tasks; ++j) {
    if (mode_ == ExecutionMode::kReal) {
      // The merge already happened while draining the shuffle; model the
      // measured cost as proportional to the real merged volume by timing a
      // walk over the bucket (cheap but non-zero).
      Stopwatch watch;
      volatile double sink = 0;
      bucket_state[j].ForEach([&sink](KeyId, const Agg& a) {
        sink = sink + a.value;
      });
      exec.reduce_task_costs[j] = std::max<TimeMicros>(
          1, watch.ElapsedMicros() +
                 static_cast<TimeMicros>(exec.bucket_tuples[j] / 100));
    } else {
      exec.reduce_task_costs[j] = cost_model_.ReduceTaskCost(ReduceTaskInput{
          exec.bucket_tuples[j], exec.bucket_clusters[j]});
    }
  }
  StageSchedule reduce_schedule = ScheduleStage(exec.reduce_task_costs, cores);
  exec.reduce_makespan = reduce_schedule.makespan;
  exec.reduce_completions = std::move(reduce_schedule.completion);

  if (map_tasks_total_ != nullptr) {
    map_tasks_total_->Increment(m);
    reduce_tasks_total_->Increment(reduce_tasks);
    for (TimeMicros c : exec.map_task_costs) {
      map_task_cost_us_->Observe(static_cast<double>(c));
    }
    for (TimeMicros c : exec.reduce_task_costs) {
      reduce_task_cost_us_->Observe(static_cast<double>(c));
    }
  }

  // --- Batch output: per-key aggregates (keys are disjoint across buckets
  // because non-split keys live in one block and split keys hash
  // consistently). ---
  for (uint32_t j = 0; j < reduce_tasks; ++j) {
    bucket_state[j].ForEach([&exec](KeyId key, const Agg& agg) {
      exec.output.push_back(KV{key, agg.value});
    });
  }
  return exec;
}

}  // namespace prompt
