// Adaptive batch resizing — the alternative approach of Das et al. [12]
// (§9 related work). Instead of repartitioning or scaling resources, the
// batch interval itself is adjusted until processing time matches it.
// Implemented as a comparison baseline: the paper's §1 argument is that
// resizing stabilizes the system but inflates end-to-end latency, whereas
// Prompt holds the interval (and thus the latency SLA) fixed.
#pragma once

#include <deque>

#include "common/clock.h"
#include "common/macros.h"

namespace prompt {

/// \brief Controller parameters (defaults follow the fixed-point scheme of
/// the original paper: target the interval slightly above processing time).
struct BatchResizerOptions {
  TimeMicros min_interval = Millis(100);
  TimeMicros max_interval = Seconds(30);
  /// Desired processing_time / interval ratio after convergence (< 1 keeps
  /// slack for variance).
  double target_ratio = 0.85;
  /// Observations kept for the linear model of processing time vs interval.
  int lookback = 6;
  /// Fraction of the computed correction applied per step (damping).
  double gain = 0.6;
};

/// \brief Estimates processing time as a linear function of the interval
/// (proc(T) ≈ a·T + b: per-tuple work grows with the tuples a longer
/// interval accumulates; b is the fixed stage overhead) and steps the
/// interval toward the fixed point proc(T) = target_ratio · T.
///
/// Input-domain guarantees: OnBatchCompleted accepts *any* (interval,
/// processing_time) pair — a zero or out-of-range interval is clamped into
/// [min_interval, max_interval] before use, negative processing time is
/// treated as 0, and a window with zero interval variance (constant-interval
/// history, where the least-squares denominator vanishes) falls back to the
/// ratio step. The returned interval is always finite and inside
/// [min_interval, max_interval]; a non-finite internal step degrades to
/// "hold the current interval", never to NaN.
class BatchIntervalController {
 public:
  explicit BatchIntervalController(BatchResizerOptions options = {})
      : options_(options) {
    PROMPT_CHECK(options_.min_interval > 0);
    PROMPT_CHECK(options_.max_interval >= options_.min_interval);
    PROMPT_CHECK(options_.target_ratio > 0 && options_.target_ratio <= 1);
  }

  /// Feeds one completed batch; returns the interval for the next batch.
  TimeMicros OnBatchCompleted(TimeMicros interval, TimeMicros processing_time);

  const BatchResizerOptions& options() const { return options_; }

 private:
  struct Sample {
    double interval;
    double processing;
  };

  BatchResizerOptions options_;
  std::deque<Sample> samples_;
};

}  // namespace prompt
