#include "engine/window.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"

namespace prompt {

namespace {

constexpr uint32_t kWindowMagic = 0x50524d57;  // "PRMW"

void PutU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}
void PutF64(double v, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(bits, out);
}
bool GetU64(const std::string& in, size_t* off, uint64_t* v) {
  if (*off + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *off, 8);
  *off += 8;
  return true;
}
bool GetF64(const std::string& in, size_t* off, double* v) {
  uint64_t bits;
  if (!GetU64(in, off, &bits)) return false;
  std::memcpy(v, &bits, 8);
  return true;
}

uint64_t WindowChecksum(const std::string& bytes, size_t from) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = from; i < bytes.size(); ++i) {
    h ^= static_cast<unsigned char>(bytes[i]);
    h *= 1099511628211ULL;
  }
  return Mix64(h);
}

}  // namespace

std::vector<KV> WindowState::TopK(size_t k) const {
  std::vector<KV> all;
  all.reserve(result_.size());
  for (const auto& [key, value] : result_) all.push_back(KV{key, value});
  size_t n = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + n, all.end(),
                    [](const KV& a, const KV& b) {
                      return a.value != b.value ? a.value > b.value
                                                : a.key < b.key;
                    });
  all.resize(n);
  return all;
}

std::string WindowState::Checkpoint() const {
  std::string payload;
  PutU64(window_batches_, &payload);
  PutU64(history_.size(), &payload);
  for (const auto& batch : history_) {
    PutU64(batch.size(), &payload);
    for (const KV& kv : batch) {
      PutU64(kv.key, &payload);
      PutF64(kv.value, &payload);
    }
  }
  std::string out;
  uint32_t magic = kWindowMagic;
  out.append(reinterpret_cast<const char*>(&magic), 4);
  PutU64(WindowChecksum(payload, 0), &out);
  out += payload;
  return out;
}

Status WindowState::Restore(const std::string& bytes) {
  size_t off = 0;
  if (bytes.size() < 12) return Status::Invalid("truncated checkpoint");
  uint32_t magic;
  std::memcpy(&magic, bytes.data(), 4);
  off = 4;
  if (magic != kWindowMagic) return Status::Invalid("bad checkpoint magic");
  uint64_t checksum;
  if (!GetU64(bytes, &off, &checksum) ||
      checksum != WindowChecksum(bytes, off)) {
    return Status::Invalid("checkpoint checksum mismatch");
  }
  uint64_t window_batches, num_batches;
  if (!GetU64(bytes, &off, &window_batches) ||
      !GetU64(bytes, &off, &num_batches)) {
    return Status::Invalid("truncated checkpoint header");
  }
  if (window_batches != window_batches_) {
    return Status::Invalid("checkpoint window geometry mismatch");
  }
  if (num_batches > window_batches) {
    return Status::Invalid("checkpoint holds more batches than the window");
  }
  std::deque<std::vector<KV>> history;
  for (uint64_t b = 0; b < num_batches; ++b) {
    uint64_t n;
    if (!GetU64(bytes, &off, &n)) {
      return Status::Invalid("truncated checkpoint batch");
    }
    if (n * 16 > bytes.size() - off) {
      return Status::Invalid("checkpoint batch size inconsistent");
    }
    std::vector<KV> batch;
    batch.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      KV kv;
      if (!GetU64(bytes, &off, &kv.key) || !GetF64(bytes, &off, &kv.value)) {
        return Status::Invalid("truncated checkpoint entry");
      }
      batch.push_back(kv);
    }
    history.push_back(std::move(batch));
  }
  if (off != bytes.size()) {
    return Status::Invalid("trailing bytes in checkpoint");
  }
  // Rebuild the derived result map by replaying the retained outputs.
  history_.clear();
  result_.clear();
  for (auto& batch : history) AddBatch(std::move(batch));
  return Status::OK();
}

}  // namespace prompt
