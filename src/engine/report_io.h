// CSV/JSONL export of per-batch reports, so harness output can be plotted
// or diffed without re-running experiments. Thin adapter over the obs sink
// layer: every row flows through ReportRecord + a RecordSink, so this file,
// promptctl and the bench figure writers share one formatting path.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/batch_report.h"

namespace prompt {

/// \brief Writes the reports as CSV with a header row. Columns:
/// batch_id,interval_us,tuples,keys,map_tasks,reduce_tasks,partition_cost_us,
/// map_makespan_us,reduce_makespan_us,processing_us,queue_us,latency_us,w,
/// bsi,bci,ksr,mpi,reduce_bucket_bsi
void WriteReportsCsv(const std::vector<BatchReport>& reports,
                     std::ostream* out);

/// \brief Writes the CSV to a file path; IOError on failure.
Status WriteReportsCsvFile(const std::vector<BatchReport>& reports,
                           const std::string& path);

/// \brief Same rows as one JSON object per line (field names = CSV columns).
void WriteReportsJsonl(const std::vector<BatchReport>& reports,
                       std::ostream* out);

/// \brief Parses a CSV produced by WriteReportsCsv back into reports
/// (fields not serialized stay default). Invalid on malformed input.
Result<std::vector<BatchReport>> ReadReportsCsv(std::istream* in);

}  // namespace prompt
