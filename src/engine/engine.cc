#include "engine/engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"

namespace prompt {

namespace {

bool IsDefaultWeights(const MpiWeights& w) {
  const MpiWeights def;
  return w.p1 == def.p1 && w.p2 == def.p2 && w.p3 == def.p3;
}

}  // namespace

double RunSummary::MeanW(size_t warmup) const {
  if (batches.size() <= warmup) return 0;
  double sum = 0;
  for (size_t i = warmup; i < batches.size(); ++i) sum += batches[i].w;
  return sum / static_cast<double>(batches.size() - warmup);
}

double RunSummary::MeanThroughputTuplesPerSec(TimeMicros interval,
                                              size_t warmup) const {
  if (batches.size() <= warmup || interval <= 0) return 0;
  uint64_t tuples = 0;
  for (size_t i = warmup; i < batches.size(); ++i) {
    tuples += batches[i].num_tuples;
  }
  const double seconds =
      ToSeconds(interval) * static_cast<double>(batches.size() - warmup);
  return static_cast<double>(tuples) / seconds;
}

MicroBatchEngine::MicroBatchEngine(EngineOptions options, JobSpec job,
                                   std::unique_ptr<BatchPartitioner> partitioner,
                                   TupleSource* source)
    : options_(options),
      job_(std::move(job)),
      partitioner_(std::move(partitioner)),
      source_(source),
      map_tasks_(options.map_tasks),
      reduce_tasks_(options.reduce_tasks) {
  PROMPT_CHECK(partitioner_ != nullptr);
  PROMPT_CHECK(source_ != nullptr);
  PROMPT_CHECK(options_.batch_interval > 0);
  // Deprecated-alias merge (one release): the flat observability fields of
  // EngineOptions feed the obs sub-struct when it was left at defaults.
  options_.obs.collect_partition_metrics |= options_.collect_partition_metrics;
  if (!IsDefaultWeights(options_.mpi_weights) &&
      IsDefaultWeights(options_.obs.mpi_weights)) {
    options_.obs.mpi_weights = options_.mpi_weights;
  }
  obs_ = std::make_unique<Observability>(options_.obs);
  if (!obs_->init_status().ok()) {
    PROMPT_LOG(kWarn) << "observability sink setup failed: "
                      << obs_->init_status().ToString();
  }
  if (options_.use_prompt_reduce) {
    allocator_ = std::make_unique<PromptReduceAllocator>();
  } else {
    allocator_ = std::make_unique<HashReduceAllocator>();
  }
  executor_ = std::make_unique<BatchExecutor>(job_, CostModel(options_.cost),
                                              allocator_.get(), options_.mode);
  executor_->BindMetrics(obs_->registry());
  window_ = std::make_unique<WindowState>(job_.reduce, job_.window_batches);
  if (options_.elasticity_enabled) {
    elastic_ = std::make_unique<ElasticController>(
        options_.elasticity, options_.map_tasks, options_.reduce_tasks);
    elastic_->BindMetrics(obs_->registry());
  }
  if (options_.mode == ExecutionMode::kReal) {
    pool_ = std::make_unique<ThreadPool>(options_.cores);
  }
  if (options_.cluster_enabled) {
    cluster_ = std::make_unique<SimulatedCluster>(options_.cluster);
    store_ = std::make_unique<BatchStore>(cluster_.get());
  }
  current_interval_ = options_.batch_interval;
  if (options_.batch_resizing_enabled) {
    resizer_ = std::make_unique<BatchIntervalController>(options_.batch_resizer);
  }
  if (options_.ingest_shards > 1) {
    ParallelIngestOptions pio;
    pio.num_shards = options_.ingest_shards;
    pio.ring_capacity = options_.ingest_ring_capacity;
    ingest_ = std::make_unique<ParallelIngestPipeline>(pio);
    ingest_->BindMetrics(obs_->registry());
  }
}

MicroBatchEngine::~MicroBatchEngine() = default;

BatchReport MicroBatchEngine::ProcessBatch(PartitionedBatch batch,
                                           TimeMicros interval) {
  BatchReport report;
  report.batch_id = batch.batch_id;
  report.batch_interval = interval;
  report.num_tuples = batch.num_tuples;
  report.num_keys = batch.num_keys;
  report.map_tasks = static_cast<uint32_t>(batch.blocks.size());
  report.reduce_tasks = reduce_tasks_;
  report.partition_cost = batch.partition_cost;

  // Early Batch Release (§4.2): the partitioner worked during the slack
  // before the heartbeat; only the excess delays processing.
  const TimeMicros slack = static_cast<TimeMicros>(
      options_.early_release_frac * static_cast<double>(interval));
  const TimeMicros scaled_cost = static_cast<TimeMicros>(
      options_.cost.partition_cost_scale *
      static_cast<double>(batch.partition_cost));
  report.partition_overflow = std::max<TimeMicros>(0, scaled_cost - slack);

  if (options_.obs.collect_partition_metrics) {
    report.partition_metrics =
        ComputeBlockMetrics(batch, options_.obs.mpi_weights);
  }

  const uint32_t cluster_cores =
      cluster_ != nullptr ? std::max<uint32_t>(1, cluster_->total_alive_cores())
                          : options_.cores;
  const uint32_t map_cores =
      options_.cores_track_tasks
          ? std::max<uint32_t>(1, static_cast<uint32_t>(batch.blocks.size()))
          : cluster_cores;
  const uint32_t reduce_cores =
      options_.cores_track_tasks ? std::max<uint32_t>(1, reduce_tasks_)
                                 : cluster_cores;

  // Execute both stages (scheduler uses the smaller of the two core counts
  // internally per stage via two calls).
  BatchExecution exec;
  {
    // BatchExecutor schedules each stage with one core count; when the two
    // differ (elasticity), run it with map cores and rescale the reduce
    // stage below.
    exec = executor_->Execute(batch, reduce_tasks_, map_cores, pool_.get());
    if (reduce_cores != map_cores) {
      StageSchedule rs = ScheduleStage(exec.reduce_task_costs, reduce_cores);
      exec.reduce_makespan = rs.makespan;
      exec.reduce_completions = std::move(rs.completion);
    }
  }

  if (cluster_ != nullptr) {
    // Re-schedule the Map stage with data locality over per-node cores:
    // every task prefers a node holding a replica of its block.
    auto placements =
        cluster_->PlaceBlocks(static_cast<uint32_t>(batch.blocks.size()));
    if (placements.ok()) {
      LocalityStageResult locality = ScheduleMapStageWithLocality(
          exec.map_task_costs, *placements, *cluster_);
      exec.map_makespan = locality.makespan;
      report.remote_map_tasks = locality.remote_tasks;
    }
  }

  report.map_makespan = exec.map_makespan;
  report.reduce_makespan = exec.reduce_makespan;
  report.processing_time =
      report.partition_overflow + exec.map_makespan + exec.reduce_makespan;
  report.w = static_cast<double>(report.processing_time) /
             static_cast<double>(interval);
  report.reduce_bucket_bsi = BucketSizeImbalance(exec.bucket_tuples);

  if (!exec.reduce_completions.empty()) {
    double sum = 0, lo = 1e300, hi = 0;
    for (TimeMicros c : exec.reduce_completions) {
      double ms = static_cast<double>(c) / 1000.0;
      sum += ms;
      lo = std::min(lo, ms);
      hi = std::max(hi, ms);
    }
    report.reduce_completion_mean_ms =
        sum / static_cast<double>(exec.reduce_completions.size());
    report.reduce_completion_min_ms = lo;
    report.reduce_completion_max_ms = hi;
  }

  // Extra queries run their Map/Reduce stages over the same blocks
  // sequentially (one shared cluster), extending the batch's processing
  // time the way consecutive Spark jobs on one context would.
  for (ExtraQuery& extra : extra_queries_) {
    BatchExecution extra_exec =
        extra.executor->Execute(batch, reduce_tasks_, map_cores, pool_.get());
    report.processing_time +=
        extra_exec.map_makespan + extra_exec.reduce_makespan;
    extra.window->AddBatch(std::move(extra_exec.output));
  }
  if (!extra_queries_.empty()) {
    report.w = static_cast<double>(report.processing_time) /
               static_cast<double>(interval);
  }

  if (options_.replicate_input) {
    last_replica_ = std::make_unique<PartitionedBatch>(batch);
    last_output_ = exec.output;
  }
  if (store_ != nullptr) {
    // §8: replicate the sealed input batch across nodes; copies are only
    // needed while the batch is inside the query window.
    Status st = store_->Write(batch);
    if (!st.ok()) {
      PROMPT_LOG(kWarn) << "batch replication failed: " << st.ToString();
    }
    if (batch.batch_id >= job_.window_batches) {
      store_->Evict(batch.batch_id - job_.window_batches);
    }
  }
  window_->AddBatch(std::move(exec.output));
  return report;
}

Result<size_t> MicroBatchEngine::AddQuery(JobSpec job) {
  if (run_started_) {
    return Status::Invalid("AddQuery must be called before the first Run");
  }
  ExtraQuery extra;
  extra.executor = std::make_unique<BatchExecutor>(
      job, CostModel(options_.cost), allocator_.get(), options_.mode);
  extra.executor->BindMetrics(obs_->registry());
  extra.window = std::make_unique<WindowState>(job.reduce, job.window_batches);
  extra.job = std::move(job);
  extra_queries_.push_back(std::move(extra));
  return extra_queries_.size() - 1;
}

Result<const WindowState*> MicroBatchEngine::QueryWindow(
    size_t query_id) const {
  if (query_id >= extra_queries_.size()) {
    return Status::OutOfRange("no such query id");
  }
  return static_cast<const WindowState*>(extra_queries_[query_id].window.get());
}

Status MicroBatchEngine::KillNode(uint32_t node) {
  if (cluster_ == nullptr) return Status::Invalid("cluster mode disabled");
  return cluster_->KillNode(node);
}

Status MicroBatchEngine::ReviveNode(uint32_t node) {
  if (cluster_ == nullptr) return Status::Invalid("cluster mode disabled");
  return cluster_->ReviveNode(node);
}

Result<std::vector<KV>> MicroBatchEngine::RecomputeBatchFromStore(
    uint64_t batch_id) {
  if (store_ == nullptr) return Status::Invalid("cluster mode disabled");
  PROMPT_ASSIGN_OR_RETURN(PartitionedBatch batch, store_->Read(batch_id));
  BatchExecution redo = executor_->Execute(
      batch, reduce_tasks_,
      std::max<uint32_t>(1, cluster_->total_alive_cores()), pool_.get());
  return std::move(redo.output);
}

RunSummary MicroBatchEngine::Run(uint32_t num_batches) {
  run_started_ = true;
  RunSummary summary;
  summary.batches.reserve(num_batches);
  const bool observe = obs_->active();
  if (observe) obs_->OnRunStart(num_batches);

  for (uint32_t i = 0; i < num_batches; ++i) {
    const TimeMicros interval = current_interval_;
    const TimeMicros start = next_batch_start_;
    const TimeMicros end = start + interval;
    next_batch_start_ = end;

    // --- Batching phase: accumulate this interval's tuples. ---
    partitioner_->Begin(map_tasks_, start, end);
    if (ingest_ != nullptr) ingest_->BeginBatch(start, end);
    auto sink = [&](const Tuple& t) {
      if (ingest_ != nullptr) {
        ingest_->Ingest(t);
      } else {
        partitioner_->OnTuple(t);
      }
    };
    if (have_pending_ && pending_.ts < end) {
      sink(pending_);
      have_pending_ = false;
    }
    if (!have_pending_) {
      Tuple t;
      while (source_->Next(&t)) {
        if (t.ts >= end) {
          pending_ = t;
          have_pending_ = true;
          break;
        }
        sink(t);
      }
    }

    PartitionedBatch batch;
    if (ingest_ != nullptr) {
      const AccumulatedBatch& merged = ingest_->SealBatch();
      if (!partitioner_->SealAccumulated(merged, next_batch_id_, &batch)) {
        // No quasi-sorted fast path: replay the merged batch through the
        // per-tuple interface in quasi-sorted order.
        for (const SortedKeyRun& run : merged.keys()) {
          merged.ForEachTuple(run, 0, run.count,
                              [&](const Tuple& t) { partitioner_->OnTuple(t); });
        }
        batch = partitioner_->Seal(next_batch_id_);
      }
      ++next_batch_id_;
      // The merge runs in the release slack alongside Alg. 2, on the same
      // critical path toward the heartbeat — account it as decision cost.
      batch.partition_cost += ingest_->last_metrics().merge_latency;
    } else {
      batch = partitioner_->Seal(next_batch_id_++);
    }

    // --- Processing phase: starts at the heartbeat, or when the pipeline
    // frees if earlier batches are still running (queueing). ---
    const TimeMicros proc_start = std::max(end, pipeline_free_at_);
    BatchReport report = ProcessBatch(std::move(batch), interval);
    report.queue_delay = proc_start - end;
    pipeline_free_at_ = proc_start + report.processing_time;
    report.latency = pipeline_free_at_ - start;
    if (ingest_ != nullptr) {
      // Fold the batching phase's per-shard stats into the report — the
      // embedded form replaces the deprecated ingest_metrics() accessor.
      report.ingest = ingest_->last_metrics();
      report.has_ingest = true;
    }

    // Stability accounting (back-pressure would engage past the bound).
    if (static_cast<double>(report.queue_delay) >
        options_.unstable_queue_intervals * static_cast<double>(interval)) {
      summary.stable = false;
      summary.unstable_at_batch =
          std::min(summary.unstable_at_batch, report.batch_id);
    }

    // --- Feedback loops. ---
    // Receiver estimates for Alg. 1 (N_est, K_avg).
    const double alpha = 0.4;
    if (!est_init_) {
      est_tuples_ = static_cast<double>(report.num_tuples);
      est_keys_ = static_cast<double>(report.num_keys);
      est_init_ = true;
    } else {
      est_tuples_ = alpha * static_cast<double>(report.num_tuples) +
                    (1 - alpha) * est_tuples_;
      est_keys_ = alpha * static_cast<double>(report.num_keys) +
                  (1 - alpha) * est_keys_;
    }
    partitioner_->UpdateEstimates(static_cast<uint64_t>(est_tuples_),
                                  static_cast<uint64_t>(est_keys_));
    if (ingest_ != nullptr) {
      ingest_->UpdateEstimates(static_cast<uint64_t>(est_tuples_),
                               static_cast<uint64_t>(est_keys_));
    }

    // Batch resizing baseline [12]: step the next interval toward the
    // fixed point processing_time = target * interval.
    if (resizer_ != nullptr) {
      current_interval_ =
          resizer_->OnBatchCompleted(interval, report.processing_time);
    }

    // Alg. 4 elasticity.
    if (elastic_ != nullptr) {
      ScaleDecision d = elastic_->OnBatchCompleted(
          report.w, report.num_tuples, report.num_keys);
      (void)d;
      map_tasks_ = elastic_->map_tasks();
      reduce_tasks_ = elastic_->reduce_tasks();
    }

    if (observe) {
      if (obs_->tracing_active()) {
        RecordBatchTrace(report, interval, start);
        obs_->OnBatchComplete(
            report, obs_->recorder()->EndBatch(report.num_tuples,
                                               report.num_keys,
                                               report.latency));
      } else {
        obs_->OnBatchComplete(report, BatchTrace{});
      }
    }

    summary.batches.push_back(report);
  }
  if (observe) obs_->OnRunEnd();
  return summary;
}

void MicroBatchEngine::RecordBatchTrace(const BatchReport& report,
                                        TimeMicros interval,
                                        TimeMicros batch_start) {
  TraceRecorder* rec = obs_->recorder();
  rec->BeginBatch(report.batch_id, batch_start);

  // Depth-0 spans tile the end-to-end latency:
  //   latency = interval + queue_delay + overflow + map + reduce (+ extras).
  rec->AddSpan("accumulate", 0, interval, 0);
  if (report.has_ingest) {
    // Wall-clock annotations from the sharded batching phase, nested under
    // the accumulate interval (the barrier and merge run at the cut-off).
    rec->AddSpan("ingest_route", 0, report.ingest.ingest_wall, 1);
    rec->AddSpan("seal_barrier", interval, report.ingest.seal_barrier_latency,
                 1);
    rec->AddSpan("kway_merge", interval, report.ingest.merge_latency, 1);
  }
  // The B-BPFI plan runs inside the early-release slack; only its overflow
  // reaches the critical path (as the "plan_overflow" span below).
  const TimeMicros scaled_cost = static_cast<TimeMicros>(
      options_.cost.partition_cost_scale *
      static_cast<double>(report.partition_cost));
  const TimeMicros in_slack = scaled_cost - report.partition_overflow;
  if (in_slack > 0) rec->AddSpan("plan", interval - in_slack, in_slack, 1);

  TimeMicros cursor = interval;
  if (report.queue_delay > 0) {
    rec->AddSpan("queue", cursor, report.queue_delay, 0);
    cursor += report.queue_delay;
  }
  if (report.partition_overflow > 0) {
    rec->AddSpan("plan_overflow", cursor, report.partition_overflow, 0);
    cursor += report.partition_overflow;
  }
  rec->AddSpan("map", cursor, report.map_makespan, 0);
  cursor += report.map_makespan;
  rec->AddSpan("reduce", cursor, report.reduce_makespan, 0);
  cursor += report.reduce_makespan;
  // Extra queries sharing the batching phase extend processing sequentially.
  const TimeMicros extras =
      report.processing_time -
      (report.partition_overflow + report.map_makespan + report.reduce_makespan);
  if (extras > 0) rec->AddSpan("extra_queries", cursor, extras, 0);
}

Status MicroBatchEngine::VerifyRecoveryOfLastBatch() {
  if (!options_.replicate_input) {
    return Status::Invalid("replication disabled; enable replicate_input");
  }
  if (last_replica_ == nullptr) {
    return Status::Invalid("no batch has been processed yet");
  }
  // Recompute from the replicated input blocks, exactly as the recovery
  // path would after losing the batch's state (§8).
  BatchExecution redo = executor_->Execute(
      *last_replica_, reduce_tasks_, options_.cores, pool_.get());
  std::unordered_map<KeyId, double> original;
  for (const KV& kv : last_output_) original[kv.key] = kv.value;
  if (redo.output.size() != last_output_.size()) {
    return Status::Unknown("recomputed output cardinality mismatch");
  }
  for (const KV& kv : redo.output) {
    auto it = original.find(kv.key);
    if (it == original.end()) {
      return Status::Unknown("recomputed output contains unexpected key");
    }
    if (std::abs(it->second - kv.value) > 1e-9 * std::max(1.0, std::abs(it->second))) {
      return Status::Unknown("recomputed aggregate differs (not exactly-once)");
    }
  }
  return Status::OK();
}

}  // namespace prompt
