#include "engine/engine.h"

#include <algorithm>
#include <cmath>
#include <string_view>
#include <unordered_map>

#include "baselines/factory.h"
#include "common/logging.h"
#include "engine/serde.h"
#include "fault/recovery.h"

namespace prompt {

namespace {

/// The flight-recorder manifest: every option that shapes the run's
/// deterministic outcome, serialized key=value. The replayer's
/// SingleOptionsFromManifest (src/replay/replayer.cc) parses exactly these
/// keys back; ReplayResult::manifest_match catches any drift between the
/// two. Directory paths and journal settings are deliberately absent — a
/// journal must replay from any location.
JournalManifest BuildSingleManifest(const EngineOptions& o, const JobSpec& job,
                                    int32_t technique) {
  JournalManifest m;
  m.Set("format", "prompt-journal-v1");
  m.Set("mode", "single");
  m.Set("batch_interval", static_cast<int64_t>(o.batch_interval));
  m.Set("window_batches", static_cast<uint64_t>(job.window_batches));
  if (!o.journal.query.empty()) m.Set("query", o.journal.query);
  m.Set("technique",
        technique >= 0
            ? PartitionerTypeName(static_cast<PartitionerType>(technique))
            : "custom");
  m.Set("exec_mode",
        o.mode == ExecutionMode::kReal ? "real" : "simulated");
  m.Set("map_tasks", static_cast<uint64_t>(o.map_tasks));
  m.Set("reduce_tasks", static_cast<uint64_t>(o.reduce_tasks));
  m.Set("cores", static_cast<uint64_t>(o.cores));
  m.Set("cores_track_tasks", o.cores_track_tasks);
  m.Set("early_release_frac", o.early_release_frac);
  m.Set("use_prompt_reduce", o.use_prompt_reduce);
  m.Set("unstable_queue_intervals", o.unstable_queue_intervals);
  m.Set("cost.map_task_fixed_us", o.cost.map_task_fixed_us);
  m.Set("cost.map_per_tuple_us", o.cost.map_per_tuple_us);
  m.Set("cost.map_per_key_us", o.cost.map_per_key_us);
  m.Set("cost.reduce_task_fixed_us", o.cost.reduce_task_fixed_us);
  m.Set("cost.reduce_per_tuple_us", o.cost.reduce_per_tuple_us);
  m.Set("cost.reduce_per_cluster_us", o.cost.reduce_per_cluster_us);
  m.Set("cost.partition_cost_scale", o.cost.partition_cost_scale);
  m.Set("cost.replicate_per_kib_us", o.cost.replicate_per_kib_us);
  m.Set("elasticity_enabled", o.elasticity_enabled);
  m.Set("elasticity.threshold", o.elasticity.threshold);
  m.Set("elasticity.step", o.elasticity.step);
  m.Set("elasticity.d", static_cast<int64_t>(o.elasticity.d));
  m.Set("elasticity.min_map_tasks",
        static_cast<uint64_t>(o.elasticity.min_map_tasks));
  m.Set("elasticity.min_reduce_tasks",
        static_cast<uint64_t>(o.elasticity.min_reduce_tasks));
  m.Set("elasticity.max_map_tasks",
        static_cast<uint64_t>(o.elasticity.max_map_tasks));
  m.Set("elasticity.max_reduce_tasks",
        static_cast<uint64_t>(o.elasticity.max_reduce_tasks));
  m.Set("elasticity.trend_lookback",
        static_cast<int64_t>(o.elasticity.trend_lookback));
  m.Set("adapt.enabled", o.adapt.enabled);
  m.Set("adapt.d", static_cast<int64_t>(o.adapt.d));
  m.Set("adapt.grace", static_cast<int64_t>(o.adapt.grace));
  m.Set("adapt.window", static_cast<uint64_t>(o.adapt.window));
  m.Set("adapt.calm_block_load_ratio", o.adapt.calm_block_load_ratio);
  m.Set("adapt.calm_split_key_frac", o.adapt.calm_split_key_frac);
  {
    std::string csv;
    for (PartitionerType t : o.adapt.candidates) {
      if (!csv.empty()) csv += ',';
      csv += PartitionerTypeName(t);
    }
    m.Set("adapt.candidates", csv);
  }
  m.Set("partitioner.accumulator",
        AccumulatorKindName(o.adapt.config.prompt.accumulator_kind));
  m.Set("partitioner.post_sort", o.adapt.config.prompt.post_sort);
  m.Set("partitioner.cam_candidates",
        static_cast<uint64_t>(o.adapt.config.cam_candidates));
  m.Set("partitioner.sketch_capacity",
        static_cast<uint64_t>(o.adapt.config.sketch_capacity));
  m.Set("obs.collect_partition_metrics", o.obs.collect_partition_metrics);
  m.Set("obs.autopsy.min_excess_frac", o.obs.autopsy.min_excess_frac);
  m.Set("obs.autopsy.min_excess_us",
        static_cast<int64_t>(o.obs.autopsy.min_excess_us));
  m.Set("obs.autopsy.ring_pressure_threshold",
        o.obs.autopsy.ring_pressure_threshold);
  if (o.faults.enabled()) {
    m.Set("faults", FormatFaultSchedule(o.faults));
    // Policy knobs the spec grammar cannot express.
    m.Set("faults.max_task_retries",
          static_cast<uint64_t>(o.faults.max_task_retries));
    m.Set("faults.retry_backoff", static_cast<int64_t>(o.faults.retry_backoff));
    m.Set("faults.speculation_enabled", o.faults.speculation_enabled);
    m.Set("faults.speculation_multiplier", o.faults.speculation_multiplier);
  }
  m.Set("replicate_input", o.replicate_input);
  m.Set("cluster_enabled", o.cluster_enabled);
  m.Set("cluster.nodes", static_cast<uint64_t>(o.cluster.nodes));
  m.Set("cluster.cores_per_node",
        static_cast<uint64_t>(o.cluster.cores_per_node));
  m.Set("cluster.replication_factor",
        static_cast<uint64_t>(o.cluster.replication_factor));
  m.Set("cluster.remote_read_penalty", o.cluster.remote_read_penalty);
  m.Set("store.enabled", o.store.enabled());
  m.Set("store.fsync", FsyncPolicyName(o.store.fsync));
  m.Set("store.memory_budget_bytes",
        static_cast<uint64_t>(o.store.memory_budget_bytes));
  m.Set("store.retain_bytes", static_cast<uint64_t>(o.store.retain_bytes));
  m.Set("store.retain_batches", o.store.retain_batches);
  m.Set("batch_resizing_enabled", o.batch_resizing_enabled);
  m.Set("resizer.min_interval",
        static_cast<int64_t>(o.batch_resizer.min_interval));
  m.Set("resizer.max_interval",
        static_cast<int64_t>(o.batch_resizer.max_interval));
  m.Set("resizer.target_ratio", o.batch_resizer.target_ratio);
  m.Set("resizer.lookback", static_cast<int64_t>(o.batch_resizer.lookback));
  m.Set("resizer.gain", o.batch_resizer.gain);
  m.Set("ingest.shards", static_cast<uint64_t>(o.ingest.shards));
  m.Set("ingest.ring_capacity",
        static_cast<uint64_t>(o.ingest.ring_capacity));
  m.Set("ingest.accumulator", AccumulatorKindName(o.ingest.accumulator));
  m.Set("ingest.key_mode", KeyModeName(o.ingest.key_mode));
  if (o.ingest.key_mode == KeyMode::kSketch) {
    m.Set("ingest.sketch_capacity",
          static_cast<uint64_t>(
              o.ingest.accumulator_options.sketch.capacity));
    m.Set("ingest.tail_buckets",
          static_cast<uint64_t>(
              o.ingest.accumulator_options.sketch.tail_buckets));
  }
  return m;
}

}  // namespace

double RunSummary::MeanW(size_t warmup) const {
  if (batches.size() <= warmup) return 0;
  double sum = 0;
  for (size_t i = warmup; i < batches.size(); ++i) sum += batches[i].w;
  return sum / static_cast<double>(batches.size() - warmup);
}

double RunSummary::MeanThroughputTuplesPerSec(TimeMicros interval,
                                              size_t warmup) const {
  if (batches.size() <= warmup || interval <= 0) return 0;
  uint64_t tuples = 0;
  for (size_t i = warmup; i < batches.size(); ++i) {
    tuples += batches[i].num_tuples;
  }
  const double seconds =
      ToSeconds(interval) * static_cast<double>(batches.size() - warmup);
  return static_cast<double>(tuples) / seconds;
}

/// The per-query slice of the engine options (QueryContext construction).
static QueryContextOptions QueryOptionsFrom(const EngineOptions& options) {
  QueryContextOptions qc;
  qc.map_tasks = options.map_tasks;
  qc.reduce_tasks = options.reduce_tasks;
  qc.cost = options.cost;
  qc.mode = options.mode;
  qc.use_prompt_reduce = options.use_prompt_reduce;
  qc.elasticity_enabled = options.elasticity_enabled;
  qc.elasticity = options.elasticity;
  qc.batch_resizing_enabled = options.batch_resizing_enabled;
  qc.batch_resizer = options.batch_resizer;
  qc.adapt = options.adapt;
  return qc;
}

void MergeDeprecatedIngestAliases(EngineOptions* opts) {
  const EngineOptions defaults;
  if (opts->ingest_shards != defaults.ingest_shards &&
      opts->ingest.shards == defaults.ingest.shards) {
    PROMPT_LOG(kWarn) << "EngineOptions::ingest_shards is deprecated; set "
                         "ingest.shards instead";
    opts->ingest.shards = opts->ingest_shards;
  }
  if (opts->ingest_ring_capacity != defaults.ingest_ring_capacity &&
      opts->ingest.ring_capacity == defaults.ingest.ring_capacity) {
    PROMPT_LOG(kWarn) << "EngineOptions::ingest_ring_capacity is deprecated; "
                         "set ingest.ring_capacity instead";
    opts->ingest.ring_capacity = opts->ingest_ring_capacity;
  }
}

MicroBatchEngine::MicroBatchEngine(EngineOptions options, JobSpec job,
                                   std::unique_ptr<BatchPartitioner> partitioner,
                                   TupleSource* source)
    : options_(options), job_(std::move(job)), source_(source) {
  PROMPT_CHECK(partitioner != nullptr);
  PROMPT_CHECK(source_ != nullptr);
  PROMPT_CHECK(options_.batch_interval > 0);
  MergeDeprecatedIngestAliases(&options_);
  if (options_.adapt.enabled) {
    // The controller's calm test reads block-load and split-key signals, so
    // the partition-metrics pass must run regardless of what the caller set.
    options_.obs.collect_partition_metrics = true;
  }
  obs_ = std::make_unique<Observability>(options_.obs);
  if (!obs_->init_status().ok()) {
    PROMPT_LOG(kWarn) << "observability sink setup failed: "
                      << obs_->init_status().ToString();
  }
  // The single-tenant fast path: all per-query state (partitioner, window,
  // controllers, estimates) lives in one QueryContext the run loop drives.
  query_ = std::make_unique<QueryContext>(
      /*id=*/"default", QueryOptionsFrom(options_), job_,
      std::move(partitioner), obs_->registry());
  if (options_.mode == ExecutionMode::kReal) {
    pool_ = std::make_unique<ThreadPool>(options_.cores);
  }
  if (options_.store.enabled()) {
    // The durable tier backs the §8 BatchStore; no store without a cluster.
    options_.cluster_enabled = true;
  }
  if (options_.cluster_enabled) {
    cluster_ = std::make_unique<SimulatedCluster>(options_.cluster);
    store_ = std::make_unique<BatchStore>(cluster_.get());
  }
  if (options_.store.enabled()) {
    auto durable = DurableBlockStore::Open(options_.store);
    if (durable.ok()) {
      durable_ = std::move(durable).ValueUnsafe();
      durable_->BindMetrics(obs_->registry());
      store_->AttachDurable(durable_.get(), /*owner=*/0);
      RecoverFromDurableStore();
    } else {
      // Durability was explicitly requested; running memory-only behind the
      // operator's back would mask real loss ("recovered 0 batches" looks
      // like a clean log). Surface a construction failure instead — the
      // caller must check init_status() before trusting this engine.
      init_status_ = Status::IOError("durable store " + options_.store.dir +
                                     " cannot be opened: " +
                                     durable.status().ToString());
      durable_recovery_.data_loss = true;
      PROMPT_LOG(kError) << init_status_.ToString();
    }
  }
  if (options_.faults.enabled()) {
    fault_ = std::make_unique<FaultInjector>(options_.faults);
    const bool has_node_events =
        options_.faults.random.enabled ||
        std::any_of(options_.faults.schedule.begin(),
                    options_.faults.schedule.end(), [](const FaultEvent& e) {
                      return e.kind == FaultKind::kKillNode ||
                             e.kind == FaultKind::kReviveNode;
                    });
    if (has_node_events && cluster_ == nullptr) {
      PROMPT_LOG(kWarn) << "fault schedule has node events but cluster mode "
                           "is off; kills/revives will be ignored";
    }
  }
  current_interval_ = options_.batch_interval;
  // Sketch mode needs the pipeline even at one shard: the partitioner's own
  // accumulator is exact, and only the pipeline swaps in the sketch kind.
  if (options_.ingest.shards > 1 ||
      options_.ingest.key_mode == KeyMode::kSketch) {
    ingest_ = std::make_unique<ParallelIngestPipeline>(options_.ingest);
    ingest_->BindMetrics(obs_->registry());
  }
  if (options_.journal.enabled()) {
    auto journal = JournalWriter::Open(
        options_.journal,
        BuildSingleManifest(options_, job_, query_->current_technique));
    if (journal.ok()) {
      journal_ = std::move(journal).ValueUnsafe();
    } else {
      // Recording was explicitly requested; running unrecorded would break
      // the operator's replay guarantee silently. Same contract as the
      // durable store: surface a construction failure.
      Status failed = Status::IOError(
          "journal " + options_.journal.dir + " cannot be opened: " +
          journal.status().ToString());
      PROMPT_LOG(kError) << failed.ToString();
      if (init_status_.ok()) init_status_ = failed;
    }
  }
}

MicroBatchEngine::~MicroBatchEngine() = default;

void MicroBatchEngine::RecoverFromDurableStore() {
  const StoreRecovery& scan = durable_->recovery();
  durable_recovery_.torn_records = scan.torn_records;
  // A torn tail is a batch that was written but did not survive the crash:
  // report it as loss, never paper over it with a fabricated batch.
  durable_recovery_.data_loss = scan.torn_records > 0;

  const uint32_t cores =
      std::max<uint32_t>(1, cluster_->total_alive_cores());
  for (uint64_t id : durable_->LiveBatches(/*owner=*/0)) {
    Result<std::string> bytes = durable_->Get(/*owner=*/0, id);
    if (!bytes.ok()) {
      PROMPT_LOG(kWarn) << "recovery: cannot read batch " << id << ": "
                        << bytes.status().ToString();
      durable_recovery_.data_loss = true;
      continue;
    }
    Result<PartitionedBatch> decoded = DecodeBatch(*bytes);
    if (!decoded.ok()) {
      PROMPT_LOG(kWarn) << "recovery: cannot decode batch " << id << ": "
                        << decoded.status().ToString();
      durable_recovery_.data_loss = true;
      continue;
    }
    PartitionedBatch batch = std::move(decoded).ValueUnsafe();
    // Deterministic re-execution: partitioned input + the same reduce logic
    // give bit-identical per-key aggregates, so the recovered window equals
    // an uninterrupted run over the surviving batches.
    BatchExecution exec = query_->executor->Execute(
        batch, query_->reduce_tasks, cores, pool_.get());
    query_->window->AddBatch(std::move(exec.output));
    // Memory-tier placement only — the log already holds this batch, and
    // re-appending on every restart would grow the segments without bound.
    if (Result<uint32_t> placed = store_->Restore(batch); !placed.ok()) {
      PROMPT_LOG(kWarn) << "recovery: replica placement for batch " << id
                        << " failed: " << placed.status().ToString();
    }
    query_->window_state_nodes.push_back(
        QueryContext::WindowReplica{id, PickStateNode(id)});
    while (query_->window_state_nodes.size() > query_->window->depth()) {
      query_->window_state_nodes.pop_front();
    }
    ++durable_recovery_.batches_recovered;
    durable_recovery_.first_recovered_batch =
        std::min(durable_recovery_.first_recovered_batch, id);
    durable_recovery_.last_recovered_batch =
        std::max(durable_recovery_.last_recovered_batch, id);
    query_->next_batch_id = std::max(query_->next_batch_id, id + 1);
  }
  if (durable_recovery_.batches_recovered > 0) {
    // Resume the virtual clock where the crashed run's batching left off.
    next_batch_start_ =
        static_cast<TimeMicros>(durable_recovery_.last_recovered_batch + 1) *
        options_.batch_interval;
    PROMPT_LOG(kInfo) << "recovered " << durable_recovery_.batches_recovered
                      << " batch(es) [" << durable_recovery_.first_recovered_batch
                      << ".." << durable_recovery_.last_recovered_batch
                      << "] from " << options_.store.dir
                      << (durable_recovery_.data_loss
                              ? " (torn tail truncated: data loss)"
                              : "");
  }
}

BatchReport MicroBatchEngine::ProcessBatch(PartitionedBatch batch,
                                           TimeMicros interval) {
  BatchReport report;
  report.batch_id = batch.batch_id;
  report.batch_interval = interval;
  report.num_tuples = batch.num_tuples;
  report.num_keys = batch.num_keys;
  report.map_tasks = static_cast<uint32_t>(batch.blocks.size());
  report.reduce_tasks = query_->reduce_tasks;
  report.partition_cost = batch.partition_cost;
  report.sketch = batch.sketch;
  query_->MarkTechnique(&report);

  // Early Batch Release (§4.2): the partitioner worked during the slack
  // before the heartbeat; only the excess delays processing.
  const TimeMicros slack = static_cast<TimeMicros>(
      options_.early_release_frac * static_cast<double>(interval));
  const TimeMicros scaled_cost = static_cast<TimeMicros>(
      options_.cost.partition_cost_scale *
      static_cast<double>(batch.partition_cost));
  report.partition_overflow = std::max<TimeMicros>(0, scaled_cost - slack);

  if (options_.obs.collect_partition_metrics) {
    report.partition_metrics =
        ComputeBlockMetrics(batch, options_.obs.mpi_weights);
  }

  // §8: replicate the sealed input across nodes *before* any stage runs, so
  // a mid-stage failure can replay the batch from surviving copies. Copies
  // are only needed while the batch is inside the query window (evicted at
  // the end of this function).
  if (store_ != nullptr) {
    Result<uint32_t> copies = store_->Write(batch);
    if (!copies.ok()) {
      PROMPT_LOG(kWarn) << "batch replication failed: "
                        << copies.status().ToString();
    }
    if (durable_ != nullptr) {
      report.store_append_us = durable_->last_append_micros();
      report.store_bytes_appended = store_->last_write_bytes();
      report.store_spilled_copies = store_->last_spill_count();
    }
    // Gauge, not an event count: while the cluster is degraded every batch
    // reports how many in-window batches sit below the configured factor
    // (a later top-up in this same batch refreshes the field).
    report.under_replicated_batches =
        store_->UnderReplicatedCount(options_.cluster.replication_factor);
  }

  // Failure-detection point 1: the batch boundary. Manual KillNode calls
  // made between runs are recovered here too.
  for (uint32_t node : pending_node_losses_) {
    RecoverFromNodeLoss(node, &report);
  }
  pending_node_losses_.clear();
  PollFaults(batch.batch_id, FaultPoint::kBatchStart, &report);
  if (crashed_) return report;  // the process died before any stage ran

  const uint32_t cluster_cores =
      cluster_ != nullptr ? std::max<uint32_t>(1, cluster_->total_alive_cores())
                          : options_.cores;
  const uint32_t map_cores =
      options_.cores_track_tasks
          ? std::max<uint32_t>(1, static_cast<uint32_t>(batch.blocks.size()))
          : cluster_cores;
  const uint32_t reduce_cores =
      options_.cores_track_tasks ? std::max<uint32_t>(1, query_->reduce_tasks)
                                 : cluster_cores;

  // Execute both stages (scheduler uses the smaller of the two core counts
  // internally per stage via two calls).
  BatchExecution exec;
  {
    // BatchExecutor schedules each stage with one core count; when the two
    // differ (elasticity), run it with map cores and rescale the reduce
    // stage below.
    exec = query_->executor->Execute(batch, query_->reduce_tasks, map_cores, pool_.get());
    if (reduce_cores != map_cores) {
      StageSchedule rs = ScheduleStage(exec.reduce_task_costs, reduce_cores);
      exec.reduce_makespan = rs.makespan;
      exec.reduce_completions = std::move(rs.completion);
    }
  }

  // Injected stragglers / transient task failures: retry + speculation
  // adjust the map-task durations before scheduling finalizes.
  const bool retry_exhausted =
      ApplyTaskPerturbations(batch.batch_id, map_cores, &exec, &report);

  if (cluster_ != nullptr) {
    // Re-schedule the Map stage with data locality over per-node cores:
    // every task prefers a node holding a replica of its block.
    auto placements =
        cluster_->PlaceBlocks(static_cast<uint32_t>(batch.blocks.size()));
    if (placements.ok()) {
      LocalityStageResult locality = ScheduleMapStageWithLocality(
          exec.map_task_costs, *placements, *cluster_);
      exec.map_makespan = locality.makespan;
      report.remote_map_tasks = locality.remote_tasks;
    }
  }

  // Failure-detection points 2 and 3: mid-stage. A node lost while a stage
  // runs discards that attempt's in-flight state; the attempted makespans
  // stay on the clock (the pipeline slot was spent) and the batch is redone
  // from replicated input on the survivors, charged to recovery_time.
  bool replay_current = retry_exhausted;
  replay_current |= PollFaults(batch.batch_id, FaultPoint::kMapStage, &report);
  replay_current |=
      PollFaults(batch.batch_id, FaultPoint::kReduceStage, &report);
  if (crashed_) return report;  // died mid-stage: this batch never completes
  if (replay_current) {
    Result<BatchExecution> redo =
        store_ != nullptr
            ? ReplayBatchFromStore(batch.batch_id, &report)
            : Result<BatchExecution>(
                  Status::Invalid("no replicated input to replay from"));
    if (redo.ok()) {
      exec.output = std::move(redo->output);
    } else {
      // Exactly-once is lost for this batch: no surviving replica (or no
      // store at all). Keep the original attempt's output so the stream
      // continues, but flag the loss.
      PROMPT_LOG(kWarn) << "batch " << batch.batch_id
                        << " unrecoverable: " << redo.status().ToString();
      report.unrecoverable = true;
    }
  }

  report.map_makespan = exec.map_makespan;
  report.reduce_makespan = exec.reduce_makespan;
  report.processing_time = report.partition_overflow + exec.map_makespan +
                           exec.reduce_makespan + report.recovery_time;
  report.w = static_cast<double>(report.processing_time) /
             static_cast<double>(interval);
  report.reduce_bucket_bsi = BucketSizeImbalance(exec.bucket_tuples);

  if (!exec.reduce_completions.empty()) {
    double sum = 0, lo = 1e300, hi = 0;
    for (TimeMicros c : exec.reduce_completions) {
      double ms = static_cast<double>(c) / 1000.0;
      sum += ms;
      lo = std::min(lo, ms);
      hi = std::max(hi, ms);
    }
    report.reduce_completion_mean_ms =
        sum / static_cast<double>(exec.reduce_completions.size());
    report.reduce_completion_min_ms = lo;
    report.reduce_completion_max_ms = hi;
  }

  // Extra queries run their Map/Reduce stages over the same blocks
  // sequentially (one shared cluster), extending the batch's processing
  // time the way consecutive Spark jobs on one context would.
  for (ExtraQuery& extra : extra_queries_) {
    BatchExecution extra_exec =
        extra.executor->Execute(batch, query_->reduce_tasks, map_cores, pool_.get());
    report.processing_time +=
        extra_exec.map_makespan + extra_exec.reduce_makespan;
    extra.window->AddBatch(std::move(extra_exec.output));
  }
  if (!extra_queries_.empty()) {
    report.w = static_cast<double>(report.processing_time) /
               static_cast<double>(interval);
  }

  if (options_.replicate_input) {
    query_->last_replica = std::make_unique<PartitionedBatch>(batch);
    query_->last_output = exec.output;
  }
  if (store_ != nullptr && batch.batch_id >= job_.window_batches) {
    // §8 GC rule: a batch expiring from the window can never be replayed
    // again, so its replicas are dropped.
    store_->Evict(batch.batch_id - job_.window_batches);
  }
  if (journal_ != nullptr) {
    // Commutative hash of the per-key window contribution, taken at the
    // exact hand-off into the window: equal hashes every batch imply equal
    // window aggregates between record and replay.
    report.output_hash = HashBatchOutput(exec.output);
  }
  query_->window->AddBatch(std::move(exec.output));
  if (cluster_ != nullptr) {
    // Track which node hosts this batch's reduce-bucket state, mirroring the
    // window's retained history: losing that node later triggers a replay.
    query_->window_state_nodes.push_back(QueryContext::WindowReplica{
        batch.batch_id, PickStateNode(batch.batch_id)});
    while (query_->window_state_nodes.size() > query_->window->depth()) {
      query_->window_state_nodes.pop_front();
    }
  }
  if (durable_ != nullptr && options_.store.fsync == FsyncPolicy::kBatch) {
    // The kBatch durability point: everything up to and including this
    // batch is on disk once this returns; a crash before it loses only the
    // current batch's (torn) append.
    if (Status st = durable_->Sync(); !st.ok()) {
      PROMPT_LOG(kWarn) << "durable sync failed: " << st.ToString();
    }
  }
  return report;
}

Result<size_t> MicroBatchEngine::AddQuery(JobSpec job) {
  if (run_started_) {
    return Status::Invalid("AddQuery must be called before the first Run");
  }
  ExtraQuery extra;
  extra.executor = std::make_unique<BatchExecutor>(
      job, CostModel(options_.cost), query_->allocator.get(), options_.mode);
  extra.executor->BindMetrics(obs_->registry());
  extra.window = std::make_unique<WindowState>(job.reduce, job.window_batches);
  extra.job = std::move(job);
  extra_queries_.push_back(std::move(extra));
  return extra_queries_.size() - 1;
}

Result<const WindowState*> MicroBatchEngine::QueryWindow(
    size_t query_id) const {
  if (query_id >= extra_queries_.size()) {
    return Status::OutOfRange("no such query id");
  }
  return static_cast<const WindowState*>(extra_queries_[query_id].window.get());
}

Status MicroBatchEngine::KillNode(uint32_t node) {
  if (cluster_ == nullptr) return Status::Invalid("cluster mode disabled");
  PROMPT_RETURN_NOT_OK(cluster_->KillNode(node));
  // The node's memory died with it: its replica copies are gone for good
  // (reviving later restores cores only). Recovery — replay of in-window
  // batches and the replication top-up — runs at the next batch boundary,
  // the engine's failure-detection point.
  store_->DropNode(node);
  pending_node_losses_.push_back(node);
  return Status::OK();
}

Status MicroBatchEngine::ReviveNode(uint32_t node) {
  if (cluster_ == nullptr) return Status::Invalid("cluster mode disabled");
  PROMPT_RETURN_NOT_OK(cluster_->ReviveNode(node));
  if (query_->elastic != nullptr) {
    query_->elastic->OnCapacityChange(cluster_->total_alive_cores());
    query_->map_tasks = query_->elastic->map_tasks();
    query_->reduce_tasks = query_->elastic->reduce_tasks();
  }
  return Status::OK();
}

std::vector<uint32_t> MicroBatchEngine::AliveNodes() const {
  std::vector<uint32_t> alive;
  if (cluster_ == nullptr) return alive;
  alive.reserve(cluster_->nodes());
  for (uint32_t n = 0; n < cluster_->nodes(); ++n) {
    if (cluster_->alive(n)) alive.push_back(n);
  }
  return alive;
}

uint32_t MicroBatchEngine::PickStateNode(uint64_t batch_id) const {
  const std::vector<uint32_t> alive = AliveNodes();
  if (alive.empty()) return 0;
  return alive[batch_id % alive.size()];
}

bool MicroBatchEngine::PollFaults(uint64_t batch_id, FaultPoint point,
                                  BatchReport* report) {
  if (fault_ == nullptr || cluster_ == nullptr) return false;
  bool killed = false;
  auto journal_fault = [&](const FaultEvent& event) {
    if (journal_ == nullptr) return;
    JournalFault jf;
    jf.batch_id = batch_id;
    jf.point = static_cast<uint8_t>(point);
    jf.kind = static_cast<uint8_t>(event.kind);
    jf.target = event.target;
    if (Status st = journal_->AppendFault(jf); !st.ok()) {
      PROMPT_LOG(kWarn) << "journal: fault append failed: " << st.ToString();
    }
  };
  for (const FaultEvent& event : fault_->Poll(batch_id, point, AliveNodes())) {
    if (event.kind == FaultKind::kCrash) {
      journal_fault(event);
      // The whole process dies: the durable store keeps only what was
      // fsynced (plus a torn tail for recovery to truncate); everything in
      // memory — window, replicas, this batch — is gone. The run stops.
      PROMPT_LOG(kWarn) << "fault injected: process crash at batch "
                        << batch_id;
      crashed_ = true;
      crashed_at_batch_ = batch_id;
      if (durable_ != nullptr) {
        if (Status st = durable_->SimulateCrash(/*tear_tail=*/true);
            !st.ok()) {
          PROMPT_LOG(kWarn) << "crash simulation failed: " << st.ToString();
        }
      }
      break;
    }
    if (event.kind == FaultKind::kRestart) {
      continue;  // consumed by scenario runners, not the engine itself
    }
    if (event.kind == FaultKind::kKillNode) {
      Status st = cluster_->KillNode(event.target);
      if (!st.ok()) continue;  // already dead / unknown node: no-op
      PROMPT_LOG(kWarn) << "fault injected: node " << event.target
                        << " killed at batch " << batch_id;
      journal_fault(event);
      store_->DropNode(event.target);
      RecoverFromNodeLoss(event.target, report);
      killed = true;
    } else if (event.kind == FaultKind::kReviveNode) {
      Status st = cluster_->ReviveNode(event.target);
      if (!st.ok()) continue;
      journal_fault(event);
      // The node rejoins with empty memory: capacity is back (the elastic
      // controller may scale out again) and the extra room lets the store
      // restore the replication factor.
      TopUpStoreReplication(report);
      if (query_->elastic != nullptr) {
        query_->elastic->OnCapacityChange(cluster_->total_alive_cores());
        query_->map_tasks = query_->elastic->map_tasks();
        query_->reduce_tasks = query_->elastic->reduce_tasks();
      }
    }
  }
  return killed;
}

void MicroBatchEngine::RecoverFromNodeLoss(uint32_t node, BatchReport* report) {
  report->recovered_from_failure = true;
  // Replay every in-window batch whose reduce-bucket state lived on the dead
  // node: recompute from replicated input and patch its window contribution.
  for (size_t i = 0; i < query_->window_state_nodes.size(); ++i) {
    QueryContext::WindowReplica& wr = query_->window_state_nodes[i];
    if (wr.node != node) continue;
    Result<BatchExecution> redo = ReplayBatchFromStore(wr.batch_id, report);
    if (!redo.ok()) {
      PROMPT_LOG(kWarn) << "in-window batch " << wr.batch_id
                        << " unrecoverable: " << redo.status().ToString();
      report->unrecoverable = true;
      continue;
    }
    Status st = query_->window->ReplaceBatch(i, std::move(redo->output));
    if (!st.ok()) {
      PROMPT_LOG(kWarn) << "window patch failed for batch " << wr.batch_id
                        << ": " << st.ToString();
      continue;
    }
    wr.node = PickStateNode(wr.batch_id);  // re-home on a survivor
  }
  // Re-replicate under-replicated batches back toward the target factor.
  TopUpStoreReplication(report);
  // Alg. 4 capacity feed: the controller sees the reduced cluster now, not
  // d batches of degraded W later.
  if (query_->elastic != nullptr) {
    query_->elastic->OnCapacityChange(cluster_->total_alive_cores());
    query_->map_tasks = query_->elastic->map_tasks();
    query_->reduce_tasks = query_->elastic->reduce_tasks();
  }
}

Result<BatchExecution> MicroBatchEngine::ReplayBatchFromStore(
    uint64_t batch_id, BatchReport* report) {
  if (store_ == nullptr) return Status::Invalid("cluster mode disabled");
  PROMPT_ASSIGN_OR_RETURN(PartitionedBatch replica, store_->Read(batch_id));
  // Alg. 2-flavoured re-plan: the replica's block count assumed the original
  // cluster; repack to at most the cores that survive.
  const uint32_t cores = std::max<uint32_t>(1, cluster_->total_alive_cores());
  RepackBlocks(&replica, cores);
  BatchExecution redo =
      query_->executor->Execute(replica, query_->reduce_tasks, cores, pool_.get());
  report->recovery_time += redo.map_makespan + redo.reduce_makespan;
  ++report->batches_replayed;
  return redo;
}

void MicroBatchEngine::TopUpStoreReplication(BatchReport* report) {
  if (store_ == nullptr) return;
  TopUpResult topup =
      store_->TopUpReplication(options_.cluster.replication_factor);
  report->under_replicated_batches = topup.under_replicated;
  report->recovery_time += static_cast<TimeMicros>(
      options_.cost.replicate_per_kib_us *
      static_cast<double>(topup.bytes_copied) / 1024.0);
}

bool MicroBatchEngine::ApplyTaskPerturbations(uint64_t batch_id,
                                              uint32_t map_cores,
                                              BatchExecution* exec,
                                              BatchReport* report) {
  if (fault_ == nullptr) return false;
  const TaskPerturbations faults = fault_->TaskFaults(batch_id);
  if (faults.empty()) return false;
  const std::vector<TimeMicros> clean = exec->map_task_costs;
  for (const auto& [task, delay] : faults.delays) {
    if (task < exec->map_task_costs.size()) {
      exec->map_task_costs[task] += delay;
    }
  }
  bool exhausted = false;
  for (const auto& [task, failures] : faults.failures) {
    if (task >= exec->map_task_costs.size()) continue;
    const RetryOutcome outcome = ApplyRetryPolicy(
        exec->map_task_costs[task], failures, options_.faults.max_task_retries,
        options_.faults.retry_backoff);
    exec->map_task_costs[task] = outcome.effective_cost;
    report->tasks_retried += outcome.retries;
    exhausted |= outcome.exhausted;
  }
  if (options_.faults.speculation_enabled) {
    SpeculationResult spec = ApplySpeculation(
        exec->map_task_costs, clean, options_.faults.speculation_multiplier);
    exec->map_task_costs = std::move(spec.costs);
    report->tasks_speculated += spec.speculated;
  }
  // Re-derive the map makespan from the perturbed durations (cluster mode
  // re-schedules once more with locality right after).
  StageSchedule ms = ScheduleStage(exec->map_task_costs, map_cores);
  exec->map_makespan = ms.makespan;
  return exhausted;
}

Result<std::vector<KV>> MicroBatchEngine::RecomputeBatchFromStore(
    uint64_t batch_id) {
  if (store_ == nullptr) return Status::Invalid("cluster mode disabled");
  PROMPT_ASSIGN_OR_RETURN(PartitionedBatch batch, store_->Read(batch_id));
  BatchExecution redo = query_->executor->Execute(
      batch, query_->reduce_tasks,
      std::max<uint32_t>(1, cluster_->total_alive_cores()), pool_.get());
  return std::move(redo.output);
}

RunSummary MicroBatchEngine::Run(uint32_t num_batches) {
  run_started_ = true;
  RunSummary summary;
  if (crashed_) {
    summary.crashed = true;
    summary.crashed_at_batch = crashed_at_batch_;
    return summary;
  }
  summary.batches.reserve(num_batches);
  const bool observe = obs_->active();
  if (observe) obs_->OnRunStart(num_batches);

  for (uint32_t i = 0; i < num_batches; ++i) {
    const TimeMicros interval = current_interval_;
    const TimeMicros start = next_batch_start_;
    const TimeMicros end = start + interval;
    next_batch_start_ = end;

    // --- Batching phase: accumulate this interval's tuples. ---
    query_->partitioner->Begin(query_->map_tasks, start, end);
    if (ingest_ != nullptr) ingest_->BeginBatch(start, end);
    auto sink = [&](const Tuple& t) {
      // The flight-recorder tap: every consumed tuple, in consumption
      // order, before shard routing — replay re-forms identical batches
      // from `ts < end` at any shard count.
      if (journal_ != nullptr) journal_->RecordTuple(t);
      if (ingest_ != nullptr) {
        ingest_->Ingest(t);
      } else {
        query_->partitioner->OnTuple(t);
      }
    };
    if (have_pending_ && pending_.ts < end) {
      sink(pending_);
      have_pending_ = false;
    }
    if (!have_pending_) {
      Tuple t;
      while (source_->Next(&t)) {
        if (t.ts >= end) {
          pending_ = t;
          have_pending_ = true;
          break;
        }
        sink(t);
      }
    }

    PartitionedBatch batch;
    if (ingest_ != nullptr) {
      const AccumulatedBatch& merged = ingest_->SealBatch();
      if (!query_->partitioner->SealAccumulated(merged, query_->next_batch_id, &batch)) {
        // No quasi-sorted fast path: replay the merged batch through the
        // per-tuple interface in quasi-sorted order.
        for (const SortedKeyRun& run : merged.keys()) {
          merged.ForEachTuple(run, 0, run.count,
                              [&](const Tuple& t) { query_->partitioner->OnTuple(t); });
        }
        // Sketch mode keeps tail tuples outside the run list — replay them
        // too, or never-promoted keys silently vanish from the batch.
        for (const TailBucket& bucket : merged.tail()) {
          merged.ForEachTailTuple(bucket, [&](const Tuple& t) {
            query_->partitioner->OnTuple(t);
          });
        }
        batch = query_->partitioner->Seal(query_->next_batch_id);
      }
      ++query_->next_batch_id;
      // The merge runs in the release slack alongside Alg. 2, on the same
      // critical path toward the heartbeat — account it as decision cost.
      batch.partition_cost += ingest_->last_metrics().merge_latency;
    } else {
      batch = query_->partitioner->Seal(query_->next_batch_id++);
    }

    // Flight recorder: journal the sealed batch's tuples and wall-clock
    // inputs *before* processing, so a crashed batch's stream is on record;
    // under --replay the recorded inputs are injected here instead.
    const BatchEnv batch_env = SettleBatchEnv(
        options_.journal.inject, /*owner=*/0, &batch,
        ingest_ != nullptr ? &ingest_->last_metrics() : nullptr);
    if (journal_ != nullptr) {
      if (Status st = journal_->AppendBatchTuples(batch.batch_id); !st.ok()) {
        PROMPT_LOG(kWarn) << "journal: tuple append failed: " << st.ToString();
      }
      if (Status st = journal_->AppendEnv(0, batch_env); !st.ok()) {
        PROMPT_LOG(kWarn) << "journal: env append failed: " << st.ToString();
      }
    }

    // --- Processing phase: starts at the heartbeat, or when the pipeline
    // frees if earlier batches are still running (queueing). ---
    const TimeMicros proc_start = std::max(end, query_->pipeline_free_at);
    BatchReport report = ProcessBatch(std::move(batch), interval);
    if (crashed_) {
      // The process died inside this batch: its report is never published
      // (no window contribution, no feedback) — exactly what an external
      // SIGKILL leaves behind.
      summary.crashed = true;
      summary.crashed_at_batch = crashed_at_batch_;
      // The journal is the observer of the crash, not its victim: flush so
      // the crashed batch's tuples (already appended above) survive for
      // replay. An external SIGKILL would lose the unsynced tail instead —
      // and replay then runs exactly the published batches, consistently.
      if (journal_ != nullptr) {
        if (Status st = journal_->Sync(); !st.ok()) {
          PROMPT_LOG(kWarn) << "journal: crash flush failed: " << st.ToString();
        }
      }
      break;
    }
    report.queue_delay = proc_start - end;
    query_->pipeline_free_at = proc_start + report.processing_time;
    report.latency = query_->pipeline_free_at - start;
    if (ingest_ != nullptr) {
      // Fold the batching phase's per-shard stats into the report; this
      // embedded form is the only way callers see per-shard ingest state.
      report.ingest = ingest_->last_metrics();
      report.has_ingest = true;
      InjectIngestEnv(options_.journal.inject, /*owner=*/0, batch_env,
                      &report);
    }

    // Fault-tolerance aggregates.
    summary.batches_replayed += report.batches_replayed;
    summary.tasks_retried += report.tasks_retried;
    summary.tasks_speculated += report.tasks_speculated;
    if (report.recovered_from_failure) ++summary.failures_recovered;
    summary.total_recovery_time += report.recovery_time;
    summary.max_recovery_time =
        std::max(summary.max_recovery_time, report.recovery_time);
    summary.data_loss |= report.unrecoverable;

    // Stability accounting (back-pressure would engage past the bound).
    if (static_cast<double>(report.queue_delay) >
        options_.unstable_queue_intervals * static_cast<double>(interval)) {
      summary.stable = false;
      summary.unstable_at_batch =
          std::min(summary.unstable_at_batch, report.batch_id);
    }

    // --- Feedback loops. ---
    // Receiver estimates for Alg. 1 (N_est, K_avg).
    query_->ObserveBatchEstimates(report.num_tuples, report.num_keys);
    if (ingest_ != nullptr) {
      ingest_->UpdateEstimates(static_cast<uint64_t>(query_->est_tuples),
                               static_cast<uint64_t>(query_->est_keys));
    }

    // Batch resizing baseline [12]: step the next interval toward the
    // fixed point processing_time = target * interval.
    if (query_->resizer != nullptr) {
      current_interval_ =
          query_->resizer->OnBatchCompleted(interval, report.processing_time);
    }

    // Alg. 4 elasticity.
    if (query_->elastic != nullptr) {
      ScaleDecision d = query_->elastic->OnBatchCompleted(
          report.w, report.num_tuples, report.num_keys);
      (void)d;
      query_->map_tasks = query_->elastic->map_tasks();
      query_->reduce_tasks = query_->elastic->reduce_tasks();
    }

    if (observe) {
      if (obs_->tracing_active()) {
        RecordBatchTrace(report, interval, start);
        obs_->OnBatchComplete(
            report, obs_->recorder()->EndBatch(report.num_tuples,
                                               report.num_keys,
                                               report.latency));
      } else {
        obs_->OnBatchComplete(report, BatchTrace{});
      }
    }

    // Telemetry → partitioning feedback (src/adapt/): the controller sees
    // this batch's report and autopsy verdict; an approved switch is applied
    // here — after Seal of this batch, before Begin of the next — so no
    // in-flight batch ever mixes techniques.
    if (query_->adapt != nullptr) {
      const BatchAutopsy autopsy = ExplainBatch(report, options_.obs.autopsy);
      const AdaptiveDecision decision =
          query_->adapt->OnBatchCompleted(report, autopsy);
      if (decision.switch_now) {
        query_->ApplyTechniqueSwitch(decision);
        summary.technique_switches.push_back(RunSummary::TechniqueSwitch{
            report.batch_id, decision.from, decision.to, decision.reason});
        if (std::string_view(decision.reason) == "skew") {
          ++summary.technique_switches_up;
        } else {
          ++summary.technique_switches_down;
        }
        if (journal_ != nullptr) {
          JournalSwitch js;
          js.owner = 0;
          js.after_batch = report.batch_id;
          js.from = static_cast<int32_t>(decision.from);
          js.to = static_cast<int32_t>(decision.to);
          js.reason = decision.reason;
          if (Status st = journal_->AppendSwitch(js); !st.ok()) {
            PROMPT_LOG(kWarn) << "journal: switch append failed: "
                              << st.ToString();
          }
        }
      }
    }

    if (journal_ != nullptr) {
      // The published batch's fingerprint: signals, verdict, output hash.
      // ExplainBatch is a pure function of the report, so this recompute
      // costs nothing in determinism even when the adaptive path already
      // ran it.
      const BatchAutopsy autopsy = ExplainBatch(report, options_.obs.autopsy);
      if (Status st = journal_->AppendOutcome(0, OutcomeFrom(report, autopsy));
          !st.ok()) {
        PROMPT_LOG(kWarn) << "journal: outcome append failed: "
                          << st.ToString();
      }
      if (Status st = journal_->SyncBatch(); !st.ok()) {
        PROMPT_LOG(kWarn) << "journal: sync failed: " << st.ToString();
      }
    }

    if (HttpExporter* exporter = obs_->exporter(); exporter != nullptr) {
      HealthStatus health;
      health.data_loss = durable_recovery_.data_loss || summary.data_loss;
      health.init_status =
          init_status_.ok() ? "ok" : init_status_.ToString();
      health.last_batch_id = static_cast<int64_t>(report.batch_id);
      health.journal_lag_bytes =
          journal_ != nullptr ? journal_->unsynced_bytes() : 0;
      exporter->UpdateHealth(health);
    }

    summary.batches.push_back(report);
  }
  if (observe) obs_->OnRunEnd();
  return summary;
}

void MicroBatchEngine::RecordBatchTrace(const BatchReport& report,
                                        TimeMicros interval,
                                        TimeMicros batch_start) {
  TraceRecorder* rec = obs_->recorder();
  rec->BeginBatch(report.batch_id, batch_start);

  // Depth-0 spans tile the end-to-end latency:
  //   latency = interval + queue_delay + overflow + map + reduce (+ extras).
  rec->AddSpan("accumulate", 0, interval, 0);
  if (report.technique_switched) {
    // Annotation marking the first batch the switched-to technique sealed.
    std::string note = "adapt_switch:";
    note += report.switched_from >= 0
                ? PartitionerTypeName(
                      static_cast<PartitionerType>(report.switched_from))
                : "?";
    note += "->";
    note += report.technique >= 0
                ? PartitionerTypeName(
                      static_cast<PartitionerType>(report.technique))
                : "?";
    rec->AddSpan(note, 0, 0, 1);
  }
  if (report.has_ingest) {
    // Wall-clock annotations from the sharded batching phase, nested under
    // the accumulate interval (the barrier and merge run at the cut-off).
    rec->AddSpan("ingest_route", 0, report.ingest.ingest_wall, 1);
    rec->AddSpan("seal_barrier", interval, report.ingest.seal_barrier_latency,
                 1);
    rec->AddSpan("kway_merge", interval, report.ingest.merge_latency, 1);
  }
  if (report.sketch.sketch_mode) {
    // Annotation marking a heavy-hitter batch with its coverage (promille,
    // spans carry no float payload): sketch_mode:987 = 98.7% head coverage.
    std::string note = "sketch_mode:";
    note += std::to_string(
        static_cast<int>(report.sketch.head_coverage() * 1000.0));
    rec->AddSpan(note, 0, 0, 1);
  }
  if (report.store_append_us > 0) {
    // Durable-log append of the sealed batch, right at the cut-off (wall
    // clock, annotation depth: the virtual timeline is unaffected).
    rec->AddSpan("store_append", interval, report.store_append_us, 1);
  }
  // The B-BPFI plan runs inside the early-release slack; only its overflow
  // reaches the critical path (as the "plan_overflow" span below).
  const TimeMicros scaled_cost = static_cast<TimeMicros>(
      options_.cost.partition_cost_scale *
      static_cast<double>(report.partition_cost));
  const TimeMicros in_slack = scaled_cost - report.partition_overflow;
  if (in_slack > 0) rec->AddSpan("plan", interval - in_slack, in_slack, 1);

  TimeMicros cursor = interval;
  if (report.queue_delay > 0) {
    rec->AddSpan("queue", cursor, report.queue_delay, 0);
    cursor += report.queue_delay;
  }
  if (report.partition_overflow > 0) {
    rec->AddSpan("plan_overflow", cursor, report.partition_overflow, 0);
    cursor += report.partition_overflow;
  }
  rec->AddSpan("map", cursor, report.map_makespan, 0);
  cursor += report.map_makespan;
  rec->AddSpan("reduce", cursor, report.reduce_makespan, 0);
  cursor += report.reduce_makespan;
  // Recovery work (replays, re-replication) done while this batch held the
  // pipeline — modeled as running after the ordinary stages.
  if (report.recovery_time > 0) {
    rec->AddSpan("recovery", cursor, report.recovery_time, 0);
    cursor += report.recovery_time;
  }
  // Extra queries sharing the batching phase extend processing sequentially.
  const TimeMicros extras =
      report.processing_time -
      (report.partition_overflow + report.map_makespan +
       report.reduce_makespan + report.recovery_time);
  if (extras > 0) rec->AddSpan("extra_queries", cursor, extras, 0);
}

Status MicroBatchEngine::VerifyRecoveryOfLastBatch() {
  if (!options_.replicate_input) {
    return Status::Invalid("replication disabled; enable replicate_input");
  }
  if (query_->last_replica == nullptr) {
    return Status::Invalid("no batch has been processed yet");
  }
  // Recompute from the replicated input blocks, exactly as the recovery
  // path would after losing the batch's state (§8) — over the cores that
  // are actually alive now, not the configured total: recovery after a node
  // loss runs on the shrunken cluster.
  const uint32_t recovery_cores =
      cluster_ != nullptr ? std::max<uint32_t>(1, cluster_->total_alive_cores())
                          : options_.cores;
  BatchExecution redo = query_->executor->Execute(*query_->last_replica, query_->reduce_tasks,
                                           recovery_cores, pool_.get());
  last_verify_recovery_cost_ = redo.map_makespan + redo.reduce_makespan;
  std::unordered_map<KeyId, double> original;
  for (const KV& kv : query_->last_output) original[kv.key] = kv.value;
  if (redo.output.size() != query_->last_output.size()) {
    return Status::Unknown("recomputed output cardinality mismatch");
  }
  for (const KV& kv : redo.output) {
    auto it = original.find(kv.key);
    if (it == original.end()) {
      return Status::Unknown("recomputed output contains unexpected key");
    }
    if (std::abs(it->second - kv.value) > 1e-9 * std::max(1.0, std::abs(it->second))) {
      return Status::Unknown("recomputed aggregate differs (not exactly-once)");
    }
  }
  return Status::OK();
}

}  // namespace prompt
