#include "engine/backpressure.h"

#include <algorithm>

namespace prompt {

bool IsStableRun(const RunSummary& summary, TimeMicros batch_interval,
                 const StabilityCriteria& criteria) {
  if (!summary.stable) return false;
  if (summary.batches.size() <= criteria.warmup_batches) return false;
  if (summary.MeanW(criteria.warmup_batches) > criteria.max_mean_w) {
    return false;
  }
  const TimeMicros final_queue = summary.batches.back().queue_delay;
  return static_cast<double>(final_queue) <=
         criteria.max_final_queue_frac * static_cast<double>(batch_interval);
}

double FindMaxSustainableRate(
    const std::function<RunSummary(double rate)>& run_at_rate,
    TimeMicros batch_interval, double lo_rate, double hi_rate,
    int iterations, const StabilityCriteria& criteria) {
  PROMPT_CHECK(lo_rate > 0 && hi_rate > lo_rate);
  // Ensure the bracket actually brackets: grow hi until unstable (bounded).
  double lo = lo_rate;
  double hi = hi_rate;
  if (IsStableRun(run_at_rate(hi), batch_interval, criteria)) {
    return hi;  // even the max probed rate is sustainable
  }
  if (!IsStableRun(run_at_rate(lo), batch_interval, criteria)) {
    return 0;  // even the min probed rate overloads the system
  }
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (IsStableRun(run_at_rate(mid), batch_interval, criteria)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace prompt
