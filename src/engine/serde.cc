#include "engine/serde.h"

#include <cstring>

#include "common/hash.h"

namespace prompt {

namespace {

constexpr uint32_t kBatchMagic = 0x50524d42;  // "PRMB"

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}
void PutU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}
void PutI64(int64_t v, std::string* out) { PutU64(static_cast<uint64_t>(v), out); }
void PutF64(double v, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(bits, out);
}

bool GetU32(const std::string& in, size_t* off, uint32_t* v) {
  if (*off + 4 > in.size()) return false;
  std::memcpy(v, in.data() + *off, 4);
  *off += 4;
  return true;
}
bool GetU64(const std::string& in, size_t* off, uint64_t* v) {
  if (*off + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *off, 8);
  *off += 8;
  return true;
}
bool GetI64(const std::string& in, size_t* off, int64_t* v) {
  return GetU64(in, off, reinterpret_cast<uint64_t*>(v));
}
bool GetF64(const std::string& in, size_t* off, double* v) {
  uint64_t bits;
  if (!GetU64(in, off, &bits)) return false;
  std::memcpy(v, &bits, 8);
  return true;
}

uint64_t Checksum(const std::string& bytes, size_t from) {
  // FNV over the payload, mixed; cheap and adequate for corruption checks.
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = from; i < bytes.size(); ++i) {
    h ^= static_cast<unsigned char>(bytes[i]);
    h *= 1099511628211ULL;
  }
  return Mix64(h);
}

}  // namespace

void EncodeBlock(const DataBlock& block, std::string* out) {
  PutU32(block.block_id(), out);
  PutU64(block.size(), out);
  PutU64(block.cardinality(), out);
  for (const Tuple& t : block.tuples()) {
    PutI64(t.ts, out);
    PutU64(t.key, out);
    PutF64(t.value, out);
  }
  for (const KeyFragment& f : block.fragments()) {
    PutU64(f.key, out);
    PutU64(f.count, out);
    out->push_back(f.split ? 1 : 0);
  }
}

Result<DataBlock> DecodeBlock(const std::string& bytes, size_t* offset) {
  uint32_t block_id = 0;
  uint64_t tuples = 0, fragments = 0;
  if (!GetU32(bytes, offset, &block_id) || !GetU64(bytes, offset, &tuples) ||
      !GetU64(bytes, offset, &fragments)) {
    return Status::Invalid("truncated block header");
  }
  // Sanity bound: each tuple needs 24 bytes, each fragment 17. Compare by
  // division — a forged count near 2^64 would wrap a multiplied form and
  // sail straight past the check into a giant reserve().
  const uint64_t avail = bytes.size() - *offset;
  if (tuples > avail / 24) {
    return Status::Invalid("block header inconsistent with payload size");
  }
  if (fragments > (avail - tuples * 24) / 17) {
    return Status::Invalid("block header inconsistent with payload size");
  }
  DataBlock block(block_id);
  block.mutable_tuples().reserve(tuples);
  for (uint64_t i = 0; i < tuples; ++i) {
    Tuple t;
    if (!GetI64(bytes, offset, &t.ts) || !GetU64(bytes, offset, &t.key) ||
        !GetF64(bytes, offset, &t.value)) {
      return Status::Invalid("truncated tuple payload");
    }
    block.Append(t);
  }
  auto& frags = block.mutable_fragments();
  frags.reserve(fragments);
  for (uint64_t i = 0; i < fragments; ++i) {
    KeyFragment f;
    if (!GetU64(bytes, offset, &f.key) || !GetU64(bytes, offset, &f.count) ||
        *offset >= bytes.size()) {
      return Status::Invalid("truncated fragment payload");
    }
    f.split = bytes[(*offset)++] != 0;
    frags.push_back(f);
  }
  return block;
}

std::string EncodeBatch(const PartitionedBatch& batch) {
  std::string payload;
  PutU64(batch.batch_id, &payload);
  PutI64(batch.seal_time, &payload);
  PutU64(batch.num_tuples, &payload);
  PutU64(batch.num_keys, &payload);
  PutI64(batch.partition_cost, &payload);
  PutU32(static_cast<uint32_t>(batch.blocks.size()), &payload);
  for (const DataBlock& block : batch.blocks) EncodeBlock(block, &payload);

  std::string out;
  PutU32(kBatchMagic, &out);
  PutU64(Checksum(payload, 0), &out);
  out += payload;
  return out;
}

Result<PartitionedBatch> DecodeBatch(const std::string& bytes) {
  size_t off = 0;
  uint32_t magic = 0;
  uint64_t checksum = 0;
  if (!GetU32(bytes, &off, &magic) || magic != kBatchMagic) {
    return Status::Invalid("bad batch magic");
  }
  if (!GetU64(bytes, &off, &checksum)) {
    return Status::Invalid("truncated checksum");
  }
  if (Checksum(bytes, off) != checksum) {
    return Status::Invalid("batch payload checksum mismatch");
  }
  PartitionedBatch batch;
  uint32_t num_blocks = 0;
  if (!GetU64(bytes, &off, &batch.batch_id) ||
      !GetI64(bytes, &off, &batch.seal_time) ||
      !GetU64(bytes, &off, &batch.num_tuples) ||
      !GetU64(bytes, &off, &batch.num_keys) ||
      !GetI64(bytes, &off, &batch.partition_cost) ||
      !GetU32(bytes, &off, &num_blocks)) {
    return Status::Invalid("truncated batch header");
  }
  // Every block costs at least its 20-byte header; a count promising more
  // blocks than the remaining bytes could hold is forged (and must not
  // drive the reserve() below).
  if (num_blocks > (bytes.size() - off) / 20) {
    return Status::Invalid("batch header inconsistent with payload size");
  }
  batch.blocks.reserve(num_blocks);
  for (uint32_t b = 0; b < num_blocks; ++b) {
    PROMPT_ASSIGN_OR_RETURN(DataBlock block, DecodeBlock(bytes, &off));
    batch.blocks.push_back(std::move(block));
  }
  if (off != bytes.size()) {
    return Status::Invalid("trailing bytes after batch payload");
  }
  return batch;
}

}  // namespace prompt
