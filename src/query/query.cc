#include "query/query.h"

namespace prompt {

const char* AggregateName(Aggregate agg) {
  switch (agg) {
    case Aggregate::kCount: return "COUNT";
    case Aggregate::kSum: return "SUM";
    case Aggregate::kMin: return "MIN";
    case Aggregate::kMax: return "MAX";
  }
  return "?";
}

namespace {

class CountingFilterMap final : public MapFunction {
 public:
  CountingFilterMap(std::function<bool(const Tuple&)> filter, bool count)
      : filter_(std::move(filter)), count_(count) {}

  void Map(const Tuple& t, std::vector<KV>* out) const override {
    if (filter_ && !filter_(t)) return;
    out->push_back(KV{t.key, count_ ? 1.0 : t.value});
  }

 private:
  std::function<bool(const Tuple&)> filter_;
  bool count_;
};

}  // namespace

JobSpec MakeJob(Aggregate agg, std::function<bool(const Tuple&)> filter,
                uint32_t window_batches) {
  JobSpec job;
  job.map = std::make_shared<CountingFilterMap>(std::move(filter),
                                                agg == Aggregate::kCount);
  switch (agg) {
    case Aggregate::kCount:
    case Aggregate::kSum:
      job.reduce = std::make_shared<SumReduce>();
      break;
    case Aggregate::kMin:
      job.reduce = std::make_shared<MinReduce>();
      break;
    case Aggregate::kMax:
      job.reduce = std::make_shared<MaxReduce>();
      break;
  }
  job.window_batches = window_batches;
  return job;
}

Result<CompiledQuery> QueryBuilder::Build() const {
  if (slide_ <= 0) return Status::Invalid("slide must be positive");
  if (window_ <= 0) return Status::Invalid("window must be positive");
  if (window_ < slide_) {
    return Status::Invalid("window must be at least one slide long");
  }
  if (window_ % slide_ != 0) {
    return Status::Invalid(
        "window must be a whole multiple of the slide (batch interval)");
  }

  CompiledQuery query;
  query.window = window_;
  query.slide = slide_;
  query.top_k = top_k_;

  std::function<bool(const Tuple&)> filter;
  if (!predicates_.empty()) {
    auto preds = predicates_;
    filter = [preds](const Tuple& t) {
      for (const auto& p : preds) {
        if (!p(t)) return false;
      }
      return true;
    };
  }
  query.job = MakeJob(aggregate_, std::move(filter), query.window_batches());
  query.text = std::string("SELECT ") + AggregateName(aggregate_) +
               (predicates_.empty() ? "" : " WHERE <" +
                    std::to_string(predicates_.size()) + " predicates>") +
               " WINDOW " + std::to_string(window_ / kMicrosPerSecond) +
               "s SLIDE " + std::to_string(slide_ / kMicrosPerSecond) + "s";
  return query;
}

}  // namespace prompt
