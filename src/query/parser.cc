#include "query/parser.h"

#include <cctype>
#include <charconv>
#include <vector>

namespace prompt {

namespace {

struct Token {
  std::string text;   // uppercased
  std::string raw;    // original spelling (for error messages)
  size_t position;    // character offset in the input
};

std::vector<Token> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto is_op_char = [](char c) {
    return c == '<' || c == '>' || c == '=' || c == '!';
  };
  while (i < input.size()) {
    if (std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (is_op_char(input[i])) {
      while (i < input.size() && is_op_char(input[i])) ++i;
    } else {
      while (i < input.size() &&
             !std::isspace(static_cast<unsigned char>(input[i])) &&
             !is_op_char(input[i])) {
        ++i;
      }
    }
    Token t;
    t.raw = input.substr(start, i - start);
    t.text = t.raw;
    for (char& c : t.text) c = static_cast<char>(std::toupper(c));
    t.position = start;
    tokens.push_back(std::move(t));
  }
  return tokens;
}

// Local shorthand: propagate a Status as the Result error.
#define PROMPT_RETURN_QUERY(expr)          \
  do {                                     \
    ::prompt::Status _st = (expr);         \
    if (!_st.ok()) return _st;             \
  } while (0)

class Parser {
 public:
  explicit Parser(const std::string& text)
      : text_(text), tokens_(Tokenize(text)) {}

  Result<CompiledQuery> Parse() {
    PROMPT_RETURN_QUERY(Expect("SELECT"));
    PROMPT_RETURN_QUERY(ParseAggregate());
    if (Accept("TOP")) {
      PROMPT_RETURN_QUERY(ParseTopK());
    }
    if (Accept("WHERE")) {
      PROMPT_RETURN_QUERY(ParseCondition());
      while (Accept("AND")) {
        PROMPT_RETURN_QUERY(ParseCondition());
      }
    }
    PROMPT_RETURN_QUERY(Expect("WINDOW"));
    PROMPT_RETURN_QUERY(ParseDuration(&window_));
    if (Accept("SLIDE")) {
      PROMPT_RETURN_QUERY(ParseDuration(&slide_));
    }
    if (pos_ < tokens_.size()) {
      return Error("unexpected trailing token '" + tokens_[pos_].raw + "'");
    }

    QueryBuilder builder;
    builder.Select(aggregate_).Window(window_, slide_).Top(top_k_);
    for (auto& pred : predicates_) builder.Where(std::move(pred));
    PROMPT_ASSIGN_OR_RETURN(CompiledQuery query, builder.Build());
    query.text = text_;
    return query;
  }

 private:
  Status Error(const std::string& msg) const {
    size_t at = pos_ < tokens_.size() ? tokens_[pos_].position : text_.size();
    return Status::Invalid(msg + " at position " + std::to_string(at) +
                           " in query: " + text_);
  }

  bool Accept(const char* keyword) {
    if (pos_ < tokens_.size() && tokens_[pos_].text == keyword) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(const char* keyword) {
    if (!Accept(keyword)) {
      return Error(std::string("expected ") + keyword);
    }
    return Status::OK();
  }

  Status ParseAggregate() {
    if (Accept("COUNT")) {
      aggregate_ = Aggregate::kCount;
    } else if (Accept("SUM")) {
      aggregate_ = Aggregate::kSum;
    } else if (Accept("MIN")) {
      aggregate_ = Aggregate::kMin;
    } else if (Accept("MAX")) {
      aggregate_ = Aggregate::kMax;
    } else {
      return Error("expected aggregate (COUNT|SUM|MIN|MAX)");
    }
    return Status::OK();
  }

  Status ParseTopK() {
    double k = 0;
    PROMPT_RETURN_QUERY(ParseNumber(&k));
    if (k < 1 || k != static_cast<double>(static_cast<uint32_t>(k))) {
      return Error("TOP expects a positive integer");
    }
    top_k_ = static_cast<uint32_t>(k);
    return Status::OK();
  }

  Status ParseNumber(double* out) {
    if (pos_ >= tokens_.size()) return Error("expected a number");
    const std::string& raw = tokens_[pos_].raw;
    const char* begin = raw.data();
    const char* end = begin + raw.size();
    double value = 0;
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) {
      return Error("expected a number, got '" + raw + "'");
    }
    ++pos_;
    *out = value;
    return Status::OK();
  }

  Status ParseCondition() {
    bool on_value = false;
    if (Accept("VALUE")) {
      on_value = true;
    } else if (Accept("KEY")) {
      on_value = false;
    } else {
      return Error("expected VALUE or KEY");
    }
    if (pos_ >= tokens_.size()) return Error("expected comparison operator");
    std::string op = tokens_[pos_].text;
    if (op != "<" && op != "<=" && op != ">" && op != ">=" && op != "=" &&
        op != "==" && op != "!=") {
      return Error("unknown comparison operator '" + tokens_[pos_].raw + "'");
    }
    ++pos_;
    double rhs = 0;
    PROMPT_RETURN_QUERY(ParseNumber(&rhs));

    predicates_.push_back([on_value, op, rhs](const Tuple& t) {
      const double lhs =
          on_value ? t.value : static_cast<double>(t.key);
      if (op == "<") return lhs < rhs;
      if (op == "<=") return lhs <= rhs;
      if (op == ">") return lhs > rhs;
      if (op == ">=") return lhs >= rhs;
      if (op == "!=") return lhs != rhs;
      return lhs == rhs;  // "=" or "=="
    });
    return Status::OK();
  }

  Status ParseDuration(TimeMicros* out) {
    if (pos_ >= tokens_.size()) return Error("expected a duration");
    const std::string& tok = tokens_[pos_].text;
    size_t digits = 0;
    while (digits < tok.size() &&
           std::isdigit(static_cast<unsigned char>(tok[digits]))) {
      ++digits;
    }
    if (digits == 0) return Error("expected a duration, got '" + tok + "'");
    int64_t amount = 0;
    std::from_chars(tok.data(), tok.data() + digits, amount);
    std::string unit = tok.substr(digits);
    TimeMicros scale;
    if (unit == "MS") {
      scale = kMicrosPerMilli;
    } else if (unit == "S" || unit.empty()) {
      scale = kMicrosPerSecond;
    } else if (unit == "M") {
      scale = 60 * kMicrosPerSecond;
    } else {
      return Error("unknown duration unit '" + unit + "' (use MS, S or M)");
    }
    if (amount <= 0) return Error("duration must be positive");
    ++pos_;
    *out = amount * scale;
    return Status::OK();
  }

#undef PROMPT_RETURN_QUERY

  const std::string& text_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;

  Aggregate aggregate_ = Aggregate::kCount;
  uint32_t top_k_ = 0;
  std::vector<std::function<bool(const Tuple&)>> predicates_;
  TimeMicros window_ = Seconds(30);
  TimeMicros slide_ = Seconds(1);
};

}  // namespace

Result<CompiledQuery> ParseQuery(const std::string& text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace prompt
