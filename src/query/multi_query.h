// Multi-tenant query specs — the front door of the tenant subsystem
// (src/tenant/): one spec line per tenant, each carrying the tenant's
// weight, partitioning technique (or adaptive ladder), key filter and the
// declarative query text parser.h compiles. promptctl --queries=<file>
// loads one of these files and hands the specs to the MultiTenantEngine.
//
//   spec file := { line }
//   line      := '#' comment | blank |
//                TENANT id [WEIGHT n] [TECHNIQUE name]
//                [ADAPTIVE [ADAPT_D n] [CANDIDATES name,name,...]]
//                [KEYS filter] QUERY <query text>
//   filter    := all | mod:<M>:<R> | range:<LO>:<HI>
//
// Keywords are case-insensitive; ids, technique names and the query text
// keep their case. Example:
//
//   TENANT calm  WEIGHT 1 TECHNIQUE Hash KEYS mod:2:0 QUERY SELECT COUNT WINDOW 8S
//   TENANT noisy WEIGHT 3 ADAPTIVE CANDIDATES Hash,Prompt KEYS mod:2:1 QUERY SELECT COUNT WINDOW 8S
#pragma once

#include <string>
#include <vector>

#include "baselines/factory.h"
#include "common/result.h"
#include "model/tuple.h"
#include "query/parser.h"
#include "query/query.h"

namespace prompt {

/// \brief Which slice of the shared key space a tenant consumes. Tuples fan
/// out from the shared ingest shards to each tenant's accumulator through
/// this predicate (kAll duplicates the stream to the tenant).
struct KeyFilter {
  enum class Kind { kAll, kModulo, kRange };
  Kind kind = Kind::kAll;
  uint64_t modulo = 1;  ///< kModulo: key % modulo == residue
  uint64_t residue = 0;
  uint64_t lo = 0;  ///< kRange: lo <= key <= hi
  uint64_t hi = UINT64_MAX;

  bool Matches(KeyId key) const {
    switch (kind) {
      case Kind::kAll:
        return true;
      case Kind::kModulo:
        return key % modulo == residue;
      case Kind::kRange:
        return key >= lo && key <= hi;
    }
    return true;
  }

  /// "all", "mod:M:R" or "range:LO:HI" (Parse round-trips this).
  std::string ToString() const;
  static Result<KeyFilter> Parse(const std::string& text);
};

/// \brief One tenant's complete serving spec.
struct TenantQuerySpec {
  std::string id;
  uint32_t weight = 1;
  /// Static technique, or the adaptive ladder's initial rung.
  PartitionerType technique = PartitionerType::kPrompt;
  bool adaptive = false;
  /// Hysteresis depth (AdaptiveOptions::d); only meaningful when adaptive.
  int adapt_d = 3;
  /// Adaptive candidate ladder; empty = the AdaptiveOptions default.
  std::vector<PartitionerType> adapt_candidates;
  KeyFilter filter;
  CompiledQuery query;
};

/// \brief The AdaptiveOptions default candidate ladder (what an adaptive
/// spec without a CANDIDATES clause runs).
std::vector<PartitionerType> AdaptiveOptionsDefaultLadder();

/// \brief Serializes a spec back to its one-line text form; ParseQueryFile
/// round-trips it (the parser tests' invariant).
std::string TenantSpecLine(const TenantQuerySpec& spec);

/// \brief Parses a multi-query spec file (text contents). Rejects duplicate
/// tenant ids, zero or negative weights, unknown techniques/filters,
/// adaptive ladders missing the initial technique, and tenants whose SLIDE
/// differs (the slide is the shared heartbeat every tenant's window rides).
Result<std::vector<TenantQuerySpec>> ParseQueryFile(const std::string& text);

/// \brief ParseQueryFile over a file path.
Result<std::vector<TenantQuerySpec>> LoadQueryFile(const std::string& path);

}  // namespace prompt
