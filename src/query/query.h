// Declarative query layer (paper §2.1: "a streaming query Q submitted in a
// declarative or imperative form is compiled into a Map-Reduce execution
// graph"). QueryBuilder is the imperative form; parser.h compiles the
// declarative text form into the same CompiledQuery.
#pragma once

#include <functional>
#include <string>

#include "common/clock.h"
#include "common/result.h"
#include "engine/job.h"

namespace prompt {

/// \brief Aggregation applied per key at the Reduce stage.
enum class Aggregate { kCount, kSum, kMin, kMax };

const char* AggregateName(Aggregate agg);

/// \brief A compiled streaming query: the Map-Reduce job plus window
/// geometry and result shaping.
struct CompiledQuery {
  JobSpec job;
  /// Window length and slide in stream time. The engine's batch interval
  /// equals the slide; the window spans window/slide batches (Fig. 3).
  TimeMicros window = Seconds(30);
  TimeMicros slide = Seconds(1);
  /// 0 = report the full per-key answer; otherwise the k heaviest keys
  /// (the paper's TopKCount workload).
  uint32_t top_k = 0;
  std::string text;  ///< normalized description, e.g. for logging

  uint32_t window_batches() const {
    return static_cast<uint32_t>((window + slide - 1) / slide);
  }
};

/// \brief Imperative query construction.
///
/// ```
/// auto q = QueryBuilder()
///              .Select(Aggregate::kSum)
///              .Where([](const Tuple& t) { return t.value > 10; })
///              .Window(Seconds(30), Seconds(1))
///              .Top(5)
///              .Build();
/// ```
class QueryBuilder {
 public:
  QueryBuilder& Select(Aggregate agg) {
    aggregate_ = agg;
    return *this;
  }
  /// Adds a conjunct to the Map-stage filter.
  QueryBuilder& Where(std::function<bool(const Tuple&)> predicate) {
    predicates_.push_back(std::move(predicate));
    return *this;
  }
  QueryBuilder& Window(TimeMicros window, TimeMicros slide) {
    window_ = window;
    slide_ = slide;
    return *this;
  }
  QueryBuilder& Top(uint32_t k) {
    top_k_ = k;
    return *this;
  }

  /// Validates and compiles. Fails when the window is not a positive
  /// multiple of the slide.
  Result<CompiledQuery> Build() const;

 private:
  Aggregate aggregate_ = Aggregate::kCount;
  std::vector<std::function<bool(const Tuple&)>> predicates_;
  TimeMicros window_ = Seconds(30);
  TimeMicros slide_ = Seconds(1);
  uint32_t top_k_ = 0;
};

/// \brief Builds the JobSpec (map + reduce + window batches) for an
/// aggregate with an optional filter.
JobSpec MakeJob(Aggregate agg,
                std::function<bool(const Tuple&)> filter,
                uint32_t window_batches);

}  // namespace prompt
