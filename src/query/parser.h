// Text form of the declarative query language:
//
//   query    := SELECT agg [TOP k] [WHERE cond {AND cond}] WINDOW dur
//               [SLIDE dur]
//   agg      := COUNT | SUM | MIN | MAX
//   cond     := (VALUE | KEY) op number
//   op       := < | <= | > | >= | = | == | !=
//   dur      := integer (MS | S | M)       e.g. 500MS, 30S, 2M
//
// Keywords are case-insensitive. SLIDE defaults to 1 second. Examples:
//   "SELECT COUNT WINDOW 30S"                          (WordCount)
//   "SELECT COUNT TOP 10 WINDOW 30S"                   (TopKCount)
//   "SELECT SUM WHERE VALUE > 2.5 WINDOW 2M SLIDE 5S"  (DEBS-style)
#pragma once

#include <string>

#include "common/result.h"
#include "query/query.h"

namespace prompt {

/// \brief Compiles the text form into a CompiledQuery. Returns
/// Status::Invalid with a position-annotated message on syntax errors.
Result<CompiledQuery> ParseQuery(const std::string& text);

}  // namespace prompt
