#include "query/multi_query.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>

namespace prompt {

namespace {

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

/// Splits on ':' — filter specs are colon-delimited triples.
std::vector<std::string> SplitColon(const std::string& s) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == ':') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

Result<uint64_t> ParseU64(const std::string& s, const char* what) {
  if (s.empty()) return Status::Invalid(std::string(what) + " is empty");
  uint64_t v = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::Invalid(std::string(what) + " is not a number: " + s);
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

std::string KeyFilter::ToString() const {
  switch (kind) {
    case Kind::kAll:
      return "all";
    case Kind::kModulo:
      return "mod:" + std::to_string(modulo) + ":" + std::to_string(residue);
    case Kind::kRange:
      return "range:" + std::to_string(lo) + ":" + std::to_string(hi);
  }
  return "all";
}

Result<KeyFilter> KeyFilter::Parse(const std::string& text) {
  KeyFilter f;
  const std::vector<std::string> parts = SplitColon(text);
  const std::string kind = Upper(parts[0]);
  if (kind == "ALL" && parts.size() == 1) return f;
  if (kind == "MOD" && parts.size() == 3) {
    f.kind = Kind::kModulo;
    PROMPT_ASSIGN_OR_RETURN(f.modulo, ParseU64(parts[1], "modulo"));
    PROMPT_ASSIGN_OR_RETURN(f.residue, ParseU64(parts[2], "residue"));
    if (f.modulo == 0) return Status::Invalid("modulo must be positive");
    if (f.residue >= f.modulo) {
      return Status::Invalid("residue must be < modulo");
    }
    return f;
  }
  if (kind == "RANGE" && parts.size() == 3) {
    f.kind = Kind::kRange;
    PROMPT_ASSIGN_OR_RETURN(f.lo, ParseU64(parts[1], "range lo"));
    PROMPT_ASSIGN_OR_RETURN(f.hi, ParseU64(parts[2], "range hi"));
    if (f.lo > f.hi) return Status::Invalid("range lo must be <= hi");
    return f;
  }
  return Status::Invalid("bad key filter (want all | mod:M:R | range:LO:HI): " +
                         text);
}

std::string TenantSpecLine(const TenantQuerySpec& spec) {
  std::string line = "TENANT " + spec.id;
  line += " WEIGHT " + std::to_string(spec.weight);
  line += std::string(" TECHNIQUE ") + PartitionerTypeName(spec.technique);
  if (spec.adaptive) {
    line += " ADAPTIVE ADAPT_D " + std::to_string(spec.adapt_d);
    if (!spec.adapt_candidates.empty()) {
      line += " CANDIDATES ";
      for (size_t i = 0; i < spec.adapt_candidates.size(); ++i) {
        if (i > 0) line += ',';
        line += PartitionerTypeName(spec.adapt_candidates[i]);
      }
    }
  }
  line += " KEYS " + spec.filter.ToString();
  line += " QUERY " + spec.query.text;
  return line;
}

namespace {

/// Parses one TENANT line (comments/blanks already skipped).
Result<TenantQuerySpec> ParseSpecLine(const std::string& line, int line_no) {
  auto fail = [line_no](const std::string& msg) {
    return Status::Invalid("line " + std::to_string(line_no) + ": " + msg);
  };

  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (in >> tok) tokens.push_back(tok);

  TenantQuerySpec spec;
  bool have_technique = false;
  size_t pos = 0;
  if (pos >= tokens.size() || Upper(tokens[pos]) != "TENANT") {
    return fail("expected TENANT");
  }
  ++pos;
  if (pos >= tokens.size()) return fail("missing tenant id");
  spec.id = tokens[pos++];

  std::string query_text;
  while (pos < tokens.size()) {
    const std::string key = Upper(tokens[pos]);
    if (key == "QUERY") {
      // Everything after QUERY is the declarative query text, verbatim.
      const size_t at = Upper(line).find(" QUERY ");
      query_text = line.substr(at + 7);
      break;
    }
    ++pos;
    if (key == "WEIGHT") {
      if (pos >= tokens.size()) return fail("WEIGHT needs a value");
      const std::string& w = tokens[pos++];
      // "0" and "-3" both reject: weights are strictly positive integers.
      if (!w.empty() && w[0] == '-') {
        return fail("weight must be positive: " + w);
      }
      PROMPT_ASSIGN_OR_RETURN(uint64_t v, ParseU64(w, "weight"));
      if (v == 0) return fail("weight must be positive: " + w);
      if (v > UINT32_MAX) return fail("weight too large: " + w);
      spec.weight = static_cast<uint32_t>(v);
    } else if (key == "TECHNIQUE") {
      if (pos >= tokens.size()) return fail("TECHNIQUE needs a name");
      Result<PartitionerType> t = PartitionerTypeFromName(tokens[pos++]);
      if (!t.ok()) return fail(t.status().message());
      spec.technique = *t;
      have_technique = true;
    } else if (key == "ADAPTIVE") {
      spec.adaptive = true;
    } else if (key == "ADAPT_D") {
      if (pos >= tokens.size()) return fail("ADAPT_D needs a value");
      PROMPT_ASSIGN_OR_RETURN(uint64_t d, ParseU64(tokens[pos++], "adapt_d"));
      if (d == 0) return fail("adapt_d must be positive");
      spec.adapt_d = static_cast<int>(d);
    } else if (key == "CANDIDATES") {
      if (pos >= tokens.size()) return fail("CANDIDATES needs a list");
      std::string list = tokens[pos++];
      std::string name;
      std::istringstream ls(list);
      while (std::getline(ls, name, ',')) {
        Result<PartitionerType> t = PartitionerTypeFromName(name);
        if (!t.ok()) return fail(t.status().message());
        spec.adapt_candidates.push_back(*t);
      }
      if (spec.adapt_candidates.empty()) return fail("empty candidate list");
    } else if (key == "KEYS") {
      if (pos >= tokens.size()) return fail("KEYS needs a filter");
      Result<KeyFilter> f = KeyFilter::Parse(tokens[pos++]);
      if (!f.ok()) return fail(f.status().message());
      spec.filter = *f;
    } else {
      return fail("unknown keyword: " + tokens[pos - 1]);
    }
  }
  if (query_text.empty()) return fail("missing QUERY clause");
  Result<CompiledQuery> q = ParseQuery(query_text);
  if (!q.ok()) return fail(q.status().message());
  spec.query = std::move(*q);

  if (spec.adaptive) {
    const std::vector<PartitionerType> ladder =
        spec.adapt_candidates.empty() ? AdaptiveOptionsDefaultLadder()
                                      : spec.adapt_candidates;
    // Without an explicit TECHNIQUE an adaptive spec starts on the ladder's
    // first (cheapest) rung and escalates from there.
    if (!have_technique) spec.technique = ladder.front();
    // The engine would warn and run static on a ladder missing the initial
    // technique; the front door rejects outright so specs fail fast.
    if (std::find(ladder.begin(), ladder.end(), spec.technique) ==
        ladder.end()) {
      return fail(std::string("initial technique ") +
                  PartitionerTypeName(spec.technique) +
                  " is not in the adaptive candidate ladder");
    }
  }
  return spec;
}

}  // namespace

std::vector<PartitionerType> AdaptiveOptionsDefaultLadder() {
  return {PartitionerType::kHash, PartitionerType::kPk2,
          PartitionerType::kPrompt};
}

Result<std::vector<TenantQuerySpec>> ParseQueryFile(const std::string& text) {
  std::vector<TenantQuerySpec> specs;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  TimeMicros slide = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip leading whitespace; skip blanks and comments.
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    PROMPT_ASSIGN_OR_RETURN(TenantQuerySpec spec,
                            ParseSpecLine(line.substr(start), line_no));
    for (const TenantQuerySpec& other : specs) {
      if (other.id == spec.id) {
        return Status::Invalid("line " + std::to_string(line_no) +
                               ": duplicate tenant id: " + spec.id);
      }
    }
    // The slide is the shared heartbeat: every tenant's window advances on
    // the same batch boundary, so mismatched slides cannot be served.
    if (slide == 0) {
      slide = spec.query.slide;
    } else if (spec.query.slide != slide) {
      return Status::Invalid("line " + std::to_string(line_no) +
                             ": SLIDE differs across tenants (the slide is "
                             "the shared batch heartbeat)");
    }
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) return Status::Invalid("no TENANT lines in spec");
  return specs;
}

Result<std::vector<TenantQuerySpec>> LoadQueryFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseQueryFile(buf.str());
}

}  // namespace prompt
