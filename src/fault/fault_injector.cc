#include "fault/fault_injector.h"

#include <algorithm>
#include <cstdio>

namespace prompt {

namespace {

Result<uint64_t> ParseUint(const std::string& text, const char* what) {
  try {
    size_t pos = 0;
    const unsigned long long v = std::stoull(text, &pos);
    if (pos != text.size()) {
      return Status::Invalid(std::string("fault schedule: bad ") + what +
                             " '" + text + "'");
    }
    return static_cast<uint64_t>(v);
  } catch (...) {
    return Status::Invalid(std::string("fault schedule: bad ") + what + " '" +
                           text + "'");
  }
}

Result<double> ParseProb(const std::string& text) {
  try {
    size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size() || v < 0.0 || v > 1.0) {
      return Status::Invalid("fault schedule: probability must be in [0,1], "
                             "got '" + text + "'");
    }
    return v;
  } catch (...) {
    return Status::Invalid("fault schedule: bad probability '" + text + "'");
  }
}

Result<FaultPoint> ParseStage(const std::string& text) {
  if (text == "start") return FaultPoint::kBatchStart;
  if (text == "map") return FaultPoint::kMapStage;
  if (text == "reduce") return FaultPoint::kReduceStage;
  return Status::Invalid("fault schedule: unknown stage '" + text +
                         "' (want start|map|reduce)");
}

/// Parses "<id>@<batch>[.<stage>]" into target/batch_id/point.
Status ParseTargetAt(const std::string& text, FaultEvent* event) {
  const size_t at = text.find('@');
  if (at == std::string::npos) {
    return Status::Invalid("fault schedule: expected <id>@<batch> in '" +
                           text + "'");
  }
  PROMPT_ASSIGN_OR_RETURN(uint64_t target,
                          ParseUint(text.substr(0, at), "target id"));
  std::string rest = text.substr(at + 1);
  const size_t dot = rest.find('.');
  if (dot != std::string::npos) {
    PROMPT_ASSIGN_OR_RETURN(event->point, ParseStage(rest.substr(dot + 1)));
    rest = rest.substr(0, dot);
  }
  PROMPT_ASSIGN_OR_RETURN(uint64_t batch, ParseUint(rest, "batch id"));
  event->target = static_cast<uint32_t>(target);
  event->batch_id = batch;
  return Status::OK();
}

Status ParseRandomParams(const std::string& body, RandomFaultOptions* random) {
  random->enabled = true;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    const std::string kv = body.substr(pos, comma - pos);
    pos = comma + 1;
    const size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      return Status::Invalid("fault schedule: random expects key=value, got '" +
                             kv + "'");
    }
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    if (key == "p") {
      PROMPT_ASSIGN_OR_RETURN(random->kill_prob, ParseProb(value));
    } else if (key == "seed") {
      PROMPT_ASSIGN_OR_RETURN(random->seed, ParseUint(value, "seed"));
    } else if (key == "max_kills") {
      PROMPT_ASSIGN_OR_RETURN(uint64_t n, ParseUint(value, "max_kills"));
      random->max_kills = static_cast<uint32_t>(n);
    } else if (key == "revive_after") {
      PROMPT_ASSIGN_OR_RETURN(uint64_t n, ParseUint(value, "revive_after"));
      random->revive_after = static_cast<uint32_t>(n);
    } else {
      return Status::Invalid("fault schedule: unknown random param '" + key +
                             "'");
    }
  }
  return Status::OK();
}

}  // namespace

Result<FaultOptions> ParseFaultSchedule(const std::string& spec) {
  FaultOptions options;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    const std::string item = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (item.empty()) continue;

    const size_t colon = item.find(':');
    if (colon == std::string::npos) {
      return Status::Invalid("fault schedule: expected <kind>:... in '" +
                             item + "'");
    }
    const std::string kind = item.substr(0, colon);
    const std::string body = item.substr(colon + 1);

    if (kind == "random") {
      PROMPT_RETURN_NOT_OK(ParseRandomParams(body, &options.random));
      continue;
    }

    FaultEvent event;
    if (kind == "crash" || kind == "restart") {
      // No node id: the target is the whole process.
      event.kind = kind == "crash" ? FaultKind::kCrash : FaultKind::kRestart;
      std::string rest = body;
      const size_t dot = rest.find('.');
      if (dot != std::string::npos) {
        if (kind == "restart") {
          return Status::Invalid(
              "fault schedule: restart takes restart:<batch> (no stage)");
        }
        PROMPT_ASSIGN_OR_RETURN(event.point, ParseStage(rest.substr(dot + 1)));
        rest = rest.substr(0, dot);
      }
      PROMPT_ASSIGN_OR_RETURN(event.batch_id, ParseUint(rest, "batch id"));
      options.schedule.push_back(event);
      continue;
    }
    if (kind == "kill") {
      event.kind = FaultKind::kKillNode;
      PROMPT_RETURN_NOT_OK(ParseTargetAt(body, &event));
    } else if (kind == "revive") {
      event.kind = FaultKind::kReviveNode;
      PROMPT_RETURN_NOT_OK(ParseTargetAt(body, &event));
    } else if (kind == "delay") {
      event.kind = FaultKind::kDelayTask;
      const size_t amount = body.rfind(':');
      if (amount == std::string::npos) {
        return Status::Invalid(
            "fault schedule: delay expects delay:<task>@<batch>:<micros>");
      }
      PROMPT_RETURN_NOT_OK(ParseTargetAt(body.substr(0, amount), &event));
      PROMPT_ASSIGN_OR_RETURN(uint64_t micros,
                              ParseUint(body.substr(amount + 1), "delay"));
      event.delay = static_cast<TimeMicros>(micros);
    } else if (kind == "fail") {
      event.kind = FaultKind::kFailTask;
      std::string head = body;
      const size_t times = body.rfind(':');
      if (times != std::string::npos) {
        PROMPT_ASSIGN_OR_RETURN(uint64_t n,
                                ParseUint(body.substr(times + 1), "times"));
        event.times = static_cast<uint32_t>(n);
        head = body.substr(0, times);
      }
      PROMPT_RETURN_NOT_OK(ParseTargetAt(head, &event));
    } else {
      return Status::Invalid("fault schedule: unknown event kind '" + kind +
                             "' (want kill|revive|delay|fail|random)");
    }
    options.schedule.push_back(event);
  }
  if (!options.enabled()) {
    return Status::Invalid("fault schedule: empty spec");
  }
  return options;
}

std::string FormatFaultSchedule(const FaultOptions& options) {
  if (!options.enabled()) return "";
  auto stage_suffix = [](FaultPoint point) -> const char* {
    switch (point) {
      case FaultPoint::kMapStage:
        return ".map";
      case FaultPoint::kReduceStage:
        return ".reduce";
      case FaultPoint::kBatchStart:
        break;
    }
    return "";  // `start` is the grammar's default
  };
  std::string spec;
  auto add = [&spec](const std::string& item) {
    if (!spec.empty()) spec += ';';
    spec += item;
  };
  for (const FaultEvent& e : options.schedule) {
    const std::string batch = std::to_string(e.batch_id);
    const std::string target = std::to_string(e.target);
    switch (e.kind) {
      case FaultKind::kCrash:
        add("crash:" + batch + stage_suffix(e.point));
        break;
      case FaultKind::kRestart:
        add("restart:" + batch);
        break;
      case FaultKind::kKillNode:
        add("kill:" + target + "@" + batch + stage_suffix(e.point));
        break;
      case FaultKind::kReviveNode:
        add("revive:" + target + "@" + batch + stage_suffix(e.point));
        break;
      case FaultKind::kDelayTask:
        add("delay:" + target + "@" + batch + stage_suffix(e.point) + ":" +
            std::to_string(e.delay));
        break;
      case FaultKind::kFailTask: {
        std::string item =
            "fail:" + target + "@" + batch + stage_suffix(e.point);
        if (e.times != 1) item += ":" + std::to_string(e.times);
        add(item);
        break;
      }
    }
  }
  if (options.random.enabled) {
    char prob[64];
    std::snprintf(prob, sizeof(prob), "%.17g", options.random.kill_prob);
    add("random:p=" + std::string(prob) +
        ",seed=" + std::to_string(options.random.seed) +
        ",max_kills=" + std::to_string(options.random.max_kills) +
        ",revive_after=" + std::to_string(options.random.revive_after));
  }
  return spec;
}

FaultInjector::FaultInjector(FaultOptions options)
    : options_(std::move(options)), rng_(options_.random.seed) {}

std::vector<FaultEvent> FaultInjector::Poll(
    uint64_t batch_id, FaultPoint point,
    const std::vector<uint32_t>& alive_nodes) {
  std::vector<FaultEvent> fired;
  for (const FaultEvent& e : options_.schedule) {
    if (e.batch_id != batch_id || e.point != point) continue;
    if (e.kind == FaultKind::kDelayTask || e.kind == FaultKind::kFailTask) {
      continue;  // task perturbations flow through TaskFaults()
    }
    if (e.kind == FaultKind::kRestart && point != FaultPoint::kBatchStart) {
      continue;  // restart markers fire once, at the batch boundary
    }
    fired.push_back(e);
  }

  if (options_.random.enabled) {
    // Randomly-killed nodes come back `revive_after` batches later.
    if (point == FaultPoint::kBatchStart) {
      auto [begin, end] = pending_revives_.equal_range(batch_id);
      for (auto it = begin; it != end; ++it) {
        FaultEvent revive;
        revive.kind = FaultKind::kReviveNode;
        revive.target = it->second;
        revive.batch_id = batch_id;
        fired.push_back(revive);
      }
      pending_revives_.erase(begin, end);
    }
    // One seeded Bernoulli draw per map stage keeps the kill sequence a pure
    // function of the seed regardless of how many nodes are alive.
    if (point == FaultPoint::kMapStage &&
        random_kills_ < options_.random.max_kills &&
        rng_.NextBool(options_.random.kill_prob) && !alive_nodes.empty()) {
      FaultEvent kill;
      kill.kind = FaultKind::kKillNode;
      kill.target = alive_nodes[rng_.NextBounded(alive_nodes.size())];
      kill.batch_id = batch_id;
      kill.point = point;
      fired.push_back(kill);
      ++random_kills_;
      if (options_.random.revive_after > 0) {
        pending_revives_.emplace(batch_id + options_.random.revive_after,
                                 kill.target);
      }
    }
  }
  return fired;
}

TaskPerturbations FaultInjector::TaskFaults(uint64_t batch_id) const {
  TaskPerturbations p;
  for (const FaultEvent& e : options_.schedule) {
    if (e.batch_id != batch_id) continue;
    if (e.kind == FaultKind::kDelayTask) {
      p.delays[e.target] += e.delay;
    } else if (e.kind == FaultKind::kFailTask) {
      p.failures[e.target] += e.times;
    }
  }
  return p;
}

}  // namespace prompt
