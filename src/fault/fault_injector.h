// Deterministic fault injection for the simulated cluster (§8 consistency
// experiments): a seeded schedule of node kills/revives, per-task delays and
// per-task failures that the engine polls at stage boundaries. Every run
// with the same schedule (or the same random seed) injects the identical
// fault sequence, so recovery behaviour is reproducible batch for batch.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"

namespace prompt {

/// \brief Where in the batch lifecycle an event fires. The engine polls the
/// injector at each of these boundaries.
enum class FaultPoint {
  kBatchStart,   ///< after the batch sealed, before any stage ran
  kMapStage,     ///< while the Map stage is running (work in flight is lost)
  kReduceStage,  ///< while the Reduce stage is running
};

enum class FaultKind {
  kKillNode,    ///< node loses its cores and every replica copy it held
  kReviveNode,  ///< node rejoins with empty memory (capacity only)
  kDelayTask,   ///< map task `target` takes `delay` extra µs (straggler)
  kFailTask,    ///< map task `target` fails `times` times before succeeding
  kCrash,       ///< the whole engine process dies (durable tier loses its
                ///< unsynced tail; the run stops with summary.crashed set)
  kRestart,     ///< marker consumed by scenario runners: build a fresh
                ///< engine over the same store dir at this batch
};

/// \brief One scheduled fault.
struct FaultEvent {
  FaultKind kind = FaultKind::kKillNode;
  uint32_t target = 0;    ///< node id (kill/revive) or map-task index
  uint64_t batch_id = 0;  ///< batch whose processing triggers the event
  FaultPoint point = FaultPoint::kBatchStart;
  TimeMicros delay = 0;   ///< kDelayTask: added duration
  uint32_t times = 1;     ///< kFailTask: consecutive failures
};

/// \brief Seeded random failures: each batch's map stage kills one alive
/// node with probability `kill_prob`, up to `max_kills` kills per run.
struct RandomFaultOptions {
  bool enabled = false;
  double kill_prob = 0.0;
  uint64_t seed = 42;
  uint32_t max_kills = 1;
  /// Revive a randomly-killed node this many batches later (0 = never).
  uint32_t revive_after = 0;
};

/// \brief Fault schedule plus the in-loop recovery policy knobs.
struct FaultOptions {
  std::vector<FaultEvent> schedule;
  RandomFaultOptions random;

  /// Bounded per-task retry: a map task may fail at most this many times
  /// before the whole batch is declared failed and replayed from the store.
  uint32_t max_task_retries = 3;
  /// Base backoff before re-launching a failed task; doubles per attempt.
  TimeMicros retry_backoff = Millis(5);

  /// Speculative re-execution of stragglers: a map task running longer than
  /// `speculation_multiplier` × the stage median gets a backup copy launched
  /// at the detection point; the first finisher wins.
  bool speculation_enabled = true;
  double speculation_multiplier = 2.0;

  bool enabled() const { return !schedule.empty() || random.enabled; }
};

/// \brief Per-batch map-task perturbations (from kDelayTask / kFailTask).
struct TaskPerturbations {
  std::map<uint32_t, TimeMicros> delays;    ///< task -> added µs
  std::map<uint32_t, uint32_t> failures;    ///< task -> failure count
  bool empty() const { return delays.empty() && failures.empty(); }
};

/// \brief Deterministic fault source the engine polls at stage boundaries.
///
/// Scheduled events fire exactly at their (batch, point); random-mode kills
/// are drawn from the seeded RNG at each map-stage poll, so the fault
/// sequence is a pure function of (schedule, seed, alive-set history).
class FaultInjector {
 public:
  explicit FaultInjector(FaultOptions options);

  /// Node-level events firing at this boundary. `alive_nodes` lists the
  /// currently alive node ids (random mode picks its victim among them).
  std::vector<FaultEvent> Poll(uint64_t batch_id, FaultPoint point,
                               const std::vector<uint32_t>& alive_nodes);

  /// Map-task delays and failures injected into this batch.
  TaskPerturbations TaskFaults(uint64_t batch_id) const;

  const FaultOptions& options() const { return options_; }

 private:
  FaultOptions options_;
  Rng rng_;
  uint32_t random_kills_ = 0;
  /// Revives scheduled by random mode: batch id -> nodes to revive.
  std::multimap<uint64_t, uint32_t> pending_revives_;
};

/// \brief Parses a `--fault_schedule` spec into FaultOptions.
///
/// Grammar (events separated by `;`):
///   kill:<node>@<batch>[.<stage>]     stage in {start,map,reduce}; default
///   revive:<node>@<batch>[.<stage>]   is `start`
///   delay:<task>@<batch>:<micros>     map task straggles by <micros> µs
///   fail:<task>@<batch>[:<times>]     map task fails <times> times (def. 1)
///   crash:<batch>[.<stage>]           whole-process kill: the run stops
///                                     here and the durable store drops its
///                                     unsynced tail (torn, like SIGKILL)
///   restart:<batch>                   scenario-runner marker: reopen the
///                                     store dir with a fresh engine
///   random:p=<prob>[,seed=<s>][,max_kills=<n>][,revive_after=<b>]
///
/// Example: "kill:2@5.map;revive:2@9" kills node 2 during batch 5's map
/// stage and revives it at batch 9. "crash:6.map;restart:6" dies mid-map of
/// batch 6 and resumes from the store's recovered state.
Result<FaultOptions> ParseFaultSchedule(const std::string& spec);

/// \brief Renders a schedule back into the ParseFaultSchedule grammar, such
/// that Parse(Format(o)) reproduces the scheduled events and random-mode
/// parameters exactly (the flight recorder's manifest round-trip). Returns
/// "" for a disabled FaultOptions. Policy knobs that have no spec syntax
/// (max_task_retries, backoff, speculation) are not represented.
std::string FormatFaultSchedule(const FaultOptions& options);

}  // namespace prompt
