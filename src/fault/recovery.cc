#include "fault/recovery.h"

#include <algorithm>

namespace prompt {

RetryOutcome ApplyRetryPolicy(TimeMicros base_cost, uint32_t failures,
                              uint32_t max_retries, TimeMicros backoff) {
  RetryOutcome outcome;
  outcome.effective_cost = base_cost;
  if (failures == 0) return outcome;

  outcome.exhausted = failures > max_retries;
  outcome.retries = std::min(failures, max_retries);
  TimeMicros wait = backoff;
  TimeMicros wasted = 0;
  for (uint32_t attempt = 0; attempt < outcome.retries; ++attempt) {
    wasted += base_cost + wait;
    wait *= 2;
  }
  // Exhausted tasks never ran to completion: only the wasted attempts count
  // (the batch-level replay pays for the successful execution).
  outcome.effective_cost = outcome.exhausted ? wasted : base_cost + wasted;
  return outcome;
}

SpeculationResult ApplySpeculation(const std::vector<TimeMicros>& costs,
                                   const std::vector<TimeMicros>& clean_costs,
                                   double multiplier) {
  PROMPT_CHECK(costs.size() == clean_costs.size());
  SpeculationResult result;
  result.costs = costs;
  if (costs.size() < 2 || multiplier <= 0) return result;

  std::vector<TimeMicros> sorted = costs;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const TimeMicros median = sorted[sorted.size() / 2];
  const TimeMicros detect = static_cast<TimeMicros>(
      multiplier * static_cast<double>(median));
  if (detect <= 0) return result;

  for (size_t i = 0; i < costs.size(); ++i) {
    if (costs[i] <= detect) continue;
    // Backup launched at the detection point; first finisher wins.
    result.costs[i] = std::min(costs[i], detect + clean_costs[i]);
    ++result.speculated;
  }
  return result;
}

void RepackBlocks(PartitionedBatch* batch, uint32_t max_blocks) {
  max_blocks = std::max<uint32_t>(1, max_blocks);
  if (batch->blocks.size() <= max_blocks) return;

  // Merge the two smallest blocks until the bound holds — the balance-aware
  // inverse of Alg. 2's Worst-Fit placement.
  auto smaller = [](const DataBlock& a, const DataBlock& b) {
    return a.size() < b.size();
  };
  while (batch->blocks.size() > max_blocks) {
    std::sort(batch->blocks.begin(), batch->blocks.end(), smaller);
    DataBlock& dst = batch->blocks[0];
    const DataBlock& src = batch->blocks[1];
    for (const Tuple& t : src.tuples()) dst.Append(t);
    batch->blocks.erase(batch->blocks.begin() + 1);
    dst.Finalize();
  }
  for (size_t i = 0; i < batch->blocks.size(); ++i) {
    batch->blocks[i].set_block_id(static_cast<uint32_t>(i));
    batch->blocks[i].Finalize();
  }
  batch->ComputeSplitFlags();
}

}  // namespace prompt
