// In-loop recovery policies for the fault-tolerance subsystem: bounded task
// retry with exponential backoff, speculative re-execution of stragglers
// (first-finish wins), and the Alg. 2-flavoured block re-plan used when a
// batch must be replayed over a reduced core count. Pure functions over
// modeled task durations, so each policy is unit-testable without an engine.
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "model/batch.h"

namespace prompt {

/// \brief Cost and accounting of retrying one failed task.
struct RetryOutcome {
  /// Modeled duration of the task including every failed attempt and the
  /// backoff waits between them.
  TimeMicros effective_cost = 0;
  /// Failed attempts that were retried (bounded by the retry budget).
  uint32_t retries = 0;
  /// True when failures exceeded the budget — the task never succeeded and
  /// the whole batch must be replayed from the replicated input.
  bool exhausted = false;
};

/// \brief Bounded retry with exponential backoff: each failed attempt wastes
/// the full task duration, then waits backoff × 2^attempt before relaunch.
/// With `failures` ≤ `max_retries` the final attempt succeeds; beyond the
/// budget the outcome is exhausted after `max_retries` wasted attempts.
RetryOutcome ApplyRetryPolicy(TimeMicros base_cost, uint32_t failures,
                              uint32_t max_retries, TimeMicros backoff);

/// \brief Result of the speculative-execution pass over one map stage.
struct SpeculationResult {
  /// Effective per-task durations after first-finish-wins resolution.
  std::vector<TimeMicros> costs;
  /// Tasks for which a backup copy was launched.
  uint32_t speculated = 0;
};

/// \brief Launches a backup copy for every straggler (duration > multiplier
/// × stage median). The copy starts at the detection point (multiplier ×
/// median) and runs for the task's clean duration `clean_costs[i]` (the
/// modeled cost without the injected perturbation); whichever copy finishes
/// first defines the task's effective duration.
SpeculationResult ApplySpeculation(const std::vector<TimeMicros>& costs,
                                   const std::vector<TimeMicros>& clean_costs,
                                   double multiplier);

/// \brief Alg. 2-flavoured re-plan for replay on a shrunken cluster: merges
/// the smallest blocks pairwise until at most `max_blocks` remain, keeping
/// tuple counts balanced (Worst-Fit in reverse). Split flags are recomputed.
/// Per-key outputs are invariant — only Map parallelism changes.
void RepackBlocks(PartitionedBatch* batch, uint32_t max_blocks);

}  // namespace prompt
