#include "obs/timeseries.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>

namespace prompt {

namespace {

std::string FormatJsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g",
                std::numeric_limits<double>::max_digits10, v);
  return buf;
}

/// Deterministic quantile over a sorted window: the value at rank
/// ceil(q * n) (1-based), the "nearest-rank" definition.
double SortedQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  size_t idx = rank <= 1.0 ? 0 : static_cast<size_t>(rank + 0.999999) - 1;
  idx = std::min(idx, sorted.size() - 1);
  return sorted[idx];
}

}  // namespace

std::string_view TimeSeriesSignalName(TimeSeriesSignal signal) {
  switch (signal) {
    case TimeSeriesSignal::kLatencyUs:
      return "latency_us";
    case TimeSeriesSignal::kProcessingUs:
      return "processing_us";
    case TimeSeriesSignal::kQueueUs:
      return "queue_us";
    case TimeSeriesSignal::kBlockLoadRatio:
      return "block_load_ratio";
    case TimeSeriesSignal::kBucketImbalance:
      return "bucket_imbalance";
    case TimeSeriesSignal::kSplitKeyFrac:
      return "split_key_frac";
    case TimeSeriesSignal::kRingOccupancyFrac:
      return "ring_occupancy_frac";
    case TimeSeriesSignal::kRecoveryUs:
      return "recovery_us";
    case TimeSeriesSignal::kTuples:
      return "tuples";
    case TimeSeriesSignal::kActiveTechnique:
      return "active_technique";
    case TimeSeriesSignal::kHeadCoverage:
      return "head_coverage";
    case TimeSeriesSignal::kSketchErrorFrac:
      return "sketch_error_frac";
    case TimeSeriesSignal::kSignalCount:
      break;
  }
  return "unknown";
}

TimeSeriesStore::TimeSeriesStore(TimeSeriesOptions options)
    : options_(options) {
  PROMPT_CHECK(options_.capacity > 0);
  PROMPT_CHECK(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0);
  ring_.resize(options_.capacity);
}

TimeSeriesPoint TimeSeriesStore::PointFrom(const BatchReport& report) {
  TimeSeriesPoint p;
  p.batch_id = report.batch_id;
  p.set(TimeSeriesSignal::kLatencyUs, static_cast<double>(report.latency));
  p.set(TimeSeriesSignal::kProcessingUs,
        static_cast<double>(report.processing_time));
  p.set(TimeSeriesSignal::kQueueUs, static_cast<double>(report.queue_delay));
  // Block-load ratio needs the partition metrics pass; without it the
  // max/avg fields are zero and the ratio reports balanced.
  const PartitionMetrics& pm = report.partition_metrics;
  p.set(TimeSeriesSignal::kBlockLoadRatio,
        pm.avg_block_size > 0
            ? static_cast<double>(pm.max_block_size) / pm.avg_block_size
            : 1.0);
  p.set(TimeSeriesSignal::kBucketImbalance, report.reduce_bucket_bsi);
  p.set(TimeSeriesSignal::kSplitKeyFrac,
        pm.distinct_keys > 0 ? static_cast<double>(pm.split_keys) /
                                   static_cast<double>(pm.distinct_keys)
                             : 0.0);
  p.set(TimeSeriesSignal::kRingOccupancyFrac,
        report.has_ingest ? MaxRingOccupancyFrac(report.ingest) : 0.0);
  p.set(TimeSeriesSignal::kRecoveryUs,
        static_cast<double>(report.recovery_time));
  p.set(TimeSeriesSignal::kTuples, static_cast<double>(report.num_tuples));
  p.set(TimeSeriesSignal::kActiveTechnique,
        static_cast<double>(report.technique));
  // Exact batches report full coverage and zero sketch error, so the
  // signals stay meaningful when modes mix across a run.
  p.set(TimeSeriesSignal::kHeadCoverage,
        report.sketch.sketch_mode ? report.sketch.head_coverage() : 1.0);
  p.set(TimeSeriesSignal::kSketchErrorFrac,
        report.sketch.sketch_mode ? report.sketch.error_frac : 0.0);
  return p;
}

void TimeSeriesStore::Push(const TimeSeriesPoint& point) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = point;
  next_ = (next_ + 1) % options_.capacity;
  size_ = std::min(size_ + 1, options_.capacity);
  ++total_;
  if (!ewma_init_) {
    ewma_ = point.values;
    ewma_init_ = true;
  } else {
    for (size_t i = 0; i < kTimeSeriesSignals; ++i) {
      ewma_[i] = options_.ewma_alpha * point.values[i] +
                 (1.0 - options_.ewma_alpha) * ewma_[i];
    }
  }
}

size_t TimeSeriesStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

uint64_t TimeSeriesStore::total_observed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::vector<TimeSeriesPoint> TimeSeriesStore::Tail(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t count = (n == 0 || n > size_) ? size_ : n;
  std::vector<TimeSeriesPoint> out;
  out.reserve(count);
  // Oldest-of-window first: the slot `count` pushes before `next_`.
  const size_t cap = options_.capacity;
  const size_t start = (next_ + cap - count) % cap;
  for (size_t i = 0; i < count; ++i) {
    out.push_back(ring_[(start + i) % cap]);
  }
  return out;
}

size_t TimeSeriesStore::WindowSpanLocked(uint32_t window) const {
  const size_t w = window == 0 ? options_.window : window;
  return std::min<size_t>(w, size_);
}

WindowAggregate TimeSeriesStore::AggregateLocked(TimeSeriesSignal signal,
                                                 uint32_t window) const {
  WindowAggregate agg;
  const size_t count = WindowSpanLocked(window);
  if (count == 0) return agg;
  const size_t cap = options_.capacity;
  const size_t start = (next_ + cap - count) % cap;
  std::vector<double> values;
  values.reserve(count);
  double sum = 0;
  for (size_t i = 0; i < count; ++i) {
    const double v = ring_[(start + i) % cap].value(signal);
    values.push_back(v);
    sum += v;
    agg.max = std::max(agg.max, v);
  }
  agg.count = count;
  agg.last = values.back();
  agg.mean = sum / static_cast<double>(count);
  agg.ewma = ewma_[static_cast<size_t>(signal)];
  std::sort(values.begin(), values.end());
  agg.p50 = SortedQuantile(values, 0.50);
  agg.p95 = SortedQuantile(values, 0.95);
  agg.p99 = SortedQuantile(values, 0.99);
  return agg;
}

WindowAggregate TimeSeriesStore::Aggregate(TimeSeriesSignal signal,
                                           uint32_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  return AggregateLocked(signal, window);
}

void TimeSeriesStore::WriteJson(std::ostream* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  *out << "{\"capacity\":" << options_.capacity
       << ",\"window\":" << options_.window << ",\"batches_seen\":" << total_
       << ",\"size\":" << size_ << ",\"signals\":{";
  for (size_t s = 0; s < kTimeSeriesSignals; ++s) {
    const auto signal = static_cast<TimeSeriesSignal>(s);
    const WindowAggregate agg = AggregateLocked(signal, 0);
    if (s > 0) *out << ',';
    *out << '"' << TimeSeriesSignalName(signal) << "\":{\"count\":" << agg.count
         << ",\"last\":" << FormatJsonDouble(agg.last)
         << ",\"ewma\":" << FormatJsonDouble(agg.ewma)
         << ",\"mean\":" << FormatJsonDouble(agg.mean)
         << ",\"p50\":" << FormatJsonDouble(agg.p50)
         << ",\"p95\":" << FormatJsonDouble(agg.p95)
         << ",\"p99\":" << FormatJsonDouble(agg.p99)
         << ",\"max\":" << FormatJsonDouble(agg.max) << '}';
  }
  *out << "},\"points\":[";
  const size_t cap = options_.capacity;
  const size_t start = (next_ + cap - size_) % cap;
  for (size_t i = 0; i < size_; ++i) {
    const TimeSeriesPoint& p = ring_[(start + i) % cap];
    if (i > 0) *out << ',';
    *out << "{\"batch_id\":" << p.batch_id;
    for (size_t s = 0; s < kTimeSeriesSignals; ++s) {
      *out << ",\"" << TimeSeriesSignalName(static_cast<TimeSeriesSignal>(s))
           << "\":" << FormatJsonDouble(p.values[s]);
    }
    *out << '}';
  }
  *out << "]}";
}

}  // namespace prompt
