#include "obs/observability.h"

namespace prompt {

Observability::Observability(ObservabilityOptions options)
    : options_(std::move(options)) {
  if (options_.metrics_every > 0) options_.metrics_enabled = true;
  if (!options_.trace_path.empty()) options_.trace_enabled = true;
  if (!options_.autopsy_path.empty()) options_.autopsy_enabled = true;
  if (options_.serve_port >= 0) {
    // A live server without sources would serve nothing but /healthz.
    options_.metrics_enabled = true;
    if (options_.timeseries_capacity == 0) options_.timeseries_capacity = 1024;
  }

  if (options_.metrics_enabled) {
    registry_ = std::make_unique<MetricsRegistry>();
    batches_total_ = registry_->GetCounter("prompt_batches_total");
    tuples_total_ = registry_->GetCounter("prompt_tuples_total");
    latency_us_ = registry_->GetHistogram("prompt_batch_latency_us");
    queue_us_ = registry_->GetHistogram("prompt_batch_queue_us");
    partition_cost_us_ = registry_->GetHistogram("prompt_partition_cost_us");
    w_gauge_ = registry_->GetGauge("prompt_batch_w");
    map_tasks_gauge_ = registry_->GetGauge("prompt_map_tasks");
    reduce_tasks_gauge_ = registry_->GetGauge("prompt_reduce_tasks");
  }

  if (!options_.trace_path.empty()) {
    auto sink = FileTraceSink::Open(options_.trace_path);
    if (sink.ok()) {
      trace_sinks_.push_back(std::move(*sink));
    } else {
      init_status_ = sink.status();
    }
  }
  if (!options_.metrics_path.empty()) {
    auto sink =
        FileRecordSink::Open(options_.metrics_path, FileRecordSink::Format::kJsonl);
    if (sink.ok()) {
      metrics_file_ = std::move(*sink);
    } else if (init_status_.ok()) {
      init_status_ = sink.status();
    }
  }
  if (!options_.autopsy_path.empty()) {
    auto sink = FileRecordSink::Open(options_.autopsy_path,
                                     FileRecordSink::Format::kJsonl);
    if (sink.ok()) {
      autopsy_file_ = std::move(*sink);
    } else if (init_status_.ok()) {
      init_status_ = sink.status();
    }
  }

  if (options_.timeseries_capacity > 0) {
    TimeSeriesOptions ts;
    ts.capacity = options_.timeseries_capacity;
    ts.window = options_.timeseries_window;
    ts.ewma_alpha = options_.timeseries_alpha;
    timeseries_ = std::make_unique<TimeSeriesStore>(ts);
  }
  if (options_.serve_port >= 0) {
    exporter_ =
        std::make_unique<HttpExporter>(registry_.get(), timeseries_.get());
    Status started =
        exporter_->Start(static_cast<uint16_t>(options_.serve_port));
    if (!started.ok()) {
      exporter_.reset();
      if (init_status_.ok()) init_status_ = std::move(started);
    }
  }
}

Observability::~Observability() {
  if (exporter_ != nullptr) exporter_->Stop();
  for (auto& sink : trace_sinks_) sink->Flush();
  for (auto& sink : report_sinks_) sink->Flush();
  if (metrics_file_ != nullptr) metrics_file_->Flush();
  if (autopsy_file_ != nullptr) autopsy_file_->Flush();
}

void Observability::AddTraceSink(std::unique_ptr<TraceSink> sink) {
  trace_sinks_.push_back(std::move(sink));
}

void Observability::AddReportSink(std::unique_ptr<RecordSink> sink) {
  report_sinks_.push_back(std::move(sink));
}

void Observability::AddObserver(Observer* observer) {
  PROMPT_CHECK(observer != nullptr);
  observers_.push_back(observer);
}

void Observability::OnRunStart(uint32_t num_batches) {
  for (Observer* o : observers_) o->OnRunStart(num_batches);
}

void Observability::OnBatchComplete(const BatchReport& report,
                                    const BatchTrace& trace) {
  if (registry_ != nullptr) {
    batches_total_->Increment();
    tuples_total_->Increment(report.num_tuples);
    latency_us_->Observe(static_cast<double>(report.latency));
    queue_us_->Observe(static_cast<double>(report.queue_delay));
    partition_cost_us_->Observe(static_cast<double>(report.partition_cost));
    w_gauge_->Set(report.w);
    map_tasks_gauge_->Set(report.map_tasks);
    reduce_tasks_gauge_->Set(report.reduce_tasks);
    if (report.has_ingest) {
      // Registered lazily: most runs never shard the ingest phase.
      if (shard_imbalance_gauge_ == nullptr) {
        shard_imbalance_gauge_ =
            registry_->GetGauge("prompt_ingest_shard_imbalance");
        ring_occupancy_gauge_ =
            registry_->GetGauge("prompt_ingest_ring_occupancy_frac");
        merge_us_ = registry_->GetHistogram("prompt_ingest_merge_us");
        seal_barrier_us_ =
            registry_->GetHistogram("prompt_ingest_seal_barrier_us");
      }
      shard_imbalance_gauge_->Set(ShardLoadImbalance(report.ingest));
      ring_occupancy_gauge_->Set(MaxRingOccupancyFrac(report.ingest));
      merge_us_->Observe(static_cast<double>(report.ingest.merge_latency));
      seal_barrier_us_->Observe(
          static_cast<double>(report.ingest.seal_barrier_latency));
    }
    if (report.sketch.sketch_mode) {
      // Registered lazily: most runs use exact key tracking.
      if (head_coverage_gauge_ == nullptr) {
        head_coverage_gauge_ =
            registry_->GetGauge("prompt_sketch_head_coverage");
        sketch_error_gauge_ =
            registry_->GetGauge("prompt_sketch_error_frac");
        promoted_keys_gauge_ =
            registry_->GetGauge("prompt_sketch_promoted_keys");
      }
      head_coverage_gauge_->Set(report.sketch.head_coverage());
      sketch_error_gauge_->Set(report.sketch.error_frac);
      promoted_keys_gauge_->Set(static_cast<double>(report.sketch.promoted_keys));
    }
    const bool did_recovery = report.batches_replayed > 0 ||
                              report.tasks_retried > 0 ||
                              report.tasks_speculated > 0 ||
                              report.under_replicated_batches > 0 ||
                              report.recovery_time > 0;
    if (did_recovery) {
      // Registered lazily: most runs never inject or see a failure.
      if (batches_replayed_total_ == nullptr) {
        batches_replayed_total_ =
            registry_->GetCounter("prompt_batches_replayed_total");
        tasks_retried_total_ =
            registry_->GetCounter("prompt_tasks_retried_total");
        tasks_speculated_total_ =
            registry_->GetCounter("prompt_tasks_speculated_total");
        under_replicated_gauge_ =
            registry_->GetGauge("prompt_under_replicated_batches");
        recovery_us_ = registry_->GetHistogram("prompt_recovery_us");
      }
      batches_replayed_total_->Increment(report.batches_replayed);
      tasks_retried_total_->Increment(report.tasks_retried);
      tasks_speculated_total_->Increment(report.tasks_speculated);
      under_replicated_gauge_->Set(report.under_replicated_batches);
      recovery_us_->Observe(static_cast<double>(report.recovery_time));
    }
  }

  if (timeseries_ != nullptr) timeseries_->Observe(report);
  if (options_.autopsy_enabled) {
    last_autopsy_ = ExplainBatch(report, options_.autopsy);
    if (autopsy_file_ != nullptr) {
      autopsy_file_->Write(AutopsyRecord(last_autopsy_));
    }
  }

  if (!report_sinks_.empty()) {
    const Record row = ReportRecord(report);
    for (auto& sink : report_sinks_) sink->Write(row);
  }
  for (auto& sink : trace_sinks_) sink->Write(trace);
  for (Observer* o : observers_) o->OnBatchComplete(report, trace);

  if (options_.metrics_every > 0 &&
      (report.batch_id + 1) % options_.metrics_every == 0) {
    EmitMetricsSnapshot(report.batch_id);
  }
}

void Observability::EmitAutopsy(const BatchAutopsy& autopsy,
                                const std::string& tenant) {
  if (!options_.autopsy_enabled) return;
  last_autopsy_ = autopsy;
  if (autopsy_file_ != nullptr) {
    Record row = AutopsyRecord(autopsy);
    row.Set("tenant", tenant);
    autopsy_file_->Write(row);
  }
}

void Observability::OnRunEnd() {
  for (Observer* o : observers_) o->OnRunEnd();
  for (auto& sink : trace_sinks_) sink->Flush();
  for (auto& sink : report_sinks_) sink->Flush();
  if (metrics_file_ != nullptr) metrics_file_->Flush();
  if (autopsy_file_ != nullptr) autopsy_file_->Flush();
}

void Observability::EmitMetricsSnapshot(uint64_t after_batch) {
  if (registry_ == nullptr) return;
  const std::vector<MetricSample> snapshot = registry_->Snapshot();
  if (metrics_file_ != nullptr) {
    for (const Record& r : SnapshotRecords(snapshot)) {
      Record row;
      row.Set("after_batch", after_batch);
      for (const RecordField& f : r.fields()) row.Append(f);
      metrics_file_->Write(row);
    }
    metrics_file_->Flush();
  } else {
    std::cout << "# metrics after batch " << after_batch << "\n";
    WriteSnapshotText(snapshot, &std::cout);
  }
}

Record ReportRecord(const BatchReport& report) {
  Record r;
  r.Set("batch_id", report.batch_id)
      .Set("interval_us", static_cast<int64_t>(report.batch_interval))
      .Set("tuples", report.num_tuples)
      .Set("keys", report.num_keys)
      .Set("map_tasks", report.map_tasks)
      .Set("reduce_tasks", report.reduce_tasks)
      .Set("partition_cost_us", static_cast<int64_t>(report.partition_cost))
      .Set("map_makespan_us", static_cast<int64_t>(report.map_makespan))
      .Set("reduce_makespan_us", static_cast<int64_t>(report.reduce_makespan))
      .Set("processing_us", static_cast<int64_t>(report.processing_time))
      .Set("queue_us", static_cast<int64_t>(report.queue_delay))
      .Set("latency_us", static_cast<int64_t>(report.latency))
      .Set("w", report.w)
      .Set("bsi", report.partition_metrics.bsi)
      .Set("bci", report.partition_metrics.bci)
      .Set("ksr", report.partition_metrics.ksr)
      .Set("mpi", report.partition_metrics.mpi)
      .Set("reduce_bucket_bsi", report.reduce_bucket_bsi);
  return r;
}

}  // namespace prompt
