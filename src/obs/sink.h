// Pluggable output sinks — the single formatting path for per-batch
// reports, metric snapshots and batch traces. Three wire formats share one
// row model (Record): CSV for plotting/diffing, JSONL for machine ingestion
// of structured traces, and fixed-width tables for humans.
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "obs/metrics_registry.h"
#include "obs/record.h"
#include "obs/trace.h"

namespace prompt {

/// \brief Destination for Record rows (reports, figure tables, snapshots).
///
/// Sinks are stateful per table: the first record fixes the column set.
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void Write(const Record& record) = 0;
  virtual void Flush() {}
};

/// \brief CSV with a header row derived from the first record's field names.
/// Doubles print with max_digits10 precision so files round-trip.
class CsvSink : public RecordSink {
 public:
  /// \param out not owned; must outlive the sink.
  explicit CsvSink(std::ostream* out) : out_(out) {}

  void Write(const Record& record) override;
  void Flush() override { out_->flush(); }

 private:
  std::ostream* out_;
  bool wrote_header_ = false;
};

/// \brief One JSON object per line; field types map to JSON natively.
class JsonlSink : public RecordSink {
 public:
  explicit JsonlSink(std::ostream* out) : out_(out) {}

  void Write(const Record& record) override;
  void Flush() override { out_->flush(); }

 private:
  std::ostream* out_;
};

/// \brief Human-readable fixed-width table.
class TableSink : public RecordSink {
 public:
  /// \param auto_header print the field names as the first row (set false
  ///        when the caller emits its own header row).
  explicit TableSink(std::ostream* out, int column_width = 14,
                     bool auto_header = true)
      : out_(out), width_(column_width), auto_header_(auto_header) {}

  void Write(const Record& record) override;
  void Flush() override { out_->flush(); }

 private:
  std::ostream* out_;
  int width_;
  bool auto_header_;
  bool wrote_header_ = false;
};

/// \brief Destination for per-batch structured traces.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Write(const BatchTrace& trace) = 0;
  virtual void Flush() {}
};

/// \brief One JSONL record per batch:
/// {"batch_id":N,"start_us":..,"latency_us":..,"tuples":..,"keys":..,
///  "spans":[{"name":"map","start_us":..,"dur_us":..,"depth":0},...]}
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream* out) : out_(out) {}

  void Write(const BatchTrace& trace) override;
  void Flush() override { out_->flush(); }

 private:
  std::ostream* out_;
};

/// \brief Formats one value with full round-trip precision (shared by the
/// CSV and JSONL encoders; exact integer formatting for integral fields).
std::string FormatFieldValue(const RecordField& field);

/// \brief JSON string escaping (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& s);

/// \brief Lowers a metrics snapshot to Records (one per metric) — flows
/// registry contents through any RecordSink.
std::vector<Record> SnapshotRecords(const std::vector<MetricSample>& snapshot);

/// \brief Writes a snapshot in a compact human format:
/// `name{labels}  value` lines, histograms with count/mean/p50/p95/p99.
void WriteSnapshotText(const std::vector<MetricSample>& snapshot,
                       std::ostream* out);

/// \brief A RecordSink (or TraceSink) bound to a file it owns.
class FileRecordSink : public RecordSink {
 public:
  enum class Format { kCsv, kJsonl, kTable };

  /// Opens `path` for writing; Status::IOError on failure.
  static Result<std::unique_ptr<FileRecordSink>> Open(const std::string& path,
                                                      Format format);
  void Write(const Record& record) override { inner_->Write(record); }
  void Flush() override;

 private:
  FileRecordSink() = default;

  std::unique_ptr<std::ostream> file_;
  std::unique_ptr<RecordSink> inner_;
};

class FileTraceSink : public TraceSink {
 public:
  static Result<std::unique_ptr<FileTraceSink>> Open(const std::string& path);
  void Write(const BatchTrace& trace) override { inner_->Write(trace); }
  void Flush() override;

 private:
  FileTraceSink() = default;

  std::unique_ptr<std::ostream> file_;
  std::unique_ptr<JsonlTraceSink> inner_;
};

}  // namespace prompt
