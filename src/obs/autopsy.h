// Per-batch skew autopsy: answers "why was batch N slow" by joining the
// batch's report (trace-span totals, partition plan quality, ingest state,
// recovery accounting) and attributing the latency beyond the ideal balanced
// schedule to a dominant cause. Attribution is rule-based and fully
// deterministic — same report, same verdict — so tests can assert exact
// causes on synthetic workloads. Records flow through the standard
// RecordSink path as JSONL `autopsy` rows and render as a human table via
// `promptctl --explain <batch>`.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string_view>

#include "common/clock.h"
#include "obs/batch_report.h"
#include "obs/record.h"

namespace prompt {

/// \brief Causes a batch's excess latency can be attributed to. Order is the
/// tie-break: on equal excess the earlier cause wins (deterministic).
enum class BatchCause : size_t {
  kNone = 0,            ///< every excess source below the noise floor
  kQueueing,            ///< waited behind earlier batches (W > 1 upstream)
  kRecovery,            ///< replays / re-replication after a failure
  kSplitKeyOverflow,    ///< B-BPFI plan ran past the release slack
  kStragglerCore,       ///< one Map block dominated the stage makespan
  kBucketSkew,          ///< uneven reduce buckets spread completion times
  kIngestBackpressure,  ///< an ingest ring ran near capacity at the cut-off
  kSketchSaturated,     ///< sketch-mode head coverage collapsed: unsplittable
                        ///< tail buckets drove the Map imbalance
  kCauseCount
};

inline constexpr size_t kBatchCauses =
    static_cast<size_t>(BatchCause::kCauseCount);

/// Stable wire name (JSONL records, test assertions, --explain output).
std::string_view BatchCauseName(BatchCause cause);

/// \brief Attribution thresholds.
struct AutopsyOptions {
  /// A batch is "healthy" (kNone) unless some cause's excess reaches
  /// max(min_excess_us, min_excess_frac * batch_interval).
  double min_excess_frac = 0.01;
  TimeMicros min_excess_us = 1000;
  /// Ring occupancy at or above this fraction counts as back-pressure.
  double ring_pressure_threshold = 0.75;
  /// Sketch-mode head coverage below this fraction reattributes the Map
  /// imbalance excess from straggler_core to sketch_saturated: most tuples
  /// flowed through unsplittable tail buckets, so the plan could not
  /// balance no matter what Alg. 2 did — the sketch capacity is the lever.
  double sketch_coverage_threshold = 0.5;
};

/// \brief One batch's explained verdict.
struct BatchAutopsy {
  uint64_t batch_id = 0;
  BatchCause dominant = BatchCause::kNone;
  /// Excess microseconds attributed to each cause (kNone stays 0).
  std::array<TimeMicros, kBatchCauses> excess{};
  /// Sum of all per-cause excess.
  TimeMicros total_excess = 0;
  /// Noise floor the dominant cause had to clear.
  TimeMicros threshold = 0;

  // Context the rules fired on (for the human-readable table).
  double block_load_ratio = 1.0;
  double split_key_frac = 0;
  double ring_occupancy = 0;
  /// 1.0 outside sketch mode (exact tracking covers everything).
  double head_coverage = 1.0;

  TimeMicros excess_of(BatchCause cause) const {
    return excess[static_cast<size_t>(cause)];
  }
};

/// \brief Runs the attribution rules over one batch report.
///
/// The rules (documented in DESIGN.md §10):
///  - queueing            = report.queue_delay
///  - recovery            = report.recovery_time
///  - split_key_overflow  = report.partition_overflow (the plan's work is
///                          dominated by heavy-key splitting; overflow past
///                          the Early-Batch-Release slack is its signature)
///  - straggler_core      = map_makespan * (1 - avg_block/max_block) when
///                          the partition-metrics pass ran (0 otherwise)
///  - bucket_skew         = (max - mean) reduce completion time
///  - ingest_backpressure = seal_barrier + merge latency when some ring's
///                          occupancy reached ring_pressure_threshold
/// Dominant = argmax excess, earlier enum value wins ties; kNone when the
/// max is below the noise floor.
BatchAutopsy ExplainBatch(const BatchReport& report,
                          const AutopsyOptions& options = {});

/// \brief Lowers an autopsy to the canonical record row (JSONL sinks):
/// record=autopsy, batch_id, dominant, total/threshold and one
/// excess_<cause>_us column per cause.
Record AutopsyRecord(const BatchAutopsy& autopsy);

/// \brief Human-readable verdict + per-cause table (promptctl --explain).
void WriteAutopsyText(const BatchAutopsy& autopsy, const BatchReport& report,
                      std::ostream* out);

}  // namespace prompt
